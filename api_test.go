package hypertp_test

import (
	"errors"
	"testing"
	"time"

	"hypertp"
	"hypertp/internal/cluster"
	"hypertp/internal/core"
)

// A forced pre-kexec fault rolls the transplant back: the host keeps
// its source hypervisor, every VM survives with state intact, and the
// error is classified through the public taxonomy.
func TestTransplantWithRollsBackOnInjectedFault(t *testing.T) {
	sim := hypertp.NewSimulation()
	host, err := sim.NewHost(hypertp.M1(), hypertp.KindXen)
	if err != nil {
		t.Fatal(err)
	}
	vm, err := host.CreateVM(hypertp.VMConfig{
		Name: "web", VCPUs: 1, MemBytes: 1 << 30, HugePages: true, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	vm.Guest.WriteWorkingSet(0, 64)

	cfg := hypertp.NewConfig(hypertp.WithForcedFault(hypertp.SitePRAMBuild, 1))
	report, err := host.TransplantWith(hypertp.KindKVM, cfg)
	if !errors.Is(err, hypertp.ErrAborted) || !errors.Is(err, hypertp.ErrInjected) {
		t.Fatalf("err = %v, want aborted+injected classification", err)
	}
	if hypertp.IsRetryable(err) {
		t.Fatal("rolled-back transplant classified retryable")
	}
	if report == nil || report.Outcome != hypertp.OutcomeRolledBack {
		t.Fatalf("report = %+v, want rolled-back outcome", report)
	}
	if host.Kind() != hypertp.KindXen {
		t.Fatal("host left its source hypervisor on rollback")
	}
	for _, vm := range host.VMs() {
		if err := vm.Guest.Verify(); err != nil {
			t.Fatalf("guest state lost on rollback: %v", err)
		}
	}
}

// A post-handover crash is recovered forward: the transplant completes
// on the target and the report says it recovered.
func TestTransplantWithRecoversPastPointOfNoReturn(t *testing.T) {
	sim := hypertp.NewSimulation()
	host, err := sim.NewHost(hypertp.M1(), hypertp.KindXen)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := host.CreateVM(hypertp.VMConfig{
		Name: "db", VCPUs: 1, MemBytes: 1 << 30, HugePages: true, Seed: 2,
	}); err != nil {
		t.Fatal(err)
	}
	cfg := hypertp.NewConfig(hypertp.WithForcedFault(hypertp.SiteKexecHandover, 1))
	report, err := host.TransplantWith(hypertp.KindKVM, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if report.Outcome != hypertp.OutcomeRecovered || report.Faults != 1 {
		t.Fatalf("outcome = %s faults = %d, want recovered/1", report.Outcome, report.Faults)
	}
	if host.Kind() != hypertp.KindKVM {
		t.Fatal("host not on target after recovery")
	}
	s := report.Summary()
	if s.Kind != "inplace" || s.Outcome != hypertp.OutcomeRecovered || s.Attempts < 2 {
		t.Fatalf("summary = %+v", s)
	}
}

// A severed migration stream retries under the config's policy and the
// unified Report view agrees with the concrete report.
func TestMigrateVMWithRetriesSeveredStream(t *testing.T) {
	sim := hypertp.NewSimulation()
	src, _ := sim.NewHost(hypertp.M1(), hypertp.KindXen)
	dst, _ := sim.NewHost(hypertp.M1(), hypertp.KindKVM)
	link := sim.NewLink("pair", hypertp.Gbps(1), 100*time.Microsecond)
	vm, err := src.CreateVM(hypertp.VMConfig{
		Name: "db", VCPUs: 2, MemBytes: 1 << 30, HugePages: true, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := hypertp.NewConfig(hypertp.WithForcedFault(hypertp.SiteLinkAbort, 1))
	rep, err := src.MigrateVMWith(vm, link, dst, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Attempts != 2 || rep.Outcome != hypertp.OutcomeRecovered {
		t.Fatalf("attempts = %d outcome = %s", rep.Attempts, rep.Outcome)
	}
	var r hypertp.Report = rep
	if s := r.Summary(); s.Kind != "migration" || s.Faults != 1 {
		t.Fatalf("summary = %+v", s)
	}
	if len(dst.VMs()) != 1 || len(src.VMs()) != 0 {
		t.Fatal("VM did not move")
	}
}

// An exhausted retry budget aborts to the source through the public
// taxonomy, and the VM keeps running where it was.
func TestMigrateVMWithAbortsToSourceWhenExhausted(t *testing.T) {
	sim := hypertp.NewSimulation()
	src, _ := sim.NewHost(hypertp.M1(), hypertp.KindXen)
	dst, _ := sim.NewHost(hypertp.M1(), hypertp.KindKVM)
	link := sim.NewLink("pair", hypertp.Gbps(1), 100*time.Microsecond)
	vm, err := src.CreateVM(hypertp.VMConfig{
		Name: "db", VCPUs: 1, MemBytes: 1 << 30, HugePages: true, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := hypertp.NewConfig(
		hypertp.WithForcedFault(hypertp.SiteLinkAbort, 1),
		hypertp.WithForcedFault(hypertp.SiteLinkAbort, 2),
		hypertp.WithRetry(hypertp.RetryPolicy{MaxAttempts: 2, BaseBackoff: 10 * time.Millisecond}))
	if _, err := src.MigrateVMWith(vm, link, dst, cfg); !errors.Is(err, hypertp.ErrAborted) {
		t.Fatalf("err = %v, want ErrAborted", err)
	}
	if len(src.VMs()) != 1 || len(dst.VMs()) != 0 {
		t.Fatal("VM not back on source after abort")
	}
	if src.VMs()[0].Paused() {
		t.Fatal("source VM left paused after abort")
	}
}

// The config surface: defaults match the internal engine and cluster
// defaults the deprecated aliases mirror, overrides compose, and the
// site list round-trips through the parser.
func TestConfigSurface(t *testing.T) {
	cfg := hypertp.Default()
	if cfg.ClusterModel() != cluster.DefaultExecutionModel() {
		t.Fatal("Default() disagrees with cluster.DefaultExecutionModel()")
	}
	legacy := core.DefaultOptions()
	if cfg.Parallel != legacy.Parallel || cfg.HugePages != legacy.HugePages ||
		cfg.PrepareBeforePause != legacy.PrepareBeforePause ||
		cfg.EarlyRestoration != legacy.EarlyRestoration {
		t.Fatal("Default() disagrees with DefaultOptions()")
	}
	deopt := hypertp.NewConfig(hypertp.WithoutOptimizations())
	if deopt.Parallel || deopt.HugePages || deopt.PrepareBeforePause || deopt.EarlyRestoration {
		t.Fatal("WithoutOptimizations left a toggle on")
	}
	if !cfg.TranslationCache || cfg.PageDedup || cfg.WarmPool != 0 {
		t.Fatalf("cache defaults wrong: %+v", cfg)
	}
	cached := hypertp.NewConfig(
		hypertp.WithTranslationCache(false),
		hypertp.WithWarmPool(8),
		hypertp.WithPageDedup(true))
	if cached.TranslationCache || cached.WarmPool != 8 || !cached.PageDedup {
		t.Fatalf("cache options did not apply: %+v", cached)
	}
	faulty := hypertp.NewConfig(hypertp.WithFaults(42, 0.25, hypertp.SiteHVBoot))
	if faulty.FaultSeed != 42 || faulty.FaultRate != 0.25 || len(faulty.FaultSites) != 1 {
		t.Fatalf("WithFaults config = %+v", faulty)
	}
	sites, err := hypertp.ParseFaultSites("hv.boot,link.abort")
	if err != nil || len(sites) != 2 || sites[0] != hypertp.SiteHVBoot {
		t.Fatalf("ParseFaultSites = %v, %v", sites, err)
	}
	if _, err := hypertp.ParseFaultSites("no.such.site"); err == nil {
		t.Fatal("unknown site accepted")
	}
	if len(hypertp.AllFaultSites()) < 10 {
		t.Fatal("site registry too small")
	}
	if hypertp.DefaultRetryPolicy().Attempts() < 2 {
		t.Fatal("default retry policy does not retry")
	}
}

// The simulation-wide transplant cache: repeat transplants through the
// default Config converge to cache hits, the per-report Summary carries
// the counts, and Simulation.CacheStats sees the same traffic.
// Disabling the cache keeps the stats untouched.
func TestSimulationCacheStats(t *testing.T) {
	sim := hypertp.NewSimulation()
	host, err := sim.NewHost(hypertp.M1(), hypertp.KindXen)
	if err != nil {
		t.Fatal(err)
	}
	vm, err := host.CreateVM(hypertp.VMConfig{
		Name: "web", VCPUs: 1, MemBytes: 1 << 30, HugePages: true, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	vm.Guest.WriteWorkingSet(0, 64)

	var hitSummaries int
	target := hypertp.KindKVM
	for hop := 0; hop < 10; hop++ {
		rep, err := host.TransplantWith(target, hypertp.Default())
		if err != nil {
			t.Fatalf("hop %d: %v", hop, err)
		}
		if s := rep.Summary(); s.CacheHits > 0 {
			hitSummaries++
		}
		if target == hypertp.KindKVM {
			target = hypertp.KindXen
		} else {
			target = hypertp.KindKVM
		}
	}
	st := sim.CacheStats()
	if st.Hits == 0 || st.Misses == 0 {
		t.Fatalf("cache never converged over 10 hops: %+v", st)
	}
	if hitSummaries == 0 {
		t.Fatal("no report summary carried cache hits")
	}
	for _, vm := range host.VMs() {
		if err := vm.Guest.Verify(); err != nil {
			t.Fatal(err)
		}
	}

	// A cache-disabled simulation reports zeros.
	cold := hypertp.NewSimulation()
	ch, err := cold.NewHost(hypertp.M1(), hypertp.KindXen)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ch.CreateVM(hypertp.VMConfig{
		Name: "db", VCPUs: 1, MemBytes: 1 << 30, HugePages: true, Seed: 2,
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := ch.TransplantWith(hypertp.KindKVM,
		hypertp.NewConfig(hypertp.WithTranslationCache(false))); err != nil {
		t.Fatal(err)
	}
	if st := cold.CacheStats(); st != (hypertp.CacheStats{}) {
		t.Fatalf("cache-disabled simulation recorded stats: %+v", st)
	}
}
