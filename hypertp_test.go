package hypertp_test

import (
	"testing"
	"time"

	"hypertp"
)

func TestFacadeQuickstartFlow(t *testing.T) {
	sim := hypertp.NewSimulation()
	host, err := sim.NewHost(hypertp.M1(), hypertp.KindXen)
	if err != nil {
		t.Fatal(err)
	}
	if host.Kind() != hypertp.KindXen || host.HypervisorName() == "" {
		t.Fatal("host identity wrong")
	}
	vm, err := host.CreateVM(hypertp.VMConfig{
		Name: "web", VCPUs: 1, MemBytes: 1 << 30, HugePages: true, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := vm.Guest.WriteWorkingSet(0, 64); err != nil {
		t.Fatal(err)
	}
	report, err := host.TransplantWith(hypertp.KindKVM, hypertp.Default())
	if err != nil {
		t.Fatal(err)
	}
	if host.Kind() != hypertp.KindKVM {
		t.Fatal("host not on KVM")
	}
	if report.Downtime < time.Second || report.Downtime > 2*time.Second {
		t.Fatalf("downtime = %v, want ~1.7s", report.Downtime)
	}
	for _, vm := range host.VMs() {
		if err := vm.Guest.Verify(); err != nil {
			t.Fatal(err)
		}
	}
	if sim.Now() == 0 {
		t.Fatal("virtual clock did not advance")
	}
}

func TestFacadeMigration(t *testing.T) {
	sim := hypertp.NewSimulation()
	src, err := sim.NewHost(hypertp.M1(), hypertp.KindXen)
	if err != nil {
		t.Fatal(err)
	}
	dst, err := sim.NewHost(hypertp.M1(), hypertp.KindKVM)
	if err != nil {
		t.Fatal(err)
	}
	link := sim.NewLink("pair", hypertp.Gbps(1), 100*time.Microsecond)
	vm, err := src.CreateVM(hypertp.VMConfig{
		Name: "db", VCPUs: 2, MemBytes: 1 << 30, HugePages: true, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := src.MigrateVM(vm, link, dst)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Heterogeneous {
		t.Fatal("Xen→KVM migration not heterogeneous")
	}
	if rep.TotalTime < 8*time.Second || rep.TotalTime > 11*time.Second {
		t.Fatalf("migration time = %v", rep.TotalTime)
	}
	if len(dst.VMs()) != 1 || len(src.VMs()) != 0 {
		t.Fatal("VM did not move")
	}
}

func TestFacadeVulnPolicy(t *testing.T) {
	sim := hypertp.NewSimulation()
	host, _ := sim.NewHost(hypertp.M1(), hypertp.KindXen)
	db := hypertp.LoadVulnDB()
	target, err := host.SelectTransplantTarget(db, "CVE-2016-6258")
	if err != nil || target != hypertp.KindKVM {
		t.Fatalf("target = %v, %v", target, err)
	}
	// VENOM hits both mainstream hypervisors; the default pool's
	// microhypervisor is the escape.
	target, err = host.SelectTransplantTarget(db, "CVE-2015-3456")
	if err != nil || target != hypertp.KindNOVA {
		t.Fatalf("VENOM target = %v, %v; want NOVA", target, err)
	}
}

func TestFacadeCluster(t *testing.T) {
	c, err := hypertp.NewCluster(hypertp.ClusterConfig{
		Hosts: 4, VMsPerHost: 5, StreamFrac: 0.3, CPUFrac: 0.3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if c.VMCount() != 20 {
		t.Fatal("cluster shape wrong")
	}
}

func TestGbps(t *testing.T) {
	if hypertp.Gbps(1) != 125000000 {
		t.Fatalf("Gbps(1) = %d", hypertp.Gbps(1))
	}
}

func TestFacadeCheckpointCycle(t *testing.T) {
	sim := hypertp.NewSimulation()
	src, err := sim.NewHost(hypertp.M1(), hypertp.KindXen)
	if err != nil {
		t.Fatal(err)
	}
	vm, err := src.CreateVM(hypertp.VMConfig{
		Name: "frozen", VCPUs: 1, MemBytes: 1 << 30, HugePages: true, Seed: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	vm.Guest.WriteWorkingSet(0, 128)
	g := vm.Guest
	data, err := src.Checkpoint(vm)
	if err != nil {
		t.Fatal(err)
	}
	if len(src.VMs()) != 0 {
		t.Fatal("source VM survived checkpoint")
	}
	// Resume on a different host running a different hypervisor.
	dst, err := sim.NewHost(hypertp.M1(), hypertp.KindNOVA)
	if err != nil {
		t.Fatal(err)
	}
	restored, err := dst.RestoreCheckpoint(data, g)
	if err != nil {
		t.Fatal(err)
	}
	if restored.Paused() {
		t.Fatal("restored VM not running")
	}
	if err := g.Verify(); err != nil {
		t.Fatalf("state lost across checkpoint: %v", err)
	}
	// Corrupt image refused.
	data[len(data)/2] ^= 0xff
	if _, err := dst.RestoreCheckpoint(data, nil); err == nil {
		t.Fatal("corrupt checkpoint accepted")
	}
}
