package hypertp

import "hypertp/internal/hterr"

// The error taxonomy of the transplant stack. Every error returned by
// the public API carries zero or more of these classes; test them with
// errors.Is. One error may carry several classes at once — an injected
// link sever, for example, satisfies both ErrInjected and ErrRetryable.
var (
	// ErrAborted: the operation was abandoned and fully rolled back.
	// Every affected VM still runs on the source hypervisor with its
	// state intact.
	ErrAborted = hterr.ErrAborted
	// ErrRetryable: a transient failure; re-running the operation may
	// succeed. The engine's retry loops key off this class.
	ErrRetryable = hterr.ErrRetryable
	// ErrVMLost: at least one VM's state could not be preserved. This
	// is the only class that indicates actual data loss; it dominates
	// every other class and is never retryable.
	ErrVMLost = hterr.ErrVMLost
	// ErrIncompatibleTarget: the requested source/target combination
	// violates a precondition (same-kind transplant, passthrough
	// devices, non-transplantable driver). Nothing was attempted.
	ErrIncompatibleTarget = hterr.ErrIncompatibleTarget
	// ErrInjected: the root cause was a deterministic injected fault
	// rather than an organic failure.
	ErrInjected = hterr.ErrInjected
	// ErrInvariantViolated: an auditor found a broken global invariant
	// (frame ownership, guest memory integrity, fleet bookkeeping, span
	// structure). Indicates a bug in the stack, not a recoverable
	// condition.
	ErrInvariantViolated = hterr.ErrInvariantViolated
	// ErrWatchdogExpired: an operation exceeded its virtual-time or
	// attempt budget. A retry loop that would otherwise spin forever
	// surfaces this instead of hanging.
	ErrWatchdogExpired = hterr.ErrWatchdogExpired
)

// IsRetryable reports whether err is worth retrying: it carries
// ErrRetryable and does not carry ErrVMLost.
func IsRetryable(err error) bool { return hterr.IsRetryable(err) }

// ErrorClass returns the dominant class sentinel carried by err
// (ErrVMLost > ErrInvariantViolated > ErrWatchdogExpired > ErrAborted >
// ErrRetryable > ErrIncompatibleTarget > ErrInjected), or nil for
// unclassified errors.
func ErrorClass(err error) error { return hterr.Class(err) }
