GO ?= go

# Packages with fuzz targets and checked-in seed corpora.
FUZZ_PKGS = ./internal/uisr/ ./internal/hv/xen/ ./internal/hv/kvm/ \
	./internal/migration/ ./internal/checkpoint/ ./internal/pram/ \
	./internal/difffuzz/

.PHONY: all build vet fmt-check test race check bench benchdiff benchfig \
	trace-demo slo-demo fault-matrix crash-matrix soak crash-storm \
	soak-short race-check fuzz-seeds calib-check

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# fmt-check fails (listing the offenders) if any file is not gofmt-clean,
# and runs vet so style and static checks gate together. It also keeps
# the repo deprecation-clean: the hypertp.Options / DefaultOptions /
# ExecutionModel aliases exist only for external callers, so any use
# outside their definitions (hypertp.go, options.go) fails the check.
fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi
	@out="$$(grep -rn -E 'hypertp\.(Options\b|DefaultOptions|ExecutionModel\b|DefaultExecutionModel)' \
		--include='*.go' cmd examples *.go internal 2>/dev/null || true)"; \
		if [ -n "$$out" ]; then \
		echo "deprecated hypertp.Options/ExecutionModel aliases used (migrate to Default()/NewConfig + TransplantWith):"; \
		echo "$$out"; exit 1; fi
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# check is the PR gate: formatting + vet + build + the full suite under
# the race detector (the determinism and pool-stress tests rely on it),
# plus the short chaos soak and the parser fuzz seeds.
check: fmt-check
	$(GO) vet ./... && $(GO) build ./... && $(GO) test -race ./...
	$(MAKE) soak-short

# bench runs every benchmark in the repo (not just the root package)
# with allocation stats; -run '^$$' keeps plain tests out of the timing.
bench:
	$(GO) test -bench . -benchmem -run '^$$' ./...

# benchdiff reruns the benchmark suite and gates it against the
# checked-in BENCH_BASELINE.json: >15% ns/op regressions and any
# allocs/op increase fail. Refresh the baseline with
# `go run ./cmd/benchdiff -update` (see cmd/benchdiff).
benchdiff:
	$(GO) run ./cmd/benchdiff -baseline BENCH_BASELINE.json

# fault-matrix runs the recovery matrix under the race detector: every
# registered fault-injection site x {InPlaceTP, MigrationTP} must end in
# a checksum-verified full rollback or full completion, plus the
# fault-seed determinism check across worker-pool sizes.
fault-matrix:
	$(GO) test -race -count=1 \
		-run 'TestRecoveryMatrix|TestFaultDeterminismAcrossWorkers' \
		./internal/core/

# crash-matrix is fault-matrix's reactive-recovery counterpart: the
# emergency-transplant paths (spontaneous fail-stop, hang fencing, the
# mid-transplant double fault and its driver self-heal), the
# crash-storm scheduled recovery, and their determinism across
# worker-pool sizes — all under the race detector.
crash-matrix:
	$(GO) test -race -count=1 \
		-run 'TestEmergency|TestDetect|TestDetector|TestCrashAndRecoverHost|TestHangIsFencedAndRecovered|TestRecoverEmptyDownedHost|TestHostLiveUpgradeSelfHealsDoubleFault|TestRecoverHostFrozenIsRetryable|TestCrashStorm' \
		./internal/core/ ./internal/orchestrator/ ./internal/reactive/

# soak runs a long randomized chaos scenario: 500 fleet operations under
# fault injection with every global invariant audited after each step,
# on the bounded-memory streaming observability pipeline (-stream). On a
# violation it exits 2 and writes a shrunk replay bundle plus the
# metrics/flight-recorder artifacts (chaos-metrics.json,
# chaos-flight.jsonl).
soak:
	$(GO) run ./cmd/chaoscheck -seed 1 -ops 500 -fault-rate 0.15 -stream

# crash-storm is the soak with the reactive-recovery op vocabulary
# enabled: hypervisor fail-stops, hangs, fleet-wide crash storms and
# mid-transplant double faults, every recovery audited for frame
# ownership, guest checksums and Nova bookkeeping.
crash-storm:
	$(GO) run ./cmd/chaoscheck -seed 1 -ops 500 -fault-rate 0.15 -stream -crash

# race-check fails fast, with a readable message, when the toolchain
# cannot run `go test -race` (no CGO, or an unsupported platform) —
# otherwise the soak dies minutes in with an opaque linker error.
race-check:
	@$(GO) test -race -count=1 -run '^$$' ./internal/simtime/ >/dev/null 2>&1 || { \
		echo "error: this toolchain cannot run 'go test -race'" >&2; \
		echo "       the race detector needs CGO and a supported platform;" >&2; \
		echo "       run 'CGO_ENABLED=1 $(GO) test -race ./internal/simtime/' to see the underlying failure" >&2; \
		exit 1; }

# fuzz-seeds regenerates the checked-in seed corpora under each fuzz
# package's testdata/fuzz/ from the targets' own f.Add seed lists.
# Commit the result; TestFuzzSeedCorpus fails when they drift.
fuzz-seeds:
	HYPERTP_WRITE_FUZZ_SEEDS=1 $(GO) test -count=1 -run TestFuzzSeedCorpus $(FUZZ_PKGS)

# calib-check evaluates the timing-calibration catalogue: every
# CostModel formula and measured engine run must land on the paper's
# published figure shapes within declared tolerances (internal/calib),
# and a perturbed cost constant must trip the gate (the negative half).
calib-check:
	$(GO) test -count=1 -run TestCalib ./internal/calib/

# soak-short is the tier-1 slice of the chaos harness: the short soak
# under the race detector plus ten seconds of real fuzzing on each
# network-facing parser (UISR state, Xen HVM context, KVM MSR block,
# migration stream framing).
soak-short: race-check
	$(GO) test -race -count=1 -run TestChaosSoakShort ./internal/chaos/
	$(GO) test -race -fuzz FuzzDecode -fuzztime 10s ./internal/uisr/
	$(GO) test -race -fuzz FuzzParseContext -fuzztime 10s ./internal/hv/xen/
	$(GO) test -race -fuzz FuzzMSRBlock -fuzztime 10s ./internal/hv/kvm/
	$(GO) test -race -fuzz FuzzStreamFraming -fuzztime 10s ./internal/migration/

benchfig:
	$(GO) run ./cmd/benchfig

# trace-demo runs one Figure-7 in-place transplant with tracing on and
# verifies the emitted Chrome trace parses, is non-empty, and covers
# every Fig. 3 workflow step — and that the streamed JSONL span export
# and Prometheus metrics dump validate too. The trace lands in /tmp for
# opening in Perfetto (https://ui.perfetto.dev) or chrome://tracing.
trace-demo:
	$(GO) run ./cmd/tpctl -mode inplace -from xen -to kvm -machine M1 \
		-vms 4 -vcpus 2 -mem-gib 2 \
		-trace-out /tmp/hypertp-trace.json -metrics-out /tmp/hypertp-metrics.json \
		-spans-out /tmp/hypertp-spans.jsonl -prom-out /tmp/hypertp-metrics.prom
	$(GO) run ./cmd/tracecheck -require-steps /tmp/hypertp-trace.json
	$(GO) run ./cmd/tracecheck -jsonl /tmp/hypertp-spans.jsonl

# slo-demo runs the fleet CVE response with vulnerability-window SLO
# tracking and prints the remediation-latency report and burn-rate
# verdict; -strict makes a blown SLO a non-zero exit.
slo-demo:
	$(GO) run ./cmd/sloreport -hosts 20 -vms 40 -strict \
		-prom-out /tmp/hypertp-slo.prom
