GO ?= go

.PHONY: all build vet fmt-check test race check bench benchfig trace-demo fault-matrix

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# fmt-check fails (listing the offenders) if any file is not gofmt-clean.
fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# check is the PR gate: formatting + vet + build + the full suite under
# the race detector (the determinism and pool-stress tests rely on it).
check: fmt-check
	$(GO) vet ./... && $(GO) build ./... && $(GO) test -race ./...

bench:
	$(GO) test -bench . -benchmem -run '^$$' .

# fault-matrix runs the recovery matrix under the race detector: every
# registered fault-injection site x {InPlaceTP, MigrationTP} must end in
# a checksum-verified full rollback or full completion, plus the
# fault-seed determinism check across worker-pool sizes.
fault-matrix:
	$(GO) test -race -count=1 \
		-run 'TestRecoveryMatrix|TestFaultDeterminismAcrossWorkers' \
		./internal/core/

benchfig:
	$(GO) run ./cmd/benchfig

# trace-demo runs one Figure-7 in-place transplant with tracing on and
# verifies the emitted Chrome trace parses, is non-empty, and covers
# every Fig. 3 workflow step. The trace lands in /tmp for opening in
# Perfetto (https://ui.perfetto.dev) or chrome://tracing.
trace-demo:
	$(GO) run ./cmd/tpctl -mode inplace -from xen -to kvm -machine M1 \
		-vms 4 -vcpus 2 -mem-gib 2 \
		-trace-out /tmp/hypertp-trace.json -metrics-out /tmp/hypertp-metrics.json
	$(GO) run ./cmd/tracecheck -require-steps /tmp/hypertp-trace.json
