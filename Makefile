GO ?= go

.PHONY: all build vet test race check bench benchfig

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# check is the PR gate: vet + build + the full suite under the race
# detector (the determinism and pool-stress tests rely on it).
check:
	$(GO) vet ./... && $(GO) build ./... && $(GO) test -race ./...

bench:
	$(GO) test -bench . -benchmem -run '^$$' .

benchfig:
	$(GO) run ./cmd/benchfig
