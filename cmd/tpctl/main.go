// Command tpctl runs one hypervisor transplant on a simulated host and
// prints the phase breakdown — the operator's view of a single InPlaceTP
// or MigrationTP operation.
//
// Usage:
//
//	tpctl -mode inplace  -from xen -to kvm -machine M1 -vms 1 -vcpus 1 -mem-gib 1
//	tpctl -mode migration -from xen -to kvm -vms 2 -mem-gib 1
//	tpctl -mode inplace -from xen -to kvm -cve CVE-2016-6258   # policy check first
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"hypertp/internal/core"
	"hypertp/internal/hv"
	"hypertp/internal/hw"
	"hypertp/internal/metrics"
	"hypertp/internal/migration"
	"hypertp/internal/par"
	"hypertp/internal/simnet"
	"hypertp/internal/simtime"
	"hypertp/internal/trace"
	"hypertp/internal/vulndb"
)

func main() {
	var (
		mode    = flag.String("mode", "inplace", "transplant mode: inplace or migration")
		from    = flag.String("from", "xen", "current hypervisor: xen or kvm")
		to      = flag.String("to", "kvm", "target hypervisor: xen or kvm")
		machine = flag.String("machine", "M1", "machine profile: M1 or M2")
		vms     = flag.Int("vms", 1, "number of VMs on the host")
		vcpus   = flag.Int("vcpus", 1, "vCPUs per VM")
		memGiB  = flag.Int("mem-gib", 1, "memory per VM in GiB")
		cve     = flag.String("cve", "", "check the transplant decision policy for this CVE first")
		noPrep  = flag.Bool("no-prepare", false, "disable pre-pause preparation (ablation)")
		noPar   = flag.Bool("no-parallel", false, "disable parallel translation (ablation)")
		noHuge  = flag.Bool("no-hugepages", false, "disable huge-page PRAM entries (ablation)")
		noEarly = flag.Bool("no-early-restore", false, "disable early restoration (ablation)")
		workers = flag.Int("workers", 0, "host worker pool size for wall-clock parallelism (0 = GOMAXPROCS)")
		verbose = flag.Bool("v", false, "print the Fig. 3 workflow trace")
	)
	flag.Parse()
	par.SetWorkers(*workers)
	if err := run(*mode, *from, *to, *machine, *vms, *vcpus, *memGiB, *cve,
		core.Options{
			PrepareBeforePause: !*noPrep,
			Parallel:           !*noPar,
			HugePages:          !*noHuge,
			EarlyRestoration:   !*noEarly,
		}, *verbose); err != nil {
		fmt.Fprintln(os.Stderr, "tpctl:", err)
		os.Exit(1)
	}
}

func parseKind(s string) (hv.Kind, error) {
	switch s {
	case "xen":
		return hv.KindXen, nil
	case "kvm":
		return hv.KindKVM, nil
	default:
		return 0, fmt.Errorf("unknown hypervisor %q (want xen or kvm)", s)
	}
}

func parseProfile(s string) (*hw.Profile, error) {
	switch s {
	case "M1", "m1":
		return hw.M1(), nil
	case "M2", "m2":
		return hw.M2(), nil
	default:
		return nil, fmt.Errorf("unknown machine %q (want M1 or M2)", s)
	}
}

func run(mode, from, to, machine string, vms, vcpus, memGiB int, cve string, opts core.Options, verbose bool) error {
	fromKind, err := parseKind(from)
	if err != nil {
		return err
	}
	toKind, err := parseKind(to)
	if err != nil {
		return err
	}
	profile, err := parseProfile(machine)
	if err != nil {
		return err
	}

	if cve != "" {
		db := vulndb.Load()
		rec, ok := db.Lookup(cve)
		if !ok {
			return fmt.Errorf("unknown CVE %q", cve)
		}
		fmt.Printf("policy check: %s (CVSS %.1f, %s, affects %v)\n",
			rec.ID, rec.CVSS, rec.Severity(), rec.Affects)
		worthwhile, target := db.TransplantWorthwhile(cve, from, []string{"xen", "kvm"})
		if !worthwhile {
			return fmt.Errorf("policy: transplant not indicated for %s on %s", cve, from)
		}
		fmt.Printf("policy: transplant %s → %s indicated\n\n", from, target)
	}

	clock := simtime.NewClock()
	srcMachine := hw.NewMachine(clock, profile)
	engine := core.NewEngine(clock, srcMachine)
	if verbose {
		engine.Trace = trace.New(clock)
	}
	src, err := engine.BootHypervisor(fromKind)
	if err != nil {
		return err
	}
	var vmIDs []hv.VMID
	for i := 0; i < vms; i++ {
		vm, err := src.CreateVM(hv.Config{
			Name:  fmt.Sprintf("vm-%02d", i),
			VCPUs: vcpus, MemBytes: uint64(memGiB) << 30, HugePages: true,
			Seed: uint64(100 + i), InPlaceCompatible: true,
		})
		if err != nil {
			return err
		}
		vmIDs = append(vmIDs, vm.ID)
	}
	fmt.Printf("host: %s running %s with %d VM(s) of %d vCPU / %d GiB\n\n",
		profile.Name, src.Name(), vms, vcpus, memGiB)

	switch mode {
	case "inplace":
		_, rep, err := engine.InPlace(src, toKind, opts)
		if err != nil {
			return err
		}
		tab := &metrics.Table{
			Title:   fmt.Sprintf("InPlaceTP %s → %s on %s", from, to, profile.Name),
			Headers: []string{"Phase", "Duration"},
		}
		tab.AddRow("PRAM construction (pre-pause)", rep.PRAM.String())
		tab.AddRow("UISR translation", rep.Translation.String())
		tab.AddRow("micro-reboot", rep.Reboot.String())
		tab.AddRow("restoration", rep.Restoration.String())
		tab.AddRow("NIC reinitialization (overlapped)", rep.Network.String())
		tab.AddRow("downtime", rep.Downtime.String())
		tab.AddRow("network downtime", rep.NetworkDowntime.String())
		tab.AddRow("total", rep.Total.String())
		fmt.Println(tab.Render())
		fmt.Printf("overheads: PRAM %d B, UISR %d B, wiped %d frames\n",
			rep.PRAMMetadataBytes, rep.UISRBytes, rep.WipedFrames)
		if verbose {
			fmt.Printf("\nworkflow trace:\n%s", engine.Trace.Render())
		}
	case "migration":
		dstMachine := hw.NewMachine(clock, profile)
		dstEngine := core.NewEngine(clock, dstMachine)
		dst, err := dstEngine.BootHypervisor(toKind)
		if err != nil {
			return err
		}
		link := simnet.NewLink(clock, "pair", simnet.Gbps1, 100*time.Microsecond)
		recv := migration.NewReceiver(clock, dst, 1)
		tab := &metrics.Table{
			Title:   fmt.Sprintf("MigrationTP %s → %s over 1 Gbps", from, to),
			Headers: []string{"VM", "Rounds", "Bytes sent", "Downtime", "Total"},
		}
		for _, id := range vmIDs {
			rep, err := core.MigrationTP(clock, core.MigrationTPParams{
				Link: link, Source: src, Dest: recv, VMID: id,
			})
			if err != nil {
				return err
			}
			tab.AddRow(rep.VMName, fmt.Sprint(rep.Rounds), fmt.Sprint(rep.BytesSent),
				rep.Downtime.String(), rep.TotalTime.String())
		}
		fmt.Println(tab.Render())
	default:
		return fmt.Errorf("unknown mode %q (want inplace or migration)", mode)
	}
	return nil
}
