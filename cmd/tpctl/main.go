// Command tpctl runs one hypervisor transplant on a simulated host and
// prints the phase breakdown — the operator's view of a single InPlaceTP
// or MigrationTP operation.
//
// Usage:
//
//	tpctl -mode inplace  -from xen -to kvm -machine M1 -vms 1 -vcpus 1 -mem-gib 1
//	tpctl -mode migration -from xen -to kvm -vms 2 -mem-gib 1
//	tpctl -mode inplace -from xen -to kvm -cve CVE-2016-6258   # policy check first
//	tpctl -mode inplace -warm-pool 2        # pre-stage warm translation entries
//	tpctl -mode inplace -no-cache           # force the cold path
//	tpctl -mode inplace -trace-out trace.json -metrics-out metrics.json
//	tpctl -mode inplace -fault-seed 42 -fault-rate 1 -fault-sites kexec.handover -fault-plan
//	tpctl -mode inplace -crash-at idle        # fail-stop, then emergency recovery
//	tpctl -mode inplace -crash-at transplant  # double fault at the worst point
//
// -trace-out writes a Chrome trace_event file (open in Perfetto or
// chrome://tracing); -metrics-out writes the metrics registry as JSON;
// -prom-out writes it in Prometheus text exposition format; -spans-out
// writes the span forest as JSONL. All are deterministic:
// byte-identical for any -workers count.
//
// -fault-seed/-fault-rate/-fault-sites arm deterministic fault
// injection at the named phase boundaries; the engine's recovery paths
// (rollback-to-source before the kexec point, crash recovery after it,
// bounded migration retry) ride the faults out. -fault-plan prints the
// shots that actually fired.
//
// -crash-at fail-stops the source hypervisor (idle: between operations;
// hang: wedged, then fenced; transplant: mid-transplant with guests
// paused — the double fault) and salvages the guests with an emergency
// transplant to -to. Exit status 2 when a crash goes unrecovered, the
// same convention as invariant violations.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"hypertp/internal/core"
	"hypertp/internal/fault"
	"hypertp/internal/hterr"
	"hypertp/internal/hv"
	"hypertp/internal/hw"
	"hypertp/internal/metrics"
	"hypertp/internal/migration"
	"hypertp/internal/obs"
	"hypertp/internal/par"
	"hypertp/internal/simnet"
	"hypertp/internal/simtime"
	"hypertp/internal/tpcache"
	"hypertp/internal/trace"
	"hypertp/internal/vulndb"
)

func main() {
	var (
		mode       = flag.String("mode", "inplace", "transplant mode: inplace or migration")
		from       = flag.String("from", "xen", "current hypervisor: xen or kvm")
		to         = flag.String("to", "kvm", "target hypervisor: xen or kvm")
		machine    = flag.String("machine", "M1", "machine profile: M1 or M2")
		vms        = flag.Int("vms", 1, "number of VMs on the host")
		vcpus      = flag.Int("vcpus", 1, "vCPUs per VM")
		memGiB     = flag.Int("mem-gib", 1, "memory per VM in GiB")
		cve        = flag.String("cve", "", "check the transplant decision policy for this CVE first")
		noPrep     = flag.Bool("no-prepare", false, "disable pre-pause preparation (ablation)")
		noPar      = flag.Bool("no-parallel", false, "disable parallel translation (ablation)")
		noHuge     = flag.Bool("no-hugepages", false, "disable huge-page PRAM entries (ablation)")
		noEarly    = flag.Bool("no-early-restore", false, "disable early restoration (ablation)")
		workers    = flag.Int("workers", 0, "host worker pool size for wall-clock parallelism (0 = GOMAXPROCS)")
		traceOut   = flag.String("trace-out", "", "write a Chrome trace_event JSON file of the run")
		metricsOut = flag.String("metrics-out", "", "write the metrics registry as JSON")
		promOut    = flag.String("prom-out", "", "write the metrics registry in Prometheus text format")
		spansOut   = flag.String("spans-out", "", "write the span forest as JSONL (one span record per line)")
		profLabels = flag.Bool("pprof-labels", false, "annotate pool workers with pprof labels")
		faultSeed  = flag.Uint64("fault-seed", 0, "fault-injection seed (deterministic; 0 with rate 0 disables)")
		faultRate  = flag.Float64("fault-rate", 0, "per-site fault probability in [0,1]")
		faultSites = flag.String("fault-sites", "", "comma-separated injection sites (empty = all registered sites)")
		faultPlan  = flag.Bool("fault-plan", false, "print the fault shots that fired during the run")
		noCache    = flag.Bool("no-cache", false, "disable the transplant cache (force the cold path)")
		warmPool   = flag.Int("warm-pool", 0, "pre-stage up to n VM translations as warm entries before the transplant")
		crashAt    = flag.String("crash-at", "", "fail-stop the source hypervisor and run the emergency recovery: idle, hang, or transplant (crash mid-transplant, at the double-fault window)")
		verbose    = flag.Bool("v", false, "print the Fig. 3 workflow trace")
	)
	flag.Parse()
	par.SetWorkers(*workers)
	par.SetProfileLabels(*profLabels)
	if err := run(runConfig{
		Mode: *mode, From: *from, To: *to, Machine: *machine,
		VMs: *vms, VCPUs: *vcpus, MemGiB: *memGiB, CVE: *cve,
		Opts: core.Options{
			PrepareBeforePause: !*noPrep,
			Parallel:           !*noPar,
			HugePages:          !*noHuge,
			EarlyRestoration:   !*noEarly,
		},
		TraceOut:   *traceOut,
		MetricsOut: *metricsOut,
		PromOut:    *promOut,
		SpansOut:   *spansOut,
		FaultSeed:  *faultSeed,
		FaultRate:  *faultRate,
		FaultSites: *faultSites,
		FaultPlan:  *faultPlan,
		NoCache:    *noCache,
		WarmPool:   *warmPool,
		CrashAt:    *crashAt,
		Verbose:    *verbose,
	}); err != nil {
		os.Exit(exitWithLabel("tpctl", err))
	}
}

// exitWithLabel prints the error with its hterr class label and picks
// the exit status: 2 for broken invariants, blown watchdogs and
// unrecovered crashes (the outcomes a CI soak must not swallow), 1 for
// everything else.
func exitWithLabel(tool string, err error) int {
	if class := hterr.Class(err); class != nil {
		fmt.Fprintf(os.Stderr, "%s: %s: %v\n", tool, hterr.Label(class), err)
		if class == hterr.ErrInvariantViolated || class == hterr.ErrWatchdogExpired ||
			class == hterr.ErrHypervisorCrashed {
			return 2
		}
		return 1
	}
	fmt.Fprintf(os.Stderr, "%s: %v\n", tool, err)
	return 1
}

func parseKind(s string) (hv.Kind, error) {
	switch s {
	case "xen":
		return hv.KindXen, nil
	case "kvm":
		return hv.KindKVM, nil
	default:
		return 0, fmt.Errorf("unknown hypervisor %q (want xen or kvm)", s)
	}
}

func parseProfile(s string) (*hw.Profile, error) {
	switch s {
	case "M1", "m1":
		return hw.M1(), nil
	case "M2", "m2":
		return hw.M2(), nil
	default:
		return nil, fmt.Errorf("unknown machine %q (want M1 or M2)", s)
	}
}

// runConfig is one tpctl invocation's worth of parsed flags.
type runConfig struct {
	Mode, From, To, Machine string
	VMs, VCPUs, MemGiB      int
	CVE                     string
	Opts                    core.Options
	TraceOut, MetricsOut    string
	PromOut, SpansOut       string
	FaultSeed               uint64
	FaultRate               float64
	FaultSites              string
	FaultPlan               bool
	NoCache                 bool
	WarmPool                int
	CrashAt                 string
	Verbose                 bool
}

func run(cfg runConfig) error {
	fromKind, err := parseKind(cfg.From)
	if err != nil {
		return err
	}
	toKind, err := parseKind(cfg.To)
	if err != nil {
		return err
	}
	profile, err := parseProfile(cfg.Machine)
	if err != nil {
		return err
	}

	if cfg.CVE != "" {
		db := vulndb.Load()
		rec, ok := db.Lookup(cfg.CVE)
		if !ok {
			return fmt.Errorf("unknown CVE %q", cfg.CVE)
		}
		fmt.Printf("policy check: %s (CVSS %.1f, %s, affects %v)\n",
			rec.ID, rec.CVSS, rec.Severity(), rec.Affects)
		worthwhile, target := db.TransplantWorthwhile(cfg.CVE, cfg.From, []string{"xen", "kvm"})
		if !worthwhile {
			return fmt.Errorf("policy: transplant not indicated for %s on %s", cfg.CVE, cfg.From)
		}
		fmt.Printf("policy: transplant %s → %s indicated\n\n", cfg.From, target)
	}

	clock := simtime.NewClock()
	srcMachine := hw.NewMachine(clock, profile)
	engine := core.NewEngine(clock, srcMachine)
	var rec *obs.Recorder
	if cfg.TraceOut != "" || cfg.MetricsOut != "" || cfg.PromOut != "" || cfg.SpansOut != "" {
		rec = obs.NewRecorder(clock)
		engine.Obs = rec
		par.SetObserver(rec.PoolObserver())
		defer par.SetObserver(nil)
	}
	if cfg.Verbose || rec != nil {
		engine.Trace = trace.New(clock)
		engine.Trace.Attach(rec) // nil-safe: a nil sink is ignored
	}
	var plan *fault.Plan
	if cfg.FaultRate > 0 || cfg.FaultSeed != 0 || cfg.FaultSites != "" {
		sites, err := fault.ParseSites(cfg.FaultSites)
		if err != nil {
			return err
		}
		plan = fault.NewPlan(cfg.FaultSeed, cfg.FaultRate).SetClock(clock).SetRecorder(rec)
		if len(sites) > 0 {
			plan.Restrict(sites...)
		}
		engine.Fault = plan
		fmt.Printf("fault injection: seed %d, rate %.2f, sites %s\n\n",
			cfg.FaultSeed, cfg.FaultRate, orAll(cfg.FaultSites))
	}
	src, err := engine.BootHypervisor(fromKind)
	if err != nil {
		return err
	}
	var vmIDs []hv.VMID
	for i := 0; i < cfg.VMs; i++ {
		vm, err := src.CreateVM(hv.Config{
			Name:  fmt.Sprintf("vm-%02d", i),
			VCPUs: cfg.VCPUs, MemBytes: uint64(cfg.MemGiB) << 30, HugePages: true,
			Seed: uint64(100 + i), InPlaceCompatible: true,
		})
		if err != nil {
			return err
		}
		vmIDs = append(vmIDs, vm.ID)
	}
	fmt.Printf("host: %s running %s with %d VM(s) of %d vCPU / %d GiB\n\n",
		profile.Name, src.Name(), cfg.VMs, cfg.VCPUs, cfg.MemGiB)

	var cache *tpcache.Cache
	if !cfg.NoCache {
		cache = tpcache.New()
		cfg.Opts.Cache = cache
		if cfg.WarmPool > 0 {
			staged, err := core.PreStageTranslations(src, srcMachine, cache, cfg.WarmPool)
			if err != nil {
				return err
			}
			fmt.Printf("warm pool: pre-staged %d translation(s)\n\n", staged)
		}
	} else if cfg.WarmPool > 0 {
		return fmt.Errorf("-warm-pool needs the transplant cache; drop -no-cache")
	}

	switch cfg.Mode {
	case "inplace":
		var rep *core.InPlaceReport
		switch cfg.CrashAt {
		case "":
			_, rep, err = engine.InPlace(src, toKind, cfg.Opts)
			if err != nil {
				return err
			}
		case "idle", "hang":
			// Fail-stop (or wedge) the hypervisor between operations and
			// run the salvage path directly — the detector-triggered shape.
			c, ok := src.(hv.Crashable)
			if !ok {
				return fmt.Errorf("hypervisor %s does not model crashes", src.Name())
			}
			if cfg.CrashAt == "hang" {
				c.Hang("operator-injected hang")
				fmt.Printf("hang injected: %s wedged; fencing and salvaging\n\n", src.Name())
			} else {
				c.Crash("operator-injected crash")
				fmt.Printf("crash injected: %s fail-stopped while idle\n\n", src.Name())
			}
			_, rep, err = engine.Emergency(src, toKind, cfg.Opts)
			if err != nil {
				return err
			}
		case "transplant":
			// Force the double fault: the source dies at the worst point,
			// guests paused and state untranslated; the emergency path
			// must finish the job.
			if plan == nil {
				plan = fault.NewPlan(1, 0).SetClock(clock).SetRecorder(rec)
				engine.Fault = plan
			}
			plan.ForceAt(fault.SiteHVCrashDuringTP, 1)
			if _, _, err := engine.InPlace(src, toKind, cfg.Opts); err == nil {
				return fmt.Errorf("forced mid-transplant crash did not fire")
			} else if hterr.Class(err) != hterr.ErrHypervisorCrashed {
				return err
			}
			fmt.Printf("crash injected: %s fail-stopped mid-transplant; transplant abandoned, salvaging\n\n", src.Name())
			_, rep, err = engine.Emergency(src, toKind, cfg.Opts)
			if err != nil {
				return err
			}
		default:
			return fmt.Errorf("unknown -crash-at %q (want idle, hang, or transplant)", cfg.CrashAt)
		}
		title := fmt.Sprintf("InPlaceTP %s → %s on %s", cfg.From, cfg.To, profile.Name)
		if rep.Emergency {
			title = fmt.Sprintf("Emergency transplant %s → %s on %s", cfg.From, cfg.To, profile.Name)
		}
		tab := &metrics.Table{
			Title:   title,
			Headers: []string{"Phase", "Duration"},
		}
		tab.AddRow("PRAM construction (pre-pause)", rep.PRAM.String())
		tab.AddRow("UISR translation", rep.Translation.String())
		tab.AddRow("micro-reboot", rep.Reboot.String())
		tab.AddRow("restoration", rep.Restoration.String())
		tab.AddRow("NIC reinitialization (overlapped)", rep.Network.String())
		tab.AddRow("downtime", rep.Downtime.String())
		tab.AddRow("network downtime", rep.NetworkDowntime.String())
		tab.AddRow("total", rep.Total.String())
		fmt.Println(tab.Render())
		fmt.Printf("overheads: PRAM %d B, UISR %d B, wiped %d frames\n",
			rep.PRAMMetadataBytes, rep.UISRBytes, rep.WipedFrames)
		fmt.Printf("outcome: %s (attempts %d, faults absorbed %d)\n",
			rep.Outcome, rep.Summary().Attempts, rep.Faults)
		if cache != nil {
			fmt.Printf("cache: %s\n", cache.Stats())
		}
		if cfg.Verbose {
			fmt.Printf("\nworkflow trace:\n")
			if _, err := engine.Trace.WriteTo(os.Stdout); err != nil {
				return err
			}
		}
	case "migration":
		if cfg.CrashAt != "" {
			return fmt.Errorf("-crash-at exercises the in-place emergency path; use -mode inplace")
		}
		dstMachine := hw.NewMachine(clock, profile)
		dstEngine := core.NewEngine(clock, dstMachine)
		dst, err := dstEngine.BootHypervisor(toKind)
		if err != nil {
			return err
		}
		link := simnet.NewLink(clock, "pair", simnet.Gbps1, 100*time.Microsecond)
		link.SetRecorder(rec)
		recv := migration.NewReceiver(clock, dst, 1)
		tab := &metrics.Table{
			Title:   fmt.Sprintf("MigrationTP %s → %s over 1 Gbps", cfg.From, cfg.To),
			Headers: []string{"VM", "Rounds", "Bytes sent", "Downtime", "Total", "Attempts", "Outcome"},
		}
		var retry fault.RetryPolicy
		if plan != nil {
			retry = fault.DefaultRetryPolicy()
		}
		for _, id := range vmIDs {
			rep, err := core.MigrationTP(clock, core.MigrationTPParams{
				Link: link, Source: src, Dest: recv, VMID: id, Obs: rec,
				Fault: plan, Retry: retry,
			})
			if err != nil {
				return err
			}
			tab.AddRow(rep.VMName, fmt.Sprint(rep.Rounds), fmt.Sprint(rep.BytesSent),
				rep.Downtime.String(), rep.TotalTime.String(),
				fmt.Sprint(rep.Attempts), string(rep.Outcome))
		}
		fmt.Println(tab.Render())
	default:
		return fmt.Errorf("unknown mode %q (want inplace or migration)", cfg.Mode)
	}
	if cfg.TraceOut != "" {
		if err := writeFileWith(cfg.TraceOut, rec.WriteChromeTrace); err != nil {
			return err
		}
		fmt.Printf("trace: wrote %s (open in Perfetto or chrome://tracing)\n", cfg.TraceOut)
	}
	if cfg.MetricsOut != "" {
		write := func(w io.Writer) error { return rec.Metrics().WriteMetricsJSON(w, false) }
		if err := writeFileWith(cfg.MetricsOut, write); err != nil {
			return err
		}
		fmt.Printf("metrics: wrote %s\n", cfg.MetricsOut)
	}
	if cfg.PromOut != "" {
		write := func(w io.Writer) error { return rec.Metrics().WritePrometheus(w, false) }
		if err := writeFileWith(cfg.PromOut, write); err != nil {
			return err
		}
		fmt.Printf("metrics: wrote %s (Prometheus text format)\n", cfg.PromOut)
	}
	if cfg.SpansOut != "" {
		if err := writeFileWith(cfg.SpansOut, rec.WriteJSONL); err != nil {
			return err
		}
		fmt.Printf("spans: wrote %s (JSONL, one record per line)\n", cfg.SpansOut)
	}
	if cfg.FaultPlan && plan != nil {
		shots := plan.Shots()
		if len(shots) == 0 {
			fmt.Println("fault plan: no shots fired")
		} else {
			fmt.Printf("fault plan: %d shot(s) fired:\n", len(shots))
			for _, s := range shots {
				fmt.Println("  " + s.String())
			}
		}
	}
	return nil
}

// orAll renders an empty site restriction as "all".
func orAll(s string) string {
	if s == "" {
		return "all"
	}
	return s
}

// writeFileWith creates path and streams fn's output into it.
func writeFileWith(path string, fn func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := fn(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
