package main

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"hypertp/internal/core"
	"hypertp/internal/hterr"
	"hypertp/internal/hv"
)

func cfg(mode string) runConfig {
	return runConfig{
		Mode: mode, From: "xen", To: "kvm", Machine: "M1",
		VMs: 1, VCPUs: 1, MemGiB: 1, Opts: core.DefaultOptions(),
	}
}

func TestParseKind(t *testing.T) {
	if k, err := parseKind("xen"); err != nil || k != hv.KindXen {
		t.Fatal("xen parse failed")
	}
	if k, err := parseKind("kvm"); err != nil || k != hv.KindKVM {
		t.Fatal("kvm parse failed")
	}
	if _, err := parseKind("vmware"); err == nil {
		t.Fatal("unknown kind accepted")
	}
}

func TestParseProfile(t *testing.T) {
	for _, s := range []string{"M1", "m1", "M2", "m2"} {
		if _, err := parseProfile(s); err != nil {
			t.Fatalf("%s rejected", s)
		}
	}
	if _, err := parseProfile("M3"); err == nil {
		t.Fatal("unknown profile accepted")
	}
}

func TestRunInPlace(t *testing.T) {
	if err := run(cfg("inplace")); err != nil {
		t.Fatal(err)
	}
}

func TestRunMigration(t *testing.T) {
	c := cfg("migration")
	c.VMs = 2
	if err := run(c); err != nil {
		t.Fatal(err)
	}
}

func TestRunWithPolicyCheck(t *testing.T) {
	c := cfg("inplace")
	c.CVE = "CVE-2016-6258"
	if err := run(c); err != nil {
		t.Fatal(err)
	}
	// Medium flaw: the policy refuses.
	c.CVE = "CVE-2015-8104"
	if err := run(c); err == nil {
		t.Fatal("medium CVE accepted")
	}
	c.CVE = "CVE-0000-0000"
	if err := run(c); err == nil {
		t.Fatal("unknown CVE accepted")
	}
}

func TestRunErrors(t *testing.T) {
	bad := []runConfig{}
	c := cfg("teleport")
	bad = append(bad, c)
	c = cfg("inplace")
	c.From = "qnx"
	bad = append(bad, c)
	c = cfg("inplace")
	c.To = "qnx"
	bad = append(bad, c)
	c = cfg("inplace")
	c.Machine = "M9"
	bad = append(bad, c)
	for i, c := range bad {
		if err := run(c); err == nil {
			t.Fatalf("bad config %d accepted", i)
		}
	}
}

// The -fault-seed/-fault-rate/-fault-sites path for both modes: forced
// crash recovery for inplace, a lossy link for migration — both runs
// complete (recovered), and an unrecoverable site combination surfaces
// a classified error.
func TestRunWithFaultInjection(t *testing.T) {
	c := cfg("inplace")
	c.FaultSeed, c.FaultRate, c.FaultSites = 42, 1, "kexec.handover"
	c.FaultPlan = true
	if err := run(c); err != nil {
		t.Fatal(err)
	}

	c = cfg("migration")
	c.FaultSeed, c.FaultRate, c.FaultSites = 42, 1, "link.loss"
	if err := run(c); err != nil {
		t.Fatal(err)
	}

	// Severing every attempt exhausts the retry budget: the migration
	// aborts to the source with a classified error.
	c = cfg("migration")
	c.FaultSeed, c.FaultRate, c.FaultSites = 42, 1, "link.abort"
	err := run(c)
	if !errors.Is(err, hterr.ErrAborted) || !errors.Is(err, hterr.ErrInjected) {
		t.Fatalf("err = %v, want aborted+injected", err)
	}

	// Unknown site rejected.
	c = cfg("inplace")
	c.FaultSites = "no.such.site"
	if err := run(c); err == nil {
		t.Fatal("unknown fault site accepted")
	}
}

// The -crash-at path: every injection point ends in a completed
// emergency transplant; migration mode and unknown points are rejected,
// and an unrecovered crash maps to the exit-2 convention.
func TestRunCrashAt(t *testing.T) {
	for _, at := range []string{"idle", "hang", "transplant"} {
		c := cfg("inplace")
		c.VMs = 2
		c.CrashAt = at
		if err := run(c); err != nil {
			t.Fatalf("-crash-at %s: %v", at, err)
		}
	}
	c := cfg("inplace")
	c.CrashAt = "restore"
	if err := run(c); err == nil {
		t.Fatal("unknown -crash-at accepted")
	}
	c = cfg("migration")
	c.CrashAt = "idle"
	if err := run(c); err == nil {
		t.Fatal("-crash-at with -mode migration accepted")
	}
	if got := exitWithLabel("tpctl", hterr.HypervisorCrashed(errors.New("frozen"))); got != 2 {
		t.Fatalf("unrecovered crash exits %d, want 2", got)
	}
	if got := exitWithLabel("tpctl", errors.New("plain")); got != 1 {
		t.Fatalf("plain error exits %d, want 1", got)
	}
}

// TestRunTraceAndMetricsOut exercises the -trace-out/-metrics-out paths
// for both modes and checks the files are valid, non-empty JSON.
func TestRunTraceAndMetricsOut(t *testing.T) {
	dir := t.TempDir()
	for _, mode := range []string{"inplace", "migration"} {
		c := cfg(mode)
		c.TraceOut = filepath.Join(dir, mode+"-trace.json")
		c.MetricsOut = filepath.Join(dir, mode+"-metrics.json")
		if err := run(c); err != nil {
			t.Fatalf("%s: %v", mode, err)
		}
		var tr struct {
			TraceEvents []map[string]any `json:"traceEvents"`
		}
		data, err := os.ReadFile(c.TraceOut)
		if err != nil {
			t.Fatal(err)
		}
		if err := json.Unmarshal(data, &tr); err != nil {
			t.Fatalf("%s: trace is not valid JSON: %v", mode, err)
		}
		if len(tr.TraceEvents) == 0 {
			t.Fatalf("%s: empty trace", mode)
		}
		var mets map[string]any
		data, err = os.ReadFile(c.MetricsOut)
		if err != nil {
			t.Fatal(err)
		}
		if err := json.Unmarshal(data, &mets); err != nil {
			t.Fatalf("%s: metrics not valid JSON: %v", mode, err)
		}
		if len(mets) == 0 {
			t.Fatalf("%s: empty metrics", mode)
		}
	}
}

// The -warm-pool/-no-cache flags: pre-staging warms the run, the
// prom dump carries the hypertp_tpcache_* series, and -warm-pool
// without the cache is rejected.
func TestRunWarmPoolAndNoCache(t *testing.T) {
	dir := t.TempDir()
	c := cfg("inplace")
	c.VMs = 2
	c.WarmPool = 2
	c.PromOut = filepath.Join(dir, "warm.prom")
	if err := run(c); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(c.PromOut)
	if err != nil {
		t.Fatal(err)
	}
	for _, series := range []string{"hypertp_tpcache_hits_total", "hypertp_tpcache_warm_starts_total"} {
		if !strings.Contains(string(data), series) {
			t.Fatalf("prom dump missing %s:\n%s", series, data)
		}
	}

	c = cfg("inplace")
	c.NoCache = true
	if err := run(c); err != nil {
		t.Fatal(err)
	}

	c = cfg("inplace")
	c.NoCache = true
	c.WarmPool = 2
	if err := run(c); err == nil {
		t.Fatal("-warm-pool with -no-cache accepted")
	}
}
