package main

import (
	"testing"

	"hypertp/internal/core"
	"hypertp/internal/hv"
)

func defaultOpts() core.Options { return core.DefaultOptions() }

func TestParseKind(t *testing.T) {
	if k, err := parseKind("xen"); err != nil || k != hv.KindXen {
		t.Fatal("xen parse failed")
	}
	if k, err := parseKind("kvm"); err != nil || k != hv.KindKVM {
		t.Fatal("kvm parse failed")
	}
	if _, err := parseKind("vmware"); err == nil {
		t.Fatal("unknown kind accepted")
	}
}

func TestParseProfile(t *testing.T) {
	for _, s := range []string{"M1", "m1", "M2", "m2"} {
		if _, err := parseProfile(s); err != nil {
			t.Fatalf("%s rejected", s)
		}
	}
	if _, err := parseProfile("M3"); err == nil {
		t.Fatal("unknown profile accepted")
	}
}

func TestRunInPlace(t *testing.T) {
	if err := run("inplace", "xen", "kvm", "M1", 1, 1, 1, "", defaultOpts(), false); err != nil {
		t.Fatal(err)
	}
}

func TestRunMigration(t *testing.T) {
	if err := run("migration", "xen", "kvm", "M1", 2, 1, 1, "", defaultOpts(), false); err != nil {
		t.Fatal(err)
	}
}

func TestRunWithPolicyCheck(t *testing.T) {
	if err := run("inplace", "xen", "kvm", "M1", 1, 1, 1, "CVE-2016-6258", defaultOpts(), false); err != nil {
		t.Fatal(err)
	}
	// Medium flaw: the policy refuses.
	if err := run("inplace", "xen", "kvm", "M1", 1, 1, 1, "CVE-2015-8104", defaultOpts(), false); err == nil {
		t.Fatal("medium CVE accepted")
	}
	if err := run("inplace", "xen", "kvm", "M1", 1, 1, 1, "CVE-0000-0000", defaultOpts(), false); err == nil {
		t.Fatal("unknown CVE accepted")
	}
}

func TestRunErrors(t *testing.T) {
	if err := run("teleport", "xen", "kvm", "M1", 1, 1, 1, "", defaultOpts(), false); err == nil {
		t.Fatal("unknown mode accepted")
	}
	if err := run("inplace", "qnx", "kvm", "M1", 1, 1, 1, "", defaultOpts(), false); err == nil {
		t.Fatal("unknown source accepted")
	}
	if err := run("inplace", "xen", "qnx", "M1", 1, 1, 1, "", defaultOpts(), false); err == nil {
		t.Fatal("unknown target accepted")
	}
	if err := run("inplace", "xen", "kvm", "M9", 1, 1, 1, "", defaultOpts(), false); err == nil {
		t.Fatal("unknown machine accepted")
	}
}
