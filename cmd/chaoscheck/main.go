// Command chaoscheck runs the randomized fleet soak: generate a seeded
// scenario of fleet operations (transplants both directions, live
// migrations, CVE responses, quarantines, fabric cuts, planner sweeps)
// under deterministic fault injection, audit every global invariant
// after each step, and — on a violation — shrink the scenario to a
// minimal reproduction and write a replay bundle.
//
// Usage:
//
//	chaoscheck -seed 1 -ops 500
//	chaoscheck -seed 7 -ops 500 -fault-rate 0.2 -bundle-out fail.json
//	chaoscheck -replay fail.json
//	chaoscheck -seed 1 -ops 200 -break leak-frame     # auditor self-test
//	chaoscheck -seed 1 -ops 500 -stream -flight-cap 256
//	chaoscheck -seed 1 -ops 500 -crash                # crash-storm soak
//	chaoscheck -seed 3 -ops 50 -record-out trace.json # record a corpus trace
//
// -record-out writes the run's operation trace — violation or not — as
// a replayable trace bundle: the corpus format of the differential
// fuzzers (internal/difffuzz). A recorded bundle replays with -replay
// and, prefixed with an 8-byte mutation seed, seeds FuzzTransplantTrace.
//
// -crash grows the op vocabulary with the reactive-recovery kinds:
// single-host fail-stops and hangs (recovered by an emergency
// transplant to the other hypervisor), fleet-wide crash storms swept by
// the scheduled recovery, and mid-transplant double faults that must
// ride the driver's self-heal. The auditor proves frame ownership,
// guest memory checksums and Nova bookkeeping survive every recovery.
//
// -stream runs the soak on the bounded-memory streaming pipeline: span
// trees are released as they end and the last -flight-cap of them are
// kept in a flight recorder, which the structural audit consumes. On a
// violation, the run's metrics registry (chaos-metrics.json) and the
// flight-recorder spans (chaos-flight.jsonl) are written to
// -artifact-dir alongside the replay bundle.
//
// The run is deterministic: identical flags produce an identical
// summary, trace, and (on failure) a byte-identical bundle at any
// -workers count. Exit status: 0 when every invariant held, 2 on an
// invariant or watchdog violation (the hterr label is printed), 1 on
// usage or setup errors.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"hypertp/internal/chaos"
	"hypertp/internal/hterr"
	"hypertp/internal/par"
)

func main() {
	var (
		seed      = flag.Uint64("seed", 1, "scenario seed (drives ops and fault plans)")
		ops       = flag.Int("ops", 200, "number of fleet operations")
		hosts     = flag.Int("hosts", 4, "fleet size (hosts alternate xen/kvm)")
		vms       = flag.Int("vms", 6, "tenant VMs booted before the first op")
		faultRate = flag.Float64("fault-rate", 0.15, "per-site fault probability for ops carrying a plan")
		crash     = flag.Bool("crash", false, "grow the op vocabulary with hypervisor crashes, hangs, crash storms and mid-transplant double faults (reactive recovery)")
		opBudget  = flag.Duration("op-budget", chaos.DefaultOpBudget, "virtual-time watchdog budget per operation")
		breaker   = flag.String("break", "", "arm a deliberate invariant breaker: leak-frame or corrupt-memory")
		noShrink  = flag.Bool("no-shrink", false, "skip shrinking on violation (report the raw failure)")
		bundleOut = flag.String("bundle-out", "chaos-bundle.json", "replay bundle path written on violation")
		stream    = flag.Bool("stream", false, "bounded-memory streaming observability: span trees flow into a flight recorder instead of being retained")
		flightCap = flag.Int("flight-cap", 0, "flight-recorder capacity for -stream (0 = default)")
		artDir    = flag.String("artifact-dir", ".", "directory for violation artifacts (chaos-metrics.json, chaos-flight.jsonl)")
		replay    = flag.String("replay", "", "replay a previously written bundle instead of generating")
		recordOut = flag.String("record-out", "", "record the generated operation trace as a replayable corpus bundle (difffuzz seed material), violation or not")
		workers   = flag.Int("workers", 0, "host worker pool size (0 = GOMAXPROCS); results are identical for any value")
		verbose   = flag.Bool("v", false, "print the per-op trace")
	)
	flag.Parse()
	par.SetWorkers(*workers)
	code, err := run(runConfig{
		Config: chaos.Config{
			Seed: *seed, Ops: *ops, Hosts: *hosts, VMs: *vms,
			FaultRate: *faultRate, OpBudget: *opBudget, Break: *breaker,
			Stream: *stream, FlightCap: *flightCap, Crash: *crash,
		},
		Shrink: !*noShrink, BundleOut: *bundleOut, Replay: *replay,
		RecordOut: *recordOut, ArtifactDir: *artDir, Verbose: *verbose,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "chaoscheck:", err)
	}
	os.Exit(code)
}

type runConfig struct {
	chaos.Config
	Shrink      bool
	BundleOut   string
	Replay      string
	RecordOut   string
	ArtifactDir string
	Verbose     bool
}

// writeArtifacts dumps the failing run's metrics registry and (when
// streaming) its flight-recorder contents next to the bundle, so a CI
// violation ships with the observability state that surrounds it.
func writeArtifacts(dir string, res *chaos.Result) error {
	if res.Obs != nil {
		path := filepath.Join(dir, "chaos-metrics.json")
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := res.Obs.Metrics().WriteMetricsJSON(f, false); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("artifact: wrote %s\n", path)
	}
	if res.Flight != nil {
		path := filepath.Join(dir, "chaos-flight.jsonl")
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := res.Flight.WriteJSONL(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("artifact: wrote %s (%d span records, %d evicted)\n",
			path, res.Flight.Len(), res.Flight.Evicted())
	}
	return nil
}

func run(cfg runConfig) (int, error) {
	start := time.Now()
	var res *chaos.Result
	var err error
	expectViolation := false
	if cfg.Replay != "" {
		data, rerr := os.ReadFile(cfg.Replay)
		if rerr != nil {
			return 1, rerr
		}
		b, perr := chaos.ParseBundle(data)
		if perr != nil {
			return 1, perr
		}
		expectViolation = b.IsFailure()
		if expectViolation {
			fmt.Printf("replaying %s: %d op(s), expected violation: %s\n", cfg.Replay, len(b.Ops), b.Invariant)
		} else {
			fmt.Printf("replaying %s: %d op(s), recorded trace (no expected violation)\n", cfg.Replay, len(b.Ops))
		}
		res, err = b.Replay()
	} else {
		res, err = chaos.Run(cfg.Config)
	}
	if err != nil {
		return 1, err
	}
	if cfg.Verbose {
		for _, line := range res.Trace {
			fmt.Println(line)
		}
		fmt.Println()
	}
	fmt.Print(res.Summary())
	fmt.Printf("wall time: %v\n", time.Since(start).Round(time.Millisecond))

	if cfg.RecordOut != "" {
		data, merr := chaos.NewTraceBundle(res.Config, res.Ops).Marshal()
		if merr != nil {
			return 1, merr
		}
		if werr := os.WriteFile(cfg.RecordOut, data, 0o644); werr != nil {
			return 1, werr
		}
		fmt.Printf("record: wrote %s (%d op(s); replay with -replay, or feed to the difffuzz corpus)\n",
			cfg.RecordOut, len(res.Ops))
	}

	if res.Failure == nil {
		if expectViolation {
			// A replay that no longer violates means the bug is fixed (or
			// the bundle is stale) — worth a loud note, but a clean exit.
			fmt.Println("replay: violation did not reproduce")
		}
		return 0, nil
	}

	ferr := res.Failure.Err()
	if cfg.ArtifactDir != "" {
		if aerr := writeArtifacts(cfg.ArtifactDir, res); aerr != nil {
			return 1, aerr
		}
	}
	if cfg.Replay == "" && cfg.Shrink {
		ops, fail := chaos.Shrink(res.Config, res.Ops, res.Failure)
		fmt.Printf("shrunk: %d op(s) reproduce the %s violation\n", len(ops), fail.Invariant)
		rerun, rerr := chaos.RunOps(res.Config, ops)
		var trace []string
		if rerr == nil {
			trace = rerun.Trace
		}
		data, merr := chaos.NewBundle(res.Config, ops, fail, trace).Marshal()
		if merr != nil {
			return 1, merr
		}
		if werr := os.WriteFile(cfg.BundleOut, data, 0o644); werr != nil {
			return 1, werr
		}
		fmt.Printf("bundle: wrote %s (replay with -replay %s)\n", cfg.BundleOut, cfg.BundleOut)
		ferr = fail.Err()
	}
	return 2, fmt.Errorf("%s: %v", hterr.Label(hterr.Class(ferr)), ferr)
}
