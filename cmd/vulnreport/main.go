// Command vulnreport prints the §2 vulnerability study: the Table 1
// per-year counts, the §2.2 window statistics, the common-vulnerability
// list, and the transplant decision policy applied to the named
// real-world flaws.
package main

import (
	"fmt"

	"hypertp/internal/experiments"
	"hypertp/internal/metrics"
)

func main() {
	db, tab := experiments.Table1()
	fmt.Println(tab.Render())

	_, winTab := experiments.Section22Windows()
	fmt.Println(winTab.Render())

	common := &metrics.Table{
		Title:   "Common vulnerabilities between Xen and KVM (2013-2019)",
		Headers: []string{"CVE", "Year", "CVSS", "Category", "Description"},
	}
	for _, r := range db.CommonVulnerabilities() {
		desc := r.Description
		if len(desc) > 60 {
			desc = desc[:57] + "..."
		}
		common.AddRow(r.ID, fmt.Sprint(r.Year), fmt.Sprintf("%.1f", r.CVSS),
			string(r.Category), desc)
	}
	fmt.Println(common.Render())

	dec := &metrics.Table{
		Title:   "Transplant decision policy (Xen datacenter)",
		Headers: []string{"CVE", "Pool size", "Transplant?", "Target"},
	}
	for _, d := range experiments.Decisions() {
		target := d.Target
		if target == "" {
			target = "-"
		}
		dec.AddRow(d.CVE, fmt.Sprint(d.Pool), fmt.Sprint(d.Transplant), target)
	}
	fmt.Println(dec.Render())
}
