// Command tracecheck validates observability exports produced by
// tpctl/clustersim. The default mode checks a Chrome trace_event JSON
// file: it must parse, be non-empty, contain only well-formed complete
// ("X") and instant ("i") events, and — with -require-steps — cover
// every Fig. 3 workflow step as a span. The Makefile's trace-demo
// target uses it as the end-to-end check that the observability
// pipeline emits something a human can actually open.
//
// -jsonl switches to validating a streamed span-record file
// (-spans-out / -stream-out / a flight-recorder dump): every line must
// be one span record with end >= start, ids unique, and every child
// contained in its parent's interval when the parent is present —
// sampled or evicted parents are tolerated, because streaming exports
// are allowed to keep or drop whole roots.
//
// Usage:
//
//	tracecheck -require-steps trace.json
//	tracecheck -jsonl spans.jsonl
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"hypertp/internal/trace"
)

type traceEvent struct {
	Name  string         `json:"name"`
	Phase string         `json:"ph"`
	TS    *float64       `json:"ts"`
	Dur   *float64       `json:"dur"`
	PID   *int           `json:"pid"`
	TID   *int           `json:"tid"`
	Args  map[string]any `json:"args"`
}

type traceFile struct {
	TraceEvents []traceEvent   `json:"traceEvents"`
	OtherData   map[string]any `json:"otherData"`
}

// fig3Steps are the workflow phases an in-place transplant trace must
// cover (Fig. 3 of the paper; the engine names its phase spans after
// the trace step constants).
var fig3Steps = []string{
	trace.StepLoadImage, trace.StepPRAMBuild, trace.StepPause,
	trace.StepTranslate, trace.StepKexec, trace.StepBoot,
	trace.StepPRAMParse, trace.StepRestore, trace.StepResume,
	trace.StepCleanup,
}

func main() {
	requireSteps := flag.Bool("require-steps", false,
		"require every Fig. 3 workflow step to appear as a span")
	jsonl := flag.Bool("jsonl", false,
		"validate a streamed span-record JSONL file instead of a Chrome trace")
	allowEmpty := flag.Bool("allow-empty", false,
		"accept an empty -jsonl file (aggressive sampling may drop every root)")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: tracecheck [-require-steps | -jsonl [-allow-empty]] <file>")
		os.Exit(2)
	}
	var err error
	if *jsonl {
		err = checkJSONL(flag.Arg(0), *allowEmpty)
	} else {
		err = check(flag.Arg(0), *requireSteps)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracecheck:", err)
		os.Exit(1)
	}
}

func check(path string, requireSteps bool) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var tf traceFile
	if err := json.Unmarshal(data, &tf); err != nil {
		return fmt.Errorf("%s: not valid JSON: %w", path, err)
	}
	if len(tf.TraceEvents) == 0 {
		return fmt.Errorf("%s: no trace events", path)
	}
	spans := map[string]int{}
	instants := 0
	for i, ev := range tf.TraceEvents {
		if ev.Name == "" {
			return fmt.Errorf("%s: event %d has no name", path, i)
		}
		if ev.TS == nil || ev.PID == nil || ev.TID == nil {
			return fmt.Errorf("%s: event %d (%q) missing ts/pid/tid", path, i, ev.Name)
		}
		switch ev.Phase {
		case "X":
			if ev.Dur == nil || *ev.Dur < 0 {
				return fmt.Errorf("%s: complete event %q has bad dur", path, ev.Name)
			}
			spans[ev.Name]++
		case "i":
			instants++
		default:
			return fmt.Errorf("%s: event %q has unexpected phase %q", path, ev.Name, ev.Phase)
		}
	}
	if requireSteps {
		var missing []string
		for _, step := range fig3Steps {
			if spans[step] == 0 {
				missing = append(missing, step)
			}
		}
		if len(missing) > 0 {
			return fmt.Errorf("%s: missing Fig. 3 step spans %v", path, missing)
		}
	}
	fmt.Printf("%s: ok — %d span events, %d instant events, %d distinct span names\n",
		path, len(tf.TraceEvents)-instants, instants, len(spans))
	return nil
}

// spanRecord mirrors the streamed JSONL line format (obs.SpanRecord).
type spanRecord struct {
	ID     int               `json:"id"`
	Parent int               `json:"parent"`
	Depth  int               `json:"depth"`
	Name   string            `json:"name"`
	Track  string            `json:"track"`
	Start  int64             `json:"start_ns"`
	End    int64             `json:"end_ns"`
	Attrs  map[string]string `json:"attrs"`
	Events []struct {
		T      int64  `json:"t_ns"`
		Name   string `json:"name"`
		Detail string `json:"detail"`
	} `json:"events"`
}

// checkJSONL validates a streamed span-record file. Ids restart at 0 on
// every root (parent -1) line — one flattened root tree is one batch —
// so structural checks run per batch. Records whose parent is absent
// from the batch are tolerated: head sampling keeps or drops whole
// roots, and a flight recorder's ring evicts batch prefixes.
func checkJSONL(path string, allowEmpty bool) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()

	var lines, roots, orphans int
	batch := map[int]spanRecord{}
	lastID := -1
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			return fmt.Errorf("%s: line %d is empty", path, lines+1)
		}
		var rec spanRecord
		if err := json.Unmarshal(line, &rec); err != nil {
			return fmt.Errorf("%s: line %d: not a span record: %w", path, lines+1, err)
		}
		lines++
		if rec.Name == "" {
			return fmt.Errorf("%s: line %d has no span name", path, lines)
		}
		if rec.End < rec.Start {
			return fmt.Errorf("%s: line %d (%q): end %d before start %d", path, lines, rec.Name, rec.End, rec.Start)
		}
		// Ids strictly increase within one flattened root; a root line or
		// an id non-increase (an evicted batch boundary) opens a fresh id
		// space, which also makes duplicate ids impossible within a batch.
		if rec.Parent == -1 || rec.ID <= lastID {
			batch = map[int]spanRecord{}
			if rec.Parent == -1 {
				roots++
				if rec.Depth != 0 {
					return fmt.Errorf("%s: line %d: root %q has depth %d", path, lines, rec.Name, rec.Depth)
				}
			}
		}
		lastID = rec.ID
		if rec.Parent != -1 {
			p, ok := batch[rec.Parent]
			if !ok {
				orphans++ // parent sampled away or evicted: tolerated
			} else {
				if rec.Depth != p.Depth+1 {
					return fmt.Errorf("%s: line %d (%q): depth %d under parent of depth %d", path, lines, rec.Name, rec.Depth, p.Depth)
				}
				if rec.Start < p.Start || rec.End > p.End {
					return fmt.Errorf("%s: line %d (%q): [%d,%d] escapes parent %q [%d,%d]",
						path, lines, rec.Name, rec.Start, rec.End, p.Name, p.Start, p.End)
				}
			}
		}
		batch[rec.ID] = rec
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if lines == 0 && !allowEmpty {
		return fmt.Errorf("%s: no span records (use -allow-empty if sampling dropped every root)", path)
	}
	fmt.Printf("%s: ok — %d span records, %d roots, %d orphaned records\n", path, lines, roots, orphans)
	return nil
}
