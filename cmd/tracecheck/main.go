// Command tracecheck validates a Chrome trace_event JSON file produced
// by tpctl/clustersim: it must parse, be non-empty, contain only
// well-formed complete ("X") and instant ("i") events, and — with
// -require-steps — cover every Fig. 3 workflow step as a span. The
// Makefile's trace-demo target uses it as the end-to-end check that the
// observability pipeline emits something a human can actually open.
//
// Usage:
//
//	tracecheck -require-steps trace.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"hypertp/internal/trace"
)

type traceEvent struct {
	Name  string         `json:"name"`
	Phase string         `json:"ph"`
	TS    *float64       `json:"ts"`
	Dur   *float64       `json:"dur"`
	PID   *int           `json:"pid"`
	TID   *int           `json:"tid"`
	Args  map[string]any `json:"args"`
}

type traceFile struct {
	TraceEvents []traceEvent   `json:"traceEvents"`
	OtherData   map[string]any `json:"otherData"`
}

// fig3Steps are the workflow phases an in-place transplant trace must
// cover (Fig. 3 of the paper; the engine names its phase spans after
// the trace step constants).
var fig3Steps = []string{
	trace.StepLoadImage, trace.StepPRAMBuild, trace.StepPause,
	trace.StepTranslate, trace.StepKexec, trace.StepBoot,
	trace.StepPRAMParse, trace.StepRestore, trace.StepResume,
	trace.StepCleanup,
}

func main() {
	requireSteps := flag.Bool("require-steps", false,
		"require every Fig. 3 workflow step to appear as a span")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: tracecheck [-require-steps] <trace.json>")
		os.Exit(2)
	}
	if err := check(flag.Arg(0), *requireSteps); err != nil {
		fmt.Fprintln(os.Stderr, "tracecheck:", err)
		os.Exit(1)
	}
}

func check(path string, requireSteps bool) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var tf traceFile
	if err := json.Unmarshal(data, &tf); err != nil {
		return fmt.Errorf("%s: not valid JSON: %w", path, err)
	}
	if len(tf.TraceEvents) == 0 {
		return fmt.Errorf("%s: no trace events", path)
	}
	spans := map[string]int{}
	instants := 0
	for i, ev := range tf.TraceEvents {
		if ev.Name == "" {
			return fmt.Errorf("%s: event %d has no name", path, i)
		}
		if ev.TS == nil || ev.PID == nil || ev.TID == nil {
			return fmt.Errorf("%s: event %d (%q) missing ts/pid/tid", path, i, ev.Name)
		}
		switch ev.Phase {
		case "X":
			if ev.Dur == nil || *ev.Dur < 0 {
				return fmt.Errorf("%s: complete event %q has bad dur", path, ev.Name)
			}
			spans[ev.Name]++
		case "i":
			instants++
		default:
			return fmt.Errorf("%s: event %q has unexpected phase %q", path, ev.Name, ev.Phase)
		}
	}
	if requireSteps {
		var missing []string
		for _, step := range fig3Steps {
			if spans[step] == 0 {
				missing = append(missing, step)
			}
		}
		if len(missing) > 0 {
			return fmt.Errorf("%s: missing Fig. 3 step spans %v", path, missing)
		}
	}
	fmt.Printf("%s: ok — %d span events, %d instant events, %d distinct span names\n",
		path, len(tf.TraceEvents)-instants, instants, len(spans))
	return nil
}
