// Command sloreport runs a fleet CVE response and prints the
// vulnerability-window SLO report: the per-CVE fleet remediation
// timeline (per-host remediation latency vs disclosure, p50/p95/max),
// the burn-rate verdict against the declared target ("99% of hosts
// remediated within the CVE's remediation window of disclosure"), and
// the per-VM downtime summary.
//
// Usage:
//
//	sloreport -hosts 50 -vms 100
//	sloreport -cve CVE-2016-6258 -kexecs 8 -streams 8 -strict
//	sloreport -prom-out slo.prom
//	sloreport -crash-hosts 5 -mttr-budget 10s    # availability + MTTR verdict
//
// -crash-hosts fail-stops that many hosts before the response; the
// reactive recovery path salvages them with emergency transplants and
// the report gains the availability section (unplanned outages, MTTR
// p50/p95/max, and — with -mttr-budget — a PASS/FAIL verdict that
// -strict enforces). An unrecovered crash exits with status 2.
//
// The report is deterministic: byte-identical for any -workers count.
// -strict exits with status 3 when any declared SLO fails; -prom-out
// additionally dumps the run's metrics registry (including the slo.*
// series) in Prometheus text exposition format.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"hypertp/internal/core"
	"hypertp/internal/hterr"
	"hypertp/internal/hv"
	"hypertp/internal/hw"
	"hypertp/internal/obs"
	"hypertp/internal/orchestrator"
	"hypertp/internal/par"
	"hypertp/internal/reactive"
	"hypertp/internal/sched"
	"hypertp/internal/simnet"
	"hypertp/internal/simtime"
	"hypertp/internal/slo"
	"hypertp/internal/vulndb"
)

func main() {
	var (
		hosts   = flag.Int("hosts", 20, "fleet size (all hosts start on the vulnerable hypervisor)")
		vms     = flag.Int("vms", 40, "tenant VM population")
		cve     = flag.String("cve", "CVE-2016-6258", "the disclosed vulnerability to respond to")
		kexecs  = flag.Int("kexecs", 4, "simultaneous-kexec cap for the response schedule")
		streams = flag.Int("streams", 4, "fabric migration-stream cap for the response schedule")
		workers = flag.Int("workers", 0, "worker-pool width (0 = library default; the report is identical for any width)")
		promOut = flag.String("prom-out", "", "write the run's metrics registry in Prometheus text format")
		strict  = flag.Bool("strict", false, "exit 3 when any declared SLO fails")
		crashes = flag.Int("crash-hosts", 0, "fail-stop this many hosts before the response; the reactive path recovers them and the report gains the availability section")
		mttr    = flag.Duration("mttr-budget", 0, "declare an MTTR budget (p99 of outages repaired within this window; 0 = none declared)")
	)
	flag.Parse()
	if *workers > 0 {
		par.SetWorkers(*workers)
	}
	code, err := run(os.Stdout, *hosts, *vms, *cve, *kexecs, *streams, *promOut, *strict, *crashes, *mttr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "sloreport: %v\n", err)
		if class := hterr.Class(err); class != nil {
			fmt.Fprintf(os.Stderr, "sloreport: class: %s\n", hterr.Label(class))
		}
	}
	os.Exit(code)
}

func run(w io.Writer, hosts, vms int, cve string, kexecs, streams int, promOut string, strict bool, crashes int, mttr time.Duration) (int, error) {
	clock := simtime.NewClock()
	fabric := simnet.NewLink(clock, "fabric", simnet.Gbps10, 100*time.Microsecond)
	nova := orchestrator.NewNova(clock, fabric)
	rec := obs.NewRecorder(clock)
	nova.SetRecorder(rec)
	tracker := slo.NewTracker()
	tracker.SetRegistry(rec.Metrics())
	nova.SetSLO(tracker)

	for i := 0; i < hosts; i++ {
		name := fmt.Sprintf("host-%03d", i)
		prof := hw.M1()
		prof.Name = name
		prof.RAMBytes = 2 * hw.GiB
		d, err := orchestrator.NewLibvirtDriver(clock, hw.NewMachine(clock, prof), hv.KindXen)
		if err != nil {
			return 1, err
		}
		if err := nova.AddNode(name, d); err != nil {
			return 1, err
		}
	}
	for i := 0; i < vms; i++ {
		_, err := nova.BootVM(hv.Config{
			Name: fmt.Sprintf("vm-%04d", i), VCPUs: 1, MemBytes: 64 << 20,
			HugePages: true, Seed: 7 + uint64(i), InPlaceCompatible: i%4 != 3,
		})
		if err != nil {
			return 1, fmt.Errorf("boot vm %d: %w", i, err)
		}
	}

	limits := sched.Limits{MaxKexecs: kexecs, LinkStreams: streams}
	nova.SetFleetLimits(&limits)

	var (
		storm *orchestrator.StormResponse
		err   error
	)
	if crashes > 0 {
		// An unplanned crash storm ahead of the disclosure: the reactive
		// path recovers the hosts and charges the outage time into the
		// MTTR/availability timeline the report renders below.
		if crashes > hosts {
			crashes = hosts
		}
		if mttr > 0 {
			tracker.SetMTTRBudget(slo.Target{Quantile: slo.DefaultQuantile, Window: mttr})
		}
		nova.SetDetector(reactive.NewDetector(reactive.ProbeConfig{Seed: 42}))
		for i := 0; i < crashes; i++ {
			clock.Advance(37 * time.Millisecond)
			if _, err := nova.CrashHost(fmt.Sprintf("host-%03d", i*hosts/crashes), "injected fail-stop"); err != nil {
				return 1, err
			}
		}
		storm, err = nova.RecoverFleet(core.DefaultOptions())
		if err != nil {
			return 1, err
		}
		if n := len(storm.FrozenNodes) + len(storm.LostNodes); n > 0 {
			return 2, hterr.HypervisorCrashed(fmt.Errorf(
				"%d of %d crashed hosts not recovered (frozen %v, lost %v)",
				n, len(storm.DownHosts), storm.FrozenNodes, storm.LostNodes))
		}
	}

	resp, err := nova.RespondToCVE(vulndb.Load(), cve, []string{"xen", "kvm"}, core.DefaultOptions())
	if err != nil {
		return 1, err
	}
	now := clock.Now()

	if storm != nil {
		fmt.Fprintf(w, "reactive recovery: %d hosts crashed, %d recovered in %v\n",
			len(storm.DownHosts), len(storm.RecoveredNodes), storm.Elapsed.Round(time.Millisecond))
	}
	fmt.Fprintf(w, "fleet response: %s — %d upgraded, %d skipped, %d quarantined in %v (%s)\n\n",
		cve, len(resp.UpgradedNodes), len(resp.SkippedNodes), len(resp.QuarantinedNodes),
		resp.Elapsed.Round(time.Millisecond), resp.Outcome)
	if err := tracker.WriteReport(w, now); err != nil {
		return 1, err
	}
	if promOut != "" {
		f, err := os.Create(promOut)
		if err != nil {
			return 1, err
		}
		if err := rec.Metrics().WritePrometheus(f, false); err != nil {
			f.Close()
			return 1, err
		}
		if err := f.Close(); err != nil {
			return 1, err
		}
		fmt.Fprintf(w, "metrics: wrote %s (Prometheus text format)\n", promOut)
	}
	if strict && !tracker.Pass(now) {
		return 3, fmt.Errorf("SLO violated (see report above)")
	}
	return 0, nil
}
