package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const benchOutput = `goos: linux
goarch: amd64
pkg: hypertp
cpu: Some CPU @ 2.10GHz
BenchmarkInPlaceTransplant-8   	      10	 100000000 ns/op	 5000000 B/op	   40000 allocs/op
BenchmarkMigrationTP-8         	       5	 200000000 ns/op	 9000000 B/op	   80000 allocs/op
PASS
ok  	hypertp	3.000s
`

func writeFile(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestParseBench(t *testing.T) {
	got, err := parseBench(strings.NewReader(benchOutput))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("parsed %d benchmarks, want 2", len(got))
	}
	e := got["BenchmarkInPlaceTransplant"]
	if e.NsOp != 100000000 || e.AllocsOp != 40000 {
		t.Fatalf("entry = %+v", e)
	}
}

// With -count > 1 each benchmark repeats; the minimum of every measure
// must win, independently per column.
func TestParseBenchKeepsMinAcrossCounts(t *testing.T) {
	got, err := parseBench(strings.NewReader(
		"BenchmarkX-8  10  500 ns/op  64 B/op  9 allocs/op\n" +
			"BenchmarkX-8  10  300 ns/op  64 B/op  12 allocs/op\n"))
	if err != nil {
		t.Fatal(err)
	}
	e := got["BenchmarkX"]
	if e.NsOp != 300 || e.AllocsOp != 9 {
		t.Fatalf("entry = %+v, want min ns/op 300 and min allocs/op 9", e)
	}
}

func TestMatchingRunPasses(t *testing.T) {
	input := writeFile(t, "bench.txt", benchOutput)
	basePath := writeFile(t, "base.json", `{"benchmarks":{
		"BenchmarkInPlaceTransplant":{"ns_op":100000000,"allocs_op":40000},
		"BenchmarkMigrationTP":{"ns_op":210000000,"allocs_op":80000}}}`)
	var out, errOut bytes.Buffer
	if code := run([]string{"-input", input, "-baseline", basePath}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d; stdout:\n%s\nstderr:\n%s", code, out.String(), errOut.String())
	}
}

// The synthetically regressed fixture: the baseline promises half the
// ns/op the run delivers. The gate must exit non-zero.
func TestSyntheticNsOpRegressionFails(t *testing.T) {
	input := writeFile(t, "bench.txt", benchOutput)
	basePath := writeFile(t, "base.json", `{"benchmarks":{
		"BenchmarkInPlaceTransplant":{"ns_op":50000000,"allocs_op":40000},
		"BenchmarkMigrationTP":{"ns_op":200000000,"allocs_op":80000}}}`)
	var out, errOut bytes.Buffer
	if code := run([]string{"-input", input, "-baseline", basePath}, &out, &errOut); code == 0 {
		t.Fatalf("2x ns/op regression passed the gate; stdout:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "REGRESS") {
		t.Fatalf("no REGRESS line:\n%s", out.String())
	}
}

// allocs/op is a hard gate: growth beyond the 0.1% rounding slack
// fails, regardless of ns/op staying flat.
func TestAllocRegressionFails(t *testing.T) {
	input := writeFile(t, "bench.txt", benchOutput)
	basePath := writeFile(t, "base.json", `{"benchmarks":{
		"BenchmarkInPlaceTransplant":{"ns_op":100000000,"allocs_op":39000},
		"BenchmarkMigrationTP":{"ns_op":200000000,"allocs_op":80000}}}`)
	var out, errOut bytes.Buffer
	if code := run([]string{"-input", input, "-baseline", basePath}, &out, &errOut); code == 0 {
		t.Fatalf("allocs/op growth passed the gate; stdout:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "allocs/op grew") {
		t.Fatalf("no allocs/op gate line:\n%s", out.String())
	}
}

// For lean benchmarks the rounding slack is zero: one extra allocation
// fails. For six-figure allocation counts, growth within 0.1% is
// measurement jitter and passes.
func TestAllocSlackBoundaries(t *testing.T) {
	_, failed := compare(
		map[string]entry{"BenchmarkLean": {NsOp: 100, AllocsOp: 10}},
		map[string]entry{"BenchmarkLean": {NsOp: 100, AllocsOp: 11}}, 0.15)
	if !failed {
		t.Fatal("one extra allocation on a lean benchmark passed the gate")
	}
	_, failed = compare(
		map[string]entry{"BenchmarkBig": {NsOp: 100, AllocsOp: 100000}},
		map[string]entry{"BenchmarkBig": {NsOp: 100, AllocsOp: 100050}}, 0.15)
	if failed {
		t.Fatal("0.05% allocs jitter on a big benchmark failed the gate")
	}
}

// A benchmark that vanished from the suite fails the gate (the baseline
// must be refreshed deliberately, not silently shrink).
func TestMissingBenchmarkFails(t *testing.T) {
	input := writeFile(t, "bench.txt", benchOutput)
	basePath := writeFile(t, "base.json", `{"benchmarks":{
		"BenchmarkInPlaceTransplant":{"ns_op":100000000,"allocs_op":40000},
		"BenchmarkMigrationTP":{"ns_op":200000000,"allocs_op":80000},
		"BenchmarkDeleted":{"ns_op":1,"allocs_op":1}}}`)
	var out, errOut bytes.Buffer
	if code := run([]string{"-input", input, "-baseline", basePath}, &out, &errOut); code == 0 {
		t.Fatalf("missing benchmark passed the gate; stdout:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "MISSING") {
		t.Fatalf("no MISSING line:\n%s", out.String())
	}
}

// New benchmarks warn but do not fail — they enter the gate when the
// baseline is refreshed.
func TestNewBenchmarkPasses(t *testing.T) {
	input := writeFile(t, "bench.txt", benchOutput)
	basePath := writeFile(t, "base.json", `{"benchmarks":{
		"BenchmarkInPlaceTransplant":{"ns_op":100000000,"allocs_op":40000}}}`)
	var out, errOut bytes.Buffer
	if code := run([]string{"-input", input, "-baseline", basePath}, &out, &errOut); code != 0 {
		t.Fatalf("new benchmark failed the gate; stderr:\n%s", errOut.String())
	}
	if !strings.Contains(out.String(), "NEW") {
		t.Fatalf("no NEW line:\n%s", out.String())
	}
}

// -update writes a baseline the same input then passes against.
func TestUpdateRoundTrip(t *testing.T) {
	input := writeFile(t, "bench.txt", benchOutput)
	basePath := filepath.Join(t.TempDir(), "base.json")
	var out, errOut bytes.Buffer
	if code := run([]string{"-input", input, "-baseline", basePath, "-update"}, &out, &errOut); code != 0 {
		t.Fatalf("update failed: %s", errOut.String())
	}
	if code := run([]string{"-input", input, "-baseline", basePath}, &out, &errOut); code != 0 {
		t.Fatalf("freshly updated baseline does not pass: %s\n%s", out.String(), errOut.String())
	}
}

// The speedup gate is a relationship inside one run: the warm benchmark
// must stay MinRatio× faster than its cold twin, independent of the
// baseline.
func TestSpeedupGate(t *testing.T) {
	const warmFast = benchOutput +
		"BenchmarkFigure10KVMToXen-8  3  300000000 ns/op  1000 B/op  100 allocs/op\n" +
		"BenchmarkFigure10Warm-8      3   30000000 ns/op  1000 B/op  100 allocs/op\n"
	const warmSlow = benchOutput +
		"BenchmarkFigure10KVMToXen-8  3  300000000 ns/op  1000 B/op  100 allocs/op\n" +
		"BenchmarkFigure10Warm-8      3  100000000 ns/op  1000 B/op  100 allocs/op\n"
	base := `{"benchmarks":{
		"BenchmarkInPlaceTransplant":{"ns_op":100000000,"allocs_op":40000},
		"BenchmarkMigrationTP":{"ns_op":200000000,"allocs_op":80000},
		"BenchmarkFigure10KVMToXen":{"ns_op":300000000,"allocs_op":100},
		"BenchmarkFigure10Warm":{"ns_op":30000000,"allocs_op":100}}}`

	input := writeFile(t, "fast.txt", warmFast)
	basePath := writeFile(t, "base.json", base)
	var out, errOut bytes.Buffer
	if code := run([]string{"-input", input, "-baseline", basePath}, &out, &errOut); code != 0 {
		t.Fatalf("10x warm path failed the gate; stdout:\n%s\nstderr:\n%s", out.String(), errOut.String())
	}
	if !strings.Contains(out.String(), "faster than BenchmarkFigure10KVMToXen") {
		t.Fatalf("no speedup gate line:\n%s", out.String())
	}

	// 3x warm is inside the ±15% drift window relative to its own
	// baseline entry... make the baseline match so only the ratio trips.
	slowBase := strings.Replace(base, `"BenchmarkFigure10Warm":{"ns_op":30000000`,
		`"BenchmarkFigure10Warm":{"ns_op":100000000`, 1)
	input = writeFile(t, "slow.txt", warmSlow)
	basePath = writeFile(t, "slowbase.json", slowBase)
	out.Reset()
	errOut.Reset()
	if code := run([]string{"-input", input, "-baseline", basePath}, &out, &errOut); code == 0 {
		t.Fatalf("3x warm path passed the 5x gate; stdout:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "only 3.0× faster") {
		t.Fatalf("no ratio REGRESS line:\n%s", out.String())
	}
}

// A run that does not include the gate's pair (narrowed -bench pattern
// with no baseline entries for it) skips the ratio check.
func TestSpeedupGateSkipsAbsentPair(t *testing.T) {
	input := writeFile(t, "bench.txt", benchOutput)
	basePath := writeFile(t, "base.json", `{"benchmarks":{
		"BenchmarkInPlaceTransplant":{"ns_op":100000000,"allocs_op":40000},
		"BenchmarkMigrationTP":{"ns_op":200000000,"allocs_op":80000}}}`)
	var out, errOut bytes.Buffer
	if code := run([]string{"-input", input, "-baseline", basePath}, &out, &errOut); code != 0 {
		t.Fatalf("run without the warm pair failed; stdout:\n%s\nstderr:\n%s", out.String(), errOut.String())
	}
	if strings.Contains(out.String(), "Figure10Warm") {
		t.Fatalf("ratio line emitted for absent pair:\n%s", out.String())
	}
}
