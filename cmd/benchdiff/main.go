// Command benchdiff gates the benchmark suite against a checked-in
// baseline.
//
// It runs every benchmark in the repo -count times keeping the minimum
// per benchmark (or parses an existing `go test -bench` output via
// -input), then compares ns/op and allocs/op per benchmark against
// BENCH_BASELINE.json:
//
//   - ns/op may drift ±15% (tunable with -tolerance) before failing;
//   - allocs/op is a hard gate: any increase beyond 0.1% rounding
//     jitter fails, because allocation counts are deterministic and an
//     increase is a real code change, not noise. For lean benchmarks
//     the 0.1% rounds to zero and a single extra allocation fails.
//
// Exit status is non-zero on any regression, on a baseline benchmark
// that disappeared, or on unparseable input.
//
// Refreshing the baseline (after a deliberate perf change, or when
// moving the reference machine):
//
//	go run ./cmd/benchdiff -update
//	git add BENCH_BASELINE.json && git commit
//
// New benchmarks are reported but do not fail the gate until they are
// added to the baseline with -update.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// entry is one benchmark's gated measurements.
type entry struct {
	NsOp     float64 `json:"ns_op"`
	AllocsOp int64   `json:"allocs_op"`
}

// baseline is the BENCH_BASELINE.json schema.
type baseline struct {
	Note       string           `json:"note,omitempty"`
	Benchmarks map[string]entry `json:"benchmarks"`
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("benchdiff", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		baselinePath = fs.String("baseline", "BENCH_BASELINE.json", "baseline file to compare against")
		input        = fs.String("input", "", "parse an existing `go test -bench` output file instead of running the suite")
		update       = fs.Bool("update", false, "rewrite the baseline from the current run instead of comparing")
		tolerance    = fs.Float64("tolerance", 0.15, "allowed fractional ns/op drift before failing")
		benchtime    = fs.String("benchtime", "3x", "-benchtime passed to go test when running the suite")
		count        = fs.Int("count", 3, "-count passed to go test; benchdiff keeps the minimum of the runs")
		pattern      = fs.String("bench", ".", "-bench pattern passed to go test")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	current, err := currentResults(*input, *pattern, *benchtime, *count, stderr)
	if err != nil {
		fmt.Fprintf(stderr, "benchdiff: %v\n", err)
		return 1
	}
	if len(current) == 0 {
		fmt.Fprintln(stderr, "benchdiff: no benchmark results found")
		return 1
	}

	if *update {
		base := baseline{
			Note:       "Reference benchmark measurements; refresh with `go run ./cmd/benchdiff -update` after deliberate perf changes.",
			Benchmarks: current,
		}
		blob, err := json.MarshalIndent(base, "", "  ")
		if err != nil {
			fmt.Fprintf(stderr, "benchdiff: %v\n", err)
			return 1
		}
		if err := os.WriteFile(*baselinePath, append(blob, '\n'), 0o644); err != nil {
			fmt.Fprintf(stderr, "benchdiff: %v\n", err)
			return 1
		}
		fmt.Fprintf(stdout, "benchdiff: wrote %s with %d benchmarks\n", *baselinePath, len(current))
		return 0
	}

	blob, err := os.ReadFile(*baselinePath)
	if err != nil {
		fmt.Fprintf(stderr, "benchdiff: %v (run `go run ./cmd/benchdiff -update` to create it)\n", err)
		return 1
	}
	var base baseline
	if err := json.Unmarshal(blob, &base); err != nil {
		fmt.Fprintf(stderr, "benchdiff: parsing %s: %v\n", *baselinePath, err)
		return 1
	}

	lines, failed := compare(base.Benchmarks, current, *tolerance)
	ratioLines, ratioFailed := checkSpeedups(current)
	lines = append(lines, ratioLines...)
	failed = failed || ratioFailed
	for _, l := range lines {
		fmt.Fprintln(stdout, l)
	}
	if failed {
		fmt.Fprintln(stderr, "benchdiff: FAIL — see regressions above (refresh deliberately with `go run ./cmd/benchdiff -update`)")
		return 1
	}
	fmt.Fprintf(stdout, "benchdiff: ok (%d benchmarks within ±%.0f%% ns/op, no allocs/op growth)\n",
		len(current), *tolerance*100)
	return 0
}

// currentResults obtains the measurements to gate: parsed from -input
// when given, otherwise by running the repo's benchmark suite.
func currentResults(input, pattern, benchtime string, count int, stderr io.Writer) (map[string]entry, error) {
	if input != "" {
		f, err := os.Open(input)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return parseBench(f)
	}
	cmd := exec.Command("go", "test", "-run", "^$", "-bench", pattern,
		"-benchmem", "-count", strconv.Itoa(count), "-benchtime", benchtime, "./...")
	out, err := cmd.Output()
	if err != nil {
		if ee, ok := err.(*exec.ExitError); ok {
			fmt.Fprintf(stderr, "%s", ee.Stderr)
		}
		return nil, fmt.Errorf("running benchmarks: %w", err)
	}
	return parseBench(bytes.NewReader(out))
}

// benchLine matches one `go test -bench` result line:
//
//	BenchmarkName-8   12   3456 ns/op   789 B/op   10 allocs/op
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+(.*)$`)

// parseBench extracts ns/op and allocs/op per benchmark from `go test
// -bench -benchmem` output. The GOMAXPROCS suffix is stripped so the
// baseline is stable across runner core counts. With -count > 1 a
// benchmark appears several times; the minimum of each measure is kept —
// scheduler noise and background-goroutine allocations only ever add,
// so the min is the stable estimate of the true cost.
func parseBench(r io.Reader) (map[string]entry, error) {
	out := make(map[string]entry)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		name, rest := m[1], m[2]
		e := entry{AllocsOp: -1}
		fields := strings.Fields(rest)
		for i := 1; i < len(fields); i++ {
			switch fields[i] {
			case "ns/op":
				v, err := strconv.ParseFloat(fields[i-1], 64)
				if err != nil {
					return nil, fmt.Errorf("parsing ns/op for %s: %w", name, err)
				}
				e.NsOp = v
			case "allocs/op":
				v, err := strconv.ParseInt(fields[i-1], 10, 64)
				if err != nil {
					return nil, fmt.Errorf("parsing allocs/op for %s: %w", name, err)
				}
				e.AllocsOp = v
			}
		}
		if e.NsOp == 0 {
			continue // not a timing line (e.g. a custom metric only)
		}
		if e.AllocsOp < 0 {
			return nil, fmt.Errorf("%s has no allocs/op — run with -benchmem", name)
		}
		if prev, ok := out[name]; ok {
			if prev.NsOp < e.NsOp {
				e.NsOp = prev.NsOp
			}
			if prev.AllocsOp < e.AllocsOp {
				e.AllocsOp = prev.AllocsOp
			}
		}
		out[name] = e
	}
	return out, sc.Err()
}

// speedupGate pins a warm/cold benchmark pair: the warm benchmark must
// stay at least MinRatio times faster than the cold one. Unlike the
// ±tolerance drift gate, this is a relationship between two benchmarks
// from the same run, so it is immune to machine speed — it fails only
// when the cached path itself loses its advantage.
type speedupGate struct {
	Warm     string
	Cold     string
	MinRatio float64
}

// speedupGates are the pinned warm-path guarantees. The Figure 10 pair
// is the repeat-transplant fast path: the acceptance bar is 10×, gated
// here at 5× so scheduler noise on shared runners does not flake the
// nightly while a real cache regression (a fingerprint chain that stops
// converging, a snapshot replay that stops firing) still fails loudly.
var speedupGates = []speedupGate{
	{Warm: "BenchmarkFigure10Warm", Cold: "BenchmarkFigure10KVMToXen", MinRatio: 5},
}

// checkSpeedups evaluates every speedup gate whose two benchmarks are
// both present in the run. A pair absent from the run (a narrowed
// -bench pattern) is skipped, not failed — the MISSING check against
// the baseline already catches deleted benchmarks.
func checkSpeedups(current map[string]entry) (lines []string, failed bool) {
	for _, g := range speedupGates {
		warm, okW := current[g.Warm]
		cold, okC := current[g.Cold]
		if !okW || !okC || warm.NsOp == 0 {
			continue
		}
		ratio := cold.NsOp / warm.NsOp
		if ratio < g.MinRatio {
			lines = append(lines, fmt.Sprintf("REGRESS  %s: only %.1f× faster than %s (gate ≥%.0f×)",
				g.Warm, ratio, g.Cold, g.MinRatio))
			failed = true
			continue
		}
		lines = append(lines, fmt.Sprintf("ok       %s: %.1f× faster than %s (gate ≥%.0f×)",
			g.Warm, ratio, g.Cold, g.MinRatio))
	}
	return lines, failed
}

// compare gates current against base: ns/op within ±tol, allocs/op
// never higher, every baseline benchmark still present. Returns the
// report lines (sorted by benchmark) and whether the gate failed.
func compare(base, current map[string]entry, tol float64) (lines []string, failed bool) {
	names := make([]string, 0, len(base))
	for name := range base {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		b := base[name]
		c, ok := current[name]
		if !ok {
			lines = append(lines, fmt.Sprintf("MISSING  %s: in baseline but not in this run (deleted? refresh the baseline)", name))
			failed = true
			continue
		}
		drift := (c.NsOp - b.NsOp) / b.NsOp
		switch {
		case drift > tol:
			lines = append(lines, fmt.Sprintf("REGRESS  %s: ns/op %+.1f%% (%.0f → %.0f, limit +%.0f%%)",
				name, drift*100, b.NsOp, c.NsOp, tol*100))
			failed = true
		case drift < -tol:
			lines = append(lines, fmt.Sprintf("FASTER   %s: ns/op %+.1f%% (consider refreshing the baseline)", name, drift*100))
		default:
			lines = append(lines, fmt.Sprintf("ok       %s: ns/op %+.1f%%, allocs/op %d", name, drift*100, c.AllocsOp))
		}
		// Hard gate on allocations, with slack only for measurement
		// rounding: background goroutines add a handful of allocs to the
		// six-figure fleet benchmarks, so up to 0.1% of the baseline is
		// jitter. For lean codec benchmarks the slack rounds to zero and
		// a single extra allocation fails.
		if slack := b.AllocsOp / 1000; c.AllocsOp > b.AllocsOp+slack {
			lines = append(lines, fmt.Sprintf("REGRESS  %s: allocs/op grew %d → %d (hard gate)",
				name, b.AllocsOp, c.AllocsOp))
			failed = true
		}
	}
	extra := make([]string, 0)
	for name := range current {
		if _, ok := base[name]; !ok {
			extra = append(extra, name)
		}
	}
	sort.Strings(extra)
	for _, name := range extra {
		lines = append(lines, fmt.Sprintf("NEW      %s: not in baseline (add with -update)", name))
	}
	return lines, failed
}
