// Command benchfig regenerates every table and figure of the paper's
// evaluation in one run, printing the rendered tables and plots plus the
// headline comparisons recorded in EXPERIMENTS.md.
//
// Usage:
//
//	benchfig           # everything
//	benchfig -only fig6,table4,fig13
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"hypertp/internal/experiments"
	"hypertp/internal/metrics"
)

// sections maps selector names to the drivers.
var sections = []struct {
	name string
	run  func() error
}{
	{"table1", func() error {
		_, tab := experiments.Table1()
		fmt.Println(tab.Render())
		_, win := experiments.Section22Windows()
		fmt.Println(win.Render())
		return nil
	}},
	{"table2", func() error {
		fmt.Println(experiments.Table2().Render())
		return nil
	}},
	{"fig6", func() error {
		_, tab, err := experiments.Figure6()
		if err != nil {
			return err
		}
		fmt.Println(tab.Render())
		return nil
	}},
	{"fig7", func() error {
		_, tabs, err := experiments.Figure7()
		return printTabs(tabs, err)
	}},
	{"fig8", func() error {
		_, tabs, err := experiments.Figure8()
		return printTabs(tabs, err)
	}},
	{"fig9", func() error {
		_, tabs, err := experiments.Figure9()
		return printTabs(tabs, err)
	}},
	{"fig10", func() error {
		_, tabs, err := experiments.Figure10()
		return printTabs(tabs, err)
	}},
	{"table4", func() error {
		_, tab, err := experiments.Table4()
		if err != nil {
			return err
		}
		fmt.Println(tab.Render())
		return nil
	}},
	{"fig11", func() error {
		_, render, err := experiments.Figure11()
		if err != nil {
			return err
		}
		fmt.Println(render)
		return nil
	}},
	{"fig12", func() error {
		_, render, err := experiments.Figure12()
		if err != nil {
			return err
		}
		fmt.Println(render)
		return nil
	}},
	{"table5", func() error {
		_, _, tab, err := experiments.Table5()
		if err != nil {
			return err
		}
		fmt.Println(tab.Render())
		return nil
	}},
	{"table6", func() error {
		_, tab, err := experiments.Table6()
		if err != nil {
			return err
		}
		fmt.Println(tab.Render())
		return nil
	}},
	{"fig13", func() error {
		_, tab, err := experiments.Figure13()
		if err != nil {
			return err
		}
		fmt.Println(tab.Render())
		return nil
	}},
	{"fig14", func() error {
		_, tabs, err := experiments.Figure14()
		return printTabs(tabs, err)
	}},
	{"directions", func() error {
		_, tab, err := experiments.DirectionsMatrix()
		if err != nil {
			return err
		}
		fmt.Println(tab.Render())
		return nil
	}},
	{"decisions", func() error {
		fmt.Println("Transplant decision policy (Xen datacenter):")
		for _, d := range experiments.Decisions() {
			target := d.Target
			if target == "" {
				target = "-"
			}
			fmt.Printf("  %-15s pool=%d transplant=%-5v target=%s\n",
				d.CVE, d.Pool, d.Transplant, target)
		}
		fmt.Println()
		return nil
	}},
	{"groupsize", func() error {
		_, tab, err := experiments.GroupSizeSweep()
		if err != nil {
			return err
		}
		fmt.Println(tab.Render())
		return nil
	}},
	{"ablation", func() error {
		_, tab, err := experiments.Ablation()
		if err != nil {
			return err
		}
		fmt.Println(tab.Render())
		return nil
	}},
	{"tcb", func() error {
		fmt.Println(experiments.TCB().Render())
		return nil
	}},
}

func printTabs(tabs []*metrics.Table, err error) error {
	if err != nil {
		return err
	}
	for _, tab := range tabs {
		fmt.Println(tab.Render())
	}
	return nil
}

func main() {
	only := flag.String("only", "", "comma-separated subset (e.g. fig6,table4); empty = all")
	flag.Parse()

	want := map[string]bool{}
	if *only != "" {
		for _, s := range strings.Split(*only, ",") {
			want[strings.TrimSpace(s)] = true
		}
	}
	for _, sec := range sections {
		if len(want) > 0 && !want[sec.name] {
			continue
		}
		fmt.Printf("==== %s ====\n\n", sec.name)
		if err := sec.run(); err != nil {
			fmt.Fprintf(os.Stderr, "benchfig: %s: %v\n", sec.name, err)
			os.Exit(1)
		}
	}
}
