// Command benchfig regenerates every table and figure of the paper's
// evaluation in one run, printing the rendered tables and plots plus the
// headline comparisons recorded in EXPERIMENTS.md.
//
// Usage:
//
//	benchfig           # everything
//	benchfig -only fig6,table4,fig13
//	benchfig -workers 8
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"hypertp/internal/experiments"
	"hypertp/internal/metrics"
	"hypertp/internal/par"
)

// sections maps selector names to the drivers. Each driver renders into
// the supplied writer so sections can run concurrently and still print in
// a deterministic order.
var sections = []struct {
	name string
	run  func(w io.Writer) error
}{
	{"table1", func(w io.Writer) error {
		_, tab := experiments.Table1()
		fmt.Fprintln(w, tab.Render())
		_, win := experiments.Section22Windows()
		fmt.Fprintln(w, win.Render())
		return nil
	}},
	{"table2", func(w io.Writer) error {
		fmt.Fprintln(w, experiments.Table2().Render())
		return nil
	}},
	{"fig6", func(w io.Writer) error {
		_, tab, err := experiments.Figure6()
		if err != nil {
			return err
		}
		fmt.Fprintln(w, tab.Render())
		return nil
	}},
	{"fig7", func(w io.Writer) error {
		_, tabs, err := experiments.Figure7()
		return printTabs(w, tabs, err)
	}},
	{"fig8", func(w io.Writer) error {
		_, tabs, err := experiments.Figure8()
		return printTabs(w, tabs, err)
	}},
	{"fig9", func(w io.Writer) error {
		_, tabs, err := experiments.Figure9()
		return printTabs(w, tabs, err)
	}},
	{"fig10", func(w io.Writer) error {
		_, tabs, err := experiments.Figure10()
		return printTabs(w, tabs, err)
	}},
	{"table4", func(w io.Writer) error {
		_, tab, err := experiments.Table4()
		if err != nil {
			return err
		}
		fmt.Fprintln(w, tab.Render())
		return nil
	}},
	{"fig11", func(w io.Writer) error {
		_, render, err := experiments.Figure11()
		if err != nil {
			return err
		}
		fmt.Fprintln(w, render)
		return nil
	}},
	{"fig12", func(w io.Writer) error {
		_, render, err := experiments.Figure12()
		if err != nil {
			return err
		}
		fmt.Fprintln(w, render)
		return nil
	}},
	{"table5", func(w io.Writer) error {
		_, _, tab, err := experiments.Table5()
		if err != nil {
			return err
		}
		fmt.Fprintln(w, tab.Render())
		return nil
	}},
	{"table6", func(w io.Writer) error {
		_, tab, err := experiments.Table6()
		if err != nil {
			return err
		}
		fmt.Fprintln(w, tab.Render())
		return nil
	}},
	{"fig13", func(w io.Writer) error {
		_, tab, err := experiments.Figure13()
		if err != nil {
			return err
		}
		fmt.Fprintln(w, tab.Render())
		return nil
	}},
	{"fig14", func(w io.Writer) error {
		_, tabs, err := experiments.Figure14()
		return printTabs(w, tabs, err)
	}},
	{"directions", func(w io.Writer) error {
		_, tab, err := experiments.DirectionsMatrix()
		if err != nil {
			return err
		}
		fmt.Fprintln(w, tab.Render())
		return nil
	}},
	{"decisions", func(w io.Writer) error {
		fmt.Fprintln(w, "Transplant decision policy (Xen datacenter):")
		for _, d := range experiments.Decisions() {
			target := d.Target
			if target == "" {
				target = "-"
			}
			fmt.Fprintf(w, "  %-15s pool=%d transplant=%-5v target=%s\n",
				d.CVE, d.Pool, d.Transplant, target)
		}
		fmt.Fprintln(w)
		return nil
	}},
	{"groupsize", func(w io.Writer) error {
		_, tab, err := experiments.GroupSizeSweep()
		if err != nil {
			return err
		}
		fmt.Fprintln(w, tab.Render())
		return nil
	}},
	{"ablation", func(w io.Writer) error {
		_, tab, err := experiments.Ablation()
		if err != nil {
			return err
		}
		fmt.Fprintln(w, tab.Render())
		return nil
	}},
	{"tcb", func(w io.Writer) error {
		fmt.Fprintln(w, experiments.TCB().Render())
		return nil
	}},
}

func printTabs(w io.Writer, tabs []*metrics.Table, err error) error {
	if err != nil {
		return err
	}
	for _, tab := range tabs {
		fmt.Fprintln(w, tab.Render())
	}
	return nil
}

func main() {
	only := flag.String("only", "", "comma-separated subset (e.g. fig6,table4); empty = all")
	workers := flag.Int("workers", 0, "host worker pool size for wall-clock parallelism (0 = GOMAXPROCS)")
	flag.Parse()
	par.SetWorkers(*workers)

	want := map[string]bool{}
	if *only != "" {
		for _, s := range strings.Split(*only, ",") {
			want[strings.TrimSpace(s)] = true
		}
	}
	var run []int
	for i, sec := range sections {
		if len(want) > 0 && !want[sec.name] {
			continue
		}
		run = append(run, i)
	}

	// Render every selected section into its own buffer on the worker
	// pool, then print the buffers in section order — the output is
	// byte-identical to a sequential run for any worker count. Errors
	// surface in section order (lowest index wins), matching the first
	// error a sequential run would report.
	bufs, err := par.Map(run, func(_ int, idx int) (*bytes.Buffer, error) {
		var buf bytes.Buffer
		fmt.Fprintf(&buf, "==== %s ====\n\n", sections[idx].name)
		if err := sections[idx].run(&buf); err != nil {
			return nil, fmt.Errorf("%s: %w", sections[idx].name, err)
		}
		return &buf, nil
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchfig: %v\n", err)
		os.Exit(1)
	}
	for _, buf := range bufs {
		os.Stdout.Write(buf.Bytes())
	}
}
