// Command clustersim runs the §5.4 cluster upgrade experiment: a
// BtrPlace-style rolling upgrade of a simulated cluster while varying the
// fraction of InPlaceTP-compatible VMs (Fig. 13).
//
// Usage:
//
//	clustersim -hosts 10 -vms-per-host 10 -group 1
//	clustersim -trace-out upgrade.json -trace-frac 0.8
//
// -trace-out writes a Chrome trace_event file of the upgrade at the
// -trace-frac compatibility fraction (open in Perfetto).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"hypertp/internal/cluster"
	"hypertp/internal/metrics"
	"hypertp/internal/obs"
)

func main() {
	var (
		hosts      = flag.Int("hosts", 10, "number of physical hosts")
		vmsPerHost = flag.Int("vms-per-host", 10, "VMs per host (1 vCPU / 4 GiB each)")
		group      = flag.Int("group", 1, "hosts taken offline per upgrade group")
		traceOut   = flag.String("trace-out", "", "write a Chrome trace_event JSON file of one upgrade")
		traceFrac  = flag.Float64("trace-frac", 0.8, "InPlaceTP-compatible fraction for the traced upgrade")
		metricsOut = flag.String("metrics-out", "", "write the traced upgrade's metrics registry as JSON")
	)
	flag.Parse()
	if err := run(*hosts, *vmsPerHost, *group, *traceOut, *traceFrac, *metricsOut); err != nil {
		fmt.Fprintln(os.Stderr, "clustersim:", err)
		os.Exit(1)
	}
}

func run(hosts, vmsPerHost, group int, traceOut string, traceFrac float64, metricsOut string) error {
	model := cluster.DefaultExecutionModel()
	runOnce := func(frac float64, rec *obs.Recorder) (cluster.Result, error) {
		c, err := cluster.New(cluster.Config{
			Hosts: hosts, VMsPerHost: vmsPerHost, StreamFrac: 0.3, CPUFrac: 0.3,
		})
		if err != nil {
			return cluster.Result{}, err
		}
		c.SetInPlaceCompatibleFraction(frac, 42)
		plan, err := c.PlanUpgrade(group)
		if err != nil {
			return cluster.Result{}, err
		}
		if err := c.Validate(); err != nil {
			return cluster.Result{}, err
		}
		return plan.ExecuteTraced(model, rec), nil
	}

	base, err := runOnce(0, nil)
	if err != nil {
		return err
	}
	tab := &metrics.Table{
		Title: fmt.Sprintf("Cluster upgrade: %d hosts x %d VMs, offline groups of %d (Fig. 13)",
			hosts, vmsPerHost, group),
		Headers: []string{"InPlaceTP-compatible %", "# migrations", "Migration time",
			"Total time", "Time gain %"},
	}
	for _, pct := range []int{0, 20, 40, 60, 80, 100} {
		if pct == 100 && group > 1 {
			continue
		}
		res, err := runOnce(float64(pct)/100, nil)
		if err != nil {
			return err
		}
		gain := (1 - float64(res.TotalTime)/float64(base.TotalTime)) * 100
		tab.AddRow(fmt.Sprint(pct), fmt.Sprint(res.Migrations),
			res.MigrationTime.Round(time.Second).String(),
			res.TotalTime.Round(time.Second).String(),
			fmt.Sprintf("%.0f", gain))
	}
	fmt.Println(tab.Render())

	if traceOut == "" && metricsOut == "" {
		return nil
	}
	// The planner is clock-less: spans carry explicit virtual times from
	// the execution model, so the trace is deterministic.
	rec := obs.NewRecorder(nil)
	if _, err := runOnce(traceFrac, rec); err != nil {
		return err
	}
	if traceOut != "" {
		if err := writeFileWith(traceOut, rec.WriteChromeTrace); err != nil {
			return err
		}
		fmt.Printf("trace: wrote %s for compatible fraction %.2f (open in Perfetto)\n",
			traceOut, traceFrac)
	}
	if metricsOut != "" {
		write := func(w io.Writer) error { return rec.Metrics().WriteMetricsJSON(w, false) }
		if err := writeFileWith(metricsOut, write); err != nil {
			return err
		}
		fmt.Printf("metrics: wrote %s\n", metricsOut)
	}
	return nil
}

// writeFileWith creates path and streams fn's output into it.
func writeFileWith(path string, fn func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := fn(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
