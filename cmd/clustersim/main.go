// Command clustersim runs the §5.4 cluster upgrade experiment: a
// BtrPlace-style rolling upgrade of a simulated cluster while varying the
// fraction of InPlaceTP-compatible VMs (Fig. 13).
//
// Usage:
//
//	clustersim -hosts 10 -vms-per-host 10 -group 1
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"hypertp/internal/cluster"
	"hypertp/internal/metrics"
)

func main() {
	var (
		hosts      = flag.Int("hosts", 10, "number of physical hosts")
		vmsPerHost = flag.Int("vms-per-host", 10, "VMs per host (1 vCPU / 4 GiB each)")
		group      = flag.Int("group", 1, "hosts taken offline per upgrade group")
	)
	flag.Parse()
	if err := run(*hosts, *vmsPerHost, *group); err != nil {
		fmt.Fprintln(os.Stderr, "clustersim:", err)
		os.Exit(1)
	}
}

func run(hosts, vmsPerHost, group int) error {
	model := cluster.DefaultExecutionModel()
	runOnce := func(frac float64) (cluster.Result, error) {
		c, err := cluster.New(cluster.Config{
			Hosts: hosts, VMsPerHost: vmsPerHost, StreamFrac: 0.3, CPUFrac: 0.3,
		})
		if err != nil {
			return cluster.Result{}, err
		}
		c.SetInPlaceCompatibleFraction(frac, 42)
		plan, err := c.PlanUpgrade(group)
		if err != nil {
			return cluster.Result{}, err
		}
		if err := c.Validate(); err != nil {
			return cluster.Result{}, err
		}
		return plan.Execute(model), nil
	}

	base, err := runOnce(0)
	if err != nil {
		return err
	}
	tab := &metrics.Table{
		Title: fmt.Sprintf("Cluster upgrade: %d hosts x %d VMs, offline groups of %d (Fig. 13)",
			hosts, vmsPerHost, group),
		Headers: []string{"InPlaceTP-compatible %", "# migrations", "Migration time",
			"Total time", "Time gain %"},
	}
	for _, pct := range []int{0, 20, 40, 60, 80, 100} {
		if pct == 100 && group > 1 {
			continue
		}
		res, err := runOnce(float64(pct) / 100)
		if err != nil {
			return err
		}
		gain := (1 - float64(res.TotalTime)/float64(base.TotalTime)) * 100
		tab.AddRow(fmt.Sprint(pct), fmt.Sprint(res.Migrations),
			res.MigrationTime.Round(time.Second).String(),
			res.TotalTime.Round(time.Second).String(),
			fmt.Sprintf("%.0f", gain))
	}
	fmt.Println(tab.Render())
	return nil
}
