// Command clustersim runs the §5.4 cluster upgrade experiment: a
// BtrPlace-style rolling upgrade of a simulated cluster while varying the
// fraction of InPlaceTP-compatible VMs (Fig. 13).
//
// Usage:
//
//	clustersim -hosts 10 -vms-per-host 10 -group 1
//	clustersim -trace-out upgrade.json -trace-frac 0.8
//	clustersim -fault-seed 7 -fault-rate 0.2 -fault-sites cluster.host
//
// -trace-out writes a Chrome trace_event file of the upgrade at the
// -trace-frac compatibility fraction (open in Perfetto); -metrics-out /
// -prom-out dump the same run's metrics as JSON / Prometheus text;
// -stream-out streams its span records to JSONL through seed-keyed head
// sampling (-trace-sample, -sample-seed) — all byte-identical for any
// -workers count.
//
// -fleet runs the cluster-wide CVE response instead and appends the
// fleet's vulnerability-window SLO report: per-host remediation latency
// vs disclosure (p50/p95/max), burn rate, and a PASS/FAIL verdict; a
// failed SLO exits non-zero.
//
// -fault-seed/-fault-rate/-fault-sites switch the upgrade to the
// degradation-capable executor: hosts whose in-place upgrade fails are
// quarantined, their VMs re-planned onto healthy hosts, and the table
// gains outcome columns.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"hypertp/internal/cluster"
	"hypertp/internal/fault"
	"hypertp/internal/hterr"
	"hypertp/internal/metrics"
	"hypertp/internal/obs"
	"hypertp/internal/par"
	"hypertp/internal/sched"
)

func main() {
	var (
		hosts       = flag.Int("hosts", 10, "number of physical hosts")
		vmsPerHost  = flag.Int("vms-per-host", 10, "VMs per host (1 vCPU / 4 GiB each)")
		group       = flag.Int("group", 1, "hosts taken offline per upgrade group")
		traceOut    = flag.String("trace-out", "", "write a Chrome trace_event JSON file of one upgrade")
		traceFrac   = flag.Float64("trace-frac", 0.8, "InPlaceTP-compatible fraction for the traced upgrade")
		metricsOut  = flag.String("metrics-out", "", "write the traced upgrade's metrics registry as JSON")
		promOut     = flag.String("prom-out", "", "write the traced upgrade's (or the fleet run's) metrics in Prometheus text format")
		streamOut   = flag.String("stream-out", "", "stream the traced upgrade's span records to a JSONL file as roots end")
		traceSample = flag.Float64("trace-sample", 1, "head-sampling fraction for -stream-out in [0,1] (seed-keyed, deterministic)")
		sampleSeed  = flag.Uint64("sample-seed", 1, "seed for -trace-sample head sampling")
		faultSeed   = flag.Uint64("fault-seed", 0, "fault-injection seed (deterministic)")
		faultRate   = flag.Float64("fault-rate", 0, "per-site fault probability in [0,1]")
		faultSites  = flag.String("fault-sites", "", "comma-separated injection sites (empty = all registered sites)")
		workers     = flag.Int("workers", 0, "worker-pool width for concurrent schedules (0 = library default; results are identical for any width)")
		streams     = flag.Int("streams", 0, "fabric migration-stream cap for the concurrent schedule columns (0 = off)")
		kexecs      = flag.Int("kexecs", 0, "simultaneous-kexec cap for the concurrent schedule columns (0 = unlimited)")
		fleet       = flag.Bool("fleet", false, "run the fleet CVE-response scenario on the concurrent scheduler instead of the Fig. 13 sweep")
		fleetVMs    = flag.Int("fleet-vms", 32, "VM population for -fleet")
		crashRate   = flag.Float64("crash-rate", 0, "fraction of -fleet hosts fail-stopped before the response; the reactive path recovers them and the report gains an availability section")
		warmPool    = flag.Int("warm-pool", 0, "pre-stage up to n warm translation entries before the -fleet response")
		noCache     = flag.Bool("no-cache", false, "disable the transplant cache for -fleet (force every transplant cold)")
	)
	flag.Parse()
	fc := faultConfig{Seed: *faultSeed, Rate: *faultRate, Sites: *faultSites}
	sc := schedConfig{Workers: *workers, Streams: *streams, Kexecs: *kexecs}
	ec := exportConfig{
		TraceOut: *traceOut, MetricsOut: *metricsOut, PromOut: *promOut,
		StreamOut: *streamOut, TraceSample: *traceSample, SampleSeed: *sampleSeed,
	}
	var err error
	if *fleet {
		err = runFleet(os.Stdout, *hosts, *fleetVMs, sc, ec, cacheConfig{WarmPool: *warmPool, NoCache: *noCache}, *crashRate)
	} else {
		if *crashRate > 0 {
			err = fmt.Errorf("clustersim: -crash-rate applies to the -fleet scenario")
		} else {
			err = run(*hosts, *vmsPerHost, *group, *traceFrac, fc, sc, ec)
		}
	}
	if err != nil {
		os.Exit(exitWithLabel("clustersim", err))
	}
}

// schedConfig carries the concurrent-scheduling flags.
type schedConfig struct {
	Workers int
	Streams int
	Kexecs  int
}

func (sc schedConfig) enabled() bool { return sc.Streams > 0 || sc.Kexecs > 0 }

func (sc schedConfig) limits() sched.Limits {
	return sched.Limits{LinkStreams: sc.Streams, MaxKexecs: sc.Kexecs}
}

// apply sets the worker-pool width for the run and returns a restore
// function. Width only changes wall-clock speed, never results.
func (sc schedConfig) apply() func() {
	if sc.Workers <= 0 {
		return func() {}
	}
	old := par.Workers()
	par.SetWorkers(sc.Workers)
	return func() { par.SetWorkers(old) }
}

// exitWithLabel prints the error with its hterr class label and picks
// the exit status: 2 for broken invariants, blown watchdogs and
// unrecovered crashes (the outcomes a CI soak must not swallow), 1 for
// everything else.
func exitWithLabel(tool string, err error) int {
	if class := hterr.Class(err); class != nil {
		fmt.Fprintf(os.Stderr, "%s: %s: %v\n", tool, hterr.Label(class), err)
		if class == hterr.ErrInvariantViolated || class == hterr.ErrWatchdogExpired ||
			class == hterr.ErrHypervisorCrashed {
			return 2
		}
		return 1
	}
	fmt.Fprintf(os.Stderr, "%s: %v\n", tool, err)
	return 1
}

// exportConfig carries the observability-export flags.
type exportConfig struct {
	TraceOut, MetricsOut, PromOut, StreamOut string
	// TraceSample/SampleSeed drive seed-keyed head sampling of StreamOut:
	// the kept set is a pure function of (seed, root name, root start),
	// so the file is byte-identical for any worker count.
	TraceSample float64
	SampleSeed  uint64
}

func (ec exportConfig) enabled() bool {
	return ec.TraceOut != "" || ec.MetricsOut != "" || ec.PromOut != "" || ec.StreamOut != ""
}

// faultConfig carries the fault-injection flags.
type faultConfig struct {
	Seed  uint64
	Rate  float64
	Sites string
}

func (fc faultConfig) enabled() bool { return fc.Rate > 0 || fc.Seed != 0 || fc.Sites != "" }

// plan materializes a fresh fault plan (fresh per run, so every
// compatibility fraction sees the same deterministic shot sequence).
func (fc faultConfig) plan() (*fault.Plan, error) {
	if !fc.enabled() {
		return nil, nil
	}
	sites, err := fault.ParseSites(fc.Sites)
	if err != nil {
		return nil, err
	}
	p := fault.NewPlan(fc.Seed, fc.Rate)
	if len(sites) > 0 {
		p.Restrict(sites...)
	}
	return p, nil
}

func run(hosts, vmsPerHost, group int, traceFrac float64, fc faultConfig, sc schedConfig, ec exportConfig) error {
	defer sc.apply()()
	model := cluster.DefaultExecutionModel()
	runOnce := func(frac float64, rec *obs.Recorder) (cluster.Result, *cluster.Plan, error) {
		c, err := cluster.New(cluster.Config{
			Hosts: hosts, VMsPerHost: vmsPerHost, StreamFrac: 0.3, CPUFrac: 0.3,
		})
		if err != nil {
			return cluster.Result{}, nil, err
		}
		c.SetInPlaceCompatibleFraction(frac, 42)
		if fc.enabled() {
			p, err := fc.plan()
			if err != nil {
				return cluster.Result{}, nil, err
			}
			plan, res, err := c.ExecuteRollingUpgrade(group, model, rec, p)
			if err != nil {
				return cluster.Result{}, nil, err
			}
			return res, plan, nil
		}
		plan, err := c.PlanUpgrade(group)
		if err != nil {
			return cluster.Result{}, nil, err
		}
		if err := c.Validate(); err != nil {
			return cluster.Result{}, nil, err
		}
		return plan.ExecuteTraced(model, rec), plan, nil
	}
	// Concurrent columns re-time the same plan under the capacity limits;
	// the fault-injected executor interleaves planning and execution, so
	// the comparison is only defined for the fault-free sweep.
	schedCols := sc.enabled() && !fc.enabled()

	base, _, err := runOnce(0, nil)
	if err != nil {
		return err
	}
	headers := []string{"InPlaceTP-compatible %", "# migrations", "Migration time",
		"Total time", "Time gain %"}
	if fc.enabled() {
		headers = append(headers, "Outcome", "Quarantined", "Replanned")
	}
	if schedCols {
		headers = append(headers, "Sched total", "Speedup")
	}
	tab := &metrics.Table{
		Title: fmt.Sprintf("Cluster upgrade: %d hosts x %d VMs, offline groups of %d (Fig. 13)",
			hosts, vmsPerHost, group),
		Headers: headers,
	}
	for _, pct := range []int{0, 20, 40, 60, 80, 100} {
		if pct == 100 && group > 1 {
			continue
		}
		res, plan, err := runOnce(float64(pct)/100, nil)
		if err != nil {
			return err
		}
		gain := (1 - float64(res.TotalTime)/float64(base.TotalTime)) * 100
		row := []string{fmt.Sprint(pct), fmt.Sprint(res.Migrations),
			res.MigrationTime.Round(time.Second).String(),
			res.TotalTime.Round(time.Second).String(),
			fmt.Sprintf("%.0f", gain)}
		if fc.enabled() {
			row = append(row, string(res.Outcome),
				fmt.Sprint(len(res.FailedHosts)), fmt.Sprint(res.ReplannedVMs))
		}
		if schedCols {
			sres, err := plan.ExecuteScheduled(model, nil, sc.limits())
			if err != nil {
				return err
			}
			row = append(row, sres.TotalTime.Round(time.Second).String(),
				fmt.Sprintf("%.2fx", float64(res.TotalTime)/float64(sres.TotalTime)))
		}
		tab.AddRow(row...)
	}
	fmt.Println(tab.Render())
	if fc.enabled() {
		fmt.Printf("fault injection: seed %d, rate %.2f, sites %s\n",
			fc.Seed, fc.Rate, orAll(fc.Sites))
	}

	if !ec.enabled() {
		return nil
	}
	// The planner is clock-less: spans carry explicit virtual times from
	// the execution model, so every export below is deterministic.
	rec := obs.NewRecorder(nil)
	var streamFile *os.File
	var jsonl *obs.JSONLSink
	if ec.StreamOut != "" {
		f, err := os.Create(ec.StreamOut)
		if err != nil {
			return err
		}
		streamFile = f
		jsonl = obs.NewJSONLSink(f)
		// Sampling keys on the root span, so a 100k-host stream exports
		// O(sampled roots), not O(fleet).
		if ec.TraceSample < 1 {
			rec.AddSink(obs.NewHeadSampler(ec.SampleSeed, ec.TraceSample, jsonl))
		} else {
			rec.AddSink(jsonl)
		}
	}
	if _, _, err := runOnce(traceFrac, rec); err != nil {
		if streamFile != nil {
			streamFile.Close()
		}
		return err
	}
	if streamFile != nil {
		if err := jsonl.Err(); err != nil {
			streamFile.Close()
			return err
		}
		if err := streamFile.Close(); err != nil {
			return err
		}
		fmt.Printf("stream: wrote %s (JSONL, sample %.2f, seed %d)\n",
			ec.StreamOut, ec.TraceSample, ec.SampleSeed)
	}
	if ec.TraceOut != "" {
		if err := writeFileWith(ec.TraceOut, rec.WriteChromeTrace); err != nil {
			return err
		}
		fmt.Printf("trace: wrote %s for compatible fraction %.2f (open in Perfetto)\n",
			ec.TraceOut, traceFrac)
	}
	if ec.MetricsOut != "" {
		write := func(w io.Writer) error { return rec.Metrics().WriteMetricsJSON(w, false) }
		if err := writeFileWith(ec.MetricsOut, write); err != nil {
			return err
		}
		fmt.Printf("metrics: wrote %s\n", ec.MetricsOut)
	}
	if ec.PromOut != "" {
		write := func(w io.Writer) error { return rec.Metrics().WritePrometheus(w, false) }
		if err := writeFileWith(ec.PromOut, write); err != nil {
			return err
		}
		fmt.Printf("metrics: wrote %s (Prometheus text format)\n", ec.PromOut)
	}
	return nil
}

// orAll renders an empty site restriction as "all".
func orAll(s string) string {
	if s == "" {
		return "all"
	}
	return s
}

// writeFileWith creates path and streams fn's output into it.
func writeFileWith(path string, fn func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := fn(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
