package main

import "testing"

func TestRunDefaults(t *testing.T) {
	if err := run(10, 10, 1); err != nil {
		t.Fatal(err)
	}
}

func TestRunSmallCluster(t *testing.T) {
	if err := run(4, 3, 2); err != nil {
		t.Fatal(err)
	}
}

func TestRunBadShape(t *testing.T) {
	if err := run(1, 10, 1); err == nil {
		t.Fatal("single-host cluster accepted")
	}
	if err := run(10, 10, 10); err == nil {
		t.Fatal("group size = cluster accepted")
	}
}
