package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunDefaults(t *testing.T) {
	if err := run(10, 10, 1, 0.8, faultConfig{}, schedConfig{}, exportConfig{}); err != nil {
		t.Fatal(err)
	}
}

func TestRunSmallCluster(t *testing.T) {
	if err := run(4, 3, 2, 0.8, faultConfig{}, schedConfig{}, exportConfig{}); err != nil {
		t.Fatal(err)
	}
}

func TestRunBadShape(t *testing.T) {
	if err := run(1, 10, 1, 0.8, faultConfig{}, schedConfig{}, exportConfig{}); err == nil {
		t.Fatal("single-host cluster accepted")
	}
	if err := run(10, 10, 10, 0.8, faultConfig{}, schedConfig{}, exportConfig{}); err == nil {
		t.Fatal("group size = cluster accepted")
	}
}

// The -fault-seed/-fault-rate/-fault-sites path: the degradation-capable
// executor quarantines failed hosts and the run still completes.
func TestRunWithFaultInjection(t *testing.T) {
	fc := faultConfig{Seed: 7, Rate: 0.5, Sites: "cluster.host"}
	if err := run(6, 3, 1, 0.8, fc, schedConfig{}, exportConfig{}); err != nil {
		t.Fatal(err)
	}
	// Unknown site rejected.
	bad := faultConfig{Seed: 1, Rate: 1, Sites: "no.such.site"}
	if err := run(4, 3, 1, 0.8, bad, schedConfig{}, exportConfig{}); err == nil {
		t.Fatal("unknown fault site accepted")
	}
}

func TestRunTraceOut(t *testing.T) {
	dir := t.TempDir()
	tracePath := filepath.Join(dir, "upgrade.json")
	metricsPath := filepath.Join(dir, "metrics.json")
	if err := run(4, 3, 1, 0.5, faultConfig{}, schedConfig{}, exportConfig{TraceOut: tracePath, MetricsOut: metricsPath, TraceSample: 1}); err != nil {
		t.Fatal(err)
	}
	var tr struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	data, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(data, &tr); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	seen := map[string]bool{}
	for _, ev := range tr.TraceEvents {
		if name, ok := ev["name"].(string); ok {
			seen[name] = true
		}
	}
	if !seen["rolling-upgrade"] || !seen["group-0"] {
		t.Fatalf("trace missing upgrade spans; saw %v", seen)
	}
	if _, err := os.Stat(metricsPath); err != nil {
		t.Fatal(err)
	}
}

// The -streams/-kexecs columns: the concurrent re-timing of the same
// plan appears alongside the serial sweep.
func TestRunScheduledColumns(t *testing.T) {
	if err := run(6, 3, 2, 0.8, faultConfig{}, schedConfig{Streams: 4, Kexecs: 4}, exportConfig{}); err != nil {
		t.Fatal(err)
	}
}

// The -fleet scenario: concurrent response at least halves the serial
// makespan, keeps placement identical, and its output is byte-identical
// for any worker-pool width.
func TestRunFleetDeterministicAcrossWorkers(t *testing.T) {
	out := func(workers int) string {
		var buf bytes.Buffer
		if err := runFleet(&buf, 10, 32, schedConfig{Workers: workers, Streams: 4, Kexecs: 4}, exportConfig{}, cacheConfig{}, 0); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	w1 := out(1)
	w8 := out(8)
	if w1 != w8 {
		t.Fatalf("-fleet output differs across workers:\n-workers 1:\n%s\n-workers 8:\n%s", w1, w8)
	}
	if !strings.Contains(w1, "identical across schedules") {
		t.Fatalf("missing placement check line:\n%s", w1)
	}
	if !strings.Contains(w1, "cache: ") {
		t.Fatalf("missing cache hit-ratio line:\n%s", w1)
	}
	// The fleet report must carry the vulnerability-window SLO verdict.
	if !strings.Contains(w1, "slo report") || !strings.Contains(w1, "remediation latency p50=") {
		t.Fatalf("missing SLO window report:\n%s", w1)
	}
	if !strings.Contains(w1, "PASS") {
		t.Fatalf("fleet response did not pass its SLO:\n%s", w1)
	}
	// The speedup column of the concurrent row must be >= 2.00x.
	var speedup string
	for _, line := range strings.Split(w1, "\n") {
		if strings.Contains(line, "concurrent") {
			fields := strings.Fields(line)
			speedup = fields[len(fields)-1]
		}
	}
	if speedup == "" {
		t.Fatalf("no concurrent row in output:\n%s", w1)
	}
	var x float64
	if _, err := fmt.Sscanf(speedup, "%fx", &x); err != nil || x < 2 {
		t.Fatalf("concurrent speedup %q below 2x target", speedup)
	}
}

// The -crash-rate path: a quarter of the fleet is fail-stopped before
// the response, the reactive path recovers every host, the report gains
// the recovery line and the slo availability section, and the whole
// output stays byte-identical across worker counts.
func TestRunFleetCrashRate(t *testing.T) {
	out := func(workers int) string {
		var buf bytes.Buffer
		if err := runFleet(&buf, 8, 24, schedConfig{Workers: workers, Streams: 4, Kexecs: 4}, exportConfig{}, cacheConfig{}, 0.25); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	w1, w8 := out(1), out(8)
	if w1 != w8 {
		t.Fatalf("-crash-rate output differs across workers:\n-workers 1:\n%s\n-workers 8:\n%s", w1, w8)
	}
	if !strings.Contains(w1, "reactive recovery: 2 hosts crashed, 2 recovered, 0 frozen, 0 lost") {
		t.Fatalf("missing reactive recovery line:\n%s", w1)
	}
	if !strings.Contains(w1, "availability: hosts=2 outages=2 open=0") {
		t.Fatalf("missing availability section:\n%s", w1)
	}
	if !strings.Contains(w1, "mttr mean=") {
		t.Fatalf("missing MTTR line:\n%s", w1)
	}
	// The recovered hosts land on the safe hypervisor, so the response
	// skips them instead of re-upgrading.
	if !strings.Contains(w1, "identical across schedules") {
		t.Fatalf("missing placement check line:\n%s", w1)
	}
}

// The -warm-pool path: pre-staged entries surface as warm starts in the
// fleet report's cache line; -no-cache drops the line entirely and
// rejects -warm-pool.
func TestRunFleetWarmPoolAndNoCache(t *testing.T) {
	var warm bytes.Buffer
	if err := runFleet(&warm, 6, 16, schedConfig{Streams: 4, Kexecs: 4}, exportConfig{}, cacheConfig{WarmPool: 16}, 0); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(warm.String(), "cache: ") {
		t.Fatalf("fleet report missing cache line:\n%s", warm.String())
	}
	if strings.Contains(warm.String(), " 0 warm starts") {
		t.Fatalf("warm pool staged nothing:\n%s", warm.String())
	}
	var cold bytes.Buffer
	if err := runFleet(&cold, 6, 16, schedConfig{Streams: 4, Kexecs: 4}, exportConfig{}, cacheConfig{NoCache: true}, 0); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(cold.String(), "cache: ") {
		t.Fatalf("-no-cache report still has a cache line:\n%s", cold.String())
	}
	if err := runFleet(&cold, 6, 16, schedConfig{}, exportConfig{}, cacheConfig{WarmPool: 4, NoCache: true}, 0); err == nil {
		t.Fatal("-warm-pool with -no-cache accepted")
	}
}

// The -stream-out/-trace-sample pipeline: the streamed, head-sampled
// JSONL export is byte-identical for the same seed and fraction at any
// worker count, and the sampling decision really is seed-keyed — the
// sweep's single root span is kept under one seed and dropped whole
// under another (decisions are a pure function of seed, root name and
// root start, so these outcomes are pinned).
func TestStreamOutSampledDeterministicAcrossWorkers(t *testing.T) {
	dir := t.TempDir()
	streamed := func(workers int, frac float64, seed uint64, name string) []byte {
		path := filepath.Join(dir, name)
		ec := exportConfig{StreamOut: path, TraceSample: frac, SampleSeed: seed}
		sc := schedConfig{Workers: workers, Streams: 4, Kexecs: 4}
		if err := run(6, 3, 2, 0.5, faultConfig{}, sc, ec); err != nil {
			t.Fatal(err)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	// Seed 3 keeps the "rolling-upgrade" root at fraction 0.5; seed 1
	// drops it.
	w1 := streamed(1, 0.5, 3, "w1.jsonl")
	w8 := streamed(8, 0.5, 3, "w8.jsonl")
	if !bytes.Equal(w1, w8) {
		t.Fatalf("sampled stream differs across workers:\n-workers 1: %d bytes\n-workers 8: %d bytes", len(w1), len(w8))
	}
	full := streamed(1, 1, 3, "full.jsonl")
	if len(full) == 0 {
		t.Fatal("unsampled stream is empty")
	}
	if !bytes.Equal(w1, full) {
		t.Fatalf("kept root renders differently sampled vs full (%d vs %d bytes)", len(w1), len(full))
	}
	if dropped := streamed(1, 0.5, 1, "dropped.jsonl"); len(dropped) != 0 {
		t.Fatalf("seed 1 should drop the root whole, got %d bytes", len(dropped))
	}
	// Spot-check the line format: every line is one span record.
	for i, line := range strings.Split(strings.TrimRight(string(full), "\n"), "\n") {
		if !strings.HasPrefix(line, `{"id":`) || !strings.HasSuffix(line, "}") {
			t.Fatalf("stream line %d is not a span record: %s", i, line)
		}
	}
}
