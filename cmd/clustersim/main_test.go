package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func TestRunDefaults(t *testing.T) {
	if err := run(10, 10, 1, "", 0.8, "", faultConfig{}); err != nil {
		t.Fatal(err)
	}
}

func TestRunSmallCluster(t *testing.T) {
	if err := run(4, 3, 2, "", 0.8, "", faultConfig{}); err != nil {
		t.Fatal(err)
	}
}

func TestRunBadShape(t *testing.T) {
	if err := run(1, 10, 1, "", 0.8, "", faultConfig{}); err == nil {
		t.Fatal("single-host cluster accepted")
	}
	if err := run(10, 10, 10, "", 0.8, "", faultConfig{}); err == nil {
		t.Fatal("group size = cluster accepted")
	}
}

// The -fault-seed/-fault-rate/-fault-sites path: the degradation-capable
// executor quarantines failed hosts and the run still completes.
func TestRunWithFaultInjection(t *testing.T) {
	fc := faultConfig{Seed: 7, Rate: 0.5, Sites: "cluster.host"}
	if err := run(6, 3, 1, "", 0.8, "", fc); err != nil {
		t.Fatal(err)
	}
	// Unknown site rejected.
	bad := faultConfig{Seed: 1, Rate: 1, Sites: "no.such.site"}
	if err := run(4, 3, 1, "", 0.8, "", bad); err == nil {
		t.Fatal("unknown fault site accepted")
	}
}

func TestRunTraceOut(t *testing.T) {
	dir := t.TempDir()
	tracePath := filepath.Join(dir, "upgrade.json")
	metricsPath := filepath.Join(dir, "metrics.json")
	if err := run(4, 3, 1, tracePath, 0.5, metricsPath, faultConfig{}); err != nil {
		t.Fatal(err)
	}
	var tr struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	data, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(data, &tr); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	seen := map[string]bool{}
	for _, ev := range tr.TraceEvents {
		if name, ok := ev["name"].(string); ok {
			seen[name] = true
		}
	}
	if !seen["rolling-upgrade"] || !seen["group-0"] {
		t.Fatalf("trace missing upgrade spans; saw %v", seen)
	}
	if _, err := os.Stat(metricsPath); err != nil {
		t.Fatal(err)
	}
}
