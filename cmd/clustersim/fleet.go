package main

import (
	"fmt"
	"io"
	"time"

	"hypertp/internal/core"
	"hypertp/internal/hterr"
	"hypertp/internal/hv"
	"hypertp/internal/hw"
	"hypertp/internal/metrics"
	"hypertp/internal/obs"
	"hypertp/internal/orchestrator"
	"hypertp/internal/reactive"
	"hypertp/internal/sched"
	"hypertp/internal/simnet"
	"hypertp/internal/simtime"
	"hypertp/internal/slo"
	"hypertp/internal/tpcache"
	"hypertp/internal/vulndb"
)

// fleetCVE is the critical Xen flaw the -fleet scenario responds to.
const fleetCVE = "CVE-2016-6258"

// buildFleet stands up an all-Xen fleet: M1-class hosts (6 usable
// vCPUs each) and small 1-vCPU VMs, every fourth one
// InPlaceTP-incompatible, so the CVE response mixes in-place
// transplants with evacuations.
func buildFleet(hosts, vms int) (*orchestrator.Nova, error) {
	clock := simtime.NewClock()
	fabric := simnet.NewLink(clock, "fabric", simnet.Gbps10, 100*time.Microsecond)
	nova := orchestrator.NewNova(clock, fabric)
	for i := 0; i < hosts; i++ {
		name := fmt.Sprintf("host-%03d", i)
		prof := hw.M1()
		prof.Name = name
		prof.RAMBytes = 2 * hw.GiB
		d, err := orchestrator.NewLibvirtDriver(clock, hw.NewMachine(clock, prof), hv.KindXen)
		if err != nil {
			return nil, err
		}
		if err := nova.AddNode(name, d); err != nil {
			return nil, err
		}
	}
	for i := 0; i < vms; i++ {
		_, err := nova.BootVM(hv.Config{
			Name: fmt.Sprintf("vm-%04d", i), VCPUs: 1, MemBytes: 64 << 20,
			HugePages: true, Seed: 7 + uint64(i), InPlaceCompatible: i%4 != 3,
		})
		if err != nil {
			return nil, fmt.Errorf("boot vm %d: %w", i, err)
		}
	}
	return nova, nil
}

// fleetRun is one CVE response's worth of outcome: the response, the
// final VM placement, and the SLO tracker fed by the orchestrator.
type fleetRun struct {
	resp      *orchestrator.FleetResponse
	storm     *orchestrator.StormResponse
	placement []string
	slo       *slo.Tracker
	rec       *obs.Recorder
	now       time.Duration
}

// crashFleet fail-stops every step-th host (crashRate of the fleet,
// staggered 37ms apart so the detector sees distinct crash times) and
// recovers the lot through the scheduled emergency path under the same
// capacity limits the response will run with. A host left frozen or
// lost afterwards is an unrecovered crash: surfaced as the crash error
// class, which exits with status 2.
func crashFleet(nova *orchestrator.Nova, hosts int, crashRate float64) (*orchestrator.StormResponse, error) {
	count := int(crashRate*float64(hosts) + 0.5)
	if count < 1 {
		count = 1
	}
	if count > hosts {
		count = hosts
	}
	nova.SetDetector(reactive.NewDetector(reactive.ProbeConfig{Seed: 42}))
	clock := nova.Clock()
	for i := 0; i < count; i++ {
		clock.Advance(37 * time.Millisecond)
		name := fmt.Sprintf("host-%03d", i*hosts/count)
		if _, err := nova.CrashHost(name, "injected fail-stop"); err != nil {
			return nil, err
		}
	}
	storm, err := nova.RecoverFleet(core.DefaultOptions())
	if err != nil {
		return nil, err
	}
	if n := len(storm.FrozenNodes) + len(storm.LostNodes); n > 0 {
		return storm, hterr.HypervisorCrashed(fmt.Errorf(
			"clustersim: %d of %d crashed hosts not recovered (frozen %v, lost %v)",
			n, len(storm.DownHosts), storm.FrozenNodes, storm.LostNodes))
	}
	return storm, nil
}

// cacheConfig is the -fleet transplant-cache shape: -warm-pool /
// -no-cache.
type cacheConfig struct {
	WarmPool int
	NoCache  bool
}

// respondOnce builds a fresh fleet and runs the CVE response under the
// given limits, with vulnerability-window SLO tracking attached. With
// caching on, the warm pool is refilled before the response starts —
// pre-staging happens outside the vulnerability window.
func respondOnce(hosts, vms int, limits sched.Limits, cc cacheConfig, crashRate float64) (*fleetRun, error) {
	nova, err := buildFleet(hosts, vms)
	if err != nil {
		return nil, err
	}
	clock := nova.Clock()
	rec := obs.NewRecorder(clock)
	nova.SetRecorder(rec)
	tracker := slo.NewTracker()
	tracker.SetRegistry(rec.Metrics())
	nova.SetSLO(tracker)
	var storm *orchestrator.StormResponse
	if crashRate > 0 {
		// The crash storm lands before the disclosure: the response then
		// finds the recovered hosts already on the safe hypervisor.
		nova.SetFleetLimits(&limits)
		storm, err = crashFleet(nova, hosts, crashRate)
		if err != nil {
			return nil, err
		}
	}
	opts := core.DefaultOptions()
	if !cc.NoCache {
		cache := tpcache.New()
		opts.Cache = cache
		if cc.WarmPool > 0 {
			nova.SetWarmPool(cache, cc.WarmPool)
			if _, err := nova.WarmPoolRefill(); err != nil {
				return nil, err
			}
		}
	} else if cc.WarmPool > 0 {
		return nil, fmt.Errorf("clustersim: -warm-pool needs the transplant cache; drop -no-cache")
	}
	nova.SetFleetLimits(&limits)
	resp, err := nova.RespondToCVE(vulndb.Load(), fleetCVE, []string{"xen", "kvm"}, opts)
	if err != nil {
		return nil, err
	}
	run := &fleetRun{resp: resp, storm: storm, slo: tracker, rec: rec, now: clock.Now()}
	for _, rec := range nova.Records() {
		run.placement = append(run.placement, fmt.Sprintf("%s@%s:%v", rec.Name, rec.Node, rec.Kind))
	}
	return run, nil
}

// runFleet runs the cluster-wide CVE response twice — once on the
// serial baseline scheduler and once concurrently under the capacity
// limits — and reports the makespan reduction plus the fleet's
// vulnerability-window SLO report (remediation latency vs disclosure,
// burn rate, PASS/FAIL verdict). The final placement must be identical
// between the two runs (same planner, different timeline); a divergence
// is an invariant violation and exits non-zero. The whole report is
// byte-identical for any -workers count.
func runFleet(w io.Writer, hosts, vms int, sc schedConfig, ec exportConfig, cc cacheConfig, crashRate float64) error {
	defer sc.apply()()
	limits := sc.limits()
	if !sc.enabled() {
		limits = sched.Limits{MaxKexecs: 4, LinkStreams: 4}
	}

	serial, err := respondOnce(hosts, vms, sched.Serial(), cc, crashRate)
	if err != nil {
		return err
	}
	conc, err := respondOnce(hosts, vms, limits, cc, crashRate)
	if err != nil {
		return err
	}
	if fmt.Sprint(serial.placement) != fmt.Sprint(conc.placement) {
		return hterr.InvariantViolated(fmt.Errorf(
			"clustersim: concurrent schedule changed VM placement:\nserial:     %v\nconcurrent: %v",
			serial.placement, conc.placement))
	}

	tab := &metrics.Table{
		Title: fmt.Sprintf("Fleet CVE response: %s, %d hosts x %d VMs (kexecs %d, streams %d)",
			fleetCVE, hosts, vms, limits.MaxKexecs, limits.LinkStreams),
		Headers: []string{"Schedule", "Upgraded", "Skipped", "Quarantined", "Makespan", "Speedup"},
	}
	row := func(name string, r *orchestrator.FleetResponse) {
		tab.AddRow(name, fmt.Sprint(len(r.UpgradedNodes)), fmt.Sprint(len(r.SkippedNodes)),
			fmt.Sprint(len(r.QuarantinedNodes)), r.Elapsed.Round(time.Millisecond).String(),
			fmt.Sprintf("%.2fx", float64(serial.resp.Elapsed)/float64(r.Elapsed)))
	}
	row("serial", serial.resp)
	row("concurrent", conc.resp)
	fmt.Fprintln(w, tab.Render())
	fmt.Fprintf(w, "placement: identical across schedules (%d VMs)\n", vms)
	if conc.storm != nil {
		s := conc.storm
		fmt.Fprintf(w, "reactive recovery: %d hosts crashed, %d recovered, %d frozen, %d lost (makespan %v)\n",
			len(s.DownHosts), len(s.RecoveredNodes), len(s.FrozenNodes), len(s.LostNodes),
			s.Elapsed.Round(time.Millisecond))
	}
	if !cc.NoCache {
		s := conc.resp.Summary()
		ratio := 0.0
		if s.CacheHits+s.CacheMisses > 0 {
			ratio = float64(s.CacheHits) / float64(s.CacheHits+s.CacheMisses)
		}
		fmt.Fprintf(w, "cache: %d hits / %d misses (ratio %.2f), %d warm starts\n",
			s.CacheHits, s.CacheMisses, ratio, s.CacheWarmStarts)
	}
	fmt.Fprintln(w)
	// The concurrent run is the production shape: its vulnerability
	// window is the one the fleet would actually see.
	if err := conc.slo.WriteReport(w, conc.now); err != nil {
		return err
	}
	if ec.PromOut != "" {
		write := func(pw io.Writer) error { return conc.rec.Metrics().WritePrometheus(pw, false) }
		if err := writeFileWith(ec.PromOut, write); err != nil {
			return err
		}
		fmt.Fprintf(w, "metrics: wrote %s (Prometheus text format)\n", ec.PromOut)
	}
	if !conc.slo.Pass(conc.now) {
		return fmt.Errorf("clustersim: fleet SLO violated (see report above)")
	}
	return nil
}
