package main

import (
	"fmt"
	"io"
	"time"

	"hypertp/internal/core"
	"hypertp/internal/hterr"
	"hypertp/internal/hv"
	"hypertp/internal/hw"
	"hypertp/internal/metrics"
	"hypertp/internal/orchestrator"
	"hypertp/internal/sched"
	"hypertp/internal/simnet"
	"hypertp/internal/simtime"
	"hypertp/internal/vulndb"
)

// fleetCVE is the critical Xen flaw the -fleet scenario responds to.
const fleetCVE = "CVE-2016-6258"

// buildFleet stands up an all-Xen fleet: M1-class hosts (6 usable
// vCPUs each) and small 1-vCPU VMs, every fourth one
// InPlaceTP-incompatible, so the CVE response mixes in-place
// transplants with evacuations.
func buildFleet(hosts, vms int) (*orchestrator.Nova, error) {
	clock := simtime.NewClock()
	fabric := simnet.NewLink(clock, "fabric", simnet.Gbps10, 100*time.Microsecond)
	nova := orchestrator.NewNova(clock, fabric)
	for i := 0; i < hosts; i++ {
		name := fmt.Sprintf("host-%03d", i)
		prof := hw.M1()
		prof.Name = name
		prof.RAMBytes = 2 * hw.GiB
		d, err := orchestrator.NewLibvirtDriver(clock, hw.NewMachine(clock, prof), hv.KindXen)
		if err != nil {
			return nil, err
		}
		if err := nova.AddNode(name, d); err != nil {
			return nil, err
		}
	}
	for i := 0; i < vms; i++ {
		_, err := nova.BootVM(hv.Config{
			Name: fmt.Sprintf("vm-%04d", i), VCPUs: 1, MemBytes: 64 << 20,
			HugePages: true, Seed: 7 + uint64(i), InPlaceCompatible: i%4 != 3,
		})
		if err != nil {
			return nil, fmt.Errorf("boot vm %d: %w", i, err)
		}
	}
	return nova, nil
}

// respondOnce builds a fresh fleet and runs the CVE response under the
// given limits, returning the response and the final VM placement.
func respondOnce(hosts, vms int, limits sched.Limits) (*orchestrator.FleetResponse, []string, error) {
	nova, err := buildFleet(hosts, vms)
	if err != nil {
		return nil, nil, err
	}
	nova.SetFleetLimits(&limits)
	resp, err := nova.RespondToCVE(vulndb.Load(), fleetCVE, []string{"xen", "kvm"}, core.DefaultOptions())
	if err != nil {
		return nil, nil, err
	}
	var placement []string
	for _, rec := range nova.Records() {
		placement = append(placement, fmt.Sprintf("%s@%s:%v", rec.Name, rec.Node, rec.Kind))
	}
	return resp, placement, nil
}

// runFleet runs the cluster-wide CVE response twice — once on the
// serial baseline scheduler and once concurrently under the capacity
// limits — and reports the makespan reduction. The final placement must
// be identical between the two runs (same planner, different timeline);
// a divergence is an invariant violation and exits non-zero.
func runFleet(w io.Writer, hosts, vms int, sc schedConfig) error {
	defer sc.apply()()
	limits := sc.limits()
	if !sc.enabled() {
		limits = sched.Limits{MaxKexecs: 4, LinkStreams: 4}
	}

	serial, placeSerial, err := respondOnce(hosts, vms, sched.Serial())
	if err != nil {
		return err
	}
	conc, placeConc, err := respondOnce(hosts, vms, limits)
	if err != nil {
		return err
	}
	if fmt.Sprint(placeSerial) != fmt.Sprint(placeConc) {
		return hterr.InvariantViolated(fmt.Errorf(
			"clustersim: concurrent schedule changed VM placement:\nserial:     %v\nconcurrent: %v",
			placeSerial, placeConc))
	}

	tab := &metrics.Table{
		Title: fmt.Sprintf("Fleet CVE response: %s, %d hosts x %d VMs (kexecs %d, streams %d)",
			fleetCVE, hosts, vms, limits.MaxKexecs, limits.LinkStreams),
		Headers: []string{"Schedule", "Upgraded", "Skipped", "Quarantined", "Makespan", "Speedup"},
	}
	row := func(name string, r *orchestrator.FleetResponse) {
		tab.AddRow(name, fmt.Sprint(len(r.UpgradedNodes)), fmt.Sprint(len(r.SkippedNodes)),
			fmt.Sprint(len(r.QuarantinedNodes)), r.Elapsed.Round(time.Millisecond).String(),
			fmt.Sprintf("%.2fx", float64(serial.Elapsed)/float64(r.Elapsed)))
	}
	row("serial", serial)
	row("concurrent", conc)
	fmt.Fprintln(w, tab.Render())
	fmt.Fprintf(w, "placement: identical across schedules (%d VMs)\n", vms)
	return nil
}
