// Benchmark harness: one testing.B benchmark per table and figure of the
// paper's evaluation. Each iteration regenerates the full experiment from
// scratch (fresh machines, fresh VMs, real transplants on the virtual
// clock), so the benchmarks double as end-to-end exercises and report the
// wall-clock cost of reproducing each result.
//
//	go test -bench=. -benchmem
package hypertp_test

import (
	"runtime"
	"testing"
	"time"

	"hypertp"
	"hypertp/internal/experiments"
	"hypertp/internal/hv"
	"hypertp/internal/hw"
	"hypertp/internal/obs"
	"hypertp/internal/pram"
	"hypertp/internal/simtime"
	"hypertp/internal/uisr"
)

func BenchmarkTable1VulnStudy(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		db, tab := experiments.Table1()
		if db == nil || len(tab.Rows) != 8 {
			b.Fatal("table 1 wrong")
		}
		stats, _ := experiments.Section22Windows()
		if stats.Tracked != 24 {
			b.Fatal("window stats wrong")
		}
	}
}

func BenchmarkTable2StateMapping(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if len(experiments.Table2().Rows) != 7 {
			b.Fatal("table 2 wrong")
		}
	}
}

func BenchmarkFigure6Breakdown(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rows, _, err := experiments.Figure6()
		if err != nil {
			b.Fatal(err)
		}
		if d := rows[0].Report.Downtime; d < time.Second || d > 2*time.Second {
			b.Fatalf("M1 downtime %v", d)
		}
	}
}

func BenchmarkFigure7Scalability(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sweeps, _, err := experiments.Figure7()
		if err != nil {
			b.Fatal(err)
		}
		if len(sweeps) != 6 {
			b.Fatal("sweep count")
		}
	}
}

func BenchmarkFigure8Downtime(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sweeps, _, err := experiments.Figure8()
		if err != nil {
			b.Fatal(err)
		}
		if len(sweeps) != 3 {
			b.Fatal("sweep count")
		}
	}
}

func BenchmarkFigure9MigrationTime(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sweeps, _, err := experiments.Figure9()
		if err != nil {
			b.Fatal(err)
		}
		if len(sweeps) != 3 {
			b.Fatal("sweep count")
		}
	}
}

// warmGrid is BenchmarkFigure10Warm's primed testbed grid, built once
// and shared across the harness's b.N ramp-up trials.
var warmGrid *experiments.Figure10WarmGrid

func BenchmarkFigure10KVMToXen(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sweeps, _, err := experiments.Figure10()
		if err != nil {
			b.Fatal(err)
		}
		if len(sweeps) != 6 {
			b.Fatal("sweep count")
		}
	}
}

// BenchmarkFigure10Warm is the repeat-transplant twin of
// BenchmarkFigure10KVMToXen: the same 36-point KVM<->Xen grid, but the
// testbeds persist and every transplant cache is primed before the timer
// starts, so each iteration times one fully warm grid pass (translation
// lookups all hit, PRAM replayed incrementally). The ratio against the
// cold benchmark is the repeat-transplant speedup the warm pool buys;
// the nightly benchdiff job fails if it drops below 5x.
//
// The primed grid is cached across b.N trials: rebuilding its 36
// testbeds per trial would leave gigabytes of dead heap behind and tax
// the timed loop with the GC debt of setup instead of the cost of the
// warm hops.
func BenchmarkFigure10Warm(b *testing.B) {
	if warmGrid == nil {
		var err error
		if warmGrid, err = experiments.NewFigure10WarmGrid(); err != nil {
			b.Fatal(err)
		}
		runtime.GC()
	}
	grid := warmGrid
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		hits, err := grid.Hop()
		if err != nil {
			b.Fatal(err)
		}
		if hits == 0 {
			b.Fatal("warm grid pass reported no cache hits")
		}
	}
}

func BenchmarkTable4Migration(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, _, err := experiments.Table4()
		if err != nil {
			b.Fatal(err)
		}
		if res.TPDowntime >= res.XenDowntime {
			b.Fatal("downtime ordering wrong")
		}
	}
}

func BenchmarkFigure11Redis(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tl, _, err := experiments.Figure11()
		if err != nil {
			b.Fatal(err)
		}
		if tl.ObservedGapSec < 7 || tl.ObservedGapSec > 12 {
			b.Fatalf("gap %.1f", tl.ObservedGapSec)
		}
	}
}

func BenchmarkFigure12MySQL(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tl, _, err := experiments.Figure12()
		if err != nil {
			b.Fatal(err)
		}
		if tl.MigQPSDropFrac < 0.5 {
			b.Fatalf("drop %.2f", tl.MigQPSDropFrac)
		}
	}
}

func BenchmarkTable5SPEC(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		inplace, migr, _, err := experiments.Table5()
		if err != nil {
			b.Fatal(err)
		}
		if len(inplace) != 23 || len(migr) != 23 {
			b.Fatal("row count")
		}
	}
}

func BenchmarkTable6Darknet(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		runs, _, err := experiments.Table6()
		if err != nil {
			b.Fatal(err)
		}
		if runs["inplacetp"].Longest() < 4 {
			b.Fatal("inplace peak wrong")
		}
	}
}

func BenchmarkFigure13Cluster(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		points, _, err := experiments.Figure13()
		if err != nil {
			b.Fatal(err)
		}
		if points[0].Migrations <= 100 {
			b.Fatal("no cascade")
		}
	}
}

func BenchmarkFigure14Overhead(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		fig, _, err := experiments.Figure14()
		if err != nil {
			b.Fatal(err)
		}
		if fig.VMs[len(fig.VMs)-1].PRAMBytes != 148<<10 {
			b.Fatal("PRAM anchor wrong")
		}
	}
}

func BenchmarkAblationOptimizations(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rows, _, err := experiments.Ablation()
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 6 {
			b.Fatal("row count")
		}
	}
}

// BenchmarkInPlaceTransplant measures the public-API single-transplant
// path: the cost of one full InPlaceTP including machine setup.
func BenchmarkInPlaceTransplant(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sim := hypertp.NewSimulation()
		host, err := sim.NewHost(hypertp.M1(), hypertp.KindXen)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := host.CreateVM(hypertp.VMConfig{
			Name: "bench", VCPUs: 1, MemBytes: 1 << 30, HugePages: true, Seed: 1,
		}); err != nil {
			b.Fatal(err)
		}
		if _, err := host.TransplantWith(hypertp.KindKVM, hypertp.Default()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMigrationTP measures the public-API migration path.
func BenchmarkMigrationTP(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sim := hypertp.NewSimulation()
		src, err := sim.NewHost(hypertp.M1(), hypertp.KindXen)
		if err != nil {
			b.Fatal(err)
		}
		dst, err := sim.NewHost(hypertp.M1(), hypertp.KindKVM)
		if err != nil {
			b.Fatal(err)
		}
		link := sim.NewLink("pair", hypertp.Gbps(1), 100*time.Microsecond)
		vm, err := src.CreateVM(hypertp.VMConfig{
			Name: "bench", VCPUs: 1, MemBytes: 1 << 30, HugePages: true, Seed: 1,
		})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := src.MigrateVM(vm, link, dst); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkVENOMEscape measures the three-pool escape scenario: Xen →
// microhypervisor and back, with guest verification.
func BenchmarkVENOMEscape(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sim := hypertp.NewSimulation()
		host, err := sim.NewHost(hypertp.M1(), hypertp.KindXen)
		if err != nil {
			b.Fatal(err)
		}
		vm, err := host.CreateVM(hypertp.VMConfig{
			Name: "bench", VCPUs: 1, MemBytes: 1 << 30, HugePages: true, Seed: 1,
		})
		if err != nil {
			b.Fatal(err)
		}
		vm.Guest.WriteWorkingSet(0, 64)
		if _, err := host.TransplantWith(hypertp.KindNOVA, hypertp.Default()); err != nil {
			b.Fatal(err)
		}
		if _, err := host.TransplantWith(hypertp.KindXen, hypertp.Default()); err != nil {
			b.Fatal(err)
		}
		for _, vm := range host.VMs() {
			if err := vm.Guest.Verify(); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// --- codec micro-benchmarks -------------------------------------------------
//
// These isolate the serialization hot paths the transplant engine runs per
// VM: UISR encode/decode and PRAM build (serialize) / parse. Fixtures match
// the paper's reference VM shape (4 vCPUs, 8 GiB huge-page backed).

func benchState(b *testing.B) *uisr.VMState {
	b.Helper()
	return uisr.SyntheticVM("bench", 1, 4, 8<<30, 42)
}

func BenchmarkUISREncode(b *testing.B) {
	st := benchState(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := uisr.Encode(st); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkUISRDecode(b *testing.B) {
	blob, err := uisr.Encode(benchState(b))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := uisr.Decode(blob); err != nil {
			b.Fatal(err)
		}
	}
}

// benchPRAMFiles allocates an 8 GiB huge-page guest on a fresh physical
// memory and returns the memory plus the PRAM file records for it.
func benchPRAMFiles(b *testing.B) (*hw.PhysMem, []pram.File) {
	b.Helper()
	mem := hw.NewPhysMem(16 << 30)
	space, err := hv.AllocAddressSpace(mem, 1, 8<<30, true)
	if err != nil {
		b.Fatal(err)
	}
	return mem, []pram.File{{Name: "bench", VMID: 1, Extents: space.Extents()}}
}

func BenchmarkPRAMSerialize(b *testing.B) {
	mem, files := benchPRAMFiles(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := pram.Build(mem, files, pram.BuildOptions{})
		if err != nil {
			b.Fatal(err)
		}
		if err := s.Release(mem); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPRAMParse(b *testing.B) {
	mem, files := benchPRAMFiles(b)
	s, err := pram.Build(mem, files, pram.BuildOptions{})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pram.Parse(mem, s.Pointer); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure7Observability measures the instrumentation tax on the
// Figure 7 end-to-end run: "off" is the nil-recorder fast path (the
// default), "on" attaches a full recorder (spans + metrics) to every
// testbed the sweep builds. The PR gate is off-vs-on overhead <= 5%.
func BenchmarkFigure7Observability(b *testing.B) {
	run := func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sweeps, _, err := experiments.Figure7()
			if err != nil {
				b.Fatal(err)
			}
			if len(sweeps) != 6 {
				b.Fatal("sweep count")
			}
		}
	}
	b.Run("off", run)
	b.Run("on", func(b *testing.B) {
		experiments.SetObsFactory(func(clock *simtime.Clock) *obs.Recorder {
			return obs.NewRecorder(clock)
		})
		defer experiments.SetObsFactory(nil)
		run(b)
	})
}
