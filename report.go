package hypertp

import (
	"hypertp/internal/cluster"
	"hypertp/internal/core"
	"hypertp/internal/migration"
	"hypertp/internal/orchestrator"
	"hypertp/internal/report"
)

// The unified result vocabulary: every transplant-class operation —
// InPlaceTP, MigrationTP, a cluster rolling upgrade, a fleet CVE
// response — returns a concrete report that also implements Report, so
// callers can treat any outcome uniformly via Summary().
type (
	// Report is implemented by every operation report in the stack.
	Report = report.Report
	// Summary is the operation-independent view of a report.
	Summary = report.Summary
	// Outcome is the terminal state of an operation.
	Outcome = report.Outcome
	// ClusterResult summarizes an executed cluster upgrade.
	ClusterResult = cluster.Result
)

// Outcome values.
const (
	// OutcomeCompleted: finished on the first attempt, no faults.
	OutcomeCompleted = report.OutcomeCompleted
	// OutcomeRecovered: finished, but only after absorbing at least one
	// fault (retry, crash recovery).
	OutcomeRecovered = report.OutcomeRecovered
	// OutcomeRolledBack: abandoned and fully undone; every VM still
	// runs on the source with its state intact.
	OutcomeRolledBack = report.OutcomeRolledBack
	// OutcomeDegraded: a fleet operation completed partially — failed
	// hosts were quarantined and their VMs re-planned.
	OutcomeDegraded = report.OutcomeDegraded
)

// Compile-time proof that every operation report satisfies Report.
var (
	_ Report = (*core.InPlaceReport)(nil)
	_ Report = (*migration.Report)(nil)
	_ Report = cluster.Result{}
	_ Report = (*orchestrator.FleetResponse)(nil)
)
