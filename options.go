package hypertp

import (
	"time"

	"hypertp/internal/cluster"
	"hypertp/internal/core"
	"hypertp/internal/fault"
	"hypertp/internal/simtime"
)

// Fault-injection vocabulary, re-exported from the internal engine.
type (
	// FaultSite names one deterministic injection point (e.g.
	// "kexec.handover", "link.abort"). AllFaultSites lists them.
	FaultSite = fault.Site
	// FaultPlan is a materialized, seeded injection plan; build one
	// with Simulation.NewFaultPlan and pass it to
	// Cluster.ExecuteRollingUpgrade.
	FaultPlan = fault.Plan
	// RetryPolicy bounds recovery retries with exponential backoff.
	// The zero value means a single attempt.
	RetryPolicy = fault.RetryPolicy
)

// The registered injection sites (see internal/fault for semantics).
const (
	SiteKexecLoad     = fault.SiteKexecLoad
	SitePRAMBuild     = fault.SitePRAMBuild
	SiteUISRTranslate = fault.SiteUISRTranslate
	SiteKexecHandover = fault.SiteKexecHandover
	SiteHVBoot        = fault.SiteHVBoot
	SitePRAMParse     = fault.SitePRAMParse
	SiteUISRRestore   = fault.SiteUISRRestore
	SiteLinkAbort     = fault.SiteLinkAbort
	SiteLinkLoss      = fault.SiteLinkLoss
	SiteClusterHost   = fault.SiteClusterHost
)

// AllFaultSites lists every registered injection site in registry order.
func AllFaultSites() []FaultSite { return fault.Sites() }

// ParseFaultSites parses a comma-separated site list ("" means all).
func ParseFaultSites(csv string) ([]FaultSite, error) { return fault.ParseSites(csv) }

// DefaultRetryPolicy is the engine's standard recovery policy: three
// attempts, 50 ms base backoff, doubling.
func DefaultRetryPolicy() RetryPolicy { return fault.DefaultRetryPolicy() }

// Config is the single options struct for every transplant-class
// operation. It collapses the historical core.Options (the §4.2.5
// InPlaceTP optimization toggles) and cluster.ExecutionModel (the §5.4
// fleet timing model) and adds the fault-injection and recovery
// controls. Build one with Default() and functional overrides:
//
//	cfg := hypertp.NewConfig(
//	        hypertp.WithFaults(42, 0.1),
//	        hypertp.WithRetry(hypertp.DefaultRetryPolicy()))
type Config struct {
	// InPlaceTP optimization toggles (§4.2.5). See core.Options.
	PrepareBeforePause bool
	Parallel           bool
	HugePages          bool
	EarlyRestoration   bool

	// TranslationCache enables the simulation-wide transplant cache:
	// repeat transplants reuse encoded UISR translations and replay
	// PRAM builds instead of recomputing them. Caching is deterministic
	// — reports, guest checksums, and span trees are byte-identical to
	// the cold path; only wall-clock time and the cache counters (see
	// Summary and Simulation.CacheStats) change. On by default.
	TranslationCache bool
	// WarmPool is the number of pre-staged translation entries the
	// fleet layer keeps ready (see tpctl -warm-pool and clustersim
	// -fleet -warm-pool); 0 disables pre-staging.
	WarmPool int
	// PageDedup enables content-hash page dedup in physical memory:
	// writes producing a page byte-identical to an already-interned one
	// share the backing store. Off by default.
	PageDedup bool

	// Fleet execution model (§5.4). See cluster.ExecutionModel.
	LinkByteRate         int64
	PerMigrationOverhead time.Duration
	InPlaceHostTime      time.Duration

	// FaultSeed and FaultRate parameterize deterministic fault
	// injection: each arming of a site rolls a seeded PRNG against
	// FaultRate. A rate of 0 with no forced shots disables injection.
	FaultSeed uint64
	FaultRate float64
	// FaultSites restricts probabilistic injection to the listed sites;
	// empty means every registered site is eligible.
	FaultSites []FaultSite
	// Retry bounds crash recovery and migration retries. The zero
	// value selects the engine default for InPlaceTP recovery and a
	// single attempt for MigrationTP.
	Retry RetryPolicy

	forced []forcedShot
}

type forcedShot struct {
	site FaultSite
	occ  int
}

// Default returns the paper's optimized configuration with fault
// injection disabled and the default retry policy.
func Default() Config {
	o := core.DefaultOptions()
	m := cluster.DefaultExecutionModel()
	return Config{
		PrepareBeforePause:   o.PrepareBeforePause,
		Parallel:             o.Parallel,
		HugePages:            o.HugePages,
		EarlyRestoration:     o.EarlyRestoration,
		TranslationCache:     true,
		LinkByteRate:         m.LinkByteRate,
		PerMigrationOverhead: m.PerMigrationOverhead,
		InPlaceHostTime:      m.InPlaceHostTime,
		Retry:                fault.DefaultRetryPolicy(),
	}
}

// An Option overrides one aspect of a Config.
type Option func(*Config)

// NewConfig builds a Config from Default plus the given overrides.
func NewConfig(opts ...Option) Config {
	cfg := Default()
	for _, o := range opts {
		o(&cfg)
	}
	return cfg
}

// WithoutOptimizations disables every §4.2.5 optimization (the paper's
// de-optimized baseline).
func WithoutOptimizations() Option {
	return func(c *Config) {
		c.PrepareBeforePause = false
		c.Parallel = false
		c.HugePages = false
		c.EarlyRestoration = false
	}
}

// WithFaults enables seeded probabilistic fault injection, optionally
// restricted to the given sites.
func WithFaults(seed uint64, rate float64, sites ...FaultSite) Option {
	return func(c *Config) {
		c.FaultSeed = seed
		c.FaultRate = rate
		c.FaultSites = sites
	}
}

// WithForcedFault schedules one guaranteed injection at the site's
// n-th arming (1-based), regardless of rate or site restriction.
func WithForcedFault(site FaultSite, occurrence int) Option {
	return func(c *Config) {
		c.forced = append(c.forced, forcedShot{site: site, occ: occurrence})
	}
}

// WithRetry overrides the recovery policy.
func WithRetry(policy RetryPolicy) Option {
	return func(c *Config) { c.Retry = policy }
}

// WithTranslationCache enables or disables the transplant cache. Pass
// false to force every transplant down the cold path (the benchmark
// baseline configuration).
func WithTranslationCache(on bool) Option {
	return func(c *Config) { c.TranslationCache = on }
}

// WithWarmPool sets the number of pre-staged warm translation entries
// the fleet layer keeps ready.
func WithWarmPool(n int) Option {
	return func(c *Config) { c.WarmPool = n }
}

// WithPageDedup enables or disables content-hash page dedup.
func WithPageDedup(on bool) Option {
	return func(c *Config) { c.PageDedup = on }
}

// engineOptions lowers the config to the internal InPlaceTP toggles.
func (c Config) engineOptions() core.Options {
	return core.Options{
		PrepareBeforePause: c.PrepareBeforePause,
		Parallel:           c.Parallel,
		HugePages:          c.HugePages,
		EarlyRestoration:   c.EarlyRestoration,
	}
}

// ClusterModel lowers the config to the cluster timing model consumed
// by Plan.Execute and Cluster.ExecuteRollingUpgrade.
func (c Config) ClusterModel() ExecutionModel {
	return cluster.ExecutionModel{
		LinkByteRate:         c.LinkByteRate,
		PerMigrationOverhead: c.PerMigrationOverhead,
		InPlaceHostTime:      c.InPlaceHostTime,
	}
}

// faultPlan materializes the config's fault plan on the given clock, or
// nil when injection is fully disabled (nil plans are free no-ops).
func (c Config) faultPlan(clock *simtime.Clock) *fault.Plan {
	if c.FaultRate == 0 && len(c.forced) == 0 {
		return nil
	}
	p := fault.NewPlan(c.FaultSeed, c.FaultRate).SetClock(clock)
	if len(c.FaultSites) > 0 {
		p.Restrict(c.FaultSites...)
	}
	for _, f := range c.forced {
		p.ForceAt(f.site, f.occ)
	}
	return p
}

// NewFaultPlan materializes cfg's fault plan on this simulation's
// clock — the form Cluster.ExecuteRollingUpgrade consumes. Returns nil
// (a valid, free no-op) when the config does not enable injection.
func (s *Simulation) NewFaultPlan(cfg Config) *FaultPlan {
	return cfg.faultPlan(s.clock)
}

// ExecutionModel times a cluster plan.
//
// Deprecated: the fields live on Config now; use Default() /
// NewConfig. Kept so existing callers keep compiling.
type ExecutionModel = cluster.ExecutionModel

// DefaultExecutionModel returns the §5.4 testbed timing.
//
// Deprecated: use Default(), which carries the same fields.
func DefaultExecutionModel() ExecutionModel { return cluster.DefaultExecutionModel() }
