package slo

import (
	"fmt"
	"io"
	"time"
)

// WriteReport renders the tracker as the `slo report` human summary:
// one block per CVE in first-seen order with the fleet vulnerability
// window (p50/p95/max remediation latency vs disclosure), the SLO
// verdict where a target was declared, and the VM downtime digest. All
// values are virtual-time-derived, so the report is byte-identical
// across runs and -workers counts.
func (t *Tracker) WriteReport(w io.Writer, now time.Duration) error {
	var b []byte
	b = append(b, fmt.Sprintf("slo report (virtual now %v)\n", now)...)
	reports := t.Report(now)
	if len(reports) == 0 {
		b = append(b, "  no tracked CVEs\n"...)
	}
	for _, r := range reports {
		b = append(b, fmt.Sprintf("%s: disclosed %v  exposed=%d remediated=%d open=%d\n",
			r.CVE, r.Disclosed, r.Exposed, r.Remediated, r.Open)...)
		if r.Remediated > 0 {
			b = append(b, fmt.Sprintf("  remediation latency p50=%v p95=%v max=%v (window closed by %s)\n",
				r.P50, r.P95, r.Max, r.WorstHost)...)
		}
		if r.HasTarget {
			b = append(b, "  "...)
			b = append(b, r.Verdict.String()...)
			b = append(b, '\n')
		}
	}
	if d := t.Downtime(); d.VMs > 0 {
		b = append(b, fmt.Sprintf("vm downtime: vms=%d total=%v p50=%v p95=%v max=%v (worst %s)\n",
			d.VMs, d.Total, d.P50, d.P95, d.Max, d.WorstVM)...)
	}
	// The availability section only appears once an unplanned outage was
	// tracked, so crash-free runs render byte-identically to before the
	// reactive path existed.
	if a := t.Availability(now); a.Outages > 0 {
		b = append(b, fmt.Sprintf("availability: hosts=%d outages=%d open=%d downtime=%v (worst %s)\n",
			a.Hosts, a.Outages, a.Open, a.Total, a.WorstHost)...)
		if a.Outages > a.Open {
			b = append(b, fmt.Sprintf("  mttr mean=%v p50=%v p95=%v max=%v\n",
				a.MTTRMean, a.MTTRP50, a.MTTRP95, a.MTTRMax)...)
		}
		if v, ok := t.MTTRVerdict(now); ok {
			b = append(b, "  "...)
			b = append(b, v.String()...)
			b = append(b, '\n')
		}
	}
	_, err := w.Write(b)
	return err
}
