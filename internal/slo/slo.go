// Package slo turns the raw observability stream into the paper's
// headline quantity: the vulnerability window. A Tracker maintains, in
// virtual time, the per-CVE × per-host exposure interval — opened at
// vulndb disclosure, closed when that host's kexec handoff commits — a
// fleet remediation timeline over those intervals, and per-VM downtime
// accounting, and evaluates burn rate against declared SLO targets of
// the form "quantile Q of hosts remediated within window W of
// disclosure".
//
// Everything is driven by explicit virtual timestamps and rendered
// deterministically (hosts and CVEs in first-seen order, which the
// callers keep deterministic), so SLO reports are byte-identical across
// -workers counts like every other exporter in the repo.
//
// A nil *Tracker is valid everywhere and free, mirroring the obs
// conventions: instrumented code needs no "is SLO tracking on"
// branches.
package slo

import (
	"fmt"
	"math"
	"sync"
	"time"

	"hypertp/internal/metrics"
	"hypertp/internal/obs"
)

// DefaultQuantile is the fleet-response quantile used when targets are
// declared from vulndb records: "99% of hosts remediated within the
// record's remediation window of disclosure".
const DefaultQuantile = 0.99

// Target declares one SLO: at least Quantile of exposed hosts must be
// remediated within Window of disclosure.
type Target struct {
	Quantile float64       // e.g. 0.99 for "99% of hosts"
	Window   time.Duration // virtual time budget from disclosure
}

func (t Target) String() string {
	return fmt.Sprintf("p%g within %v", t.Quantile*100, t.Window)
}

// exposure is one host's window against one CVE.
type exposure struct {
	opened time.Duration // virtual time the host was found affected
	closed time.Duration
	done   bool
}

// outage is one host's unplanned-outage interval: opened when the
// hypervisor crashes (or is declared dead), closed when emergency
// recovery resumes the last VM.
type outage struct {
	from   time.Duration
	to     time.Duration
	reason string
	done   bool
}

// cveState is the per-CVE timeline.
type cveState struct {
	disclosed time.Duration
	target    Target
	hasTarget bool
	hosts     map[string]*exposure
	hostOrder []string
}

// Tracker accumulates exposure intervals and VM downtime. Safe for
// concurrent use; all methods are no-ops on a nil Tracker.
type Tracker struct {
	mu       sync.Mutex
	cves     map[string]*cveState
	cveOrder []string
	vms      map[string]time.Duration
	vmOrder  []string

	outages     map[string][]*outage
	outageOrder []string
	mttrTarget  Target
	hasMTTR     bool

	reg *obs.Registry
}

// NewTracker creates an empty tracker.
func NewTracker() *Tracker {
	return &Tracker{
		cves:    make(map[string]*cveState),
		vms:     make(map[string]time.Duration),
		outages: make(map[string][]*outage),
	}
}

// SetRegistry mirrors tracker updates into obs metrics: exposure and
// remediation counters, an open-windows gauge, and remediation-latency
// and VM-downtime histograms — the feed ROADMAP item 1 asks for.
func (t *Tracker) SetRegistry(reg *obs.Registry) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.reg = reg
	t.mu.Unlock()
}

// latencyBuckets spans 1ms..~17min of virtual remediation latency.
var latencyBuckets = obs.ExpBuckets(1e6, 4, 10)

// cveLocked returns (creating if needed) the state for cve.
func (t *Tracker) cveLocked(cve string, at time.Duration) *cveState {
	cs, ok := t.cves[cve]
	if !ok {
		cs = &cveState{disclosed: at, hosts: make(map[string]*exposure)}
		t.cves[cve] = cs
		t.cveOrder = append(t.cveOrder, cve)
	}
	return cs
}

// Disclose marks cve disclosed at virtual time at — the instant every
// affected host's vulnerability window starts counting. Calling it
// again is a no-op (first disclosure wins).
func (t *Tracker) Disclose(cve string, at time.Duration) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.cveLocked(cve, at)
	t.mu.Unlock()
}

// SetTarget declares the SLO target for cve (implicitly disclosing it
// at `at` if Disclose was not called first).
func (t *Tracker) SetTarget(cve string, at time.Duration, target Target) {
	if t == nil {
		return
	}
	t.mu.Lock()
	cs := t.cveLocked(cve, at)
	cs.target = target
	cs.hasTarget = true
	t.mu.Unlock()
}

// Expose records that host was found running a hypervisor affected by
// cve at virtual time at, opening its exposure interval. An undisclosed
// CVE is implicitly disclosed at `at`. Re-exposing an open or closed
// interval is a no-op.
func (t *Tracker) Expose(cve, host string, at time.Duration) {
	if t == nil {
		return
	}
	t.mu.Lock()
	cs := t.cveLocked(cve, at)
	if _, ok := cs.hosts[host]; !ok {
		cs.hosts[host] = &exposure{opened: at}
		cs.hostOrder = append(cs.hostOrder, host)
		t.reg.Counter("slo.exposed", "hosts").Add(1)
		t.reg.Gauge("slo.open_windows", "hosts").Add(1)
	}
	t.mu.Unlock()
}

// Remediate closes host's exposure interval against cve at virtual time
// at — the kexec-commit instant in a transplant, or the migration
// completion when the host was drained instead. A host never exposed is
// recorded as exposed-and-remediated at `at` (zero-length interval);
// re-remediating is a no-op.
func (t *Tracker) Remediate(cve, host string, at time.Duration) {
	if t == nil {
		return
	}
	t.mu.Lock()
	cs := t.cveLocked(cve, at)
	e, ok := cs.hosts[host]
	if !ok {
		e = &exposure{opened: at}
		cs.hosts[host] = e
		cs.hostOrder = append(cs.hostOrder, host)
		t.reg.Counter("slo.exposed", "hosts").Add(1)
		t.reg.Gauge("slo.open_windows", "hosts").Add(1)
	}
	if !e.done {
		e.closed = at
		e.done = true
		t.reg.Counter("slo.remediated", "hosts").Add(1)
		t.reg.Gauge("slo.open_windows", "hosts").Add(-1)
		t.reg.Histogram("slo.remediation_latency", "ns", latencyBuckets).
			Observe(float64((at - cs.disclosed).Nanoseconds()))
	}
	t.mu.Unlock()
}

// AddVMDowntime accumulates observed downtime for one VM (blackout
// during kexec handoff or a migration stop-and-copy round).
func (t *Tracker) AddVMDowntime(vm string, d time.Duration) {
	if t == nil || d <= 0 {
		return
	}
	t.mu.Lock()
	if _, ok := t.vms[vm]; !ok {
		t.vmOrder = append(t.vmOrder, vm)
	}
	t.vms[vm] += d
	t.reg.Histogram("slo.vm_downtime", "ns", latencyBuckets).
		Observe(float64(d.Nanoseconds()))
	t.mu.Unlock()
}

// HostDown opens host's unplanned-outage interval at virtual time at —
// the instant the hypervisor actually failed, not when the detector
// noticed: the undetected window is outage time too. A host already down
// stays down (first failure wins).
func (t *Tracker) HostDown(host string, at time.Duration, reason string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	os := t.outages[host]
	if n := len(os); n > 0 && !os[n-1].done {
		t.mu.Unlock()
		return
	}
	if len(os) == 0 {
		t.outageOrder = append(t.outageOrder, host)
	}
	t.outages[host] = append(os, &outage{from: at, reason: reason})
	t.reg.Counter("slo.outages", "outages").Add(1)
	t.reg.Gauge("slo.hosts_down", "hosts").Add(1)
	t.mu.Unlock()
}

// HostUp closes host's open outage interval at virtual time at — the
// instant emergency recovery resumed the last VM. A host that was never
// down is a no-op.
func (t *Tracker) HostUp(host string, at time.Duration) {
	if t == nil {
		return
	}
	t.mu.Lock()
	os := t.outages[host]
	if n := len(os); n > 0 && !os[n-1].done {
		o := os[n-1]
		o.to = at
		o.done = true
		t.reg.Gauge("slo.hosts_down", "hosts").Add(-1)
		t.reg.Histogram("slo.mttr", "ns", latencyBuckets).
			Observe(float64((at - o.from).Nanoseconds()))
	}
	t.mu.Unlock()
}

// SetMTTRBudget declares the recovery SLO: at least Quantile of outages
// must recover within Window of the failure instant. Pass then evaluates
// it alongside the per-CVE targets.
func (t *Tracker) SetMTTRBudget(target Target) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.mttrTarget = target
	t.hasMTTR = true
	t.mu.Unlock()
}

// AvailabilitySummary aggregates the unplanned-outage timeline: the
// MTTR-and-availability counterpart of the CVE exposure windows.
type AvailabilitySummary struct {
	// Hosts is how many distinct hosts experienced at least one outage.
	Hosts int
	// Outages and Open count intervals (Open = hosts still down).
	Outages, Open int
	// Total is the summed outage time; still-open intervals are charged
	// up to the evaluation instant.
	Total time.Duration
	// MTTR percentiles over closed (recovered) outages.
	MTTRMean, MTTRP50, MTTRP95, MTTRMax time.Duration
	// WorstHost suffered the longest single outage (open or closed).
	WorstHost string
}

// Ratio converts the summary into fleet availability over a horizon:
// 1 − total outage time / (fleetHosts × horizon). Degenerate inputs
// report 1 (no evidence of unavailability).
func (s AvailabilitySummary) Ratio(fleetHosts int, horizon time.Duration) float64 {
	if fleetHosts <= 0 || horizon <= 0 {
		return 1
	}
	r := 1 - float64(s.Total)/(float64(fleetHosts)*float64(horizon))
	if r < 0 {
		return 0
	}
	return r
}

// Availability evaluates the outage timeline at virtual time now.
func (t *Tracker) Availability(now time.Duration) AvailabilitySummary {
	if t == nil {
		return AvailabilitySummary{}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	s := AvailabilitySummary{Hosts: len(t.outages)}
	var mttrs []float64
	var worst time.Duration
	for _, host := range t.outageOrder {
		for _, o := range t.outages[host] {
			s.Outages++
			d := o.to - o.from
			if !o.done {
				s.Open++
				d = now - o.from
			} else {
				mttrs = append(mttrs, float64(d))
			}
			s.Total += d
			if d >= worst && d > 0 {
				worst, s.WorstHost = d, host
			}
		}
	}
	if len(mttrs) > 0 {
		s.MTTRMean = time.Duration(metrics.Mean(mttrs))
		s.MTTRP50 = time.Duration(metrics.Percentile(mttrs, 50))
		s.MTTRP95 = time.Duration(metrics.Percentile(mttrs, 95))
		s.MTTRMax = time.Duration(metrics.Percentile(mttrs, 100))
	}
	return s
}

// MTTRVerdict evaluates the declared recovery budget at virtual time
// now: an outage violates when it recovered later than Window after the
// failure, or is still open with the budget spent. Without a declared
// budget the verdict passes vacuously with zero hosts.
func (t *Tracker) MTTRVerdict(now time.Duration) (Verdict, bool) {
	if t == nil {
		return Verdict{CVE: "mttr", Pass: true}, false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.hasMTTR {
		return Verdict{CVE: "mttr", Pass: true}, false
	}
	v := Verdict{CVE: "mttr", Target: t.mttrTarget}
	for _, host := range t.outageOrder {
		for _, o := range t.outages[host] {
			v.Hosts++
			deadline := o.from + t.mttrTarget.Window
			if o.done {
				if o.to > deadline {
					v.Violations++
				}
			} else if now > deadline {
				v.Violations++
			}
		}
	}
	allowed := 1 - t.mttrTarget.Quantile
	frac := 0.0
	if v.Hosts > 0 {
		frac = float64(v.Violations) / float64(v.Hosts)
	}
	switch {
	case allowed > 0:
		v.BurnRate = frac / allowed
	case v.Violations == 0:
		v.BurnRate = 0
	default:
		v.BurnRate = math.Inf(1)
	}
	v.Pass = v.BurnRate <= 1
	return v, true
}

// CVEs returns the tracked CVE ids in first-seen order.
func (t *Tracker) CVEs() []string {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]string(nil), t.cveOrder...)
}

// Verdict is the burn-rate evaluation of one CVE's timeline against a
// target.
type Verdict struct {
	CVE    string
	Target Target
	// Hosts is the number of exposure intervals (open or closed).
	Hosts int
	// Violations counts hosts out of budget: closed later than Window
	// after disclosure, or still open with the budget already spent.
	Violations int
	// BurnRate is the violating fraction divided by the allowed
	// fraction (1 − Quantile): 1.0 means the error budget is exactly
	// spent, above 1.0 the SLO is burned through.
	BurnRate float64
	Pass     bool
}

func (v Verdict) String() string {
	state := "PASS"
	if !v.Pass {
		state = "FAIL"
	}
	return fmt.Sprintf("target %v: violations=%d/%d burn=%.3f %s",
		v.Target, v.Violations, v.Hosts, v.BurnRate, state)
}

// WindowReport is the fleet remediation timeline of one CVE.
type WindowReport struct {
	CVE        string
	Disclosed  time.Duration
	Exposed    int
	Remediated int
	Open       int
	// P50/P95/Max summarize remediation latency vs disclosure over
	// closed intervals.
	P50, P95, Max time.Duration
	// Verdict is evaluated against the declared target, or the zero
	// Verdict (Pass, 0 hosts) when no target was declared.
	Verdict   Verdict
	HasTarget bool
	// WorstHost is the last-remediated host (the one that closed the
	// fleet's vulnerability window).
	WorstHost string
}

// DowntimeSummary aggregates the per-VM downtime accounting.
type DowntimeSummary struct {
	VMs           int
	Total         time.Duration
	P50, P95, Max time.Duration
	// WorstVM is the VM with the largest accumulated downtime.
	WorstVM string
}

// Downtime returns the fleet VM-downtime summary.
func (t *Tracker) Downtime() DowntimeSummary {
	if t == nil {
		return DowntimeSummary{}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	d := DowntimeSummary{VMs: len(t.vms)}
	var vs []float64
	for _, vm := range t.vmOrder {
		dt := t.vms[vm]
		d.Total += dt
		vs = append(vs, float64(dt))
		if dt > d.Max {
			d.Max, d.WorstVM = dt, vm
		}
	}
	d.P50 = time.Duration(metrics.Percentile(vs, 50))
	d.P95 = time.Duration(metrics.Percentile(vs, 95))
	return d
}

// evaluateLocked computes the verdict for cs at virtual time now.
func evaluateLocked(cve string, cs *cveState, target Target, now time.Duration) Verdict {
	v := Verdict{CVE: cve, Target: target, Hosts: len(cs.hosts)}
	deadline := cs.disclosed + target.Window
	for _, e := range cs.hosts {
		if e.done {
			if e.closed > deadline {
				v.Violations++
			}
		} else if now > deadline {
			v.Violations++
		}
	}
	allowed := 1 - target.Quantile
	frac := 0.0
	if v.Hosts > 0 {
		frac = float64(v.Violations) / float64(v.Hosts)
	}
	switch {
	case allowed > 0:
		v.BurnRate = frac / allowed
	case v.Violations == 0:
		v.BurnRate = 0
	default:
		v.BurnRate = math.Inf(1)
	}
	v.Pass = v.BurnRate <= 1
	return v
}

// Report returns one WindowReport per tracked CVE (first-seen order),
// evaluated at virtual time now.
func (t *Tracker) Report(now time.Duration) []WindowReport {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	var out []WindowReport
	for _, cve := range t.cveOrder {
		cs := t.cves[cve]
		r := WindowReport{CVE: cve, Disclosed: cs.disclosed, Exposed: len(cs.hosts)}
		var lats []float64
		var worst time.Duration
		for _, host := range cs.hostOrder {
			e := cs.hosts[host]
			if !e.done {
				r.Open++
				continue
			}
			r.Remediated++
			lat := e.closed - cs.disclosed
			lats = append(lats, float64(lat))
			if lat >= worst {
				worst, r.WorstHost = lat, host
			}
		}
		r.P50 = time.Duration(metrics.Percentile(lats, 50))
		r.P95 = time.Duration(metrics.Percentile(lats, 95))
		r.Max = time.Duration(metrics.Percentile(lats, 100))
		if cs.hasTarget {
			r.HasTarget = true
			r.Verdict = evaluateLocked(cve, cs, cs.target, now)
		}
		out = append(out, r)
	}
	return out
}

// Evaluate returns cve's verdict against target at virtual time now,
// ignoring any declared target.
func (t *Tracker) Evaluate(cve string, target Target, now time.Duration) Verdict {
	if t == nil {
		return Verdict{CVE: cve, Target: target, Pass: true}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	cs, ok := t.cves[cve]
	if !ok {
		return Verdict{CVE: cve, Target: target, Pass: true}
	}
	return evaluateLocked(cve, cs, target, now)
}

// Pass reports whether every CVE with a declared target — and the MTTR
// budget, when declared — passes at virtual time now. A tracker with no
// targets passes vacuously.
func (t *Tracker) Pass(now time.Duration) bool {
	for _, r := range t.Report(now) {
		if r.HasTarget && !r.Verdict.Pass {
			return false
		}
	}
	if v, ok := t.MTTRVerdict(now); ok && !v.Pass {
		return false
	}
	return true
}
