package slo

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"hypertp/internal/obs"
)

func TestTrackerWindowReport(t *testing.T) {
	tr := NewTracker()
	tr.Disclose("CVE-A", 0)
	tr.SetTarget("CVE-A", 0, Target{Quantile: 0.99, Window: 10 * time.Second})
	tr.Expose("CVE-A", "host-00", 0)
	tr.Expose("CVE-A", "host-01", 0)
	tr.Expose("CVE-A", "host-02", 0)
	tr.Remediate("CVE-A", "host-00", 2*time.Second)
	tr.Remediate("CVE-A", "host-01", 4*time.Second)
	tr.Remediate("CVE-A", "host-02", 8*time.Second)

	reports := tr.Report(8 * time.Second)
	if len(reports) != 1 {
		t.Fatalf("got %d reports, want 1", len(reports))
	}
	r := reports[0]
	if r.Exposed != 3 || r.Remediated != 3 || r.Open != 0 {
		t.Fatalf("counts: %+v", r)
	}
	if r.P50 != 4*time.Second || r.Max != 8*time.Second {
		t.Fatalf("latency digest: p50=%v max=%v", r.P50, r.Max)
	}
	if r.WorstHost != "host-02" {
		t.Fatalf("worst host = %q", r.WorstHost)
	}
	if !r.HasTarget || !r.Verdict.Pass || r.Verdict.Violations != 0 {
		t.Fatalf("verdict: %+v", r.Verdict)
	}
	if !tr.Pass(8 * time.Second) {
		t.Fatal("tracker should pass")
	}
}

func TestTrackerOpenWindowViolation(t *testing.T) {
	tr := NewTracker()
	tr.SetTarget("CVE-B", 0, Target{Quantile: 1.0, Window: 5 * time.Second})
	tr.Expose("CVE-B", "host-00", 0)
	// Within budget and still open: not yet a violation.
	if v := tr.Evaluate("CVE-B", Target{Quantile: 1.0, Window: 5 * time.Second}, 3*time.Second); !v.Pass {
		t.Fatalf("open window inside budget failed: %+v", v)
	}
	// Budget spent, still open: violation; quantile 1.0 burns infinitely.
	v := tr.Evaluate("CVE-B", Target{Quantile: 1.0, Window: 5 * time.Second}, 6*time.Second)
	if v.Pass || v.Violations != 1 {
		t.Fatalf("overdue open window passed: %+v", v)
	}
	if tr.Pass(6 * time.Second) {
		t.Fatal("tracker should fail with overdue open window")
	}
	// Late remediation stays a violation forever.
	tr.Remediate("CVE-B", "host-00", 7*time.Second)
	if v := tr.Evaluate("CVE-B", Target{Quantile: 1.0, Window: 5 * time.Second}, 100*time.Second); v.Pass {
		t.Fatalf("late close forgot the violation: %+v", v)
	}
}

func TestBurnRate(t *testing.T) {
	tr := NewTracker()
	tr.Disclose("CVE-C", 0)
	for i, at := range []time.Duration{time.Second, 2 * time.Second, 3 * time.Second, 20 * time.Second} {
		host := string(rune('a' + i))
		tr.Expose("CVE-C", host, 0)
		tr.Remediate("CVE-C", host, at)
	}
	// 1 of 4 hosts beyond 10s. Allowed fraction at q=0.75 is 0.25:
	// burn rate exactly 1.0, which still passes.
	v := tr.Evaluate("CVE-C", Target{Quantile: 0.75, Window: 10 * time.Second}, 20*time.Second)
	if v.Violations != 1 || v.BurnRate != 1.0 || !v.Pass {
		t.Fatalf("burn at budget edge: %+v", v)
	}
	// q=0.9 allows 0.1: burn 2.5, fail.
	v = tr.Evaluate("CVE-C", Target{Quantile: 0.9, Window: 10 * time.Second}, 20*time.Second)
	if v.Pass || v.BurnRate < 2.49 || v.BurnRate > 2.51 {
		t.Fatalf("burn over budget: %+v", v)
	}
}

func TestNilTracker(t *testing.T) {
	var tr *Tracker
	tr.Disclose("x", 0)
	tr.Expose("x", "h", 0)
	tr.Remediate("x", "h", 0)
	tr.AddVMDowntime("vm", time.Second)
	tr.SetRegistry(nil)
	if !tr.Pass(0) || tr.Report(0) != nil || len(tr.CVEs()) != 0 {
		t.Fatal("nil tracker must be inert and passing")
	}
	if d := tr.Downtime(); d.VMs != 0 {
		t.Fatalf("nil downtime = %+v", d)
	}
}

func TestDowntimeAccounting(t *testing.T) {
	tr := NewTracker()
	tr.AddVMDowntime("vm-1", 30*time.Millisecond)
	tr.AddVMDowntime("vm-2", 50*time.Millisecond)
	tr.AddVMDowntime("vm-1", 20*time.Millisecond) // accumulates
	tr.AddVMDowntime("vm-3", 0)                   // ignored
	d := tr.Downtime()
	if d.VMs != 2 || d.Total != 100*time.Millisecond {
		t.Fatalf("downtime = %+v", d)
	}
	if d.Max != 50*time.Millisecond || d.WorstVM != "vm-1" && d.WorstVM != "vm-2" {
		t.Fatalf("max = %v worst = %q", d.Max, d.WorstVM)
	}
	if d.WorstVM != "vm-1" {
		t.Fatalf("worst VM = %q, want vm-1 (50ms accumulated)", d.WorstVM)
	}
}

func TestRegistryMirror(t *testing.T) {
	reg := obs.NewRegistry()
	tr := NewTracker()
	tr.SetRegistry(reg)
	tr.Disclose("CVE-D", 0)
	tr.Expose("CVE-D", "h1", 0)
	tr.Expose("CVE-D", "h2", 0)
	tr.Remediate("CVE-D", "h1", time.Second)
	tr.AddVMDowntime("vm", 5*time.Millisecond)

	if got := reg.Counter("slo.exposed", "hosts").Value(); got != 2 {
		t.Fatalf("exposed counter = %d", got)
	}
	if got := reg.Counter("slo.remediated", "hosts").Value(); got != 1 {
		t.Fatalf("remediated counter = %d", got)
	}
	if got := reg.Gauge("slo.open_windows", "hosts").Value(); got != 1 {
		t.Fatalf("open windows gauge = %d", got)
	}
	if got := reg.Histogram("slo.remediation_latency", "ns", nil).Count(); got != 1 {
		t.Fatalf("latency histogram count = %d", got)
	}
	if got := reg.Histogram("slo.vm_downtime", "ns", nil).Count(); got != 1 {
		t.Fatalf("downtime histogram count = %d", got)
	}
}

func TestWriteReportDeterministic(t *testing.T) {
	build := func() *Tracker {
		tr := NewTracker()
		tr.SetTarget("CVE-E", 0, Target{Quantile: 0.99, Window: 30 * time.Minute})
		for _, h := range []string{"host-00", "host-01"} {
			tr.Expose("CVE-E", h, 0)
		}
		tr.Remediate("CVE-E", "host-00", 90*time.Second)
		tr.Remediate("CVE-E", "host-01", 2*time.Minute)
		tr.AddVMDowntime("vm-0", 12*time.Millisecond)
		return tr
	}
	var b1, b2 bytes.Buffer
	if err := build().WriteReport(&b1, 5*time.Minute); err != nil {
		t.Fatalf("WriteReport: %v", err)
	}
	if err := build().WriteReport(&b2, 5*time.Minute); err != nil {
		t.Fatalf("WriteReport: %v", err)
	}
	if b1.String() != b2.String() {
		t.Fatalf("reports differ:\n%s\n---\n%s", b1.String(), b2.String())
	}
	out := b1.String()
	for _, want := range []string{
		"CVE-E: disclosed 0s  exposed=2 remediated=2 open=0",
		"remediation latency p50=",
		"window closed by host-01",
		"target p99 within 30m0s",
		"PASS",
		"vm downtime: vms=1",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}
	// Empty tracker renders a stable placeholder.
	var empty bytes.Buffer
	if err := NewTracker().WriteReport(&empty, 0); err != nil {
		t.Fatalf("WriteReport empty: %v", err)
	}
	if !strings.Contains(empty.String(), "no tracked CVEs") {
		t.Fatalf("empty report = %q", empty.String())
	}
}

func TestOutageTimelineAndMTTR(t *testing.T) {
	tr := NewTracker()
	// host-a: crash at 10s, recovered at 14s (MTTR 4s).
	tr.HostDown("host-a", 10*time.Second, "panic")
	tr.HostDown("host-a", 11*time.Second, "ignored: already down")
	tr.HostUp("host-a", 14*time.Second)
	// host-b: crash at 20s, still down at evaluation.
	tr.HostDown("host-b", 20*time.Second, "hang")
	// host-a crashes again: second interval, 30s → 31s.
	tr.HostDown("host-a", 30*time.Second, "panic")
	tr.HostUp("host-a", 31*time.Second)
	// Up without down is a no-op.
	tr.HostUp("host-c", 40*time.Second)

	now := 50 * time.Second
	a := tr.Availability(now)
	if a.Hosts != 2 || a.Outages != 3 || a.Open != 1 {
		t.Fatalf("summary = %+v", a)
	}
	// 4s + 1s closed, plus host-b open 20s→50s = 30s.
	if a.Total != 35*time.Second {
		t.Fatalf("total outage = %v", a.Total)
	}
	if a.MTTRMax != 4*time.Second || a.WorstHost != "host-b" {
		t.Fatalf("mttr max = %v worst = %s", a.MTTRMax, a.WorstHost)
	}
	// 4 hosts × 50s horizon, 35s down → 82.5% available.
	if r := a.Ratio(4, now); r < 0.82 || r > 0.83 {
		t.Fatalf("availability ratio = %v", r)
	}

	// MTTR budget: all outages within 10s passes even with host-b still
	// open at 30s... which violates. Allow 50%.
	tr.SetMTTRBudget(Target{Quantile: 0.5, Window: 10 * time.Second})
	v, ok := tr.MTTRVerdict(now)
	if !ok || v.Hosts != 3 || v.Violations != 1 || !v.Pass {
		t.Fatalf("verdict = %+v ok=%v", v, ok)
	}
	if !tr.Pass(now) {
		t.Fatal("tracker should pass with budget met")
	}
	tr.SetMTTRBudget(Target{Quantile: 1, Window: 10 * time.Second})
	if tr.Pass(now) {
		t.Fatal("tracker should fail a 100% budget with an open outage")
	}

	// The report gains an availability section, deterministically.
	var b1, b2 bytes.Buffer
	if err := tr.WriteReport(&b1, now); err != nil {
		t.Fatal(err)
	}
	if err := tr.WriteReport(&b2, now); err != nil {
		t.Fatal(err)
	}
	if b1.String() != b2.String() {
		t.Fatal("availability report not deterministic")
	}
	for _, want := range []string{
		"availability: hosts=2 outages=3 open=1 downtime=35s (worst host-b)",
		"mttr mean=2.5s p50=2.5s p95=3.85s max=4s",
		"FAIL",
	} {
		if !strings.Contains(b1.String(), want) {
			t.Fatalf("report missing %q:\n%s", want, b1.String())
		}
	}

	// Nil tracker: every outage call is a free no-op.
	var nilT *Tracker
	nilT.HostDown("x", 0, "r")
	nilT.HostUp("x", 0)
	nilT.SetMTTRBudget(Target{})
	if s := nilT.Availability(0); s.Outages != 0 {
		t.Fatal("nil tracker tracked an outage")
	}
}
