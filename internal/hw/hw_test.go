package hw

import (
	"bytes"
	"testing"
	"testing/quick"
	"time"

	"hypertp/internal/simtime"
)

func newTestMem() *PhysMem { return NewPhysMem(64 * 1024 * 1024) } // 64 MiB

func TestAllocBasics(t *testing.T) {
	pm := newTestMem()
	mfns, err := pm.Alloc(10, OwnerGuest, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(mfns) != 10 {
		t.Fatalf("got %d frames, want 10", len(mfns))
	}
	if pm.AllocatedFrames() != 10 {
		t.Fatalf("AllocatedFrames = %d, want 10", pm.AllocatedFrames())
	}
	seen := map[MFN]bool{}
	for _, m := range mfns {
		if seen[m] {
			t.Fatalf("duplicate MFN %d", m)
		}
		seen[m] = true
		owner, vm := pm.OwnerOf(m)
		if owner != OwnerGuest || vm != 1 {
			t.Fatalf("frame %d owner = %v/%d, want guest/1", m, owner, vm)
		}
	}
}

func TestAllocExhaustion(t *testing.T) {
	pm := NewPhysMem(8 * PageSize4K)
	if _, err := pm.Alloc(8, OwnerHV, -1); err != nil {
		t.Fatal(err)
	}
	if _, err := pm.Alloc(1, OwnerHV, -1); err == nil {
		t.Fatal("allocating past capacity succeeded")
	}
}

func TestAllocFreeReuse(t *testing.T) {
	pm := NewPhysMem(4 * PageSize4K)
	mfns, err := pm.Alloc(4, OwnerHV, -1)
	if err != nil {
		t.Fatal(err)
	}
	if err := pm.Free(mfns[2]); err != nil {
		t.Fatal(err)
	}
	again, err := pm.Alloc(1, OwnerGuest, 7)
	if err != nil {
		t.Fatal(err)
	}
	if again[0] != mfns[2] {
		t.Fatalf("reallocation got frame %d, want recycled %d", again[0], mfns[2])
	}
}

func TestDoubleFree(t *testing.T) {
	pm := newTestMem()
	mfns, _ := pm.Alloc(1, OwnerHV, -1)
	if err := pm.Free(mfns[0]); err != nil {
		t.Fatal(err)
	}
	if err := pm.Free(mfns[0]); err == nil {
		t.Fatal("double free succeeded")
	}
}

func TestAllocFreeOwnerZero(t *testing.T) {
	pm := newTestMem()
	if _, err := pm.Alloc(1, OwnerFree, -1); err == nil {
		t.Fatal("Alloc with OwnerFree succeeded")
	}
	if _, err := pm.Alloc2M(OwnerFree, -1); err == nil {
		t.Fatal("Alloc2M with OwnerFree succeeded")
	}
}

func TestAlloc2MAlignmentAndContiguity(t *testing.T) {
	pm := NewPhysMem(16 * PageSize2M)
	// Fragment the start a little.
	if _, err := pm.Alloc(3, OwnerHV, -1); err != nil {
		t.Fatal(err)
	}
	base, err := pm.Alloc2M(OwnerGuest, 2)
	if err != nil {
		t.Fatal(err)
	}
	if uint64(base)%FramesPer2M != 0 {
		t.Fatalf("2M base %d not aligned", base)
	}
	for i := MFN(0); i < FramesPer2M; i++ {
		owner, vm := pm.OwnerOf(base + i)
		if owner != OwnerGuest || vm != 2 {
			t.Fatalf("frame %d of huge page owner = %v/%d", base+i, owner, vm)
		}
	}
}

func TestAlloc2MFragmentation(t *testing.T) {
	pm := NewPhysMem(2 * PageSize2M)
	// Poison one frame in each aligned 2M run.
	taken, _ := pm.Alloc(1, OwnerHV, -1)
	_ = taken
	pm.next = MFN(FramesPer2M) // move cursor; poison second run too
	if _, err := pm.Alloc(1, OwnerHV, -1); err != nil {
		t.Fatal(err)
	}
	if _, err := pm.Alloc2M(OwnerGuest, 1); err == nil {
		t.Fatal("Alloc2M succeeded despite fragmentation of every run")
	}
}

func TestReadWrite(t *testing.T) {
	pm := newTestMem()
	mfns, _ := pm.Alloc(1, OwnerGuest, 1)
	m := mfns[0]
	payload := []byte("hypervisor transplant")
	if err := pm.Write(m, 100, payload); err != nil {
		t.Fatal(err)
	}
	got, err := pm.Read(m, 100, len(payload))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("read back %q, want %q", got, payload)
	}
	// Untouched region reads as zeros.
	zeros, err := pm.Read(m, 0, 50)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range zeros {
		if b != 0 {
			t.Fatal("untouched bytes are not zero")
		}
	}
}

func TestReadWriteBounds(t *testing.T) {
	pm := newTestMem()
	mfns, _ := pm.Alloc(1, OwnerGuest, 1)
	if err := pm.Write(mfns[0], PageSize4K-1, []byte{1, 2}); err == nil {
		t.Fatal("write past frame end succeeded")
	}
	if err := pm.Write(mfns[0], -1, []byte{1}); err == nil {
		t.Fatal("write at negative offset succeeded")
	}
	if _, err := pm.Read(mfns[0], PageSize4K, 1); err == nil {
		t.Fatal("read past frame end succeeded")
	}
}

func TestReadWriteUnallocated(t *testing.T) {
	pm := newTestMem()
	if err := pm.Write(5, 0, []byte{1}); err == nil {
		t.Fatal("write to unallocated frame succeeded")
	}
	if _, err := pm.Read(5, 0, 1); err == nil {
		t.Fatal("read from unallocated frame succeeded")
	}
	if _, err := pm.Checksum(5); err == nil {
		t.Fatal("checksum of unallocated frame succeeded")
	}
}

func TestChecksum(t *testing.T) {
	pm := newTestMem()
	mfns, _ := pm.Alloc(2, OwnerGuest, 1)
	a, b := mfns[0], mfns[1]
	ca0, _ := pm.Checksum(a)
	cb0, _ := pm.Checksum(b)
	if ca0 != cb0 {
		t.Fatal("two untouched frames have different checksums")
	}
	pm.Write(a, 0, []byte{0xde, 0xad})
	ca1, _ := pm.Checksum(a)
	if ca1 == ca0 {
		t.Fatal("checksum unchanged after write")
	}
	pm.Write(b, 0, []byte{0xde, 0xad})
	cb1, _ := pm.Checksum(b)
	if ca1 != cb1 {
		t.Fatal("same content, different checksum")
	}
}

func TestSetOwner(t *testing.T) {
	pm := newTestMem()
	mfns, _ := pm.Alloc(1, OwnerVMState, 3)
	if err := pm.SetOwner(mfns[0], OwnerGuest, 4); err != nil {
		t.Fatal(err)
	}
	owner, vm := pm.OwnerOf(mfns[0])
	if owner != OwnerGuest || vm != 4 {
		t.Fatalf("owner = %v/%d after SetOwner", owner, vm)
	}
	if err := pm.SetOwner(999, OwnerGuest, 0); err == nil {
		t.Fatal("SetOwner on unallocated frame succeeded")
	}
}

func TestWipePreservesKeepSet(t *testing.T) {
	pm := newTestMem()
	guest, _ := pm.Alloc(5, OwnerGuest, 1)
	hv, _ := pm.Alloc(5, OwnerHV, -1)
	pm.Write(guest[0], 0, []byte("survive"))
	pm.Write(hv[0], 0, []byte("perish"))
	keep := map[MFN]bool{}
	for _, m := range guest {
		keep[m] = true
	}
	wiped := pm.Wipe(keep)
	if wiped != 5 {
		t.Fatalf("wiped %d frames, want 5", wiped)
	}
	got, err := pm.Read(guest[0], 0, 7)
	if err != nil || string(got) != "survive" {
		t.Fatalf("guest frame lost: %q, %v", got, err)
	}
	if _, err := pm.Read(hv[0], 0, 1); err == nil {
		t.Fatal("HV frame survived the wipe")
	}
}

func TestCountByOwner(t *testing.T) {
	pm := newTestMem()
	pm.Alloc(3, OwnerGuest, 1)
	pm.Alloc(2, OwnerVMState, 1)
	pm.Alloc(4, OwnerHV, -1)
	counts := pm.CountByOwner()
	if counts[OwnerGuest] != 3 || counts[OwnerVMState] != 2 || counts[OwnerHV] != 4 {
		t.Fatalf("counts = %v", counts)
	}
}

func TestFramesByOwnerSorted(t *testing.T) {
	pm := newTestMem()
	pm.Alloc(10, OwnerGuest, 1)
	frames := pm.FramesByOwner(OwnerGuest)
	if len(frames) != 10 {
		t.Fatalf("len = %d", len(frames))
	}
	for i := 1; i < len(frames); i++ {
		if frames[i] <= frames[i-1] {
			t.Fatal("FramesByOwner not sorted")
		}
	}
}

func TestOwnerString(t *testing.T) {
	cases := map[Owner]string{
		OwnerFree: "free", OwnerGuest: "guest", OwnerVMState: "vmstate",
		OwnerVMMgmt: "vmmgmt", OwnerHV: "hv", OwnerPRAM: "pram",
		OwnerKexecImage: "kexec-image",
	}
	for o, want := range cases {
		if o.String() != want {
			t.Fatalf("Owner(%d).String() = %q, want %q", o, o.String(), want)
		}
	}
	if Owner(200).String() != "owner(200)" {
		t.Fatalf("unknown owner string = %q", Owner(200).String())
	}
}

// Property: alloc/free keeps the allocated counter consistent with the map.
func TestPropertyAllocFreeAccounting(t *testing.T) {
	f := func(ops []uint8) bool {
		pm := NewPhysMem(256 * PageSize4K)
		var live []MFN
		for _, op := range ops {
			if op%2 == 0 || len(live) == 0 {
				n := int(op%7) + 1
				mfns, err := pm.Alloc(n, OwnerGuest, 1)
				if err != nil {
					continue
				}
				live = append(live, mfns...)
			} else {
				m := live[int(op)%len(live)]
				live = remove(live, m)
				if err := pm.Free(m); err != nil {
					return false
				}
			}
		}
		return pm.AllocatedFrames() == uint64(len(live))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func remove(s []MFN, m MFN) []MFN {
	for i, v := range s {
		if v == m {
			s[i] = s[len(s)-1]
			return s[:len(s)-1]
		}
	}
	return s
}

func TestProfiles(t *testing.T) {
	m1, m2, cn := M1(), M2(), ClusterNode()
	if m1.Workers() != 6 {
		t.Fatalf("M1 workers = %d, want 6 (8 threads - 2 reserved)", m1.Workers())
	}
	if m2.Workers() != 54 {
		t.Fatalf("M2 workers = %d, want 54", m2.Workers())
	}
	if m1.RAMBytes != 16*GiB || m2.RAMBytes != 64*GiB || cn.RAMBytes != 96*GiB {
		t.Fatal("profile RAM sizes wrong")
	}
	if cn.NetRate != 10_000_000_000/8 {
		t.Fatalf("cluster node net rate = %d", cn.NetRate)
	}
	// The Xen boot path must be several times the Linux/KVM path — this
	// asymmetry is what produces Fig. 10.
	if m1.Cost.BootXenDom0 < 3*m1.Cost.BootLinuxKVM {
		t.Fatal("M1 Xen boot not slower than 3x KVM boot")
	}
}

func TestWorkersFloor(t *testing.T) {
	p := &Profile{Threads: 1, ReservedCPUs: 2}
	if p.Workers() != 1 {
		t.Fatalf("Workers() = %d, want floor of 1", p.Workers())
	}
}

func TestMachineReboot(t *testing.T) {
	clock := simtime.NewClock()
	m := NewMachine(clock, M1())
	guest, _ := m.Mem.Alloc(4, OwnerGuest, 1)
	m.Mem.Alloc(4, OwnerHV, -1)
	m.Mem.Write(guest[0], 0, []byte("vm data"))
	var keep []FrameRange
	for _, f := range guest {
		keep = append(keep, FrameRange{Start: f, Count: 1})
	}
	clock.Advance(5 * time.Second)
	wiped := m.MicroReboot("pram=0x1000", keep)
	if wiped != 4 {
		t.Fatalf("wiped = %d, want 4", wiped)
	}
	if m.Generation() != 1 {
		t.Fatalf("generation = %d, want 1", m.Generation())
	}
	if m.Cmdline != "pram=0x1000" {
		t.Fatalf("cmdline = %q", m.Cmdline)
	}
	if m.BootedAt() != 5*time.Second {
		t.Fatalf("BootedAt = %v", m.BootedAt())
	}
	got, err := m.Mem.Read(guest[0], 0, 7)
	if err != nil || string(got) != "vm data" {
		t.Fatalf("guest data lost across reboot: %q, %v", got, err)
	}
}

func TestParallelElapsed(t *testing.T) {
	clock := simtime.NewClock()
	m1 := NewMachine(clock, M1()) // 6 workers
	per := 450 * time.Millisecond
	if got := m1.ParallelElapsed(1, per); got != per {
		t.Fatalf("1 item: %v, want %v", got, per)
	}
	if got := m1.ParallelElapsed(6, per); got != per {
		t.Fatalf("6 items on 6 workers: %v, want %v", got, per)
	}
	if got := m1.ParallelElapsed(7, per); got != 2*per {
		t.Fatalf("7 items on 6 workers: %v, want %v", got, 2*per)
	}
	if got := m1.ParallelElapsed(0, per); got != 0 {
		t.Fatalf("0 items: %v, want 0", got)
	}
	m2 := NewMachine(clock, M2()) // 54 workers: 12 VMs still 1 round
	if got := m2.ParallelElapsed(12, per); got != per {
		t.Fatalf("M2 12 items: %v, want %v (flat scaling)", got, per)
	}
}

func TestParallelElapsedVaried(t *testing.T) {
	clock := simtime.NewClock()
	m := NewMachine(clock, M1())
	if got := m.ParallelElapsedVaried(nil); got != 0 {
		t.Fatalf("empty: %v", got)
	}
	costs := []time.Duration{100, 200, 300, 400, 500, 600, 700}
	got := m.ParallelElapsedVaried(costs)
	// 7 items over 6 workers; LPT assigns greedily; max load must be at
	// least the largest item and at most largest+smallest.
	if got < 700 || got > 800 {
		t.Fatalf("varied elapsed = %v, want in [700, 800]", got)
	}
	// Single worker sums everything.
	single := &Profile{Threads: 3, ReservedCPUs: 2}
	ms := NewMachine(clock, single)
	if got := ms.ParallelElapsedVaried(costs); got != 2800 {
		t.Fatalf("single worker = %v, want 2800", got)
	}
}

func TestMachineString(t *testing.T) {
	m := NewMachine(simtime.NewClock(), M1())
	if m.String() == "" {
		t.Fatal("empty String()")
	}
}

func TestMFNAddr(t *testing.T) {
	if MFN(3).Addr() != 3*PageSize4K {
		t.Fatalf("Addr = %d", MFN(3).Addr())
	}
}

// TestParallelElapsedVariedMatchesReference cross-checks the min-heap
// scheduler against a naive least-loaded linear scan: ties may break to
// different workers, but the resulting maximum load must be identical.
func TestParallelElapsedVariedMatchesReference(t *testing.T) {
	clock := simtime.NewClock()
	ref := func(costs []time.Duration, workers int) time.Duration {
		if len(costs) == 0 {
			return 0
		}
		loads := make([]time.Duration, workers)
		for _, c := range costs {
			min := 0
			for w := 1; w < workers; w++ {
				if loads[w] < loads[min] {
					min = w
				}
			}
			loads[min] += c
		}
		var max time.Duration
		for _, l := range loads {
			if l > max {
				max = l
			}
		}
		return max
	}
	rng := uint64(1)
	next := func(mod int) int {
		rng = rng*6364136223846793005 + 1442695040888963407
		return int(rng>>33) % mod
	}
	for _, p := range []*Profile{M1(), M2(), {Threads: 5, ReservedCPUs: 2}} {
		m := NewMachine(clock, p)
		for trial := 0; trial < 50; trial++ {
			costs := make([]time.Duration, 1+next(200))
			for i := range costs {
				costs[i] = time.Duration(1 + next(10000))
			}
			got := m.ParallelElapsedVaried(costs)
			want := ref(costs, p.Workers())
			if got != want {
				t.Fatalf("%s trial %d (%d items, %d workers): heap %v, reference %v",
					p.Name, trial, len(costs), p.Workers(), got, want)
			}
		}
	}
}

func TestClaimRange(t *testing.T) {
	pm := NewPhysMem(4 * PageSize2M) // 4 chunks
	// Claim spanning a partial first chunk, a whole middle chunk, and a
	// partial third — exercises summary-granularity and exploded paths.
	start, count := MFN(100), uint64(2*FramesPer2M)
	if err := pm.ClaimRange(start, count, OwnerPRAM, -1); err != nil {
		t.Fatal(err)
	}
	if pm.AllocatedFrames() != count {
		t.Fatalf("AllocatedFrames = %d, want %d", pm.AllocatedFrames(), count)
	}
	for _, m := range []MFN{start, start + MFN(count) - 1, MFN(FramesPer2M)} {
		if owner, _ := pm.OwnerOf(m); owner != OwnerPRAM {
			t.Fatalf("frame %#x owner = %v, want pram", m, owner)
		}
	}
	if owner, _ := pm.OwnerOf(start - 1); owner != OwnerFree {
		t.Fatalf("frame before claim not free")
	}
	if owner, _ := pm.OwnerOf(start + MFN(count)); owner != OwnerFree {
		t.Fatalf("frame after claim not free")
	}
	// Overlapping claim must fail atomically: nothing newly allocated.
	if err := pm.ClaimRange(start+MFN(count)-1, 10, OwnerHV, -1); err == nil {
		t.Fatal("overlapping claim succeeded")
	}
	if pm.AllocatedFrames() != count {
		t.Fatalf("failed claim leaked frames: %d allocated", pm.AllocatedFrames())
	}
	// Out of bounds.
	if err := pm.ClaimRange(MFN(4*FramesPer2M-1), 2, OwnerHV, -1); err == nil {
		t.Fatal("out-of-bounds claim succeeded")
	}
	if errs := pm.AuditOwners(map[int]bool{}); len(errs) != 0 {
		t.Fatalf("audit after claim: %v", errs)
	}
	// The claim must not move the cursor: a fresh allocation starts at
	// frame 0, skipping to the first free frame.
	got, err := pm.Alloc(1, OwnerHV, -1)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 0 {
		t.Fatalf("cursor moved by claim: alloc landed at %#x, want 0", got[0])
	}
	if err := pm.FreeRange(start, count); err != nil {
		t.Fatal(err)
	}
	if pm.AllocatedFrames() != 1 {
		t.Fatalf("AllocatedFrames after free = %d, want 1", pm.AllocatedFrames())
	}
	if errs := pm.AuditOwners(map[int]bool{}); len(errs) != 0 {
		t.Fatalf("audit after free: %v", errs)
	}
}
