package hw

import (
	"fmt"
	"time"

	"hypertp/internal/simtime"
)

// Machine is one simulated physical server: a profile, its physical
// memory, and a boot generation counter. The hypervisor running on the
// machine lives one layer up (internal/hv); the machine only knows about
// frames and reboots.
type Machine struct {
	Profile *Profile
	Mem     *PhysMem
	Clock   *simtime.Clock

	// Cmdline is the kernel command line of the most recent boot; the
	// kexec path uses it to hand the PRAM pointer to the target
	// hypervisor (§4.2.4).
	Cmdline string

	generation int
	bootedAt   time.Duration
}

// NewMachine creates a machine of the given profile attached to the clock.
func NewMachine(clock *simtime.Clock, p *Profile) *Machine {
	return &Machine{
		Profile: p,
		Mem:     NewPhysMem(p.RAMBytes),
		Clock:   clock,
	}
}

// Generation returns the machine's boot generation, incremented by every
// micro-reboot. Hypervisor models use it to detect that structures they
// hold were created before the last reboot.
func (m *Machine) Generation() int { return m.generation }

// BootedAt returns the virtual time of the last (re)boot.
func (m *Machine) BootedAt() time.Duration { return m.bootedAt }

// MicroReboot wipes all memory except the frames in the keep ranges
// (which must be sorted and disjoint), installs the new kernel command
// line, and bumps the boot generation. The caller (internal/kexec) is
// responsible for charging boot time to the clock and for having
// preloaded the target image into preserved frames.
func (m *Machine) MicroReboot(cmdline string, keep []FrameRange) (wiped int) {
	wiped = m.Mem.WipeRanges(keep)
	m.Cmdline = cmdline
	m.generation++
	m.bootedAt = m.Clock.Now()
	return wiped
}

// ParallelElapsed models running nitems independent work items of the
// given per-item cost on the machine's worker pool: items are assigned to
// workers round-robin, so elapsed time is ceil(nitems/workers) * cost.
// This is the model behind the paper's observation that PRAM construction
// scales much better on many-core M2 than on 4-core M1 (Fig. 7c vs 7f).
func (m *Machine) ParallelElapsed(nitems int, perItem time.Duration) time.Duration {
	if nitems <= 0 {
		return 0
	}
	workers := m.Profile.Workers()
	rounds := (nitems + workers - 1) / workers
	return time.Duration(rounds) * perItem
}

// ParallelElapsedVaried is ParallelElapsed for heterogeneous item costs:
// items are assigned to the least-loaded worker (LPT-style), and the
// elapsed time is the maximum worker load.
//
// The least-loaded worker is tracked in a binary min-heap, so one call is
// O(n log w) instead of the former O(n·w) linear scan — it runs per
// transplant with up to 54 workers (M2) and per-VM cost lists. Which of
// several equally-loaded workers receives an item cannot change the
// resulting load multiset, so the returned duration is identical to the
// linear scan's.
func (m *Machine) ParallelElapsedVaried(costs []time.Duration) time.Duration {
	if len(costs) == 0 {
		return 0
	}
	workers := m.Profile.Workers()
	if workers == 1 {
		var sum time.Duration
		for _, c := range costs {
			sum += c
		}
		return sum
	}
	if len(costs) <= workers {
		// One item per worker: elapsed is simply the largest item.
		var max time.Duration
		for _, c := range costs {
			if c > max {
				max = c
			}
		}
		return max
	}
	// loads is a min-heap: loads[0] is always the least-loaded worker.
	// All-zero initial loads are trivially heap-ordered.
	loads := make([]time.Duration, workers)
	for _, c := range costs {
		loads[0] += c
		// Sift the updated root down to restore the heap property.
		i := 0
		for {
			l, r := 2*i+1, 2*i+2
			min := i
			if l < workers && loads[l] < loads[min] {
				min = l
			}
			if r < workers && loads[r] < loads[min] {
				min = r
			}
			if min == i {
				break
			}
			loads[i], loads[min] = loads[min], loads[i]
			i = min
		}
	}
	var max time.Duration
	for _, l := range loads {
		if l > max {
			max = l
		}
	}
	return max
}

// String implements fmt.Stringer.
func (m *Machine) String() string {
	return fmt.Sprintf("%s(gen %d, %d/%d frames)", m.Profile.Name, m.generation,
		m.Mem.AllocatedFrames(), m.Mem.TotalFrames())
}
