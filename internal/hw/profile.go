package hw

import "time"

// CostModel holds the calibrated virtual-time costs of the transplant
// phases on one machine type. The single-VM, 1 vCPU / 1 GB values are
// anchored on the paper's Fig. 6 and §5.2 measurements; every other data
// point in the evaluation is derived by the mechanisms (parallel workers,
// sequential boot-time PRAM parsing, bandwidth sharing), so scalability
// shapes are emergent rather than tabulated.
type CostModel struct {
	// PRAM structure construction (performed before pausing VMs,
	// parallelized across worker threads, one VM per worker).
	PRAMPerVM time.Duration // fixed per-VM file setup
	PRAMPerGB time.Duration // per GiB of guest memory scanned

	// UISR translation (inside the downtime window). Includes PRAM
	// finalization, which is why it also scales with memory.
	TranslatePerVM   time.Duration
	TranslatePerVCPU time.Duration
	TranslatePerGB   time.Duration

	// UISR restoration on the target hypervisor (parallel across VMs).
	RestorePerVM   time.Duration
	RestorePerVCPU time.Duration

	// Micro-reboot. BootLinuxKVM covers the Linux kernel + KVM services
	// path; BootXenDom0 covers the two-kernel Xen + dom0 path, which is
	// why KVM→Xen transplants are several times slower (Fig. 10).
	// BootNOVA covers the microhypervisor path, the fastest of the
	// three (a single tiny kernel plus its root task).
	BootLinuxKVM time.Duration
	BootXenDom0  time.Duration
	BootNOVA     time.Duration

	// Boot-time PRAM parsing is sequential (single CPU, early boot, no
	// monitoring available — §5.2), so it adds to Reboot per GiB of
	// preserved guest memory and per preserved VM.
	PRAMParsePerGB time.Duration
	PRAMParsePerVM time.Duration

	// NIC reinitialization after the micro-reboot (driver dependent;
	// 6.6 s on M1, 2.3 s on M2 in §5.2.1). Overlaps the restoration
	// phases; only network-dependent applications observe it.
	NICReinit time.Duration

	// RestoreServiceWait is the delay before VM restoration can begin
	// when the §4.2.5 early-restoration optimization is disabled (the
	// time for all host services to settle after boot).
	RestoreServiceWait time.Duration

	// Live-migration stop-and-copy handling on the receive side. Xen's
	// restore path is heavyweight (133.59 ms for 1 vCPU / 1 GB); kvmtool
	// is 27x lighter (4.96 ms) — Table 4.
	MigFinalizeXen     time.Duration
	MigFinalizeKVMTool time.Duration
	// MigFinalizePerVCPU is the extra stop-phase cost per additional
	// vCPU whose context must be transferred and installed.
	MigFinalizePerVCPU time.Duration
	// MigXenReceiveSeqVar is the variance factor of Xen's sequential
	// receive path when several VMs land on one host (§5.2.2): later
	// VMs in the receive queue observe proportionally larger downtime.
	MigXenReceiveSeqVar float64
}

// Profile describes one physical machine type of the testbed (Table 3).
type Profile struct {
	Name     string
	Cores    int // physical cores
	Threads  int // hardware threads
	BaseGHz  float64
	RAMBytes uint64
	// ReservedCPUs are held back for the administration OS (dom0 on
	// Xen, host Linux on KVM) per §5.1.
	ReservedCPUs int
	// NetRate is the byte rate of the machine's NIC.
	NetRate int64
	Cost    CostModel
}

// Workers returns the number of hardware threads available to parallel
// transplant work (threads minus the administration reservation).
func (p *Profile) Workers() int {
	w := p.Threads - p.ReservedCPUs
	if w < 1 {
		return 1
	}
	return w
}

// GiB is one binary gigabyte.
const GiB = uint64(1) << 30

// M1 returns the profile of the paper's M1 machine: Intel i5-8400H,
// 4 cores / 8 threads @ 2.5 GHz, 16 GB RAM, 1 Gbps Ethernet.
func M1() *Profile {
	return &Profile{
		Name:         "M1",
		Cores:        4,
		Threads:      8,
		BaseGHz:      2.5,
		RAMBytes:     16 * GiB,
		ReservedCPUs: 2,
		NetRate:      1_000_000_000 / 8,
		Cost: CostModel{
			// Fig. 6 anchor: PRAM 0.45 s for one 1 GiB VM.
			PRAMPerVM: 400 * time.Millisecond,
			PRAMPerGB: 50 * time.Millisecond,
			// Fig. 6 anchor: Translation 0.08 s.
			TranslatePerVM:   55 * time.Millisecond,
			TranslatePerVCPU: 5 * time.Millisecond,
			TranslatePerGB:   20 * time.Millisecond,
			// Fig. 6 anchor: Restoration 0.12 s.
			RestorePerVM:   110 * time.Millisecond,
			RestorePerVCPU: 10 * time.Millisecond,
			// Fig. 6 anchor: Reboot 1.52 s (Linux+KVM) including
			// the parse of one 1 GiB VM's PRAM; Fig. 10 anchor:
			// ~7.6 s for the Xen+dom0 path.
			BootLinuxKVM:       1435 * time.Millisecond,
			BootXenDom0:        7515 * time.Millisecond,
			BootNOVA:           620 * time.Millisecond,
			PRAMParsePerGB:     75 * time.Millisecond,
			PRAMParsePerVM:     10 * time.Millisecond,
			NICReinit:          6600 * time.Millisecond,
			RestoreServiceWait: 500 * time.Millisecond,
			// Table 4 anchors.
			MigFinalizeXen:      130 * time.Millisecond,
			MigFinalizeKVMTool:  4500 * time.Microsecond,
			MigFinalizePerVCPU:  3600 * time.Microsecond,
			MigXenReceiveSeqVar: 0.85,
		},
	}
}

// M2 returns the profile of the paper's M2 machine: 2x Xeon E5-2650L v4,
// 2x14 cores / 56 threads @ 1.7 GHz, 64 GB RAM, 1 Gbps Ethernet.
func M2() *Profile {
	return &Profile{
		Name:         "M2",
		Cores:        28,
		Threads:      56,
		BaseGHz:      1.7,
		RAMBytes:     64 * GiB,
		ReservedCPUs: 2,
		NetRate:      1_000_000_000 / 8,
		Cost: CostModel{
			// Fig. 6 anchors for M2: PRAM 0.5 s, Translation
			// 0.24 s, Reboot 2.40 s, Restoration 0.34 s. The
			// lower clock makes per-item work costlier, the many
			// cores make parallel phases scale flatter.
			PRAMPerVM:        430 * time.Millisecond,
			PRAMPerGB:        70 * time.Millisecond,
			TranslatePerVM:   200 * time.Millisecond,
			TranslatePerVCPU: 8 * time.Millisecond,
			TranslatePerGB:   32 * time.Millisecond,
			RestorePerVM:     320 * time.Millisecond,
			RestorePerVCPU:   16 * time.Millisecond,
			BootLinuxKVM:     2275 * time.Millisecond,
			// Fig. 10 anchor: ~17.8 s total for KVM→Xen on M2.
			BootXenDom0:         17100 * time.Millisecond,
			BootNOVA:            950 * time.Millisecond,
			PRAMParsePerGB:      110 * time.Millisecond,
			PRAMParsePerVM:      15 * time.Millisecond,
			NICReinit:           2300 * time.Millisecond,
			RestoreServiceWait:  800 * time.Millisecond,
			MigFinalizeXen:      150 * time.Millisecond,
			MigFinalizeKVMTool:  5200 * time.Microsecond,
			MigFinalizePerVCPU:  4000 * time.Microsecond,
			MigXenReceiveSeqVar: 0.85,
		},
	}
}

// ClusterNode returns the profile of the §5.4 cluster machines: 2x Xeon
// E5-2630 v3, 96 GB RAM, 10 Gbps network. Transplant costs reuse the M2
// calibration (same server class).
func ClusterNode() *Profile {
	p := M2()
	p.Name = "cluster-node"
	p.Cores = 16
	p.Threads = 32
	p.BaseGHz = 2.4
	p.RAMBytes = 96 * GiB
	p.NetRate = 10_000_000_000 / 8
	return p
}
