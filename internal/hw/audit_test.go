package hw

import (
	"strings"
	"testing"
)

// auditMem allocates a few frames for VM 1 and returns the memory plus
// the live set that makes it audit clean.
func auditMem(t *testing.T) (*PhysMem, map[int]bool) {
	t.Helper()
	pm := newTestMem()
	if _, err := pm.Alloc(16, OwnerGuest, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := pm.Alloc(4, OwnerVMState, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := pm.Alloc(8, OwnerHV, 0); err != nil {
		t.Fatal(err)
	}
	return pm, map[int]bool{1: true}
}

func TestAuditCleanMachine(t *testing.T) {
	pm, live := auditMem(t)
	if vs := pm.AuditOwners(live); vs != nil {
		t.Fatalf("clean machine reported %v", vs)
	}
	// HV/PRAM/kexec frames carry no VM id and are exempt from liveness.
	if vs := pm.AuditOwners(map[int]bool{1: true, 99: true}); vs != nil {
		t.Fatalf("extra live ids reported %v", vs)
	}
}

func TestAuditDeadVMFrame(t *testing.T) {
	pm, live := auditMem(t)
	mfns, err := pm.Alloc(1, OwnerVMState, 7) // VM 7 is not live
	if err != nil {
		t.Fatal(err)
	}
	vs := pm.AuditOwners(live)
	if len(vs) != 1 || vs[0].Kind != "dead-vm-frame" || vs[0].MFN != mfns[0] || vs[0].VM != 7 {
		t.Fatalf("violations = %v", vs)
	}
	if !strings.Contains(vs[0].String(), "dead-vm-frame") {
		t.Fatalf("String() = %q", vs[0].String())
	}
}

func TestAuditUntaggedVM(t *testing.T) {
	pm, live := auditMem(t)
	if _, err := pm.Alloc(1, OwnerGuest, -1); err != nil {
		t.Fatal(err)
	}
	vs := pm.AuditOwners(live)
	if len(vs) != 1 || vs[0].Kind != "untagged-vm" {
		t.Fatalf("violations = %v", vs)
	}
}

func TestAuditResidue(t *testing.T) {
	pm, live := auditMem(t)
	// Plant contents under a free frame directly: the public API cannot
	// produce this state — which is exactly what the audit is for.
	pm.data[MFN(pm.totalFrames-1)] = &page{buf: make([]byte, PageSize4K), refs: 1}
	vs := pm.AuditOwners(live)
	if len(vs) != 1 || vs[0].Kind != "residue" {
		t.Fatalf("violations = %v", vs)
	}
}

func TestAuditAccountingDrift(t *testing.T) {
	pm, live := auditMem(t)
	pm.allocated++ // simulate a lost decrement
	vs := pm.AuditOwners(live)
	if len(vs) == 0 || vs[0].Kind != "accounting" {
		t.Fatalf("violations = %v", vs)
	}
	pm.allocated--
	pm.byOwner[OwnerGuest]++ // per-owner counter drift
	vs = pm.AuditOwners(live)
	if len(vs) != 1 || vs[0].Kind != "accounting" || vs[0].Owner != OwnerGuest {
		t.Fatalf("violations = %v", vs)
	}
}

func TestAuditOverflowSummary(t *testing.T) {
	pm, live := auditMem(t)
	if _, err := pm.Alloc(auditMaxPerKind+5, OwnerGuest, 9); err != nil {
		t.Fatal(err)
	}
	vs := pm.AuditOwners(live)
	// auditMaxPerKind itemized + one trailing summary line.
	if len(vs) != auditMaxPerKind+1 {
		t.Fatalf("got %d violations, want %d", len(vs), auditMaxPerKind+1)
	}
	last := vs[len(vs)-1]
	if !strings.Contains(last.Detail, "5 more dead-vm-frame") {
		t.Fatalf("summary line = %q", last.Detail)
	}
}

// TestChecksumCacheInvalidation: the cached per-frame CRC must follow
// writes, frees, and wipes — a stale cache would blind the integrity
// audit.
func TestChecksumCacheInvalidation(t *testing.T) {
	pm := newTestMem()
	mfns, err := pm.Alloc(1, OwnerGuest, 1)
	if err != nil {
		t.Fatal(err)
	}
	m := mfns[0]
	zero, err := pm.Checksum(m)
	if err != nil {
		t.Fatal(err)
	}
	again, _ := pm.Checksum(m) // cached path
	if again != zero {
		t.Fatal("cached checksum differs from first computation")
	}
	if err := pm.Write(m, 0, []byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	dirty, _ := pm.Checksum(m)
	if dirty == zero {
		t.Fatal("checksum unchanged after write — stale cache")
	}
	if err := pm.Free(m); err != nil {
		t.Fatal(err)
	}
	re, err := pm.Alloc(1, OwnerGuest, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Wherever the frame landed, a fresh allocation reads as zeros.
	sum, err := pm.Checksum(re[0])
	if err != nil {
		t.Fatal(err)
	}
	if sum != zero {
		t.Fatalf("recycled frame checksum %#x, want zero-page %#x", sum, zero)
	}
	if err := pm.Write(re[0], 0, []byte{9}); err != nil {
		t.Fatal(err)
	}
	pm.Wipe(nil)
	if _, err := pm.Checksum(re[0]); err == nil {
		t.Fatal("checksum of wiped frame succeeded")
	}
	if len(pm.sums) != 0 {
		t.Fatalf("wipe left %d cached checksums", len(pm.sums))
	}
}
