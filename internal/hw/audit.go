package hw

import (
	"fmt"
	"sort"
)

// Violation is one frame-ownership inconsistency found by AuditOwners.
type Violation struct {
	// Kind classifies the inconsistency:
	//
	//	"dead-vm-frame"  a per-VM owner tag (guest, vmstate, vmmgmt)
	//	                 names a VM id that is not live — a leak left by
	//	                 a teardown or failed restore path
	//	"untagged-vm"    a per-VM owner tag carries no VM id at all
	//	"residue"        a free frame still holds page contents — the
	//	                 wipe/free discipline was bypassed
	//	"accounting"     the cached allocation counters disagree with
	//	                 the ownership array itself
	Kind  string
	MFN   MFN
	Owner Owner
	// VM is the owning VM id the tag carries (-1 when not applicable).
	VM     int
	Detail string
}

func (v Violation) String() string {
	return fmt.Sprintf("%s: frame %#x owner=%v vm=%d: %s", v.Kind, uint64(v.MFN), v.Owner, v.VM, v.Detail)
}

// auditMaxPerKind caps how many violations of one kind a single audit
// reports: one leak path usually taints thousands of frames, and the
// first few pinpoint it.
const auditMaxPerKind = 8

// AuditOwners checks the ownership array against the set of live VM
// ids. Frames tagged with a per-VM owner whose VM id is not in liveVMs
// are leaks (a dead VM's memory was never freed or retagged); free
// frames with surviving page contents indicate a bypassed wipe; and the
// cached counters are recomputed from scratch so any drift in the
// bookkeeping itself surfaces. Double-ownership within one machine is
// structurally impossible here (one tag per frame) — cross-VM overlap
// is audited at the address-space layer, where the mappings live.
//
// A clean machine returns nil.
func (pm *PhysMem) AuditOwners(liveVMs map[int]bool) []Violation {
	pm.mu.Lock()
	defer pm.mu.Unlock()
	var out []Violation
	perKind := make(map[string]int)
	add := func(v Violation) {
		perKind[v.Kind]++
		if perKind[v.Kind] <= auditMaxPerKind {
			out = append(out, v)
		}
	}

	// Per-VM liveness check for one frame's effective tag.
	checkVM := func(m MFN, o Owner, v int32) {
		switch o {
		case OwnerGuest, OwnerVMState, OwnerVMMgmt:
			vm := int(v)
			if vm < 0 {
				add(Violation{Kind: "untagged-vm", MFN: m, Owner: o, VM: vm,
					Detail: "per-VM owner without a VM id"})
			} else if !liveVMs[vm] {
				add(Violation{Kind: "dead-vm-frame", MFN: m, Owner: o, VM: vm,
					Detail: "owned by a VM that is not live"})
			}
		}
	}

	var allocated uint64
	var byOwner [numOwners]uint64
	for c := range pm.uniform {
		base, size := pm.chunkSpan(c)
		if pm.uniform[c] {
			// Uniform chunk: one summary check covers every frame; only a
			// violating chunk pays the per-frame reporting loop.
			o, v := pm.cOwner[c], pm.cVM[c]
			byOwner[o] += size
			if o == OwnerFree {
				continue
			}
			allocated += size
			bad := false
			switch o {
			case OwnerGuest, OwnerVMState, OwnerVMMgmt:
				bad = v < 0 || !liveVMs[int(v)]
			}
			if bad {
				for i := uint64(0); i < size; i++ {
					checkVM(base+MFN(i), o, v)
				}
			}
			continue
		}
		for i := uint64(0); i < size; i++ {
			m := base + MFN(i)
			o := pm.owner[m]
			byOwner[o]++
			if o == OwnerFree {
				continue
			}
			allocated++
			checkVM(m, o, pm.vm[m])
		}
	}
	// Residue: page contents surviving under a free frame. Walked from
	// the data map itself (not the chunk counters, which could be the
	// very thing that drifted), sorted for deterministic output.
	var residue []MFN
	for m := range pm.data {
		if o, _ := pm.frameState(m); o == OwnerFree {
			residue = append(residue, m)
		}
	}
	sort.Slice(residue, func(i, j int) bool { return residue[i] < residue[j] })
	for _, m := range residue {
		add(Violation{Kind: "residue", MFN: m, Owner: OwnerFree, VM: -1,
			Detail: "free frame retains page contents"})
	}
	if allocated != pm.allocated {
		add(Violation{Kind: "accounting", MFN: 0, Owner: OwnerFree, VM: -1,
			Detail: fmt.Sprintf("allocated counter %d, ownership array says %d", pm.allocated, allocated)})
	}
	for o := Owner(0); o < numOwners; o++ {
		if byOwner[o] != pm.byOwner[o] && o != OwnerFree {
			add(Violation{Kind: "accounting", MFN: 0, Owner: o, VM: -1,
				Detail: fmt.Sprintf("byOwner[%v] counter %d, ownership array says %d", o, pm.byOwner[o], byOwner[o])})
		}
	}
	// Fixed order: audit output feeds byte-compared replay bundles.
	for _, kind := range []string{"dead-vm-frame", "untagged-vm", "residue", "accounting"} {
		if n := perKind[kind]; n > auditMaxPerKind {
			out = append(out, Violation{Kind: kind, MFN: 0, Owner: OwnerFree, VM: -1,
				Detail: fmt.Sprintf("... and %d more %s violations", n-auditMaxPerKind, kind)})
		}
	}
	return out
}
