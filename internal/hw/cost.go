package hw

import "time"

// This file holds the phase-cost formulas as methods on CostModel, so
// the engine (internal/core), the migration receiver
// (internal/migration) and the calibration gate (internal/calib) all
// charge — and assert on — exactly the same arithmetic. A formula
// change here moves every consumer together, and the calib catalogue
// pins the result against the paper's published shapes.

// SplitPRAMCostFactor scales PRAM build and boot-time parse costs when
// huge pages are disabled: 512x the entries, amortized by bulk writes.
const SplitPRAMCostFactor = 8

// gib converts a byte count to binary gigabytes for per-GiB charges.
func gib(memBytes uint64) float64 { return float64(memBytes) / float64(GiB) }

// PRAMBuild is one VM's PRAM structure-construction charge (performed
// before pausing, parallel across workers).
func (c *CostModel) PRAMBuild(memBytes uint64, hugePages bool) time.Duration {
	d := c.PRAMPerVM + time.Duration(gib(memBytes)*float64(c.PRAMPerGB))
	if !hugePages {
		d *= SplitPRAMCostFactor
	}
	return d
}

// Translate is one VM's UISR translation charge (inside the downtime
// window; includes PRAM finalization, hence the memory term).
func (c *CostModel) Translate(vcpus int, memBytes uint64) time.Duration {
	return c.TranslatePerVM +
		time.Duration(vcpus)*c.TranslatePerVCPU +
		time.Duration(gib(memBytes)*float64(c.TranslatePerGB))
}

// Restore is one VM's UISR restoration charge on the target hypervisor
// (parallel across VMs).
func (c *CostModel) Restore(vcpus int) time.Duration {
	return c.RestorePerVM + time.Duration(vcpus)*c.RestorePerVCPU
}

// PRAMParse is the sequential boot-time PRAM parsing charge for the
// whole preserved set (single CPU, early boot — §5.2), added to the
// micro-reboot on top of the target kernel's boot base.
func (c *CostModel) PRAMParse(totalMemBytes uint64, vms int, hugePages bool) time.Duration {
	d := time.Duration(gib(totalMemBytes) * float64(c.PRAMParsePerGB))
	if !hugePages {
		d *= SplitPRAMCostFactor
	}
	return d + time.Duration(vms)*c.PRAMParsePerVM
}

// MigFinalize is one VM's live-migration stop-and-copy finalize charge
// on the receive side (Table 4): Xen's heavyweight restore path or the
// 27x lighter kvmtool one, before the sequential-receive jitter the
// migration receiver layers on top.
func (c *CostModel) MigFinalize(xenReceiver bool, vcpus int) time.Duration {
	base := c.MigFinalizeKVMTool
	if xenReceiver {
		base = c.MigFinalizeXen
	}
	return base + time.Duration(vcpus-1)*c.MigFinalizePerVCPU
}
