// Package hw models the physical machines of the paper's testbed: sparse
// frame-granular physical memory, machine profiles (M1, M2, cluster nodes)
// and the calibrated per-phase cost models that give the simulation its
// virtual-time behaviour.
//
// Physical memory is the ground truth the whole reproduction hangs on:
// guests write real bytes into frames, PRAM metadata is serialized into
// frames, and the kexec micro-reboot wipes every frame that is not
// explicitly preserved. "Guest State survives transplant" is therefore a
// checkable property, not an assumption.
package hw

import (
	"bytes"
	"fmt"
	"hash/crc64"
	"sync"
)

// Page geometry. The simulation uses the x86-64 4 KiB base page and the
// 2 MiB huge page the paper's guests are configured with.
const (
	PageSize4K = 4096
	PageSize2M = 2 << 20
	// FramesPer2M is the number of base frames covered by one huge page.
	FramesPer2M = PageSize2M / PageSize4K
)

// chunkFrames is the frame count of one ownership-summary chunk. It is
// deliberately the 2 MiB huge-page run, so a huge allocation is exactly
// one chunk and the bulk ownership paths (wipe, retag, alloc) run at
// chunk granularity instead of frame granularity.
const chunkFrames = FramesPer2M

// MFN is a machine frame number: an index into host physical memory in
// units of 4 KiB frames.
type MFN uint64

// GFN is a guest frame number: an index into a guest physical address
// space in units of 4 KiB frames.
type GFN uint64

// Addr returns the byte address of the frame's first byte.
func (m MFN) Addr() uint64 { return uint64(m) * PageSize4K }

// Owner identifies which of the paper's four memory-separation categories
// (Fig. 2) a frame belongs to, so that the transplant engine and kexec can
// reason about what must be translated, preserved, or wiped.
type Owner uint8

const (
	// OwnerFree marks an unallocated frame.
	OwnerFree Owner = iota
	// OwnerGuest is Guest State: guest-managed memory, hypervisor
	// independent, kept in place across InPlaceTP.
	OwnerGuest
	// OwnerVMState is VM_i State: per-VM hypervisor structures (NPT,
	// vCPU contexts) that must be translated through UISR.
	OwnerVMState
	// OwnerVMMgmt is VM Management State: scheduler queues and other
	// structures rebuilt (not translated) after transplant.
	OwnerVMMgmt
	// OwnerHV is HV State: hypervisor-private memory reinitialized by
	// the micro-reboot.
	OwnerHV
	// OwnerPRAM marks frames holding PRAM metadata pages.
	OwnerPRAM
	// OwnerKexecImage marks frames holding the preloaded target
	// hypervisor image.
	OwnerKexecImage

	numOwners
)

var ownerNames = [...]string{"free", "guest", "vmstate", "vmmgmt", "hv", "pram", "kexec-image"}

func (o Owner) String() string {
	if int(o) < len(ownerNames) {
		return ownerNames[o]
	}
	return fmt.Sprintf("owner(%d)", uint8(o))
}

// page is one touched frame's backing store. With page dedup enabled,
// frames whose contents are byte-identical share one page (refs counts
// the sharers); writes unshare copy-on-write, so sharing is invisible to
// readers and checksums.
type page struct {
	buf []byte
	// hash and interned track the content-intern table registration so
	// a page can be deregistered before mutation or on release.
	hash     uint64
	interned bool
	refs     int32
}

// PhysMem is the physical memory of one machine. Ownership is a two-level
// structure: a per-frame tag array plus a per-chunk (2 MiB) summary. A
// chunk marked uniform has every frame in one (owner, vm) state and the
// summary is authoritative — the per-frame entries may be stale — which
// is what lets the transplant hot paths (micro-reboot wipe, address-space
// retag, huge-page allocation) run in O(chunks) instead of O(frames).
// Page *contents* are a sparse map populated only for frames actually
// written, so untouched guest pages cost nothing and read as zeros.
//
// Concurrency: all methods are safe to call from the internal/par worker
// pools, with one contract — concurrent Read/Write/Checksum calls must
// target *distinct* frames (the mutex guards the bookkeeping, while page
// payload copies run outside it so parallel page writes actually scale).
// Allocation and wiping take the full lock and are typically kept in
// sequential stages so frame assignment stays deterministic.
type PhysMem struct {
	mu          sync.Mutex
	totalFrames uint64
	owner       []Owner
	vm          []int32
	data        map[MFN]*page
	// sums caches per-frame CRC-64s so audit-style full-memory checksums
	// only re-hash frames written since the last pass. Entries are
	// invalidated on Write/Free/Wipe under pm.mu.
	sums      map[MFN]uint64
	next      MFN // bump cursor for allocation
	allocated uint64
	byOwner   [numOwners]uint64

	// Chunk summaries. uniform[c] means every frame of chunk c shares
	// (cOwner[c], cVM[c]) and the per-frame arrays are stale for it.
	// cAlloc counts allocated frames per chunk; cData counts data map
	// entries per chunk, so wipes skip the map entirely for chunks that
	// were never written.
	uniform []bool
	cOwner  []Owner
	cVM     []int32
	cAlloc  []uint32
	cData   []uint32

	// Content-hash page dedup (opt-in, see SetPageDedup): intern maps a
	// content hash to the pages registered under it; writes that produce
	// a byte-identical page share the existing one copy-on-write.
	dedup     bool
	intern    map[uint64][]*page
	dedupHits uint64
}

var crcTable = crc64.MakeTable(crc64.ECMA)

// NewPhysMem creates a physical memory of size bytes (rounded down to a
// whole number of frames).
func NewPhysMem(size uint64) *PhysMem {
	n := size / PageSize4K
	nc := (n + chunkFrames - 1) / chunkFrames
	pm := &PhysMem{
		totalFrames: n,
		owner:       make([]Owner, n),
		vm:          make([]int32, n),
		data:        make(map[MFN]*page),
		sums:        make(map[MFN]uint64),
		uniform:     make([]bool, nc),
		cOwner:      make([]Owner, nc),
		cVM:         make([]int32, nc),
		cAlloc:      make([]uint32, nc),
		cData:       make([]uint32, nc),
	}
	for c := range pm.uniform {
		pm.uniform[c] = true
	}
	return pm
}

// chunkOf returns the chunk index covering frame m.
func chunkOf(m MFN) int { return int(uint64(m) / chunkFrames) }

// chunkSpan returns chunk c's first frame and frame count (the last
// chunk may be partial).
func (pm *PhysMem) chunkSpan(c int) (MFN, uint64) {
	base := uint64(c) * chunkFrames
	size := uint64(chunkFrames)
	if base+size > pm.totalFrames {
		size = pm.totalFrames - base
	}
	return MFN(base), size
}

// explode materializes chunk c's per-frame entries from its uniform
// summary, before a mutation that would leave the chunk mixed.
func (pm *PhysMem) explode(c int) {
	base, size := pm.chunkSpan(c)
	o, v := pm.cOwner[c], pm.cVM[c]
	for i := uint64(0); i < size; i++ {
		pm.owner[base+MFN(i)] = o
		pm.vm[base+MFN(i)] = v
	}
	pm.uniform[c] = false
}

// frameState returns the effective (owner, vm) of frame m; pm.mu held.
func (pm *PhysMem) frameState(m MFN) (Owner, int32) {
	if c := chunkOf(m); pm.uniform[c] {
		return pm.cOwner[c], pm.cVM[c]
	}
	return pm.owner[m], pm.vm[m]
}

// TotalFrames returns the machine's frame count.
func (pm *PhysMem) TotalFrames() uint64 { return pm.totalFrames }

// AllocatedFrames returns the number of currently allocated frames.
func (pm *PhysMem) AllocatedFrames() uint64 {
	pm.mu.Lock()
	defer pm.mu.Unlock()
	return pm.allocated
}

// FreeFrames returns the number of unallocated frames.
func (pm *PhysMem) FreeFrames() uint64 {
	pm.mu.Lock()
	defer pm.mu.Unlock()
	return pm.totalFrames - pm.allocated
}

// freeFramesLocked is FreeFrames for callers already holding pm.mu.
func (pm *PhysMem) freeFramesLocked() uint64 { return pm.totalFrames - pm.allocated }

// take claims frame m; its chunk must already be non-uniform.
func (pm *PhysMem) take(m MFN, owner Owner, vm int) {
	pm.owner[m] = owner
	pm.vm[m] = int32(vm)
	pm.allocated++
	pm.byOwner[owner]++
	pm.cAlloc[chunkOf(m)]++
}

// nextChunkStart returns the first frame of the chunk after c, wrapping
// to frame 0 past the end of memory.
func (pm *PhysMem) nextChunkStart(c int) MFN {
	nb := uint64(c+1) * chunkFrames
	if nb >= pm.totalFrames {
		return 0
	}
	return MFN(nb)
}

// Alloc allocates n frames for the given owner and VM id. Frames are
// assigned from a bump cursor that wraps, which — combined with frames
// freed and reallocated over a machine's lifetime — leaves VM memory
// scattered rather than contiguous, as the paper observes (§4.2.2).
// Whole free chunks at the cursor are claimed in bulk; the assigned
// frame sequence is identical to a frame-by-frame scan.
func (pm *PhysMem) Alloc(n int, owner Owner, vm int) ([]MFN, error) {
	if owner == OwnerFree {
		return nil, fmt.Errorf("hw: cannot allocate with OwnerFree")
	}
	pm.mu.Lock()
	defer pm.mu.Unlock()
	if uint64(n) > pm.freeFramesLocked() {
		return nil, fmt.Errorf("hw: out of memory: want %d frames, %d free", n, pm.freeFramesLocked())
	}
	out := make([]MFN, 0, n)
	for len(out) < n {
		m := pm.next
		c := chunkOf(m)
		if pm.uniform[c] {
			base, size := pm.chunkSpan(c)
			if pm.cOwner[c] != OwnerFree {
				// Fully-allocated chunk: the scan would skip every frame.
				pm.next = pm.nextChunkStart(c)
				continue
			}
			if m == base && uint64(n-len(out)) >= size {
				// Whole free chunk at the cursor: claim it in one step.
				pm.cOwner[c] = owner
				pm.cVM[c] = int32(vm)
				pm.cAlloc[c] = uint32(size)
				pm.allocated += size
				pm.byOwner[owner] += size
				for i := uint64(0); i < size; i++ {
					out = append(out, base+MFN(i))
				}
				pm.next = pm.nextChunkStart(c)
				continue
			}
			pm.explode(c)
		}
		if pm.owner[m] == OwnerFree {
			pm.take(m, owner, vm)
			out = append(out, m)
		}
		pm.next = m + 1
		if pm.next >= MFN(pm.totalFrames) {
			pm.next = 0
		}
	}
	return out, nil
}

// AllocRanges is Alloc with the result returned as coalesced frame
// ranges instead of a materialized per-frame list. The assignment policy
// — cursor walk, chunk fast path, wrap — is exactly Alloc's, so for a
// given memory state AllocRanges claims the same frames Alloc would;
// only the representation differs. Bulk owners that never address
// individual frames (the hypervisor resident set, the staged kexec
// image) use it so every simulated boot stops building
// tens-of-thousands-entry MFN slices.
func (pm *PhysMem) AllocRanges(n int, owner Owner, vm int) ([]FrameRange, error) {
	if owner == OwnerFree {
		return nil, fmt.Errorf("hw: cannot allocate with OwnerFree")
	}
	pm.mu.Lock()
	defer pm.mu.Unlock()
	if uint64(n) > pm.freeFramesLocked() {
		return nil, fmt.Errorf("hw: out of memory: want %d frames, %d free", n, pm.freeFramesLocked())
	}
	var out []FrameRange
	got := uint64(0)
	claim := func(start MFN, count uint64) {
		if k := len(out); k > 0 && out[k-1].Start+MFN(out[k-1].Count) == start {
			out[k-1].Count += count
		} else {
			out = append(out, FrameRange{Start: start, Count: count})
		}
		got += count
	}
	for got < uint64(n) {
		m := pm.next
		c := chunkOf(m)
		if pm.uniform[c] {
			base, size := pm.chunkSpan(c)
			if pm.cOwner[c] != OwnerFree {
				pm.next = pm.nextChunkStart(c)
				continue
			}
			if m == base && uint64(n)-got >= size {
				pm.cOwner[c] = owner
				pm.cVM[c] = int32(vm)
				pm.cAlloc[c] = uint32(size)
				pm.allocated += size
				pm.byOwner[owner] += size
				claim(base, size)
				pm.next = pm.nextChunkStart(c)
				continue
			}
			pm.explode(c)
		}
		if pm.owner[m] == OwnerFree {
			pm.take(m, owner, vm)
			claim(m, 1)
		}
		pm.next = m + 1
		if pm.next >= MFN(pm.totalFrames) {
			pm.next = 0
		}
	}
	return out, nil
}

// Alloc2M allocates one 2 MiB-aligned run of 512 contiguous frames,
// returning the first MFN. An aligned run is exactly one chunk, so the
// scan checks chunk summaries instead of individual frames.
func (pm *PhysMem) Alloc2M(owner Owner, vm int) (MFN, error) {
	if owner == OwnerFree {
		return 0, fmt.Errorf("hw: cannot allocate with OwnerFree")
	}
	pm.mu.Lock()
	defer pm.mu.Unlock()
	if FramesPer2M > pm.freeFramesLocked() {
		return 0, fmt.Errorf("hw: out of memory for 2M page")
	}
	start := (pm.next + FramesPer2M - 1) / FramesPer2M * FramesPer2M
	nRuns := pm.totalFrames / FramesPer2M
	for tries := uint64(0); tries < nRuns; tries++ {
		base := (start + MFN(tries*FramesPer2M)) % MFN(nRuns*FramesPer2M)
		c := chunkOf(base)
		if pm.uniform[c] {
			if pm.cOwner[c] != OwnerFree {
				continue
			}
		} else {
			ok := true
			for i := MFN(0); i < FramesPer2M; i++ {
				if pm.owner[base+i] != OwnerFree {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
		}
		pm.uniform[c] = true
		pm.cOwner[c] = owner
		pm.cVM[c] = int32(vm)
		pm.cAlloc[c] = FramesPer2M
		pm.allocated += FramesPer2M
		pm.byOwner[owner] += FramesPer2M
		pm.next = (base + FramesPer2M) % MFN(pm.totalFrames)
		return base, nil
	}
	return 0, fmt.Errorf("hw: no aligned 2M run available (fragmentation)")
}

// ClaimRange allocates the exact frames [start, start+count), all of
// which must currently be free — the all-or-nothing complement to the
// cursor-driven Alloc, used by snapshot replay to re-materialize a
// structure at the frames a previous build occupied. On failure nothing
// is claimed. The cursor is not moved: a claim at cached frames must not
// perturb where subsequent cursor allocations land.
func (pm *PhysMem) ClaimRange(start MFN, count uint64, owner Owner, vm int) error {
	if owner == OwnerFree {
		return fmt.Errorf("hw: cannot allocate with OwnerFree")
	}
	pm.mu.Lock()
	defer pm.mu.Unlock()
	if uint64(start)+count > pm.totalFrames {
		return fmt.Errorf("hw: ClaimRange [%#x,+%d) out of bounds", start, count)
	}
	for m := start; m < start+MFN(count); {
		c := chunkOf(m)
		if pm.uniform[c] {
			if pm.cOwner[c] != OwnerFree {
				return fmt.Errorf("hw: ClaimRange frame %#x not free", m)
			}
			base, size := pm.chunkSpan(c)
			m = base + MFN(size)
			continue
		}
		if pm.owner[m] != OwnerFree {
			return fmt.Errorf("hw: ClaimRange frame %#x not free", m)
		}
		m++
	}
	for m := start; m < start+MFN(count); {
		c := chunkOf(m)
		base, size := pm.chunkSpan(c)
		end := base + MFN(size)
		if rangeEnd := start + MFN(count); end > rangeEnd {
			end = rangeEnd
		}
		if pm.uniform[c] {
			if m == base && end == base+MFN(size) {
				// Whole free chunk: claim it at summary granularity.
				pm.cOwner[c] = owner
				pm.cVM[c] = int32(vm)
				pm.cAlloc[c] = uint32(size)
				pm.allocated += size
				pm.byOwner[owner] += size
				m = end
				continue
			}
			pm.explode(c)
		}
		for ; m < end; m++ {
			pm.take(m, owner, vm)
		}
	}
	return nil
}

// releaseData drops frame m's page contents and cached checksum; pm.mu
// held. Shared dedup pages are dereferenced and deregistered from the
// intern table when the last sharer goes.
func (pm *PhysMem) releaseData(m MFN) {
	p, ok := pm.data[m]
	if !ok {
		return
	}
	delete(pm.data, m)
	delete(pm.sums, m)
	pm.cData[chunkOf(m)]--
	p.refs--
	if p.refs <= 0 && p.interned {
		pm.uninternPage(p)
	}
}

// freeFrame releases frame m; its chunk must be non-uniform and the
// frame allocated. pm.mu held.
func (pm *PhysMem) freeFrame(m MFN) {
	pm.byOwner[pm.owner[m]]--
	pm.owner[m] = OwnerFree
	pm.vm[m] = 0
	pm.allocated--
	pm.cAlloc[chunkOf(m)]--
	pm.releaseData(m)
}

// collapseIfFree re-summarizes a drained chunk so later wipes and allocs
// take the O(1) paths again. pm.mu held.
func (pm *PhysMem) collapseIfFree(c int) {
	if !pm.uniform[c] && pm.cAlloc[c] == 0 {
		pm.uniform[c] = true
		pm.cOwner[c] = OwnerFree
		pm.cVM[c] = 0
	}
}

// Free releases a frame. Freeing an unallocated frame is an error: it
// indicates double-free bugs in a hypervisor model.
func (pm *PhysMem) Free(m MFN) error {
	pm.mu.Lock()
	defer pm.mu.Unlock()
	if m >= MFN(pm.totalFrames) {
		return fmt.Errorf("hw: double free of frame %#x", uint64(m))
	}
	c := chunkOf(m)
	if pm.uniform[c] {
		if pm.cOwner[c] == OwnerFree {
			return fmt.Errorf("hw: double free of frame %#x", uint64(m))
		}
		pm.explode(c)
	}
	if pm.owner[m] == OwnerFree {
		return fmt.Errorf("hw: double free of frame %#x", uint64(m))
	}
	pm.freeFrame(m)
	pm.collapseIfFree(c)
	return nil
}

// FreeRange releases the contiguous run [start, start+count) in one
// critical section — the bulk path behind hv.AddressSpace.Release, where
// a per-frame Free would pay a lock round-trip and a chunk explode per
// frame. Whole uniform chunks are released at summary granularity.
// Frames are freed in order; the first unallocated frame aborts with the
// same error (and partial effect) a Free loop has.
func (pm *PhysMem) FreeRange(start MFN, count uint64) error {
	pm.mu.Lock()
	defer pm.mu.Unlock()
	end := uint64(start) + count
	limit := end
	if limit > pm.totalFrames {
		limit = pm.totalFrames
	}
	for f := uint64(start); f < limit; {
		c := chunkOf(MFN(f))
		base, size := pm.chunkSpan(c)
		hi := uint64(base) + size
		if hi > limit {
			hi = limit
		}
		if pm.uniform[c] {
			if pm.cOwner[c] == OwnerFree {
				return fmt.Errorf("hw: double free of frame %#x", f)
			}
			if f == uint64(base) && hi == uint64(base)+size {
				// Whole uniform chunk: release at summary granularity.
				pm.byOwner[pm.cOwner[c]] -= size
				pm.allocated -= size
				pm.cOwner[c] = OwnerFree
				pm.cVM[c] = 0
				pm.cAlloc[c] = 0
				for m := base; pm.cData[c] > 0 && uint64(m) < uint64(base)+size; m++ {
					pm.releaseDataAt(m, c)
				}
				f = hi
				continue
			}
			pm.explode(c)
		}
		for ; f < hi; f++ {
			if pm.owner[f] == OwnerFree {
				pm.collapseIfFree(c)
				return fmt.Errorf("hw: double free of frame %#x", f)
			}
			pm.freeFrame(MFN(f))
		}
		pm.collapseIfFree(c)
	}
	if end > pm.totalFrames {
		return fmt.Errorf("hw: double free of frame %#x", pm.totalFrames)
	}
	return nil
}

// releaseDataAt is releaseData without the chunk recomputation, for bulk
// paths that already know the chunk. pm.mu held.
func (pm *PhysMem) releaseDataAt(m MFN, c int) {
	p, ok := pm.data[m]
	if !ok {
		return
	}
	delete(pm.data, m)
	delete(pm.sums, m)
	pm.cData[c]--
	p.refs--
	if p.refs <= 0 && p.interned {
		pm.uninternPage(p)
	}
}

// OwnerOf reports a frame's owner tag (OwnerFree if unallocated) and
// owning VM id.
func (pm *PhysMem) OwnerOf(m MFN) (Owner, int) {
	pm.mu.Lock()
	defer pm.mu.Unlock()
	if m >= MFN(pm.totalFrames) {
		return OwnerFree, -1
	}
	o, v := pm.frameState(m)
	if o == OwnerFree {
		return OwnerFree, -1
	}
	return o, int(v)
}

// SetOwner retags an allocated frame. Used when the target hypervisor
// adopts preserved guest frames after a micro-reboot.
func (pm *PhysMem) SetOwner(m MFN, owner Owner, vm int) error {
	pm.mu.Lock()
	defer pm.mu.Unlock()
	return pm.setOwnerLocked(m, owner, vm)
}

func (pm *PhysMem) setOwnerLocked(m MFN, owner Owner, vm int) error {
	if m >= MFN(pm.totalFrames) {
		return fmt.Errorf("hw: SetOwner on unallocated frame %#x", uint64(m))
	}
	c := chunkOf(m)
	if pm.uniform[c] {
		if pm.cOwner[c] == OwnerFree {
			return fmt.Errorf("hw: SetOwner on unallocated frame %#x", uint64(m))
		}
		if pm.cOwner[c] == owner && pm.cVM[c] == int32(vm) {
			return nil
		}
		pm.explode(c)
	}
	if pm.owner[m] == OwnerFree {
		return fmt.Errorf("hw: SetOwner on unallocated frame %#x", uint64(m))
	}
	pm.byOwner[pm.owner[m]]--
	pm.owner[m] = owner
	pm.vm[m] = int32(vm)
	pm.byOwner[owner]++
	return nil
}

// SetOwnerRange retags the contiguous run [start, start+count) in one
// critical section — the bulk path behind hv.AddressSpace.Retag, where a
// per-frame SetOwner would pay millions of lock round-trips per
// transplant. A fully-covered uniform chunk (every huge-page extent)
// retags in O(1). Frames are retagged in order; the first unallocated
// frame aborts with the same error (and partial effect) a SetOwner loop
// has.
func (pm *PhysMem) SetOwnerRange(start MFN, count uint64, owner Owner, vm int) error {
	pm.mu.Lock()
	defer pm.mu.Unlock()
	end := uint64(start) + count
	limit := end
	if limit > pm.totalFrames {
		limit = pm.totalFrames
	}
	for f := uint64(start); f < limit; {
		c := chunkOf(MFN(f))
		base, size := pm.chunkSpan(c)
		hi := uint64(base) + size
		if hi > limit {
			hi = limit
		}
		if pm.uniform[c] {
			if pm.cOwner[c] == OwnerFree {
				return fmt.Errorf("hw: SetOwner on unallocated frame %#x", f)
			}
			if f == uint64(base) && hi == uint64(base)+size {
				if pm.cOwner[c] != owner || pm.cVM[c] != int32(vm) {
					pm.byOwner[pm.cOwner[c]] -= size
					pm.byOwner[owner] += size
					pm.cOwner[c] = owner
					pm.cVM[c] = int32(vm)
				}
				f = hi
				continue
			}
			pm.explode(c)
		}
		for ; f < hi; f++ {
			if pm.owner[f] == OwnerFree {
				return fmt.Errorf("hw: SetOwner on unallocated frame %#x", f)
			}
			pm.byOwner[pm.owner[f]]--
			pm.owner[f] = owner
			pm.vm[f] = int32(vm)
			pm.byOwner[owner]++
		}
	}
	if end > pm.totalFrames {
		return fmt.Errorf("hw: SetOwner on unallocated frame %#x", pm.totalFrames)
	}
	return nil
}

// Write copies data into the frame starting at offset off. It allocates
// backing storage on first touch. Writing past the frame end is an error.
// The payload copy runs outside the lock; concurrent writers must target
// distinct frames. With page dedup enabled, a shared page is unshared
// copy-on-write before mutation and the result is re-interned, so
// sharing never changes what a frame reads back.
func (pm *PhysMem) Write(m MFN, off int, data []byte) error {
	if off < 0 || off+len(data) > PageSize4K {
		return fmt.Errorf("hw: write [%d, %d) outside frame", off, off+len(data))
	}
	pm.mu.Lock()
	if m >= MFN(pm.totalFrames) {
		pm.mu.Unlock()
		return fmt.Errorf("hw: write to unallocated frame %#x", uint64(m))
	}
	if o, _ := pm.frameState(m); o == OwnerFree {
		pm.mu.Unlock()
		return fmt.Errorf("hw: write to unallocated frame %#x", uint64(m))
	}
	p, ok := pm.data[m]
	if !ok {
		p = &page{buf: make([]byte, PageSize4K), refs: 1}
		pm.data[m] = p
		pm.cData[chunkOf(m)]++
	} else if p.refs > 1 {
		// Copy-on-write unshare: other frames keep the shared original.
		p.refs--
		np := &page{buf: make([]byte, PageSize4K), refs: 1}
		copy(np.buf, p.buf)
		pm.data[m] = np
		p = np
	} else if p.interned {
		// Sole owner about to mutate: the intern registration is stale.
		pm.uninternPage(p)
	}
	delete(pm.sums, m)
	dedup := pm.dedup
	pm.mu.Unlock()
	copy(p.buf[off:], data)
	if dedup {
		h := crc64.Checksum(p.buf, crcTable)
		pm.mu.Lock()
		pm.internPage(m, p, h)
		pm.mu.Unlock()
	}
	return nil
}

// internPage registers frame m's freshly-written page under its content
// hash, sharing an existing byte-identical page instead when one is
// registered. pm.mu held.
func (pm *PhysMem) internPage(m MFN, p *page, h uint64) {
	if pm.intern == nil {
		pm.intern = make(map[uint64][]*page)
	}
	for _, q := range pm.intern[h] {
		if q != p && bytes.Equal(q.buf, p.buf) {
			q.refs++
			pm.data[m] = q
			pm.dedupHits++
			return
		}
	}
	p.hash = h
	p.interned = true
	pm.intern[h] = append(pm.intern[h], p)
}

// uninternPage removes p from the content-intern table. pm.mu held.
func (pm *PhysMem) uninternPage(p *page) {
	bucket := pm.intern[p.hash]
	for i, q := range bucket {
		if q == p {
			bucket[i] = bucket[len(bucket)-1]
			bucket = bucket[:len(bucket)-1]
			break
		}
	}
	if len(bucket) == 0 {
		delete(pm.intern, p.hash)
	} else {
		pm.intern[p.hash] = bucket
	}
	p.interned = false
}

// SetPageDedup enables or disables content-hash page dedup. Enabling
// starts interning pages written from now on; disabling stops interning
// but existing shared pages stay safely copy-on-write.
func (pm *PhysMem) SetPageDedup(on bool) {
	pm.mu.Lock()
	defer pm.mu.Unlock()
	pm.dedup = on
}

// PageDedupHits reports how many writes produced a page byte-identical
// to one already resident, and the number of distinct shared pages
// currently interned.
func (pm *PhysMem) PageDedupHits() (hits uint64, interned int) {
	pm.mu.Lock()
	defer pm.mu.Unlock()
	return pm.dedupHits, len(pm.intern)
}

// Read copies length bytes starting at offset off out of the frame.
// Untouched frames read as zeros, matching real RAM handed out by a
// hypervisor.
func (pm *PhysMem) Read(m MFN, off, length int) ([]byte, error) {
	if off < 0 || off+length > PageSize4K {
		return nil, fmt.Errorf("hw: read [%d, %d) outside frame", off, off+length)
	}
	pm.mu.Lock()
	if m >= MFN(pm.totalFrames) {
		pm.mu.Unlock()
		return nil, fmt.Errorf("hw: read from unallocated frame %#x", uint64(m))
	}
	if o, _ := pm.frameState(m); o == OwnerFree {
		pm.mu.Unlock()
		return nil, fmt.Errorf("hw: read from unallocated frame %#x", uint64(m))
	}
	p := pm.data[m]
	pm.mu.Unlock()
	out := make([]byte, length)
	if p != nil {
		copy(out, p.buf[off:off+length])
	}
	return out, nil
}

// ReadInto copies len(dst) bytes from the frame starting at offset off
// into dst, without allocating. Untouched frames read as zeros.
func (pm *PhysMem) ReadInto(m MFN, off int, dst []byte) error {
	if off < 0 || off+len(dst) > PageSize4K {
		return fmt.Errorf("hw: read [%d, %d) outside frame", off, off+len(dst))
	}
	pm.mu.Lock()
	if m >= MFN(pm.totalFrames) {
		pm.mu.Unlock()
		return fmt.Errorf("hw: read from unallocated frame %#x", uint64(m))
	}
	if o, _ := pm.frameState(m); o == OwnerFree {
		pm.mu.Unlock()
		return fmt.Errorf("hw: read from unallocated frame %#x", uint64(m))
	}
	p := pm.data[m]
	pm.mu.Unlock()
	if p != nil {
		copy(dst, p.buf[off:off+len(dst)])
	} else {
		clear(dst)
	}
	return nil
}

// Touched reports whether the frame has ever been written (untouched
// frames are logically zero and need no migration traffic).
func (pm *PhysMem) Touched(m MFN) bool {
	pm.mu.Lock()
	defer pm.mu.Unlock()
	_, ok := pm.data[m]
	return ok
}

// Checksum returns a CRC-64 of the frame's contents. Untouched frames
// checksum as all-zero pages. Results are cached per frame until the
// next write, so repeated full-memory sweeps only pay for dirty frames.
func (pm *PhysMem) Checksum(m MFN) (uint64, error) {
	pm.mu.Lock()
	if m >= MFN(pm.totalFrames) {
		pm.mu.Unlock()
		return 0, fmt.Errorf("hw: checksum of unallocated frame %#x", uint64(m))
	}
	if o, _ := pm.frameState(m); o == OwnerFree {
		pm.mu.Unlock()
		return 0, fmt.Errorf("hw: checksum of unallocated frame %#x", uint64(m))
	}
	if sum, ok := pm.sums[m]; ok {
		pm.mu.Unlock()
		return sum, nil
	}
	p := pm.data[m]
	pm.mu.Unlock()
	if p == nil {
		return zeroPageSum, nil
	}
	// The hash runs outside the lock; the same distinct-frames contract
	// that makes the payload copy in Write safe applies here.
	sum := crc64.Checksum(p.buf, crcTable)
	pm.mu.Lock()
	pm.sums[m] = sum
	pm.mu.Unlock()
	return sum, nil
}

var (
	zeroPage    [PageSize4K]byte
	zeroPageSum = crc64.Checksum(zeroPage[:], crcTable)
)

// Wipe zeroes and frees every allocated frame whose MFN is not in keep.
// It returns the number of frames wiped. This is the destructive half of
// the kexec micro-reboot: only explicitly preserved memory survives.
func (pm *PhysMem) Wipe(keep map[MFN]bool) int {
	pm.mu.Lock()
	defer pm.mu.Unlock()
	wiped := 0
	for c := range pm.uniform {
		if pm.uniform[c] && pm.cOwner[c] == OwnerFree {
			continue
		}
		base, size := pm.chunkSpan(c)
		kept := 0
		for i := uint64(0); i < size; i++ {
			if keep[base+MFN(i)] {
				kept++
			}
		}
		switch {
		case kept == 0:
			wiped += pm.wipeChunk(c)
		default:
			if pm.uniform[c] {
				pm.explode(c)
			}
			for i := uint64(0); i < size; i++ {
				m := base + MFN(i)
				if pm.owner[m] == OwnerFree || keep[m] {
					continue
				}
				pm.freeFrame(m)
				wiped++
			}
			pm.collapseIfFree(c)
		}
	}
	return wiped
}

// wipeChunk frees every allocated frame of chunk c (no keep set) and
// re-summarizes it as uniformly free. pm.mu held.
func (pm *PhysMem) wipeChunk(c int) int {
	base, size := pm.chunkSpan(c)
	var wiped int
	if pm.uniform[c] {
		wiped = int(pm.cAlloc[c])
		pm.byOwner[pm.cOwner[c]] -= uint64(pm.cAlloc[c])
		pm.allocated -= uint64(pm.cAlloc[c])
	} else {
		for i := uint64(0); i < size; i++ {
			m := base + MFN(i)
			if pm.owner[m] == OwnerFree {
				continue
			}
			pm.byOwner[pm.owner[m]]--
			pm.allocated--
			wiped++
		}
	}
	for m := base; pm.cData[c] > 0 && uint64(m) < uint64(base)+size; m++ {
		pm.releaseDataAt(m, c)
	}
	pm.uniform[c] = true
	pm.cOwner[c] = OwnerFree
	pm.cVM[c] = 0
	pm.cAlloc[c] = 0
	return wiped
}

// WipeRanges is Wipe with the keep set expressed as sorted, disjoint
// [start, start+count) frame runs. Chunks wholly outside the keep set
// are wiped at summary granularity and chunks wholly inside it are
// skipped, so a micro-reboot preserving huge-page guests costs
// O(chunks), not O(frames).
func (pm *PhysMem) WipeRanges(keep []FrameRange) int {
	pm.mu.Lock()
	defer pm.mu.Unlock()
	wiped := 0
	ki := 0
	for c := range pm.uniform {
		base, size := pm.chunkSpan(c)
		end := uint64(base) + size
		for ki < len(keep) && uint64(keep[ki].Start)+keep[ki].Count <= uint64(base) {
			ki++
		}
		if pm.uniform[c] && pm.cOwner[c] == OwnerFree {
			continue
		}
		if ki >= len(keep) || uint64(keep[ki].Start) >= end {
			// No keep range touches this chunk.
			wiped += pm.wipeChunk(c)
			continue
		}
		// Fully covered by keep ranges? Walk the ranges across the chunk.
		covered := true
		pos := uint64(base)
		for j := ki; pos < end; j++ {
			if j >= len(keep) || uint64(keep[j].Start) > pos {
				covered = false
				break
			}
			pos = uint64(keep[j].Start) + keep[j].Count
		}
		if covered {
			continue
		}
		// Partial overlap: per-frame, with a chunk-local range index.
		if pm.uniform[c] {
			pm.explode(c)
		}
		j := ki
		for m := base; uint64(m) < end; m++ {
			for j < len(keep) && uint64(m) >= uint64(keep[j].Start)+keep[j].Count {
				j++
			}
			if j < len(keep) && m >= keep[j].Start {
				continue
			}
			if pm.owner[m] == OwnerFree {
				continue
			}
			pm.freeFrame(m)
			wiped++
		}
		pm.collapseIfFree(c)
	}
	return wiped
}

// FrameRange is a contiguous run of machine frames.
type FrameRange struct {
	Start MFN
	Count uint64
}

// FramesByOwner returns the sorted MFNs currently tagged with owner.
func (pm *PhysMem) FramesByOwner(owner Owner) []MFN {
	pm.mu.Lock()
	defer pm.mu.Unlock()
	var out []MFN
	for c := range pm.uniform {
		base, size := pm.chunkSpan(c)
		if pm.uniform[c] {
			if pm.cOwner[c] == owner {
				for i := uint64(0); i < size; i++ {
					out = append(out, base+MFN(i))
				}
			}
			continue
		}
		for i := uint64(0); i < size; i++ {
			if pm.owner[base+MFN(i)] == owner {
				out = append(out, base+MFN(i))
			}
		}
	}
	return out
}

// CountByOwner returns the number of frames per owner category — the
// memory-separation census of Fig. 2.
func (pm *PhysMem) CountByOwner() map[Owner]uint64 {
	pm.mu.Lock()
	defer pm.mu.Unlock()
	out := make(map[Owner]uint64)
	for o := Owner(1); o < numOwners; o++ {
		if pm.byOwner[o] > 0 {
			out[o] = pm.byOwner[o]
		}
	}
	return out
}
