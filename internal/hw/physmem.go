// Package hw models the physical machines of the paper's testbed: sparse
// frame-granular physical memory, machine profiles (M1, M2, cluster nodes)
// and the calibrated per-phase cost models that give the simulation its
// virtual-time behaviour.
//
// Physical memory is the ground truth the whole reproduction hangs on:
// guests write real bytes into frames, PRAM metadata is serialized into
// frames, and the kexec micro-reboot wipes every frame that is not
// explicitly preserved. "Guest State survives transplant" is therefore a
// checkable property, not an assumption.
package hw

import (
	"fmt"
	"hash/crc64"
	"sync"
)

// Page geometry. The simulation uses the x86-64 4 KiB base page and the
// 2 MiB huge page the paper's guests are configured with.
const (
	PageSize4K = 4096
	PageSize2M = 2 << 20
	// FramesPer2M is the number of base frames covered by one huge page.
	FramesPer2M = PageSize2M / PageSize4K
)

// MFN is a machine frame number: an index into host physical memory in
// units of 4 KiB frames.
type MFN uint64

// GFN is a guest frame number: an index into a guest physical address
// space in units of 4 KiB frames.
type GFN uint64

// Addr returns the byte address of the frame's first byte.
func (m MFN) Addr() uint64 { return uint64(m) * PageSize4K }

// Owner identifies which of the paper's four memory-separation categories
// (Fig. 2) a frame belongs to, so that the transplant engine and kexec can
// reason about what must be translated, preserved, or wiped.
type Owner uint8

const (
	// OwnerFree marks an unallocated frame.
	OwnerFree Owner = iota
	// OwnerGuest is Guest State: guest-managed memory, hypervisor
	// independent, kept in place across InPlaceTP.
	OwnerGuest
	// OwnerVMState is VM_i State: per-VM hypervisor structures (NPT,
	// vCPU contexts) that must be translated through UISR.
	OwnerVMState
	// OwnerVMMgmt is VM Management State: scheduler queues and other
	// structures rebuilt (not translated) after transplant.
	OwnerVMMgmt
	// OwnerHV is HV State: hypervisor-private memory reinitialized by
	// the micro-reboot.
	OwnerHV
	// OwnerPRAM marks frames holding PRAM metadata pages.
	OwnerPRAM
	// OwnerKexecImage marks frames holding the preloaded target
	// hypervisor image.
	OwnerKexecImage

	numOwners
)

var ownerNames = [...]string{"free", "guest", "vmstate", "vmmgmt", "hv", "pram", "kexec-image"}

func (o Owner) String() string {
	if int(o) < len(ownerNames) {
		return ownerNames[o]
	}
	return fmt.Sprintf("owner(%d)", uint8(o))
}

// PhysMem is the physical memory of one machine. Ownership tags are dense
// arrays (multi-GB guests are cheap to allocate); page *contents* are a
// sparse map populated only for frames actually written, so untouched
// guest pages cost nothing and read as zeros.
//
// Concurrency: all methods are safe to call from the internal/par worker
// pools, with one contract — concurrent Read/Write/Checksum calls must
// target *distinct* frames (the mutex guards the bookkeeping, while page
// payload copies run outside it so parallel page writes actually scale).
// Allocation and wiping take the full lock and are typically kept in
// sequential stages so frame assignment stays deterministic.
type PhysMem struct {
	mu          sync.Mutex
	totalFrames uint64
	owner       []Owner
	vm          []int32
	data        map[MFN][]byte
	// sums caches per-frame CRC-64s so audit-style full-memory checksums
	// only re-hash frames written since the last pass. Entries are
	// invalidated on Write/Free/Wipe under pm.mu.
	sums      map[MFN]uint64
	next      MFN // bump cursor for allocation
	allocated uint64
	byOwner   [numOwners]uint64
}

var crcTable = crc64.MakeTable(crc64.ECMA)

// NewPhysMem creates a physical memory of size bytes (rounded down to a
// whole number of frames).
func NewPhysMem(size uint64) *PhysMem {
	n := size / PageSize4K
	return &PhysMem{
		totalFrames: n,
		owner:       make([]Owner, n),
		vm:          make([]int32, n),
		data:        make(map[MFN][]byte),
		sums:        make(map[MFN]uint64),
	}
}

// TotalFrames returns the machine's frame count.
func (pm *PhysMem) TotalFrames() uint64 { return pm.totalFrames }

// AllocatedFrames returns the number of currently allocated frames.
func (pm *PhysMem) AllocatedFrames() uint64 {
	pm.mu.Lock()
	defer pm.mu.Unlock()
	return pm.allocated
}

// FreeFrames returns the number of unallocated frames.
func (pm *PhysMem) FreeFrames() uint64 {
	pm.mu.Lock()
	defer pm.mu.Unlock()
	return pm.totalFrames - pm.allocated
}

// freeFramesLocked is FreeFrames for callers already holding pm.mu.
func (pm *PhysMem) freeFramesLocked() uint64 { return pm.totalFrames - pm.allocated }

func (pm *PhysMem) take(m MFN, owner Owner, vm int) {
	pm.owner[m] = owner
	pm.vm[m] = int32(vm)
	pm.allocated++
	pm.byOwner[owner]++
}

// Alloc allocates n frames for the given owner and VM id. Frames are
// assigned from a bump cursor that wraps, which — combined with frames
// freed and reallocated over a machine's lifetime — leaves VM memory
// scattered rather than contiguous, as the paper observes (§4.2.2).
func (pm *PhysMem) Alloc(n int, owner Owner, vm int) ([]MFN, error) {
	if owner == OwnerFree {
		return nil, fmt.Errorf("hw: cannot allocate with OwnerFree")
	}
	pm.mu.Lock()
	defer pm.mu.Unlock()
	if uint64(n) > pm.freeFramesLocked() {
		return nil, fmt.Errorf("hw: out of memory: want %d frames, %d free", n, pm.freeFramesLocked())
	}
	out := make([]MFN, 0, n)
	for len(out) < n {
		m := pm.next
		pm.next = (pm.next + 1) % MFN(pm.totalFrames)
		if pm.owner[m] != OwnerFree {
			continue
		}
		pm.take(m, owner, vm)
		out = append(out, m)
	}
	return out, nil
}

// Alloc2M allocates one 2 MiB-aligned run of 512 contiguous frames,
// returning the first MFN. Huge allocations scan for an aligned free run.
func (pm *PhysMem) Alloc2M(owner Owner, vm int) (MFN, error) {
	if owner == OwnerFree {
		return 0, fmt.Errorf("hw: cannot allocate with OwnerFree")
	}
	pm.mu.Lock()
	defer pm.mu.Unlock()
	if FramesPer2M > pm.freeFramesLocked() {
		return 0, fmt.Errorf("hw: out of memory for 2M page")
	}
	start := (pm.next + FramesPer2M - 1) / FramesPer2M * FramesPer2M
	nRuns := pm.totalFrames / FramesPer2M
	for tries := uint64(0); tries < nRuns; tries++ {
		base := (start + MFN(tries*FramesPer2M)) % MFN(nRuns*FramesPer2M)
		ok := true
		for i := MFN(0); i < FramesPer2M; i++ {
			if pm.owner[base+i] != OwnerFree {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		for i := MFN(0); i < FramesPer2M; i++ {
			pm.take(base+i, owner, vm)
		}
		pm.next = (base + FramesPer2M) % MFN(pm.totalFrames)
		return base, nil
	}
	return 0, fmt.Errorf("hw: no aligned 2M run available (fragmentation)")
}

// Free releases a frame. Freeing an unallocated frame is an error: it
// indicates double-free bugs in a hypervisor model.
func (pm *PhysMem) Free(m MFN) error {
	pm.mu.Lock()
	defer pm.mu.Unlock()
	if m >= MFN(pm.totalFrames) || pm.owner[m] == OwnerFree {
		return fmt.Errorf("hw: double free of frame %#x", uint64(m))
	}
	pm.byOwner[pm.owner[m]]--
	pm.owner[m] = OwnerFree
	pm.vm[m] = 0
	pm.allocated--
	delete(pm.data, m)
	delete(pm.sums, m)
	return nil
}

// OwnerOf reports a frame's owner tag (OwnerFree if unallocated) and
// owning VM id.
func (pm *PhysMem) OwnerOf(m MFN) (Owner, int) {
	pm.mu.Lock()
	defer pm.mu.Unlock()
	if m >= MFN(pm.totalFrames) || pm.owner[m] == OwnerFree {
		return OwnerFree, -1
	}
	return pm.owner[m], int(pm.vm[m])
}

// SetOwner retags an allocated frame. Used when the target hypervisor
// adopts preserved guest frames after a micro-reboot.
func (pm *PhysMem) SetOwner(m MFN, owner Owner, vm int) error {
	pm.mu.Lock()
	defer pm.mu.Unlock()
	if m >= MFN(pm.totalFrames) || pm.owner[m] == OwnerFree {
		return fmt.Errorf("hw: SetOwner on unallocated frame %#x", uint64(m))
	}
	pm.byOwner[pm.owner[m]]--
	pm.owner[m] = owner
	pm.vm[m] = int32(vm)
	pm.byOwner[owner]++
	return nil
}

// SetOwnerRange retags the contiguous run [start, start+count) in one
// critical section — the bulk path behind hv.AddressSpace.Retag, where a
// per-frame SetOwner would pay millions of lock round-trips per
// transplant. Frames are retagged in order; the first unallocated frame
// aborts with the same error (and partial effect) a SetOwner loop has.
func (pm *PhysMem) SetOwnerRange(start MFN, count uint64, owner Owner, vm int) error {
	pm.mu.Lock()
	defer pm.mu.Unlock()
	for i := uint64(0); i < count; i++ {
		m := start + MFN(i)
		if m >= MFN(pm.totalFrames) || pm.owner[m] == OwnerFree {
			return fmt.Errorf("hw: SetOwner on unallocated frame %#x", uint64(m))
		}
		pm.byOwner[pm.owner[m]]--
		pm.owner[m] = owner
		pm.vm[m] = int32(vm)
		pm.byOwner[owner]++
	}
	return nil
}

// Write copies data into the frame starting at offset off. It allocates
// backing storage on first touch. Writing past the frame end is an error.
// The payload copy runs outside the lock; concurrent writers must target
// distinct frames.
func (pm *PhysMem) Write(m MFN, off int, data []byte) error {
	if off < 0 || off+len(data) > PageSize4K {
		return fmt.Errorf("hw: write [%d, %d) outside frame", off, off+len(data))
	}
	pm.mu.Lock()
	if m >= MFN(pm.totalFrames) || pm.owner[m] == OwnerFree {
		pm.mu.Unlock()
		return fmt.Errorf("hw: write to unallocated frame %#x", uint64(m))
	}
	page, ok := pm.data[m]
	if !ok {
		page = make([]byte, PageSize4K)
		pm.data[m] = page
	}
	delete(pm.sums, m)
	pm.mu.Unlock()
	copy(page[off:], data)
	return nil
}

// Read copies length bytes starting at offset off out of the frame.
// Untouched frames read as zeros, matching real RAM handed out by a
// hypervisor.
func (pm *PhysMem) Read(m MFN, off, length int) ([]byte, error) {
	if off < 0 || off+length > PageSize4K {
		return nil, fmt.Errorf("hw: read [%d, %d) outside frame", off, off+length)
	}
	pm.mu.Lock()
	if m >= MFN(pm.totalFrames) || pm.owner[m] == OwnerFree {
		pm.mu.Unlock()
		return nil, fmt.Errorf("hw: read from unallocated frame %#x", uint64(m))
	}
	page := pm.data[m]
	pm.mu.Unlock()
	out := make([]byte, length)
	if page != nil {
		copy(out, page[off:off+length])
	}
	return out, nil
}

// ReadInto copies len(dst) bytes from the frame starting at offset off
// into dst, without allocating. Untouched frames read as zeros.
func (pm *PhysMem) ReadInto(m MFN, off int, dst []byte) error {
	if off < 0 || off+len(dst) > PageSize4K {
		return fmt.Errorf("hw: read [%d, %d) outside frame", off, off+len(dst))
	}
	pm.mu.Lock()
	if m >= MFN(pm.totalFrames) || pm.owner[m] == OwnerFree {
		pm.mu.Unlock()
		return fmt.Errorf("hw: read from unallocated frame %#x", uint64(m))
	}
	page := pm.data[m]
	pm.mu.Unlock()
	if page != nil {
		copy(dst, page[off:off+len(dst)])
	} else {
		clear(dst)
	}
	return nil
}

// Touched reports whether the frame has ever been written (untouched
// frames are logically zero and need no migration traffic).
func (pm *PhysMem) Touched(m MFN) bool {
	pm.mu.Lock()
	defer pm.mu.Unlock()
	_, ok := pm.data[m]
	return ok
}

// Checksum returns a CRC-64 of the frame's contents. Untouched frames
// checksum as all-zero pages. Results are cached per frame until the
// next write, so repeated full-memory sweeps only pay for dirty frames.
func (pm *PhysMem) Checksum(m MFN) (uint64, error) {
	pm.mu.Lock()
	if m >= MFN(pm.totalFrames) || pm.owner[m] == OwnerFree {
		pm.mu.Unlock()
		return 0, fmt.Errorf("hw: checksum of unallocated frame %#x", uint64(m))
	}
	if sum, ok := pm.sums[m]; ok {
		pm.mu.Unlock()
		return sum, nil
	}
	page := pm.data[m]
	pm.mu.Unlock()
	if page == nil {
		return zeroPageSum, nil
	}
	// The hash runs outside the lock; the same distinct-frames contract
	// that makes the payload copy in Write safe applies here.
	sum := crc64.Checksum(page, crcTable)
	pm.mu.Lock()
	pm.sums[m] = sum
	pm.mu.Unlock()
	return sum, nil
}

var (
	zeroPage    [PageSize4K]byte
	zeroPageSum = crc64.Checksum(zeroPage[:], crcTable)
)

// Wipe zeroes and frees every allocated frame whose MFN is not in keep.
// It returns the number of frames wiped. This is the destructive half of
// the kexec micro-reboot: only explicitly preserved memory survives.
func (pm *PhysMem) Wipe(keep map[MFN]bool) int {
	pm.mu.Lock()
	defer pm.mu.Unlock()
	wiped := 0
	for m := MFN(0); m < MFN(pm.totalFrames); m++ {
		if pm.owner[m] == OwnerFree || keep[m] {
			continue
		}
		pm.byOwner[pm.owner[m]]--
		pm.owner[m] = OwnerFree
		pm.vm[m] = 0
		pm.allocated--
		delete(pm.data, m)
		delete(pm.sums, m)
		wiped++
	}
	return wiped
}

// WipeRanges is Wipe with the keep set expressed as sorted, disjoint
// [start, start+count) frame runs; it avoids materializing a per-frame
// map when preserving multi-GB guests.
func (pm *PhysMem) WipeRanges(keep []FrameRange) int {
	pm.mu.Lock()
	defer pm.mu.Unlock()
	wiped := 0
	ki := 0
	for m := MFN(0); m < MFN(pm.totalFrames); m++ {
		for ki < len(keep) && m >= keep[ki].Start+MFN(keep[ki].Count) {
			ki++
		}
		if ki < len(keep) && m >= keep[ki].Start {
			continue
		}
		if pm.owner[m] == OwnerFree {
			continue
		}
		pm.byOwner[pm.owner[m]]--
		pm.owner[m] = OwnerFree
		pm.vm[m] = 0
		pm.allocated--
		delete(pm.data, m)
		delete(pm.sums, m)
		wiped++
	}
	return wiped
}

// FrameRange is a contiguous run of machine frames.
type FrameRange struct {
	Start MFN
	Count uint64
}

// FramesByOwner returns the sorted MFNs currently tagged with owner.
func (pm *PhysMem) FramesByOwner(owner Owner) []MFN {
	pm.mu.Lock()
	defer pm.mu.Unlock()
	var out []MFN
	for m := MFN(0); m < MFN(pm.totalFrames); m++ {
		if pm.owner[m] == owner {
			out = append(out, m)
		}
	}
	return out
}

// CountByOwner returns the number of frames per owner category — the
// memory-separation census of Fig. 2.
func (pm *PhysMem) CountByOwner() map[Owner]uint64 {
	pm.mu.Lock()
	defer pm.mu.Unlock()
	out := make(map[Owner]uint64)
	for o := Owner(1); o < numOwners; o++ {
		if pm.byOwner[o] > 0 {
			out[o] = pm.byOwner[o]
		}
	}
	return out
}
