// Package checkpoint implements the §4.5.2 "guest state saving" and
// "guest state restoring" driver operations as a durable format: a
// suspended VM is serialized — UISR platform state plus every touched
// guest page — into a self-validating byte image that can be stored, then
// restored later on *any* HyperTP-compliant hypervisor. It is the cold
// path complementing InPlaceTP (same host, live) and MigrationTP (other
// host, live): other host, offline, no shared link required.
package checkpoint

import (
	"encoding/binary"
	"fmt"
	"hash/crc64"

	"hypertp/internal/hv"
	"hypertp/internal/hw"
	"hypertp/internal/uisr"
)

// Format constants.
const (
	magic   = 0x54504b43 // "CKPT"
	version = 1
)

var crcTable = crc64.MakeTable(crc64.ECMA)

// Image is a captured VM checkpoint.
type Image struct {
	// State is the VM's UISR platform state (no memory map — frame
	// placement is meaningless off-host).
	State *uisr.VMState
	// Pages holds the touched guest pages; untouched pages are zero by
	// contract and omitted.
	Pages []PageRecord
	// InPlaceCompatible carries the scheduling property across.
	InPlaceCompatible bool
}

// PageRecord is one guest page's contents.
type PageRecord struct {
	GFN  hw.GFN
	Data []byte // always hw.PageSize4K long
}

// Save captures a paused VM into an image. The VM itself is left
// untouched (still paused, still resident); destroying it is the
// caller's decision, as with Nova's suspend.
func Save(h hv.Hypervisor, id hv.VMID) (*Image, error) {
	vm, ok := h.LookupVM(id)
	if !ok {
		return nil, fmt.Errorf("checkpoint: no VM %d", id)
	}
	if !vm.Paused() {
		return nil, fmt.Errorf("checkpoint: VM %q must be paused", vm.Config.Name)
	}
	st, err := h.SaveUISR(id)
	if err != nil {
		return nil, err
	}
	st.MemMap = nil
	img := &Image{State: st, InPlaceCompatible: vm.Config.InPlaceCompatible}

	// Capture touched pages through the address space.
	mem := h.Machine().Mem
	for _, e := range vm.Space.Extents() {
		for p := uint64(0); p < e.Pages(); p++ {
			mfn := hw.MFN(e.MFN + p)
			if !mem.Touched(mfn) {
				continue
			}
			data, err := mem.Read(mfn, 0, hw.PageSize4K)
			if err != nil {
				return nil, err
			}
			img.Pages = append(img.Pages, PageRecord{GFN: hw.GFN(e.GFN + p), Data: data})
		}
	}
	return img, nil
}

// Restore instantiates the image on the destination hypervisor. The VM
// comes back paused with fresh memory filled from the recorded pages;
// the caller attaches a guest stack (if it kept one) and resumes.
func Restore(h hv.Hypervisor, img *Image) (*hv.VM, error) {
	if img == nil || img.State == nil {
		return nil, fmt.Errorf("checkpoint: empty image")
	}
	vm, err := h.RestoreUISR(img.State, hv.RestoreOptions{
		Mode:              hv.RestoreAllocate,
		InPlaceCompatible: img.InPlaceCompatible,
	})
	if err != nil {
		return nil, err
	}
	for _, pr := range img.Pages {
		if err := vm.Space.WritePage(pr.GFN, 0, pr.Data); err != nil {
			return nil, fmt.Errorf("checkpoint: replay page %d: %w", pr.GFN, err)
		}
	}
	return vm, nil
}

// Serialize encodes the image into the durable on-disk format:
//
//	magic u32 | version u16 | flags u16 | uisrLen u32 | uisr bytes
//	| pageCount u32 | { gfn u64 | 4096 bytes }* | crc64 u64
//
// The trailing checksum covers everything before it.
func Serialize(img *Image) ([]byte, error) {
	blob, err := uisr.Encode(img.State)
	if err != nil {
		return nil, err
	}
	size := 12 + len(blob) + 4 + len(img.Pages)*(8+hw.PageSize4K) + 8
	out := make([]byte, 0, size)
	le := binary.LittleEndian

	var hdr [12]byte
	le.PutUint32(hdr[0:], magic)
	le.PutUint16(hdr[4:], version)
	flags := uint16(0)
	if img.InPlaceCompatible {
		flags |= 1
	}
	le.PutUint16(hdr[6:], flags)
	le.PutUint32(hdr[8:], uint32(len(blob)))
	out = append(out, hdr[:]...)
	out = append(out, blob...)

	var cnt [4]byte
	le.PutUint32(cnt[:], uint32(len(img.Pages)))
	out = append(out, cnt[:]...)
	for _, pr := range img.Pages {
		if len(pr.Data) != hw.PageSize4K {
			return nil, fmt.Errorf("checkpoint: page %d has %d bytes", pr.GFN, len(pr.Data))
		}
		var g [8]byte
		le.PutUint64(g[:], uint64(pr.GFN))
		out = append(out, g[:]...)
		out = append(out, pr.Data...)
	}
	var sum [8]byte
	le.PutUint64(sum[:], crc64.Checksum(out, crcTable))
	return append(out, sum[:]...), nil
}

// Deserialize parses and validates a serialized image. Any corruption —
// framing or checksum — is an error; a transplant system must never
// resume a guest from a damaged image.
func Deserialize(data []byte) (*Image, error) {
	le := binary.LittleEndian
	if len(data) < 12+4+8 {
		return nil, fmt.Errorf("checkpoint: image too short (%d bytes)", len(data))
	}
	body, sumBytes := data[:len(data)-8], data[len(data)-8:]
	if crc64.Checksum(body, crcTable) != le.Uint64(sumBytes) {
		return nil, fmt.Errorf("checkpoint: checksum mismatch — image corrupt")
	}
	if le.Uint32(body[0:]) != magic {
		return nil, fmt.Errorf("checkpoint: bad magic %#x", le.Uint32(body[0:]))
	}
	if v := le.Uint16(body[4:]); v != version {
		return nil, fmt.Errorf("checkpoint: unsupported version %d", v)
	}
	flags := le.Uint16(body[6:])
	uisrLen := int(le.Uint32(body[8:]))
	off := 12
	if off+uisrLen+4 > len(body) {
		return nil, fmt.Errorf("checkpoint: truncated UISR section")
	}
	st, err := uisr.Decode(body[off : off+uisrLen])
	if err != nil {
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	off += uisrLen
	n := int(le.Uint32(body[off:]))
	off += 4
	if off+n*(8+hw.PageSize4K) != len(body) {
		return nil, fmt.Errorf("checkpoint: page section size mismatch")
	}
	img := &Image{State: st, InPlaceCompatible: flags&1 != 0}
	for i := 0; i < n; i++ {
		gfn := hw.GFN(le.Uint64(body[off:]))
		off += 8
		page := make([]byte, hw.PageSize4K)
		copy(page, body[off:off+hw.PageSize4K])
		off += hw.PageSize4K
		img.Pages = append(img.Pages, PageRecord{GFN: gfn, Data: page})
	}
	return img, nil
}

// Bytes returns the image's serialized size without materializing it.
func (img *Image) Bytes() (int, error) {
	n, err := uisr.EncodedSize(img.State)
	if err != nil {
		return 0, err
	}
	return 12 + n + 4 + len(img.Pages)*(8+hw.PageSize4K) + 8, nil
}
