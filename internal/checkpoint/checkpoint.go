// Package checkpoint implements the §4.5.2 "guest state saving" and
// "guest state restoring" driver operations as a durable format: a
// suspended VM is serialized — UISR platform state plus every touched
// guest page — into a self-validating byte image that can be stored, then
// restored later on *any* HyperTP-compliant hypervisor. It is the cold
// path complementing InPlaceTP (same host, live) and MigrationTP (other
// host, live): other host, offline, no shared link required.
package checkpoint

import (
	"encoding/binary"
	"fmt"
	"hash/crc64"

	"hypertp/internal/hv"
	"hypertp/internal/hw"
	"hypertp/internal/par"
	"hypertp/internal/uisr"
)

// Format constants.
const (
	magic   = 0x54504b43 // "CKPT"
	version = 1
)

var crcTable = crc64.MakeTable(crc64.ECMA)

// Image is a captured VM checkpoint.
type Image struct {
	// State is the VM's UISR platform state (no memory map — frame
	// placement is meaningless off-host).
	State *uisr.VMState
	// Pages holds the touched guest pages; untouched pages are zero by
	// contract and omitted.
	Pages []PageRecord
	// InPlaceCompatible carries the scheduling property across.
	InPlaceCompatible bool
}

// PageRecord is one guest page's contents.
type PageRecord struct {
	GFN  hw.GFN
	Data []byte // always hw.PageSize4K long
}

// Save captures a paused VM into an image. The VM itself is left
// untouched (still paused, still resident); destroying it is the
// caller's decision, as with Nova's suspend.
func Save(h hv.Hypervisor, id hv.VMID) (*Image, error) {
	vm, ok := h.LookupVM(id)
	if !ok {
		return nil, fmt.Errorf("checkpoint: no VM %d", id)
	}
	if !vm.Paused() {
		return nil, fmt.Errorf("checkpoint: VM %q must be paused", vm.Config.Name)
	}
	st, err := h.SaveUISR(id)
	if err != nil {
		return nil, err
	}
	st.MemMap = nil
	img := &Image{State: st, InPlaceCompatible: vm.Config.InPlaceCompatible}

	// Capture touched pages through the address space: extents are
	// independent, so capture fans out per extent and the per-extent page
	// lists concatenate in extent order — the same record order the
	// sequential walk produced.
	mem := h.Machine().Mem
	perExtent, err := par.Map(vm.Space.Extents(), func(_ int, e uisr.PageExtent) ([]PageRecord, error) {
		var recs []PageRecord
		for p := uint64(0); p < e.Pages(); p++ {
			mfn := hw.MFN(e.MFN + p)
			if !mem.Touched(mfn) {
				continue
			}
			data, err := mem.Read(mfn, 0, hw.PageSize4K)
			if err != nil {
				return nil, err
			}
			recs = append(recs, PageRecord{GFN: hw.GFN(e.GFN + p), Data: data})
		}
		return recs, nil
	})
	if err != nil {
		return nil, err
	}
	for _, recs := range perExtent {
		img.Pages = append(img.Pages, recs...)
	}
	return img, nil
}

// Restore instantiates the image on the destination hypervisor. The VM
// comes back paused with fresh memory filled from the recorded pages;
// the caller attaches a guest stack (if it kept one) and resumes.
func Restore(h hv.Hypervisor, img *Image) (*hv.VM, error) {
	if img == nil || img.State == nil {
		return nil, fmt.Errorf("checkpoint: empty image")
	}
	vm, err := h.RestoreUISR(img.State, hv.RestoreOptions{
		Mode:              hv.RestoreAllocate,
		InPlaceCompatible: img.InPlaceCompatible,
	})
	if err != nil {
		return nil, err
	}
	// Records cover distinct pages, so the replay fans out.
	err = par.ForEachSpan(len(img.Pages), func(lo, hi int) error {
		for i := lo; i < hi; i++ {
			pr := img.Pages[i]
			if err := vm.Space.WritePage(pr.GFN, 0, pr.Data); err != nil {
				return fmt.Errorf("checkpoint: replay page %d: %w", pr.GFN, err)
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return vm, nil
}

// Serialize encodes the image into the durable on-disk format:
//
//	magic u32 | version u16 | flags u16 | uisrLen u32 | uisr bytes
//	| pageCount u32 | { gfn u64 | 4096 bytes }* | crc64 u64
//
// The trailing checksum covers everything before it.
func Serialize(img *Image) ([]byte, error) {
	blob, err := uisr.Encode(img.State)
	if err != nil {
		return nil, err
	}
	// The image size is exact, so the whole output is one allocation
	// written in place; page records land at computed offsets, which lets
	// the bulk page copies fan out on the par pool.
	size := 12 + len(blob) + 4 + len(img.Pages)*(8+hw.PageSize4K) + 8
	out := make([]byte, size)
	le := binary.LittleEndian

	le.PutUint32(out[0:], magic)
	le.PutUint16(out[4:], version)
	flags := uint16(0)
	if img.InPlaceCompatible {
		flags |= 1
	}
	le.PutUint16(out[6:], flags)
	le.PutUint32(out[8:], uint32(len(blob)))
	copy(out[12:], blob)

	pagesOff := 12 + len(blob)
	le.PutUint32(out[pagesOff:], uint32(len(img.Pages)))
	pagesOff += 4
	err = par.ForEachSpan(len(img.Pages), func(lo, hi int) error {
		for i := lo; i < hi; i++ {
			pr := img.Pages[i]
			if len(pr.Data) != hw.PageSize4K {
				return fmt.Errorf("checkpoint: page %d has %d bytes", pr.GFN, len(pr.Data))
			}
			rec := out[pagesOff+i*(8+hw.PageSize4K):]
			le.PutUint64(rec[0:], uint64(pr.GFN))
			copy(rec[8:8+hw.PageSize4K], pr.Data)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	le.PutUint64(out[size-8:], crc64.Checksum(out[:size-8], crcTable))
	return out, nil
}

// Deserialize parses and validates a serialized image. Any corruption —
// framing or checksum — is an error; a transplant system must never
// resume a guest from a damaged image.
func Deserialize(data []byte) (*Image, error) {
	le := binary.LittleEndian
	if len(data) < 12+4+8 {
		return nil, fmt.Errorf("checkpoint: image too short (%d bytes)", len(data))
	}
	body, sumBytes := data[:len(data)-8], data[len(data)-8:]
	if crc64.Checksum(body, crcTable) != le.Uint64(sumBytes) {
		return nil, fmt.Errorf("checkpoint: checksum mismatch — image corrupt")
	}
	if le.Uint32(body[0:]) != magic {
		return nil, fmt.Errorf("checkpoint: bad magic %#x", le.Uint32(body[0:]))
	}
	if v := le.Uint16(body[4:]); v != version {
		return nil, fmt.Errorf("checkpoint: unsupported version %d", v)
	}
	flags := le.Uint16(body[6:])
	uisrLen := int(le.Uint32(body[8:]))
	off := 12
	if off+uisrLen+4 > len(body) {
		return nil, fmt.Errorf("checkpoint: truncated UISR section")
	}
	st, err := uisr.Decode(body[off : off+uisrLen])
	if err != nil {
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	off += uisrLen
	n := int(le.Uint32(body[off:]))
	off += 4
	if off+n*(8+hw.PageSize4K) != len(body) {
		return nil, fmt.Errorf("checkpoint: page section size mismatch")
	}
	img := &Image{State: st, InPlaceCompatible: flags&1 != 0}
	if n > 0 {
		// One backing array for all page contents (instead of one
		// allocation per page), sliced per record; records sit at
		// computed offsets, so the copies fan out.
		img.Pages = make([]PageRecord, n)
		backing := make([]byte, n*hw.PageSize4K)
		err = par.ForEachSpan(n, func(lo, hi int) error {
			for i := lo; i < hi; i++ {
				rec := body[off+i*(8+hw.PageSize4K):]
				page := backing[i*hw.PageSize4K : (i+1)*hw.PageSize4K : (i+1)*hw.PageSize4K]
				copy(page, rec[8:8+hw.PageSize4K])
				img.Pages[i] = PageRecord{GFN: hw.GFN(le.Uint64(rec[0:])), Data: page}
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	return img, nil
}

// Bytes returns the image's serialized size without materializing it.
func (img *Image) Bytes() (int, error) {
	n, err := uisr.EncodedSize(img.State)
	if err != nil {
		return 0, err
	}
	return 12 + n + 4 + len(img.Pages)*(8+hw.PageSize4K) + 8, nil
}
