package checkpoint

import (
	"testing"

	"hypertp/internal/fuzzseed"
	"hypertp/internal/hv"
	"hypertp/internal/hv/xen"
	"hypertp/internal/hw"
	"hypertp/internal/simtime"
)

// fuzzDeserializeSeeds is the shared seed list: f.Add'ed by the fuzz
// target and mirrored into testdata/fuzz/ by TestFuzzSeedCorpus.
func fuzzDeserializeSeeds(tb testing.TB) [][]byte {
	tb.Helper()
	clock := simtime.NewClock()
	x, err := xen.Boot(hw.NewMachine(clock, hw.M1()))
	if err != nil {
		tb.Fatal(err)
	}
	vm, err := x.CreateVM(hv.Config{
		Name: "seed", VCPUs: 1, MemBytes: 32 << 20, HugePages: true, Seed: 3,
	})
	if err != nil {
		tb.Fatal(err)
	}
	vm.Guest.WriteWorkingSet(0, 8)
	x.Pause(vm.ID)
	img, err := Save(x, vm.ID)
	if err != nil {
		tb.Fatal(err)
	}
	valid, err := Serialize(img)
	if err != nil {
		tb.Fatal(err)
	}
	return [][]byte{valid, {}, valid[:24]}
}

func TestFuzzSeedCorpus(t *testing.T) {
	fuzzseed.Check(t, "FuzzDeserialize", fuzzDeserializeSeeds(t)...)
}

// FuzzDeserialize: the checkpoint parser must never panic and never
// accept a corrupted image (the trailing CRC covers the whole body, so
// any mutation must be rejected).
func FuzzDeserialize(f *testing.F) {
	for _, seed := range fuzzDeserializeSeeds(f) {
		f.Add(seed)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := Deserialize(data)
		if err != nil {
			return
		}
		// Anything accepted must round trip.
		re, err := Serialize(got)
		if err != nil {
			t.Fatalf("accepted image does not re-serialize: %v", err)
		}
		if _, err := Deserialize(re); err != nil {
			t.Fatalf("re-serialized image rejected: %v", err)
		}
	})
}
