package checkpoint

import (
	"testing"

	"hypertp/internal/hv"
	"hypertp/internal/hv/kvm"
	"hypertp/internal/hv/xen"
	"hypertp/internal/hw"
	"hypertp/internal/simtime"
)

func newXenWithVM(t *testing.T) (*xen.Xen, *hv.VM) {
	t.Helper()
	clock := simtime.NewClock()
	x, err := xen.Boot(hw.NewMachine(clock, hw.M1()))
	if err != nil {
		t.Fatal(err)
	}
	vm, err := x.CreateVM(hv.Config{
		Name: "ckpt", VCPUs: 2, MemBytes: 64 << 20, HugePages: true,
		Seed: 19, InPlaceCompatible: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := vm.Guest.WriteWorkingSet(0, 120); err != nil {
		t.Fatal(err)
	}
	return x, vm
}

func TestSaveRequiresPause(t *testing.T) {
	x, vm := newXenWithVM(t)
	if _, err := Save(x, vm.ID); err == nil {
		t.Fatal("save of running VM accepted")
	}
	if _, err := Save(x, 99); err == nil {
		t.Fatal("unknown VM accepted")
	}
}

func TestSaveRestoreSameHypervisorKind(t *testing.T) {
	x, vm := newXenWithVM(t)
	g := vm.Guest
	sumBefore, _ := vm.Space.ChecksumAll()
	x.Pause(vm.ID)
	img, err := Save(x, vm.ID)
	if err != nil {
		t.Fatal(err)
	}
	if len(img.Pages) == 0 {
		t.Fatal("no pages captured")
	}
	if !img.InPlaceCompatible {
		t.Fatal("compatibility flag lost")
	}
	// The source VM is untouched by Save.
	if _, ok := x.LookupVM(vm.ID); !ok {
		t.Fatal("Save disturbed the source VM")
	}

	// Cold-restore on a different machine running the same kind.
	clock2 := simtime.NewClock()
	x2, err := xen.Boot(hw.NewMachine(clock2, hw.M1()))
	if err != nil {
		t.Fatal(err)
	}
	restored, err := Restore(x2, img)
	if err != nil {
		t.Fatal(err)
	}
	if !restored.Paused() {
		t.Fatal("restored VM not paused")
	}
	if err := x2.AttachGuest(restored.ID, g); err != nil {
		t.Fatal(err)
	}
	if err := g.Verify(); err != nil {
		t.Fatalf("guest state lost: %v", err)
	}
	sumAfter, _ := restored.Space.ChecksumAll()
	if sumBefore != sumAfter {
		t.Fatal("restored image differs")
	}
}

func TestColdHeterogeneousRestore(t *testing.T) {
	// Suspend on Xen, resume on KVM — no live link involved.
	x, vm := newXenWithVM(t)
	g := vm.Guest
	x.Pause(vm.ID)
	img, err := Save(x, vm.ID)
	if err != nil {
		t.Fatal(err)
	}
	clock2 := simtime.NewClock()
	k, err := kvm.Boot(hw.NewMachine(clock2, hw.M1()))
	if err != nil {
		t.Fatal(err)
	}
	restored, err := Restore(k, img)
	if err != nil {
		t.Fatal(err)
	}
	if err := k.AttachGuest(restored.ID, g); err != nil {
		t.Fatal(err)
	}
	if err := g.Verify(); err != nil {
		t.Fatalf("guest state lost crossing hypervisors cold: %v", err)
	}
	if err := k.Resume(restored.ID); err != nil {
		t.Fatal(err)
	}
}

func TestSerializeDeserializeRoundTrip(t *testing.T) {
	x, vm := newXenWithVM(t)
	x.Pause(vm.ID)
	img, err := Save(x, vm.ID)
	if err != nil {
		t.Fatal(err)
	}
	data, err := Serialize(img)
	if err != nil {
		t.Fatal(err)
	}
	wantLen, err := img.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	if len(data) != wantLen {
		t.Fatalf("serialized %d bytes, Bytes() says %d", len(data), wantLen)
	}
	back, err := Deserialize(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.State.Name != img.State.Name || len(back.Pages) != len(img.Pages) {
		t.Fatal("round trip lost content")
	}
	if !back.InPlaceCompatible {
		t.Fatal("flag lost")
	}
	for i := range img.Pages {
		if back.Pages[i].GFN != img.Pages[i].GFN {
			t.Fatal("page GFNs differ")
		}
		for j := range img.Pages[i].Data {
			if back.Pages[i].Data[j] != img.Pages[i].Data[j] {
				t.Fatal("page bytes differ")
			}
		}
	}
}

func TestDeserializeRejectsCorruption(t *testing.T) {
	x, vm := newXenWithVM(t)
	x.Pause(vm.ID)
	img, _ := Save(x, vm.ID)
	data, _ := Serialize(img)

	// Flip a byte anywhere: the checksum must catch it.
	for _, idx := range []int{0, 5, len(data) / 2, len(data) - 9} {
		bad := append([]byte(nil), data...)
		bad[idx] ^= 0x40
		if _, err := Deserialize(bad); err == nil {
			t.Fatalf("corruption at %d accepted", idx)
		}
	}
	// Truncations.
	for _, cut := range []int{0, 10, len(data) - 1} {
		if _, err := Deserialize(data[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}

func TestRestoreRejectsEmpty(t *testing.T) {
	clock := simtime.NewClock()
	x, _ := xen.Boot(hw.NewMachine(clock, hw.M1()))
	if _, err := Restore(x, nil); err == nil {
		t.Fatal("nil image accepted")
	}
	if _, err := Restore(x, &Image{}); err == nil {
		t.Fatal("empty image accepted")
	}
}

func TestFullSuspendResumeCycleFreesSource(t *testing.T) {
	// The orchestrator-style cycle: pause → save → destroy → (time
	// passes) → restore elsewhere. The source machine gets its memory
	// back.
	x, vm := newXenWithVM(t)
	g := vm.Guest
	mem := x.Machine().Mem
	before := mem.AllocatedFrames()
	_ = before
	x.Pause(vm.ID)
	img, err := Save(x, vm.ID)
	if err != nil {
		t.Fatal(err)
	}
	data, err := Serialize(img)
	if err != nil {
		t.Fatal(err)
	}
	if err := x.DestroyVM(vm.ID); err != nil {
		t.Fatal(err)
	}
	if got := mem.CountByOwner()[hw.OwnerGuest]; got != 0 {
		t.Fatalf("%d guest frames remain after destroy", got)
	}

	img2, err := Deserialize(data)
	if err != nil {
		t.Fatal(err)
	}
	clock2 := simtime.NewClock()
	k, _ := kvm.Boot(hw.NewMachine(clock2, hw.M1()))
	restored, err := Restore(k, img2)
	if err != nil {
		t.Fatal(err)
	}
	if err := k.AttachGuest(restored.ID, g); err != nil {
		t.Fatal(err)
	}
	if err := g.Verify(); err != nil {
		t.Fatalf("state lost across the full cycle: %v", err)
	}
}
