package pram

import (
	"reflect"
	"testing"
	"testing/quick"

	"hypertp/internal/hw"
	"hypertp/internal/uisr"
)

func newMem() *hw.PhysMem { return hw.NewPhysMem(4 << 30) }

// hugeFile builds a File describing memGiB of 2 MiB-backed guest memory
// with extents at arbitrary (but aligned) machine locations.
func hugeFile(mem *hw.PhysMem, name string, vmid uint32, memGiB int) File {
	f := File{Name: name, VMID: vmid}
	n := uint64(memGiB) * (1 << 30) / hw.PageSize2M
	for i := uint64(0); i < n; i++ {
		base, err := mem.Alloc2M(hw.OwnerGuest, int(vmid))
		if err != nil {
			panic(err)
		}
		f.Extents = append(f.Extents, uisr.PageExtent{
			GFN: i * hw.FramesPer2M, MFN: uint64(base), Order: 9,
		})
	}
	return f
}

func TestBuildParseRoundTrip(t *testing.T) {
	mem := newMem()
	files := []File{
		hugeFile(mem, "vm-a", 1, 1),
		hugeFile(mem, "vm-b", 2, 1),
	}
	s, err := Build(mem, files, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	parsed, err := Parse(mem, s.Pointer)
	if err != nil {
		t.Fatal(err)
	}
	if len(parsed.Files) != 2 {
		t.Fatalf("parsed %d files", len(parsed.Files))
	}
	for i := range files {
		if parsed.Files[i].Name != files[i].Name || parsed.Files[i].VMID != files[i].VMID {
			t.Fatalf("file %d identity mismatch", i)
		}
		if !reflect.DeepEqual(parsed.Files[i].Extents, files[i].Extents) {
			t.Fatalf("file %d extents mismatch", i)
		}
	}
	if len(parsed.MetaFrames) != len(s.MetaFrames) {
		t.Fatalf("parsed %d meta frames, built %d", len(parsed.MetaFrames), len(s.MetaFrames))
	}
}

// Fig. 14 anchors: PRAM metadata is 16 KB for one 1 GiB VM, 60 KB for one
// 12 GiB VM, 148 KB for twelve 1 GiB VMs (all 2 MiB-backed).
func TestMetadataBytesMatchFig14(t *testing.T) {
	cases := []struct {
		vms, gib int
		want     uint64
	}{
		{1, 1, 16 << 10},
		{1, 12, 60 << 10},
		{12, 1, 148 << 10},
	}
	for _, tc := range cases {
		mem := hw.NewPhysMem(32 << 30)
		var files []File
		for v := 0; v < tc.vms; v++ {
			files = append(files, hugeFile(mem, "vm", uint32(v+1), tc.gib))
		}
		s, err := Build(mem, files, BuildOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if got := s.MetadataBytes(); got != tc.want {
			t.Errorf("%d VMs x %d GiB: metadata = %d bytes, want %d",
				tc.vms, tc.gib, got, tc.want)
		}
	}
}

func TestSplitHugePagesAblation(t *testing.T) {
	mem := newMem()
	f := hugeFile(mem, "vm", 1, 1)
	withHuge, err := Build(mem, []File{f}, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	split, err := Build(mem, []File{f}, BuildOptions{SplitHugePages: true})
	if err != nil {
		t.Fatal(err)
	}
	// 1 GiB as 4K entries: 262144 entries x 8 B ≈ 2 MiB of metadata —
	// the paper's "2 megabytes per GB in the all-4K worst case".
	if split.MetadataBytes() < 100*withHuge.MetadataBytes() {
		t.Fatalf("split metadata %d not ≫ huge metadata %d",
			split.MetadataBytes(), withHuge.MetadataBytes())
	}
	if split.MetadataBytes() < 2<<20 || split.MetadataBytes() > 3<<20 {
		t.Fatalf("split metadata = %d, want ~2 MiB", split.MetadataBytes())
	}
	// The parsed content must still describe the same memory.
	parsed, err := Parse(mem, split.Pointer)
	if err != nil {
		t.Fatal(err)
	}
	if parsed.Files[0].Bytes() != f.Bytes() {
		t.Fatal("split file covers different bytes")
	}
}

func TestEntryPackingRoundTrip(t *testing.T) {
	f := func(gfnRaw, mfnRaw uint32, orderRaw uint8) bool {
		order := orderRaw % 10
		e := uisr.PageExtent{
			GFN:   uint64(gfnRaw>>4) << order,
			MFN:   uint64(mfnRaw) << order,
			Order: order,
		}
		raw, err := packEntry(e)
		if err != nil {
			return false
		}
		return unpackEntry(raw) == e
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPackEntryRejectsBad(t *testing.T) {
	if _, err := packEntry(uisr.PageExtent{Order: 16}); err == nil {
		t.Fatal("order 16 accepted")
	}
	if _, err := packEntry(uisr.PageExtent{GFN: 1, MFN: 512, Order: 9}); err == nil {
		t.Fatal("misaligned gfn accepted")
	}
	if _, err := packEntry(uisr.PageExtent{GFN: 1 << 40, Order: 0}); err == nil {
		t.Fatal("oversized gfn accepted")
	}
}

func TestBuildRejectsEmpty(t *testing.T) {
	mem := newMem()
	if _, err := Build(mem, nil, BuildOptions{}); err == nil {
		t.Fatal("empty file list accepted")
	}
	if _, err := Build(mem, []File{{Name: "x"}}, BuildOptions{}); err == nil {
		t.Fatal("file without extents accepted")
	}
}

func TestBuildRejectsLongName(t *testing.T) {
	mem := newMem()
	f := hugeFile(mem, "vm", 1, 1)
	f.Name = string(make([]byte, 100))
	if _, err := Build(mem, []File{f}, BuildOptions{}); err == nil {
		t.Fatal("long name accepted")
	}
}

func TestParseRejectsCorruption(t *testing.T) {
	mem := newMem()
	s, err := Build(mem, []File{hugeFile(mem, "vm", 1, 1)}, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt the root magic.
	mem.Write(s.Pointer, 0, []byte{0xde, 0xad})
	if _, err := Parse(mem, s.Pointer); err == nil {
		t.Fatal("corrupt root accepted")
	}
}

func TestParseRejectsEntryCountMismatch(t *testing.T) {
	mem := newMem()
	s, err := Build(mem, []File{hugeFile(mem, "vm", 1, 1)}, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// The file info page is allocated right after the node chain; its
	// entry count lives at offset 16. Find it by scanning PRAM frames.
	for _, m := range s.MetaFrames {
		head, _ := mem.Read(m, 0, 8)
		var magic uint64
		for i := 7; i >= 0; i-- {
			magic = magic<<8 | uint64(head[i])
		}
		if magic == fileMagic {
			mem.Write(m, 16, []byte{0xff})
		}
	}
	if _, err := Parse(mem, s.Pointer); err == nil {
		t.Fatal("entry count mismatch accepted")
	}
}

func TestParseRejectsCycle(t *testing.T) {
	mem := newMem()
	s, err := Build(mem, []File{hugeFile(mem, "vm", 1, 2)}, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Point the first node's next pointer back at itself. Node pages
	// are the first allocations, so MetaFrames[0] is a node.
	var buf [8]byte
	v := uint64(s.MetaFrames[0])
	for i := range buf {
		buf[i] = byte(v >> (8 * i))
	}
	mem.Write(s.MetaFrames[0], 8, buf[:])
	if _, err := Parse(mem, s.Pointer); err == nil {
		t.Fatal("metadata cycle accepted")
	}
}

func TestFrameRangesCoverGuestAndMetadata(t *testing.T) {
	mem := newMem()
	f := hugeFile(mem, "vm", 1, 1)
	s, err := Build(mem, []File{f}, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ranges := s.FrameRanges()
	var total uint64
	for i, r := range ranges {
		total += r.Count
		if i > 0 && ranges[i-1].Start+hw.MFN(ranges[i-1].Count) > r.Start {
			t.Fatal("ranges overlap or unsorted")
		}
	}
	wantGuest := uint64(1<<30) / hw.PageSize4K
	wantMeta := uint64(len(s.MetaFrames))
	if total != wantGuest+wantMeta {
		t.Fatalf("ranges cover %d frames, want %d", total, wantGuest+wantMeta)
	}
}

func TestRelease(t *testing.T) {
	mem := newMem()
	f := hugeFile(mem, "vm", 1, 1)
	before := mem.AllocatedFrames()
	s, err := Build(mem, []File{f}, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Release(mem); err != nil {
		t.Fatal(err)
	}
	if mem.AllocatedFrames() != before {
		t.Fatal("metadata frames leaked")
	}
}

func TestManyFilesMultipleRootPages(t *testing.T) {
	mem := hw.NewPhysMem(8 << 30)
	var files []File
	// More files than fit in one root directory page (509).
	for i := 0; i < filePointersPerRoot+3; i++ {
		mfns, err := mem.Alloc(1, hw.OwnerGuest, i)
		if err != nil {
			t.Fatal(err)
		}
		files = append(files, File{
			Name: "tiny", VMID: uint32(i),
			Extents: []uisr.PageExtent{{GFN: 0, MFN: uint64(mfns[0]), Order: 0}},
		})
	}
	s, err := Build(mem, files, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	parsed, err := Parse(mem, s.Pointer)
	if err != nil {
		t.Fatal(err)
	}
	if len(parsed.Files) != len(files) {
		t.Fatalf("parsed %d files, want %d", len(parsed.Files), len(files))
	}
}

// Property: build→parse is the identity for random small VM layouts.
func TestPropertyBuildParse(t *testing.T) {
	f := func(nVMsRaw, nExtRaw uint8) bool {
		mem := hw.NewPhysMem(4 << 30)
		nVMs := int(nVMsRaw%4) + 1
		nExt := int(nExtRaw%8) + 1
		var files []File
		for v := 0; v < nVMs; v++ {
			f := File{Name: "vm", VMID: uint32(v + 1)}
			for e := 0; e < nExt; e++ {
				base, err := mem.Alloc2M(hw.OwnerGuest, v+1)
				if err != nil {
					return false
				}
				f.Extents = append(f.Extents, uisr.PageExtent{
					GFN: uint64(e) * hw.FramesPer2M, MFN: uint64(base), Order: 9,
				})
			}
			files = append(files, f)
		}
		s, err := Build(mem, files, BuildOptions{})
		if err != nil {
			return false
		}
		parsed, err := Parse(mem, s.Pointer)
		if err != nil {
			return false
		}
		if len(parsed.Files) != nVMs {
			return false
		}
		for i := range files {
			if !reflect.DeepEqual(parsed.Files[i].Extents, files[i].Extents) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
