package pram

import (
	"sync"

	"hypertp/internal/hw"
	"hypertp/internal/par"
)

// Snapshot memoizes built PRAM structures for repeat transplants of the
// same host. A structure's metadata pages are a pure function of the
// fileset (names, VM ids, extents) and the frames the builder was
// handed, so when the same fileset comes back — the steady state of a
// fleet ping-ponging between two hypervisor kinds — and the allocator
// hands back the same frames, the cached page images can be written
// directly, skipping layout and serialization. If the frames differ the
// replay is abandoned and the cold builder runs; the result is
// byte-identical either way.
//
// Snapshots only skip wall-clock work. Virtual-time PRAM costs are
// charged by the engine from the cost model and are identical with or
// without a snapshot.
type Snapshot struct {
	mu      sync.Mutex
	entries map[uint64]*snapEntry
	order   []uint64 // insertion order, for bounded eviction
	hits    uint64
	misses  uint64
}

type snapEntry struct {
	metaFrames []hw.MFN
	pointer    hw.MFN
	images     [][]byte
	ranges     []hw.FrameRange
}

// maxSnapshotEntries bounds one machine's cached structures: a host in
// steady state cycles between two filesets (memory maps only, then
// memory maps + UISR blobs, per direction).
const maxSnapshotEntries = 8

// NewSnapshot creates an empty PRAM build snapshot.
func NewSnapshot() *Snapshot {
	return &Snapshot{entries: make(map[uint64]*snapEntry)}
}

// Stats reports how many Build calls replayed a cached structure vs
// built cold.
func (s *Snapshot) Stats() (hits, misses uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.hits, s.misses
}

// filesKey fingerprints a fileset (plus the layout-changing option) for
// snapshot lookup. A 64-bit mix over every field that reaches the
// serialized pages.
func filesKey(files []File, split bool) uint64 {
	h := uint64(0x9e3779b97f4a7c15)
	mix := func(v uint64) {
		h ^= v + 0x9e3779b97f4a7c15 + (h << 12) + (h >> 4)
		h *= 0xff51afd7ed558ccd
	}
	if split {
		mix(1)
	}
	mix(uint64(len(files)))
	for i := range files {
		f := &files[i]
		mix(uint64(len(f.Name)))
		for j := 0; j < len(f.Name); j++ {
			mix(uint64(f.Name[j]))
		}
		mix(uint64(f.VMID))
		mix(uint64(len(f.Extents)))
		for _, e := range f.Extents {
			mix(e.GFN)
			mix(e.MFN)
			mix(uint64(e.Order))
		}
	}
	return h
}

// tryReplay attempts to satisfy a Build from the snapshot by claiming
// the exact frames the cached build occupied — the structure pages were
// released after the last handover, so in steady state they are free
// again even though the bump cursor has long moved past them. It returns
// (structure, true) on success; (nil, false) falls back to the cold
// builder. If any cached frame is occupied the claim is undone and the
// replay reported as a miss — the cached images embed these frames'
// addresses, so they cannot be relocated.
func (s *Snapshot) tryReplay(mem *hw.PhysMem, files []File, key uint64) (*Structure, bool) {
	s.mu.Lock()
	e := s.entries[key]
	if e == nil {
		s.misses++
		s.mu.Unlock()
		return nil, false
	}
	s.mu.Unlock()
	runs := frameRuns(e.metaFrames)
	for i, r := range runs {
		if err := mem.ClaimRange(r.Start, r.Count, hw.OwnerPRAM, -1); err != nil {
			for _, u := range runs[:i] {
				_ = mem.FreeRange(u.Start, u.Count)
			}
			s.mu.Lock()
			s.misses++
			s.mu.Unlock()
			return nil, false
		}
	}
	if err := par.ForEach(len(e.metaFrames), func(i int) error {
		return mem.Write(e.metaFrames[i], 0, e.images[i])
	}); err != nil {
		return nil, false
	}
	s.mu.Lock()
	s.hits++
	s.mu.Unlock()
	return &Structure{
		Pointer:    e.pointer,
		MetaFrames: append([]hw.MFN(nil), e.metaFrames...),
		Files:      files,
		ranges:     e.ranges,
	}, true
}

// capture records a cold build's result: the metadata page images are
// read back from memory (they were just written, so this is the exact
// byte content a replay will reproduce) along with the preserve ranges.
func (s *Snapshot) capture(mem *hw.PhysMem, st *Structure, key uint64) {
	e := &snapEntry{
		metaFrames: append([]hw.MFN(nil), st.MetaFrames...),
		pointer:    st.Pointer,
		images:     make([][]byte, len(st.MetaFrames)),
		ranges:     st.FrameRanges(),
	}
	for i, m := range st.MetaFrames {
		buf := make([]byte, hw.PageSize4K)
		if err := mem.ReadInto(m, 0, buf); err != nil {
			return
		}
		e.images[i] = buf
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, exists := s.entries[key]; !exists {
		s.order = append(s.order, key)
		if len(s.order) > maxSnapshotEntries {
			delete(s.entries, s.order[0])
			s.order = s.order[1:]
		}
	}
	s.entries[key] = e
}

// frameRuns coalesces an ordered frame list into contiguous runs.
func frameRuns(frames []hw.MFN) []hw.FrameRange {
	var out []hw.FrameRange
	for _, f := range frames {
		if n := len(out); n > 0 && out[n-1].Start+hw.MFN(out[n-1].Count) == f {
			out[n-1].Count++
			continue
		}
		out = append(out, hw.FrameRange{Start: f, Count: 1})
	}
	return out
}
