package pram

import (
	"testing"

	"hypertp/internal/fuzzseed"
	"hypertp/internal/hw"
	"hypertp/internal/uisr"
)

// fuzzParseSeeds is the shared seed list: f.Add'ed by the fuzz target
// and mirrored into testdata/fuzz/ by TestFuzzSeedCorpus.
func fuzzParseSeeds(tb testing.TB) [][]byte {
	tb.Helper()
	// Seed: a valid structure's first metadata pages.
	mem := hw.NewPhysMem(64 << 20)
	fr := hugeSeedFile(mem)
	s, err := Build(mem, []File{fr}, BuildOptions{})
	if err != nil {
		tb.Fatal(err)
	}
	var seed []byte
	for _, m := range s.MetaFrames {
		page, _ := mem.Read(m, 0, hw.PageSize4K)
		seed = append(seed, page...)
	}
	return [][]byte{seed, {}, seed[:100]}
}

func TestFuzzSeedCorpus(t *testing.T) {
	fuzzseed.Check(t, "FuzzParse", fuzzParseSeeds(t)...)
}

// FuzzParse: the boot-time PRAM parser reads whatever survived the
// micro-reboot; it must never panic, hang, or accept a structure whose
// internal accounting is inconsistent, no matter what bytes it finds.
func FuzzParse(f *testing.F) {
	for _, seed := range fuzzParseSeeds(f) {
		f.Add(seed)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		// Lay the fuzz bytes out as consecutive frames starting at 0 of
		// a fresh memory and parse from frame 0.
		fm := hw.NewPhysMem(8 << 20)
		nFrames := (len(data) + hw.PageSize4K - 1) / hw.PageSize4K
		if nFrames == 0 {
			nFrames = 1
		}
		if nFrames > int(fm.TotalFrames()) {
			nFrames = int(fm.TotalFrames())
		}
		frames, err := fm.Alloc(nFrames, hw.OwnerPRAM, -1)
		if err != nil {
			t.Skip()
		}
		for i, m := range frames {
			lo := i * hw.PageSize4K
			hi := lo + hw.PageSize4K
			if hi > len(data) {
				hi = len(data)
			}
			if lo < hi {
				fm.Write(m, 0, data[lo:hi])
			}
		}
		parsed, err := Parse(fm, frames[0])
		if err != nil {
			return
		}
		// Accepted structures must be internally consistent.
		for _, file := range parsed.Files {
			if len(file.Extents) == 0 {
				t.Fatal("accepted file with no extents")
			}
		}
	})
}

func hugeSeedFile(mem *hw.PhysMem) File {
	f := File{Name: "seed", VMID: 1}
	for i := uint64(0); i < 4; i++ {
		base, err := mem.Alloc2M(hw.OwnerGuest, 1)
		if err != nil {
			panic(err)
		}
		f.Extents = append(f.Extents, uisr.PageExtent{
			GFN: i * hw.FramesPer2M, MFN: uint64(base), Order: 9,
		})
	}
	return f
}
