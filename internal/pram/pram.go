// Package pram implements the PRAM structure of the paper (§4.2.2,
// Fig. 4): a persistent-over-kexec filesystem-like structure that records
// each VM's guest memory map so the target hypervisor can find and adopt
// Guest State after the micro-reboot.
//
// The structure is built from 4 KiB metadata pages written into simulated
// physical memory (owner tag hw.OwnerPRAM):
//
//	PRAM pointer ─→ root directory page ─→ (chain of root pages)
//	                  │ file pointers
//	                  ▼
//	                file info page (one per VM)
//	                  │ first-node pointer
//	                  ▼
//	                node page ─→ node page ─→ …
//	                  │ page entries (8 bytes each)
//
// Each page entry packs (GFN, MFN, order) into 8 bytes — the paper's
// "8-byte records for every VM's memory page" — which is what produces
// the Fig. 14 overhead numbers: 4 KiB of entries per GiB of 2 MiB-backed
// guest memory, plus three fixed metadata pages per structure/VM.
package pram

import (
	"encoding/binary"
	"fmt"
	"sort"
	"sync"

	"hypertp/internal/hw"
	"hypertp/internal/par"
	"hypertp/internal/uisr"
)

// pagePool recycles 4 KiB scratch buffers for metadata-page serialization,
// so building a structure allocates O(files) instead of O(metadata pages).
// Buffers are returned zeroed, ready for the next writer.
var pagePool = sync.Pool{
	New: func() any {
		b := make([]byte, hw.PageSize4K)
		return &b
	},
}

func getPage() *[]byte { return pagePool.Get().(*[]byte) }

func putPage(p *[]byte) {
	clear(*p)
	pagePool.Put(p)
}

// Page-level layout constants.
const (
	rootMagic uint64 = 0x4d4152506f6f72 // "rooPRAM"
	fileMagic uint64 = 0x4d415250656c69 // "ilePRAM"
	nodeMagic uint64 = 0x4d415250646f6e // "nodPRAM"

	rootHeaderSize = 24 // magic, next, count
	nodeHeaderSize = 32 // magic, next, count, reserved
	// EntriesPerNode is how many 8-byte page entries fit in one node
	// page after its header.
	EntriesPerNode = (hw.PageSize4K - nodeHeaderSize) / 8
	// filePointersPerRoot is how many file-info pointers fit in one
	// root directory page.
	filePointersPerRoot = (hw.PageSize4K - rootHeaderSize) / 8

	// maxNameLen is the file (VM) name field width in a file info page.
	maxNameLen = 64
)

// Entry packing: order in the low 4 bits, then GFN/2^order in 28 bits,
// then MFN/2^order in the top 32 bits. Orders above 15 are rejected.
const (
	orderBits = 4
	gfnBits   = 28
	gfnShift  = orderBits
	mfnShift  = orderBits + gfnBits
)

func packEntry(e uisr.PageExtent) (uint64, error) {
	if e.Order >= 1<<orderBits {
		return 0, fmt.Errorf("pram: order %d too large", e.Order)
	}
	g := e.GFN >> e.Order
	m := e.MFN >> e.Order
	if g>>gfnBits != 0 {
		return 0, fmt.Errorf("pram: gfn %d does not fit entry encoding", e.GFN)
	}
	if m>>32 != 0 {
		return 0, fmt.Errorf("pram: mfn %d does not fit entry encoding", e.MFN)
	}
	if e.GFN%e.Pages() != 0 || e.MFN%e.Pages() != 0 {
		return 0, fmt.Errorf("pram: extent gfn %d/mfn %d misaligned for order %d", e.GFN, e.MFN, e.Order)
	}
	return uint64(e.Order) | g<<gfnShift | m<<mfnShift, nil
}

func unpackEntry(raw uint64) uisr.PageExtent {
	order := uint8(raw & (1<<orderBits - 1))
	g := (raw >> gfnShift) & (1<<gfnBits - 1)
	m := raw >> mfnShift
	return uisr.PageExtent{GFN: g << order, MFN: m << order, Order: order}
}

// File is one VM's memory image as recorded in PRAM.
type File struct {
	Name    string
	VMID    uint32
	Extents []uisr.PageExtent
}

// Bytes returns the guest memory size the file covers.
func (f *File) Bytes() uint64 {
	var n uint64
	for _, e := range f.Extents {
		n += e.Pages() * hw.PageSize4K
	}
	return n
}

// Structure is a built PRAM instance resident in physical memory.
type Structure struct {
	// Pointer is the machine frame of the first root directory page —
	// the "PRAM pointer" handed to the target hypervisor on its boot
	// command line.
	Pointer hw.MFN
	// MetaFrames are all metadata frames in allocation order.
	MetaFrames []hw.MFN
	// Files are the recorded VM images.
	Files []File
	// ranges memoizes FrameRanges; populated by snapshot replay/capture.
	ranges []hw.FrameRange
}

// MetadataBytes returns the PRAM structure's own memory footprint — the
// quantity plotted in Fig. 14.
func (s *Structure) MetadataBytes() uint64 {
	return uint64(len(s.MetaFrames)) * hw.PageSize4K
}

// FrameRanges returns the frame runs that must survive the micro-reboot:
// the metadata pages and every guest frame the entries reference.
func (s *Structure) FrameRanges() []hw.FrameRange {
	if s.ranges != nil {
		return s.ranges
	}
	var out []hw.FrameRange
	for _, m := range s.MetaFrames {
		out = append(out, hw.FrameRange{Start: m, Count: 1})
	}
	for _, f := range s.Files {
		for _, e := range f.Extents {
			out = append(out, hw.FrameRange{Start: hw.MFN(e.MFN), Count: e.Pages()})
		}
	}
	return normalizeRanges(out)
}

// BuildOptions tune PRAM construction; the defaults match the paper's
// optimized configuration (§4.2.5).
type BuildOptions struct {
	// SplitHugePages disables the huge-page adaptation: order-9 extents
	// are recorded as 512 individual 4 KiB entries. Used by the
	// ablation experiments; costs ~512x metadata and parse time.
	SplitHugePages bool
	// Snapshot, when non-nil, memoizes the built structure per fileset:
	// a repeat build of an identical fileset that lands on the same
	// frames replays the cached metadata pages instead of re-serializing
	// them. The result is byte-identical to a cold build.
	Snapshot *Snapshot
}

// Build serializes the memory maps of the given files into a PRAM
// structure in mem. Metadata frames are tagged hw.OwnerPRAM.
//
// Construction is staged so the structure is bit-identical for any worker
// count: frame allocation runs sequentially in the legacy order (per file,
// node frames then the info page; then the root chain), fixing every MFN;
// then the now-independent metadata pages are serialized in parallel on
// the par worker pool.
func Build(mem *hw.PhysMem, files []File, opts BuildOptions) (*Structure, error) {
	if len(files) == 0 {
		return nil, fmt.Errorf("pram: no files to record")
	}
	var snapKey uint64
	if opts.Snapshot != nil {
		snapKey = filesKey(files, opts.SplitHugePages)
		if st, ok := opts.Snapshot.tryReplay(mem, files, snapKey); ok {
			return st, nil
		}
	}
	s := &Structure{}
	alloc := func() (hw.MFN, error) {
		fr, err := mem.Alloc(1, hw.OwnerPRAM, -1)
		if err != nil {
			return 0, err
		}
		s.MetaFrames = append(s.MetaFrames, fr[0])
		return fr[0], nil
	}

	// Stage 1 — sequential allocation and layout. Each closure appended to
	// jobs writes exactly one already-placed metadata page.
	var jobs []func() error
	infoPages := make([]hw.MFN, 0, len(files))
	for fi := range files {
		f := &files[fi]
		if len(f.Name) > maxNameLen {
			return nil, fmt.Errorf("pram: file name %q too long", f.Name)
		}
		extents := f.Extents
		if opts.SplitHugePages {
			extents = splitExtents(extents)
		}
		if len(extents) == 0 {
			return nil, fmt.Errorf("pram: file has no extents")
		}
		nNodes := (len(extents) + EntriesPerNode - 1) / EntriesPerNode
		nodes := make([]hw.MFN, nNodes)
		for i := range nodes {
			m, err := alloc()
			if err != nil {
				return nil, err
			}
			nodes[i] = m
		}
		info, err := alloc()
		if err != nil {
			return nil, err
		}
		infoPages = append(infoPages, info)
		for ni := range nodes {
			lo := ni * EntriesPerNode
			hi := lo + EntriesPerNode
			if hi > len(extents) {
				hi = len(extents)
			}
			frame := nodes[ni]
			next := hw.MFN(0)
			if ni+1 < nNodes {
				next = nodes[ni+1]
			}
			chunk := extents[lo:hi]
			jobs = append(jobs, func() error {
				return writeNodePage(mem, frame, next, chunk)
			})
		}
		firstNode, entries := nodes[0], len(extents)
		jobs = append(jobs, func() error {
			return writeFileInfo(mem, info, f, firstNode, entries)
		})
	}
	var roots []hw.MFN
	for i := 0; i < len(infoPages); i += filePointersPerRoot {
		r, err := alloc()
		if err != nil {
			return nil, err
		}
		roots = append(roots, r)
	}
	for ri, root := range roots {
		lo := ri * filePointersPerRoot
		hi := lo + filePointersPerRoot
		if hi > len(infoPages) {
			hi = len(infoPages)
		}
		next := hw.MFN(0)
		if ri+1 < len(roots) {
			next = roots[ri+1]
		}
		root, infos := root, infoPages[lo:hi]
		jobs = append(jobs, func() error {
			return writeRootPage(mem, root, next, infos)
		})
	}

	// Stage 2 — parallel serialization: every job targets a distinct frame.
	if err := par.ForEach(len(jobs), func(i int) error { return jobs[i]() }); err != nil {
		return nil, err
	}
	s.Pointer = roots[0]
	s.Files = files
	if opts.Snapshot != nil {
		opts.Snapshot.capture(mem, s, snapKey)
	}
	return s, nil
}

// Parse reconstructs a PRAM structure from physical memory starting at
// the PRAM pointer. This is what the target hypervisor runs during early
// boot (§4.2.4); it is strict because adopting a corrupt map would hand
// guests the wrong frames.
func Parse(mem *hw.PhysMem, pointer hw.MFN) (*Structure, error) {
	s := &Structure{Pointer: pointer}

	// Stage 1 — walk the root directory chain sequentially (it is a linked
	// list) and collect the file-info pointers per root page.
	type rootPage struct {
		frame hw.MFN
		infos []hw.MFN
	}
	var rootPages []rootPage
	seenRoots := map[hw.MFN]bool{}
	root := pointer
	for root != 0 {
		if seenRoots[root] {
			return nil, fmt.Errorf("pram: metadata cycle at frame %#x", uint64(root))
		}
		seenRoots[root] = true
		page, err := mem.Read(root, 0, hw.PageSize4K)
		if err != nil {
			return nil, fmt.Errorf("pram: root page: %w", err)
		}
		le := binary.LittleEndian
		if le.Uint64(page[0:]) != rootMagic {
			return nil, fmt.Errorf("pram: bad root magic at frame %#x", uint64(root))
		}
		next := hw.MFN(le.Uint64(page[8:]))
		count := int(le.Uint64(page[16:]))
		if count > filePointersPerRoot {
			return nil, fmt.Errorf("pram: root page count %d too large", count)
		}
		rp := rootPage{frame: root, infos: make([]hw.MFN, count)}
		for i := 0; i < count; i++ {
			rp.infos[i] = hw.MFN(le.Uint64(page[rootHeaderSize+8*i:]))
		}
		rootPages = append(rootPages, rp)
		root = next
	}

	// Stage 2 — parse every file in parallel: each walks only its own node
	// chain. Cycle detection within a chain is local; sharing of frames
	// *across* files is caught by the sequential merge below.
	var allInfos []hw.MFN
	for _, rp := range rootPages {
		allInfos = append(allInfos, rp.infos...)
	}
	type parsedFile struct {
		f     *File
		nodes []hw.MFN
	}
	parsed, err := par.Map(allInfos, func(_ int, info hw.MFN) (parsedFile, error) {
		f, nodes, err := parseFile(mem, info)
		return parsedFile{f, nodes}, err
	})
	if err != nil {
		return nil, err
	}

	// Stage 3 — deterministic merge in the legacy visit order (root, then
	// per info: info page, then its node chain), re-running the global
	// duplicate-frame check the sequential parser performed inline.
	seen := map[hw.MFN]bool{}
	visit := func(m hw.MFN) error {
		if seen[m] {
			return fmt.Errorf("pram: metadata cycle at frame %#x", uint64(m))
		}
		seen[m] = true
		s.MetaFrames = append(s.MetaFrames, m)
		return nil
	}
	idx := 0
	for _, rp := range rootPages {
		if err := visit(rp.frame); err != nil {
			return nil, err
		}
		for _, info := range rp.infos {
			if err := visit(info); err != nil {
				return nil, err
			}
			p := parsed[idx]
			idx++
			for _, n := range p.nodes {
				if err := visit(n); err != nil {
					return nil, err
				}
			}
			s.Files = append(s.Files, *p.f)
		}
	}
	if len(s.Files) == 0 {
		return nil, fmt.Errorf("pram: structure records no files")
	}
	return s, nil
}

// Release frees all metadata frames: step ❼ of Fig. 3, returning the
// ephemeral memory after resume.
func (s *Structure) Release(mem *hw.PhysMem) error {
	for _, r := range frameRuns(s.MetaFrames) {
		if err := mem.FreeRange(r.Start, r.Count); err != nil {
			return err
		}
	}
	s.MetaFrames = nil
	return nil
}

// --- page writers ------------------------------------------------------------

func writeRootPage(mem *hw.PhysMem, frame, next hw.MFN, infos []hw.MFN) error {
	pp := getPage()
	defer putPage(pp)
	page := *pp
	le := binary.LittleEndian
	le.PutUint64(page[0:], rootMagic)
	le.PutUint64(page[8:], uint64(next))
	le.PutUint64(page[16:], uint64(len(infos)))
	for i, m := range infos {
		le.PutUint64(page[rootHeaderSize+8*i:], uint64(m))
	}
	return mem.Write(frame, 0, page)
}

func writeFileInfo(mem *hw.PhysMem, frame hw.MFN, f *File, firstNode hw.MFN, entries int) error {
	pp := getPage()
	defer putPage(pp)
	page := *pp
	le := binary.LittleEndian
	le.PutUint64(page[0:], fileMagic)
	le.PutUint64(page[8:], uint64(firstNode))
	le.PutUint64(page[16:], uint64(entries))
	le.PutUint64(page[24:], f.Bytes())
	le.PutUint32(page[32:], f.VMID)
	le.PutUint32(page[36:], uint32(len(f.Name)))
	copy(page[40:40+maxNameLen], f.Name)
	return mem.Write(frame, 0, page)
}

// writeNodePage serializes one node page of a chain: its extents chunk and
// the already-assigned frame of the next node.
func writeNodePage(mem *hw.PhysMem, frame, next hw.MFN, extents []uisr.PageExtent) error {
	pp := getPage()
	defer putPage(pp)
	page := *pp
	le := binary.LittleEndian
	le.PutUint64(page[0:], nodeMagic)
	le.PutUint64(page[8:], uint64(next))
	le.PutUint64(page[16:], uint64(len(extents)))
	for i, e := range extents {
		raw, err := packEntry(e)
		if err != nil {
			return err
		}
		le.PutUint64(page[nodeHeaderSize+8*i:], raw)
	}
	return mem.Write(frame, 0, page)
}

// parseFile reads one file-info page and walks its node chain, returning
// the file and the node frames in chain order.
func parseFile(mem *hw.PhysMem, info hw.MFN) (*File, []hw.MFN, error) {
	page, err := mem.Read(info, 0, hw.PageSize4K)
	if err != nil {
		return nil, nil, fmt.Errorf("pram: file info page: %w", err)
	}
	le := binary.LittleEndian
	if le.Uint64(page[0:]) != fileMagic {
		return nil, nil, fmt.Errorf("pram: bad file magic at frame %#x", uint64(info))
	}
	node := hw.MFN(le.Uint64(page[8:]))
	wantEntries := int(le.Uint64(page[16:]))
	wantBytes := le.Uint64(page[24:])
	f := &File{VMID: le.Uint32(page[32:])}
	nameLen := int(le.Uint32(page[36:]))
	if nameLen > maxNameLen {
		return nil, nil, fmt.Errorf("pram: file name length %d too large", nameLen)
	}
	f.Name = string(page[40 : 40+nameLen])
	// The info page records the entry count, so the extents slice can be
	// sized once instead of grown through repeated appends.
	if wantEntries > 0 {
		f.Extents = make([]uisr.PageExtent, 0, wantEntries)
	}

	var nodes []hw.MFN
	local := map[hw.MFN]bool{}
	for node != 0 {
		if local[node] {
			return nil, nil, fmt.Errorf("pram: metadata cycle at frame %#x", uint64(node))
		}
		local[node] = true
		nodes = append(nodes, node)
		npage, err := mem.Read(node, 0, hw.PageSize4K)
		if err != nil {
			return nil, nil, fmt.Errorf("pram: node page: %w", err)
		}
		if le.Uint64(npage[0:]) != nodeMagic {
			return nil, nil, fmt.Errorf("pram: bad node magic at frame %#x", uint64(node))
		}
		next := hw.MFN(le.Uint64(npage[8:]))
		count := int(le.Uint64(npage[16:]))
		if count > EntriesPerNode {
			return nil, nil, fmt.Errorf("pram: node entry count %d too large", count)
		}
		for i := 0; i < count; i++ {
			raw := le.Uint64(npage[nodeHeaderSize+8*i:])
			f.Extents = append(f.Extents, unpackEntry(raw))
		}
		node = next
	}
	if len(f.Extents) != wantEntries {
		return nil, nil, fmt.Errorf("pram: file %q has %d entries, info page says %d",
			f.Name, len(f.Extents), wantEntries)
	}
	if f.Bytes() != wantBytes {
		return nil, nil, fmt.Errorf("pram: file %q covers %d bytes, info page says %d",
			f.Name, f.Bytes(), wantBytes)
	}
	return f, nodes, nil
}

// splitExtents expands huge extents into order-0 entries (the
// non-huge-page ablation).
func splitExtents(in []uisr.PageExtent) []uisr.PageExtent {
	var out []uisr.PageExtent
	for _, e := range in {
		if e.Order == 0 {
			out = append(out, e)
			continue
		}
		for p := uint64(0); p < e.Pages(); p++ {
			out = append(out, uisr.PageExtent{GFN: e.GFN + p, MFN: e.MFN + p, Order: 0})
		}
	}
	return out
}

// normalizeRanges sorts and merges frame ranges.
func normalizeRanges(in []hw.FrameRange) []hw.FrameRange {
	if len(in) == 0 {
		return in
	}
	sortRanges(in)
	out := in[:1]
	for _, r := range in[1:] {
		last := &out[len(out)-1]
		if last.Start+hw.MFN(last.Count) >= r.Start {
			end := r.Start + hw.MFN(r.Count)
			if end > last.Start+hw.MFN(last.Count) {
				last.Count = uint64(end - last.Start)
			}
			continue
		}
		out = append(out, r)
	}
	return out
}

func sortRanges(rs []hw.FrameRange) {
	sort.Slice(rs, func(i, j int) bool { return rs[i].Start < rs[j].Start })
}
