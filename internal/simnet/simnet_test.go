package simnet

import (
	"errors"
	"testing"
	"testing/quick"
	"time"

	"hypertp/internal/fault"
	"hypertp/internal/hterr"
	"hypertp/internal/simtime"
)

const gb = int64(1) << 30

func TestSingleTransferTime(t *testing.T) {
	c := simtime.NewClock()
	l := NewLink(c, "lan", Gbps1, 0)
	var doneAt time.Duration
	l.Start("vm0", gb, func(err error) {
		if err != nil {
			t.Errorf("done err = %v", err)
		}
		doneAt = c.Now()
	})
	c.Run()
	// 1 GiB over 1 Gbps = 1073741824 / 125e6 = 8.59 s.
	want := time.Duration(float64(gb) / float64(Gbps1) * float64(time.Second))
	if diff := doneAt - want; diff < -time.Millisecond || diff > time.Millisecond {
		t.Fatalf("transfer finished at %v, want ~%v", doneAt, want)
	}
}

func TestTransferTimeClosedForm(t *testing.T) {
	c := simtime.NewClock()
	l := NewLink(c, "lan", Gbps10, 100*time.Microsecond)
	got := l.TransferTime(10 * gb)
	want := 100*time.Microsecond + time.Duration(float64(10*gb)/float64(Gbps10)*float64(time.Second))
	if got != want {
		t.Fatalf("TransferTime = %v, want %v", got, want)
	}
}

func TestConcurrentTransfersShareBandwidth(t *testing.T) {
	c := simtime.NewClock()
	l := NewLink(c, "lan", Gbps1, 0)
	var aDone, bDone time.Duration
	l.Start("a", gb, func(error) { aDone = c.Now() })
	l.Start("b", gb, func(error) { bDone = c.Now() })
	c.Run()
	solo := time.Duration(float64(gb) / float64(Gbps1) * float64(time.Second))
	// Two equal transfers sharing the link both finish at ~2x solo time.
	for _, d := range []time.Duration{aDone, bDone} {
		if diff := d - 2*solo; diff < -5*time.Millisecond || diff > 5*time.Millisecond {
			t.Fatalf("shared transfer finished at %v, want ~%v", d, 2*solo)
		}
	}
}

func TestUnevenTransfers(t *testing.T) {
	c := simtime.NewClock()
	l := NewLink(c, "lan", Gbps1, 0)
	var smallDone, bigDone time.Duration
	l.Start("small", gb, func(error) { smallDone = c.Now() })
	l.Start("big", 3*gb, func(error) { bigDone = c.Now() })
	c.Run()
	solo := float64(gb) / float64(Gbps1)
	// Shared phase: small needs 1 GB at half rate -> 2*solo. Then big has
	// 2 GB left at full rate -> 2*solo more. Total big = 4*solo.
	wantSmall := time.Duration(2 * solo * float64(time.Second))
	wantBig := time.Duration(4 * solo * float64(time.Second))
	if diff := smallDone - wantSmall; diff < -5*time.Millisecond || diff > 5*time.Millisecond {
		t.Fatalf("small finished at %v, want ~%v", smallDone, wantSmall)
	}
	if diff := bigDone - wantBig; diff < -5*time.Millisecond || diff > 5*time.Millisecond {
		t.Fatalf("big finished at %v, want ~%v", bigDone, wantBig)
	}
}

func TestZeroByteTransferCompletesImmediately(t *testing.T) {
	c := simtime.NewClock()
	l := NewLink(c, "lan", Gbps1, 0)
	done := false
	l.Start("empty", 0, func(error) { done = true })
	c.Run()
	if !done {
		t.Fatal("zero-byte transfer did not complete")
	}
	if c.Now() != 0 {
		t.Fatalf("zero-byte transfer took %v", c.Now())
	}
}

func TestAbort(t *testing.T) {
	c := simtime.NewClock()
	l := NewLink(c, "lan", Gbps1, 0)
	var gotErr error
	tr := l.Start("doomed", gb, func(err error) { gotErr = err })
	otherDone := false
	l.Start("other", gb, func(error) { otherDone = true })
	c.RunUntil(time.Second)
	l.Abort(tr)
	c.Run()
	if gotErr != ErrTransferAborted {
		t.Fatalf("aborted transfer err = %v, want ErrTransferAborted", gotErr)
	}
	if !otherDone {
		t.Fatal("surviving transfer did not complete")
	}
	if !tr.Finished() {
		t.Fatal("aborted transfer not marked finished")
	}
}

func TestAbortSpeedsUpSurvivor(t *testing.T) {
	c := simtime.NewClock()
	l := NewLink(c, "lan", Gbps1, 0)
	tr := l.Start("doomed", 8*gb, nil)
	var survivorDone time.Duration
	l.Start("survivor", gb, func(error) { survivorDone = c.Now() })
	// Abort the competitor almost immediately; the survivor should then
	// finish in ~solo time.
	c.Schedule(time.Millisecond, "abort", func(*simtime.Clock) { l.Abort(tr) })
	c.Run()
	solo := time.Duration(float64(gb) / float64(Gbps1) * float64(time.Second))
	if diff := survivorDone - solo; diff < -10*time.Millisecond || diff > 10*time.Millisecond {
		t.Fatalf("survivor finished at %v, want ~%v", survivorDone, solo)
	}
}

func TestRemainingDecreases(t *testing.T) {
	c := simtime.NewClock()
	l := NewLink(c, "lan", Gbps1, 0)
	tr := l.Start("x", gb, nil)
	c.RunUntil(time.Second)
	rem := l.Remaining(tr)
	if rem >= gb || rem <= 0 {
		t.Fatalf("Remaining after 1s = %d, want in (0, %d)", rem, gb)
	}
	c.RunUntil(2 * time.Second)
	rem2 := l.Remaining(tr)
	if rem2 >= rem {
		t.Fatalf("Remaining did not decrease: %d -> %d", rem, rem2)
	}
}

func TestActiveTransfersCount(t *testing.T) {
	c := simtime.NewClock()
	l := NewLink(c, "lan", Gbps1, 0)
	l.Start("a", gb, nil)
	l.Start("b", gb, nil)
	if l.ActiveTransfers() != 2 {
		t.Fatalf("ActiveTransfers = %d, want 2", l.ActiveTransfers())
	}
	c.Run()
	if l.ActiveTransfers() != 0 {
		t.Fatalf("ActiveTransfers after drain = %d, want 0", l.ActiveTransfers())
	}
}

func TestNegativeSizePanics(t *testing.T) {
	c := simtime.NewClock()
	l := NewLink(c, "lan", Gbps1, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("negative size did not panic")
		}
	}()
	l.Start("bad", -1, nil)
}

func TestBadRatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewLink with rate 0 did not panic")
		}
	}()
	NewLink(simtime.NewClock(), "bad", 0, 0)
}

func TestLinkAccessors(t *testing.T) {
	c := simtime.NewClock()
	l := NewLink(c, "fabric", Gbps10, time.Millisecond)
	if l.Name() != "fabric" {
		t.Fatalf("Name = %q", l.Name())
	}
	if l.ByteRate() != Gbps10 {
		t.Fatalf("ByteRate = %d", l.ByteRate())
	}
	if l.Latency() != time.Millisecond {
		t.Fatalf("Latency = %v", l.Latency())
	}
}

// Property: for any set of transfer sizes, total elapsed time to drain the
// link equals (sum of sizes) / rate — fair sharing conserves bytes.
func TestPropertyWorkConservation(t *testing.T) {
	f := func(sizesRaw []uint16) bool {
		c := simtime.NewClock()
		l := NewLink(c, "lan", Gbps1, 0)
		var total int64
		n := 0
		for _, s := range sizesRaw {
			if n >= 16 {
				break
			}
			size := int64(s) * 1 << 20 // up to 64 GiB each
			total += size
			l.Start("t", size, nil)
			n++
		}
		if n == 0 {
			return true
		}
		c.Run()
		want := time.Duration(float64(total) / float64(Gbps1) * float64(time.Second))
		diff := c.Now() - want
		if diff < 0 {
			diff = -diff
		}
		// Allow a small tolerance for float accumulation.
		return diff <= time.Duration(n)*time.Millisecond
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: a transfer's completion order matches size order when all start
// together.
func TestPropertySmallerFinishesFirst(t *testing.T) {
	c := simtime.NewClock()
	l := NewLink(c, "lan", Gbps1, 0)
	var order []string
	l.Start("large", 4*gb, func(error) { order = append(order, "large") })
	l.Start("medium", 2*gb, func(error) { order = append(order, "medium") })
	l.Start("small", 1*gb, func(error) { order = append(order, "small") })
	c.Run()
	want := []string{"small", "medium", "large"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("completion order = %v, want %v", order, want)
		}
	}
}

func TestAbortAll(t *testing.T) {
	c := simtime.NewClock()
	l := NewLink(c, "lan", Gbps1, 0)
	errs := 0
	for i := 0; i < 3; i++ {
		l.Start("t", gb, func(err error) {
			if err == ErrTransferAborted {
				errs++
			}
		})
	}
	c.RunUntil(time.Second)
	l.AbortAll()
	if errs != 3 {
		t.Fatalf("aborted callbacks = %d, want 3", errs)
	}
	if l.ActiveTransfers() != 0 {
		t.Fatal("transfers survive AbortAll")
	}
	c.Run()
}

// Regression: a done callback that starts a replacement transfer while
// AbortAll is severing the link must not have the replacement severed
// too (and must not corrupt or livelock the iteration). The old
// implementation re-read l.active each round, so it did both.
func TestAbortAllCallbackReentrancy(t *testing.T) {
	c := simtime.NewClock()
	l := NewLink(c, "lan", Gbps1, 0)
	var replacement *Transfer
	var replacementErr = errors.New("unset")
	l.Start("victim-a", gb, func(err error) {
		if !errors.Is(err, ErrTransferAborted) {
			t.Errorf("victim-a err = %v", err)
		}
		// Retry from inside the abort callback, as the migration
		// retry loop does.
		replacement = l.Start("retry-a", gb, func(err error) { replacementErr = err })
	})
	l.Start("victim-b", gb, func(err error) {
		if !errors.Is(err, ErrTransferAborted) {
			t.Errorf("victim-b err = %v", err)
		}
	})
	l.AbortAll()
	if replacement == nil || replacement.Finished() {
		t.Fatalf("replacement transfer was severed by AbortAll (tr=%v)", replacement)
	}
	if l.ActiveTransfers() != 1 {
		t.Fatalf("active transfers after AbortAll = %d, want 1", l.ActiveTransfers())
	}
	c.Run()
	if replacementErr != nil {
		t.Fatalf("replacement finished with err = %v", replacementErr)
	}
}

func TestInjectedSeverIsRetryable(t *testing.T) {
	c := simtime.NewClock()
	l := NewLink(c, "wan", Gbps1, 0)
	l.SetFaults(fault.NewPlan(1, 0).ForceAt(fault.SiteLinkAbort, 1).SetClock(c))
	var got error
	l.Start("vm0", gb, func(err error) { got = err })
	c.Run()
	if !errors.Is(got, ErrTransferAborted) || !errors.Is(got, hterr.ErrInjected) || !hterr.IsRetryable(got) {
		t.Fatalf("severed transfer err = %v; want aborted+injected+retryable", got)
	}
}

func TestInjectedLossSlowsTransfer(t *testing.T) {
	baseline := func(p *fault.Plan) time.Duration {
		c := simtime.NewClock()
		l := NewLink(c, "wan", Gbps1, 0)
		l.SetFaults(p)
		var doneAt time.Duration
		l.Start("vm0", gb, func(err error) {
			if err != nil {
				t.Fatalf("done err = %v", err)
			}
			doneAt = c.Now()
		})
		c.Run()
		return doneAt
	}
	clean := baseline(nil)
	lossy := baseline(fault.NewPlan(1, 0).ForceAt(fault.SiteLinkLoss, 1))
	if lossy <= clean {
		t.Fatalf("lossy transfer (%v) not slower than clean (%v)", lossy, clean)
	}
	if lossy > clean*2 {
		t.Fatalf("lossy transfer (%v) more than 2x clean (%v)", lossy, clean)
	}
}
