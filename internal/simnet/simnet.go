// Package simnet models the datacenter network used by MigrationTP and by
// the cluster experiments: point-to-point links with a fixed line rate,
// propagation latency, and fair bandwidth sharing among concurrent
// transfers.
//
// The model is analytic rather than packet-level: a Link tracks the set of
// in-flight transfers and, whenever that set changes, recomputes each
// transfer's completion time assuming the line rate is split equally among
// them (max-min fair sharing, which is what long-lived TCP migration streams
// converge to in practice). This is the property that matters for the
// paper's Figure 9: total migration time is bandwidth-bound and grows
// linearly with the bytes moved, while concurrent migrations share the pipe.
package simnet

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"hypertp/internal/fault"
	"hypertp/internal/hterr"
	"hypertp/internal/obs"
	"hypertp/internal/simtime"
)

// Common link speeds used in the paper's testbeds.
const (
	Gbps1  = 1_000_000_000 / 8  // bytes per second on the M1<->M1 1 Gbps link
	Gbps10 = 10_000_000_000 / 8 // bytes per second on the cluster's 10 Gbps fabric
)

// ErrTransferAborted is reported to completion callbacks when a transfer is
// cancelled before finishing.
var ErrTransferAborted = errors.New("simnet: transfer aborted")

// ErrTransferSevered is delivered when an injected link fault (the
// fault.SiteLinkAbort site) cuts a transfer mid-flight. It unwraps to
// ErrTransferAborted — callers that only distinguish "aborted" keep
// working — and is additionally classified retryable and injected, so
// the migration retry loop can route on errors.Is.
var ErrTransferSevered = hterr.Retryable(hterr.Injected(ErrTransferAborted))

// Link is a shared-medium network link. All transfers on the link divide its
// line rate equally.
type Link struct {
	name       string
	byteRate   float64 // bytes per second of usable line rate
	latency    time.Duration
	clock      *simtime.Clock
	active     map[*Transfer]struct{}
	lastUpdate time.Duration
	rec        *obs.Recorder
	faults     *fault.Plan
	down       bool
}

// Transfer is one in-flight bulk transfer (e.g. a migration stream).
type Transfer struct {
	link      *Link
	name      string
	remaining float64 // bytes still to move
	total     int64
	started   time.Duration
	done      func(err error)
	finished  bool
	event     *simtime.Event
	sever     *simtime.Event
	span      *obs.Span
}

// NewLink creates a link with the given usable byte rate and one-way latency.
func NewLink(clock *simtime.Clock, name string, byteRate int64, latency time.Duration) *Link {
	if byteRate <= 0 {
		panic(fmt.Sprintf("simnet: NewLink(%q): byteRate must be positive", name))
	}
	return &Link{
		name:     name,
		byteRate: float64(byteRate),
		latency:  latency,
		clock:    clock,
		active:   make(map[*Transfer]struct{}),
	}
}

// SetRecorder attaches an observability recorder: every transfer gets a
// detached span on the "simnet" track plus transfer/byte counters and a
// virtual-duration histogram. A nil recorder detaches.
func (l *Link) SetRecorder(rec *obs.Recorder) { l.rec = rec }

// SetFaults attaches a fault plan. Every Start then arms two sites:
// fault.SiteLinkLoss (retransmissions inflate the bytes the transfer
// must move, slowing it without killing it) and fault.SiteLinkAbort
// (the transfer is severed mid-flight with ErrTransferSevered). A nil
// plan detaches.
func (l *Link) SetFaults(p *fault.Plan) { l.faults = p }

// Down reports whether the link is administratively severed.
func (l *Link) Down() bool { return l.down }

// SetDown severs or restores the link. Severing aborts every in-flight
// transfer with ErrTransferSevered; while the link stays down, new
// transfers fail the same way after one propagation latency (the time a
// real stream takes to notice the dead peer). Restoring brings the link
// back for subsequent transfers — nothing resumes automatically, which
// matches TCP streams: a severed migration must be retried end to end.
func (l *Link) SetDown(down bool) {
	if l.down == down {
		return
	}
	l.down = down
	if down {
		snap := make([]*Transfer, 0, len(l.active))
		for tr := range l.active {
			snap = append(snap, tr)
		}
		sort.Slice(snap, func(i, j int) bool {
			if snap[i].started != snap[j].started {
				return snap[i].started < snap[j].started
			}
			return snap[i].name < snap[j].name
		})
		for _, tr := range snap {
			l.abortWith(tr, ErrTransferSevered)
		}
	}
}

// Name returns the link's label.
func (l *Link) Name() string { return l.name }

// ByteRate returns the link's usable line rate in bytes per second.
func (l *Link) ByteRate() int64 { return int64(l.byteRate) }

// Latency returns the link's one-way propagation latency.
func (l *Link) Latency() time.Duration { return l.latency }

// ActiveTransfers reports the number of in-flight transfers.
func (l *Link) ActiveTransfers() int { return len(l.active) }

// Start begins moving size bytes across the link. done is invoked (with a
// nil error) at the virtual time the last byte lands, or with
// ErrTransferAborted if the transfer is cancelled. done may be nil.
func (l *Link) Start(name string, size int64, done func(err error)) *Transfer {
	if size < 0 {
		panic(fmt.Sprintf("simnet: transfer %q: negative size %d", name, size))
	}
	if l.down {
		// The peer is unreachable: the stream dies after one latency,
		// without ever contending for bandwidth.
		tr := &Transfer{link: l, name: name, total: size, started: l.clock.Now(),
			done: done, finished: true}
		if l.rec != nil {
			l.rec.Metrics().Counter("simnet.refused", "transfers").Add(1)
		}
		l.clock.After(l.latency, "simnet:down:"+name, func(*simtime.Clock) {
			if tr.done != nil {
				tr.done(ErrTransferSevered)
			}
		})
		return tr
	}
	l.settle()
	tr := &Transfer{
		link:      l,
		name:      name,
		remaining: float64(size),
		total:     size,
		started:   l.clock.Now(),
		done:      done,
	}
	l.active[tr] = struct{}{}
	if l.rec != nil {
		tr.span = l.rec.StartDetached("xfer:"+name,
			obs.A("link", l.name), obs.A("bytes", size))
		tr.span.SetTrack("simnet")
		l.rec.Metrics().Counter("simnet.transfers", "transfers").Add(1)
	}
	if fired, sev := l.faults.Arm(fault.SiteLinkLoss); fired {
		// Retransmissions inflate the bytes to move by up to 50%,
		// scaled by the deterministic severity sample.
		tr.remaining *= 1 + 0.5*sev
		if tr.span != nil {
			tr.span.SetAttr("lossy", true)
		}
	}
	if fired, sev := l.faults.Arm(fault.SiteLinkAbort); fired && size > 0 {
		// Sever the stream partway through: between 10% and 90% of the
		// ideal (uncontended) transfer time, position set by severity.
		ideal := time.Duration(tr.remaining / l.byteRate * float64(time.Second))
		at := time.Duration(float64(ideal) * (0.1 + 0.8*sev))
		tr.sever = l.clock.After(at, "simnet:sever:"+name, func(*simtime.Clock) {
			tr.sever = nil
			l.abortWith(tr, ErrTransferSevered)
		})
	}
	l.reschedule()
	return tr
}

// TransferTime returns the time to move size bytes when the link is
// otherwise idle, including one latency hit. It does not start a transfer;
// it is the closed-form used by planners to estimate durations.
func (l *Link) TransferTime(size int64) time.Duration {
	return l.latency + time.Duration(float64(size)/l.byteRate*float64(time.Second))
}

// settle drains progress accrued since the last queue change: every active
// transfer has been moving at rate/n since lastUpdate.
func (l *Link) settle() {
	now := l.clock.Now()
	if now == l.lastUpdate || len(l.active) == 0 {
		l.lastUpdate = now
		return
	}
	elapsed := (now - l.lastUpdate).Seconds()
	share := l.byteRate / float64(len(l.active))
	for tr := range l.active {
		tr.remaining -= share * elapsed
		if tr.remaining < 0 {
			tr.remaining = 0
		}
	}
	l.lastUpdate = now
}

// reschedule recomputes the next completion event after the active set or
// the clock changed.
func (l *Link) reschedule() {
	for tr := range l.active {
		if tr.event != nil {
			l.clock.Cancel(tr.event)
			tr.event = nil
		}
	}
	if len(l.active) == 0 {
		return
	}
	// Find the transfer that finishes first under equal sharing.
	var first *Transfer
	for tr := range l.active {
		if first == nil || tr.remaining < first.remaining ||
			(tr.remaining == first.remaining && tr.started < first.started) {
			first = tr
		}
	}
	share := l.byteRate / float64(len(l.active))
	dt := time.Duration(first.remaining / share * float64(time.Second))
	first.event = l.clock.After(dt, "simnet:"+first.name, func(*simtime.Clock) {
		l.complete(first)
	})
}

func (l *Link) complete(tr *Transfer) {
	l.settle()
	tr.finished = true
	tr.remaining = 0
	if tr.sever != nil {
		l.clock.Cancel(tr.sever)
		tr.sever = nil
	}
	delete(l.active, tr)
	l.reschedule()
	if tr.span != nil {
		tr.span.End()
		m := l.rec.Metrics()
		m.Counter("simnet.bytes_moved", "bytes").Add(tr.total)
		// Virtual durations are deterministic, so the histogram is too.
		m.Histogram("simnet.transfer_virtual_s", "s",
			obs.ExpBuckets(1e-3, 2, 20)).Observe(tr.span.Duration().Seconds())
	}
	if tr.done != nil {
		tr.done(nil)
	}
}

// Abort cancels an in-flight transfer. It is a no-op on finished transfers.
func (l *Link) Abort(tr *Transfer) { l.abortWith(tr, ErrTransferAborted) }

func (l *Link) abortWith(tr *Transfer, cause error) {
	if tr.finished {
		return
	}
	l.settle()
	if tr.event != nil {
		l.clock.Cancel(tr.event)
		tr.event = nil
	}
	if tr.sever != nil {
		l.clock.Cancel(tr.sever)
		tr.sever = nil
	}
	tr.finished = true
	delete(l.active, tr)
	l.reschedule()
	if tr.span != nil {
		tr.span.SetAttr("aborted", true)
		tr.span.End()
		l.rec.Metrics().Counter("simnet.aborts", "transfers").Add(1)
	}
	if tr.done != nil {
		tr.done(cause)
	}
}

// AbortAll severs every in-flight transfer — a link failure. Each
// transfer's done callback receives ErrTransferAborted.
//
// Only transfers in flight when AbortAll is called are severed: the
// active set is snapshotted first, so a done callback that Starts a
// replacement transfer (the migration retry loop does exactly this)
// neither gets its new transfer severed nor corrupts the iteration.
// The snapshot is processed in start order to keep callback order
// deterministic.
func (l *Link) AbortAll() {
	snap := make([]*Transfer, 0, len(l.active))
	for tr := range l.active {
		snap = append(snap, tr)
	}
	sort.Slice(snap, func(i, j int) bool {
		if snap[i].started != snap[j].started {
			return snap[i].started < snap[j].started
		}
		return snap[i].name < snap[j].name
	})
	for _, tr := range snap {
		l.Abort(tr) // no-op if a prior callback already finished it
	}
}

// Remaining returns the bytes the transfer still has to move, settling
// progress first.
func (l *Link) Remaining(tr *Transfer) int64 {
	l.settle()
	l.reschedule()
	return int64(tr.remaining + 0.5)
}

// Total returns the transfer's original size in bytes.
func (tr *Transfer) Total() int64 { return tr.total }

// Name returns the transfer's label.
func (tr *Transfer) Name() string { return tr.name }

// Finished reports whether the transfer completed or was aborted.
func (tr *Transfer) Finished() bool { return tr.finished }

// NICModel captures how long a network card takes to come back after a
// micro-reboot. The paper measures 6.6 s on M1 and 2.3 s on M2 (Section
// 5.2.1); the value is driver- and firmware-dependent, so it is part of the
// hardware profile rather than the transplant engine.
type NICModel struct {
	// ReinitTime is the delay between the target hypervisor booting and
	// the physical link carrying traffic again.
	ReinitTime time.Duration
}
