package simnet

import (
	"errors"
	"testing"
	"time"

	"hypertp/internal/hterr"
	"hypertp/internal/obs"
	"hypertp/internal/simtime"
)

// TestSetDownSeversInFlight: cutting the link delivers ErrTransferSevered
// (retryable) to every in-flight transfer.
func TestSetDownSeversInFlight(t *testing.T) {
	c := simtime.NewClock()
	l := NewLink(c, "lan", Gbps1, 0)
	errs := make(map[string]error)
	l.Start("a", gb, func(err error) { errs["a"] = err })
	l.Start("b", gb, func(err error) { errs["b"] = err })
	c.RunUntil(time.Second)
	l.SetDown(true)
	c.Run()
	if !l.Down() {
		t.Fatal("link not reported down")
	}
	for name, err := range errs {
		if !errors.Is(err, ErrTransferSevered) {
			t.Fatalf("transfer %s err = %v, want ErrTransferSevered", name, err)
		}
		if !hterr.IsRetryable(err) {
			t.Fatalf("severed transfer %s not retryable", name)
		}
	}
	if l.ActiveTransfers() != 0 {
		t.Fatalf("%d transfers still active on a down link", l.ActiveTransfers())
	}
}

// TestStartWhileDownRefused: a transfer started on a down link fails
// after one propagation latency (the sender times out, it does not hang)
// and bumps the refusal counter.
func TestStartWhileDownRefused(t *testing.T) {
	c := simtime.NewClock()
	rec := obs.NewRecorder(c)
	lat := 100 * time.Microsecond
	l := NewLink(c, "lan", Gbps1, lat)
	l.SetRecorder(rec)
	l.SetDown(true)
	var gotErr error
	var doneAt time.Duration
	tr := l.Start("refused", gb, func(err error) { gotErr, doneAt = err, c.Now() })
	c.Run()
	if !errors.Is(gotErr, ErrTransferSevered) {
		t.Fatalf("err = %v, want ErrTransferSevered", gotErr)
	}
	if doneAt != lat {
		t.Fatalf("refusal delivered at %v, want one latency (%v)", doneAt, lat)
	}
	if !tr.Finished() {
		t.Fatal("refused transfer not marked finished")
	}
	if got := rec.Metrics().Counter("simnet.refused", "transfers").Value(); got != 1 {
		t.Fatalf("simnet.refused = %d, want 1", got)
	}
}

// TestLinkRestoreCarriesTraffic: after SetDown(false) the link behaves
// exactly like a fresh one.
func TestLinkRestoreCarriesTraffic(t *testing.T) {
	c := simtime.NewClock()
	l := NewLink(c, "lan", Gbps1, 0)
	l.SetDown(true)
	l.SetDown(true) // idempotent
	l.SetDown(false)
	if l.Down() {
		t.Fatal("link still down after restore")
	}
	var err error
	start := c.Now()
	l.Start("after", gb, func(e error) { err = e })
	c.Run()
	if err != nil {
		t.Fatalf("transfer on restored link failed: %v", err)
	}
	want := time.Duration(float64(gb) / float64(Gbps1) * float64(time.Second))
	if got := c.Now() - start; got < want-time.Millisecond || got > want+time.Millisecond {
		t.Fatalf("restored link transfer took %v, want ~%v", got, want)
	}
}
