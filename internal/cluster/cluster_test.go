package cluster

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"hypertp/internal/fault"
	"hypertp/internal/obs"
	"hypertp/internal/sched"
	"hypertp/internal/simtime"
)

func paperCluster(t *testing.T) *Cluster {
	t.Helper()
	c, err := New(Config{Hosts: 10, VMsPerHost: 10, StreamFrac: 0.3, CPUFrac: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewClusterShape(t *testing.T) {
	c := paperCluster(t)
	if len(c.Hosts()) != 10 || c.VMCount() != 100 {
		t.Fatalf("cluster shape %d hosts / %d VMs", len(c.Hosts()), c.VMCount())
	}
	classes := map[WorkloadClass]int{}
	for id := 0; id < c.VMCount(); id++ {
		vm, ok := c.VM(id)
		if !ok {
			t.Fatalf("VM %d missing", id)
		}
		classes[vm.Class]++
		if vm.MemBytes != 4<<30 || vm.VCPUs != 1 {
			t.Fatal("VM size not 1 vCPU / 4 GB")
		}
	}
	if classes[WorkStream] != 30 || classes[WorkCPU] != 30 || classes[WorkIdle] != 40 {
		t.Fatalf("workload mix = %v, want 30/30/40", classes)
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestNewClusterErrors(t *testing.T) {
	if _, err := New(Config{Hosts: 1, VMsPerHost: 10}); err == nil {
		t.Fatal("single-host cluster accepted")
	}
	if _, err := New(Config{Hosts: 10, VMsPerHost: 0}); err == nil {
		t.Fatal("empty hosts accepted")
	}
	// Overloaded host.
	if _, err := New(Config{Hosts: 2, VMsPerHost: 50, VMRam: 4 << 30, VMVCPUs: 1}); err == nil {
		t.Fatal("over-capacity build accepted")
	}
}

func TestSetInPlaceCompatibleFraction(t *testing.T) {
	c := paperCluster(t)
	c.SetInPlaceCompatibleFraction(0.8, 1)
	n := 0
	for id := 0; id < c.VMCount(); id++ {
		vm, _ := c.VM(id)
		if vm.InPlaceCompatible {
			n++
		}
	}
	if n != 80 {
		t.Fatalf("compatible VMs = %d, want 80", n)
	}
}

// Fig. 13 anchor: the all-migration plan needs ~154 migrations (>100: the
// re-migration cascade), and rising InPlaceTP fractions shrink both the
// count and the time, by ~80% at 80% compatibility.
func TestFig13Shape(t *testing.T) {
	run := func(frac float64) Result {
		c := paperCluster(t)
		c.SetInPlaceCompatibleFraction(frac, 42)
		plan, err := c.PlanUpgrade(1)
		if err != nil {
			t.Fatal(err)
		}
		if err := c.Validate(); err != nil {
			t.Fatal(err)
		}
		return plan.Execute(DefaultExecutionModel())
	}
	base := run(0)
	if base.Migrations < 120 || base.Migrations > 185 {
		t.Fatalf("0%% compatible migrations = %d, want ~154", base.Migrations)
	}
	// Every VM migrated at least once; the excess is the cascade.
	if base.Migrations <= 100 {
		t.Fatal("no re-migration cascade")
	}
	// Paper: total pure-migration upgrade takes up to ~19 min.
	if base.TotalTime < 12*time.Minute || base.TotalTime > 26*time.Minute {
		t.Fatalf("0%% total time = %v, want ~19min", base.TotalTime)
	}

	r20 := run(0.2)
	r60 := run(0.6)
	r80 := run(0.8)
	if !(r20.Migrations < base.Migrations && r60.Migrations < r20.Migrations && r80.Migrations < r60.Migrations) {
		t.Fatalf("migration counts not decreasing: %d %d %d %d",
			base.Migrations, r20.Migrations, r60.Migrations, r80.Migrations)
	}
	if r80.Migrations < 15 || r80.Migrations > 40 {
		t.Fatalf("80%% compatible migrations = %d, want ~25", r80.Migrations)
	}
	gain := func(r Result) float64 {
		return 1 - float64(r.TotalTime)/float64(base.TotalTime)
	}
	if g := gain(r20); g < 0.08 || g > 0.30 {
		t.Fatalf("20%% time gain = %.2f, want ~0.17", g)
	}
	if g := gain(r60); g < 0.50 || g > 0.80 {
		t.Fatalf("60%% time gain = %.2f, want ~0.68", g)
	}
	if g := gain(r80); g < 0.70 || g > 0.92 {
		t.Fatalf("80%% time gain = %.2f, want ~0.80", g)
	}
	// Paper headline: 80% compatible upgrade ≈ 3 min 54 s.
	if r80.TotalTime < 2*time.Minute || r80.TotalTime > 6*time.Minute {
		t.Fatalf("80%% total time = %v, want ~3m54s", r80.TotalTime)
	}
}

func TestPlanUpgradeGroupSizes(t *testing.T) {
	for _, gs := range []int{1, 2, 5} {
		c := paperCluster(t)
		plan, err := c.PlanUpgrade(gs)
		if err != nil {
			t.Fatalf("group size %d: %v", gs, err)
		}
		wantGroups := (10 + gs - 1) / gs
		if len(plan.Groups) != wantGroups {
			t.Fatalf("group size %d: %d groups, want %d", gs, len(plan.Groups), wantGroups)
		}
		for _, h := range c.Hosts() {
			if !h.Upgraded {
				t.Fatalf("host %d not upgraded", h.ID)
			}
		}
		if err := c.Validate(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestPlanUpgradeBadGroupSize(t *testing.T) {
	c := paperCluster(t)
	if _, err := c.PlanUpgrade(0); err == nil {
		t.Fatal("group size 0 accepted")
	}
	if _, err := c.PlanUpgrade(10); err == nil {
		t.Fatal("group size = cluster accepted")
	}
}

func TestInPlaceCompatibleVMsNeverMigrate(t *testing.T) {
	c := paperCluster(t)
	c.SetInPlaceCompatibleFraction(0.5, 7)
	if _, err := c.PlanUpgrade(1); err != nil {
		t.Fatal(err)
	}
	for id := 0; id < c.VMCount(); id++ {
		vm, _ := c.VM(id)
		if vm.InPlaceCompatible && vm.Migrations != 0 {
			t.Fatalf("compatible VM %d migrated %d times", id, vm.Migrations)
		}
	}
}

func TestOfflineGroupsEndEmptyOfMigratableVMs(t *testing.T) {
	c := paperCluster(t)
	plan, err := c.PlanUpgrade(2)
	if err != nil {
		t.Fatal(err)
	}
	// With 0% compatible, every group's hosts must be empty right after
	// their group is processed — since later groups only add VMs to
	// online hosts, we check migrations never target offline hosts.
	for _, g := range plan.Groups {
		inGroup := map[int]bool{}
		for _, h := range g.Hosts {
			inGroup[h] = true
		}
		for _, m := range g.Migrations {
			if inGroup[m.To] {
				t.Fatalf("migration into offline host %d", m.To)
			}
			if !inGroup[m.From] {
				t.Fatalf("migration from host %d outside the offline group", m.From)
			}
		}
	}
}

func TestExecuteModelAccounting(t *testing.T) {
	p := &Plan{Groups: []GroupPlan{
		{Migrations: []Migration{{Bytes: 4 << 30}}, InPlaceVMs: 0},
		{InPlaceVMs: 3},
	}}
	m := DefaultExecutionModel()
	res := p.Execute(m)
	if res.Migrations != 1 {
		t.Fatalf("migrations = %d", res.Migrations)
	}
	wantMig := time.Duration(float64(4<<30)/float64(m.LinkByteRate)*float64(time.Second)) + m.PerMigrationOverhead
	if res.MigrationTime != wantMig {
		t.Fatalf("migration time = %v, want %v", res.MigrationTime, wantMig)
	}
	if res.InPlaceTime != 2*m.InPlaceHostTime {
		t.Fatalf("inplace time = %v", res.InPlaceTime)
	}
	if res.TotalTime != res.MigrationTime+res.InPlaceTime {
		t.Fatal("total != sum")
	}
}

func TestMigrationCountPerVM(t *testing.T) {
	c := paperCluster(t)
	plan, _ := c.PlanUpgrade(1)
	perVM := map[int]int{}
	for _, g := range plan.Groups {
		for _, m := range g.Migrations {
			perVM[m.VMID]++
		}
	}
	for id := 0; id < c.VMCount(); id++ {
		vm, _ := c.VM(id)
		if vm.Migrations != perVM[id] {
			t.Fatalf("VM %d migration count mismatch", id)
		}
		if vm.Migrations < 1 {
			t.Fatalf("VM %d never migrated in a 0%%-compatible upgrade", id)
		}
	}
}

// Concurrent scheduling compresses the upgrade makespan without
// changing the plan's migration count or in-place accounting, and the
// emitted span tree stays well-nested.
func TestExecuteScheduledCompressesMakespan(t *testing.T) {
	c := paperCluster(t)
	c.SetInPlaceCompatibleFraction(0.5, 42)
	plan, err := c.PlanUpgrade(2)
	if err != nil {
		t.Fatal(err)
	}
	m := DefaultExecutionModel()
	serial := plan.Execute(m)

	rec := obs.NewRecorder(simtime.NewClock())
	conc, err := plan.ExecuteScheduled(m, rec, sched.Limits{LinkStreams: 8, MaxKexecs: 4})
	if err != nil {
		t.Fatal(err)
	}
	if conc.Migrations != serial.Migrations {
		t.Fatalf("migrations %d != %d", conc.Migrations, serial.Migrations)
	}
	if conc.InPlaceTime != serial.InPlaceTime {
		t.Fatalf("inplace time %v != %v", conc.InPlaceTime, serial.InPlaceTime)
	}
	if conc.TotalTime >= serial.TotalTime {
		t.Fatalf("concurrent %v not faster than serial %v", conc.TotalTime, serial.TotalTime)
	}
	if vs := rec.AuditSpans(); vs != nil {
		t.Fatalf("span violations: %v", vs)
	}
}

// ExecuteScheduled is deterministic: identical limits give identical
// results on repeat runs, and the serial limits reproduce Execute.
func TestExecuteScheduledSerialMatchesExecute(t *testing.T) {
	c := paperCluster(t)
	c.SetInPlaceCompatibleFraction(0.5, 42)
	plan, err := c.PlanUpgrade(2)
	if err != nil {
		t.Fatal(err)
	}
	m := DefaultExecutionModel()
	legacy := plan.Execute(m)
	scheduled, err := plan.ExecuteScheduled(m, nil, sched.Serial())
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprintf("%+v", scheduled) != fmt.Sprintf("%+v", legacy) {
		t.Fatalf("serial scheduled result %+v != Execute %+v", scheduled, legacy)
	}
	again, err := plan.ExecuteScheduled(m, nil, sched.Limits{LinkStreams: 8, MaxKexecs: 4})
	if err != nil {
		t.Fatal(err)
	}
	again2, err := plan.ExecuteScheduled(m, nil, sched.Limits{LinkStreams: 8, MaxKexecs: 4})
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprintf("%+v", again) != fmt.Sprintf("%+v", again2) {
		t.Fatalf("concurrent schedule not deterministic: %+v vs %+v", again, again2)
	}
}

// A kexec budget below the group size can never admit the group's
// parallel in-place window: ExecuteScheduled reports starvation rather
// than hanging or silently serializing the kexecs.
func TestExecuteScheduledStarvedKexecBudget(t *testing.T) {
	c := paperCluster(t)
	c.SetInPlaceCompatibleFraction(1.0, 42)
	plan, err := c.PlanUpgrade(4)
	if err != nil {
		t.Fatal(err)
	}
	_, err = plan.ExecuteScheduled(DefaultExecutionModel(), nil, sched.Limits{MaxKexecs: 2})
	if !errors.Is(err, sched.ErrStarved) {
		t.Fatalf("err = %v, want ErrStarved", err)
	}
}

// A fault-free ExecuteRollingUpgrade behaves exactly like the two-step
// PlanUpgrade + Execute pipeline.
func TestExecuteRollingUpgradeMatchesPlanExecute(t *testing.T) {
	mk := func() *Cluster {
		c, err := New(Config{Hosts: 8, VMsPerHost: 10, StreamFrac: 0.3, CPUFrac: 0.3})
		if err != nil {
			t.Fatal(err)
		}
		c.SetInPlaceCompatibleFraction(0.5, 1)
		return c
	}
	m := DefaultExecutionModel()
	a := mk()
	planA, err := a.PlanUpgrade(2)
	if err != nil {
		t.Fatal(err)
	}
	resA := planA.Execute(m)
	b := mk()
	planB, resB, err := b.ExecuteRollingUpgrade(2, m, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if planB.TotalMigrations() != planA.TotalMigrations() {
		t.Fatalf("migrations %d != %d", planB.TotalMigrations(), planA.TotalMigrations())
	}
	if resB.Migrations != resA.Migrations || resB.MigrationTime != resA.MigrationTime {
		t.Fatalf("result diverged: %+v vs %+v", resB, resA)
	}
	if resB.Outcome != "completed" || len(resB.FailedHosts) != 0 {
		t.Fatalf("clean upgrade reported %+v", resB)
	}
	if err := b.Validate(); err != nil {
		t.Fatal(err)
	}
}

// An injected host failure quarantines the host and re-plans its VMs;
// the fleet upgrade completes degraded with every VM still placed.
func TestExecuteRollingUpgradeQuarantinesFailedHost(t *testing.T) {
	c, err := New(Config{Hosts: 8, VMsPerHost: 6, StreamFrac: 0.3, CPUFrac: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	c.SetInPlaceCompatibleFraction(0.5, 1)
	total := c.VMCount()
	plan := fault.NewPlan(3, 0).ForceAt(fault.SiteClusterHost, 3)
	_, res, err := c.ExecuteRollingUpgrade(2, DefaultExecutionModel(), nil, plan)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != "degraded" || res.Faults != 1 || len(res.FailedHosts) != 1 {
		t.Fatalf("result = %+v", res)
	}
	failed := res.FailedHosts[0]
	var quarantined *Host
	upgraded := 0
	for _, h := range c.Hosts() {
		if h.ID == failed {
			quarantined = h
		}
		if h.Upgraded {
			upgraded++
		}
	}
	if quarantined == nil || !quarantined.Quarantined || quarantined.Upgraded {
		t.Fatalf("failed host %d not quarantined", failed)
	}
	if upgraded != len(c.Hosts())-1 {
		t.Fatalf("%d hosts upgraded, want %d", upgraded, len(c.Hosts())-1)
	}
	if res.ReplannedVMs == 0 {
		t.Fatal("no VMs re-planned off the quarantined host")
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	// Every VM is still placed exactly once: none lost.
	placed := 0
	for _, h := range c.Hosts() {
		placed += len(h.VMs())
	}
	if placed != total {
		t.Fatalf("%d VMs placed, want %d", placed, total)
	}
	if s := res.Summary(); s.Kind != "cluster" || s.Outcome != "degraded" || s.Faults != 1 {
		t.Fatalf("summary = %+v", s)
	}
}
