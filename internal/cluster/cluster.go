// Package cluster models the §5.4 datacenter experiment: a BtrPlace-like
// VM scheduler that plans a rolling hypervisor upgrade of a cluster by
// taking host groups offline in sequence, migrating away the VMs that
// cannot tolerate InPlaceTP, and upgrading each host in place.
//
// The Fig. 13 result — migration count dropping from ~154 to ~25 and
// total upgrade time falling ~80% as the InPlaceTP-compatible fraction
// grows — emerges from the replanning mechanics: evacuated VMs that land
// on not-yet-upgraded hosts must migrate again when their new host's
// group goes offline.
package cluster

import (
	"fmt"
	"sort"
	"time"

	"hypertp/internal/fault"
	"hypertp/internal/hterr"
	"hypertp/internal/hw"
	"hypertp/internal/obs"
	rpt "hypertp/internal/report"
	"hypertp/internal/sched"
	"hypertp/internal/simtime"
)

// WorkloadClass labels the §5.4 VM mix: 30% video streaming, 30% CPU- and
// memory-intensive, 40% idle.
type WorkloadClass string

// The §5.4 workload classes.
const (
	WorkStream WorkloadClass = "video-stream"
	WorkCPU    WorkloadClass = "cpu-mem"
	WorkIdle   WorkloadClass = "idle"
)

// VM is one cluster virtual machine (1 vCPU / 4 GB in the paper's setup).
type VM struct {
	ID                int
	Name              string
	VCPUs             int
	MemBytes          uint64
	Class             WorkloadClass
	InPlaceCompatible bool
	Host              int // current host id
	// Migrations counts how many times the VM moved during the upgrade.
	Migrations int
}

// Host is one physical server.
type Host struct {
	ID       int
	Name     string
	CapVCPUs int
	CapMem   uint64
	Upgraded bool
	// Quarantined marks a host whose in-place upgrade failed during a
	// fault-injected rolling upgrade: it keeps running its old
	// hypervisor, accepts no new placements, and its VMs are re-planned
	// elsewhere when capacity allows.
	Quarantined bool
	vms         map[int]*VM
}

// VMs returns the host's VM ids, sorted.
func (h *Host) VMs() []int {
	out := make([]int, 0, len(h.vms))
	for id := range h.vms {
		out = append(out, id)
	}
	sort.Ints(out)
	return out
}

// Load returns the host's committed vCPUs and memory.
func (h *Host) Load() (vcpus int, mem uint64) {
	for _, vm := range h.vms {
		vcpus += vm.VCPUs
		mem += vm.MemBytes
	}
	return
}

// fits reports whether the host can accept the VM.
func (h *Host) fits(vm *VM) bool {
	v, m := h.Load()
	return v+vm.VCPUs <= h.CapVCPUs && m+vm.MemBytes <= h.CapMem
}

// Cluster is the modeled datacenter.
type Cluster struct {
	hosts []*Host
	vms   map[int]*VM
}

// Config describes the cluster to build. The zero VMRam/VMVCPUs default
// to the paper's 4 GB / 1 vCPU.
type Config struct {
	Hosts      int
	VMsPerHost int
	VMRam      uint64
	VMVCPUs    int
	// StreamFrac / CPUFrac: the rest is idle (paper: 0.3 / 0.3).
	StreamFrac, CPUFrac float64
}

// New builds a cluster with the §5.4 shape: each host gets VMsPerHost VMs
// with the configured workload mix.
func New(cfg Config) (*Cluster, error) {
	if cfg.Hosts <= 1 || cfg.VMsPerHost <= 0 {
		return nil, fmt.Errorf("cluster: need >1 hosts and >0 VMs per host")
	}
	if cfg.VMRam == 0 {
		cfg.VMRam = 4 << 30
	}
	if cfg.VMVCPUs == 0 {
		cfg.VMVCPUs = 1
	}
	node := hw.ClusterNode()
	c := &Cluster{vms: make(map[int]*VM)}
	vmID := 0
	for hID := 0; hID < cfg.Hosts; hID++ {
		h := &Host{
			ID:       hID,
			Name:     fmt.Sprintf("host-%02d", hID),
			CapVCPUs: node.Threads - node.ReservedCPUs,
			CapMem:   node.RAMBytes - 8<<30, // host OS reservation
			vms:      make(map[int]*VM),
		}
		c.hosts = append(c.hosts, h)
		for v := 0; v < cfg.VMsPerHost; v++ {
			class := WorkIdle
			frac := float64(v) / float64(cfg.VMsPerHost)
			switch {
			case frac < cfg.StreamFrac:
				class = WorkStream
			case frac < cfg.StreamFrac+cfg.CPUFrac:
				class = WorkCPU
			}
			vm := &VM{
				ID: vmID, Name: fmt.Sprintf("vm-%03d", vmID),
				VCPUs: cfg.VMVCPUs, MemBytes: cfg.VMRam,
				Class: class, Host: hID,
			}
			if !h.fits(vm) {
				return nil, fmt.Errorf("cluster: host %d over capacity at build time", hID)
			}
			h.vms[vm.ID] = vm
			c.vms[vm.ID] = vm
			vmID++
		}
	}
	return c, nil
}

// Hosts returns the hosts in id order.
func (c *Cluster) Hosts() []*Host { return c.hosts }

// VMCount returns the total VM population.
func (c *Cluster) VMCount() int { return len(c.vms) }

// VM returns a VM by id.
func (c *Cluster) VM(id int) (*VM, bool) {
	vm, ok := c.vms[id]
	return vm, ok
}

// SetInPlaceCompatibleFraction marks the given fraction of VMs as
// InPlaceTP compatible, deterministically under seed.
func (c *Cluster) SetInPlaceCompatibleFraction(frac float64, seed uint64) {
	rng := simtime.NewRand(seed)
	ids := make([]int, 0, len(c.vms))
	for id := range c.vms {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	// Fisher-Yates then take the prefix.
	for i := len(ids) - 1; i > 0; i-- {
		j := rng.Intn(i + 1)
		ids[i], ids[j] = ids[j], ids[i]
	}
	n := int(frac*float64(len(ids)) + 0.5)
	for i, id := range ids {
		c.vms[id].InPlaceCompatible = i < n
	}
}

// Migration is one planned VM move.
type Migration struct {
	VMID     int
	From, To int
	Bytes    uint64
}

// GroupPlan is the per-group slice of the upgrade.
type GroupPlan struct {
	Hosts      []int
	Migrations []Migration
	// InPlaceVMs counts VMs transplanted in place on the group's hosts.
	InPlaceVMs int
}

// Plan is a full rolling-upgrade plan.
type Plan struct {
	Groups []GroupPlan
}

// TotalMigrations counts all planned moves.
func (p *Plan) TotalMigrations() int {
	n := 0
	for _, g := range p.Groups {
		n += len(g.Migrations)
	}
	return n
}

// PlanUpgrade computes and applies a rolling upgrade: hosts are processed
// in groups of groupSize; each group goes offline, its
// migration-requiring VMs are re-placed on online hosts (balanced
// least-loaded, BtrPlace's spread behaviour), its InPlaceTP-compatible
// VMs stay put for the in-place transplant, and the group comes back
// upgraded. The cluster state reflects the executed plan afterwards.
func (c *Cluster) PlanUpgrade(groupSize int) (*Plan, error) {
	if groupSize < 1 || groupSize >= len(c.hosts) {
		return nil, fmt.Errorf("cluster: group size %d out of range", groupSize)
	}
	plan := &Plan{}
	for lo := 0; lo < len(c.hosts); lo += groupSize {
		hi := lo + groupSize
		if hi > len(c.hosts) {
			hi = len(c.hosts)
		}
		group := c.hosts[lo:hi]
		gp := GroupPlan{}
		offline := map[int]bool{}
		for _, h := range group {
			gp.Hosts = append(gp.Hosts, h.ID)
			offline[h.ID] = true
		}
		// Evacuate migration-requiring VMs from the group, spreading
		// them across all online hosts in rotation — BtrPlace's
		// load-balancing placement. Some land on hosts whose group is
		// still pending and will migrate again: that cascade is what
		// pushes the §5.4 plan to ~154 migrations for 100 VMs.
		cursor := 0
		for _, h := range group {
			for _, vmID := range h.VMs() {
				vm := h.vms[vmID]
				if vm.InPlaceCompatible {
					gp.InPlaceVMs++
					continue
				}
				dest := c.nextOnline(offline, vm, &cursor)
				if dest == nil {
					return nil, fmt.Errorf("cluster: no capacity to evacuate VM %d", vm.ID)
				}
				delete(h.vms, vm.ID)
				dest.vms[vm.ID] = vm
				vm.Host = dest.ID
				vm.Migrations++
				gp.Migrations = append(gp.Migrations, Migration{
					VMID: vm.ID, From: h.ID, To: dest.ID, Bytes: vm.MemBytes,
				})
			}
		}
		for _, h := range group {
			h.Upgraded = true
		}
		plan.Groups = append(plan.Groups, gp)
	}
	return plan, nil
}

// nextOnline picks the next online host in rotation that fits the VM,
// starting from *cursor. It falls back to the least-loaded fitting host
// when the rotation target is full. Quarantined hosts never receive
// placements.
func (c *Cluster) nextOnline(offline map[int]bool, vm *VM, cursor *int) *Host {
	n := len(c.hosts)
	for tries := 0; tries < n; tries++ {
		h := c.hosts[(*cursor+tries)%n]
		if offline[h.ID] || h.Quarantined || !h.fits(vm) {
			continue
		}
		*cursor = (*cursor + tries + 1) % n
		return h
	}
	return nil
}

// ExecutionModel times a plan: migrations execute sequentially per group
// over the shared fabric (BtrPlace serializes its reconfiguration
// actions), in-place transplants run in parallel across a group's hosts.
type ExecutionModel struct {
	// LinkByteRate is the fabric rate available to one migration
	// stream.
	LinkByteRate int64
	// PerMigrationOverhead covers setup, pre-copy iterations and
	// stop-and-copy beyond the raw memory transfer.
	PerMigrationOverhead time.Duration
	// InPlaceHostTime is one host's InPlaceTP duration (seconds-scale;
	// from the core engine's cluster-node calibration).
	InPlaceHostTime time.Duration
}

// DefaultExecutionModel matches the §5.4 testbed: 10 Gbps fabric, ~4 s of
// per-migration overhead (which yields the paper's ~7.4 s per 4 GB
// migration), ~8 s per in-place host upgrade.
func DefaultExecutionModel() ExecutionModel {
	return ExecutionModel{
		LinkByteRate:         10_000_000_000 / 8,
		PerMigrationOverhead: 4 * time.Second,
		InPlaceHostTime:      8 * time.Second,
	}
}

// Result summarizes an executed upgrade.
type Result struct {
	Migrations    int
	MigrationTime time.Duration
	InPlaceTime   time.Duration
	TotalTime     time.Duration

	// Degradation record (fault-injected upgrades only; see
	// Cluster.ExecuteRollingUpgrade). A failed host is quarantined, not
	// fatal: the upgrade completes around it.
	Outcome rpt.Outcome
	// FailedHosts lists quarantined host ids in failure order.
	FailedHosts []int
	// ReplannedVMs counts VMs moved off quarantined hosts.
	ReplannedVMs int
	// StrandedVMs counts VMs that could not be re-planned for lack of
	// capacity; they keep running on their quarantined host's old
	// hypervisor (degraded, never lost).
	StrandedVMs int
	// Faults is the number of injected host failures absorbed.
	Faults int
}

// Summary implements report.Report.
func (r Result) Summary() rpt.Summary {
	out := r.Outcome
	if out == "" {
		out = rpt.OutcomeCompleted
	}
	return rpt.Summary{
		Kind:           "cluster",
		Outcome:        out,
		Attempts:       1,
		VirtualElapsed: r.TotalTime,
		Faults:         r.Faults,
	}
}

// Execute times the plan under the model.
func (p *Plan) Execute(m ExecutionModel) Result {
	return p.ExecuteTraced(m, nil)
}

// ExecuteTraced times the plan under the model and, when rec is non-nil,
// records the upgrade's span tree. It is the serial baseline of
// ExecuteScheduled: migrations execute one at a time in plan order,
// which reproduces BtrPlace's serialized reconfiguration actions (and
// the historical behaviour of this function) exactly.
func (p *Plan) ExecuteTraced(m ExecutionModel, rec *obs.Recorder) Result {
	res, err := p.ExecuteScheduled(m, rec, sched.Serial())
	if err != nil {
		// A serial cost-mode schedule of a freshly built rolling DAG has
		// no contention and no cycles; an error here is a programming
		// bug, not an input condition.
		panic(err)
	}
	return res
}

// hostName renders a host id the way New names hosts, so scheduler
// host-exclusivity lines up with the modeled fleet.
func hostName(id int) string { return fmt.Sprintf("host-%02d", id) }

// ExecuteScheduled times the plan on the dependency-aware fleet
// scheduler (internal/sched) in cost mode: every migration and every
// group's in-place window becomes a DAG node with a precomputed virtual
// cost and no Run body. The rolling structure is preserved by gating
// each group on the previous group's in-place completion; within a
// group, migrations parallelize up to the limits (per-host exclusivity,
// LinkStreams fabric cap) and the in-place window waits for the group's
// evacuations. Serial limits reproduce the legacy sequential timing and
// span tree byte for byte; concurrent limits compress the makespan
// without changing the plan.
//
// A group's in-place node claims one kexec slot per group host (the
// hosts really do kexec simultaneously), so limits.MaxKexecs must be 0
// or at least the group size — otherwise the schedule is starved and an
// ErrStarved-wrapped error is returned.
func (p *Plan) ExecuteScheduled(m ExecutionModel, rec *obs.Recorder, limits sched.Limits) (Result, error) {
	var res Result
	g := sched.NewGraph()
	type migNode struct {
		node *sched.Node
		mig  Migration
	}
	type groupNodes struct {
		migs    []migNode
		inplace *sched.Node
	}
	groups := make([]groupNodes, len(p.Groups))
	var gate *sched.Node // previous group's in-place node: rolling order
	for gi := range p.Groups {
		gp := &p.Groups[gi]
		gn := &groups[gi]
		for _, mig := range gp.Migrations {
			transfer := time.Duration(float64(mig.Bytes) / float64(m.LinkByteRate) * float64(time.Second))
			n := g.Add(&sched.Node{
				Name:    fmt.Sprintf("migrate:vm-%03d", mig.VMID),
				Hosts:   []string{hostName(mig.From), hostName(mig.To)},
				Streams: 1,
				Cost:    transfer + m.PerMigrationOverhead,
			})
			if gate != nil {
				g.Dep(n, gate)
			}
			gn.migs = append(gn.migs, migNode{node: n, mig: mig})
		}
		if gp.InPlaceVMs > 0 || len(gp.Migrations) > 0 {
			hosts := make([]string, len(gp.Hosts))
			for i, id := range gp.Hosts {
				hosts[i] = hostName(id)
			}
			inp := g.Add(&sched.Node{
				Name:   fmt.Sprintf("inplace:group-%d", gi),
				Hosts:  hosts,
				Kexecs: len(gp.Hosts),
				Cost:   m.InPlaceHostTime,
			})
			for _, mn := range gn.migs {
				g.Dep(inp, mn.node)
			}
			if len(gn.migs) == 0 && gate != nil {
				g.Dep(inp, gate)
			}
			gn.inplace = inp
			gate = inp
		}
	}
	schedule, err := sched.Execute(g, limits, sched.Options{Metrics: rec.Metrics()})
	if err != nil {
		return res, err
	}

	// Walk the schedule back into the legacy accounting and span tree:
	// one root, one child per group, grandchildren per migration and per
	// in-place window, all carrying the scheduler's virtual times.
	mets := rec.Metrics()
	root := rec.StartAt(nil, "rolling-upgrade", 0, obs.A("groups", len(p.Groups)))
	root.SetTrack("cluster")
	var cursor time.Duration
	for gi := range p.Groups {
		gp := &p.Groups[gi]
		gn := &groups[gi]
		gStart := cursor
		gSpan := root.ChildAt(fmt.Sprintf("group-%d", gi), gStart,
			obs.A("hosts", len(gp.Hosts)),
			obs.A("migrations", len(gp.Migrations)),
			obs.A("inplace_vms", gp.InPlaceVMs))
		// Attach migration spans in start order: sibling starts must be
		// monotone for the span auditor. Serial schedules are already
		// ordered; concurrent ones interleave.
		ordered := make([]migNode, len(gn.migs))
		copy(ordered, gn.migs)
		sort.SliceStable(ordered, func(i, j int) bool {
			return schedule.Result(ordered[i].node).Start < schedule.Result(ordered[j].node).Start
		})
		migEnd := gStart
		for _, mn := range ordered {
			r := schedule.Result(mn.node)
			sp := gSpan.ChildAt(mn.node.Name, r.Start,
				obs.A("from", mn.mig.From), obs.A("to", mn.mig.To), obs.A("bytes", mn.mig.Bytes))
			sp.EndAt(r.End)
			if r.End > migEnd {
				migEnd = r.End
			}
			mets.Counter("cluster.bytes_migrated", "bytes").Add(int64(mn.mig.Bytes))
		}
		mets.Counter("cluster.migrations", "migrations").Add(int64(len(gp.Migrations)))
		mets.Counter("cluster.inplace_vms", "vms").Add(int64(gp.InPlaceVMs))
		end := migEnd
		if gn.inplace != nil {
			r := schedule.Result(gn.inplace)
			sp := gSpan.ChildAt("inplace-upgrade", r.Start,
				obs.A("hosts", len(gp.Hosts)), obs.A("vms", gp.InPlaceVMs))
			sp.EndAt(r.End)
			end = r.End
			res.InPlaceTime += r.End - r.Start
		}
		res.Migrations += len(gp.Migrations)
		res.MigrationTime += migEnd - gStart
		gSpan.EndAt(end)
		cursor = end
	}
	res.TotalTime = schedule.Makespan
	root.EndAt(schedule.Makespan)
	return res, nil
}

// ExecuteRollingUpgrade plans and times a rolling upgrade in one pass
// with graceful degradation: it follows PlanUpgrade's group mechanics,
// but each host's in-place upgrade consults the fault plan at the
// cluster.host injection site. A host whose upgrade fails is
// quarantined — it keeps running its old hypervisor — and its remaining
// VMs are re-planned onto healthy online hosts (counted as extra
// migrations and charged migration time); VMs that do not fit anywhere
// stay on the quarantined host and are reported as stranded. The
// upgrade never fails the fleet: the Result says exactly how degraded
// it is.
func (c *Cluster) ExecuteRollingUpgrade(groupSize int, m ExecutionModel, rec *obs.Recorder, faults *fault.Plan) (*Plan, Result, error) {
	var res Result
	if groupSize < 1 || groupSize >= len(c.hosts) {
		return nil, res, fmt.Errorf("cluster: group size %d out of range", groupSize)
	}
	mets := rec.Metrics()
	plan := &Plan{}
	var cursorTime time.Duration
	root := rec.StartAt(nil, "rolling-upgrade", 0, obs.A("fault_injected", faults != nil))
	root.SetTrack("cluster")
	migTime := func(bytes uint64) time.Duration {
		return time.Duration(float64(bytes)/float64(m.LinkByteRate)*float64(time.Second)) + m.PerMigrationOverhead
	}
	for lo, gi := 0, 0; lo < len(c.hosts); lo, gi = lo+groupSize, gi+1 {
		hi := lo + groupSize
		if hi > len(c.hosts) {
			hi = len(c.hosts)
		}
		group := c.hosts[lo:hi]
		gp := GroupPlan{}
		gStart := cursorTime
		gSpan := root.ChildAt(fmt.Sprintf("group-%d", gi), gStart, obs.A("hosts", len(group)))
		offline := map[int]bool{}
		for _, h := range group {
			gp.Hosts = append(gp.Hosts, h.ID)
			offline[h.ID] = true
		}
		var groupMig time.Duration
		evacuate := func(h *Host, vmID int, cursor *int, replanned bool) bool {
			vm := h.vms[vmID]
			dest := c.nextOnline(offline, vm, cursor)
			if dest == nil {
				return false
			}
			delete(h.vms, vm.ID)
			dest.vms[vm.ID] = vm
			vm.Host = dest.ID
			vm.Migrations++
			gp.Migrations = append(gp.Migrations, Migration{
				VMID: vm.ID, From: h.ID, To: dest.ID, Bytes: vm.MemBytes,
			})
			dur := migTime(vm.MemBytes)
			name := fmt.Sprintf("migrate:vm-%03d", vm.ID)
			if replanned {
				name = fmt.Sprintf("replan:vm-%03d", vm.ID)
			}
			sp := gSpan.ChildAt(name, gStart+groupMig,
				obs.A("from", h.ID), obs.A("to", dest.ID))
			groupMig += dur
			sp.EndAt(gStart + groupMig)
			mets.Counter("cluster.bytes_migrated", "bytes").Add(int64(vm.MemBytes))
			return true
		}
		// Phase 1: evacuate the migration-requiring VMs (as PlanUpgrade).
		cursor := 0
		for _, h := range group {
			for _, vmID := range h.VMs() {
				if h.vms[vmID].InPlaceCompatible {
					continue
				}
				if !evacuate(h, vmID, &cursor, false) {
					root.EndAt(gStart + groupMig)
					return nil, res, fmt.Errorf("cluster: no capacity to evacuate VM %d", vmID)
				}
			}
		}
		// Phase 2: in-place upgrade each host, with per-host fault arms.
		// Healthy hosts upgrade in parallel (one window); a failed host
		// is quarantined and its survivors re-planned sequentially after
		// the window.
		inplace := time.Duration(0)
		for _, h := range group {
			if fired, _ := faults.Arm(fault.SiteClusterHost); fired {
				res.Faults++
				h.Quarantined = true
				res.FailedHosts = append(res.FailedHosts, h.ID)
				mets.Counter("cluster.hosts_quarantined", "hosts").Add(1)
				continue
			}
			h.Upgraded = true
			gp.InPlaceVMs += len(h.vms)
		}
		if len(group) > 0 {
			inplace = m.InPlaceHostTime // attempt window, healthy or not
			sp := gSpan.ChildAt("inplace-upgrade", gStart+groupMig,
				obs.A("hosts", len(group)), obs.A("vms", gp.InPlaceVMs))
			sp.EndAt(gStart + groupMig + inplace)
		}
		// Phase 3: drain quarantined hosts' VMs onto healthy capacity.
		for _, h := range group {
			if !h.Quarantined {
				continue
			}
			rsp := gSpan.ChildAt(fmt.Sprintf("quarantine:host-%02d", h.ID), gStart+groupMig+inplace,
				obs.A("vms", len(h.vms)))
			delete(offline, h.ID) // it is "online" (old hypervisor), just unusable as a target
			for _, vmID := range h.VMs() {
				if evacuate(h, vmID, &cursor, true) {
					res.ReplannedVMs++
				} else {
					res.StrandedVMs++
				}
			}
			rsp.EndAt(gStart + groupMig + inplace)
		}
		mets.Counter("cluster.migrations", "migrations").Add(int64(len(gp.Migrations)))
		mets.Counter("cluster.inplace_vms", "vms").Add(int64(gp.InPlaceVMs))
		res.Migrations += len(gp.Migrations)
		res.MigrationTime += groupMig
		res.InPlaceTime += inplace
		res.TotalTime += groupMig + inplace
		cursorTime = gStart + groupMig + inplace
		gSpan.EndAt(cursorTime)
		plan.Groups = append(plan.Groups, gp)
	}
	res.Outcome = rpt.OutcomeCompleted
	if res.Faults > 0 {
		res.Outcome = rpt.OutcomeDegraded
	}
	root.SetAttr("outcome", string(res.Outcome))
	root.EndAt(cursorTime)
	return plan, res, nil
}

// Validate checks cluster invariants: every VM placed exactly once, no
// host over capacity. Failures are classified hterr.ErrInvariantViolated
// so callers (clustersim, the chaos auditor) can route on the class.
func (c *Cluster) Validate() error {
	seen := map[int]int{}
	for _, h := range c.hosts {
		v, mem := h.Load()
		if v > h.CapVCPUs || mem > h.CapMem {
			return hterr.InvariantViolated(fmt.Errorf("cluster: host %d over capacity (%d vCPUs, %d bytes)", h.ID, v, mem))
		}
		for id, vm := range h.vms {
			if vm.Host != h.ID {
				return hterr.InvariantViolated(fmt.Errorf("cluster: VM %d host field %d != %d", id, vm.Host, h.ID))
			}
			seen[id]++
		}
	}
	for id := range c.vms {
		if seen[id] != 1 {
			return hterr.InvariantViolated(fmt.Errorf("cluster: VM %d placed %d times", id, seen[id]))
		}
	}
	return nil
}
