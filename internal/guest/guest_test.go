package guest

import (
	"testing"
	"testing/quick"

	"hypertp/internal/hw"
)

// fakeMem is a simple in-process Memory for unit-testing the guest in
// isolation from any hypervisor.
type fakeMem struct {
	pages map[hw.GFN][]byte
	n     uint64
}

func newFakeMem(pages uint64) *fakeMem {
	return &fakeMem{pages: make(map[hw.GFN][]byte), n: pages}
}

func (f *fakeMem) WritePage(gfn hw.GFN, off int, data []byte) error {
	p, ok := f.pages[gfn]
	if !ok {
		p = make([]byte, hw.PageSize4K)
		f.pages[gfn] = p
	}
	copy(p[off:], data)
	return nil
}

func (f *fakeMem) ReadPage(gfn hw.GFN, off, n int) ([]byte, error) {
	out := make([]byte, n)
	if p, ok := f.pages[gfn]; ok {
		copy(out, p[off:off+n])
	}
	return out, nil
}

func (f *fakeMem) NumPages() uint64 { return f.n }

func newTestGuest() *Guest {
	return New("g0", newFakeMem(1024), DefaultDrivers()...)
}

func TestWriteReadVerify(t *testing.T) {
	g := newTestGuest()
	if err := g.Write(5, 100, []byte("payload")); err != nil {
		t.Fatal(err)
	}
	got, err := g.Read(5, 100, 7)
	if err != nil || string(got) != "payload" {
		t.Fatalf("read %q, %v", got, err)
	}
	if err := g.Verify(); err != nil {
		t.Fatal(err)
	}
	if g.WrittenBytes() != 7 {
		t.Fatalf("WrittenBytes = %d, want 7", g.WrittenBytes())
	}
}

func TestVerifyDetectsCorruption(t *testing.T) {
	mem := newFakeMem(1024)
	g := New("g0", mem)
	if err := g.Write(3, 0, []byte{0xAA}); err != nil {
		t.Fatal(err)
	}
	mem.pages[3][0] = 0xBB // corrupt behind the guest's back
	if err := g.Verify(); err == nil {
		t.Fatal("Verify missed corruption")
	}
}

func TestWriteWorkingSet(t *testing.T) {
	g := newTestGuest()
	if err := g.WriteWorkingSet(10, 50); err != nil {
		t.Fatal(err)
	}
	if g.WrittenBytes() != 50*64 {
		t.Fatalf("WrittenBytes = %d, want %d", g.WrittenBytes(), 50*64)
	}
	if err := g.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestWriteWorkingSetBounds(t *testing.T) {
	g := New("g0", newFakeMem(16))
	if err := g.WriteWorkingSet(10, 10); err == nil {
		t.Fatal("working set past end of memory accepted")
	}
}

func TestRebindPreservesVerification(t *testing.T) {
	memA := newFakeMem(64)
	g := New("g0", memA)
	g.Write(1, 10, []byte("hello"))
	// Simulate a transplant: the same backing pages become visible
	// through a new accessor.
	memB := newFakeMem(64)
	memB.pages = memA.pages
	g.Rebind(memB)
	if g.Memory() != Memory(memB) {
		t.Fatal("Rebind did not switch accessor")
	}
	if err := g.Verify(); err != nil {
		t.Fatalf("verify after rebind: %v", err)
	}
}

func TestTransplantProtocol(t *testing.T) {
	g := newTestGuest()
	if !g.AllDriversRunning() {
		t.Fatal("drivers not running initially")
	}
	if err := g.PrepareTransplant(); err != nil {
		t.Fatal(err)
	}
	if g.Driver("virtio-blk").State() != DriverPaused {
		t.Fatalf("emulated driver state = %v, want paused", g.Driver("virtio-blk").State())
	}
	if g.Driver("virtio-net").State() != DriverUnplugged {
		t.Fatalf("network driver state = %v, want unplugged", g.Driver("virtio-net").State())
	}
	if g.AllDriversRunning() {
		t.Fatal("AllDriversRunning true mid-transplant")
	}
	if err := g.CompleteTransplant(); err != nil {
		t.Fatal(err)
	}
	if !g.AllDriversRunning() {
		t.Fatal("drivers not running after completion")
	}
	pauses, resumes, rescans := g.ProtocolCounters()
	if pauses != 2 || resumes != 2 || rescans != 1 {
		t.Fatalf("counters = %d/%d/%d, want 2/2/1", pauses, resumes, rescans)
	}
}

func TestPassthroughDriverPausesInPlace(t *testing.T) {
	d := &Driver{Name: "gpu", Class: DevicePassthrough}
	g := New("g0", newFakeMem(16), d)
	if err := g.PrepareTransplant(); err != nil {
		t.Fatal(err)
	}
	if d.State() != DriverPaused {
		t.Fatalf("passthrough driver = %v, want paused", d.State())
	}
	if err := g.CompleteTransplant(); err != nil {
		t.Fatal(err)
	}
	if d.State() != DriverRunning {
		t.Fatalf("passthrough driver = %v after completion", d.State())
	}
}

func TestDoublePrepareFails(t *testing.T) {
	g := newTestGuest()
	if err := g.PrepareTransplant(); err != nil {
		t.Fatal(err)
	}
	if err := g.PrepareTransplant(); err == nil {
		t.Fatal("double prepare accepted")
	}
}

func TestCompleteWithoutPrepareFails(t *testing.T) {
	g := newTestGuest()
	if err := g.CompleteTransplant(); err == nil {
		t.Fatal("complete without prepare accepted")
	}
}

func TestDriverLookup(t *testing.T) {
	g := newTestGuest()
	if g.Driver("virtio-net") == nil {
		t.Fatal("virtio-net not found")
	}
	if g.Driver("missing") != nil {
		t.Fatal("phantom driver found")
	}
	if len(g.Drivers()) != 3 {
		t.Fatalf("Drivers() len = %d, want 3", len(g.Drivers()))
	}
}

func TestStateStrings(t *testing.T) {
	if DriverRunning.String() != "running" || DriverPaused.String() != "paused" ||
		DriverUnplugged.String() != "unplugged" {
		t.Fatal("driver state strings wrong")
	}
	if DriverState(9).String() == "" {
		t.Fatal("unknown driver state empty")
	}
	if DeviceEmulated.String() != "emulated" || DevicePassthrough.String() != "passthrough" ||
		DeviceNetwork.String() != "network" {
		t.Fatal("device class strings wrong")
	}
	if DeviceClass(9).String() == "" {
		t.Fatal("unknown device class empty")
	}
}

// Property: any sequence of writes verifies as long as memory is not
// corrupted; the latest write to an offset wins.
func TestPropertyWritesVerify(t *testing.T) {
	f := func(ops []uint32) bool {
		g := New("p", newFakeMem(256))
		for _, op := range ops {
			gfn := hw.GFN(op % 256)
			off := int(op>>8) % (hw.PageSize4K - 4)
			val := byte(op >> 24)
			if err := g.Write(gfn, off, []byte{val, val ^ 0xff}); err != nil {
				return false
			}
		}
		return g.Verify() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
