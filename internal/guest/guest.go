// Package guest models the software running inside a VM: a guest kernel
// with device drivers that participate in the transplant notification
// protocol (§4.2.3), and applications that read and write real bytes in
// guest memory.
//
// The guest is deliberately hypervisor-agnostic: it talks to its memory
// through the Memory interface, which the owning hypervisor provides. When
// a VM is transplanted, the new hypervisor rebinds the guest's memory
// accessor; everything the guest ever wrote must still be there — that is
// the Guest State preservation property the tests check end to end.
package guest

import (
	"fmt"

	"hypertp/internal/hw"
	"hypertp/internal/par"
)

// Memory is the guest-physical address space as exposed by whichever
// hypervisor currently runs the VM.
type Memory interface {
	// WritePage stores data at byte offset off of guest frame gfn.
	WritePage(gfn hw.GFN, off int, data []byte) error
	// ReadPage loads n bytes from byte offset off of guest frame gfn.
	ReadPage(gfn hw.GFN, off, n int) ([]byte, error)
	// NumPages returns the guest's page count.
	NumPages() uint64
}

// DriverState is the lifecycle state of a guest device driver.
type DriverState uint8

const (
	// DriverRunning is normal operation.
	DriverRunning DriverState = iota
	// DriverPaused: device quiesced for transplant; driver state lives
	// in guest memory and survives as Guest State.
	DriverPaused
	// DriverUnplugged: device removed ahead of transplant (the paper's
	// strategy for network devices); reinstalled by a rescan afterwards.
	DriverUnplugged
)

func (s DriverState) String() string {
	switch s {
	case DriverRunning:
		return "running"
	case DriverPaused:
		return "paused"
	case DriverUnplugged:
		return "unplugged"
	default:
		return fmt.Sprintf("driverstate(%d)", uint8(s))
	}
}

// DeviceClass describes how a device is virtualized, which determines its
// transplant strategy (§4.2.3).
type DeviceClass uint8

const (
	// DeviceEmulated devices have their emulation state translated
	// through UISR.
	DeviceEmulated DeviceClass = iota
	// DevicePassthrough devices are paused in place: the hardware stays
	// identical across transplant and the driver state is Guest State.
	DevicePassthrough
	// DeviceNetwork devices are unplugged before and rescanned after
	// transplant; the paper observed this does not break TCP
	// connections.
	DeviceNetwork
)

func (c DeviceClass) String() string {
	switch c {
	case DeviceEmulated:
		return "emulated"
	case DevicePassthrough:
		return "passthrough"
	case DeviceNetwork:
		return "network"
	default:
		return fmt.Sprintf("deviceclass(%d)", uint8(c))
	}
}

// Driver is one guest device driver participating in the transplant
// protocol.
type Driver struct {
	Name  string
	Class DeviceClass
	state DriverState
	// pauseCount / resumeCount audit protocol compliance.
	pauseCount, resumeCount, rescanCount int
}

// State returns the driver's current lifecycle state.
func (d *Driver) State() DriverState { return d.state }

// Guest is the software stack of one VM.
type Guest struct {
	Name    string
	mem     Memory
	drivers []*Driver
	// writes tracks everything the guest has written:
	// (gfn, off) -> value, so integrity can be verified byte-for-byte
	// after any transplant. Only bookkeeping — the actual bytes live in
	// simulated physical memory.
	writes map[pageOff]byte
	seq    uint64
}

type pageOff struct {
	gfn hw.GFN
	off uint16
}

// New creates a guest bound to mem with the given device drivers.
func New(name string, mem Memory, drivers ...*Driver) *Guest {
	return &Guest{
		Name:    name,
		mem:     mem,
		drivers: drivers,
		writes:  make(map[pageOff]byte),
	}
}

// Rebind switches the guest's memory accessor to the one provided by a new
// hypervisor. The guest itself does not notice: its state is in memory.
func (g *Guest) Rebind(mem Memory) { g.mem = mem }

// Memory returns the current accessor (nil while the VM is mid-transplant).
func (g *Guest) Memory() Memory { return g.mem }

// Drivers returns the guest's device drivers.
func (g *Guest) Drivers() []*Driver { return g.drivers }

// Driver returns the named driver, or nil.
func (g *Guest) Driver(name string) *Driver {
	for _, d := range g.drivers {
		if d.Name == name {
			return d
		}
	}
	return nil
}

// Write stores data into guest memory and records it for later
// verification.
func (g *Guest) Write(gfn hw.GFN, off int, data []byte) error {
	if err := g.mem.WritePage(gfn, off, data); err != nil {
		return err
	}
	for i, b := range data {
		g.writes[pageOff{gfn, uint16(off + i)}] = b
	}
	return nil
}

// Read loads bytes from guest memory.
func (g *Guest) Read(gfn hw.GFN, off, n int) ([]byte, error) {
	return g.mem.ReadPage(gfn, off, n)
}

// WriteWorkingSet writes a deterministic pattern across npages pages
// starting at startGFN (one 64-byte record per page), simulating an
// application's resident data.
//
// The sequence range is reserved up front, so each page's record depends
// only on its index and the fill+WritePage loop can fan out on the par
// pool (pages are distinct frames); the write-tracking map is updated in a
// sequential pass afterwards.
func (g *Guest) WriteWorkingSet(startGFN hw.GFN, npages int) error {
	for i := 0; i < npages; i++ {
		if uint64(startGFN)+uint64(i) >= g.mem.NumPages() {
			return fmt.Errorf("guest %s: working set page %d beyond memory", g.Name, startGFN+hw.GFN(i))
		}
	}
	base := g.seq
	g.seq += uint64(npages)
	recs := make([][64]byte, npages)
	err := par.ForEachSpan(npages, func(lo, hi int) error {
		for i := lo; i < hi; i++ {
			gfn := startGFN + hw.GFN(i)
			rec := recs[i][:]
			fill(rec, uint64(gfn)*2654435761+base+uint64(i)+1)
			if err := g.mem.WritePage(gfn, int(uint64(gfn)%(hw.PageSize4K-64)), rec); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return err
	}
	for i := 0; i < npages; i++ {
		gfn := startGFN + hw.GFN(i)
		off := int(uint64(gfn) % (hw.PageSize4K - 64))
		for j, b := range recs[i] {
			g.writes[pageOff{gfn, uint16(off + j)}] = b
		}
	}
	return nil
}

// Verify re-reads every byte the guest ever wrote and reports the first
// mismatch. A nil return is the Guest State preservation property.
// Reads are independent, so the check fans out over a snapshot of the
// recorded writes.
func (g *Guest) Verify() error {
	type rec struct {
		k    pageOff
		want byte
	}
	recs := make([]rec, 0, len(g.writes))
	for k, want := range g.writes {
		recs = append(recs, rec{k, want})
	}
	return par.ForEachSpan(len(recs), func(lo, hi int) error {
		for i := lo; i < hi; i++ {
			k, want := recs[i].k, recs[i].want
			got, err := g.mem.ReadPage(k.gfn, int(k.off), 1)
			if err != nil {
				return fmt.Errorf("guest %s: verify gfn %d off %d: %w", g.Name, k.gfn, k.off, err)
			}
			if got[0] != want {
				return fmt.Errorf("guest %s: corrupt byte at gfn %d off %d: got %#x want %#x",
					g.Name, k.gfn, k.off, got[0], want)
			}
		}
		return nil
	})
}

// WrittenBytes returns the number of distinct bytes the guest has written.
func (g *Guest) WrittenBytes() int { return len(g.writes) }

// PrepareTransplant runs the pre-transplant notification (delivered
// similarly to Azure's Scheduled Events, per the paper): passthrough
// devices are paused, network devices are unplugged, emulated devices are
// paused for state capture.
func (g *Guest) PrepareTransplant() error {
	for _, d := range g.drivers {
		switch d.Class {
		case DevicePassthrough, DeviceEmulated:
			if d.state != DriverRunning {
				return fmt.Errorf("guest %s: driver %s is %v, cannot pause", g.Name, d.Name, d.state)
			}
			d.state = DriverPaused
			d.pauseCount++
		case DeviceNetwork:
			if d.state != DriverRunning {
				return fmt.Errorf("guest %s: driver %s is %v, cannot unplug", g.Name, d.Name, d.state)
			}
			d.state = DriverUnplugged
		}
	}
	return nil
}

// CompleteTransplant runs the post-transplant notification: paused devices
// resume, unplugged devices are rediscovered by a bus rescan.
func (g *Guest) CompleteTransplant() error {
	for _, d := range g.drivers {
		switch d.state {
		case DriverPaused:
			d.state = DriverRunning
			d.resumeCount++
		case DriverUnplugged:
			d.state = DriverRunning
			d.rescanCount++
		case DriverRunning:
			return fmt.Errorf("guest %s: driver %s was never prepared", g.Name, d.Name)
		}
	}
	return nil
}

// AllDriversRunning reports whether every driver is back in normal
// operation.
func (g *Guest) AllDriversRunning() bool {
	for _, d := range g.drivers {
		if d.state != DriverRunning {
			return false
		}
	}
	return true
}

// ProtocolCounters returns (pauses, resumes, rescans) across all drivers,
// for protocol-compliance assertions in tests.
func (g *Guest) ProtocolCounters() (pauses, resumes, rescans int) {
	for _, d := range g.drivers {
		pauses += d.pauseCount
		resumes += d.resumeCount
		rescans += d.rescanCount
	}
	return
}

// DefaultDrivers returns the device complement the paper's experiments
// use: an emulated block device (remote storage), an emulated-unplugged
// network device, and a serial console.
func DefaultDrivers() []*Driver {
	return []*Driver{
		{Name: "virtio-blk", Class: DeviceEmulated},
		{Name: "virtio-net", Class: DeviceNetwork},
		{Name: "serial", Class: DeviceEmulated},
	}
}

func fill(b []byte, seed uint64) {
	s := seed
	for i := range b {
		s += 0x9e3779b97f4a7c15
		z := s
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		b[i] = byte(z ^ (z >> 27))
	}
}
