package fault

import (
	"fmt"
	"time"

	"hypertp/internal/hterr"
)

// RetryPolicy bounds the recovery loops: how many attempts an operation
// gets and how long (in virtual time) to back off between them. The
// zero value means "one attempt, no backoff" — existing callers that
// never opted into retry keep their old semantics.
//
// Independent of MaxAttempts, every retry loop runs under a hard
// watchdog (Exceeded): no configuration — not even MaxAttempts set to
// MaxInt — can make a loop spin unbounded. Blowing the watchdog
// surfaces hterr.ErrWatchdogExpired instead of hanging.
type RetryPolicy struct {
	// MaxAttempts is the total attempt budget (first try included).
	// Values below 1 behave as 1; values above HardAttemptCap are
	// clamped by the watchdog.
	MaxAttempts int
	// BaseBackoff is the virtual-time wait before the second attempt.
	BaseBackoff time.Duration
	// Multiplier grows the backoff exponentially per extra attempt
	// (values below 1 behave as 1 — constant backoff).
	Multiplier float64
	// MaxElapsed bounds the total virtual time a retry loop may consume
	// from its first attempt, regardless of how many attempts remain.
	// Zero takes DefaultMaxElapsed; it cannot be disabled.
	MaxElapsed time.Duration
}

// HardAttemptCap is the absolute ceiling on retry attempts, applied on
// top of MaxAttempts. It is far above any sane policy — its only job is
// turning a misconfigured "infinite" retry into a watchdog error.
const HardAttemptCap = 256

// DefaultMaxElapsed is the virtual-time watchdog budget a retry loop
// gets when the policy does not set one: generous against the slowest
// calibrated machine profile (multi-second boots, multi-GB PRAM
// parses), but finite.
const DefaultMaxElapsed = 15 * time.Minute

// ElapsedCap returns the effective virtual-time budget (MaxElapsed, or
// DefaultMaxElapsed when unset).
func (r RetryPolicy) ElapsedCap() time.Duration {
	if r.MaxElapsed > 0 {
		return r.MaxElapsed
	}
	return DefaultMaxElapsed
}

// Exceeded is the retry watchdog: attempt counts completed attempts and
// elapsed is the virtual time since the loop's first attempt began. It
// returns nil while another attempt is within budget, and an error
// classified hterr.ErrWatchdogExpired once the hard attempt cap or the
// elapsed-virtual-time cap is blown. Retry loops must consult it before
// every re-attempt, after their ordinary MaxAttempts check.
func (r RetryPolicy) Exceeded(attempt int, elapsed time.Duration) error {
	if attempt >= HardAttemptCap {
		return hterr.WatchdogExpired(fmt.Errorf(
			"fault: retry watchdog: %d attempts reached the hard cap %d", attempt, HardAttemptCap))
	}
	if budget := r.ElapsedCap(); elapsed >= budget {
		return hterr.WatchdogExpired(fmt.Errorf(
			"fault: retry watchdog: %v of virtual time spent retrying, budget %v", elapsed, budget))
	}
	return nil
}

// DefaultRetryPolicy is the paper-faithful recovery budget: three
// attempts with 50 ms base backoff doubling each round.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{MaxAttempts: 3, BaseBackoff: 50 * time.Millisecond, Multiplier: 2}
}

// Attempts returns the effective attempt budget (at least 1).
func (r RetryPolicy) Attempts() int {
	if r.MaxAttempts < 1 {
		return 1
	}
	return r.MaxAttempts
}

// Backoff returns the wait before the (attempt+1)-th try, where attempt
// counts completed failed attempts (1-based): Base * Multiplier^(attempt-1).
func (r RetryPolicy) Backoff(attempt int) time.Duration {
	if attempt < 1 || r.BaseBackoff <= 0 {
		return 0
	}
	m := r.Multiplier
	if m < 1 {
		m = 1
	}
	d := float64(r.BaseBackoff)
	for i := 1; i < attempt; i++ {
		d *= m
	}
	return time.Duration(d)
}
