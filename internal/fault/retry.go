package fault

import "time"

// RetryPolicy bounds the recovery loops: how many attempts an operation
// gets and how long (in virtual time) to back off between them. The
// zero value means "one attempt, no backoff" — existing callers that
// never opted into retry keep their old semantics.
type RetryPolicy struct {
	// MaxAttempts is the total attempt budget (first try included).
	// Values below 1 behave as 1.
	MaxAttempts int
	// BaseBackoff is the virtual-time wait before the second attempt.
	BaseBackoff time.Duration
	// Multiplier grows the backoff exponentially per extra attempt
	// (values below 1 behave as 1 — constant backoff).
	Multiplier float64
}

// DefaultRetryPolicy is the paper-faithful recovery budget: three
// attempts with 50 ms base backoff doubling each round.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{MaxAttempts: 3, BaseBackoff: 50 * time.Millisecond, Multiplier: 2}
}

// Attempts returns the effective attempt budget (at least 1).
func (r RetryPolicy) Attempts() int {
	if r.MaxAttempts < 1 {
		return 1
	}
	return r.MaxAttempts
}

// Backoff returns the wait before the (attempt+1)-th try, where attempt
// counts completed failed attempts (1-based): Base * Multiplier^(attempt-1).
func (r RetryPolicy) Backoff(attempt int) time.Duration {
	if attempt < 1 || r.BaseBackoff <= 0 {
		return 0
	}
	m := r.Multiplier
	if m < 1 {
		m = 1
	}
	d := float64(r.BaseBackoff)
	for i := 1; i < attempt; i++ {
		d *= m
	}
	return time.Duration(d)
}
