package fault

import (
	"errors"
	"testing"
	"time"

	"hypertp/internal/hterr"
	"hypertp/internal/obs"
	"hypertp/internal/simtime"
)

func TestNilPlanIsFree(t *testing.T) {
	var p *Plan
	if err := p.Fire(SitePRAMBuild); err != nil {
		t.Fatal(err)
	}
	if fired, _ := p.Arm(SiteHVBoot); fired {
		t.Fatal("nil plan fired")
	}
	if p.Shots() != nil || p.Count(SiteHVBoot) != 0 || p.FiredSites() != nil {
		t.Fatal("nil plan has state")
	}
	p.Restrict(SiteHVBoot)
	p.ForceAt(SiteHVBoot, 1)
	p.SetClock(nil)
	p.SetRecorder(nil)
}

func TestDeterministicAcrossPlans(t *testing.T) {
	run := func() []bool {
		p := NewPlan(42, 0.5)
		var out []bool
		for i := 0; i < 64; i++ {
			fired, _ := p.Arm(SiteLinkAbort)
			out = append(out, fired)
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("occurrence %d differs across identical plans", i+1)
		}
	}
	// A different seed must produce a different firing pattern.
	p2 := NewPlan(43, 0.5)
	same := true
	for i := 0; i < 64; i++ {
		fired, _ := p2.Arm(SiteLinkAbort)
		if fired != a[i] {
			same = false
		}
	}
	if same {
		t.Fatal("seed 42 and 43 fire identically over 64 arms")
	}
}

func TestRateZeroAndOne(t *testing.T) {
	p0 := NewPlan(1, 0)
	p1 := NewPlan(1, 1)
	for i := 0; i < 32; i++ {
		if fired, _ := p0.Arm(SitePRAMBuild); fired {
			t.Fatal("rate 0 fired")
		}
		if fired, _ := p1.Arm(SitePRAMBuild); !fired {
			t.Fatal("rate 1 did not fire")
		}
	}
}

func TestForceAtFiresExactOccurrence(t *testing.T) {
	p := NewPlan(7, 0).ForceAt(SiteHVBoot, 3)
	for n := 1; n <= 5; n++ {
		fired, _ := p.Arm(SiteHVBoot)
		if fired != (n == 3) {
			t.Fatalf("occurrence %d fired=%v", n, fired)
		}
	}
	shots := p.Shots()
	if len(shots) != 1 || shots[0].Site != SiteHVBoot || shots[0].Occurrence != 3 {
		t.Fatalf("shots = %v", shots)
	}
}

func TestRestrictLimitsProbabilisticFiring(t *testing.T) {
	p := NewPlan(9, 1).Restrict(SiteLinkLoss)
	if fired, _ := p.Arm(SitePRAMBuild); fired {
		t.Fatal("restricted-out site fired")
	}
	if fired, _ := p.Arm(SiteLinkLoss); !fired {
		t.Fatal("restricted-in site did not fire")
	}
	// ForceAt overrides the restriction.
	p.ForceAt(SitePRAMBuild, 2)
	p2 := NewPlan(9, 0).Restrict(SiteLinkLoss).ForceAt(SitePRAMBuild, 1)
	if fired, _ := p2.Arm(SitePRAMBuild); !fired {
		t.Fatal("forced shot suppressed by restriction")
	}
}

func TestFireWrapsErrInjected(t *testing.T) {
	p := NewPlan(1, 0).ForceAt(SiteKexecHandover, 1)
	err := p.Fire(SiteKexecHandover)
	if !errors.Is(err, hterr.ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected", err)
	}
	if err := p.Fire(SiteKexecHandover); err != nil {
		t.Fatalf("second occurrence fired: %v", err)
	}
}

func TestClockAndRecorder(t *testing.T) {
	clock := simtime.NewClock()
	clock.Advance(3 * time.Second)
	rec := obs.NewRecorder(clock)
	p := NewPlan(1, 0).ForceAt(SiteLinkAbort, 1).SetClock(clock).SetRecorder(rec)
	if err := p.Fire(SiteLinkAbort); err == nil {
		t.Fatal("forced shot did not fire")
	}
	if got := p.Shots()[0].At; got != 3*time.Second {
		t.Fatalf("shot at %v, want 3s", got)
	}
	if n := rec.Metrics().Counter("fault.injected", "faults").Value(); n != 1 {
		t.Fatalf("fault.injected = %d", n)
	}
}

func TestParseSites(t *testing.T) {
	sites, err := ParseSites("pram.build, link.abort")
	if err != nil || len(sites) != 2 || sites[0] != SitePRAMBuild || sites[1] != SiteLinkAbort {
		t.Fatalf("sites=%v err=%v", sites, err)
	}
	if sites, err := ParseSites(""); err != nil || sites != nil {
		t.Fatal("empty list should mean all sites")
	}
	if _, err := ParseSites("bogus.site"); err == nil {
		t.Fatal("unknown site accepted")
	}
	for _, s := range Sites() {
		if !Registered(s) {
			t.Fatalf("registry inconsistent for %s", s)
		}
	}
	if len(Sites()) < 10 {
		t.Fatalf("only %d sites registered", len(Sites()))
	}
}

func TestRetryPolicy(t *testing.T) {
	var zero RetryPolicy
	if zero.Attempts() != 1 || zero.Backoff(1) != 0 {
		t.Fatal("zero policy should mean one attempt, no backoff")
	}
	p := DefaultRetryPolicy()
	if p.Attempts() != 3 {
		t.Fatalf("attempts = %d", p.Attempts())
	}
	if p.Backoff(1) != 50*time.Millisecond || p.Backoff(2) != 100*time.Millisecond || p.Backoff(3) != 200*time.Millisecond {
		t.Fatalf("backoffs = %v %v %v", p.Backoff(1), p.Backoff(2), p.Backoff(3))
	}
	flat := RetryPolicy{MaxAttempts: 5, BaseBackoff: time.Second, Multiplier: 0}
	if flat.Backoff(4) != time.Second {
		t.Fatal("multiplier<1 should behave as constant backoff")
	}
}

func TestDeriveIndependentChildPlans(t *testing.T) {
	parent := NewPlan(42, 0.5).Restrict(SiteHVBoot, SitePRAMParse)
	parent.ForceAt(SiteClusterHost, 1)

	// Derivation is a pure function of (parent seed, index): two
	// derivations with the same index behave identically.
	a1, a2 := parent.Derive(3), parent.Derive(3)
	for i := 0; i < 20; i++ {
		f1, _ := a1.Arm(SiteHVBoot)
		f2, _ := a2.Arm(SiteHVBoot)
		if f1 != f2 {
			t.Fatalf("same-index children diverge at arm %d", i)
		}
	}

	// Different indices give independent streams (they must not all
	// mirror the parent draw-for-draw).
	same := true
	b := parent.Derive(7)
	c := parent.Derive(8)
	for i := 0; i < 40; i++ {
		fb, _ := b.Arm(SiteHVBoot)
		fc, _ := c.Arm(SiteHVBoot)
		if fb != fc {
			same = false
		}
	}
	if same {
		t.Fatal("children at different indices produced identical streams")
	}

	// Restriction is inherited; ForceAt one-shots are not.
	d := parent.Derive(0)
	if fired, _ := d.Arm(SiteClusterHost); fired {
		t.Fatal("derived plan inherited the parent's ForceAt one-shot")
	}
	if fired, _ := d.Arm(SiteLinkAbort); fired {
		t.Fatal("derived plan fired a site outside the inherited restriction")
	}

	// Child shots stay out of the parent's log.
	if n := parent.Count(SiteHVBoot); n != 0 {
		t.Fatalf("parent recorded %d child arms", n)
	}
}
