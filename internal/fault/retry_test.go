package fault

import (
	"errors"
	"testing"
	"time"

	"hypertp/internal/hterr"
)

func TestRetryWatchdogWithinBudget(t *testing.T) {
	r := DefaultRetryPolicy()
	if err := r.Exceeded(0, 0); err != nil {
		t.Fatalf("fresh loop exceeded: %v", err)
	}
	if err := r.Exceeded(HardAttemptCap-1, DefaultMaxElapsed-1); err != nil {
		t.Fatalf("loop inside both caps exceeded: %v", err)
	}
}

func TestRetryWatchdogAttemptCap(t *testing.T) {
	// Even a policy configured for effectively infinite attempts hits
	// the hard cap — misconfiguration cannot buy an unbounded loop.
	r := RetryPolicy{MaxAttempts: 1 << 30}
	err := r.Exceeded(HardAttemptCap, 0)
	if err == nil || !errors.Is(err, hterr.ErrWatchdogExpired) {
		t.Fatalf("attempt cap err = %v, want ErrWatchdogExpired", err)
	}
}

func TestRetryWatchdogElapsedCap(t *testing.T) {
	r := RetryPolicy{MaxElapsed: time.Minute}
	if r.ElapsedCap() != time.Minute {
		t.Fatalf("ElapsedCap = %v", r.ElapsedCap())
	}
	err := r.Exceeded(1, time.Minute)
	if err == nil || !errors.Is(err, hterr.ErrWatchdogExpired) {
		t.Fatalf("elapsed cap err = %v, want ErrWatchdogExpired", err)
	}
	if err := r.Exceeded(1, time.Minute-1); err != nil {
		t.Fatalf("inside elapsed cap: %v", err)
	}
}

func TestRetryWatchdogDefaultElapsed(t *testing.T) {
	var r RetryPolicy // zero policy still carries the default budget
	if r.ElapsedCap() != DefaultMaxElapsed {
		t.Fatalf("zero policy ElapsedCap = %v, want %v", r.ElapsedCap(), DefaultMaxElapsed)
	}
	if err := r.Exceeded(1, DefaultMaxElapsed+1); err == nil {
		t.Fatal("default elapsed budget not enforced")
	}
}
