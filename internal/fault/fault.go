// Package fault is the deterministic fault-injection subsystem behind
// the crash-safety story (ReHype's lesson: hypervisor-level recovery is
// only credible when failures are injected at every phase boundary and
// the recovery is verified).
//
// A Plan is seeded and consulted at named injection sites wired through
// the transplant stack: PRAM build/parse, UISR translate/restore, the
// kexec load and handover, hypervisor boot, per-round link abort/loss,
// and cluster host upgrades. Whether a given arming fires is a pure
// function of (seed, site, occurrence), so the same plan produces the
// same faults — and therefore the same recovery paths and reports — for
// any host worker count, which is what the determinism tests pin.
//
// A nil *Plan is valid everywhere and free: every method no-ops, so the
// un-injected fast path costs one nil check.
package fault

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"hypertp/internal/hterr"
	"hypertp/internal/obs"
	"hypertp/internal/par"
	"hypertp/internal/simtime"
)

// Site names one registered injection point.
type Site string

// The registered injection sites. Each is armed once per occurrence of
// the named phase boundary.
const (
	// SiteKexecLoad fails staging the target hypervisor image (Fig. 3 ❶).
	SiteKexecLoad Site = "kexec.load"
	// SitePRAMBuild fails PRAM construction (Fig. 3 ❷/❸).
	SitePRAMBuild Site = "pram.build"
	// SiteUISRTranslate fails the VM_i State → UISR translation (Fig. 3 ❸).
	SiteUISRTranslate Site = "uisr.translate"
	// SiteKexecHandover crashes the micro-reboot after the wipe — the
	// machine comes up with only PRAM to recover from (Fig. 3 ❹).
	SiteKexecHandover Site = "kexec.handover"
	// SiteHVBoot fails the target hypervisor's boot (Fig. 3 ❺).
	SiteHVBoot Site = "hv.boot"
	// SitePRAMParse fails the boot-time PRAM re-parse (Fig. 3 ❺).
	SitePRAMParse Site = "pram.parse"
	// SiteUISRRestore crashes mid-restoration on the target (Fig. 3 ❻).
	SiteUISRRestore Site = "uisr.restore"
	// SiteLinkAbort severs an in-flight transfer (one migration round).
	SiteLinkAbort Site = "link.abort"
	// SiteLinkLoss makes a transfer lossy: retransmissions inflate the
	// bytes actually moved.
	SiteLinkLoss Site = "link.loss"
	// SiteClusterHost fails one host's in-place upgrade during a rolling
	// cluster upgrade.
	SiteClusterHost Site = "cluster.host"
	// SiteCacheStale poisons a transplant-cache entry at lookup: the hit
	// is discarded and the engine must fall back to the cold
	// translate-and-encode path.
	SiteCacheStale Site = "cache.stale"
	// SiteHVCrash fail-stops a running hypervisor between operations:
	// vCPUs freeze, guest memory and VM_i State survive in place, and
	// only the reactive emergency path can bring the host back.
	SiteHVCrash Site = "hv.crash"
	// SiteHVCrashDuringTP fail-stops the source hypervisor in the middle
	// of a planned transplant — a double fault: the planned path is
	// abandoned with VMs paused and the emergency path must salvage them.
	SiteHVCrashDuringTP Site = "hv.crash.during_transplant"
	// SiteHVHang wedges a hypervisor without fail-stopping it: vCPUs
	// keep the frozen state but the control plane stops answering, so the
	// detector only sees missed heartbeats and recovery must fence the
	// host (force the fail-stop) before salvaging.
	SiteHVHang Site = "hv.hang"
)

// registry is the ordered universe of sites ParseSites accepts.
var registry = []Site{
	SiteKexecLoad, SitePRAMBuild, SiteUISRTranslate, SiteKexecHandover,
	SiteHVBoot, SitePRAMParse, SiteUISRRestore, SiteLinkAbort,
	SiteLinkLoss, SiteClusterHost, SiteCacheStale,
	SiteHVCrash, SiteHVCrashDuringTP, SiteHVHang,
}

// Sites returns every registered injection site in registry order.
func Sites() []Site {
	return append([]Site(nil), registry...)
}

// Registered reports whether s names a known injection site.
func Registered(s Site) bool {
	for _, r := range registry {
		if r == s {
			return true
		}
	}
	return false
}

// ParseSites parses a comma-separated site list ("pram.build,link.abort").
// The empty string means "all sites".
func ParseSites(csv string) ([]Site, error) {
	if strings.TrimSpace(csv) == "" {
		return nil, nil
	}
	var out []Site
	for _, f := range strings.Split(csv, ",") {
		s := Site(strings.TrimSpace(f))
		if s == "" {
			continue
		}
		if !Registered(s) {
			return nil, fmt.Errorf("fault: unknown site %q (known: %s)", s, siteList())
		}
		out = append(out, s)
	}
	return out, nil
}

func siteList() string {
	names := make([]string, len(registry))
	for i, s := range registry {
		names[i] = string(s)
	}
	return strings.Join(names, ",")
}

// Shot records one fired injection.
type Shot struct {
	Site       Site
	Occurrence int           // 1-based arm count at which the site fired
	At         time.Duration // virtual time, 0 without a clock
}

func (s Shot) String() string {
	return fmt.Sprintf("%s#%d@%v", s.Site, s.Occurrence, s.At)
}

// Plan is a seeded fault plan. Construct with NewPlan, then optionally
// Restrict to a site subset, ForceAt deterministic one-shots, and attach
// a clock/recorder. Plans are safe for concurrent use, though the
// simulator arms sites from its single event-loop goroutine.
type Plan struct {
	mu      sync.Mutex
	seed    uint64
	rate    float64
	enabled map[Site]bool // nil = every registered site
	forced  map[Site]map[int]bool
	counts  map[Site]int
	shots   []Shot
	clock   *simtime.Clock
	rec     *obs.Recorder
}

// NewPlan creates a plan that fires each armed site with probability
// rate, deterministically derived from (seed, site, occurrence). A rate
// of 0 fires nothing except ForceAt one-shots; a rate of 1 fires every
// arm of every enabled site.
func NewPlan(seed uint64, rate float64) *Plan {
	return &Plan{
		seed:   seed,
		rate:   rate,
		forced: make(map[Site]map[int]bool),
		counts: make(map[Site]int),
	}
}

// Restrict limits probabilistic firing to the given sites (ForceAt
// one-shots always fire regardless). No sites removes the restriction.
func (p *Plan) Restrict(sites ...Site) *Plan {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(sites) == 0 {
		p.enabled = nil
		return p
	}
	p.enabled = make(map[Site]bool, len(sites))
	for _, s := range sites {
		p.enabled[s] = true
	}
	return p
}

// ForceAt schedules a deterministic one-shot: the site fires at exactly
// its occurrence-th arm (1-based). The recovery matrix test uses this to
// hit every site once.
func (p *Plan) ForceAt(site Site, occurrence int) *Plan {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	m := p.forced[site]
	if m == nil {
		m = make(map[int]bool)
		p.forced[site] = m
	}
	m[occurrence] = true
	return p
}

// Derive returns an independent child plan for concurrent work item i:
// same rate and site restriction, but a seed mixed from the parent seed
// and the item index (par.DeriveSeed), a fresh shot log, and no
// clock/recorder/ForceAt inheritance. Fleet-level schedulers hand each
// concurrently-executing host its own derived plan so fault draws do not
// depend on the nondeterministic arming order of a shared stream;
// ForceAt one-shots stay on the parent, which is only armed from the
// scheduler's sequential phases.
func (p *Plan) Derive(i int) *Plan {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	child := NewPlan(par.DeriveSeed(p.seed, i), p.rate)
	if p.enabled != nil {
		child.enabled = make(map[Site]bool, len(p.enabled))
		for s := range p.enabled {
			child.enabled[s] = true
		}
	}
	return child
}

// SetClock timestamps future shots with virtual time.
func (p *Plan) SetClock(c *simtime.Clock) *Plan {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.clock = c
	return p
}

// SetRecorder records every shot as an obs event plus a fault.injected
// counter increment.
func (p *Plan) SetRecorder(rec *obs.Recorder) *Plan {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.rec = rec
	return p
}

// roll derives the deterministic uniform sample for one (site,
// occurrence) arm: a SplitMix64 stream keyed by the plan seed and an
// FNV-1a hash of the site name, stepped to the occurrence.
func (p *Plan) roll(site Site, occurrence int) float64 {
	const fnvOffset, fnvPrime = 0xcbf29ce484222325, 0x100000001b3
	h := uint64(fnvOffset)
	for i := 0; i < len(site); i++ {
		h ^= uint64(site[i])
		h *= fnvPrime
	}
	r := simtime.NewRand(p.seed ^ h ^ (uint64(occurrence) * 0x9e3779b97f4a7c15))
	return r.Float64()
}

// Arm consults the plan at one occurrence of site. It returns whether
// the fault fires and a deterministic severity sample in [0, 1) that
// lossy modes scale by. Arm counts the occurrence even when nothing
// fires, so forced occurrences line up with real phase boundaries.
func (p *Plan) Arm(site Site) (fired bool, severity float64) {
	if p == nil {
		return false, 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.counts[site]++
	n := p.counts[site]
	u := p.roll(site, n)
	if p.forced[site][n] {
		fired = true
	} else if p.rate > 0 && (p.enabled == nil || p.enabled[site]) {
		fired = u < p.rate
	}
	if fired {
		at := time.Duration(0)
		if p.clock != nil {
			at = p.clock.Now()
		}
		shot := Shot{Site: site, Occurrence: n, At: at}
		p.shots = append(p.shots, shot)
		if p.rec != nil {
			p.rec.Event("fault.injected", shot.String())
			p.rec.Metrics().Counter("fault.injected", "faults").Add(1)
		}
	}
	return fired, u
}

// Fire arms site and, when the plan says so, returns an error wrapping
// hterr.ErrInjected. The caller's recovery layer adds the outcome class
// (ErrAborted / ErrRetryable / ErrVMLost).
func (p *Plan) Fire(site Site) error {
	fired, _ := p.Arm(site)
	if !fired {
		return nil
	}
	p.mu.Lock()
	n := p.counts[site]
	p.mu.Unlock()
	return hterr.Injected(fmt.Errorf("fault: injected at %s (occurrence %d)", site, n))
}

// Shots returns the fired injections in firing order.
func (p *Plan) Shots() []Shot {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]Shot(nil), p.shots...)
}

// Count returns how many times site has been armed.
func (p *Plan) Count(site Site) int {
	if p == nil {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.counts[site]
}

// FiredSites returns the distinct sites that fired, sorted.
func (p *Plan) FiredSites() []Site {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	set := map[Site]bool{}
	for _, s := range p.shots {
		set[s.Site] = true
	}
	out := make([]Site, 0, len(set))
	for s := range set {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
