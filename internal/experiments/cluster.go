package experiments

import (
	"fmt"
	"time"

	"hypertp/internal/cluster"
	"hypertp/internal/metrics"
)

// Fig13Point is one InPlaceTP-compatibility level of the §5.4 cluster
// upgrade.
type Fig13Point struct {
	CompatPct   int
	Migrations  int
	TotalTime   time.Duration
	TimeGainPct float64
}

// Figure13 reproduces Fig. 13: upgrading a 10-host x 10-VM cluster while
// varying the fraction of InPlaceTP-compatible VMs. Reported are the
// migration count and the total-time reduction relative to the
// all-migration plan.
func Figure13() ([]Fig13Point, *metrics.Table, error) {
	model := cluster.DefaultExecutionModel()
	run := func(frac float64) (cluster.Result, error) {
		c, err := cluster.New(cluster.Config{
			Hosts: 10, VMsPerHost: 10, StreamFrac: 0.3, CPUFrac: 0.3,
		})
		if err != nil {
			return cluster.Result{}, err
		}
		c.SetInPlaceCompatibleFraction(frac, Seed)
		plan, err := c.PlanUpgrade(1)
		if err != nil {
			return cluster.Result{}, err
		}
		if err := c.Validate(); err != nil {
			return cluster.Result{}, err
		}
		return plan.Execute(model), nil
	}

	base, err := run(0)
	if err != nil {
		return nil, nil, err
	}
	var points []Fig13Point
	tab := &metrics.Table{
		Title:   "Figure 13: cluster upgrade (10 hosts x 10 VMs) vs InPlaceTP-compatible fraction",
		Headers: []string{"Compatible %", "# migrations", "Total time", "Time gain %"},
	}
	for _, pct := range []int{0, 20, 40, 60, 80} {
		res, err := run(float64(pct) / 100)
		if err != nil {
			return nil, nil, err
		}
		gain := (1 - float64(res.TotalTime)/float64(base.TotalTime)) * 100
		points = append(points, Fig13Point{
			CompatPct: pct, Migrations: res.Migrations,
			TotalTime: res.TotalTime, TimeGainPct: gain,
		})
		tab.AddRow(fmt.Sprint(pct), fmt.Sprint(res.Migrations),
			res.TotalTime.Round(time.Second).String(), fmt.Sprintf("%.0f", gain))
	}
	return points, tab, nil
}

// GroupSizePoint is one offline-group-size configuration of the rolling
// upgrade.
type GroupSizePoint struct {
	GroupSize  int
	Migrations int
	TotalTime  time.Duration
}

// GroupSizeSweep is a planner ablation beyond the paper's fixed setup:
// how the number of hosts taken offline per round trades migration count
// against upgrade parallelism (all-migration plan, 10 hosts x 10 VMs).
func GroupSizeSweep() ([]GroupSizePoint, *metrics.Table, error) {
	model := cluster.DefaultExecutionModel()
	tab := &metrics.Table{
		Title:   "Planner ablation: offline group size (0% InPlaceTP-compatible)",
		Headers: []string{"Group size", "# migrations", "Total time"},
	}
	var points []GroupSizePoint
	for _, gs := range []int{1, 2, 5} {
		c, err := cluster.New(cluster.Config{
			Hosts: 10, VMsPerHost: 10, StreamFrac: 0.3, CPUFrac: 0.3,
		})
		if err != nil {
			return nil, nil, err
		}
		plan, err := c.PlanUpgrade(gs)
		if err != nil {
			return nil, nil, err
		}
		if err := c.Validate(); err != nil {
			return nil, nil, err
		}
		res := plan.Execute(model)
		points = append(points, GroupSizePoint{
			GroupSize: gs, Migrations: res.Migrations, TotalTime: res.TotalTime,
		})
		tab.AddRow(fmt.Sprint(gs), fmt.Sprint(res.Migrations),
			res.TotalTime.Round(time.Second).String())
	}
	return points, tab, nil
}
