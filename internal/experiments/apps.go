package experiments

import (
	"fmt"
	"time"

	"hypertp/internal/hv"
	"hypertp/internal/hw"
	"hypertp/internal/metrics"
	"hypertp/internal/workload"
)

// appVM is the §5.3 application VM shape: 2 vCPUs / 8 GB on M1.
const (
	appVCPUs  = 2
	appMemGiB = 8
)

// appTransplantTimings derives the phase boundaries the workload
// timelines need: the InPlaceTP network-visible gap and the MigrationTP
// pre-copy window for the 2 vCPU / 8 GB VM.
type appTransplantTimings struct {
	InPlaceGap time.Duration // downtime + NIC reinit (network services)
	MigWindow  time.Duration // pre-copy duration at 1 Gbps
}

func computeAppTimings() (*appTransplantTimings, error) {
	rep, err := runInPlace(hw.M1(), hv.KindXen, hv.KindKVM, 1, appVCPUs, GiBytes(appMemGiB))
	if err != nil {
		return nil, err
	}
	// 8 GB over 1 Gbps plus dirty-page rounds ≈ the paper's 76-78 s.
	transfer := time.Duration(float64(GiBytes(appMemGiB)) / float64(simnetGbps1) * float64(time.Second))
	return &appTransplantTimings{
		InPlaceGap: rep.NetworkDowntime,
		MigWindow:  transfer + 8*time.Second,
	}, nil
}

// simnetGbps1 mirrors simnet.Gbps1 without importing it here.
const simnetGbps1 = 1_000_000_000 / 8

// AppTimelines is the Fig. 11/12 output for one workload: QPS and latency
// series for InPlaceTP and MigrationTP runs plus the Xen/KVM baselines.
type AppTimelines struct {
	Workload string

	InPlaceQPS, InPlaceLat     *metrics.Series
	MigrationQPS, MigrationLat *metrics.Series
	XenQPS, KVMQPS             *metrics.Series

	// ObservedGapSec is the InPlaceTP service interruption visible in
	// the QPS series (the paper reports ~9 s for Redis and MySQL).
	ObservedGapSec float64
	// MigQPSDropFrac and MigLatRiseFrac quantify the degradation window
	// (paper: −68% QPS, +252% latency for MySQL).
	MigQPSDropFrac float64
	MigLatRiseFrac float64
}

func appTimelines(p workload.ServerProfile) (*AppTimelines, error) {
	t, err := computeAppTimings()
	if err != nil {
		return nil, err
	}
	const total = 200 * time.Second
	const step = time.Second
	gapStart := 50 * time.Second

	out := &AppTimelines{Workload: p.Name}
	out.InPlaceQPS, out.InPlaceLat, err = workload.Timelines(p, workload.Schedule{
		Kind: workload.InPlaceTP, Total: total, Step: step,
		GapStart: gapStart, GapEnd: gapStart + t.InPlaceGap,
	}, Seed)
	if err != nil {
		return nil, err
	}
	migStart := 46 * time.Second
	out.MigrationQPS, out.MigrationLat, err = workload.Timelines(p, workload.Schedule{
		Kind: workload.MigrationTP, Total: total + 60*time.Second, Step: step,
		DegradeStart: migStart, DegradeEnd: migStart + t.MigWindow,
	}, Seed+1)
	if err != nil {
		return nil, err
	}
	out.XenQPS, _, err = workload.Timelines(p, workload.Schedule{
		Kind: workload.RunXen, Total: total, Step: step,
	}, Seed+2)
	if err != nil {
		return nil, err
	}
	out.KVMQPS, _, err = workload.Timelines(p, workload.Schedule{
		Kind: workload.RunKVM, Total: total, Step: step,
	}, Seed+3)
	if err != nil {
		return nil, err
	}

	out.ObservedGapSec = workload.GapSeconds(out.InPlaceQPS, step)
	during := metrics.Mean(windowVals(out.MigrationQPS, migStart+5*time.Second, migStart+t.MigWindow-5*time.Second))
	before := metrics.Mean(windowVals(out.MigrationQPS, 0, migStart-5*time.Second))
	out.MigQPSDropFrac = 1 - during/before
	latDuring := metrics.Mean(windowVals(out.MigrationLat, migStart+5*time.Second, migStart+t.MigWindow-5*time.Second))
	latBefore := metrics.Mean(windowVals(out.MigrationLat, 0, migStart-5*time.Second))
	out.MigLatRiseFrac = latDuring/latBefore - 1
	return out, nil
}

func windowVals(s *metrics.Series, from, to time.Duration) []float64 {
	pts := s.Window(from, to)
	out := make([]float64, len(pts))
	for i, p := range pts {
		out[i] = p.V
	}
	return out
}

// Figure11 reproduces Fig. 11: Redis under InPlaceTP and MigrationTP.
func Figure11() (*AppTimelines, string, error) {
	tl, err := appTimelines(workload.Redis())
	if err != nil {
		return nil, "", err
	}
	return tl, renderAppTimelines("Figure 11: Redis QPS", tl), nil
}

// Figure12 reproduces Fig. 12: MySQL latency and QPS under both
// mechanisms.
func Figure12() (*AppTimelines, string, error) {
	tl, err := appTimelines(workload.MySQL())
	if err != nil {
		return nil, "", err
	}
	return tl, renderAppTimelines("Figure 12: MySQL QPS and latency", tl), nil
}

func renderAppTimelines(title string, tl *AppTimelines) string {
	out := title + "\n\nInPlaceTP (QPS):\n"
	out += metrics.RenderSeries(72, 10, tl.InPlaceQPS)
	out += "\nMigrationTP (QPS):\n"
	out += metrics.RenderSeries(72, 10, tl.MigrationQPS)
	out += "\nMigrationTP (latency):\n"
	out += metrics.RenderSeries(72, 10, tl.MigrationLat)
	out += fmt.Sprintf("\nobserved InPlaceTP gap: %.1f s; migration window: QPS −%.0f%%, latency +%.0f%%\n",
		tl.ObservedGapSec, tl.MigQPSDropFrac*100, tl.MigLatRiseFrac*100)
	return out
}

// Table5 reproduces Table 5: the 23 SPECrate benchmarks with a transplant
// at the midpoint under both mechanisms.
func Table5() ([]workload.SPECResult, []workload.SPECResult, *metrics.Table, error) {
	rep, err := runInPlace(hw.M1(), hv.KindXen, hv.KindKVM, 1, appVCPUs, GiBytes(appMemGiB))
	if err != nil {
		return nil, nil, nil, err
	}
	inplace, maxIn := workload.RunSPECSuite(workload.ModeInPlace, rep.Downtime, Seed)
	migr, maxMig := workload.RunSPECSuite(workload.ModeMigration, 5*time.Millisecond, Seed)
	tab := &metrics.Table{
		Title: "Table 5: SPECrate 2017 with a Xen→KVM transplant at the midpoint",
		Headers: []string{"Benchmark", "KVM (s)", "Xen (s)", "InPlaceTP (s)", "Deg (%)",
			"MigrationTP (s)", "Deg (%)"},
	}
	for i, r := range inplace {
		m := migr[i]
		tab.AddRow(r.Name,
			fmt.Sprintf("%.2f", r.KVMSec), fmt.Sprintf("%.2f", r.XenSec),
			fmt.Sprintf("%.2f", r.TPSec), fmt.Sprintf("%.2f", r.DegPct),
			fmt.Sprintf("%.2f", m.TPSec), fmt.Sprintf("%.2f", m.DegPct))
	}
	tab.AddRow("max degradation", "", "", "", fmt.Sprintf("%.2f", maxIn), "", fmt.Sprintf("%.2f", maxMig))
	return inplace, migr, tab, nil
}

// Table6 reproduces Table 6: Darknet training iteration times.
func Table6() (map[string]workload.DarknetRun, *metrics.Table, error) {
	rep, err := runInPlace(hw.M1(), hv.KindXen, hv.KindKVM, 1, appVCPUs, GiBytes(appMemGiB))
	if err != nil {
		return nil, nil, err
	}
	runs := map[string]workload.DarknetRun{
		"default":       workload.RunDarknet(workload.DarknetDefault, 0, Seed),
		"xen-migration": workload.RunDarknet(workload.DarknetXenMigration, 0, Seed),
		"inplacetp":     workload.RunDarknet(workload.DarknetInPlaceTP, rep.Downtime, Seed),
		"migrationtp":   workload.RunDarknet(workload.DarknetMigrationTP, 0, Seed),
	}
	tab := &metrics.Table{
		Title:   "Table 6: Darknet MNIST training iteration durations (seconds)",
		Headers: []string{"Scenario", "Mean iteration", "Longest iteration"},
	}
	for _, name := range []string{"default", "xen-migration", "inplacetp", "migrationtp"} {
		r := runs[name]
		tab.AddRow(name, fmt.Sprintf("%.3f", r.Mean()), fmt.Sprintf("%.3f", r.Longest()))
	}
	return runs, tab, nil
}
