package experiments

import (
	"fmt"
	"time"

	"hypertp/internal/hv"
	"hypertp/internal/hv/kvm"
	"hypertp/internal/hv/xen"
	"hypertp/internal/hw"
	"hypertp/internal/metrics"
	"hypertp/internal/migration"
	"hypertp/internal/par"
	"hypertp/internal/simnet"
	"hypertp/internal/simtime"
)

// migRig is a source machine plus two destination machines (one Xen for
// the homogeneous baseline, one KVM for MigrationTP) on a 1 Gbps link —
// the paper's M1 pair.
type migRig struct {
	clock *simtime.Clock
	link  *simnet.Link
	src   *xen.Xen
}

func newMigRig() (*migRig, error) {
	clock := simtime.NewClock()
	src, err := xen.Boot(hw.NewMachine(clock, hw.M1()))
	if err != nil {
		return nil, err
	}
	return &migRig{
		clock: clock,
		link:  simnet.NewLink(clock, "m1-pair", simnet.Gbps1, 100*time.Microsecond),
		src:   src,
	}, nil
}

func (r *migRig) receiver(kind hv.Kind, seed uint64) (*migration.Receiver, error) {
	m := hw.NewMachine(r.clock, hw.M1())
	var dest hv.Hypervisor
	var err error
	switch kind {
	case hv.KindXen:
		dest, err = xen.Boot(m)
	default:
		dest, err = kvm.Boot(m)
	}
	if err != nil {
		return nil, err
	}
	return migration.NewReceiver(r.clock, dest, seed), nil
}

// migrateBatch creates n VMs on the source and migrates them concurrently
// to the receiver, returning the per-VM reports.
func (r *migRig) migrateBatch(n, vcpus int, memBytes uint64, recv *migration.Receiver) ([]*migration.Report, error) {
	var ids []hv.VMID
	for i := 0; i < n; i++ {
		vm, err := r.src.CreateVM(hv.Config{
			Name:  fmt.Sprintf("vm-%02d", i),
			VCPUs: vcpus, MemBytes: memBytes, HugePages: true,
			Seed: Seed + uint64(i),
		})
		if err != nil {
			return nil, err
		}
		ids = append(ids, vm.ID)
	}
	reports := make([]*migration.Report, 0, n)
	var firstErr error
	for _, id := range ids {
		migration.Run(r.clock, migration.Params{
			Link: r.link, Source: r.src, Dest: recv, VMID: id,
		}, func(rep *migration.Report, err error) {
			if err != nil && firstErr == nil {
				firstErr = err
			}
			if rep != nil {
				reports = append(reports, rep)
			}
		})
	}
	r.clock.Run()
	if firstErr != nil {
		return nil, firstErr
	}
	return reports, nil
}

// Table4Result holds the Table 4 comparison.
type Table4Result struct {
	XenDowntime, TPDowntime time.Duration
	XenTotal, TPTotal       time.Duration
}

// Table4 reproduces Table 4: downtime and migration time of a
// 1 vCPU / 1 GB VM under homogeneous Xen→Xen migration vs MigrationTP
// (Xen→KVM).
func Table4() (*Table4Result, *metrics.Table, error) {
	res := &Table4Result{}
	{
		rig, err := newMigRig()
		if err != nil {
			return nil, nil, err
		}
		recv, err := rig.receiver(hv.KindXen, Seed)
		if err != nil {
			return nil, nil, err
		}
		reps, err := rig.migrateBatch(1, 1, GiBytes(1), recv)
		if err != nil {
			return nil, nil, err
		}
		res.XenDowntime, res.XenTotal = reps[0].Downtime, reps[0].TotalTime
	}
	{
		rig, err := newMigRig()
		if err != nil {
			return nil, nil, err
		}
		recv, err := rig.receiver(hv.KindKVM, Seed)
		if err != nil {
			return nil, nil, err
		}
		reps, err := rig.migrateBatch(1, 1, GiBytes(1), recv)
		if err != nil {
			return nil, nil, err
		}
		res.TPDowntime, res.TPTotal = reps[0].Downtime, reps[0].TotalTime
	}
	tab := &metrics.Table{
		Title:   "Table 4: Xen→Xen live migration vs MigrationTP (Xen→KVM), 1 vCPU / 1 GB",
		Headers: []string{"", "Xen to Xen", "MigrationTP (Xen to KVM)"},
	}
	tab.AddRow("Downtime (ms)", ms(res.XenDowntime), ms(res.TPDowntime))
	tab.AddRow("Migration time (s)", secs(res.XenTotal), secs(res.TPTotal))
	return res, tab, nil
}

// MigPoint is one x-axis point of a Fig. 8/9 sweep: the distribution of
// per-VM values for the Xen baseline and MigrationTP.
type MigPoint struct {
	X   int
	Xen metrics.BoxStats
	TP  metrics.BoxStats
}

// MigSweep is one panel of Fig. 8 or Fig. 9.
type MigSweep struct {
	Dim    SweepDim
	Points []MigPoint
}

// runMigSweeps executes the three sweeps, extracting a per-VM metric.
// Each (dimension, x) point builds its own rigs with its own clocks and
// fixed per-point seeds (Seed + x*10 + i), so points fan out on the par
// worker pool and the results are independent of the worker count.
func runMigSweeps(metric func(*migration.Report) float64) ([]MigSweep, error) {
	dims := []SweepDim{SweepVCPUs, SweepMemory, SweepVMs}
	type job struct {
		dim SweepDim
		x   int
	}
	var jobs []job
	for _, dim := range dims {
		for _, x := range sweepValues[dim] {
			jobs = append(jobs, job{dim, x})
		}
	}
	points, err := par.Map(jobs, func(_ int, j job) (MigPoint, error) {
		n, vcpus, mem := 1, 1, GiBytes(1)
		switch j.dim {
		case SweepVCPUs:
			vcpus = j.x
		case SweepMemory:
			mem = GiBytes(j.x)
		case SweepVMs:
			n = j.x
		}
		pt := MigPoint{X: j.x}
		for i, kind := range []hv.Kind{hv.KindXen, hv.KindKVM} {
			rig, err := newMigRig()
			if err != nil {
				return pt, err
			}
			recv, err := rig.receiver(kind, Seed+uint64(j.x*10+i))
			if err != nil {
				return pt, err
			}
			reps, err := rig.migrateBatch(n, vcpus, mem, recv)
			if err != nil {
				return pt, fmt.Errorf("%s x=%d: %w", j.dim, j.x, err)
			}
			vals := make([]float64, len(reps))
			for jj, rep := range reps {
				vals[jj] = metric(rep)
			}
			if kind == hv.KindXen {
				pt.Xen = metrics.Box(vals)
			} else {
				pt.TP = metrics.Box(vals)
			}
		}
		return pt, nil
	})
	if err != nil {
		return nil, err
	}
	var out []MigSweep
	i := 0
	for _, dim := range dims {
		sw := MigSweep{Dim: dim}
		for range sweepValues[dim] {
			sw.Points = append(sw.Points, points[i])
			i++
		}
		out = append(out, sw)
	}
	return out, nil
}

// Figure8 reproduces Fig. 8: per-VM downtime (ms) of MigrationTP vs the
// Xen baseline across the three sweeps.
func Figure8() ([]MigSweep, []*metrics.Table, error) {
	sweeps, err := runMigSweeps(func(r *migration.Report) float64 {
		return float64(r.Downtime) / float64(time.Millisecond)
	})
	if err != nil {
		return nil, nil, err
	}
	return sweeps, renderMigSweeps("Figure 8: migration downtime (ms)", sweeps), nil
}

// Figure9 reproduces Fig. 9: total migration time (s) across the sweeps.
func Figure9() ([]MigSweep, []*metrics.Table, error) {
	sweeps, err := runMigSweeps(func(r *migration.Report) float64 {
		return r.TotalTime.Seconds()
	})
	if err != nil {
		return nil, nil, err
	}
	return sweeps, renderMigSweeps("Figure 9: total migration time (s)", sweeps), nil
}

func renderMigSweeps(title string, sweeps []MigSweep) []*metrics.Table {
	var tabs []*metrics.Table
	for _, sw := range sweeps {
		tab := &metrics.Table{
			Title:   fmt.Sprintf("%s — sweep %s", title, sw.Dim),
			Headers: []string{string(sw.Dim), "Xen med", "Xen min-max", "HyperTP med", "HyperTP min-max"},
		}
		for _, pt := range sw.Points {
			tab.AddRow(fmt.Sprint(pt.X),
				fmt.Sprintf("%.2f", pt.Xen.Median),
				fmt.Sprintf("%.2f-%.2f", pt.Xen.Min, pt.Xen.Max),
				fmt.Sprintf("%.2f", pt.TP.Median),
				fmt.Sprintf("%.2f-%.2f", pt.TP.Min, pt.TP.Max))
		}
		tabs = append(tabs, tab)
	}
	return tabs
}
