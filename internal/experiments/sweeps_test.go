package experiments

import (
	"testing"
	"time"
)

// Fig. 7: Xen→KVM scalability shapes on both machines.
func TestFigure7Shapes(t *testing.T) {
	sweeps, tabs, err := Figure7()
	if err != nil {
		t.Fatal(err)
	}
	if len(sweeps) != 6 || len(tabs) != 6 {
		t.Fatalf("panels = %d, want 6", len(sweeps))
	}
	for _, sw := range sweeps {
		first := sw.Points[0].Report
		last := sw.Points[len(sw.Points)-1].Report
		switch sw.Dim {
		case SweepVCPUs:
			// vCPUs barely move the total (Fig. 7a/7d).
			diff := last.Total - first.Total
			if diff < 0 {
				diff = -diff
			}
			if diff > 400*time.Millisecond {
				t.Errorf("%s vCPU sweep total moves %v", sw.Machine, diff)
			}
		case SweepMemory, SweepVMs:
			// Reboot grows with preserved memory (sequential
			// boot-time PRAM parse).
			if last.Reboot <= first.Reboot {
				t.Errorf("%s %s sweep: reboot flat", sw.Machine, sw.Dim)
			}
		}
		// Downtime envelopes (paper: 1.7-3.6 s on M1, 2.94-4.28 s on
		// M2, with tolerance).
		for _, pt := range sw.Points {
			d := pt.Report.Downtime
			switch sw.Machine {
			case "M1":
				if d < 1400*time.Millisecond || d > 3900*time.Millisecond {
					t.Errorf("M1 %s x=%d downtime %v outside envelope", sw.Dim, pt.X, d)
				}
			case "M2":
				if d < 2600*time.Millisecond || d > 4800*time.Millisecond {
					t.Errorf("M2 %s x=%d downtime %v outside envelope", sw.Dim, pt.X, d)
				}
			}
		}
	}
}

// Fig. 8: MigrationTP downtime below the Xen baseline everywhere; Xen's
// multi-VM variance exceeds HyperTP's.
func TestFigure8Shapes(t *testing.T) {
	sweeps, tabs, err := Figure8()
	if err != nil {
		t.Fatal(err)
	}
	if len(sweeps) != 3 || len(tabs) != 3 {
		t.Fatal("panel count wrong")
	}
	for _, sw := range sweeps {
		for _, pt := range sw.Points {
			if pt.TP.Median >= pt.Xen.Median {
				t.Errorf("%s x=%d: HyperTP median downtime %.1f ≥ Xen %.1f",
					sw.Dim, pt.X, pt.TP.Median, pt.Xen.Median)
			}
		}
		if sw.Dim == SweepVMs {
			last := sw.Points[len(sw.Points)-1]
			xenSpread := last.Xen.Max - last.Xen.Min
			tpSpread := last.TP.Max - last.TP.Min
			if xenSpread <= tpSpread {
				t.Errorf("multi-VM: Xen downtime spread %.1f not above HyperTP %.1f",
					xenSpread, tpSpread)
			}
		}
	}
}

// Fig. 9: total migration time linear in memory, flat in vCPUs; for
// multiple VMs HyperTP's variance is smaller.
func TestFigure9Shapes(t *testing.T) {
	sweeps, _, err := Figure9()
	if err != nil {
		t.Fatal(err)
	}
	for _, sw := range sweeps {
		first := sw.Points[0]
		last := sw.Points[len(sw.Points)-1]
		switch sw.Dim {
		case SweepMemory:
			ratio := last.TP.Median / first.TP.Median
			wantRatio := float64(last.X) / float64(first.X)
			if ratio < wantRatio*0.8 || ratio > wantRatio*1.2 {
				t.Errorf("memory sweep not linear: ratio %.2f want ~%.2f", ratio, wantRatio)
			}
		case SweepVCPUs:
			if diff := last.TP.Median - first.TP.Median; diff > 1 || diff < -1 {
				t.Errorf("vCPU sweep moves total time by %.2fs", diff)
			}
		case SweepVMs:
			if (last.Xen.Max - last.Xen.Min) <= (last.TP.Max - last.TP.Min) {
				t.Error("multi-VM: Xen migration-time variance not above HyperTP")
			}
		}
	}
}

// Fig. 10: KVM→Xen dominated by the two-kernel boot, several times the
// Xen→KVM direction, but always under the 30 s maintenance bound.
func TestFigure10Shapes(t *testing.T) {
	sweeps, tabs, err := Figure10()
	if err != nil {
		t.Fatal(err)
	}
	if len(tabs) != 6 {
		t.Fatal("panel count wrong")
	}
	for _, sw := range sweeps {
		for _, pt := range sw.Points {
			d := pt.Report.Downtime
			switch sw.Machine {
			case "M1":
				if d < 7*time.Second || d > 12*time.Second {
					t.Errorf("M1 %s x=%d KVM→Xen downtime %v, want ~7.6-10s", sw.Dim, pt.X, d)
				}
			case "M2":
				if d < 16*time.Second || d > 23*time.Second {
					t.Errorf("M2 %s x=%d KVM→Xen downtime %v, want ~17.8-21s", sw.Dim, pt.X, d)
				}
			}
			if d > 30*time.Second {
				t.Errorf("downtime %v above the 30s bound", d)
			}
		}
	}
}
