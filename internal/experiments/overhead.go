package experiments

import (
	"fmt"

	"hypertp/internal/hv"
	"hypertp/internal/hw"
	"hypertp/internal/metrics"
	"hypertp/internal/par"
	"hypertp/internal/pram"
	"hypertp/internal/uisr"
)

// Fig14Point is one x-axis point of the memory-overhead sweeps.
type Fig14Point struct {
	X         int
	PRAMBytes uint64
	UISRBytes uint64
}

// Fig14 holds all three panels of Fig. 14.
type Fig14 struct {
	VCPUs  []Fig14Point // UISR grows with vCPUs; PRAM constant
	Memory []Fig14Point // PRAM grows with memory; UISR constant
	VMs    []Fig14Point // PRAM grows with VM count
}

// Figure14 reproduces Fig. 14: the PRAM and UISR memory overheads across
// the Fig. 7 sweeps, measured on the real structures.
func Figure14() (*Fig14, []*metrics.Table, error) {
	out := &Fig14{}

	uisrSize := func(vcpus int) (uint64, error) {
		st := uisr.SyntheticVM("vm", 1, vcpus, GiBytes(1), Seed)
		st.Devices = nil // Fig. 14 measures platform state
		n, err := uisr.EncodedSize(st)
		return uint64(n), err
	}
	pramSize := func(nVMs, memGiB int) (uint64, error) {
		mem := hw.NewPhysMem(GiBytes(int(32)))
		var files []pram.File
		for v := 0; v < nVMs; v++ {
			space, err := hv.AllocAddressSpace(mem, v+1, GiBytes(memGiB), true)
			if err != nil {
				return 0, err
			}
			files = append(files, pram.File{
				Name: fmt.Sprintf("vm-%02d", v), VMID: uint32(v + 1),
				Extents: space.Extents(),
			})
		}
		s, err := pram.Build(mem, files, pram.BuildOptions{})
		if err != nil {
			return 0, err
		}
		return s.MetadataBytes(), nil
	}

	// Every point builds its own structures on its own PhysMem, so the
	// three sweeps fan out on the par worker pool.
	onePRAM, err := pramSize(1, 1)
	if err != nil {
		return nil, nil, err
	}
	oneUISR, err := uisrSize(1)
	if err != nil {
		return nil, nil, err
	}
	out.VCPUs, err = par.Map(sweepValues[SweepVCPUs], func(_ int, v int) (Fig14Point, error) {
		u, err := uisrSize(v)
		return Fig14Point{X: v, PRAMBytes: onePRAM, UISRBytes: u}, err
	})
	if err != nil {
		return nil, nil, err
	}
	out.Memory, err = par.Map(sweepValues[SweepMemory], func(_ int, g int) (Fig14Point, error) {
		p, err := pramSize(1, g)
		return Fig14Point{X: g, PRAMBytes: p, UISRBytes: oneUISR}, err
	})
	if err != nil {
		return nil, nil, err
	}
	out.VMs, err = par.Map(sweepValues[SweepVMs], func(_ int, n int) (Fig14Point, error) {
		p, err := pramSize(n, 1)
		return Fig14Point{X: n, PRAMBytes: p, UISRBytes: uint64(n) * oneUISR}, err
	})
	if err != nil {
		return nil, nil, err
	}

	render := func(title, xlabel string, pts []Fig14Point) *metrics.Table {
		tab := &metrics.Table{
			Title:   title,
			Headers: []string{xlabel, "PRAM structures (KB)", "UISR formats (KB)"},
		}
		for _, pt := range pts {
			tab.AddRow(fmt.Sprint(pt.X),
				fmt.Sprintf("%.1f", float64(pt.PRAMBytes)/1024),
				fmt.Sprintf("%.1f", float64(pt.UISRBytes)/1024))
		}
		return tab
	}
	tabs := []*metrics.Table{
		render("Figure 14: memory overhead — sweep vCPUs (1 GiB VM)", "vcpus", out.VCPUs),
		render("Figure 14: memory overhead — sweep memory size (1 vCPU)", "GiB", out.Memory),
		render("Figure 14: memory overhead — sweep VM count (1 vCPU / 1 GiB each)", "VMs", out.VMs),
	}
	return out, tabs, nil
}
