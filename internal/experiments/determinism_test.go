package experiments

import (
	"reflect"
	"strings"
	"testing"

	"hypertp/internal/hv"
	"hypertp/internal/hw"
	"hypertp/internal/par"
)

// renderFig7 runs Figure 7 and flattens its rendered tables into one
// string — the exact bytes benchfig would print for the section.
func renderFig7(t *testing.T) string {
	t.Helper()
	_, tabs, err := Figure7()
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	for _, tab := range tabs {
		sb.WriteString(tab.Render())
		sb.WriteByte('\n')
	}
	return sb.String()
}

// TestFigure7Deterministic is the tentpole's core guarantee: the rendered
// Fig. 7 output is byte-identical between a sequential run and a wide
// worker pool. Simulated time must flow only through the virtual-time
// model, never through host scheduling.
func TestFigure7Deterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("full Fig. 7 grid twice")
	}
	defer par.SetWorkers(0)
	par.SetWorkers(1)
	seq := renderFig7(t)
	par.SetWorkers(8)
	wide := renderFig7(t)
	par.SetWorkers(8)
	again := renderFig7(t)
	if seq != wide {
		t.Fatal("Figure 7 output differs between -workers 1 and -workers 8")
	}
	if wide != again {
		t.Fatal("Figure 7 output differs between two -workers 8 runs")
	}
}

// TestInPlaceMultiVMDeterministic runs the same multi-VM InPlaceTP twice
// on a wide pool and requires identical reports field for field: the
// per-VM translation fan-out, PRAM build and restoration must not let
// host scheduling leak into virtual time.
func TestInPlaceMultiVMDeterministic(t *testing.T) {
	defer par.SetWorkers(0)
	par.SetWorkers(8)
	first, err := runInPlace(hw.M1(), hv.KindXen, hv.KindKVM, 6, 2, GiBytes(1))
	if err != nil {
		t.Fatal(err)
	}
	second, err := runInPlace(hw.M1(), hv.KindXen, hv.KindKVM, 6, 2, GiBytes(1))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first, second) {
		t.Fatalf("InPlaceTP reports differ across identical runs:\n%+v\nvs\n%+v", first, second)
	}
	par.SetWorkers(1)
	sequential, err := runInPlace(hw.M1(), hv.KindXen, hv.KindKVM, 6, 2, GiBytes(1))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first, sequential) {
		t.Fatalf("InPlaceTP report differs from sequential run:\n%+v\nvs\n%+v", first, sequential)
	}
}
