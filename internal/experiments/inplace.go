package experiments

import (
	"fmt"
	"time"

	"hypertp/internal/core"
	"hypertp/internal/hv"
	"hypertp/internal/hw"
	"hypertp/internal/metrics"
	"hypertp/internal/par"
)

// Fig6Row is one machine's InPlaceTP breakdown (single 1 vCPU / 1 GB VM).
type Fig6Row struct {
	Machine string
	Report  *core.InPlaceReport
}

// Figure6 reproduces Fig. 6: the InPlaceTP time breakdown for Xen→KVM on
// M1 and M2 with a single idle 1 vCPU / 1 GB VM.
func Figure6() ([]Fig6Row, *metrics.Table, error) {
	var rows []Fig6Row
	tab := &metrics.Table{
		Title: "Figure 6: InPlaceTP Xen→KVM time breakdown, single 1 vCPU / 1 GB VM (seconds)",
		Headers: []string{"Machine", "PRAM", "Translation", "Reboot", "Restoration",
			"Downtime", "Total", "Network"},
	}
	for _, p := range []*hw.Profile{hw.M1(), hw.M2()} {
		rep, err := runInPlace(p, hv.KindXen, hv.KindKVM, 1, 1, GiBytes(1))
		if err != nil {
			return nil, nil, err
		}
		rows = append(rows, Fig6Row{Machine: p.Name, Report: rep})
		tab.AddRow(p.Name, secs(rep.PRAM), secs(rep.Translation), secs(rep.Reboot),
			secs(rep.Restoration), secs(rep.Downtime), secs(rep.Total), secs(rep.Network))
	}
	return rows, tab, nil
}

// SweepDim labels a Fig. 7/10 sweep dimension.
type SweepDim string

// The three sweep dimensions of Figs. 7-10.
const (
	SweepVCPUs  SweepDim = "vcpus"
	SweepMemory SweepDim = "memory-gib"
	SweepVMs    SweepDim = "num-vms"
)

// sweepValues are the paper's x-axis points.
var sweepValues = map[SweepDim][]int{
	SweepVCPUs:  {1, 2, 4, 6, 8, 10},
	SweepMemory: {2, 4, 6, 8, 10, 12},
	SweepVMs:    {2, 4, 6, 8, 10, 12},
}

// SweepPoint is one x-axis point of an InPlaceTP scalability sweep.
type SweepPoint struct {
	X      int
	Report *core.InPlaceReport
}

// Sweep is one (machine, dimension) panel of Fig. 7 or Fig. 10.
type Sweep struct {
	Machine string
	Dim     SweepDim
	Points  []SweepPoint
}

// runSweeps executes the full 2-machine x 3-dimension grid for the given
// transplant direction. Every sweep point runs on its own testbed with its
// own virtual clock, so the grid is flattened and fanned out on the par
// worker pool, then reassembled in grid order — the resulting reports are
// identical to a sequential run for any worker count.
func runSweeps(from, to hv.Kind) ([]Sweep, error) {
	profiles := []*hw.Profile{hw.M1(), hw.M2()}
	dims := []SweepDim{SweepVCPUs, SweepMemory, SweepVMs}
	type job struct {
		profile *hw.Profile
		dim     SweepDim
		x       int
	}
	var jobs []job
	for _, p := range profiles {
		for _, dim := range dims {
			for _, x := range sweepValues[dim] {
				jobs = append(jobs, job{p, dim, x})
			}
		}
	}
	reports, err := par.Map(jobs, func(_ int, j job) (*core.InPlaceReport, error) {
		n, vcpus, mem := 1, 1, GiBytes(1)
		switch j.dim {
		case SweepVCPUs:
			vcpus = j.x
		case SweepMemory:
			mem = GiBytes(j.x)
		case SweepVMs:
			n = j.x
		}
		rep, err := runInPlace(j.profile, from, to, n, vcpus, mem)
		if err != nil {
			return nil, fmt.Errorf("%s/%s x=%d: %w", j.profile.Name, j.dim, j.x, err)
		}
		return rep, nil
	})
	if err != nil {
		return nil, err
	}
	var out []Sweep
	i := 0
	for _, p := range profiles {
		for _, dim := range dims {
			sw := Sweep{Machine: p.Name, Dim: dim}
			for _, x := range sweepValues[dim] {
				sw.Points = append(sw.Points, SweepPoint{X: x, Report: reports[i]})
				i++
			}
			out = append(out, sw)
		}
	}
	return out, nil
}

// Figure7 reproduces Fig. 7: InPlaceTP Xen→KVM scalability across vCPUs,
// memory size and VM count on M1 and M2.
func Figure7() ([]Sweep, []*metrics.Table, error) {
	sweeps, err := runSweeps(hv.KindXen, hv.KindKVM)
	if err != nil {
		return nil, nil, err
	}
	return sweeps, renderSweeps("Figure 7: InPlaceTP Xen→KVM scalability", sweeps), nil
}

// Figure10 reproduces Fig. 10: InPlaceTP KVM→Xen scalability (dominated
// by Xen's two-kernel boot).
func Figure10() ([]Sweep, []*metrics.Table, error) {
	sweeps, err := runSweeps(hv.KindKVM, hv.KindXen)
	if err != nil {
		return nil, nil, err
	}
	return sweeps, renderSweeps("Figure 10: InPlaceTP KVM→Xen scalability", sweeps), nil
}

func renderSweeps(title string, sweeps []Sweep) []*metrics.Table {
	var tabs []*metrics.Table
	for _, sw := range sweeps {
		tab := &metrics.Table{
			Title: fmt.Sprintf("%s — %s, sweep %s (seconds)", title, sw.Machine, sw.Dim),
			Headers: []string{string(sw.Dim), "PRAM", "Translation", "Reboot",
				"Restoration", "Downtime", "Total"},
		}
		for _, pt := range sw.Points {
			r := pt.Report
			tab.AddRow(fmt.Sprint(pt.X), secs(r.PRAM), secs(r.Translation),
				secs(r.Reboot), secs(r.Restoration), secs(r.Downtime), secs(r.Total))
		}
		tabs = append(tabs, tab)
	}
	return tabs
}

// AblationRow is one §4.2.5 optimization toggled off.
type AblationRow struct {
	Name     string
	Options  core.Options
	Report   *core.InPlaceReport
	Downtime time.Duration
}

// Ablation measures each optimization's contribution on the reference
// workload (M1, 4 VMs of 1 vCPU / 2 GiB).
func Ablation() ([]AblationRow, *metrics.Table, error) {
	full := core.DefaultOptions()
	configs := []struct {
		name string
		opts core.Options
	}{
		{"all optimizations (paper config)", full},
		{"no pre-pause preparation", withOpts(full, func(o *core.Options) { o.PrepareBeforePause = false })},
		{"no parallelization", withOpts(full, func(o *core.Options) { o.Parallel = false })},
		{"no huge pages", withOpts(full, func(o *core.Options) { o.HugePages = false })},
		{"no early restoration", withOpts(full, func(o *core.Options) { o.EarlyRestoration = false })},
		{"none (fully de-optimized)", core.Options{}},
	}
	tab := &metrics.Table{
		Title:   "Ablation of the §4.2.5 optimizations (M1, 4 VMs x 1 vCPU / 2 GiB, Xen→KVM)",
		Headers: []string{"Configuration", "PRAM", "Downtime", "Total", "PRAM bytes"},
	}
	// Each configuration runs on its own testbed, so the six runs fan out.
	reports, err := par.Map(configs, func(_ int, cfg struct {
		name string
		opts core.Options
	}) (*core.InPlaceReport, error) {
		tb, err := newTestbed(hw.M1(), hv.KindXen, 4, 1, GiBytes(2))
		if err != nil {
			return nil, err
		}
		_, rep, err := tb.engine.InPlace(tb.hyp, hv.KindKVM, cfg.opts)
		return rep, err
	})
	if err != nil {
		return nil, nil, err
	}
	var rows []AblationRow
	for i, cfg := range configs {
		rep := reports[i]
		rows = append(rows, AblationRow{Name: cfg.name, Options: cfg.opts, Report: rep, Downtime: rep.Downtime})
		tab.AddRow(cfg.name, secs(rep.PRAM), secs(rep.Downtime), secs(rep.Total),
			fmt.Sprint(rep.PRAMMetadataBytes))
	}
	return rows, tab, nil
}

func withOpts(base core.Options, mutate func(*core.Options)) core.Options {
	mutate(&base)
	return base
}

// DirectionRow is one (source, target) InPlaceTP direction across the
// three-hypervisor pool.
type DirectionRow struct {
	From, To hv.Kind
	Report   *core.InPlaceReport
}

// DirectionsMatrix runs InPlaceTP in all six directions of the
// {Xen, KVM, NOVA} pool on M1 (single 1 vCPU / 1 GiB VM) — an extension
// beyond the paper's two-hypervisor evaluation showing how the target's
// boot path sets the downtime.
func DirectionsMatrix() ([]DirectionRow, *metrics.Table, error) {
	kinds := []hv.Kind{hv.KindXen, hv.KindKVM, hv.KindNOVA}
	tab := &metrics.Table{
		Title:   "Transplant directions across the pool (M1, 1 vCPU / 1 GiB, seconds)",
		Headers: []string{"From", "To", "Reboot", "Downtime", "Total"},
	}
	type pair struct{ from, to hv.Kind }
	var pairs []pair
	for _, from := range kinds {
		for _, to := range kinds {
			if from != to {
				pairs = append(pairs, pair{from, to})
			}
		}
	}
	// Independent testbeds per direction — fan out, merge in matrix order.
	reports, err := par.Map(pairs, func(_ int, pr pair) (*core.InPlaceReport, error) {
		rep, err := runInPlace(hw.M1(), pr.from, pr.to, 1, 1, GiBytes(1))
		if err != nil {
			return nil, fmt.Errorf("%v→%v: %w", pr.from, pr.to, err)
		}
		return rep, nil
	})
	if err != nil {
		return nil, nil, err
	}
	var rows []DirectionRow
	for i, pr := range pairs {
		rep := reports[i]
		rows = append(rows, DirectionRow{From: pr.from, To: pr.to, Report: rep})
		tab.AddRow(pr.from.String(), pr.to.String(), secs(rep.Reboot),
			secs(rep.Downtime), secs(rep.Total))
	}
	return rows, tab, nil
}
