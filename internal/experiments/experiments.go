// Package experiments contains one driver per table and figure of the
// paper's evaluation (§5) plus the §2 vulnerability study and the §4.2.5
// ablations. Each driver builds a fresh simulated testbed, runs the real
// mechanisms (transplant engine, migration engine, cluster planner,
// workload generators) and returns both structured data and a rendered
// plain-text table/plot, so the same code backs the unit tests, the
// benchmark harness (bench_test.go) and the cmd/benchfig binary.
package experiments

import (
	"fmt"
	"time"

	"hypertp/internal/core"
	"hypertp/internal/hv"
	"hypertp/internal/hw"
	"hypertp/internal/obs"
	"hypertp/internal/simtime"
)

// Seed is the default deterministic seed for every experiment.
const Seed = 20210426 // EuroSys'21 week

// obsFactory, when non-nil, supplies a recorder for every testbed the
// experiment drivers build — the hook the observability-overhead
// benchmark uses to compare instrumented and bare runs of the same
// figures.
var obsFactory func(clock *simtime.Clock) *obs.Recorder

// SetObsFactory installs (or, with nil, removes) the per-testbed
// recorder factory.
func SetObsFactory(fn func(clock *simtime.Clock) *obs.Recorder) { obsFactory = fn }

// testbed is one machine with a booted hypervisor and VMs.
type testbed struct {
	clock  *simtime.Clock
	mach   *hw.Machine
	engine *core.Engine
	hyp    hv.Hypervisor
}

// newTestbed boots kind on a machine of profile p and creates n VMs of
// the given shape.
func newTestbed(p *hw.Profile, kind hv.Kind, n, vcpus int, memBytes uint64) (*testbed, error) {
	clock := simtime.NewClock()
	mach := hw.NewMachine(clock, p)
	engine := core.NewEngine(clock, mach)
	if obsFactory != nil {
		engine.Obs = obsFactory(clock)
	}
	hyp, err := engine.BootHypervisor(kind)
	if err != nil {
		return nil, err
	}
	for i := 0; i < n; i++ {
		_, err := hyp.CreateVM(hv.Config{
			Name:  fmt.Sprintf("vm-%02d", i),
			VCPUs: vcpus, MemBytes: memBytes, HugePages: true,
			Seed: Seed + uint64(i), InPlaceCompatible: true,
		})
		if err != nil {
			return nil, err
		}
	}
	return &testbed{clock: clock, mach: mach, engine: engine, hyp: hyp}, nil
}

// runInPlace executes one InPlaceTP with the paper's optimizations.
func runInPlace(p *hw.Profile, from, to hv.Kind, n, vcpus int, memBytes uint64) (*core.InPlaceReport, error) {
	tb, err := newTestbed(p, from, n, vcpus, memBytes)
	if err != nil {
		return nil, err
	}
	_, rep, err := tb.engine.InPlace(tb.hyp, to, core.DefaultOptions())
	return rep, err
}

// secs formats a duration in seconds with 2 decimals.
func secs(d time.Duration) string { return fmt.Sprintf("%.2f", d.Seconds()) }

// ms formats a duration in milliseconds with 2 decimals.
func ms(d time.Duration) string { return fmt.Sprintf("%.2f", float64(d)/float64(time.Millisecond)) }

// GiBytes converts GiB to bytes.
func GiBytes(g int) uint64 { return uint64(g) << 30 }
