package experiments

import (
	"fmt"

	"hypertp/internal/core"
	"hypertp/internal/hv"
	"hypertp/internal/hw"
	"hypertp/internal/par"
	"hypertp/internal/tpcache"
)

// warmPoint is one primed grid point of the warm repeat-transplant
// benchmark: a Figure 10 testbed whose transplant cache has reached its
// fixed point, plus the hypervisor currently running on it.
type warmPoint struct {
	tb   *testbed
	cur  hv.Hypervisor
	opts core.Options
}

// hop transplants the point to the opposite hypervisor and returns the
// report.
func (p *warmPoint) hop() (*core.InPlaceReport, error) {
	target := hv.KindKVM
	if p.cur.Kind() == hv.KindKVM {
		target = hv.KindXen
	}
	dst, rep, err := p.tb.engine.InPlace(p.cur, target, p.opts)
	if err != nil {
		return nil, err
	}
	p.cur = dst
	return rep, nil
}

// Figure10WarmGrid is the warm twin of Figure10: the same 2-machine x
// 3-dimension KVM<->Xen grid, but the testbeds persist across transplants
// and each carries a transplant cache primed until every lookup hits. One
// Hop is then the grid-wide repeat-transplant pass — the steady-state
// cost a fleet pays once its caches are warm, with machine construction
// and the cold first runs excluded.
type Figure10WarmGrid struct {
	points []*warmPoint
}

// primeHops bounds the ping-pong priming loop. The fingerprint chain
// converges within a few KVM<->Xen cycles (see core's
// TestCacheConvergesToHits); a point still missing after this many hops
// means the cache is broken, and the constructor fails loudly rather
// than hand the benchmark a half-cold grid.
const primeHops = 16

// NewFigure10WarmGrid builds and primes the grid. Each point ping-pongs
// on its own testbed until one full KVM->Xen->KVM cycle completes with
// zero cache misses, so every transplant a subsequent Hop runs is warm.
func NewFigure10WarmGrid() (*Figure10WarmGrid, error) {
	profiles := []*hw.Profile{hw.M1(), hw.M2()}
	dims := []SweepDim{SweepVCPUs, SweepMemory, SweepVMs}
	type job struct {
		profile *hw.Profile
		dim     SweepDim
		x       int
	}
	var jobs []job
	for _, p := range profiles {
		for _, dim := range dims {
			for _, x := range sweepValues[dim] {
				jobs = append(jobs, job{p, dim, x})
			}
		}
	}
	points, err := par.Map(jobs, func(_ int, j job) (*warmPoint, error) {
		n, vcpus, mem := 1, 1, GiBytes(1)
		switch j.dim {
		case SweepVCPUs:
			vcpus = j.x
		case SweepMemory:
			mem = GiBytes(j.x)
		case SweepVMs:
			n = j.x
		}
		tb, err := newTestbed(j.profile, hv.KindKVM, n, vcpus, mem)
		if err != nil {
			return nil, fmt.Errorf("%s/%s x=%d: %w", j.profile.Name, j.dim, j.x, err)
		}
		opts := core.DefaultOptions()
		opts.Cache = tpcache.New()
		pt := &warmPoint{tb: tb, cur: tb.hyp, opts: opts}
		for hop := 0; hop < primeHops; hop += 2 {
			there, err := pt.hop()
			if err != nil {
				return nil, err
			}
			back, err := pt.hop()
			if err != nil {
				return nil, err
			}
			if there.CacheMisses == 0 && back.CacheMisses == 0 {
				return pt, nil
			}
		}
		return nil, fmt.Errorf("experiments: %s/%s x=%d never converged to cache hits after %d hops: %+v",
			j.profile.Name, j.dim, j.x, primeHops, opts.Cache.Stats())
	})
	if err != nil {
		return nil, err
	}
	return &Figure10WarmGrid{points: points}, nil
}

// Hop runs one warm transplant on every grid point (the direction
// alternates on each call, KVM->Xen first) and returns the total cache
// hits of the pass. Any miss is an error: the measured path must be
// fully warm, or the benchmark would silently re-time the cold path.
func (g *Figure10WarmGrid) Hop() (uint64, error) {
	reps, err := par.Map(g.points, func(_ int, p *warmPoint) (*core.InPlaceReport, error) {
		return p.hop()
	})
	if err != nil {
		return 0, err
	}
	var hits uint64
	for _, rep := range reps {
		if rep.CacheMisses != 0 {
			return 0, fmt.Errorf("experiments: warm grid hop missed the cache (%d misses)", rep.CacheMisses)
		}
		hits += rep.CacheHits
	}
	return hits, nil
}
