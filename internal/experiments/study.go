package experiments

import (
	"fmt"

	"hypertp/internal/core"
	"hypertp/internal/metrics"
	"hypertp/internal/vulndb"
)

// Table1 reproduces the paper's Table 1: critical and medium
// vulnerabilities per year in Xen and KVM plus the common ones.
func Table1() (*vulndb.Database, *metrics.Table) {
	db := vulndb.Load()
	tab := &metrics.Table{
		Title: "Table 1: critical and medium vulnerabilities per year in Xen and KVM",
		Headers: []string{"Year", "Xen crit", "Xen med", "KVM crit", "KVM med",
			"Common crit", "Common med"},
	}
	totals := [6]int{}
	for y := vulndb.FirstYear; y <= vulndb.LastYear; y++ {
		row := [6]int{
			db.Count(y, "xen", vulndb.SeverityCritical),
			db.Count(y, "xen", vulndb.SeverityMedium),
			db.Count(y, "kvm", vulndb.SeverityCritical),
			db.Count(y, "kvm", vulndb.SeverityMedium),
			db.Count(y, "common", vulndb.SeverityCritical),
			db.Count(y, "common", vulndb.SeverityMedium),
		}
		for i, v := range row {
			totals[i] += v
		}
		tab.AddRow(fmt.Sprint(y), fmt.Sprint(row[0]), fmt.Sprint(row[1]),
			fmt.Sprint(row[2]), fmt.Sprint(row[3]), fmt.Sprint(row[4]), fmt.Sprint(row[5]))
	}
	tab.AddRow("Total", fmt.Sprint(totals[0]), fmt.Sprint(totals[1]),
		fmt.Sprint(totals[2]), fmt.Sprint(totals[3]), fmt.Sprint(totals[4]), fmt.Sprint(totals[5]))
	return db, tab
}

// Section22Windows reproduces the §2.2 KVM vulnerability-window analysis.
func Section22Windows() (vulndb.WindowStats, *metrics.Table) {
	db := vulndb.Load()
	stats := db.KVMWindowStats()
	tab := &metrics.Table{
		Title:   "Section 2.2: KVM vulnerability windows (Red Hat tracker data)",
		Headers: []string{"Metric", "Value"},
	}
	tab.AddRow("tracked vulnerabilities", fmt.Sprint(stats.Tracked))
	tab.AddRow("average window (days)", fmt.Sprintf("%.1f", stats.AverageDays))
	tab.AddRow("share above 60 days", fmt.Sprintf("%.0f%%", stats.Over60Frac*100))
	tab.AddRow("maximum window", fmt.Sprintf("%d days (%s)", stats.MaxDays, stats.MaxID))
	tab.AddRow("minimum window", fmt.Sprintf("%d days (%s)", stats.MinDays, stats.MinID))
	return stats, tab
}

// Table2 reproduces the paper's Table 2: the Xen ↔ UISR ↔ KVM platform
// state mapping the converters implement.
func Table2() *metrics.Table {
	tab := &metrics.Table{
		Title:   "Table 2: Xen-KVM VM state mapping through UISR",
		Headers: []string{"Xen HVM state", "UISR", "KVM"},
	}
	tab.AddRow("CPU", "CPU (regs/sregs)", "(S)REGS, MSRS, FPU")
	tab.AddRow("LAPIC", "LAPIC", "MSRS (IA32_APIC_BASE)")
	tab.AddRow("LAPIC regs", "LAPIC_REGS", "LAPIC_REGS (1 KiB page)")
	tab.AddRow("MTRR", "MTRR", "MSRS (0xFE, 0x200-0x2FF)")
	tab.AddRow("XSAVE", "XSAVE", "XCRS, XSAVE")
	tab.AddRow("IOAPIC (48 pins)", "IOAPIC", "IRQCHIP (24 pins)")
	tab.AddRow("PIT", "PIT", "PIT2")
	return tab
}

// TCB reproduces the §4.4 trusted-computing-base accounting.
func TCB() *metrics.Table {
	tab := &metrics.Table{
		Title:   "Section 4.4: HyperTP code contribution",
		Headers: []string{"Component", "KLOC", "in TCB", "userspace"},
	}
	for _, c := range core.TCBReport() {
		tab.AddRow(c.Name, fmt.Sprintf("%.1f", c.KLOC),
			fmt.Sprint(c.InTCB), fmt.Sprint(c.Userspace))
	}
	total, tcb, userFrac := core.TCBTotals()
	tab.AddRow("total", fmt.Sprintf("%.1f", total), fmt.Sprintf("%.1f in TCB", tcb),
		fmt.Sprintf("%.0f%% of TCB userspace", userFrac*100))
	return tab
}

// DecisionDemo exercises the transplant decision policy on the named
// real-world flaws — the §1 scenario of choosing a safe replacement.
type DecisionDemo struct {
	CVE     string
	Current string
	// Pool is the repertoire size the decision used (2 or 3).
	Pool       int
	Transplant bool
	Target     string
}

// Decisions runs the policy across the named CVEs for a Xen datacenter,
// once with the paper's two-member pool and once with the microhypervisor
// added (which rescues the VENOM case).
func Decisions() []DecisionDemo {
	db := vulndb.Load()
	var out []DecisionDemo
	for _, pool := range [][]string{
		{"xen", "kvm"},
		{"xen", "kvm", "nova"},
	} {
		for _, cve := range []string{
			"CVE-2016-6258",  // Xen-only critical → transplant to KVM
			"CVE-2015-3456",  // VENOM, common critical
			"CVE-2015-8104",  // common medium → below the critical bar
			"CVE-2017-12188", // KVM-only → Xen hosts unaffected
		} {
			ok, target := db.TransplantWorthwhile(cve, "xen", pool)
			out = append(out, DecisionDemo{
				CVE: cve, Current: "xen", Pool: len(pool),
				Transplant: ok, Target: target,
			})
		}
	}
	return out
}
