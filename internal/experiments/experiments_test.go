package experiments

import (
	"strings"
	"testing"
	"time"

	"hypertp/internal/vulndb"
)

func TestTable1(t *testing.T) {
	db, tab := Table1()
	if db == nil {
		t.Fatal("no database")
	}
	out := tab.Render()
	// Spot-check the paper's rows.
	if !strings.Contains(out, "2015") || !strings.Contains(out, "Total") {
		t.Fatalf("table missing rows:\n%s", out)
	}
	if len(tab.Rows) != 8 { // 7 years + total
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// 2017 row: 17 Xen critical.
	for _, row := range tab.Rows {
		if row[0] == "2017" && row[1] != "17" {
			t.Fatalf("2017 Xen crit = %s, want 17", row[1])
		}
	}
}

func TestSection22(t *testing.T) {
	stats, tab := Section22Windows()
	if stats.Tracked != 24 {
		t.Fatalf("tracked = %d", stats.Tracked)
	}
	if !strings.Contains(tab.Render(), "CVE-2017-12188") {
		t.Fatal("max CVE missing from table")
	}
}

func TestTable2(t *testing.T) {
	out := Table2().Render()
	for _, want := range []string{"LAPIC", "MTRR", "IOAPIC", "PIT2", "XCRS"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Table 2 missing %q:\n%s", want, out)
		}
	}
}

func TestTCBTable(t *testing.T) {
	out := TCB().Render()
	if !strings.Contains(out, "8.5 in TCB") {
		t.Fatalf("TCB table wrong:\n%s", out)
	}
}

func TestDecisions(t *testing.T) {
	ds := Decisions()
	if len(ds) != 8 {
		t.Fatalf("decisions = %d, want 4 CVEs x 2 pools", len(ds))
	}
	lookup := func(cve string, pool int) DecisionDemo {
		for _, d := range ds {
			if d.CVE == cve && d.Pool == pool {
				return d
			}
		}
		t.Fatalf("decision %s/pool-%d missing", cve, pool)
		return DecisionDemo{}
	}
	if d := lookup("CVE-2016-6258", 2); !d.Transplant || d.Target != "kvm" {
		t.Fatalf("CVE-2016-6258 decision = %+v", d)
	}
	// VENOM: refused with two pool members, escapes to the
	// microhypervisor with three.
	if d := lookup("CVE-2015-3456", 2); d.Transplant {
		t.Fatal("VENOM decision must refuse with a two-member pool")
	}
	if d := lookup("CVE-2015-3456", 3); !d.Transplant || d.Target != "nova" {
		t.Fatalf("VENOM three-pool decision = %+v", d)
	}
	if d := lookup("CVE-2015-8104", 3); d.Transplant {
		t.Fatal("medium flaw must not trigger")
	}
}

func TestFigure6(t *testing.T) {
	rows, tab, err := Figure6()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || rows[0].Machine != "M1" || rows[1].Machine != "M2" {
		t.Fatalf("rows = %+v", rows)
	}
	m1 := rows[0].Report
	if m1.Downtime < 1500*time.Millisecond || m1.Downtime > 1900*time.Millisecond {
		t.Fatalf("M1 downtime = %v", m1.Downtime)
	}
	if !strings.Contains(tab.Render(), "M2") {
		t.Fatal("table missing M2")
	}
}

func TestTable4(t *testing.T) {
	res, tab, err := Table4()
	if err != nil {
		t.Fatal(err)
	}
	if res.TPDowntime >= res.XenDowntime {
		t.Fatal("MigrationTP downtime not lower than Xen")
	}
	// Total times within ~1s of each other (Table 4: 9.564 vs 9.63).
	diff := res.XenTotal - res.TPTotal
	if diff < 0 {
		diff = -diff
	}
	if diff > time.Second {
		t.Fatalf("totals differ by %v", diff)
	}
	if !strings.Contains(tab.Render(), "Downtime") {
		t.Fatal("table wrong")
	}
}

func TestFigure11Redis(t *testing.T) {
	tl, render, err := Figure11()
	if err != nil {
		t.Fatal(err)
	}
	// Paper: ~9 s observed interruption for InPlaceTP with networking.
	if tl.ObservedGapSec < 7 || tl.ObservedGapSec > 12 {
		t.Fatalf("observed gap = %.1f s, want ~9", tl.ObservedGapSec)
	}
	// Redis improves ~37% after landing on KVM.
	preVals := windowVals(tl.InPlaceQPS, 0, 45*time.Second)
	postVals := windowVals(tl.InPlaceQPS, 70*time.Second, 190*time.Second)
	pre, post := mean(preVals), mean(postVals)
	gain := (post - pre) / pre
	if gain < 0.30 || gain > 0.45 {
		t.Fatalf("post-transplant gain = %.2f, want ~0.37", gain)
	}
	if render == "" {
		t.Fatal("no render")
	}
}

func TestFigure12MySQL(t *testing.T) {
	tl, _, err := Figure12()
	if err != nil {
		t.Fatal(err)
	}
	// Paper: −68% QPS and +252% latency during the migration window.
	if tl.MigQPSDropFrac < 0.55 || tl.MigQPSDropFrac > 0.80 {
		t.Fatalf("QPS drop = %.2f, want ~0.68", tl.MigQPSDropFrac)
	}
	if tl.MigLatRiseFrac < 2.0 || tl.MigLatRiseFrac > 3.1 {
		t.Fatalf("latency rise = %.2f, want ~2.52", tl.MigLatRiseFrac)
	}
	if g := tl.ObservedGapSec; g < 7 || g > 12 {
		t.Fatalf("observed gap = %.1f s", g)
	}
}

func TestTable5(t *testing.T) {
	inplace, migr, tab, err := Table5()
	if err != nil {
		t.Fatal(err)
	}
	if len(inplace) != 23 || len(migr) != 23 {
		t.Fatal("row count wrong")
	}
	for _, r := range inplace {
		if r.DegPct > 5.5 {
			t.Fatalf("%s InPlaceTP degradation %.2f%% too high", r.Name, r.DegPct)
		}
	}
	if !strings.Contains(tab.Render(), "deepsjeng") {
		t.Fatal("table missing benchmark")
	}
}

func TestTable6(t *testing.T) {
	runs, tab, err := Table6()
	if err != nil {
		t.Fatal(err)
	}
	if runs["inplacetp"].Longest() <= runs["migrationtp"].Longest() {
		t.Fatal("InPlaceTP longest iteration not above MigrationTP")
	}
	if !strings.Contains(tab.Render(), "xen-migration") {
		t.Fatal("table missing scenario")
	}
}

func TestFigure13(t *testing.T) {
	points, tab, err := Figure13()
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 5 || points[0].CompatPct != 0 || points[4].CompatPct != 80 {
		t.Fatalf("points = %+v", points)
	}
	if points[0].Migrations < 120 || points[0].Migrations > 185 {
		t.Fatalf("0%% migrations = %d, want ~154", points[0].Migrations)
	}
	if g := points[4].TimeGainPct; g < 70 || g > 92 {
		t.Fatalf("80%% time gain = %.0f%%, want ~80%%", g)
	}
	for i := 1; i < len(points); i++ {
		if points[i].Migrations >= points[i-1].Migrations {
			t.Fatal("migrations not strictly decreasing")
		}
		if points[i].TimeGainPct <= points[i-1].TimeGainPct {
			t.Fatal("time gain not increasing")
		}
	}
	if !strings.Contains(tab.Render(), "80") {
		t.Fatal("table wrong")
	}
}

func TestFigure14(t *testing.T) {
	fig, tabs, err := Figure14()
	if err != nil {
		t.Fatal(err)
	}
	if len(tabs) != 3 {
		t.Fatal("panel count wrong")
	}
	// Anchors: 16 KB PRAM @1 GiB, 60 KB @12 GiB, 148 KB @12 VMs;
	// UISR ~5 KB @1 vCPU, ~38 KB @10 vCPUs.
	if fig.Memory[0].X != 2 || fig.Memory[0].PRAMBytes != 20<<10 {
		t.Fatalf("PRAM @2GiB = %d, want 20KB", fig.Memory[0].PRAMBytes)
	}
	last := fig.Memory[len(fig.Memory)-1]
	if last.X != 12 || last.PRAMBytes != 60<<10 {
		t.Fatalf("PRAM @12GiB = %d, want 60KB", last.PRAMBytes)
	}
	vms12 := fig.VMs[len(fig.VMs)-1]
	if vms12.X != 12 || vms12.PRAMBytes != 148<<10 {
		t.Fatalf("PRAM @12 VMs = %d, want 148KB", vms12.PRAMBytes)
	}
	u1 := fig.VCPUs[0].UISRBytes
	u10 := fig.VCPUs[len(fig.VCPUs)-1].UISRBytes
	if u1 < 4000 || u1 > 6200 {
		t.Fatalf("UISR @1 vCPU = %d", u1)
	}
	if u10 < 33000 || u10 > 42000 {
		t.Fatalf("UISR @10 vCPUs = %d", u10)
	}
}

// Ablation rows must show every optimization contributing.
func TestAblationTable(t *testing.T) {
	rows, tab, err := Ablation()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("rows = %d", len(rows))
	}
	full := rows[0].Downtime
	for i := 1; i < len(rows); i++ {
		if rows[i].Downtime <= full {
			t.Fatalf("%q downtime %v not above optimized %v", rows[i].Name, rows[i].Downtime, full)
		}
	}
	// The fully de-optimized config is the worst.
	worst := rows[len(rows)-1].Downtime
	for i := 1; i < len(rows)-1; i++ {
		if rows[i].Downtime > worst {
			t.Fatalf("%q worse than fully de-optimized", rows[i].Name)
		}
	}
	if !strings.Contains(tab.Render(), "huge pages") {
		t.Fatal("table wrong")
	}
}

func mean(vs []float64) float64 {
	if len(vs) == 0 {
		return 0
	}
	var s float64
	for _, v := range vs {
		s += v
	}
	return s / float64(len(vs))
}

var _ = vulndb.FirstYear // keep the import for the study tests above

func TestDirectionsMatrix(t *testing.T) {
	rows, tab, err := DirectionsMatrix()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("rows = %d, want 6", len(rows))
	}
	byDir := map[string]*struct{ reboot time.Duration }{}
	for _, r := range rows {
		byDir[r.From.String()+">"+r.To.String()] = &struct{ reboot time.Duration }{r.Report.Reboot}
	}
	// The target's boot path sets the reboot cost: into NOVA is the
	// fastest, into Xen the slowest, regardless of source.
	if byDir["xen>nova"].reboot >= byDir["xen>kvm"].reboot {
		t.Fatal("NOVA target not faster than KVM target")
	}
	if byDir["kvm>xen"].reboot <= byDir["kvm>nova"].reboot {
		t.Fatal("Xen target not slower than NOVA target")
	}
	if byDir["nova>xen"].reboot != byDir["kvm>xen"].reboot {
		t.Fatal("reboot cost depends on source, not target")
	}
	if !strings.Contains(tab.Render(), "nova") {
		t.Fatal("table missing nova rows")
	}
}

func TestGroupSizeSweep(t *testing.T) {
	points, tab, err := GroupSizeSweep()
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 3 {
		t.Fatalf("points = %d", len(points))
	}
	// Larger groups shrink the re-migration cascade: fewer rounds of
	// replanning means fewer VMs parked on not-yet-upgraded hosts.
	if points[2].Migrations >= points[0].Migrations {
		t.Fatalf("group-5 migrations %d not below group-1 %d",
			points[2].Migrations, points[0].Migrations)
	}
	// But every plan still moves each VM at least once.
	for _, p := range points {
		if p.Migrations < 100 {
			t.Fatalf("group %d migrations = %d < VM count", p.GroupSize, p.Migrations)
		}
	}
	if !strings.Contains(tab.Render(), "Group size") {
		t.Fatal("table wrong")
	}
}
