package workload

import (
	"fmt"
	"time"

	"hypertp/internal/guest"
	"hypertp/internal/hw"
	"hypertp/internal/simtime"
)

// Driver runs a workload *inside* a guest on the virtual clock: it
// periodically writes real bytes into the guest's working set at the
// profile's dirty rate. While a migration's pre-copy loop is active, the
// hypervisor's dirty log picks these writes up, so the extra rounds and
// retransmissions of Figs. 8-9 can be produced mechanistically instead of
// by the analytic rate parameter.
type Driver struct {
	clock   *simtime.Clock
	guest   *guest.Guest
	rate    float64 // pages per second
	tick    time.Duration
	baseGFN hw.GFN
	span    uint64
	cursor  uint64
	rng     *simtime.Rand

	running      bool
	pagesWritten uint64
	event        *simtime.Event
}

// StartDriver begins writing rate pages/second into the guest, cycling
// through span pages starting at baseGFN. It keeps scheduling itself
// until Stop is called.
func StartDriver(clock *simtime.Clock, g *guest.Guest, rate float64, baseGFN hw.GFN, span uint64, seed uint64) (*Driver, error) {
	if rate <= 0 {
		return nil, fmt.Errorf("workload: driver rate must be positive")
	}
	if span == 0 {
		return nil, fmt.Errorf("workload: driver span must be positive")
	}
	if uint64(baseGFN)+span > g.Memory().NumPages() {
		return nil, fmt.Errorf("workload: driver window [%d, %d) outside guest memory",
			baseGFN, uint64(baseGFN)+span)
	}
	d := &Driver{
		clock: clock, guest: g, rate: rate,
		tick:    100 * time.Millisecond,
		baseGFN: baseGFN, span: span,
		rng:     simtime.NewRand(seed),
		running: true,
	}
	d.schedule()
	return d, nil
}

func (d *Driver) schedule() {
	d.event = d.clock.After(d.tick, "workload-tick", func(*simtime.Clock) { d.step() })
}

func (d *Driver) step() {
	if !d.running {
		return
	}
	n := int(d.rate * d.tick.Seconds())
	if n < 1 {
		n = 1
	}
	for i := 0; i < n; i++ {
		gfn := d.baseGFN + hw.GFN((d.cursor+uint64(i)*2654435761)%d.span)
		payload := []byte{byte(d.rng.Uint64()), byte(d.rng.Uint64())}
		off := int(d.rng.Uint64() % (hw.PageSize4K - 2))
		if err := d.guest.Write(gfn, off, payload); err != nil {
			// The VM is mid-transplant (memory temporarily detached):
			// a real guest would be paused; just skip the tick.
			break
		}
		d.pagesWritten++
	}
	d.cursor += uint64(n)
	d.schedule()
}

// PagesWritten reports the total pages the driver has touched.
func (d *Driver) PagesWritten() uint64 { return d.pagesWritten }

// Running reports whether the driver is active.
func (d *Driver) Running() bool { return d.running }

// Stop halts the driver.
func (d *Driver) Stop() {
	d.running = false
	if d.event != nil {
		d.clock.Cancel(d.event)
		d.event = nil
	}
}
