package workload

import (
	"time"

	"hypertp/internal/simtime"
)

// SPECBenchmark is one row of Table 5's calibration columns: the native
// execution time of a SPECrate 2017 benchmark under KVM and Xen on the
// paper's testbed (2 vCPUs / 8 GB VM).
type SPECBenchmark struct {
	Name   string
	KVMSec float64
	XenSec float64
}

// SPECBenchmarks returns the 23 SPECrate 2017 workloads with the paper's
// measured native times (Table 5, KVM and Xen columns).
func SPECBenchmarks() []SPECBenchmark {
	return []SPECBenchmark{
		{"perlbench", 474.31, 477.39},
		{"gcc", 345.92, 346.24},
		{"bwaves", 943.96, 941.36},
		{"mcf", 466.78, 465.83},
		{"cactuBSSN", 323.78, 325.74},
		{"namd", 308.77, 310.58},
		{"parest", 663.50, 666.87},
		{"povray", 558.38, 550.73},
		{"lbm", 308.55, 306.27},
		{"omnetpp", 557.65, 560.94},
		{"wrf", 650.81, 686.62},
		{"xalancbmk", 496.66, 488.86},
		{"x264", 630.68, 634.67},
		{"blender", 457.93, 456.97},
		{"cam4", 539.63, 569.20},
		{"deepsjeng", 456.65, 457.75},
		{"imagick", 707.99, 712.16},
		{"leela", 738.87, 741.29},
		{"nab", 554.47, 570.73},
		{"exchange2", 580.84, 578.83},
		{"fotonik3d", 405.29, 398.53},
		{"roms", 432.87, 442.74},
		{"xz", 530.10, 527.98},
	}
}

// TPMode selects the transplant mechanism applied mid-run.
type TPMode uint8

const (
	// ModeInPlace is InPlaceTP (micro-reboot).
	ModeInPlace TPMode = iota + 1
	// ModeMigration is MigrationTP (live migration).
	ModeMigration
)

// SPECResult is one computed row of Table 5.
type SPECResult struct {
	Name   string
	KVMSec float64
	XenSec float64
	TPSec  float64
	DegPct float64
	Mode   TPMode
}

// RunSPEC simulates one benchmark executing in a Xen VM with a transplant
// to KVM triggered at the midpoint. The model: half the work runs at the
// Xen rate, half at the KVM rate; InPlaceTP adds the downtime (the VM is
// paused), MigrationTP adds pre-copy interference instead; both add a
// small cache/TLB disruption penalty after the switch. Degradation uses
// the paper's formula:
//
//	Deg = max((TP-Xen)/Xen, (TP-KVM)/KVM)
func RunSPEC(b SPECBenchmark, mode TPMode, downtime time.Duration, seed uint64) SPECResult {
	rng := simtime.NewRand(seed ^ hashName(b.Name))
	tp := b.XenSec/2 + b.KVMSec/2
	switch mode {
	case ModeMigration:
		// Pre-copy steals cycles (page dirtying traps, copy threads)
		// for the duration of the migration of an 8 GB VM (~76 s at
		// 1 Gbps) at a few percent slowdown.
		tp += 76 * 0.04
	default:
		tp += downtime.Seconds()
	}
	// Post-switch cache/NUMA disruption: 0-3.5% of the remaining half,
	// benchmark-dependent (deterministic per name/seed). This is what
	// spreads Table 5's degradations between 0.02% and 4.8%.
	disruption := rng.Float64() * 0.035
	tp += b.KVMSec / 2 * disruption

	deg := maxf((tp-b.XenSec)/b.XenSec, (tp-b.KVMSec)/b.KVMSec) * 100
	return SPECResult{Name: b.Name, KVMSec: b.KVMSec, XenSec: b.XenSec,
		TPSec: tp, DegPct: deg, Mode: mode}
}

// RunSPECSuite runs all 23 benchmarks for a mode and returns results plus
// the maximum degradation (the paper reports 4.19% InPlaceTP, 4.81%
// MigrationTP).
func RunSPECSuite(mode TPMode, downtime time.Duration, seed uint64) ([]SPECResult, float64) {
	var out []SPECResult
	maxDeg := 0.0
	for _, b := range SPECBenchmarks() {
		r := RunSPEC(b, mode, downtime, seed)
		out = append(out, r)
		if r.DegPct > maxDeg {
			maxDeg = r.DegPct
		}
	}
	return out, maxDeg
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

func hashName(s string) uint64 {
	var h uint64 = 1469598103934665603
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}
