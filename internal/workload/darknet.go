package workload

import (
	"time"

	"hypertp/internal/simtime"
)

// Darknet models the paper's neural-network training workload: 100
// training iterations over MNIST, ~2.044 s per iteration when
// undisturbed (Table 6).
const (
	// DarknetIterations is the paper's training length.
	DarknetIterations = 100
	// DarknetBaseIterSec is the undisturbed mean iteration time.
	DarknetBaseIterSec = 2.044
)

// DarknetMode is the disturbance applied mid-training.
type DarknetMode uint8

const (
	// DarknetDefault trains undisturbed.
	DarknetDefault DarknetMode = iota + 1
	// DarknetXenMigration applies a homogeneous Xen→Xen live migration
	// (Table 6: longest iteration ~2.672 s).
	DarknetXenMigration
	// DarknetInPlaceTP applies InPlaceTP: the VM pauses for the
	// downtime, stretching one iteration (Table 6: ~4.97 s).
	DarknetInPlaceTP
	// DarknetMigrationTP applies MigrationTP (Table 6: longest
	// iteration ~2.244 s).
	DarknetMigrationTP
)

// DarknetRun is one training run's per-iteration durations in seconds.
type DarknetRun struct {
	Mode       DarknetMode
	Iterations []float64
}

// RunDarknet simulates one training run with the given disturbance. The
// disturbance hits the middle iteration; migrations additionally slow
// the iterations overlapping the pre-copy window.
func RunDarknet(mode DarknetMode, downtime time.Duration, seed uint64) DarknetRun {
	rng := simtime.NewRand(seed)
	run := DarknetRun{Mode: mode, Iterations: make([]float64, DarknetIterations)}
	for i := range run.Iterations {
		run.Iterations[i] = rng.Jitter(DarknetBaseIterSec, 0.015)
	}
	mid := DarknetIterations / 2
	switch mode {
	case DarknetDefault:
	case DarknetInPlaceTP:
		// The VM is paused for the downtime during one iteration.
		run.Iterations[mid] += downtime.Seconds()
	case DarknetXenMigration, DarknetMigrationTP:
		// Pre-copy of the 8 GB VM takes ~76 s ≈ 37 iterations; each
		// overlapped iteration is slightly slower, the stop-and-copy
		// one most of all.
		perIter := 0.09 // MigrationTP interference per iteration
		peak := 0.20
		if mode == DarknetXenMigration {
			perIter = 0.17 // Xen's heavier shadow-paging log-dirty cost
			peak = 0.62
		}
		window := 37
		for i := mid - window/2; i < mid+window/2 && i < len(run.Iterations); i++ {
			if i < 0 {
				continue
			}
			run.Iterations[i] += rng.Jitter(perIter, 0.3)
		}
		run.Iterations[mid] += peak
	}
	return run
}

// Mean returns the mean iteration time.
func (r DarknetRun) Mean() float64 {
	var sum float64
	for _, v := range r.Iterations {
		sum += v
	}
	return sum / float64(len(r.Iterations))
}

// Longest returns the slowest iteration.
func (r DarknetRun) Longest() float64 {
	var max float64
	for _, v := range r.Iterations {
		if v > max {
			max = v
		}
	}
	return max
}
