// Package workload models the paper's four application benchmarks —
// Redis (redis-benchmark), MySQL (sysbench), SPECrate 2017 and Darknet
// MNIST training — as metric generators driven by transplant phase
// timings (§5.3).
//
// Native per-hypervisor performance levels (e.g. Redis serving ~37%
// better on KVM, the SPEC column times) are testbed measurements from the
// paper used as calibration inputs; what the engines *derive* is how
// those metrics respond to InPlaceTP's service gap and MigrationTP's
// pre-copy degradation window, using the phase boundaries produced by the
// transplant engine.
package workload

import (
	"fmt"
	"time"

	"hypertp/internal/metrics"
	"hypertp/internal/simtime"
)

// ServerProfile calibrates one request-serving workload.
type ServerProfile struct {
	Name string
	// Steady-state throughput per hypervisor (requests/sec).
	QPSXen, QPSKVM float64
	// Steady-state request latency per hypervisor (milliseconds).
	LatencyXenMS, LatencyKVMMS float64
	// MigQPSFactor and MigLatFactor shape the pre-copy degradation
	// window of a live migration (§5.3: MySQL QPS −68%, latency +252%).
	MigQPSFactor, MigLatFactor float64
	// NoiseFrac is sampling noise as a fraction of the current level.
	NoiseFrac float64
	// DirtyPagesPerSec is the guest page write rate the workload
	// imposes, which feeds the migration pre-copy loop.
	DirtyPagesPerSec float64
}

// Redis returns the Fig. 11 calibration: ~30k QPS under Xen, ~37% more
// under KVM.
func Redis() ServerProfile {
	return ServerProfile{
		Name:   "redis",
		QPSXen: 30000, QPSKVM: 41100,
		LatencyXenMS: 0.9, LatencyKVMMS: 0.66,
		MigQPSFactor: 0.45, MigLatFactor: 2.2,
		NoiseFrac:        0.04,
		DirtyPagesPerSec: 9000,
	}
}

// MySQL returns the Fig. 12 calibration: ~1.6k QPS, ~5 ms latency;
// during migration QPS −68% and latency +252%.
func MySQL() ServerProfile {
	return ServerProfile{
		Name:   "mysql",
		QPSXen: 1600, QPSKVM: 1650,
		LatencyXenMS: 5.0, LatencyKVMMS: 4.8,
		MigQPSFactor: 0.32, MigLatFactor: 3.52,
		NoiseFrac:        0.05,
		DirtyPagesPerSec: 7000,
	}
}

// VideoStream returns the §5.4 streaming-server calibration used in the
// cluster experiment (30% of cluster VMs).
func VideoStream() ServerProfile {
	return ServerProfile{
		Name:   "video-stream",
		QPSXen: 480, QPSKVM: 500,
		LatencyXenMS: 12, LatencyKVMMS: 11.5,
		MigQPSFactor: 0.6, MigLatFactor: 1.8,
		NoiseFrac:        0.03,
		DirtyPagesPerSec: 5000,
	}
}

// ScheduleKind selects the transplant scenario a timeline describes.
type ScheduleKind uint8

const (
	// RunXen is an untouched run on Xen (baseline curve).
	RunXen ScheduleKind = iota + 1
	// RunKVM is an untouched run on KVM (baseline curve).
	RunKVM
	// InPlaceTP inserts a full service gap between GapStart and GapEnd
	// (downtime plus NIC reinitialization for networked services),
	// after which the workload serves at KVM levels.
	InPlaceTP
	// MigrationTP inserts a degradation window (pre-copy) between
	// DegradeStart and DegradeEnd, a negligible gap, then KVM levels.
	MigrationTP
)

// Schedule describes one experiment timeline.
type Schedule struct {
	Kind  ScheduleKind
	Total time.Duration
	Step  time.Duration

	// InPlaceTP: service interruption window.
	GapStart, GapEnd time.Duration

	// MigrationTP: pre-copy degradation window; the downtime itself is
	// sub-sample-resolution (Table 4: ~5 ms) and does not produce a
	// visible gap.
	DegradeStart, DegradeEnd time.Duration
}

// Validate checks the schedule shape.
func (s *Schedule) Validate() error {
	if s.Total <= 0 || s.Step <= 0 {
		return fmt.Errorf("workload: schedule needs positive total and step")
	}
	switch s.Kind {
	case RunXen, RunKVM:
	case InPlaceTP:
		if s.GapEnd < s.GapStart {
			return fmt.Errorf("workload: gap ends before it starts")
		}
	case MigrationTP:
		if s.DegradeEnd < s.DegradeStart {
			return fmt.Errorf("workload: degradation ends before it starts")
		}
	default:
		return fmt.Errorf("workload: unknown schedule kind %d", s.Kind)
	}
	return nil
}

// levelAt returns (qps, latencyMS) at time t for the schedule.
func levelAt(p *ServerProfile, s *Schedule, t time.Duration) (float64, float64) {
	switch s.Kind {
	case RunXen:
		return p.QPSXen, p.LatencyXenMS
	case RunKVM:
		return p.QPSKVM, p.LatencyKVMMS
	case InPlaceTP:
		switch {
		case t < s.GapStart:
			return p.QPSXen, p.LatencyXenMS
		case t < s.GapEnd:
			return 0, 0 // no service, no samples answered
		default:
			return p.QPSKVM, p.LatencyKVMMS
		}
	case MigrationTP:
		switch {
		case t < s.DegradeStart:
			return p.QPSXen, p.LatencyXenMS
		case t < s.DegradeEnd:
			return p.QPSXen * p.MigQPSFactor, p.LatencyXenMS * p.MigLatFactor
		default:
			return p.QPSKVM, p.LatencyKVMMS
		}
	}
	return 0, 0
}

// Timelines generates the throughput and latency series for a schedule.
func Timelines(p ServerProfile, s Schedule, seed uint64) (qps, latency *metrics.Series, err error) {
	if err := s.Validate(); err != nil {
		return nil, nil, err
	}
	rng := simtime.NewRand(seed)
	qps = &metrics.Series{Name: p.Name + "-qps", Unit: "req/s"}
	latency = &metrics.Series{Name: p.Name + "-latency", Unit: "ms"}
	for t := time.Duration(0); t <= s.Total; t += s.Step {
		q, l := levelAt(&p, &s, t)
		if q > 0 {
			q = rng.Jitter(q, p.NoiseFrac)
		}
		if l > 0 {
			l = rng.Jitter(l, p.NoiseFrac)
		}
		qps.Add(t, q)
		latency.Add(t, l)
	}
	return qps, latency, nil
}

// GapSeconds measures the observed service interruption in a QPS series:
// the longest run of (near-)zero samples times the step.
func GapSeconds(qps *metrics.Series, step time.Duration) float64 {
	longest, cur := 0, 0
	for _, pt := range qps.Points {
		if pt.V < 1 {
			cur++
			if cur > longest {
				longest = cur
			}
		} else {
			cur = 0
		}
	}
	return (time.Duration(longest) * step).Seconds()
}
