package workload

import (
	"testing"
	"time"

	"hypertp/internal/guest"
	"hypertp/internal/hw"
	"hypertp/internal/metrics"
	"hypertp/internal/simtime"
)

func TestProfiles(t *testing.T) {
	r := Redis()
	// Fig. 11: KVM serves ~37% better than Xen for Redis.
	gain := (r.QPSKVM - r.QPSXen) / r.QPSXen
	if gain < 0.33 || gain > 0.41 {
		t.Fatalf("Redis KVM gain = %.2f, want ~0.37", gain)
	}
	m := MySQL()
	// Fig. 12: −68% QPS, +252% latency during migration.
	if m.MigQPSFactor < 0.28 || m.MigQPSFactor > 0.36 {
		t.Fatalf("MySQL mig QPS factor = %v", m.MigQPSFactor)
	}
	if m.MigLatFactor < 3.3 || m.MigLatFactor > 3.7 {
		t.Fatalf("MySQL mig latency factor = %v", m.MigLatFactor)
	}
	if VideoStream().Name != "video-stream" {
		t.Fatal("video profile wrong")
	}
}

func TestScheduleValidate(t *testing.T) {
	good := Schedule{Kind: RunXen, Total: time.Minute, Step: time.Second}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Schedule{
		{Kind: RunXen, Total: 0, Step: time.Second},
		{Kind: RunXen, Total: time.Minute, Step: 0},
		{Kind: InPlaceTP, Total: time.Minute, Step: time.Second, GapStart: 10 * time.Second, GapEnd: 5 * time.Second},
		{Kind: MigrationTP, Total: time.Minute, Step: time.Second, DegradeStart: 10 * time.Second, DegradeEnd: 5 * time.Second},
		{Kind: 0, Total: time.Minute, Step: time.Second},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Fatalf("bad schedule %d accepted", i)
		}
	}
}

func TestInPlaceTimelineShape(t *testing.T) {
	p := Redis()
	s := Schedule{
		Kind: InPlaceTP, Total: 200 * time.Second, Step: time.Second,
		GapStart: 50 * time.Second, GapEnd: 59 * time.Second,
	}
	qps, lat, err := Timelines(p, s, 1)
	if err != nil {
		t.Fatal(err)
	}
	if lat == nil {
		t.Fatal("no latency series")
	}
	// Before the gap: Xen level.
	before := metrics.Mean(values(qps.Window(0, 50*time.Second)))
	if before < p.QPSXen*0.9 || before > p.QPSXen*1.1 {
		t.Fatalf("pre-gap QPS = %v, want ~%v", before, p.QPSXen)
	}
	// Inside the gap: zero.
	for _, pt := range qps.Window(50*time.Second, 59*time.Second) {
		if pt.V != 0 {
			t.Fatalf("QPS %v inside the gap", pt.V)
		}
	}
	// After: KVM level — the +37% improvement of Fig. 11.
	after := metrics.Mean(values(qps.Window(60*time.Second, 200*time.Second)))
	if after < p.QPSKVM*0.9 || after > p.QPSKVM*1.1 {
		t.Fatalf("post-gap QPS = %v, want ~%v", after, p.QPSKVM)
	}
	if g := GapSeconds(qps, s.Step); g < 8 || g > 10 {
		t.Fatalf("observed gap = %vs, want ~9s", g)
	}
}

func TestMigrationTimelineShape(t *testing.T) {
	p := MySQL()
	s := Schedule{
		Kind: MigrationTP, Total: 180 * time.Second, Step: time.Second,
		DegradeStart: 46 * time.Second, DegradeEnd: 122 * time.Second,
	}
	qps, lat, err := Timelines(p, s, 2)
	if err != nil {
		t.Fatal(err)
	}
	during := metrics.Mean(values(qps.Window(50*time.Second, 120*time.Second)))
	if during > p.QPSXen*0.40 {
		t.Fatalf("QPS during migration = %v, want ≤ 40%% of %v", during, p.QPSXen)
	}
	latDuring := metrics.Mean(values(lat.Window(50*time.Second, 120*time.Second)))
	if latDuring < p.LatencyXenMS*3 {
		t.Fatalf("latency during migration = %v ms, want ≥ 3x of %v", latDuring, p.LatencyXenMS)
	}
	// No visible downtime gap: MigrationTP downtime is ~5 ms.
	if g := GapSeconds(qps, s.Step); g != 0 {
		t.Fatalf("observed gap = %vs, want 0", g)
	}
	// Recovery after migration.
	after := metrics.Mean(values(qps.Window(125*time.Second, 180*time.Second)))
	if after < p.QPSKVM*0.9 {
		t.Fatalf("post-migration QPS = %v", after)
	}
}

func TestBaselineTimelines(t *testing.T) {
	p := Redis()
	for _, kind := range []ScheduleKind{RunXen, RunKVM} {
		s := Schedule{Kind: kind, Total: 30 * time.Second, Step: time.Second}
		qps, _, err := Timelines(p, s, 3)
		if err != nil {
			t.Fatal(err)
		}
		want := p.QPSXen
		if kind == RunKVM {
			want = p.QPSKVM
		}
		got := metrics.Mean(qps.Values())
		if got < want*0.9 || got > want*1.1 {
			t.Fatalf("kind %d mean = %v, want ~%v", kind, got, want)
		}
	}
}

func TestTimelinesDeterministic(t *testing.T) {
	s := Schedule{Kind: RunXen, Total: 10 * time.Second, Step: time.Second}
	a, _, _ := Timelines(Redis(), s, 9)
	b, _, _ := Timelines(Redis(), s, 9)
	for i := range a.Points {
		if a.Points[i] != b.Points[i] {
			t.Fatal("same seed, different timeline")
		}
	}
}

func values(pts []metrics.Point) []float64 {
	out := make([]float64, len(pts))
	for i, p := range pts {
		out[i] = p.V
	}
	return out
}

// Table 5 anchors: 23 benchmarks; degradation small, max ≈ 4-5%.
func TestSPECSuite(t *testing.T) {
	if len(SPECBenchmarks()) != 23 {
		t.Fatalf("SPEC suite has %d benchmarks, want 23", len(SPECBenchmarks()))
	}
	inplace, maxIn := RunSPECSuite(ModeInPlace, 2400*time.Millisecond, 7)
	migr, maxMig := RunSPECSuite(ModeMigration, 5*time.Millisecond, 7)
	if len(inplace) != 23 || len(migr) != 23 {
		t.Fatal("suite result count wrong")
	}
	if maxIn < 1.0 || maxIn > 5.5 {
		t.Fatalf("InPlaceTP max degradation = %.2f%%, want ~4.2%%", maxIn)
	}
	if maxMig < 1.0 || maxMig > 5.5 {
		t.Fatalf("MigrationTP max degradation = %.2f%%, want ~4.8%%", maxMig)
	}
	for _, r := range inplace {
		if r.DegPct < -0.5 {
			t.Fatalf("%s: negative degradation %v", r.Name, r.DegPct)
		}
		if r.TPSec < r.XenSec/2+r.KVMSec/2 {
			t.Fatalf("%s: TP time below physical floor", r.Name)
		}
	}
}

func TestSPECDeterministic(t *testing.T) {
	a := RunSPEC(SPECBenchmarks()[0], ModeInPlace, 2*time.Second, 5)
	b := RunSPEC(SPECBenchmarks()[0], ModeInPlace, 2*time.Second, 5)
	if a != b {
		t.Fatal("same seed, different SPEC result")
	}
}

// Table 6 anchors: default ~2.044 s; InPlaceTP longest ~4.97 s;
// MigrationTP longest ~2.24 s; Xen→Xen migration longest ~2.67 s.
func TestDarknetTable6(t *testing.T) {
	def := RunDarknet(DarknetDefault, 0, 11)
	if m := def.Mean(); m < 2.0 || m > 2.1 {
		t.Fatalf("default mean = %v, want ~2.044", m)
	}
	inplace := RunDarknet(DarknetInPlaceTP, 2900*time.Millisecond, 11)
	if l := inplace.Longest(); l < 4.5 || l > 5.4 {
		t.Fatalf("InPlaceTP longest iteration = %v, want ~4.97", l)
	}
	mig := RunDarknet(DarknetMigrationTP, 0, 11)
	if l := mig.Longest(); l < 2.15 || l > 2.45 {
		t.Fatalf("MigrationTP longest iteration = %v, want ~2.24", l)
	}
	xen := RunDarknet(DarknetXenMigration, 0, 11)
	if l := xen.Longest(); l < 2.5 || l > 2.9 {
		t.Fatalf("Xen migration longest iteration = %v, want ~2.67", l)
	}
	// Ordering: default < MigrationTP < Xen migration < InPlaceTP peaks.
	if !(def.Longest() < mig.Longest() && mig.Longest() < xen.Longest() && xen.Longest() < inplace.Longest()) {
		t.Fatal("Table 6 ordering violated")
	}
	if len(def.Iterations) != DarknetIterations {
		t.Fatal("iteration count wrong")
	}
}

// driverMem is a minimal guest.Memory for driver tests.
type driverMem struct {
	pages map[hw.GFN][]byte
	n     uint64
}

func newDriverMem(n uint64) *driverMem {
	return &driverMem{pages: make(map[hw.GFN][]byte), n: n}
}

func (m *driverMem) WritePage(gfn hw.GFN, off int, data []byte) error {
	p, ok := m.pages[gfn]
	if !ok {
		p = make([]byte, hw.PageSize4K)
		m.pages[gfn] = p
	}
	copy(p[off:], data)
	return nil
}

func (m *driverMem) ReadPage(gfn hw.GFN, off, n int) ([]byte, error) {
	out := make([]byte, n)
	if p, ok := m.pages[gfn]; ok {
		copy(out, p[off:off+n])
	}
	return out, nil
}

func (m *driverMem) NumPages() uint64 { return m.n }

func TestDriverWritesAtRate(t *testing.T) {
	clock := simtime.NewClock()
	g := guest.New("g", newDriverMem(1024))
	d, err := StartDriver(clock, g, 500, 0, 512, 1)
	if err != nil {
		t.Fatal(err)
	}
	clock.RunUntil(2 * time.Second)
	d.Stop()
	// ~500 pages/s over 2s = ~1000 writes.
	if d.PagesWritten() < 900 || d.PagesWritten() > 1100 {
		t.Fatalf("pages written = %d, want ~1000", d.PagesWritten())
	}
	if err := g.Verify(); err != nil {
		t.Fatal(err)
	}
	if d.Running() {
		t.Fatal("driver still running after Stop")
	}
	// Stopped driver writes nothing more.
	before := d.PagesWritten()
	clock.RunUntil(4 * time.Second)
	if d.PagesWritten() != before {
		t.Fatal("stopped driver kept writing")
	}
}

func TestDriverValidation(t *testing.T) {
	clock := simtime.NewClock()
	g := guest.New("g", newDriverMem(64))
	if _, err := StartDriver(clock, g, 0, 0, 16, 1); err == nil {
		t.Fatal("zero rate accepted")
	}
	if _, err := StartDriver(clock, g, 10, 0, 0, 1); err == nil {
		t.Fatal("zero span accepted")
	}
	if _, err := StartDriver(clock, g, 10, 60, 10, 1); err == nil {
		t.Fatal("window past end of memory accepted")
	}
}
