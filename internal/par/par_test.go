package par

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
)

// TestMapOrdering checks that results land in item order for a spread of
// worker counts and item counts, including n much larger and much smaller
// than the pool.
func TestMapOrdering(t *testing.T) {
	defer SetWorkers(0)
	for _, w := range []int{1, 2, 3, 8, 32} {
		SetWorkers(w)
		for _, n := range []int{0, 1, 7, 64, 1000} {
			items := make([]int, n)
			for i := range items {
				items[i] = i * 3
			}
			out, err := Map(items, func(i int, v int) (string, error) {
				return fmt.Sprintf("%d:%d", i, v), nil
			})
			if err != nil {
				t.Fatalf("w=%d n=%d: %v", w, n, err)
			}
			if len(out) != n {
				t.Fatalf("w=%d n=%d: got %d results", w, n, len(out))
			}
			for i, s := range out {
				if want := fmt.Sprintf("%d:%d", i, i*3); s != want {
					t.Fatalf("w=%d n=%d: out[%d] = %q, want %q", w, n, i, s, want)
				}
			}
		}
	}
}

// TestLowestIndexErrorWins checks the deterministic error rule: with
// several failing items, the reported error is always the lowest-index
// one, whatever the worker count.
func TestLowestIndexErrorWins(t *testing.T) {
	defer SetWorkers(0)
	fail := map[int]bool{13: true, 200: true, 77: true}
	for _, w := range []int{1, 2, 4, 16} {
		SetWorkers(w)
		for trial := 0; trial < 20; trial++ {
			err := ForEach(500, func(i int) error {
				if fail[i] {
					return fmt.Errorf("item %d", i)
				}
				return nil
			})
			if err == nil || err.Error() != "item 13" {
				t.Fatalf("w=%d: got %v, want item 13", w, err)
			}
		}
	}
}

// TestNoSpanCancellation checks that a failing span does not cancel the
// rest of the work: every span of [0, n) is still attempted exactly once,
// even when the very first one errors.
func TestNoSpanCancellation(t *testing.T) {
	defer SetWorkers(0)
	SetWorkers(4)
	const n = 300
	var covered [n]atomic.Int32
	boom := errors.New("boom")
	err := ForEachSpan(n, func(lo, hi int) error {
		for i := lo; i < hi; i++ {
			covered[i].Add(1)
		}
		if lo == 0 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("got %v, want boom", err)
	}
	for i := range covered {
		if got := covered[i].Load(); got != 1 {
			t.Fatalf("index %d covered %d times", i, got)
		}
	}
}

// TestForEachSpanCoverage checks that spans partition [0, n) exactly:
// contiguous, disjoint, complete.
func TestForEachSpanCoverage(t *testing.T) {
	defer SetWorkers(0)
	for _, w := range []int{1, 3, 8} {
		SetWorkers(w)
		for _, n := range []int{0, 1, 5, 97, 1024} {
			var seen [1024]atomic.Int32
			err := ForEachSpan(n, func(lo, hi int) error {
				if lo < 0 || hi > n || lo >= hi {
					return fmt.Errorf("bad span [%d,%d)", lo, hi)
				}
				for i := lo; i < hi; i++ {
					seen[i].Add(1)
				}
				return nil
			})
			if err != nil {
				t.Fatalf("w=%d n=%d: %v", w, n, err)
			}
			for i := 0; i < n; i++ {
				if got := seen[i].Load(); got != 1 {
					t.Fatalf("w=%d n=%d: index %d covered %d times", w, n, i, got)
				}
			}
		}
	}
}

func TestSetWorkers(t *testing.T) {
	defer SetWorkers(0)
	SetWorkers(5)
	if got := Workers(); got != 5 {
		t.Fatalf("Workers() = %d, want 5", got)
	}
	SetWorkers(0)
	if got := Workers(); got < 1 {
		t.Fatalf("Workers() = %d, want >= 1 with default", got)
	}
	SetWorkers(-3)
	if got := Workers(); got < 1 {
		t.Fatalf("Workers() = %d after negative set, want default", got)
	}
}

// TestDeriveSeedStable pins the SplitMix64 derivation: seeds must never
// change across refactors (they feed modeled randomness), must differ per
// index, and must differ per base.
func TestDeriveSeedStable(t *testing.T) {
	if a, b := DeriveSeed(42, 0), DeriveSeed(42, 0); a != b {
		t.Fatalf("not deterministic: %#x vs %#x", a, b)
	}
	seen := map[uint64]int{}
	for i := 0; i < 1000; i++ {
		s := DeriveSeed(42, i)
		if prev, dup := seen[s]; dup {
			t.Fatalf("seed collision between index %d and %d", prev, i)
		}
		seen[s] = i
	}
	if DeriveSeed(1, 7) == DeriveSeed(2, 7) {
		t.Fatal("same seed for different bases")
	}
}

// TestStress hammers the pool with nested result writes under many
// worker-count switches; run with -race this doubles as the data-race
// check for the span dispatcher.
func TestStress(t *testing.T) {
	defer SetWorkers(0)
	for trial := 0; trial < 50; trial++ {
		SetWorkers(1 + trial%9)
		n := 1 + trial*13%257
		out, err := Map(make([]struct{}, n), func(i int, _ struct{}) (int, error) {
			sum := 0
			for j := 0; j <= i; j++ {
				sum += j
			}
			return sum, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		for i, got := range out {
			if want := i * (i + 1) / 2; got != want {
				t.Fatalf("trial %d: out[%d] = %d, want %d", trial, i, got, want)
			}
		}
	}
}
