// Package par is the deterministic host-parallel execution layer of the
// reproduction: a bounded worker pool that spreads independent work items
// across host cores while guaranteeing that results are byte-identical to
// a sequential run.
//
// The simulator draws a hard line between two kinds of parallelism:
//
//   - Virtual-time parallelism — the paper's §4.2.5 "parallel translation"
//     optimization — is *modeled* by hw.ParallelElapsed*: it decides how
//     much simulated time a phase costs and is controlled per-transplant
//     by core.Options.Parallel.
//   - Wall-clock parallelism — this package — decides how fast the Go
//     process itself executes the phase and never influences simulated
//     time.
//
// Determinism contract: Map and ForEach assign work by index, store
// results by index, and report the lowest-index error, so any observable
// output is independent of the worker count and of goroutine scheduling.
// Callers must keep per-item work free of cross-item side effects (or
// guard shared structures, as hw.PhysMem does); everything order-dependent
// belongs in a sequential stage before or after the parallel one.
package par

import (
	"context"
	"runtime"
	"runtime/pprof"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// workers is the configured pool width; 0 means GOMAXPROCS. It is the
// process-wide knob behind the CLIs' -workers flag.
var workers atomic.Int64

// SetWorkers sets the pool width used by Map and ForEach. n <= 0 restores
// the default (GOMAXPROCS at call time).
func SetWorkers(n int) {
	if n < 0 {
		n = 0
	}
	workers.Store(int64(n))
}

// Workers returns the current pool width.
func Workers() int {
	if n := workers.Load(); n > 0 {
		return int(n)
	}
	return runtime.GOMAXPROCS(0)
}

// Observer receives per-task timing hooks from the pool — the bridge to
// the observability layer's pool metrics (queue depth, task wall time,
// utilization). Implementations must be safe for concurrent use: tasks
// on different workers report concurrently.
//
// Task is called once per executed span with the number of items the
// span covered, the number of spans still queued when it finished, and
// the span's wall-clock duration. Dispatch is called once per pool
// invocation with the total item and span counts and the worker width.
type Observer interface {
	Dispatch(items, spans, workers int)
	Task(items, queued int, wall time.Duration)
}

// observer is the process-wide hook; nil means no instrumentation and
// costs one atomic load per pool call.
var observer atomic.Pointer[observerBox]

type observerBox struct{ o Observer }

// SetObserver installs (or, with nil, removes) the pool observer.
func SetObserver(o Observer) {
	if o == nil {
		observer.Store(nil)
		return
	}
	observer.Store(&observerBox{o: o})
}

// currentObserver returns the installed observer or nil.
func currentObserver() Observer {
	if b := observer.Load(); b != nil {
		return b.o
	}
	return nil
}

// profileLabels toggles pprof label annotation of pool workers: when
// set, each worker goroutine runs under pprof labels
// {pool=par, worker=N}, so CPU profiles of a transplant run attribute
// samples to pool workers directly.
var profileLabels atomic.Bool

// SetProfileLabels enables or disables pprof label annotation.
func SetProfileLabels(on bool) { profileLabels.Store(on) }

// Map applies fn to every item of items on the worker pool and returns
// the results in item order. fn receives the item index and the item.
// All items are attempted even after a failure; the returned error is the
// one with the lowest index, so error behaviour is deterministic too.
func Map[T, R any](items []T, fn func(i int, item T) (R, error)) ([]R, error) {
	out := make([]R, len(items))
	err := ForEach(len(items), func(i int) error {
		r, err := fn(i, items[i])
		if err != nil {
			return err
		}
		out[i] = r
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// ForEach runs fn(i) for every i in [0, n) on the worker pool and returns
// the lowest-index error (nil if all succeed).
func ForEach(n int, fn func(i int) error) error {
	return ForEachSpan(n, func(lo, hi int) error {
		for i := lo; i < hi; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	})
}

// ForEachSpan partitions [0, n) into contiguous spans and runs fn(lo, hi)
// for each span on the worker pool. Spans let fine-grained loops (per-page
// writes, checksums) amortize dispatch overhead; fn must treat its span as
// an independent unit. The lowest-starting-index error wins.
func ForEachSpan(n int, fn func(lo, hi int) error) error {
	if n <= 0 {
		return nil
	}
	obs := currentObserver()
	w := Workers()
	if w > n {
		w = n
	}
	if w <= 1 {
		if obs == nil {
			return fn(0, n)
		}
		obs.Dispatch(n, 1, 1)
		t0 := time.Now()
		err := fn(0, n)
		obs.Task(n, 0, time.Since(t0))
		return err
	}
	// Span size balances dispatch cost against load balance: aim for a
	// few spans per worker so a slow span does not serialize the tail.
	span := n / (w * 4)
	if span < 1 {
		span = 1
	}
	nspans := (n + span - 1) / span
	if obs != nil {
		obs.Dispatch(n, nspans, w)
	}
	errs := make([]error, nspans)
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(w)
	for g := 0; g < w; g++ {
		go func(worker int) {
			defer wg.Done()
			loop := func() {
				for {
					s := int(next.Add(1)) - 1
					if s >= nspans {
						return
					}
					lo := s * span
					hi := lo + span
					if hi > n {
						hi = n
					}
					if obs == nil {
						errs[s] = fn(lo, hi)
						continue
					}
					t0 := time.Now()
					errs[s] = fn(lo, hi)
					queued := nspans - int(next.Load())
					if queued < 0 {
						queued = 0
					}
					obs.Task(hi-lo, queued, time.Since(t0))
				}
			}
			if profileLabels.Load() {
				pprof.Do(context.Background(),
					pprof.Labels("pool", "par", "worker", strconv.Itoa(worker)), func(context.Context) {
						loop()
					})
			} else {
				loop()
			}
		}(g)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// DeriveSeed returns a per-item RNG seed mixed from a base seed and an
// item index with SplitMix64 finalization. Work items that need modeled
// randomness derive their own generator from the item index instead of
// sharing a sequential stream, so draws stay identical for any worker
// count and execution order.
func DeriveSeed(base uint64, i int) uint64 {
	z := base + 0x9e3779b97f4a7c15*uint64(i+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
