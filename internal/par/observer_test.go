package par

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

type countingObserver struct {
	mu         sync.Mutex
	dispatches int
	dispItems  int
	spans      int
	taskItems  int
	tasks      int
	badQueue   atomic.Bool
}

func (o *countingObserver) Dispatch(items, spans, workers int) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.dispatches++
	o.dispItems += items
	o.spans = spans
	if workers < 1 {
		o.badQueue.Store(true)
	}
}

func (o *countingObserver) Task(items, queued int, wall time.Duration) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.tasks++
	o.taskItems += items
	if queued < 0 || wall < 0 {
		o.badQueue.Store(true)
	}
}

// TestObserverAccounting: every item dispatched must be accounted for by
// exactly one Task callback, for any worker width.
func TestObserverAccounting(t *testing.T) {
	defer SetWorkers(0)
	defer SetObserver(nil)
	for _, w := range []int{1, 2, 8} {
		SetWorkers(w)
		o := &countingObserver{}
		SetObserver(o)
		const n = 500
		if err := ForEach(n, func(int) error { return nil }); err != nil {
			t.Fatal(err)
		}
		if o.dispatches != 1 || o.dispItems != n {
			t.Fatalf("w=%d: dispatches=%d items=%d", w, o.dispatches, o.dispItems)
		}
		if o.taskItems != n {
			t.Fatalf("w=%d: task items %d != %d", w, o.taskItems, n)
		}
		if o.tasks < 1 || o.tasks > o.spans+1 {
			t.Fatalf("w=%d: %d tasks for %d spans", w, o.tasks, o.spans)
		}
		if o.badQueue.Load() {
			t.Fatalf("w=%d: negative queue depth, wall time, or bad worker count", w)
		}
	}
}

// TestObserverDoesNotChangeResults: installing an observer (and pprof
// labels) must not perturb the pool's deterministic output.
func TestObserverDoesNotChangeResults(t *testing.T) {
	defer SetWorkers(0)
	defer SetObserver(nil)
	defer SetProfileLabels(false)
	run := func() []int {
		out, err := Map(make([]int, 100), func(i int, _ int) (int, error) { return i * i, nil })
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	SetWorkers(4)
	base := run()
	SetObserver(&countingObserver{})
	SetProfileLabels(true)
	instrumented := run()
	for i := range base {
		if base[i] != instrumented[i] {
			t.Fatalf("output diverged at %d: %d != %d", i, base[i], instrumented[i])
		}
	}
}

func TestObserverRemoved(t *testing.T) {
	defer SetObserver(nil)
	o := &countingObserver{}
	SetObserver(o)
	SetObserver(nil)
	if err := ForEach(10, func(int) error { return nil }); err != nil {
		t.Fatal(err)
	}
	if o.dispatches != 0 {
		t.Fatal("removed observer still called")
	}
}
