// Package vulnfeed closes the loop the paper's Fig. 1(b) draws: a
// vulnerability-disclosure feed drives the transplant machinery. A
// Watcher subscribes the orchestrator to a simulated advisory stream
// (NVD/XSA-style); when a critical flaw affecting the fleet's hypervisor
// arrives, it invokes the automated response immediately — collapsing the
// multi-day "time to apply patch" segment of the vulnerability window to
// the seconds a fleet transplant takes.
package vulnfeed

import (
	"fmt"
	"time"

	"hypertp/internal/core"
	"hypertp/internal/orchestrator"
	"hypertp/internal/simtime"
	"hypertp/internal/vulndb"
)

// Disclosure is one advisory arriving on the feed.
type Disclosure struct {
	At    time.Duration
	CVEID string
}

// Response records what the watcher did about one disclosure.
type Response struct {
	Disclosure Disclosure
	// Action is "transplant", "ignored" (not critical or not
	// affecting the fleet), or "no-safe-target".
	Action string
	Fleet  *orchestrator.FleetResponse
	Err    error
}

// Watcher connects a feed to the orchestrator.
type Watcher struct {
	clock     *simtime.Clock
	db        *vulndb.Database
	nova      *orchestrator.Nova
	pool      []string
	opts      core.Options
	responses []Response
}

// NewWatcher builds a watcher for the given fleet manager and hypervisor
// pool.
func NewWatcher(clock *simtime.Clock, db *vulndb.Database, nova *orchestrator.Nova,
	pool []string, opts core.Options) *Watcher {
	return &Watcher{clock: clock, db: db, nova: nova, pool: pool, opts: opts}
}

// Subscribe schedules the watcher to process each disclosure at its
// arrival time. Run the clock to deliver them.
func (w *Watcher) Subscribe(feed []Disclosure) error {
	for _, d := range feed {
		if d.At < w.clock.Now() {
			return fmt.Errorf("vulnfeed: disclosure %s arrives in the past", d.CVEID)
		}
		d := d
		w.clock.Schedule(d.At, "disclosure:"+d.CVEID, func(*simtime.Clock) {
			w.handle(d)
		})
	}
	return nil
}

// handle applies the paper's policy to one disclosure.
func (w *Watcher) handle(d Disclosure) {
	rec, ok := w.db.Lookup(d.CVEID)
	if !ok {
		w.responses = append(w.responses, Response{Disclosure: d, Action: "ignored",
			Err: fmt.Errorf("vulnfeed: unknown CVE %q", d.CVEID)})
		return
	}
	if rec.Severity() != vulndb.SeverityCritical {
		// Medium flaws wait for the normal patch cycle (§1: HyperTP is
		// reserved for critical vulnerabilities).
		w.responses = append(w.responses, Response{Disclosure: d, Action: "ignored"})
		return
	}
	fleet, err := w.nova.RespondToCVE(w.db, d.CVEID, w.pool, w.opts)
	if err != nil {
		action := "no-safe-target"
		w.responses = append(w.responses, Response{Disclosure: d, Action: action, Err: err})
		return
	}
	w.responses = append(w.responses, Response{Disclosure: d, Action: "transplant", Fleet: fleet})
}

// Responses returns what happened to each disclosure, in processing
// order.
func (w *Watcher) Responses() []Response { return w.responses }

// WindowClosed reports, for a handled disclosure, the virtual time from
// arrival to fleet-secured — the reproduction's answer to the paper's
// 71-day average window.
func (w *Watcher) WindowClosed(cveID string) (time.Duration, bool) {
	for _, r := range w.responses {
		if r.Disclosure.CVEID == cveID && r.Action == "transplant" {
			return r.Fleet.Elapsed, true
		}
	}
	return 0, false
}
