package vulnfeed

import (
	"testing"
	"time"

	"hypertp/internal/core"
	"hypertp/internal/hv"
	"hypertp/internal/hw"
	"hypertp/internal/orchestrator"
	"hypertp/internal/simnet"
	"hypertp/internal/simtime"
	"hypertp/internal/vulndb"
)

func newFleet(t *testing.T) (*simtime.Clock, *orchestrator.Nova) {
	t.Helper()
	clock := simtime.NewClock()
	fabric := simnet.NewLink(clock, "fabric", simnet.Gbps10, 100*time.Microsecond)
	nova := orchestrator.NewNova(clock, fabric)
	for _, name := range []string{"a-node", "b-node"} {
		d, err := orchestrator.NewLibvirtDriver(clock, hw.NewMachine(clock, hw.M2()), hv.KindXen)
		if err != nil {
			t.Fatal(err)
		}
		if err := nova.AddNode(name, d); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 4; i++ {
		_, err := nova.BootVM(hv.Config{
			Name: "vm-" + string(rune('0'+i)), VCPUs: 1, MemBytes: 1 << 30,
			HugePages: true, Seed: uint64(i), InPlaceCompatible: true,
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	return clock, nova
}

func TestWatcherRespondsToCriticalDisclosure(t *testing.T) {
	clock, nova := newFleet(t)
	db := vulndb.Load()
	w := NewWatcher(clock, db, nova, []string{"xen", "kvm"}, core.DefaultOptions())
	err := w.Subscribe([]Disclosure{
		{At: 10 * time.Second, CVEID: "CVE-2015-8104"},  // medium: wait for patch
		{At: 20 * time.Second, CVEID: "CVE-2016-6258"},  // critical on Xen: transplant
		{At: 30 * time.Second, CVEID: "CVE-2017-12188"}, // KVM-only: fleet now on KVM!
	})
	if err != nil {
		t.Fatal(err)
	}
	clock.Run()
	rs := w.Responses()
	if len(rs) != 3 {
		t.Fatalf("responses = %d", len(rs))
	}
	if rs[0].Action != "ignored" {
		t.Fatalf("medium flaw action = %q", rs[0].Action)
	}
	if rs[1].Action != "transplant" || rs[1].Fleet.Target != hv.KindKVM {
		t.Fatalf("critical flaw action = %q", rs[1].Action)
	}
	// After the transplant the fleet runs KVM, so the later KVM flaw
	// now matters — but with only {xen, kvm} in the pool the policy can
	// still act (Xen is safe for it).
	if rs[2].Action != "transplant" || rs[2].Fleet.Target != hv.KindXen {
		t.Fatalf("follow-up flaw action = %q (target %v)", rs[2].Action, rs[2].Fleet)
	}
	// The window closed in virtual seconds, not the paper's 71 days.
	window, ok := w.WindowClosed("CVE-2016-6258")
	if !ok {
		t.Fatal("window not recorded")
	}
	if window <= 0 || window > time.Minute {
		t.Fatalf("window = %v, want seconds-scale", window)
	}
	if _, ok := w.WindowClosed("CVE-2015-8104"); ok {
		t.Fatal("ignored flaw reported a window")
	}
}

func TestWatcherVENOMWithoutEscape(t *testing.T) {
	clock, nova := newFleet(t)
	db := vulndb.Load()
	w := NewWatcher(clock, db, nova, []string{"xen", "kvm"}, core.DefaultOptions())
	if err := w.Subscribe([]Disclosure{{At: time.Second, CVEID: "CVE-2015-3456"}}); err != nil {
		t.Fatal(err)
	}
	clock.Run()
	rs := w.Responses()
	if len(rs) != 1 || rs[0].Action != "no-safe-target" {
		t.Fatalf("VENOM response = %+v", rs)
	}
}

func TestWatcherUnknownCVE(t *testing.T) {
	clock, nova := newFleet(t)
	w := NewWatcher(clock, vulndb.Load(), nova, []string{"xen", "kvm"}, core.DefaultOptions())
	if err := w.Subscribe([]Disclosure{{At: time.Second, CVEID: "CVE-0000-0000"}}); err != nil {
		t.Fatal(err)
	}
	clock.Run()
	rs := w.Responses()
	if len(rs) != 1 || rs[0].Action != "ignored" || rs[0].Err == nil {
		t.Fatalf("unknown CVE response = %+v", rs)
	}
}

func TestSubscribePastDisclosure(t *testing.T) {
	clock, nova := newFleet(t)
	clock.Advance(time.Minute)
	w := NewWatcher(clock, vulndb.Load(), nova, nil, core.DefaultOptions())
	if err := w.Subscribe([]Disclosure{{At: time.Second, CVEID: "CVE-2016-6258"}}); err == nil {
		t.Fatal("past disclosure accepted")
	}
}
