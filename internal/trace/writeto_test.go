package trace

import (
	"strings"
	"testing"
	"time"

	"hypertp/internal/simtime"
)

// TestEventStringAlignment: sub-millisecond timestamps must produce the
// same column layout as seconds-scale ones (the old %13v formatting
// printed "500µs" and "1.5s" at different widths).
func TestEventStringAlignment(t *testing.T) {
	short := Event{T: 500 * time.Microsecond, Step: StepPause, Detail: "x"}
	long := Event{T: 90 * time.Second, Step: StepTranslate, Detail: "y"}
	si := strings.Index(short.String(), short.Step)
	li := strings.Index(long.String(), long.Step)
	if si < 0 || si != li {
		t.Fatalf("step columns misaligned:\n%q\n%q", short.String(), long.String())
	}
	if !strings.HasPrefix(short.String(), "     0.000500s") {
		t.Fatalf("sub-ms timestamp rendered as %q", short.String())
	}
}

func TestWriteToMatchesRender(t *testing.T) {
	clock := simtime.NewClock()
	l := New(clock)
	l.Emit(StepPause, "vm %d", 1)
	clock.Advance(time.Second)
	l.Emit(StepResume, "vm %d", 1)
	var sb strings.Builder
	n, err := l.WriteTo(&sb)
	if err != nil {
		t.Fatal(err)
	}
	if sb.String() != l.Render() {
		t.Fatalf("WriteTo != Render:\n%q\n%q", sb.String(), l.Render())
	}
	if n != int64(len(sb.String())) {
		t.Fatalf("WriteTo returned %d for %d bytes", n, len(sb.String()))
	}
	if lines := strings.Count(sb.String(), "\n"); lines != 2 {
		t.Fatalf("want 2 lines, got %d", lines)
	}
}

func TestNilLogWriteTo(t *testing.T) {
	var l *Log
	var sb strings.Builder
	n, err := l.WriteTo(&sb)
	if err != nil || n != 0 || sb.Len() != 0 {
		t.Fatalf("nil WriteTo: n=%d err=%v out=%q", n, err, sb.String())
	}
}

type sinkRecorder struct{ steps []string }

func (s *sinkRecorder) Event(step, detail string) { s.steps = append(s.steps, step+":"+detail) }

func TestSinkMirroring(t *testing.T) {
	clock := simtime.NewClock()
	l := New(clock)
	sink := &sinkRecorder{}
	l.Attach(sink)
	l.Emit(StepKexec, "wiping %d frames", 3)
	if len(sink.steps) != 1 || sink.steps[0] != StepKexec+":wiping 3 frames" {
		t.Fatalf("sink saw %v", sink.steps)
	}
	l.Attach(nil)
	l.Emit(StepBoot, "up")
	if len(sink.steps) != 1 {
		t.Fatal("detached sink still fed")
	}
	// Attaching to a nil log must not panic (tpctl does this when -v is
	// off but tracing is on).
	var nilLog *Log
	nilLog.Attach(sink)
	nilLog.Emit(StepBoot, "ignored")
}
