// Package trace records structured event logs of transplant operations:
// each Fig. 3 workflow step is emitted with its virtual timestamp, so
// operators (tpctl -v) and tests can audit exactly what the engine did
// and in what order.
package trace

import (
	"fmt"
	"io"
	"strings"
	"time"

	"hypertp/internal/simtime"
)

// Step names emitted by the transplant engine, in Fig. 3 order.
const (
	StepLoadImage   = "load-image"   // ❶
	StepPRAMBuild   = "pram-build"   //    preparation (pre- or post-pause)
	StepPause       = "pause"        // ❷
	StepTranslate   = "translate"    // ❸
	StepKexec       = "kexec"        // ❹
	StepBoot        = "boot"         //    target hypervisor up
	StepPRAMParse   = "pram-parse"   // ❺
	StepRestore     = "restore"      // ❺/❻
	StepAttachGuest = "attach-guest" // ❻
	StepResume      = "resume"       // ❼
	StepCleanup     = "cleanup"      // ❼
)

// Event is one recorded step.
type Event struct {
	T      time.Duration
	Step   string
	Detail string
}

// String renders the event with a fixed-point seconds timestamp.
// Fixed-point keeps the columns aligned for sub-millisecond virtual
// timestamps, where time.Duration's unit-switching String ("500µs",
// "1.5ms", "2s") produced ragged widths.
func (e Event) String() string {
	return fmt.Sprintf("%13.6fs  %-12s %s", e.T.Seconds(), e.Step, e.Detail)
}

// Log is an append-only event log bound to a virtual clock. A nil *Log is
// valid and discards everything, so callers can pass one through without
// nil checks.
type Log struct {
	clock  *simtime.Clock
	events []Event
	sink   Sink
}

// Sink receives a copy of every emitted step. The observability
// recorder (internal/obs) implements it, which turns this package into a
// thin adapter over the span tree: existing step-order tests keep
// working against the Log while the same events land as annotations on
// the recorder's current span.
type Sink interface {
	Event(step, detail string)
}

// New creates a log reading timestamps from clock.
func New(clock *simtime.Clock) *Log { return &Log{clock: clock} }

// Attach mirrors every future Emit into s (nil detaches).
func (l *Log) Attach(s Sink) {
	if l == nil {
		return
	}
	l.sink = s
}

// Emit appends an event at the current virtual time.
func (l *Log) Emit(step, format string, args ...any) {
	if l == nil {
		return
	}
	detail := fmt.Sprintf(format, args...)
	l.events = append(l.events, Event{
		T:      l.clock.Now(),
		Step:   step,
		Detail: detail,
	})
	if l.sink != nil {
		l.sink.Event(step, detail)
	}
}

// Events returns the recorded events in order.
func (l *Log) Events() []Event {
	if l == nil {
		return nil
	}
	return l.events
}

// Steps returns just the step names, in order — convenient for
// workflow-order assertions.
func (l *Log) Steps() []string {
	if l == nil {
		return nil
	}
	out := make([]string, len(l.events))
	for i, e := range l.events {
		out[i] = e.Step
	}
	return out
}

// WriteTo streams the log as aligned text, one event per write — the
// allocation-friendly path for tpctl -v, which previously built the
// whole rendering in one string. It implements io.WriterTo.
func (l *Log) WriteTo(w io.Writer) (int64, error) {
	if l == nil {
		return 0, nil
	}
	var total int64
	for _, e := range l.events {
		n, err := fmt.Fprintf(w, "%13.6fs  %-12s %s\n", e.T.Seconds(), e.Step, e.Detail)
		total += int64(n)
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

// Render returns the log as aligned text.
func (l *Log) Render() string {
	if l == nil || len(l.events) == 0 {
		return ""
	}
	var b strings.Builder
	l.WriteTo(&b)
	return b.String()
}

// FirstIndex returns the index of the first event with the given step, or
// -1.
func (l *Log) FirstIndex(step string) int {
	if l == nil {
		return -1
	}
	for i, e := range l.events {
		if e.Step == step {
			return i
		}
	}
	return -1
}

// AssertOrder checks that the given steps appear in the log in the given
// relative order (not necessarily adjacent) and returns the first
// violation.
func (l *Log) AssertOrder(steps ...string) error {
	last := -1
	for _, s := range steps {
		idx := -1
		for i := last + 1; i < len(l.Events()); i++ {
			if l.events[i].Step == s {
				idx = i
				break
			}
		}
		if idx < 0 {
			return fmt.Errorf("trace: step %q missing after index %d", s, last)
		}
		last = idx
	}
	return nil
}
