// Package trace records structured event logs of transplant operations:
// each Fig. 3 workflow step is emitted with its virtual timestamp, so
// operators (tpctl -v) and tests can audit exactly what the engine did
// and in what order.
package trace

import (
	"fmt"
	"strings"
	"time"

	"hypertp/internal/simtime"
)

// Step names emitted by the transplant engine, in Fig. 3 order.
const (
	StepLoadImage   = "load-image"   // ❶
	StepPRAMBuild   = "pram-build"   //    preparation (pre- or post-pause)
	StepPause       = "pause"        // ❷
	StepTranslate   = "translate"    // ❸
	StepKexec       = "kexec"        // ❹
	StepBoot        = "boot"         //    target hypervisor up
	StepPRAMParse   = "pram-parse"   // ❺
	StepRestore     = "restore"      // ❺/❻
	StepAttachGuest = "attach-guest" // ❻
	StepResume      = "resume"       // ❼
	StepCleanup     = "cleanup"      // ❼
)

// Event is one recorded step.
type Event struct {
	T      time.Duration
	Step   string
	Detail string
}

func (e Event) String() string {
	return fmt.Sprintf("%12s  %-12s %s", e.T, e.Step, e.Detail)
}

// Log is an append-only event log bound to a virtual clock. A nil *Log is
// valid and discards everything, so callers can pass one through without
// nil checks.
type Log struct {
	clock  *simtime.Clock
	events []Event
}

// New creates a log reading timestamps from clock.
func New(clock *simtime.Clock) *Log { return &Log{clock: clock} }

// Emit appends an event at the current virtual time.
func (l *Log) Emit(step, format string, args ...any) {
	if l == nil {
		return
	}
	l.events = append(l.events, Event{
		T:      l.clock.Now(),
		Step:   step,
		Detail: fmt.Sprintf(format, args...),
	})
}

// Events returns the recorded events in order.
func (l *Log) Events() []Event {
	if l == nil {
		return nil
	}
	return l.events
}

// Steps returns just the step names, in order — convenient for
// workflow-order assertions.
func (l *Log) Steps() []string {
	if l == nil {
		return nil
	}
	out := make([]string, len(l.events))
	for i, e := range l.events {
		out[i] = e.Step
	}
	return out
}

// Render returns the log as aligned text.
func (l *Log) Render() string {
	if l == nil || len(l.events) == 0 {
		return ""
	}
	var b strings.Builder
	for _, e := range l.events {
		b.WriteString(e.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// FirstIndex returns the index of the first event with the given step, or
// -1.
func (l *Log) FirstIndex(step string) int {
	if l == nil {
		return -1
	}
	for i, e := range l.events {
		if e.Step == step {
			return i
		}
	}
	return -1
}

// AssertOrder checks that the given steps appear in the log in the given
// relative order (not necessarily adjacent) and returns the first
// violation.
func (l *Log) AssertOrder(steps ...string) error {
	last := -1
	for _, s := range steps {
		idx := -1
		for i := last + 1; i < len(l.Events()); i++ {
			if l.events[i].Step == s {
				idx = i
				break
			}
		}
		if idx < 0 {
			return fmt.Errorf("trace: step %q missing after index %d", s, last)
		}
		last = idx
	}
	return nil
}
