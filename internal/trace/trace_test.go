package trace

import (
	"strings"
	"testing"
	"time"

	"hypertp/internal/simtime"
)

func TestEmitAndEvents(t *testing.T) {
	clock := simtime.NewClock()
	l := New(clock)
	l.Emit(StepLoadImage, "kvm image staged")
	clock.Advance(time.Second)
	l.Emit(StepPause, "%d VMs", 3)
	events := l.Events()
	if len(events) != 2 {
		t.Fatalf("events = %d", len(events))
	}
	if events[0].T != 0 || events[1].T != time.Second {
		t.Fatal("timestamps wrong")
	}
	if events[1].Detail != "3 VMs" {
		t.Fatalf("detail = %q", events[1].Detail)
	}
	if got := l.Steps(); len(got) != 2 || got[0] != StepLoadImage || got[1] != StepPause {
		t.Fatalf("steps = %v", got)
	}
}

func TestNilLogIsValid(t *testing.T) {
	var l *Log
	l.Emit(StepPause, "ignored")
	if l.Events() != nil || l.Steps() != nil {
		t.Fatal("nil log returned data")
	}
	if l.Render() != "" {
		t.Fatal("nil log rendered")
	}
	if l.FirstIndex(StepPause) != -1 {
		t.Fatal("nil log found an index")
	}
}

func TestRenderAndFirstIndex(t *testing.T) {
	clock := simtime.NewClock()
	l := New(clock)
	l.Emit(StepPause, "x")
	l.Emit(StepKexec, "y")
	out := l.Render()
	if !strings.Contains(out, StepKexec) || !strings.Contains(out, "y") {
		t.Fatalf("render = %q", out)
	}
	if l.FirstIndex(StepKexec) != 1 {
		t.Fatal("FirstIndex wrong")
	}
	if l.FirstIndex("missing") != -1 {
		t.Fatal("phantom step found")
	}
	if (Event{T: time.Second, Step: "s", Detail: "d"}).String() == "" {
		t.Fatal("event string empty")
	}
}

func TestAssertOrder(t *testing.T) {
	clock := simtime.NewClock()
	l := New(clock)
	for _, s := range []string{StepLoadImage, StepPause, StepTranslate, StepKexec, StepResume} {
		l.Emit(s, "")
	}
	if err := l.AssertOrder(StepLoadImage, StepKexec, StepResume); err != nil {
		t.Fatal(err)
	}
	if err := l.AssertOrder(StepKexec, StepPause); err == nil {
		t.Fatal("reversed order accepted")
	}
	if err := l.AssertOrder(StepCleanup); err == nil {
		t.Fatal("missing step accepted")
	}
}
