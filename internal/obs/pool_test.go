package obs

import (
	"testing"

	"hypertp/internal/par"
	"hypertp/internal/simtime"
)

// TestPoolObserverCounts checks the deterministic instruments: however
// the pool schedules, the dispatch and item totals must match the work
// handed in.
func TestPoolObserverCounts(t *testing.T) {
	for _, workers := range []int{1, 4} {
		par.SetWorkers(workers)
		r := NewRecorder(simtime.NewClock())
		par.SetObserver(r.PoolObserver())
		const n = 1000
		if err := par.ForEach(n, func(int) error { return nil }); err != nil {
			t.Fatal(err)
		}
		par.SetObserver(nil)
		m := r.Metrics()
		if got := m.Counter("par.dispatches", "calls").Value(); got != 1 {
			t.Fatalf("workers=%d: dispatches = %d", workers, got)
		}
		if got := m.Counter("par.items", "items").Value(); got != n {
			t.Fatalf("workers=%d: items = %d", workers, got)
		}
		// Volatile task counts still have to account for every item.
		if got := m.Counter("par.tasks", "tasks").Value(); got < 1 {
			t.Fatalf("workers=%d: tasks = %d", workers, got)
		}
	}
	par.SetWorkers(0)
}
