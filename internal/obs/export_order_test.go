package obs

import (
	"bytes"
	"regexp"
	"sort"
	"strings"
	"testing"
)

// TestMetricsJSONSortedKeys pins the golden-stability contract of the
// JSON exporter: instruments appear in sorted name order per kind
// regardless of registration order, so map iteration can never reorder
// a golden file.
func TestMetricsJSONSortedKeys(t *testing.T) {
	reg := NewRegistry()
	// Register deliberately out of order.
	for _, n := range []string{"zeta", "mid", "alpha"} {
		reg.Counter(n, "ops").Add(1)
		reg.Gauge(n+".g", "x").Set(1)
		reg.Histogram(n+".h", "ns", []float64{1}).Observe(0.5)
	}
	var b bytes.Buffer
	if err := reg.WriteMetricsJSON(&b, false); err != nil {
		t.Fatalf("WriteMetricsJSON: %v", err)
	}
	names := regexp.MustCompile(`"name":"([^"]+)"`).FindAllStringSubmatch(b.String(), -1)
	var got []string
	for _, m := range names {
		got = append(got, m[1])
	}
	if len(got) != 9 {
		t.Fatalf("found %d instruments, want 9: %v", len(got), got)
	}
	for _, kind := range [][]string{got[0:3], got[3:6], got[6:9]} {
		if !sort.StringsAreSorted(kind) {
			t.Fatalf("instruments not sorted within kind: %v", kind)
		}
	}
}

// TestMetricsJSONEmptyHistogramNoNaN checks a registered-but-unobserved
// histogram exports zero quantiles, never NaN (the Summarize contract).
func TestMetricsJSONEmptyHistogramNoNaN(t *testing.T) {
	reg := NewRegistry()
	reg.Histogram("untouched", "ns", []float64{10, 100})
	var b bytes.Buffer
	if err := reg.WriteMetricsJSON(&b, false); err != nil {
		t.Fatalf("WriteMetricsJSON: %v", err)
	}
	out := b.String()
	if strings.Contains(out, "NaN") {
		t.Fatalf("NaN leaked into metrics JSON:\n%s", out)
	}
	for _, want := range []string{`"count":0`, `"p50":0`, `"p95":0`, `"p99":0`, `"max":0`} {
		if !strings.Contains(out, want) {
			t.Fatalf("empty histogram export missing %q:\n%s", want, out)
		}
	}

	var p bytes.Buffer
	if err := reg.WritePrometheus(&p, false); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	if strings.Contains(p.String(), "NaN") {
		t.Fatalf("NaN leaked into Prometheus dump:\n%s", p.String())
	}
	if !strings.Contains(p.String(), "hypertp_untouched_count 0") {
		t.Fatalf("empty histogram missing from Prometheus dump:\n%s", p.String())
	}
}
