package obs

import (
	"time"

	"hypertp/internal/par"
)

// poolObserver feeds the par worker pool's per-task hooks into the
// metrics registry. Item and dispatch counts are deterministic (the
// pool hands out the same total work for any worker width); task
// counts, queue depths and wall times depend on the width and on
// scheduling, so those instruments are volatile and excluded from
// deterministic exports.
type poolObserver struct {
	dispatches *Counter
	items      *Counter
	tasks      *Counter
	queueDepth *Gauge
	workers    *Gauge
	taskWall   *Histogram
}

// PoolObserver returns a par.Observer that records pool activity into
// the recorder's metrics registry. Install it with
// par.SetObserver(rec.PoolObserver()) — and remove it with
// par.SetObserver(nil) when the recorder's run ends.
func (r *Recorder) PoolObserver() par.Observer {
	m := r.Metrics()
	return &poolObserver{
		dispatches: m.Counter("par.dispatches", "calls"),
		items:      m.Counter("par.items", "items"),
		tasks:      m.Counter("par.tasks", "tasks").Volatile(),
		queueDepth: m.Gauge("par.queue_depth", "spans").Volatile(),
		workers:    m.Gauge("par.workers", "goroutines").Volatile(),
		taskWall:   m.Histogram("par.task_wall_ns", "ns", ExpBuckets(1e3, 4, 12)).Volatile(),
	}
}

func (o *poolObserver) Dispatch(items, spans, workers int) {
	o.dispatches.Add(1)
	o.items.Add(int64(items))
	o.queueDepth.Set(int64(spans))
	o.workers.Set(int64(workers))
}

func (o *poolObserver) Task(items, queued int, wall time.Duration) {
	o.tasks.Add(1)
	o.queueDepth.Set(int64(queued))
	o.taskWall.Observe(float64(wall.Nanoseconds()))
}
