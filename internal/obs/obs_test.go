package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"hypertp/internal/simtime"
)

func TestNilRecorderIsNoOp(t *testing.T) {
	var r *Recorder
	// Every call on a nil recorder (and the nil spans/instruments it
	// returns) must be a silent no-op — this is the off switch.
	s := r.Start("a", A("k", 1))
	s.SetAttr("x", 2)
	s.SetTrack("t")
	s.Annotate("e", "d")
	c := s.Child("b")
	c.End()
	s.End()
	r.StartDetached("c").End()
	r.StartAt(nil, "d", time.Second).EndAt(2 * time.Second)
	r.Event("e", "f")
	if r.Current() != nil || r.Roots() != nil {
		t.Fatal("nil recorder returned state")
	}
	m := r.Metrics()
	m.Counter("c", "u").Add(1)
	m.Gauge("g", "u").Set(1)
	m.Histogram("h", "u", ExpBuckets(1, 2, 4)).Observe(1)
	if got := s.Duration(); got != 0 {
		t.Fatalf("nil span duration = %v", got)
	}
}

func TestSpanStackNesting(t *testing.T) {
	clock := simtime.NewClock()
	r := NewRecorder(clock)
	root := r.Start("root")
	clock.Advance(time.Second)
	child := r.Start("child")
	if r.Current() != child {
		t.Fatal("child not current")
	}
	clock.Advance(time.Second)
	child.End()
	if r.Current() != root {
		t.Fatal("End did not pop to parent")
	}
	clock.Advance(time.Second)
	root.End()
	if r.Current() != nil {
		t.Fatal("stack not empty after root End")
	}
	if len(r.Roots()) != 1 || len(root.Children()) != 1 {
		t.Fatal("wrong tree shape")
	}
	if child.StartTime() != time.Second || child.Duration() != time.Second {
		t.Fatalf("child times: start=%v dur=%v", child.StartTime(), child.Duration())
	}
	if root.Duration() != 3*time.Second {
		t.Fatalf("root duration = %v", root.Duration())
	}
}

func TestEndForcesOpenDescendants(t *testing.T) {
	clock := simtime.NewClock()
	r := NewRecorder(clock)
	root := r.Start("root")
	r.Start("child")
	grand := r.Start("grand")
	clock.Advance(time.Second)
	root.End() // error-path cleanup: everything under root must close
	if !grand.Ended() {
		t.Fatal("grandchild left open")
	}
	if grand.EndTime() != time.Second {
		t.Fatalf("grandchild end = %v", grand.EndTime())
	}
	if r.Current() != nil {
		t.Fatal("stack not cleared")
	}
	root.End() // idempotent
}

func TestDetachedSpansAndEvents(t *testing.T) {
	clock := simtime.NewClock()
	r := NewRecorder(clock)
	root := r.Start("root")
	d := r.StartDetached("async")
	if r.Current() != root {
		t.Fatal("StartDetached touched the stack")
	}
	clock.Advance(time.Second)
	r.Event("step", "detail")
	d.End()
	root.End()
	evs := root.Events()
	if len(evs) != 1 || evs[0].Name != "step" || evs[0].T != time.Second {
		t.Fatalf("events = %+v", evs)
	}
	if root.Find("async") != d {
		t.Fatal("Find failed")
	}
}

func TestEventWithoutOpenSpan(t *testing.T) {
	r := NewRecorder(simtime.NewClock())
	r.Event("orphan", "d")
	roots := r.Roots()
	if len(roots) != 1 || roots[0].Name != "orphan" || !roots[0].Ended() {
		t.Fatal("orphan event not recorded as zero-length root")
	}
}

func TestRegistryInstruments(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("a.count", "items")
	c.Add(3)
	c.Add(4)
	if reg.Counter("a.count", "items") != c {
		t.Fatal("counter not deduped by name")
	}
	if c.Value() != 7 {
		t.Fatalf("counter = %d", c.Value())
	}
	g := reg.Gauge("a.gauge", "items")
	g.Set(5)
	g.Add(-2)
	if g.Value() != 3 || g.Max() != 5 {
		t.Fatalf("gauge value=%d max=%d", g.Value(), g.Max())
	}
	h := reg.Histogram("a.hist", "s", ExpBuckets(1, 2, 4))
	for _, v := range []float64{0.5, 1.5, 3, 100} {
		h.Observe(v)
	}
	if h.Count() != 4 || h.Sum() != 105 {
		t.Fatalf("hist count=%d sum=%g", h.Count(), h.Sum())
	}
	sum := h.Summary()
	if sum.Count != 4 || sum.Max != 100 {
		t.Fatalf("summary = %+v", sum)
	}
	text := reg.Render(false)
	for _, want := range []string{"a.count", "a.gauge", "a.hist"} {
		if !strings.Contains(text, want) {
			t.Fatalf("render missing %s:\n%s", want, text)
		}
	}
}

func TestCounterPanicsOnNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative Add did not panic")
		}
	}()
	NewRegistry().Counter("c", "u").Add(-1)
}

func TestVolatileExcludedFromDeterministicExport(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("det", "u").Add(1)
	reg.Counter("vol", "u").Volatile().Add(1)
	var det, all bytes.Buffer
	if err := reg.WriteMetricsJSON(&det, false); err != nil {
		t.Fatal(err)
	}
	if err := reg.WriteMetricsJSON(&all, true); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(det.String(), "vol") {
		t.Fatal("volatile instrument in deterministic export")
	}
	if !strings.Contains(all.String(), "vol") {
		t.Fatal("volatile instrument missing from full export")
	}
	if !json.Valid(det.Bytes()) || !json.Valid(all.Bytes()) {
		t.Fatal("export is not valid JSON")
	}
}

func TestChromeTraceShape(t *testing.T) {
	clock := simtime.NewClock()
	r := NewRecorder(clock)
	root := r.Start("root", A("k", "v"))
	clock.Advance(time.Second)
	net := r.StartDetached("xfer")
	net.SetTrack("simnet")
	r.Event("mark", "detail")
	clock.Advance(time.Second)
	net.End()
	root.End()

	var buf bytes.Buffer
	if err := r.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var tf struct {
		TraceEvents []struct {
			Name  string         `json:"name"`
			Phase string         `json:"ph"`
			TS    float64        `json:"ts"`
			Dur   float64        `json:"dur"`
			TID   int            `json:"tid"`
			Args  map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &tf); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	byName := map[string]int{}
	tids := map[string]int{}
	for i, ev := range tf.TraceEvents {
		byName[ev.Name] = i
		if ev.Phase == "X" {
			tids[ev.Name] = ev.TID
		}
	}
	rootEv := tf.TraceEvents[byName["root"]]
	if rootEv.Dur != 2e6 { // 2 virtual seconds in microseconds
		t.Fatalf("root dur = %v µs", rootEv.Dur)
	}
	if rootEv.Args["k"] != "v" {
		t.Fatalf("root args = %v", rootEv.Args)
	}
	if tids["root"] == tids["xfer"] {
		t.Fatal("simnet track not separated")
	}
	if _, ok := byName["mark"]; !ok {
		t.Fatal("instant event missing")
	}
}

func TestJSONLExport(t *testing.T) {
	clock := simtime.NewClock()
	r := NewRecorder(clock)
	root := r.Start("root")
	clock.Advance(time.Second)
	r.Start("child").End()
	root.End()
	var buf bytes.Buffer
	if err := r.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("want 2 lines, got %d:\n%s", len(lines), buf.String())
	}
	for _, ln := range lines {
		if !json.Valid([]byte(ln)) {
			t.Fatalf("invalid JSONL line: %s", ln)
		}
	}
	if !strings.Contains(lines[1], `"parent":0`) {
		t.Fatalf("child line missing parent: %s", lines[1])
	}
}

func TestClocklessRecorderExplicitTimes(t *testing.T) {
	r := NewRecorder(nil)
	root := r.StartAt(nil, "plan", 0)
	c := root.ChildAt("step", 2*time.Second)
	c.EndAt(5 * time.Second)
	root.EndAt(10 * time.Second)
	if c.StartTime() != 2*time.Second || c.Duration() != 3*time.Second {
		t.Fatalf("child times: %v + %v", c.StartTime(), c.Duration())
	}
	if root.Duration() != 10*time.Second {
		t.Fatalf("root duration = %v", root.Duration())
	}
}

func TestWalkDepths(t *testing.T) {
	r := NewRecorder(simtime.NewClock())
	root := r.Start("a")
	r.Start("b")
	r.Start("c").End()
	root.End()
	var got []string
	depths := map[string]int{}
	root.Walk(func(s *Span, depth int) {
		got = append(got, s.Name)
		depths[s.Name] = depth
	})
	if strings.Join(got, ",") != "a,b,c" {
		t.Fatalf("walk order = %v", got)
	}
	if depths["a"] != 0 || depths["b"] != 1 || depths["c"] != 2 {
		t.Fatalf("depths = %v", depths)
	}
}
