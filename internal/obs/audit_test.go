package obs

import (
	"strings"
	"testing"
	"time"

	"hypertp/internal/simtime"
)

func TestAuditSpansCleanTree(t *testing.T) {
	clock := simtime.NewClock()
	rec := NewRecorder(clock)
	root := rec.Start("root")
	clock.Advance(time.Millisecond)
	child := root.Child("child")
	clock.Advance(time.Millisecond)
	child.End()
	sib := root.Child("sibling")
	clock.Advance(time.Millisecond)
	sib.End()
	root.End()
	open := rec.Start("still-open") // open spans are fine
	_ = open
	if vs := rec.AuditSpans(); vs != nil {
		t.Fatalf("clean forest reported %v", vs)
	}
}

func TestAuditSpansNilRecorder(t *testing.T) {
	var rec *Recorder
	if vs := rec.AuditSpans(); vs != nil {
		t.Fatalf("nil recorder reported %v", vs)
	}
}

func TestAuditSpansNegativeDuration(t *testing.T) {
	clock := simtime.NewClock()
	rec := NewRecorder(clock)
	clock.Advance(time.Second)
	s := rec.Start("backwards")
	s.EndAt(time.Millisecond) // ends before it started
	vs := rec.AuditSpans()
	if len(vs) != 1 || vs[0].Kind != "negative-duration" {
		t.Fatalf("violations = %v", vs)
	}
	if !strings.Contains(vs[0].String(), "backwards") {
		t.Fatalf("String() = %q", vs[0].String())
	}
}

func TestAuditSpansChildOutsideParent(t *testing.T) {
	clock := simtime.NewClock()
	rec := NewRecorder(clock)
	clock.Advance(time.Second)
	parent := rec.Start("parent")
	early := parent.ChildAt("early", time.Millisecond) // before parent start
	early.EndAt(2 * time.Second)
	parent.EndAt(3 * time.Second)
	vs := rec.AuditSpans()
	if len(vs) != 1 || vs[0].Kind != "child-early" {
		t.Fatalf("violations = %v", vs)
	}

	rec2 := NewRecorder(clock)
	p2 := rec2.StartAt(nil, "parent", time.Second)
	late := p2.ChildAt("late", 2*time.Second)
	late.EndAt(5 * time.Second)
	p2.EndAt(3 * time.Second) // parent closes before its child
	vs = rec2.AuditSpans()
	if len(vs) != 1 || vs[0].Kind != "child-late" {
		t.Fatalf("violations = %v", vs)
	}
}

func TestAuditSpansSiblingRegression(t *testing.T) {
	clock := simtime.NewClock()
	rec := NewRecorder(clock)
	parent := rec.StartAt(nil, "parent", 0)
	a := parent.ChildAt("a", 2*time.Second)
	a.EndAt(3 * time.Second)
	b := parent.ChildAt("b", time.Second) // starts before its elder sibling
	b.EndAt(4 * time.Second)
	parent.EndAt(5 * time.Second)
	vs := rec.AuditSpans()
	if len(vs) != 1 || vs[0].Kind != "sibling-regress" {
		t.Fatalf("violations = %v", vs)
	}
}
