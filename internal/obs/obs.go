// Package obs is the observability layer of the reproduction: a
// hierarchical span recorder and a metrics registry that together turn a
// transplant run into the structured event record the paper's evaluation
// is built on (Fig. 3 workflow, Fig. 7/8 downtime breakdowns, Table 4
// per-phase costs).
//
// Spans carry *virtual* start/end times read from the simulation clock,
// so every exported timestamp is deterministic: the same run produces
// byte-identical trace files for any -workers count. Wall-clock time is
// captured alongside for profiling but is never written by the
// deterministic exporters (see export.go); wall-derived metrics are
// marked Volatile and excluded from deterministic output the same way.
//
// A nil *Recorder is valid everywhere and free: every method on a nil
// Recorder or nil Span is a no-op, so instrumented code needs no "is
// tracing on" branches — the nil check inside each method is the
// fast path.
package obs

import (
	"fmt"
	"sync"
	"time"

	"hypertp/internal/simtime"
)

// Attr is one key/value annotation on a span.
type Attr struct {
	Key, Value string
}

// A returns an Attr, formatting the value with fmt.Sprint. It keeps call
// sites short: rec.Start("translate", obs.A("vms", n)).
func A(key string, value any) Attr {
	return Attr{Key: key, Value: fmt.Sprint(value)}
}

// Point is an instant event attached to a span — the span-tree home of
// the trace.Log step records.
type Point struct {
	T      time.Duration // virtual timestamp
	Name   string
	Detail string
}

// Span is one timed node of the span tree. Virtual times come from the
// recorder's clock (or were supplied explicitly via StartAt); wall times
// are profiling-only.
type Span struct {
	rec    *Recorder
	id     int
	parent *Span

	Name  string
	Track string // exporter track/tid grouping; "" = parent's track

	start, end time.Duration
	wallStart  time.Time
	wall       time.Duration

	attrs    []Attr
	children []*Span
	events   []Point
	ended    bool
}

// Recorder records a forest of spans against a virtual clock. It is safe
// for concurrent use; all tree mutation happens under one mutex. The
// zero value is not usable — call NewRecorder. A nil *Recorder discards
// everything.
type Recorder struct {
	clock *simtime.Clock

	mu      sync.Mutex
	roots   []*Span
	current *Span
	nextID  int

	// Streaming pipeline (see stream.go): ended roots are flattened to
	// the sinks, and dropped from the forest when noRetain is set.
	sinks    []StreamSink
	noRetain bool

	metrics *Registry
}

// NewRecorder creates a recorder reading virtual timestamps from clock.
// clock may be nil for clock-less callers (e.g. the cluster planner)
// that record spans with explicit times via StartAt/EndAt.
func NewRecorder(clock *simtime.Clock) *Recorder {
	return &Recorder{clock: clock, metrics: NewRegistry()}
}

// Metrics returns the recorder's metrics registry (nil for a nil
// recorder; the registry's methods are nil-safe too).
func (r *Recorder) Metrics() *Registry {
	if r == nil {
		return nil
	}
	return r.metrics
}

// now returns the current virtual time (0 without a clock).
func (r *Recorder) now() time.Duration {
	if r.clock == nil {
		return 0
	}
	return r.clock.Now()
}

// newSpanLocked allocates and links a span. Caller holds r.mu.
func (r *Recorder) newSpanLocked(parent *Span, name string, start time.Duration, attrs []Attr) *Span {
	s := &Span{
		rec:       r,
		id:        r.nextID,
		parent:    parent,
		Name:      name,
		start:     start,
		end:       start,
		wallStart: time.Now(),
		attrs:     attrs,
	}
	r.nextID++
	if parent != nil {
		parent.children = append(parent.children, s)
	} else {
		r.roots = append(r.roots, s)
	}
	return s
}

// Start opens a span as a child of the current span (or as a new root)
// and makes it current. Pair with End. Use Start for the synchronous,
// stack-shaped phases of the engine; use StartDetached/Child for
// callback-driven work that outlives the opening context.
func (r *Recorder) Start(name string, attrs ...Attr) *Span {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.newSpanLocked(r.current, name, r.now(), attrs)
	r.current = s
	return s
}

// StartDetached opens a span as a child of the current span without
// making it current — for asynchronous work (migration rounds, network
// transfers) that ends from an event callback.
func (r *Recorder) StartDetached(name string, attrs ...Attr) *Span {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.newSpanLocked(r.current, name, r.now(), attrs)
}

// StartAt opens a span with an explicit virtual start time under parent
// (nil parent = new root), without touching the current-span stack.
// Clock-less recorders use this exclusively.
func (r *Recorder) StartAt(parent *Span, name string, start time.Duration, attrs ...Attr) *Span {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.newSpanLocked(parent, name, start, attrs)
}

// Current returns the innermost open stack span, or nil.
func (r *Recorder) Current() *Span {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.current
}

// Event attaches an instant event to the current span (or to the root
// list as a zero-length span if no span is open). This is the sink the
// trace.Log adapter feeds.
func (r *Recorder) Event(name, detail string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	t := r.now()
	if r.current == nil {
		s := r.newSpanLocked(nil, name, t, nil)
		s.ended = true
		if detail != "" {
			s.attrs = append(s.attrs, Attr{Key: "detail", Value: detail})
		}
		recs := r.flushRootLocked(s)
		r.mu.Unlock()
		r.dispatch(recs)
		return
	}
	r.current.events = append(r.current.events, Point{T: t, Name: name, Detail: detail})
	r.mu.Unlock()
}

// Roots returns the top-level spans in creation order. The returned
// slice is shared; callers must not mutate it while spans are open.
func (r *Recorder) Roots() []*Span {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.roots
}

// Child opens a child span of s starting now, without touching the
// current-span stack.
func (s *Span) Child(name string, attrs ...Attr) *Span {
	if s == nil || s.rec == nil {
		return nil
	}
	r := s.rec
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.newSpanLocked(s, name, r.now(), attrs)
}

// ChildAt opens a child span of s with an explicit virtual start time.
func (s *Span) ChildAt(name string, start time.Duration, attrs ...Attr) *Span {
	if s == nil || s.rec == nil {
		return nil
	}
	r := s.rec
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.newSpanLocked(s, name, start, attrs)
}

// SetAttr adds (or overrides) an attribute on the span.
func (s *Span) SetAttr(key string, value any) {
	if s == nil || s.rec == nil {
		return
	}
	s.rec.mu.Lock()
	defer s.rec.mu.Unlock()
	v := fmt.Sprint(value)
	for i := range s.attrs {
		if s.attrs[i].Key == key {
			s.attrs[i].Value = v
			return
		}
	}
	s.attrs = append(s.attrs, Attr{Key: key, Value: v})
}

// SetTrack assigns the span to a named exporter track (a tid in the
// Chrome trace). Children inherit the track unless they set their own.
func (s *Span) SetTrack(track string) {
	if s == nil || s.rec == nil {
		return
	}
	s.rec.mu.Lock()
	defer s.rec.mu.Unlock()
	s.Track = track
}

// Annotate attaches an instant event to this specific span at the
// current virtual time.
func (s *Span) Annotate(name, detail string) {
	if s == nil || s.rec == nil {
		return
	}
	r := s.rec
	r.mu.Lock()
	defer r.mu.Unlock()
	s.events = append(s.events, Point{T: r.now(), Name: name, Detail: detail})
}

// End closes the span at the current virtual time. Ending a span also
// ends any still-open descendants (the error-path cleanup: a deferred
// root.End() leaves no dangling spans) and pops the current-span stack
// if it pointed into the span's subtree. End is idempotent.
func (s *Span) End() {
	if s == nil || s.rec == nil {
		return
	}
	s.endAt(s.rec.now())
}

// EndAt closes the span at an explicit virtual time (clock-less use).
func (s *Span) EndAt(t time.Duration) {
	if s == nil || s.rec == nil {
		return
	}
	s.endAt(t)
}

func (s *Span) endAt(t time.Duration) {
	r := s.rec
	r.mu.Lock()
	if s.ended {
		r.mu.Unlock()
		return
	}
	// Pop the stack if current sits inside this subtree.
	for c := r.current; c != nil; c = c.parent {
		if c == s {
			r.current = s.parent
			break
		}
	}
	s.endLocked(t)
	recs := r.flushRootLocked(s)
	r.mu.Unlock()
	// Sinks run outside the lock so they may read the recorder (e.g.
	// resolve metrics) without deadlocking.
	r.dispatch(recs)
}

func (s *Span) endLocked(t time.Duration) {
	if s.ended {
		return
	}
	for _, c := range s.children {
		c.endLocked(t)
	}
	s.end = t
	s.wall = time.Since(s.wallStart)
	s.ended = true
}

// Start returns the span's virtual start time.
func (s *Span) StartTime() time.Duration {
	if s == nil {
		return 0
	}
	return s.start
}

// EndTime returns the span's virtual end time (== start while open).
func (s *Span) EndTime() time.Duration {
	if s == nil {
		return 0
	}
	return s.end
}

// Duration returns the span's virtual duration.
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	return s.end - s.start
}

// WallDuration returns the measured wall-clock duration (0 while open).
// Profiling only — never exported deterministically.
func (s *Span) WallDuration() time.Duration {
	if s == nil {
		return 0
	}
	return s.wall
}

// Ended reports whether the span is closed.
func (s *Span) Ended() bool { return s != nil && s.ended }

// Children returns the span's children in creation order.
func (s *Span) Children() []*Span {
	if s == nil {
		return nil
	}
	return s.children
}

// Events returns the span's instant events in recorded order.
func (s *Span) Events() []Point {
	if s == nil {
		return nil
	}
	return s.events
}

// Attrs returns the span's attributes in insertion order.
func (s *Span) Attrs() []Attr {
	if s == nil {
		return nil
	}
	return s.attrs
}

// Find returns the first span named name in a depth-first walk of the
// subtree rooted at s, or nil.
func (s *Span) Find(name string) *Span {
	if s == nil {
		return nil
	}
	if s.Name == name {
		return s
	}
	for _, c := range s.children {
		if hit := c.Find(name); hit != nil {
			return hit
		}
	}
	return nil
}

// Walk visits the subtree rooted at s depth-first in creation order.
func (s *Span) Walk(fn func(s *Span, depth int)) {
	if s == nil {
		return
	}
	s.walk(fn, 0)
}

func (s *Span) walk(fn func(*Span, int), depth int) {
	fn(s, depth)
	for _, c := range s.children {
		c.walk(fn, depth+1)
	}
}
