package obs

import (
	"fmt"
	"io"
)

// Prometheus text-format exporter. Like every other deterministic
// renderer in this package: instruments are emitted in sorted name
// order per kind, values are virtual-time-derived, and Volatile
// instruments are skipped unless explicitly requested — the dump is
// byte-identical across runs and -workers counts.

// promName sanitizes an instrument name into a Prometheus metric name:
// the hypertp_ namespace prefix plus the name with every character
// outside [a-zA-Z0-9_:] replaced by '_'.
func promName(name string) string {
	b := []byte("hypertp_" + name)
	for i := len("hypertp_"); i < len(b); i++ {
		c := b[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z',
			c >= '0' && c <= '9', c == '_', c == ':':
		default:
			b[i] = '_'
		}
	}
	return string(b)
}

func promHeader(b []byte, name, unit, typ string) []byte {
	b = append(b, "# HELP "...)
	b = append(b, name...)
	if unit != "" {
		b = append(b, ' ')
		b = append(b, unit...)
	} else {
		b = append(b, " (no unit)"...)
	}
	b = append(b, '\n')
	b = append(b, "# TYPE "...)
	b = append(b, name...)
	b = append(b, ' ')
	b = append(b, typ...)
	b = append(b, '\n')
	return b
}

// WritePrometheus writes the registry in the Prometheus text exposition
// format: counters as <name>_total, gauges as <name> plus a companion
// <name>_max high-water gauge, histograms with cumulative le-buckets,
// _sum and _count. Volatile instruments are excluded unless
// includeVolatile is set.
func (r *Registry) WritePrometheus(w io.Writer, includeVolatile bool) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	counts, gauges, hists := r.counts, r.gauges, r.hists
	r.mu.Unlock()

	var b []byte
	for _, name := range sortedKeys(counts) {
		c := counts[name]
		if c.volatile && !includeVolatile {
			continue
		}
		pn := promName(c.name) + "_total"
		b = promHeader(b, pn, c.unit, "counter")
		b = append(b, fmt.Sprintf("%s %d\n", pn, c.Value())...)
	}
	for _, name := range sortedKeys(gauges) {
		g := gauges[name]
		if g.volatile && !includeVolatile {
			continue
		}
		pn := promName(g.name)
		b = promHeader(b, pn, g.unit, "gauge")
		b = append(b, fmt.Sprintf("%s %d\n", pn, g.Value())...)
		b = promHeader(b, pn+"_max", g.unit, "gauge")
		b = append(b, fmt.Sprintf("%s_max %d\n", pn, g.Max())...)
	}
	for _, name := range sortedKeys(hists) {
		h := hists[name]
		if h.volatile && !includeVolatile {
			continue
		}
		pn := promName(h.name)
		b = promHeader(b, pn, h.unit, "histogram")
		h.mu.Lock()
		cum := int64(0)
		for i, bound := range h.bounds {
			cum += h.counts[i]
			b = append(b, fmt.Sprintf("%s_bucket{le=\"%g\"} %d\n", pn, bound, cum)...)
		}
		cum += h.counts[len(h.bounds)]
		b = append(b, fmt.Sprintf("%s_bucket{le=\"+Inf\"} %d\n", pn, cum)...)
		b = append(b, fmt.Sprintf("%s_sum %g\n", pn, h.sum)...)
		b = append(b, fmt.Sprintf("%s_count %d\n", pn, h.count)...)
		h.mu.Unlock()
	}
	_, err := w.Write(b)
	return err
}
