package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"hypertp/internal/metrics"
)

// Registry is a named collection of counters, gauges and fixed-bucket
// histograms. Instruments register on first use and are returned on
// every later lookup of the same name; all methods are safe for
// concurrent use (par pool workers update instruments directly).
//
// Instruments marked Volatile carry wall-clock-derived values that
// legitimately differ between runs and worker counts; the deterministic
// renderers skip them unless explicitly asked, keeping the exported
// metrics byte-identical across -workers settings.
type Registry struct {
	mu     sync.Mutex
	counts map[string]*Counter
	gauges map[string]*Gauge
	hists  map[string]*Histogram
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counts: make(map[string]*Counter),
		gauges: make(map[string]*Gauge),
		hists:  make(map[string]*Histogram),
	}
}

// Counter is a monotonically increasing sum.
type Counter struct {
	name, unit string
	volatile   bool
	v          atomic.Int64
}

// Gauge is a point-in-time value that also tracks its high-water mark.
type Gauge struct {
	name, unit string
	volatile   bool
	mu         sync.Mutex
	v, max     int64
}

// Histogram is a fixed-bucket distribution. Bounds are upper bucket
// edges in ascending order; one implicit overflow bucket catches the
// rest. A bounded sample reservoir (the first sampleCap observations)
// backs the percentile summary, reusing metrics.Summarize.
type Histogram struct {
	name, unit string
	volatile   bool
	bounds     []float64
	mu         sync.Mutex
	counts     []int64
	count      int64
	sum        float64
	samples    []float64
}

// sampleCap bounds the per-histogram raw-sample reservoir.
const sampleCap = 8192

// Counter returns (registering on first use) the named counter. A nil
// registry returns nil; a nil *Counter is a valid no-op instrument.
func (r *Registry) Counter(name, unit string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counts[name]
	if !ok {
		c = &Counter{name: name, unit: unit}
		r.counts[name] = c
	}
	return c
}

// Gauge returns (registering on first use) the named gauge.
func (r *Registry) Gauge(name, unit string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{name: name, unit: unit}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns (registering on first use) the named histogram with
// the given bucket bounds. Bounds are only applied on first
// registration.
func (r *Registry) Histogram(name, unit string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{
			name: name, unit: unit,
			bounds: append([]float64(nil), bounds...),
			counts: make([]int64, len(bounds)+1),
		}
		r.hists[name] = h
	}
	return h
}

// ExpBuckets returns n exponentially growing bucket bounds starting at
// start with the given growth factor — the standard latency layout.
func ExpBuckets(start, factor float64, n int) []float64 {
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// Volatile marks the counter wall-clock-derived and returns it.
func (c *Counter) Volatile() *Counter {
	if c != nil {
		c.volatile = true
	}
	return c
}

// Add increments the counter. Negative deltas panic: counters are sums.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	if n < 0 {
		panic(fmt.Sprintf("obs: counter %s: negative delta %d", c.name, n))
	}
	c.v.Add(n)
}

// Value returns the current sum.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Volatile marks the gauge wall-clock-derived and returns it.
func (g *Gauge) Volatile() *Gauge {
	if g != nil {
		g.volatile = true
	}
	return g
}

// Set records a new value.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.mu.Lock()
	g.v = v
	if v > g.max {
		g.max = v
	}
	g.mu.Unlock()
}

// Add shifts the value by delta.
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.mu.Lock()
	g.v += delta
	if g.v > g.max {
		g.max = g.v
	}
	g.mu.Unlock()
}

// Value returns the current value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.v
}

// Max returns the high-water mark.
func (g *Gauge) Max() int64 {
	if g == nil {
		return 0
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.max
}

// Volatile marks the histogram wall-clock-derived and returns it.
func (h *Histogram) Volatile() *Histogram {
	if h != nil {
		h.volatile = true
	}
	return h
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.mu.Lock()
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i]++
	h.count++
	h.sum += v
	if len(h.samples) < sampleCap {
		h.samples = append(h.samples, v)
	}
	h.mu.Unlock()
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Sum returns the sum of all observations.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// Summary returns the percentile summary of the sample reservoir,
// reusing the metrics package's Summarize.
func (h *Histogram) Summary() metrics.Summary {
	if h == nil {
		return metrics.Summary{}
	}
	h.mu.Lock()
	vs := append([]float64(nil), h.samples...)
	h.mu.Unlock()
	return metrics.Summarize(vs)
}

// snapshot helpers -----------------------------------------------------------

func sortedKeys[M ~map[string]V, V any](m M) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Render returns the registry as aligned plain text, instruments sorted
// by kind then name. Volatile instruments are skipped unless
// includeVolatile is set, so the default rendering is deterministic.
func (r *Registry) Render(includeVolatile bool) string {
	if r == nil {
		return ""
	}
	r.mu.Lock()
	counts, gauges, hists := r.counts, r.gauges, r.hists
	r.mu.Unlock()

	var b strings.Builder
	tab := &metrics.Table{
		Title:   "metrics",
		Headers: []string{"kind", "name", "unit", "value"},
	}
	for _, name := range sortedKeys(counts) {
		c := counts[name]
		if c.volatile && !includeVolatile {
			continue
		}
		tab.AddRow("counter", c.name, c.unit, fmt.Sprint(c.Value()))
	}
	for _, name := range sortedKeys(gauges) {
		g := gauges[name]
		if g.volatile && !includeVolatile {
			continue
		}
		tab.AddRow("gauge", g.name, g.unit, fmt.Sprintf("%d (max %d)", g.Value(), g.Max()))
	}
	for _, name := range sortedKeys(hists) {
		h := hists[name]
		if h.volatile && !includeVolatile {
			continue
		}
		s := h.Summary()
		tab.AddRow("hist", h.name, h.unit,
			fmt.Sprintf("count=%d mean=%.4g p50=%.4g p95=%.4g p99=%.4g max=%.4g",
				s.Count, s.Mean, s.P50, s.P95, s.P99, s.Max))
	}
	b.WriteString(tab.Render())
	return b.String()
}
