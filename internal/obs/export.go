package obs

import (
	"encoding/json"
	"fmt"
	"io"
)

// Exporters. All output is deterministic: spans are walked depth-first
// in creation order, timestamps are virtual, JSON fields are emitted in
// a fixed order, and wall-clock data is never written. This is what lets
// the determinism tests assert byte-identical files across -workers
// counts.

// usec renders a virtual duration as microseconds with fixed 3-decimal
// precision (Chrome's trace_event unit).
func usec(d int64) string {
	return fmt.Sprintf("%d.%03d", d/1000, d%1000)
}

func jstr(s string) string {
	b, _ := json.Marshal(s)
	return string(b)
}

// argsJSON renders attrs (plus extras) as a JSON object with keys in
// insertion order.
func argsJSON(attrs []Attr) string {
	if len(attrs) == 0 {
		return "{}"
	}
	out := "{"
	for i, a := range attrs {
		if i > 0 {
			out += ","
		}
		out += jstr(a.Key) + ":" + jstr(a.Value)
	}
	return out + "}"
}

// trackID maps a span to its Chrome tid: spans inherit the enclosing
// track unless they set their own. Track ids are assigned in first-seen
// DFS order, so the mapping is deterministic.
type trackMap struct {
	ids  map[string]int
	next int
}

func newTrackMap() *trackMap { return &trackMap{ids: map[string]int{"": 1}, next: 2} }

func (tm *trackMap) id(track string) int {
	if id, ok := tm.ids[track]; ok {
		return id
	}
	tm.ids[track] = tm.next
	tm.next++
	return tm.ids[track]
}

// WriteChromeTrace writes the span forest in Chrome trace_event JSON
// (the format chrome://tracing and Perfetto open directly): one
// complete ("ph":"X") event per span and one instant ("ph":"i") event
// per span annotation, timestamps in virtual microseconds.
func (r *Recorder) WriteChromeTrace(w io.Writer) error {
	if _, err := io.WriteString(w, "{\"traceEvents\":[\n"); err != nil {
		return err
	}
	tm := newTrackMap()
	first := true
	emit := func(line string) error {
		if !first {
			if _, err := io.WriteString(w, ",\n"); err != nil {
				return err
			}
		}
		first = false
		_, err := io.WriteString(w, line)
		return err
	}
	var werr error
	for _, root := range r.Roots() {
		root.Walk(func(s *Span, _ int) {
			if werr != nil {
				return
			}
			tid := tm.id(s.trackName())
			attrs := s.Attrs()
			werr = emit(fmt.Sprintf(
				"{\"name\":%s,\"ph\":\"X\",\"pid\":1,\"tid\":%d,\"ts\":%s,\"dur\":%s,\"args\":%s}",
				jstr(s.Name), tid, usec(s.StartTime().Nanoseconds()),
				usec(s.Duration().Nanoseconds()), argsJSON(attrs)))
			for _, ev := range s.Events() {
				if werr != nil {
					return
				}
				werr = emit(fmt.Sprintf(
					"{\"name\":%s,\"ph\":\"i\",\"pid\":1,\"tid\":%d,\"ts\":%s,\"s\":\"t\",\"args\":{\"detail\":%s}}",
					jstr(ev.Name), tid, usec(ev.T.Nanoseconds()), jstr(ev.Detail)))
			}
		})
		if werr != nil {
			return werr
		}
	}
	_, err := io.WriteString(w, "\n],\"displayTimeUnit\":\"ms\",\"otherData\":{\"generator\":\"hypertp-obs\",\"timeDomain\":\"virtual\"}}\n")
	return err
}

// trackName resolves the span's effective track by walking to the
// nearest ancestor with an explicit track.
func (s *Span) trackName() string {
	for p := s; p != nil; p = p.parent {
		if p.Track != "" {
			return p.Track
		}
	}
	return ""
}

// appendJSONL renders the record as one JSON line — the format shared
// by Recorder.WriteJSONL, JSONLSink and FlightRecorder.WriteJSONL: id,
// parent id (-1 for roots), depth, name, track, virtual start/end in
// nanoseconds, attrs and instant events.
func (rec SpanRecord) appendJSONL(b []byte) []byte {
	b = append(b, fmt.Sprintf(
		"{\"id\":%d,\"parent\":%d,\"depth\":%d,\"name\":%s,\"track\":%s,\"start_ns\":%d,\"end_ns\":%d",
		rec.ID, rec.Parent, rec.Depth, jstr(rec.Name), jstr(rec.Track),
		rec.Start.Nanoseconds(), rec.End.Nanoseconds())...)
	if len(rec.Attrs) > 0 {
		b = append(b, ",\"attrs\":"...)
		b = append(b, argsJSON(rec.Attrs)...)
	}
	if len(rec.Events) > 0 {
		b = append(b, ",\"events\":["...)
		for i, ev := range rec.Events {
			if i > 0 {
				b = append(b, ',')
			}
			b = append(b, fmt.Sprintf("{\"t_ns\":%d,\"name\":%s,\"detail\":%s}",
				ev.T.Nanoseconds(), jstr(ev.Name), jstr(ev.Detail))...)
		}
		b = append(b, ']')
	}
	return append(b, "}\n"...)
}

// WriteJSONL writes one JSON object per span (depth-first, creation
// order) in the SpanRecord line format. A streamed JSONLSink fed by the
// same run produces byte-identical output.
func (r *Recorder) WriteJSONL(w io.Writer) error {
	for _, root := range r.Roots() {
		var b []byte
		for _, rec := range flattenSpan(root, -1, 0, "", nil) {
			b = rec.appendJSONL(b)
		}
		if _, err := w.Write(b); err != nil {
			return err
		}
	}
	return nil
}

// WriteMetricsJSON writes the registry as a JSON document with
// instruments sorted by name. Volatile instruments are excluded unless
// includeVolatile is set, keeping the default output deterministic.
func (r *Registry) WriteMetricsJSON(w io.Writer, includeVolatile bool) error {
	if r == nil {
		_, err := io.WriteString(w, "{\"counters\":[],\"gauges\":[],\"histograms\":[]}\n")
		return err
	}
	r.mu.Lock()
	counts, gauges, hists := r.counts, r.gauges, r.hists
	r.mu.Unlock()

	var b []byte
	b = append(b, "{\"counters\":["...)
	firstItem := true
	sep := func() {
		if !firstItem {
			b = append(b, ',')
		}
		firstItem = false
	}
	for _, name := range sortedKeys(counts) {
		c := counts[name]
		if c.volatile && !includeVolatile {
			continue
		}
		sep()
		b = append(b, fmt.Sprintf("{\"name\":%s,\"unit\":%s,\"value\":%d}",
			jstr(c.name), jstr(c.unit), c.Value())...)
	}
	b = append(b, "],\"gauges\":["...)
	firstItem = true
	for _, name := range sortedKeys(gauges) {
		g := gauges[name]
		if g.volatile && !includeVolatile {
			continue
		}
		sep()
		b = append(b, fmt.Sprintf("{\"name\":%s,\"unit\":%s,\"value\":%d,\"max\":%d}",
			jstr(g.name), jstr(g.unit), g.Value(), g.Max())...)
	}
	b = append(b, "],\"histograms\":["...)
	firstItem = true
	for _, name := range sortedKeys(hists) {
		h := hists[name]
		if h.volatile && !includeVolatile {
			continue
		}
		sep()
		sum := h.Summary()
		h.mu.Lock()
		b = append(b, fmt.Sprintf(
			"{\"name\":%s,\"unit\":%s,\"count\":%d,\"sum\":%g,\"p50\":%g,\"p95\":%g,\"p99\":%g,\"max\":%g,\"buckets\":[",
			jstr(h.name), jstr(h.unit), h.count, h.sum, sum.P50, sum.P95, sum.P99, sum.Max)...)
		for i, bound := range h.bounds {
			if i > 0 {
				b = append(b, ',')
			}
			b = append(b, fmt.Sprintf("{\"le\":%g,\"count\":%d}", bound, h.counts[i])...)
		}
		if len(h.bounds) > 0 {
			b = append(b, ',')
		}
		b = append(b, fmt.Sprintf("{\"le\":\"+inf\",\"count\":%d}]}", h.counts[len(h.bounds)])...)
		h.mu.Unlock()
	}
	b = append(b, "]}\n"...)
	_, err := w.Write(b)
	return err
}
