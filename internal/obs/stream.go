package obs

import (
	"io"
	"sync"
	"time"
)

// Streaming span pipeline. The tree recorder of obs.go is the right
// shape for a single transplant, but a 100k-host fleet run cannot hold
// (or export) every span of every host: the full forest is O(fleet).
// This file adds the incremental alternative — when a *root* span ends,
// its whole subtree is flattened into SpanRecords and handed to the
// recorder's StreamSinks, and (with retention off) released from the
// recorder, so resident memory is O(open spans + sink capacity), not
// O(everything ever recorded).
//
// Determinism carries over from the tree exporters: records are
// flattened depth-first in creation order with virtual timestamps, and
// root spans end in deterministic order (span mutation happens on the
// sequential side of the stack — engine phases on the discrete-event
// clock, scheduler Commit hooks), so a streamed JSONL file is
// byte-identical across -workers counts just like WriteJSONL's output.

// SpanRecord is one span flattened out of the tree: the immutable,
// export-ready form a StreamSink consumes. IDs and parent IDs are the
// recorder's span ids; Track is the resolved (inherited) track.
type SpanRecord struct {
	ID     int
	Parent int // -1 for roots
	Depth  int
	Name   string
	Track  string
	Start  time.Duration
	End    time.Duration
	Attrs  []Attr
	Events []Point
}

// StreamSink consumes completed root subtrees. Consume is called with
// the records of one root span (depth-first, creation order; index 0 is
// the root itself) after the root has ended. Sinks are invoked
// sequentially in registration order, outside the recorder's lock; a
// sink must not call back into the recorder's span-mutation API.
type StreamSink interface {
	Consume(root []SpanRecord)
}

// AddSink registers a streaming sink. Safe on a nil recorder (no-op).
func (r *Recorder) AddSink(s StreamSink) {
	if r == nil || s == nil {
		return
	}
	r.mu.Lock()
	r.sinks = append(r.sinks, s)
	r.mu.Unlock()
}

// SetRetain controls whether ended root spans stay in the recorder's
// forest. The default (true) keeps the historical behaviour: the whole
// forest is retained for the tree exporters and AuditSpans. With retain
// off, an ended root is flattened to the sinks and then released, so
// memory stays bounded regardless of run length — the 100k-host mode.
// Tree exporters then only see still-open roots; use a streaming sink
// (JSONLSink, FlightRecorder) for the export instead.
func (r *Recorder) SetRetain(retain bool) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.noRetain = !retain
	r.mu.Unlock()
}

// flattenSpan appends s's subtree to out depth-first in creation order,
// resolving inherited tracks as it descends.
func flattenSpan(s *Span, parent, depth int, track string, out []SpanRecord) []SpanRecord {
	t := s.Track
	if t == "" {
		t = track
	}
	out = append(out, SpanRecord{
		ID: s.id, Parent: parent, Depth: depth,
		Name: s.Name, Track: t,
		Start: s.start, End: s.end,
		Attrs: s.attrs, Events: s.events,
	})
	for _, c := range s.children {
		out = flattenSpan(c, s.id, depth+1, t, out)
	}
	return out
}

// flushRootLocked handles an ended root span under r.mu: flatten for
// the sinks (when any are registered) and drop it from the forest when
// retention is off. Returns the records to dispatch after unlocking.
func (r *Recorder) flushRootLocked(s *Span) []SpanRecord {
	if s.parent != nil || (len(r.sinks) == 0 && !r.noRetain) {
		return nil
	}
	var recs []SpanRecord
	if len(r.sinks) > 0 {
		recs = flattenSpan(s, -1, 0, "", nil)
	}
	if r.noRetain {
		for i := len(r.roots) - 1; i >= 0; i-- {
			if r.roots[i] == s {
				r.roots = append(r.roots[:i], r.roots[i+1:]...)
				break
			}
		}
	}
	return recs
}

// dispatch hands one flattened root to every sink, outside the lock.
func (r *Recorder) dispatch(recs []SpanRecord) {
	if len(recs) == 0 {
		return
	}
	r.mu.Lock()
	sinks := r.sinks
	r.mu.Unlock()
	for _, s := range sinks {
		s.Consume(recs)
	}
}

// JSONLSink streams every consumed span as one JSON line, in exactly
// the format of Recorder.WriteJSONL — a streamed file and a tree-export
// file of the same run are byte-identical. Errors are sticky; check Err
// after the run.
type JSONLSink struct {
	mu  sync.Mutex
	w   io.Writer
	err error
}

// NewJSONLSink returns a sink writing span records to w.
func NewJSONLSink(w io.Writer) *JSONLSink { return &JSONLSink{w: w} }

// Consume implements StreamSink.
func (s *JSONLSink) Consume(root []SpanRecord) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return
	}
	var b []byte
	for i := range root {
		b = root[i].appendJSONL(b)
	}
	_, s.err = s.w.Write(b)
}

// Err returns the first write error, if any.
func (s *JSONLSink) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// HeadSampler forwards a deterministic fraction of root subtrees to the
// next sink: the sampling decision is made once per root ("head"
// sampling, so a kept trace is always complete) from a seed-keyed hash
// of the root's name and virtual start time. The same (seed, frac)
// therefore keeps the same roots on every run and at every -workers
// count — sampled exports stay byte-identical — while a 100k-host run
// exports O(sample), not O(fleet).
type HeadSampler struct {
	seed uint64
	frac float64
	next StreamSink

	mu            sync.Mutex
	kept, dropped int64
}

// NewHeadSampler returns a sampler keeping ~frac of roots (frac ≥ 1
// keeps everything, frac ≤ 0 drops everything) and forwarding them to
// next.
func NewHeadSampler(seed uint64, frac float64, next StreamSink) *HeadSampler {
	return &HeadSampler{seed: seed, frac: frac, next: next}
}

// splitmix64 is the avalanche mixer used across the repo's seeded
// generators (fault plans, chaos scenarios).
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Keep reports the sampling decision for a root record: a pure function
// of (seed, name, start), independent of span ids and arrival order.
func (h *HeadSampler) Keep(root SpanRecord) bool {
	if h.frac >= 1 {
		return true
	}
	if h.frac <= 0 {
		return false
	}
	key := uint64(14695981039346656037) // FNV-64a
	for i := 0; i < len(root.Name); i++ {
		key = (key ^ uint64(root.Name[i])) * 1099511628211
	}
	key ^= uint64(root.Start.Nanoseconds())
	u := splitmix64(h.seed^key) >> 11 // top 53 bits → uniform [0,1)
	return float64(u)/float64(1<<53) < h.frac
}

// Consume implements StreamSink.
func (h *HeadSampler) Consume(root []SpanRecord) {
	if len(root) == 0 {
		return
	}
	if !h.Keep(root[0]) {
		h.mu.Lock()
		h.dropped++
		h.mu.Unlock()
		return
	}
	h.mu.Lock()
	h.kept++
	h.mu.Unlock()
	if h.next != nil {
		h.next.Consume(root)
	}
}

// Kept returns the number of roots forwarded so far.
func (h *HeadSampler) Kept() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.kept
}

// Dropped returns the number of roots discarded so far.
func (h *HeadSampler) Dropped() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.dropped
}

// FlightRecorder is a fixed-capacity ring buffer of the most recently
// streamed spans — the black box a violation handler reads instead of a
// full span tree. Capacity is respected strictly: the recorder holds at
// most Cap ring records plus at most Cap pinned records, however long
// the run. Records matching the optional pin predicate (rollback /
// recovery / fault spans, typically) bypass the ring and are retained
// until the pinned buffer itself is full, so the spans *near* faults
// survive even when steady-state traffic would have evicted them.
type FlightRecorder struct {
	mu      sync.Mutex
	cap     int
	ring    []SpanRecord
	next    int
	wrapped bool
	total   uint64
	pin     func(SpanRecord) bool
	pinned  []SpanRecord
}

// NewFlightRecorder returns a flight recorder retaining the last
// capacity spans (minimum 1).
func NewFlightRecorder(capacity int) *FlightRecorder {
	if capacity < 1 {
		capacity = 1
	}
	return &FlightRecorder{cap: capacity, ring: make([]SpanRecord, 0, capacity)}
}

// SetPin installs the retention predicate: matching records go to the
// bounded pinned buffer instead of the ring.
func (f *FlightRecorder) SetPin(pin func(SpanRecord) bool) {
	f.mu.Lock()
	f.pin = pin
	f.mu.Unlock()
}

// Consume implements StreamSink.
func (f *FlightRecorder) Consume(root []SpanRecord) {
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, rec := range root {
		f.total++
		if f.pin != nil && f.pin(rec) && len(f.pinned) < f.cap {
			f.pinned = append(f.pinned, rec)
			continue
		}
		if len(f.ring) < f.cap {
			f.ring = append(f.ring, rec)
			continue
		}
		f.ring[f.next] = rec
		f.next = (f.next + 1) % f.cap
		f.wrapped = true
	}
}

// Cap returns the configured ring capacity.
func (f *FlightRecorder) Cap() int { return f.cap }

// Len returns the number of records currently retained (ring + pinned);
// never more than 2×Cap.
func (f *FlightRecorder) Len() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.ring) + len(f.pinned)
}

// Total returns the number of records ever consumed.
func (f *FlightRecorder) Total() uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.total
}

// Evicted returns how many records were overwritten by ring wraparound
// or dropped by a full pinned buffer.
func (f *FlightRecorder) Evicted() uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.total - uint64(len(f.ring)+len(f.pinned))
}

// Snapshot returns the retained records — pinned first, then the ring —
// each group in arrival order. The slice is a copy.
func (f *FlightRecorder) Snapshot() []SpanRecord {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]SpanRecord, 0, len(f.pinned)+len(f.ring))
	out = append(out, f.pinned...)
	if f.wrapped {
		out = append(out, f.ring[f.next:]...)
		out = append(out, f.ring[:f.next]...)
	} else {
		out = append(out, f.ring...)
	}
	return out
}

// WriteJSONL dumps the retained records in Snapshot order, one JSON
// line per span (the WriteJSONL/JSONLSink format).
func (f *FlightRecorder) WriteJSONL(w io.Writer) error {
	var b []byte
	for _, rec := range f.Snapshot() {
		b = rec.appendJSONL(b)
	}
	_, err := w.Write(b)
	return err
}
