package obs

import (
	"fmt"
	"time"
)

// SpanViolation is one structural inconsistency in the recorded span
// forest found by AuditSpans.
type SpanViolation struct {
	// Kind classifies the inconsistency:
	//
	//	"negative-duration"  a span ended before it started
	//	"child-early"        a child starts before its parent started
	//	"child-late"         an ended child ends after its ended parent
	//	"sibling-regress"    under one parent, a later-opened sibling
	//	                     starts before an earlier one (virtual time
	//	                     ran backwards)
	Kind   string
	Span   string
	Detail string
}

func (v SpanViolation) String() string {
	return fmt.Sprintf("%s: span %q: %s", v.Kind, v.Span, v.Detail)
}

// AuditSpans checks the recorded span forest for well-nestedness: every
// span's end is at or after its start, every child lives within its
// parent's virtual-time window, and siblings open in monotone start
// order (the discrete-event clock never runs backwards). Spans still
// open are only checked against lower bounds — an in-flight operation
// is not a violation. A nil recorder or a clean forest returns nil.
func (r *Recorder) AuditSpans() []SpanViolation {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []SpanViolation
	for _, root := range r.roots {
		auditSpan(root, &out)
	}
	return out
}

// AuditRecords runs the AuditSpans checks over flattened span records —
// the form a FlightRecorder retains — so violation handlers can audit
// span structure without the full tree. Records whose parent is absent
// from the slice (evicted by the ring, or sampled away) are only checked
// for negative duration: a truncated window is not a violation. Records
// may arrive in any order; parent/child and sibling relations are
// reconstructed from the Parent ids.
func AuditRecords(recs []SpanRecord) []SpanViolation {
	byID := make(map[int]*SpanRecord, len(recs))
	for i := range recs {
		byID[recs[i].ID] = &recs[i]
	}
	var out []SpanViolation
	// prevStart tracks, per present parent, the latest child start seen
	// so far in slice order — slice order is creation order within one
	// root batch, which is what sibling monotonicity is defined over.
	prevStart := make(map[int]time.Duration, len(recs))
	for i := range recs {
		rec := &recs[i]
		if rec.End < rec.Start {
			out = append(out, SpanViolation{Kind: "negative-duration", Span: rec.Name,
				Detail: fmt.Sprintf("start %v, end %v", rec.Start, rec.End)})
		}
		p, ok := byID[rec.Parent]
		if !ok {
			continue
		}
		if rec.Start < p.Start {
			out = append(out, SpanViolation{Kind: "child-early", Span: rec.Name,
				Detail: fmt.Sprintf("starts %v before parent %q at %v", rec.Start, p.Name, p.Start)})
		} else if prev, seen := prevStart[rec.Parent]; seen && rec.Start < prev {
			out = append(out, SpanViolation{Kind: "sibling-regress", Span: rec.Name,
				Detail: fmt.Sprintf("starts %v before an earlier sibling under %q at %v", rec.Start, p.Name, prev)})
		}
		if rec.End > p.End {
			out = append(out, SpanViolation{Kind: "child-late", Span: rec.Name,
				Detail: fmt.Sprintf("ends %v after parent %q at %v", rec.End, p.Name, p.End)})
		}
		if prev, seen := prevStart[rec.Parent]; !seen || rec.Start > prev {
			prevStart[rec.Parent] = rec.Start
		}
	}
	return out
}

func auditSpan(s *Span, out *[]SpanViolation) {
	if s.ended && s.end < s.start {
		*out = append(*out, SpanViolation{Kind: "negative-duration", Span: s.Name,
			Detail: fmt.Sprintf("start %v, end %v", s.start, s.end)})
	}
	prev := s.start
	for _, c := range s.children {
		if c.start < s.start {
			*out = append(*out, SpanViolation{Kind: "child-early", Span: c.Name,
				Detail: fmt.Sprintf("starts %v before parent %q at %v", c.start, s.Name, s.start)})
		} else if c.start < prev {
			// Only a child inside the parent window can regress on a
			// sibling; an early child is already reported above.
			*out = append(*out, SpanViolation{Kind: "sibling-regress", Span: c.Name,
				Detail: fmt.Sprintf("starts %v before an earlier sibling under %q at %v", c.start, s.Name, prev)})
		}
		if c.ended && s.ended && c.end > s.end {
			*out = append(*out, SpanViolation{Kind: "child-late", Span: c.Name,
				Detail: fmt.Sprintf("ends %v after parent %q at %v", c.end, s.Name, s.end)})
		}
		if c.start > prev {
			prev = c.start
		}
		auditSpan(c, out)
	}
}
