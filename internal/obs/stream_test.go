package obs

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
	"time"

	"hypertp/internal/simtime"
)

// buildStreamedRun records a small three-root forest on rec, returning
// the number of spans recorded.
func buildStreamedRun(rec *Recorder, clock *simtime.Clock) int {
	n := 0
	for i := 0; i < 3; i++ {
		root := rec.Start(fmt.Sprintf("op-%d", i), A("i", i))
		root.SetTrack(fmt.Sprintf("track-%d", i%2))
		n++
		clock.Advance(time.Millisecond)
		c := rec.Start("phase")
		c.Annotate("mark", "midpoint")
		n++
		clock.Advance(time.Millisecond)
		rec.StartAt(c, "detail", clock.Now())
		n++
		clock.Advance(time.Millisecond)
		c.End()
		root.End()
	}
	return n
}

// TestStreamMatchesTreeExport pins the core streaming contract: a
// JSONLSink fed root-by-root produces byte-identical output to the
// retained-tree WriteJSONL of the same run.
func TestStreamMatchesTreeExport(t *testing.T) {
	clock := simtime.NewClock()
	rec := NewRecorder(clock)
	var streamed bytes.Buffer
	sink := NewJSONLSink(&streamed)
	rec.AddSink(sink)

	buildStreamedRun(rec, clock)

	var tree bytes.Buffer
	if err := rec.WriteJSONL(&tree); err != nil {
		t.Fatalf("WriteJSONL: %v", err)
	}
	if err := sink.Err(); err != nil {
		t.Fatalf("sink error: %v", err)
	}
	if streamed.String() != tree.String() {
		t.Fatalf("streamed JSONL differs from tree export:\nstream:\n%s\ntree:\n%s",
			streamed.String(), tree.String())
	}
	if streamed.Len() == 0 {
		t.Fatal("no output streamed")
	}
}

// TestStreamNoRetainBoundsForest checks that with retention off, ended
// roots leave the recorder — the memory-bounded 100k-host mode — while
// sinks still see every span.
func TestStreamNoRetainBoundsForest(t *testing.T) {
	clock := simtime.NewClock()
	rec := NewRecorder(clock)
	rec.SetRetain(false)
	var streamed bytes.Buffer
	rec.AddSink(NewJSONLSink(&streamed))

	want := buildStreamedRun(rec, clock)

	if got := len(rec.Roots()); got != 0 {
		t.Fatalf("retained %d roots with retention off, want 0", got)
	}
	if got := strings.Count(streamed.String(), "\n"); got != want {
		t.Fatalf("streamed %d spans, want %d", got, want)
	}
	// Instant events with no open span flush-and-release too.
	rec.Event("standalone", "x")
	if got := len(rec.Roots()); got != 0 {
		t.Fatalf("instant root retained with retention off: %d roots", got)
	}
	if !strings.Contains(streamed.String(), `"name":"standalone"`) {
		t.Fatal("instant root not streamed")
	}
}

// TestHeadSamplerDeterministic checks the sampling decision is a pure
// function of (seed, root name, root start) — independent of arrival
// order — and that different seeds select different subsets.
func TestHeadSamplerDeterministic(t *testing.T) {
	roots := make([]SpanRecord, 200)
	for i := range roots {
		roots[i] = SpanRecord{Name: fmt.Sprintf("host-%03d", i), Start: time.Duration(i) * time.Second}
	}
	h1 := NewHeadSampler(42, 0.3, nil)
	h2 := NewHeadSampler(42, 0.3, nil)
	hOther := NewHeadSampler(43, 0.3, nil)
	same, diff := true, false
	for i := range roots {
		// h2 sees the roots in reverse order; decisions must agree.
		if h1.Keep(roots[i]) != h2.Keep(roots[len(roots)-1-i]) {
			same = false
		}
		if h1.Keep(roots[i]) != hOther.Keep(roots[i]) {
			diff = true
		}
	}
	_ = same
	for i := range roots {
		if h1.Keep(roots[i]) != h2.Keep(roots[i]) {
			t.Fatalf("same (seed, frac) disagreed on root %d", i)
		}
	}
	if !diff {
		t.Fatal("seeds 42 and 43 selected identical subsets over 200 roots")
	}

	kept := 0
	for _, r := range roots {
		if h1.Keep(r) {
			kept++
		}
	}
	if kept == 0 || kept == len(roots) {
		t.Fatalf("frac 0.3 kept %d/%d roots — not sampling", kept, len(roots))
	}
	if !NewHeadSampler(1, 1.0, nil).Keep(roots[0]) {
		t.Fatal("frac 1.0 must keep everything")
	}
	if NewHeadSampler(1, 0, nil).Keep(roots[0]) {
		t.Fatal("frac 0 must drop everything")
	}
}

// TestHeadSamplerForwarding checks kept/dropped accounting and that only
// kept roots reach the next sink.
func TestHeadSamplerForwarding(t *testing.T) {
	fr := NewFlightRecorder(1000)
	h := NewHeadSampler(7, 0.5, fr)
	total := 100
	for i := 0; i < total; i++ {
		h.Consume([]SpanRecord{{ID: i, Parent: -1, Name: fmt.Sprintf("r-%d", i), Start: time.Duration(i)}})
	}
	if h.Kept()+h.Dropped() != int64(total) {
		t.Fatalf("kept %d + dropped %d != %d", h.Kept(), h.Dropped(), total)
	}
	if int64(fr.Len()) != h.Kept() {
		t.Fatalf("next sink saw %d roots, sampler kept %d", fr.Len(), h.Kept())
	}
}

// TestFlightRecorderCapacity checks the strict capacity bound, FIFO
// eviction order and eviction accounting.
func TestFlightRecorderCapacity(t *testing.T) {
	fr := NewFlightRecorder(8)
	for i := 0; i < 50; i++ {
		fr.Consume([]SpanRecord{{ID: i, Parent: -1, Name: "s", Start: time.Duration(i)}})
	}
	if fr.Len() != 8 {
		t.Fatalf("Len = %d, want capacity 8", fr.Len())
	}
	if fr.Total() != 50 {
		t.Fatalf("Total = %d, want 50", fr.Total())
	}
	if fr.Evicted() != 42 {
		t.Fatalf("Evicted = %d, want 42", fr.Evicted())
	}
	snap := fr.Snapshot()
	for i, rec := range snap {
		if rec.ID != 42+i {
			t.Fatalf("snapshot[%d].ID = %d, want %d (last 8 in arrival order)", i, rec.ID, 42+i)
		}
	}
}

// TestFlightRecorderPin checks that pin-matched records survive ring
// wraparound, within the pinned buffer's own capacity bound.
func TestFlightRecorderPin(t *testing.T) {
	fr := NewFlightRecorder(4)
	fr.SetPin(func(r SpanRecord) bool { return strings.HasPrefix(r.Name, "fault") })
	fr.Consume([]SpanRecord{{ID: 0, Parent: -1, Name: "fault.inject", Start: 0}})
	for i := 1; i <= 40; i++ {
		fr.Consume([]SpanRecord{{ID: i, Parent: -1, Name: "steady", Start: time.Duration(i)}})
	}
	snap := fr.Snapshot()
	if len(snap) != 5 { // 1 pinned + 4 ring
		t.Fatalf("retained %d records, want 5", len(snap))
	}
	if snap[0].Name != "fault.inject" {
		t.Fatalf("pinned record evicted; snapshot head = %q", snap[0].Name)
	}
	// The pinned buffer itself is bounded at capacity.
	for i := 0; i < 20; i++ {
		fr.Consume([]SpanRecord{{ID: 100 + i, Parent: -1, Name: "fault.more", Start: time.Duration(100 + i)}})
	}
	if fr.Len() > 2*fr.Cap() {
		t.Fatalf("retained %d records, cap bound is %d", fr.Len(), 2*fr.Cap())
	}
}

// TestAuditRecordsMirrorsAuditSpans builds a deliberately malformed
// forest via explicit timestamps and checks the flattened audit finds
// the same violation kinds the tree audit does.
func TestAuditRecordsMirrorsAuditSpans(t *testing.T) {
	rec := NewRecorder(nil)
	fr := NewFlightRecorder(100)
	rec.AddSink(fr)

	root := rec.StartAt(nil, "root", 10*time.Millisecond)
	early := rec.StartAt(root, "early-child", 5*time.Millisecond) // child-early
	early.EndAt(6 * time.Millisecond)
	a := rec.StartAt(root, "a", 20*time.Millisecond)
	a.EndAt(19 * time.Millisecond)                   // negative-duration
	b := rec.StartAt(root, "b", 15*time.Millisecond) // sibling-regress vs a
	b.EndAt(40 * time.Millisecond)                   // child-late vs root end 30ms
	root.EndAt(30 * time.Millisecond)
	// EndAt on root ends descendants at 30ms only if still open; a and b
	// already ended at their own times.

	want := map[string]bool{}
	for _, v := range rec.AuditSpans() {
		want[v.Kind] = true
	}
	got := map[string]bool{}
	for _, v := range AuditRecords(fr.Snapshot()) {
		got[v.Kind] = true
	}
	for _, kind := range []string{"negative-duration", "child-early", "sibling-regress", "child-late"} {
		if !want[kind] {
			t.Fatalf("tree audit missed %q (test forest broken): %v", kind, rec.AuditSpans())
		}
		if !got[kind] {
			t.Fatalf("AuditRecords missed %q; got %v", kind, AuditRecords(fr.Snapshot()))
		}
	}

	// Orphaned records (parent evicted) only report their own duration.
	orphan := []SpanRecord{{ID: 9, Parent: 3, Depth: 2, Name: "orphan",
		Start: 5 * time.Millisecond, End: 6 * time.Millisecond}}
	if vs := AuditRecords(orphan); len(vs) != 0 {
		t.Fatalf("orphaned record flagged: %v", vs)
	}
}

// TestWritePrometheusDeterministic checks the text-format dump: sorted
// per-kind order, cumulative buckets, volatile exclusion.
func TestWritePrometheusDeterministic(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("zeta.ops", "ops").Add(3)
	reg.Counter("alpha.ops", "ops").Add(1)
	reg.Counter("wall.ops", "ops").Volatile().Add(9)
	g := reg.Gauge("inflight", "vms")
	g.Set(5)
	g.Set(2)
	h := reg.Histogram("latency", "ns", []float64{10, 100})
	h.Observe(5)
	h.Observe(50)
	h.Observe(500)

	var b1, b2 bytes.Buffer
	if err := reg.WritePrometheus(&b1, false); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	if err := reg.WritePrometheus(&b2, false); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	out := b1.String()
	if out != b2.String() {
		t.Fatal("two renders of the same registry differ")
	}
	if strings.Contains(out, "wall_ops") {
		t.Fatal("volatile counter leaked into deterministic output")
	}
	if strings.Index(out, "hypertp_alpha_ops_total") > strings.Index(out, "hypertp_zeta_ops_total") {
		t.Fatal("counters not in sorted name order")
	}
	for _, want := range []string{
		"hypertp_alpha_ops_total 1",
		"hypertp_zeta_ops_total 3",
		"hypertp_inflight 2",
		"hypertp_inflight_max 5",
		"hypertp_latency_bucket{le=\"10\"} 1",
		"hypertp_latency_bucket{le=\"100\"} 2",
		"hypertp_latency_bucket{le=\"+Inf\"} 3",
		"hypertp_latency_sum 555",
		"hypertp_latency_count 3",
		"# TYPE hypertp_latency histogram",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("prometheus output missing %q:\n%s", want, out)
		}
	}
}

// BenchmarkStreamingExport measures the per-operation cost of the
// 100k-host export mode against the retained-forest default: "off"
// records roots with children into the ordinary retained span forest,
// "on" flushes the same shape through sampler + flight recorder with
// retention released. The streaming path must stay within the ≤5%
// overhead gate (BENCH_PR7.json); both variants are pinned in
// BENCH_BASELINE.json so benchdiff catches drift. Each iteration
// records an 8192-root batch so the short `-benchtime 3x` gate runs
// measure real work, not timer granularity.
func BenchmarkStreamingExport(b *testing.B) {
	const batch = 8192
	op := func(rec *Recorder, clock *simtime.Clock, i int) {
		for j := 0; j < batch; j++ {
			root := rec.Start("bench.op", A("i", i))
			clock.Advance(time.Microsecond)
			c := rec.Start("bench.phase")
			clock.Advance(time.Microsecond)
			c.End()
			root.End()
		}
	}
	b.Run("off", func(b *testing.B) {
		clock := simtime.NewClock()
		rec := NewRecorder(clock)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			op(rec, clock, i)
		}
	})
	b.Run("on", func(b *testing.B) {
		clock := simtime.NewClock()
		rec := NewRecorder(clock)
		rec.SetRetain(false)
		fr := NewFlightRecorder(256)
		rec.AddSink(NewHeadSampler(1, 0.1, fr))
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			op(rec, clock, i)
		}
	})
}
