// Package fuzzseed keeps checked-in seed corpora for the repo's fuzz
// targets in lockstep with the seeds the targets f.Add at runtime.
//
// Each fuzz target's seeds live under the owning package's
// testdata/fuzz/<Target>/ directory in the standard Go fuzzing v1
// encoding, so `go test` exercises them on every plain run and `go test
// -fuzz` starts from a meaningful corpus instead of an empty one. The
// corpora are generated — the seeds derive from the packages' own
// encoders — so a TestFuzzSeedCorpus in each package calls Check to
// fail loudly when an encoder change makes the checked-in files stale;
// `make fuzz-seeds` regenerates them.
package fuzzseed

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// WriteEnv is the environment variable that switches Check from
// verifying the corpus to rewriting it (the `make fuzz-seeds` mode).
const WriteEnv = "HYPERTP_WRITE_FUZZ_SEEDS"

// File renders one []byte seed in the Go fuzzing v1 corpus encoding.
func File(data []byte) []byte {
	return []byte(fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", data))
}

// Check verifies (or, with WriteEnv set, rewrites) the seed corpus for
// the named fuzz target under testdata/fuzz/<target>/. The seeds must
// be the exact list the fuzz target passes to f.Add, in order.
func Check(tb testing.TB, target string, seeds ...[]byte) {
	tb.Helper()
	dir := filepath.Join("testdata", "fuzz", target)
	write := os.Getenv(WriteEnv) != ""
	if write {
		if err := os.RemoveAll(dir); err != nil {
			tb.Fatal(err)
		}
		if err := os.MkdirAll(dir, 0o755); err != nil {
			tb.Fatal(err)
		}
	}
	expected := make(map[string]bool, len(seeds))
	for i, seed := range seeds {
		name := fmt.Sprintf("seed-%02d", i)
		expected[name] = true
		path := filepath.Join(dir, name)
		want := File(seed)
		if write {
			if err := os.WriteFile(path, want, 0o644); err != nil {
				tb.Fatal(err)
			}
			continue
		}
		got, err := os.ReadFile(path)
		if err != nil {
			tb.Fatalf("fuzz seed corpus missing (run `make fuzz-seeds` and commit): %v", err)
		}
		if !bytes.Equal(got, want) {
			tb.Fatalf("fuzz seed corpus stale: %s no longer matches the target's f.Add seeds (run `make fuzz-seeds` and commit)", path)
		}
	}
	if write {
		tb.Logf("wrote %d seeds to %s", len(seeds), dir)
		return
	}
	// Verify mode also rejects leftover seed-NN files from a longer past
	// seed list — a shrunk f.Add list must shrink the corpus with it.
	// Only the seed-NN namespace is policed: crashers minimized by
	// `go test -fuzz` land in the same directory under hash names and
	// are deliberately left alone.
	entries, err := os.ReadDir(dir)
	if err != nil {
		return // missing dir already failed above when seeds exist
	}
	for _, e := range entries {
		if name := e.Name(); strings.HasPrefix(name, "seed-") && !expected[name] {
			tb.Fatalf("fuzz seed corpus has stale extra file %s (run `make fuzz-seeds` and commit)",
				filepath.Join(dir, name))
		}
	}
}
