package fuzzseed

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// fatalRecorder captures Fatal/Fatalf instead of aborting, so the
// Check failure paths are testable.
type fatalRecorder struct {
	testing.TB
	failed bool
	msg    string
}

func (r *fatalRecorder) Helper() {}
func (r *fatalRecorder) Fatal(args ...any) {
	r.failed = true
}
func (r *fatalRecorder) Fatalf(format string, args ...any) {
	r.failed = true
	r.msg = format
}
func (r *fatalRecorder) Logf(format string, args ...any) {}

// withCorpusDir runs fn chdir'd into a temp dir so Check's relative
// testdata/fuzz paths land there.
func withCorpusDir(t *testing.T, fn func()) {
	t.Helper()
	old, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chdir(t.TempDir()); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := os.Chdir(old); err != nil {
			t.Fatal(err)
		}
	}()
	fn()
}

func TestCheckWriteThenVerify(t *testing.T) {
	seeds := [][]byte{[]byte("one"), []byte("two")}
	withCorpusDir(t, func() {
		t.Setenv(WriteEnv, "1")
		rec := &fatalRecorder{TB: t}
		Check(rec, "FuzzX", seeds...)
		if rec.failed {
			t.Fatal("write mode failed")
		}

		t.Setenv(WriteEnv, "")
		rec = &fatalRecorder{TB: t}
		Check(rec, "FuzzX", seeds...)
		if rec.failed {
			t.Fatalf("fresh corpus failed verification: %s", rec.msg)
		}
	})
}

func TestCheckRejectsStaleExtraSeed(t *testing.T) {
	seeds := [][]byte{[]byte("one"), []byte("two")}
	withCorpusDir(t, func() {
		t.Setenv(WriteEnv, "1")
		Check(&fatalRecorder{TB: t}, "FuzzX", seeds...)
		t.Setenv(WriteEnv, "")

		// The f.Add list shrank: seed-01 is now a stale leftover.
		rec := &fatalRecorder{TB: t}
		Check(rec, "FuzzX", seeds[:1]...)
		if !rec.failed || !strings.Contains(rec.msg, "stale extra file") {
			t.Fatalf("stale seed-01 not rejected (failed=%v msg=%q)", rec.failed, rec.msg)
		}

		// Crashers minimized by `go test -fuzz` use hash names in the
		// same directory and must be tolerated.
		crasher := filepath.Join("testdata", "fuzz", "FuzzX", "582528ddfad69eb5")
		if err := os.WriteFile(crasher, File([]byte("boom")), 0o644); err != nil {
			t.Fatal(err)
		}
		rec = &fatalRecorder{TB: t}
		Check(rec, "FuzzX", seeds...)
		if rec.failed {
			t.Fatalf("crasher file wrongly rejected: %s", rec.msg)
		}
	})
}
