package difffuzz

import (
	"os"
	"reflect"
	"testing"

	"hypertp/internal/chaos"
	"hypertp/internal/fuzzseed"
)

// transplantTraceSeeds is the checked-in corpus of FuzzTransplantTrace:
// recorded traces from the chaos generator in the bundle format, under
// assorted mutation seeds, plus one raw non-JSON input that exercises
// the total byte-derived decoder.
func transplantTraceSeeds(tb testing.TB) [][]byte {
	tb.Helper()
	mk := func(mutSeed uint64, cfg chaos.Config) []byte {
		data, err := EncodeInput(mutSeed, cfg, chaos.Generate(cfg))
		if err != nil {
			tb.Fatal(err)
		}
		return data
	}
	return [][]byte{
		// Verbatim replay of the standard soak shape.
		mk(0, chaos.Config{Seed: 20210426, Ops: 12, Hosts: 3, VMs: 4, FaultRate: 0.15}),
		// Mutated crash-vocabulary trace.
		mk(0xc0ffee, chaos.Config{Seed: 7, Ops: 16, Hosts: 4, VMs: 4, Crash: true, FaultRate: 0.1}),
		// Mutated cached trace (warm pool + transplant cache live).
		mk(42, chaos.Config{Seed: 99, Ops: 10, Hosts: 2, VMs: 2, Cache: true}),
		// Raw bytes: no bundle JSON, decoded by deriveTrace.
		{0xde, 0xad, 0xbe, 0xef, 0x01, 0x02, 0x03, 0x04, 0x06, 0x01, 0x02, 0x80, 0x07,
			0x00, 0x01, 0x02, 0x03, 0x04, 0x05, 0x10, 0x11, 0x12, 0x13, 0x14, 0x15},
	}
}

// roundTripSeeds is the checked-in corpus of FuzzRoundTrip.
func roundTripSeeds(tb testing.TB) [][]byte {
	tb.Helper()
	params := []RoundTripParams{
		{Seed: 0x20210427, VMs: 1, VCPUs: 1, MemBytes: 16 << 20, Pages: 32},
		{Seed: 0xfeedface1, VMs: 3, VCPUs: 2, MemBytes: 32 << 20, Pages: 100, HugePages: true},
		{Seed: 0xabad1dea, VMs: 2, VCPUs: 4, MemBytes: 64 << 20, Pages: 7, HugePages: true, M2: true},
	}
	out := make([][]byte, len(params))
	for i, p := range params {
		out[i] = p.EncodeRoundTrip()
	}
	return out
}

// TestFuzzSeedCorpus keeps the checked-in testdata/fuzz corpora in
// lockstep with the f.Add lists above (regenerate: make fuzz-seeds).
func TestFuzzSeedCorpus(t *testing.T) {
	fuzzseed.Check(t, "FuzzTransplantTrace", transplantTraceSeeds(t)...)
	fuzzseed.Check(t, "FuzzRoundTrip", roundTripSeeds(t)...)
}

// writeRepro persists a replayable chaos bundle next to the fuzzer so a
// CI failure uploads it as an artifact (nightly.yml collects
// internal/difffuzz/chaos-bundle-*.json).
func writeRepro(t *testing.T, name string, data []byte) {
	t.Helper()
	if err := os.WriteFile(name, data, 0o644); err != nil {
		t.Logf("could not write repro bundle %s: %v", name, err)
		return
	}
	t.Logf("replayable repro written to %s (run `go run ./cmd/chaoscheck -replay %s`)", name, name)
}

// FuzzTransplantTrace replays recorded-and-mutated transplant traces
// under the full invariant auditor: any byte string decodes to a valid
// trace, the mutator chain is deterministic in the input alone, and a
// violation is both a fuzz crasher and a shrunk replayable bundle.
func FuzzTransplantTrace(f *testing.F) {
	for _, s := range transplantTraceSeeds(f) {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		mutSeed, cfg, ops := DecodeInput(data)
		cfg, ops = Mutate(cfg, ops, mutSeed)
		if len(ops) == 0 {
			return
		}
		res, err := chaos.RunOps(cfg, ops)
		if err != nil {
			t.Fatalf("harness construction failed: %v", err)
		}
		if res.Failure == nil {
			return
		}
		shrunk, fail := chaos.Shrink(cfg, ops, res.Failure)
		if bundle, merr := chaos.NewBundle(cfg, shrunk, fail, res.Trace).Marshal(); merr == nil {
			writeRepro(t, "chaos-bundle-trace.json", bundle)
		}
		t.Fatalf("invariant violation on mutated trace (mutSeed=%#x): %v", mutSeed, fail.Err())
	})
}

// FuzzRoundTrip drives arbitrary VM state Xen→KVM→Xen through UISR
// translate/restore — cold and through the transplant cache — and fails
// on any byte divergence in guest memory, device state, or re-encoded
// UISR blobs.
func FuzzRoundTrip(f *testing.F) {
	for _, s := range roundTripSeeds(f) {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		p := DecodeRoundTrip(data)
		if err := CheckRoundTrip(p); err != nil {
			if bundle, berr := ReproBundle(p); berr == nil {
				writeRepro(t, "chaos-bundle-roundtrip.json", bundle)
			}
			t.Fatalf("differential round-trip divergence for %+v: %v", p, err)
		}
	})
}

// TestRoundTripDifferential is the plain-test slice of FuzzRoundTrip:
// every checked-in seed scenario must hold all equivalence claims.
func TestRoundTripDifferential(t *testing.T) {
	for _, s := range roundTripSeeds(t) {
		p := DecodeRoundTrip(s)
		if err := CheckRoundTrip(p); err != nil {
			t.Fatalf("%+v: %v", p, err)
		}
	}
}

// TestTransplantTraceSeedsReplayClean: the checked-in trace seeds must
// replay without violations — a dirty seed would make every fuzz run
// fail instantly.
func TestTransplantTraceSeedsReplayClean(t *testing.T) {
	for i, s := range transplantTraceSeeds(t) {
		mutSeed, cfg, ops := DecodeInput(s)
		cfg, ops = Mutate(cfg, ops, mutSeed)
		res, err := chaos.RunOps(cfg, ops)
		if err != nil {
			t.Fatalf("seed %d: %v", i, err)
		}
		if res.Failure != nil {
			t.Fatalf("seed %d: %v", i, res.Failure.Err())
		}
	}
}

// TestInputCodecRoundTrip: EncodeInput/DecodeInput are inverses for
// well-formed recorded traces, and DecodeInput is total on garbage.
func TestInputCodecRoundTrip(t *testing.T) {
	cfg := chaos.Config{Seed: 5, Ops: 9, Hosts: 3, VMs: 3, FaultRate: 0.2}
	ops := chaos.Generate(cfg)
	data, err := EncodeInput(0x1234, cfg, ops)
	if err != nil {
		t.Fatal(err)
	}
	mutSeed, gotCfg, gotOps := DecodeInput(data)
	if mutSeed != 0x1234 {
		t.Fatalf("mutation seed = %#x", mutSeed)
	}
	if !reflect.DeepEqual(gotOps, ops) {
		t.Fatal("ops changed across the input codec")
	}
	if gotCfg.Seed != 5 || gotCfg.Hosts != 3 || gotCfg.VMs != 3 {
		t.Fatalf("config changed across the input codec: %+v", gotCfg)
	}

	// Total on arbitrary bytes, and hostile shapes are clamped.
	for _, raw := range [][]byte{nil, {0}, []byte("not json at all"), make([]byte, 500)} {
		_, cfg, ops := DecodeInput(raw)
		if cfg.Hosts < 2 || cfg.Hosts > maxHosts || cfg.VMs < 1 || cfg.VMs > maxVMs {
			t.Fatalf("derived fleet shape out of range: %+v", cfg)
		}
		if len(ops) == 0 || len(ops) > maxOps {
			t.Fatalf("derived op count out of range: %d", len(ops))
		}
	}
	big, err := EncodeInput(0, chaos.Config{Seed: 1, Ops: 200, Hosts: 40, VMs: 40}, chaos.Generate(chaos.Config{Seed: 1, Ops: 200, Hosts: 40, VMs: 40}))
	if err != nil {
		t.Fatal(err)
	}
	if _, cfg, ops := DecodeInput(big); cfg.Hosts != maxHosts || cfg.VMs != maxVMs || len(ops) != maxOps {
		t.Fatalf("oversized bundle not clamped: hosts=%d vms=%d ops=%d", cfg.Hosts, cfg.VMs, len(ops))
	}
}

// TestRoundTripParamCodec pins the byte layout both ways.
func TestRoundTripParamCodec(t *testing.T) {
	for _, s := range roundTripSeeds(t) {
		p := DecodeRoundTrip(s)
		if got := DecodeRoundTrip(p.EncodeRoundTrip()); !reflect.DeepEqual(got, p) {
			t.Fatalf("param codec not a round-trip: %+v vs %+v", got, p)
		}
	}
	p := DecodeRoundTrip(nil)
	if p.VMs < 1 || p.VCPUs < 1 || p.MemBytes == 0 || p.Pages < 1 || p.Seed == 0 {
		t.Fatalf("zero-input params invalid: %+v", p)
	}
}

// TestReproBundleReplays: a divergence repro must parse and replay on
// the chaos harness.
func TestReproBundleReplays(t *testing.T) {
	data, err := ReproBundle(RoundTripParams{Seed: 9, VMs: 2, VCPUs: 1, MemBytes: 16 << 20, Pages: 10})
	if err != nil {
		t.Fatal(err)
	}
	b, err := chaos.ParseBundle(data)
	if err != nil {
		t.Fatal(err)
	}
	if b.IsFailure() {
		t.Fatal("repro bundle should be a trace bundle")
	}
	res, err := b.Replay()
	if err != nil {
		t.Fatal(err)
	}
	if res.Failure != nil {
		t.Fatalf("repro scenario violated an invariant on a healthy build: %v", res.Failure.Err())
	}
	if res.CacheStats.Hits == 0 {
		t.Fatalf("repro bundle never exercised the cache warm path: %v", res.CacheStats)
	}
}
