package difffuzz

import (
	"hypertp/internal/chaos"
	"hypertp/internal/simtime"
)

// Trace mutators. Each is a pure function of (cfg, ops, seed): same
// inputs, same mutated trace, on any platform — the determinism that
// makes a fuzz crasher replay byte-for-byte from its input alone. All
// return fresh slices; the input ops are never aliased or modified.
//
// The catalogue mirrors the record/replay fuzzing substrate of IRIS
// (PAPERS.md): reorder within dependency constraints, fault-site
// swaps, seed perturbation, and op splicing from donor traces.

// MutationKind selects one mutator.
type MutationKind int

const (
	// MutReorder swaps adjacent independent ops (disjoint hosts and
	// VMs, neither fleet-wide), exploring interleavings that the
	// generator's single sequential stream never emits.
	MutReorder MutationKind = iota
	// MutFaultSwap permutes the per-op fault-plan seeds among the ops
	// that carry one and re-derives a fraction, moving fault sites
	// between operations without changing the op sequence.
	MutFaultSwap
	// MutSeedPerturb perturbs the trace's base seed and the bounded
	// scalar op fields (workload pages, crash-storm counts).
	MutSeedPerturb
	// MutSplice inserts a short contiguous run of ops generated from a
	// donor trace (chaos.Generate under a derived seed) at a random
	// position.
	MutSplice
	numMutationKinds
)

func (k MutationKind) String() string {
	switch k {
	case MutReorder:
		return "reorder"
	case MutFaultSwap:
		return "fault-swap"
	case MutSeedPerturb:
		return "seed-perturb"
	case MutSplice:
		return "splice"
	}
	return "unknown"
}

// Mutate applies the mutator chain selected by seed: zero is the
// identity, anything else applies 1–3 mutators drawn from the
// catalogue, each under its own derived sub-seed.
func Mutate(cfg chaos.Config, ops []chaos.Op, seed uint64) (chaos.Config, []chaos.Op) {
	if seed == 0 || len(ops) == 0 {
		return cfg, append([]chaos.Op(nil), ops...)
	}
	rng := simtime.NewRand(seed)
	n := 1 + rng.Intn(3)
	for i := 0; i < n; i++ {
		kind := MutationKind(rng.Intn(int(numMutationKinds)))
		cfg, ops = Apply(kind, cfg, ops, rng.Uint64())
	}
	// Splice can push past the replay budget; re-clamp.
	return clampTrace(cfg, ops)
}

// Apply runs a single mutator.
func Apply(kind MutationKind, cfg chaos.Config, ops []chaos.Op, seed uint64) (chaos.Config, []chaos.Op) {
	switch kind {
	case MutReorder:
		return cfg, Reorder(ops, seed)
	case MutFaultSwap:
		return cfg, FaultSwap(ops, seed)
	case MutSeedPerturb:
		return SeedPerturb(cfg, ops, seed)
	case MutSplice:
		return cfg, Splice(cfg, ops, seed)
	}
	return cfg, append([]chaos.Op(nil), ops...)
}

// fleetWide reports whether an op's effect spans the whole fleet, which
// makes it order-dependent with everything.
func fleetWide(op chaos.Op) bool {
	switch op.Kind {
	case chaos.OpLinkDown, chaos.OpLinkUp, chaos.OpRespond, chaos.OpRespondFleet,
		chaos.OpSweep, chaos.OpWarmPoolRefill, chaos.OpCrashStorm:
		return true
	}
	return false
}

// entities returns the named hosts and VMs an op touches.
func entities(op chaos.Op) (hosts, vms []string) {
	if op.Host != "" {
		hosts = append(hosts, op.Host)
	}
	if op.Kind == chaos.OpMigrate && op.Target != "" {
		hosts = append(hosts, op.Target)
	}
	if op.VM != "" {
		vms = append(vms, op.VM)
	}
	return hosts, vms
}

// independent reports whether two adjacent ops may swap: neither is
// fleet-wide and their named hosts and VMs are disjoint.
func independent(a, b chaos.Op) bool {
	if fleetWide(a) || fleetWide(b) {
		return false
	}
	ha, va := entities(a)
	hb, vb := entities(b)
	for _, x := range ha {
		for _, y := range hb {
			if x == y {
				return false
			}
		}
	}
	for _, x := range va {
		for _, y := range vb {
			if x == y {
				return false
			}
		}
	}
	return true
}

// Reorder performs len(ops) random adjacent swaps, each allowed only
// when the pair is independent. The op multiset is always preserved.
func Reorder(ops []chaos.Op, seed uint64) []chaos.Op {
	out := append([]chaos.Op(nil), ops...)
	if len(out) < 2 {
		return out
	}
	rng := simtime.NewRand(seed)
	// A seed-dependent attempt count, so short traces don't always see
	// an even number of swaps undoing each other.
	attempts := 1 + rng.Intn(2*len(out))
	for k := 0; k < attempts; k++ {
		i := rng.Intn(len(out) - 1)
		if independent(out[i], out[i+1]) {
			out[i], out[i+1] = out[i+1], out[i]
		}
	}
	return out
}

// FaultSwap rotates the fault-plan seeds among the fault-carrying ops
// and re-derives roughly a quarter of them, so injected fault sites
// move between operations.
func FaultSwap(ops []chaos.Op, seed uint64) []chaos.Op {
	out := append([]chaos.Op(nil), ops...)
	rng := simtime.NewRand(seed)
	var idx []int
	for i, op := range out {
		if op.Fault != 0 {
			idx = append(idx, i)
		}
	}
	if len(idx) == 0 {
		return out
	}
	// Deterministic Fisher–Yates over the carriers, then a rotation so
	// even a 2-carrier trace actually moves its seeds.
	seeds := make([]uint64, len(idx))
	for k, i := range idx {
		seeds[k] = out[i].Fault
	}
	for k := len(seeds) - 1; k > 0; k-- {
		j := rng.Intn(k + 1)
		seeds[k], seeds[j] = seeds[j], seeds[k]
	}
	rot := rng.Intn(len(seeds))
	for k, i := range idx {
		s := seeds[(k+rot)%len(seeds)]
		if rng.Intn(4) == 0 {
			s = rng.Uint64() | 1
		}
		out[i].Fault = s
	}
	return out
}

// SeedPerturb perturbs the trace seed (which drives harness-internal
// randomness such as migration receive jitter) and the bounded scalar
// op fields, staying inside the generator's own ranges.
func SeedPerturb(cfg chaos.Config, ops []chaos.Op, seed uint64) (chaos.Config, []chaos.Op) {
	rng := simtime.NewRand(seed)
	cfg.Seed = (cfg.Seed ^ rng.Uint64()) | 1
	out := append([]chaos.Op(nil), ops...)
	for i := range out {
		switch out[i].Kind {
		case chaos.OpWorkload:
			if rng.Intn(2) == 0 {
				out[i].Pages = 1 + rng.Intn(64)
			}
		case chaos.OpCrashStorm:
			if rng.Intn(2) == 0 {
				out[i].Count = 2 + rng.Intn(3)
			}
		}
	}
	return cfg, out
}

// Splice inserts a 1–4 op run generated from a donor trace (same fleet
// shape, derived seed) at a random position.
func Splice(cfg chaos.Config, ops []chaos.Op, seed uint64) []chaos.Op {
	rng := simtime.NewRand(seed)
	donorCfg := cfg
	donorCfg.Seed = rng.Uint64() | 1
	donorCfg.Ops = 8
	donor := chaos.Generate(donorCfg)
	n := 1 + rng.Intn(4)
	start := rng.Intn(len(donor) - n + 1)
	pos := rng.Intn(len(ops) + 1)
	out := make([]chaos.Op, 0, len(ops)+n)
	out = append(out, ops[:pos]...)
	out = append(out, donor[start:start+n]...)
	out = append(out, ops[pos:]...)
	return out
}
