// Package difffuzz is the record/replay differential fuzzing layer: it
// feeds recorded transplant traces — chaos trace bundles, optionally
// passed through deterministic mutators — back through the full
// invariant auditor (FuzzTransplantTrace), and drives arbitrary VM
// state through Xen→KVM→Xen UISR round-trips checking byte-for-byte
// equivalence of guest memory, device state, and re-encoded blobs,
// cached path included (FuzzRoundTrip).
//
// The corpus format is the chaos replay bundle itself (see
// chaos.NewTraceBundle and `chaoscheck -record-out`): a fuzz input is
// an 8-byte little-endian mutation seed followed by bundle JSON. Inputs
// whose tail is not a parseable bundle still replay — a trace is
// derived totally from the raw bytes — so coverage-guided mutation of
// the bytes themselves stays productive.
package difffuzz

import (
	"encoding/binary"
	"fmt"

	"hypertp/internal/chaos"
)

// chaosHost and chaosVM render the harness's fixed entity names.
func chaosHost(i int) string { return fmt.Sprintf("host-%02d", i) }
func chaosVM(i int) string   { return fmt.Sprintf("vm-%02d", i) }

// Replay-cost clamps on decoded traces. A hostile or degenerate bundle
// must not turn one fuzz iteration into a minutes-long soak.
const (
	maxOps   = 64
	maxHosts = 8
	maxVMs   = 8
)

// mutSeedSize is the mutation-seed header length of a fuzz input.
const mutSeedSize = 8

// DecodeInput splits a fuzz input into its mutation seed and the
// recorded trace. Total: any byte string decodes to a replayable
// (config, ops) pair. A mutation seed of zero means "replay verbatim".
func DecodeInput(data []byte) (mutSeed uint64, cfg chaos.Config, ops []chaos.Op) {
	if len(data) >= mutSeedSize {
		mutSeed = binary.LittleEndian.Uint64(data)
		data = data[mutSeedSize:]
	}
	if b, err := chaos.ParseBundle(data); err == nil {
		cfg, ops = b.Config, b.Ops
	} else {
		cfg, ops = deriveTrace(data)
	}
	cfg, ops = clampTrace(cfg, ops)
	return mutSeed, cfg, ops
}

// EncodeInput renders a recorded trace plus mutation seed in the fuzz
// input format — the inverse of DecodeInput for well-formed bundles.
// Seed corpora and divergence repros are built with it.
func EncodeInput(mutSeed uint64, cfg chaos.Config, ops []chaos.Op) ([]byte, error) {
	body, err := chaos.NewTraceBundle(cfg, ops).Marshal()
	if err != nil {
		return nil, err
	}
	out := make([]byte, mutSeedSize, mutSeedSize+len(body))
	binary.LittleEndian.PutUint64(out, mutSeed)
	return append(out, body...), nil
}

// clampTrace bounds a decoded trace to the per-iteration replay budget.
func clampTrace(cfg chaos.Config, ops []chaos.Op) (chaos.Config, []chaos.Op) {
	if cfg.Hosts > maxHosts {
		cfg.Hosts = maxHosts
	}
	if cfg.VMs > maxVMs {
		cfg.VMs = maxVMs
	}
	if cfg.FaultRate < 0 {
		cfg.FaultRate = 0
	}
	if cfg.FaultRate > 0.5 {
		cfg.FaultRate = 0.5
	}
	if cfg.OpBudget < 0 {
		cfg.OpBudget = 0
	}
	if cfg.FlightCap < 0 {
		cfg.FlightCap = 0
	}
	// A replayed trace must stand on its own ops, not re-generate.
	cfg.Ops = len(ops)
	// Breakers exist to prove the auditor catches planted violations;
	// under the fuzzer they would only produce expected failures.
	cfg.Break = ""
	if len(ops) > maxOps {
		ops = ops[:maxOps]
	}
	return cfg, ops
}

// deriveTrace maps arbitrary bytes to a valid trace: a fixed-layout
// header draws the fleet shape, then 6-byte records draw ops from the
// generator's vocabulary. Every byte value is meaningful, none can
// reject — the property that keeps mutated non-JSON inputs exploring
// op-sequence space instead of dying in a parser.
func deriveTrace(data []byte) (chaos.Config, []chaos.Op) {
	at := func(i int) byte {
		if i < len(data) {
			return data[i]
		}
		return 0
	}
	var seed uint64
	for i := 0; i < 8; i++ {
		seed = seed<<8 | uint64(at(i))
	}
	flags := at(8)
	cfg := chaos.Config{
		Seed:  seed | 1,
		Hosts: 2 + int(at(9))%3,
		VMs:   1 + int(at(10))%4,
		Crash: flags&1 != 0,
		Cache: flags&2 != 0,
	}
	if flags&4 != 0 {
		cfg.FaultRate = float64(at(11)) / 255 * 0.3
	}
	nOps := 1 + int(at(12))%24
	ops := make([]chaos.Op, 0, nOps)
	for i := 0; i < nOps; i++ {
		rec := [6]byte{}
		for j := range rec {
			rec[j] = at(13 + 6*i + j)
		}
		ops = append(ops, deriveOp(cfg, rec))
	}
	return cfg, ops
}

// derivedKinds is the op vocabulary the byte decoder draws from; the
// crash kinds sit at the tail so they are reachable only on
// crash-enabled traces.
var derivedKinds = []string{
	chaos.OpWorkload, chaos.OpMigrate, chaos.OpUpgrade,
	chaos.OpRespond, chaos.OpRespondFleet,
	chaos.OpQuarantine, chaos.OpReturn,
	chaos.OpLinkDown, chaos.OpLinkUp, chaos.OpSweep, chaos.OpWarmPoolRefill,
	chaos.OpCrashHV, chaos.OpCrashStorm, chaos.OpCrashDuringTransplant,
}

const numSafeKinds = 11 // derivedKinds prefix without the crash kinds

func hostName(cfg chaos.Config, b byte) string {
	return chaosHost(int(b) % cfg.Hosts)
}

func vmName(cfg chaos.Config, b byte) string {
	return chaosVM(int(b) % cfg.VMs)
}

// deriveOp maps one 6-byte record (kind, host, vm, aux, pages, fault)
// to a concrete op against cfg's fleet.
func deriveOp(cfg chaos.Config, rec [6]byte) chaos.Op {
	kinds := derivedKinds[:numSafeKinds]
	if cfg.Crash {
		kinds = derivedKinds
	}
	op := chaos.Op{Kind: kinds[int(rec[0])%len(kinds)]}
	switch op.Kind {
	case chaos.OpWorkload:
		op.VM = vmName(cfg, rec[2])
		op.Pages = 1 + int(rec[4])%64
	case chaos.OpMigrate:
		op.VM = vmName(cfg, rec[2])
		op.Target = hostName(cfg, rec[3])
	case chaos.OpUpgrade, chaos.OpQuarantine, chaos.OpReturn, chaos.OpCrashDuringTransplant:
		op.Host = hostName(cfg, rec[1])
	case chaos.OpRespond, chaos.OpRespondFleet:
		cves := chaos.KnownCVEs()
		op.Target = cves[int(rec[3])%len(cves)]
	case chaos.OpCrashHV:
		op.Host = hostName(cfg, rec[1])
		if rec[3]%4 == 0 {
			op.Target = "hang"
		}
	case chaos.OpCrashStorm:
		op.Count = 2 + int(rec[3])%3
	}
	// A zero fault byte (the padding value) means no injection; any
	// other value expands to a full odd fault-plan seed, deterministic
	// in (trace seed, record).
	if rec[5] != 0 && cfg.FaultRate > 0 {
		op.Fault = (cfg.Seed*0x9e3779b97f4a7c15 + uint64(rec[5])*0x2545f4914f6cdd1d) | 1
	}
	return op
}
