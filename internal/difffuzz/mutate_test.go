package difffuzz

import (
	"fmt"
	"reflect"
	"sort"
	"testing"

	"hypertp/internal/chaos"
)

func genTrace(tb testing.TB, cfg chaos.Config) (chaos.Config, []chaos.Op) {
	tb.Helper()
	ops := chaos.Generate(cfg)
	if len(ops) == 0 {
		tb.Fatal("empty generated trace")
	}
	return cfg, ops
}

func opMultiset(ops []chaos.Op) []string {
	out := make([]string, len(ops))
	for i, op := range ops {
		out[i] = fmt.Sprintf("%+v", op)
	}
	sort.Strings(out)
	return out
}

// Every mutator must be a pure function of (cfg, ops, seed) and must
// not alias or modify its input.
func TestMutatorsDeterministicAndPure(t *testing.T) {
	cfg, ops := genTrace(t, chaos.Config{Seed: 20210426, Ops: 30, Hosts: 4, VMs: 6, FaultRate: 0.2})
	orig := append([]chaos.Op(nil), ops...)
	for kind := MutationKind(0); kind < numMutationKinds; kind++ {
		c1, o1 := Apply(kind, cfg, ops, 0xfeed)
		c2, o2 := Apply(kind, cfg, ops, 0xfeed)
		if !reflect.DeepEqual(o1, o2) || !reflect.DeepEqual(c1, c2) {
			t.Fatalf("%v: same seed produced different mutations", kind)
		}
		if !reflect.DeepEqual(ops, orig) {
			t.Fatalf("%v: mutator modified its input", kind)
		}
		if len(o1) > 0 && &o1[0] == &ops[0] {
			t.Fatalf("%v: mutator aliased its input", kind)
		}
	}
	// The full chain too, including the identity at seed zero.
	_, same := Mutate(cfg, ops, 0)
	if !reflect.DeepEqual(same, orig) {
		t.Fatal("Mutate(seed=0) is not the identity")
	}
	c1, m1 := Mutate(cfg, ops, 77)
	c2, m2 := Mutate(cfg, ops, 77)
	if !reflect.DeepEqual(m1, m2) || !reflect.DeepEqual(c1, c2) {
		t.Fatal("Mutate: same seed produced different traces")
	}
	if reflect.DeepEqual(m1, orig) {
		t.Fatal("Mutate(seed=77) left the trace untouched")
	}
}

// Reorder may only permute — never add, drop, or edit ops — and every
// swap it performs must respect the independence constraint.
func TestReorderPreservesMultisetAndConstraints(t *testing.T) {
	_, ops := genTrace(t, chaos.Config{Seed: 7, Ops: 40, Hosts: 4, VMs: 6, FaultRate: 0.3})
	for seed := uint64(1); seed <= 20; seed++ {
		out := Reorder(ops, seed)
		if !reflect.DeepEqual(opMultiset(out), opMultiset(ops)) {
			t.Fatalf("seed %d: reorder changed the op multiset", seed)
		}
	}

	// Fleet-wide ops are dependency barriers: the sub-sequence of
	// fleet-wide ops must be untouched by any reorder.
	fleetSeq := func(ops []chaos.Op) []string {
		var out []string
		for _, op := range ops {
			if fleetWide(op) {
				out = append(out, fmt.Sprintf("%+v", op))
			}
		}
		return out
	}
	for seed := uint64(1); seed <= 20; seed++ {
		if !reflect.DeepEqual(fleetSeq(Reorder(ops, seed)), fleetSeq(ops)) {
			t.Fatalf("seed %d: reorder moved a fleet-wide op", seed)
		}
	}

	// Two ops naming the same host must keep their relative order.
	deps := []chaos.Op{
		{Kind: chaos.OpQuarantine, Host: "host-00"},
		{Kind: chaos.OpReturn, Host: "host-00"},
	}
	for seed := uint64(1); seed <= 50; seed++ {
		if got := Reorder(deps, seed); got[0].Kind != chaos.OpQuarantine {
			t.Fatalf("seed %d: dependent pair swapped", seed)
		}
	}

	// And a genuinely independent pair must swap for some seed.
	indep := []chaos.Op{
		{Kind: chaos.OpUpgrade, Host: "host-00"},
		{Kind: chaos.OpUpgrade, Host: "host-01"},
	}
	swapped := false
	for seed := uint64(1); seed <= 50 && !swapped; seed++ {
		swapped = Reorder(indep, seed)[0].Host == "host-01"
	}
	if !swapped {
		t.Fatal("independent pair never swapped in 50 seeds")
	}
}

// FaultSwap moves fault-plan seeds between ops without changing the op
// sequence or the set of fault-carrying positions.
func TestFaultSwapMovesSeedsOnly(t *testing.T) {
	_, ops := genTrace(t, chaos.Config{Seed: 3, Ops: 40, Hosts: 4, VMs: 6, FaultRate: 0.5})
	carriers := 0
	for _, op := range ops {
		if op.Fault != 0 {
			carriers++
		}
	}
	if carriers < 2 {
		t.Fatalf("trace has %d fault carriers, need >=2", carriers)
	}
	moved := false
	for seed := uint64(1); seed <= 10; seed++ {
		out := FaultSwap(ops, seed)
		if len(out) != len(ops) {
			t.Fatal("fault swap changed trace length")
		}
		for i := range out {
			bare, bareOut := out[i], ops[i]
			bare.Fault, bareOut.Fault = 0, 0
			if !reflect.DeepEqual(bare, bareOut) {
				t.Fatalf("seed %d: op %d changed beyond its fault seed", seed, i)
			}
			if (out[i].Fault == 0) != (ops[i].Fault == 0) {
				t.Fatalf("seed %d: op %d gained or lost its fault plan", seed, i)
			}
			if out[i].Fault != ops[i].Fault {
				moved = true
			}
			if out[i].Fault != 0 && out[i].Fault%2 == 0 {
				t.Fatalf("seed %d: op %d has even fault seed", seed, i)
			}
		}
	}
	if !moved {
		t.Fatal("fault seeds never moved in 10 seeds")
	}
}

// SeedPerturb keeps scalar fields inside the generator's own ranges.
func TestSeedPerturbStaysInRange(t *testing.T) {
	cfg, ops := genTrace(t, chaos.Config{Seed: 5, Ops: 40, Hosts: 4, VMs: 6, FaultRate: 0.2, Crash: true})
	for seed := uint64(1); seed <= 10; seed++ {
		newCfg, out := SeedPerturb(cfg, ops, seed)
		if newCfg.Seed == cfg.Seed {
			t.Fatalf("seed %d: config seed unchanged", seed)
		}
		for i, op := range out {
			if op.Kind == chaos.OpWorkload && (op.Pages < 1 || op.Pages > 64) {
				t.Fatalf("seed %d: op %d pages %d out of range", seed, i, op.Pages)
			}
			if op.Kind == chaos.OpCrashStorm && (op.Count < 2 || op.Count > 4) {
				t.Fatalf("seed %d: op %d count %d out of range", seed, i, op.Count)
			}
		}
	}
}

// Splice grows the trace by 1-4 ops drawn from a donor trace over the
// same fleet shape, preserving the original ops as a subsequence split
// at one point.
func TestSpliceInsertsDonorRun(t *testing.T) {
	cfg, ops := genTrace(t, chaos.Config{Seed: 11, Ops: 20, Hosts: 3, VMs: 4})
	for seed := uint64(1); seed <= 10; seed++ {
		out := Splice(cfg, ops, seed)
		grown := len(out) - len(ops)
		if grown < 1 || grown > 4 {
			t.Fatalf("seed %d: splice grew trace by %d ops", seed, grown)
		}
		// The original trace must survive as prefix + suffix around the
		// inserted run.
		found := false
		for pos := 0; pos+grown <= len(out) && !found; pos++ {
			found = reflect.DeepEqual(out[:pos], ops[:pos]) &&
				reflect.DeepEqual(out[pos+grown:], ops[pos:])
		}
		if !found {
			t.Fatalf("seed %d: spliced trace does not contain the original as a split subsequence", seed)
		}
	}
}
