package difffuzz

import (
	"fmt"
	"reflect"
	"sort"

	"hypertp/internal/chaos"
	"hypertp/internal/core"
	"hypertp/internal/hv"
	"hypertp/internal/hw"
	"hypertp/internal/simtime"
	"hypertp/internal/tpcache"
	"hypertp/internal/uisr"
)

// roundTripCycles is how many full Xen→KVM→Xen cycles each differential
// run drives. Three cycles guarantee the translation cache reaches its
// zero-miss fixed point, so the cached run genuinely exercises the warm
// path before the equivalence checks.
const roundTripCycles = 3

// RoundTripParams describes one differential round-trip scenario:
// arbitrary VM state driven Xen→KVM→Xen through UISR translate/restore,
// once cold and once through the transplant cache.
type RoundTripParams struct {
	Seed      uint64 // guest state + working-set content seed
	VMs       int    // 1..3
	VCPUs     int    // 1..4
	MemBytes  uint64
	Pages     int // workload pages written per VM before the first hop
	HugePages bool
	M2        bool // cost profile selection (never affects bytes)
}

// DecodeRoundTrip maps arbitrary fuzz bytes to valid params — total,
// never rejecting, every byte meaningful.
func DecodeRoundTrip(data []byte) RoundTripParams {
	at := func(i int) byte {
		if i < len(data) {
			return data[i]
		}
		return 0
	}
	var seed uint64
	for i := 0; i < 8; i++ {
		seed = seed<<8 | uint64(at(i))
	}
	return RoundTripParams{
		Seed:      seed | 1,
		VMs:       1 + int(at(8))%3,
		VCPUs:     1 + int(at(9))%4,
		MemBytes:  (16 << (at(10) % 3)) << 20, // 16, 32, or 64 MiB
		Pages:     1 + int(at(11))%128,
		HugePages: at(12)&1 != 0,
		M2:        at(12)&2 != 0,
	}
}

// EncodeRoundTrip is DecodeRoundTrip's inverse for in-range params,
// used to build the checked-in seed corpus.
func (p RoundTripParams) EncodeRoundTrip() []byte {
	out := make([]byte, 13)
	for i := 0; i < 8; i++ {
		out[i] = byte(p.Seed >> (8 * (7 - i)))
	}
	out[8] = byte(p.VMs - 1)
	out[9] = byte(p.VCPUs - 1)
	switch p.MemBytes >> 20 {
	case 32:
		out[10] = 1
	case 64:
		out[10] = 2
	}
	out[11] = byte(p.Pages - 1)
	if p.HugePages {
		out[12] |= 1
	}
	if p.M2 {
		out[12] |= 2
	}
	return out
}

// hopCapture is everything observable about the fleet after one hop:
// per-VM guest memory checksums and the re-encoded UISR blob of every
// VM (saved at rest on the hop's destination hypervisor, MemMap
// stripped exactly as the engine does — memory travels via PRAM and is
// covered by the checksums).
type hopCapture struct {
	kind   hv.Kind
	sums   map[string]uint64
	blobs  map[string][]byte
	report string
}

// runRoundTrip drives the scenario for roundTripCycles full cycles and
// captures the observable state after every hop. cache may be nil (the
// cold run).
func runRoundTrip(p RoundTripParams, cache *tpcache.Cache) ([]hopCapture, error) {
	prof := hw.M1()
	if p.M2 {
		prof = hw.M2()
	}
	// Slimmed physical memory, as in the chaos harness: enough for the
	// small tenant set, cheap to audit.
	prof.RAMBytes = 2 * hw.GiB
	clock := simtime.NewClock()
	engine := core.NewEngine(clock, hw.NewMachine(clock, prof))

	cur, err := engine.BootHypervisor(hv.KindXen)
	if err != nil {
		return nil, err
	}
	for i := 0; i < p.VMs; i++ {
		vm, err := cur.CreateVM(hv.Config{
			Name: fmt.Sprintf("rt-%02d", i), VCPUs: p.VCPUs, MemBytes: p.MemBytes,
			HugePages: p.HugePages, Seed: p.Seed + uint64(i), InPlaceCompatible: true,
		})
		if err != nil {
			return nil, err
		}
		if err := vm.Guest.WriteWorkingSet(hw.GFN(uint64(i)*8), p.Pages); err != nil {
			return nil, err
		}
	}

	opts := core.DefaultOptions()
	opts.HugePages = p.HugePages
	opts.Cache = cache

	caps := make([]hopCapture, 0, 2*roundTripCycles)
	for hop := 0; hop < 2*roundTripCycles; hop++ {
		target := hv.KindKVM
		if cur.Kind() == hv.KindKVM {
			target = hv.KindXen
		}
		dst, rep, err := engine.InPlace(cur, target, opts)
		if err != nil {
			return nil, fmt.Errorf("hop %d (%v→%v): %w", hop, cur.Kind(), target, err)
		}
		cap, err := capture(dst)
		if err != nil {
			return nil, fmt.Errorf("hop %d capture: %w", hop, err)
		}
		// Cache counters are the one legitimate cold/cached report
		// difference; zero them so the identity check covers the rest.
		flat := *rep
		flat.CacheHits, flat.CacheMisses, flat.CacheWarmStarts = 0, 0, 0
		cap.report = fmt.Sprintf("%+v", flat)
		caps = append(caps, cap)
		cur = dst
	}
	return caps, nil
}

// capture snapshots checksums and at-rest re-encoded UISR blobs of
// every VM on h.
func capture(h hv.Hypervisor) (hopCapture, error) {
	cap := hopCapture{kind: h.Kind(), sums: map[string]uint64{}, blobs: map[string][]byte{}}
	vms := h.VMs()
	sort.Slice(vms, func(i, j int) bool { return vms[i].Config.Name < vms[j].Config.Name })
	for _, vm := range vms {
		sum, err := vm.Space.ChecksumAll()
		if err != nil {
			return cap, err
		}
		cap.sums[vm.Config.Name] = sum
		if err := h.Pause(vm.ID); err != nil {
			return cap, err
		}
		st, err := h.SaveUISR(vm.ID)
		if err != nil {
			return cap, err
		}
		if err := h.Resume(vm.ID); err != nil {
			return cap, err
		}
		st.MemMap = nil
		blob, err := uisr.Encode(st)
		if err != nil {
			return cap, err
		}
		cap.blobs[vm.Config.Name] = blob
	}
	return cap, nil
}

// CheckRoundTrip runs the scenario cold and cached and verifies every
// differential equivalence claim. A non-nil error is a real divergence:
// the message carries section-level blob diagnostics, and ReproBundle
// renders a replayable approximation for the chaos harness.
func CheckRoundTrip(p RoundTripParams) error {
	cold, err := runRoundTrip(p, nil)
	if err != nil {
		return fmt.Errorf("cold run: %w", err)
	}
	cache := tpcache.New()
	warm, err := runRoundTrip(p, cache)
	if err != nil {
		return fmt.Errorf("cached run: %w", err)
	}

	// The cached run must actually exercise the warm path, or the
	// cold/cached equivalence below proves nothing.
	if st := cache.Stats(); st.Hits == 0 || st.Misses == 0 {
		return fmt.Errorf("cache never reached steady state over %d hops: %v", len(warm), st)
	}

	for _, caps := range [][]hopCapture{cold, warm} {
		// Guest memory must survive every hop bit-exact.
		for hop, cap := range caps {
			if !reflect.DeepEqual(cap.sums, caps[0].sums) {
				return fmt.Errorf("guest checksums diverged at hop %d: %v vs %v", hop, cap.sums, caps[0].sums)
			}
		}
		// Fixed point: once a VM has completed a full cycle, every later
		// visit to the same hypervisor kind must re-encode to the same
		// bytes. (Hop 0's blobs may legitimately differ from hop 2's:
		// the first Xen→KVM translation applies the documented one-way
		// §4.2.1 transforms to the pristine boot state.)
		for hop := 3; hop < len(caps); hop++ {
			prev := caps[hop-2]
			if err := diffBlobs(prev.blobs, caps[hop].blobs); err != nil {
				return fmt.Errorf("re-encoded UISR not at fixed point (%v hop %d vs %d): %w",
					caps[hop].kind, hop-2, hop, err)
			}
		}
	}

	// Cold vs cached: byte-identical state and reports at every hop.
	for hop := range cold {
		if !reflect.DeepEqual(cold[hop].sums, warm[hop].sums) {
			return fmt.Errorf("cached guest checksums differ from cold at hop %d", hop)
		}
		if err := diffBlobs(cold[hop].blobs, warm[hop].blobs); err != nil {
			return fmt.Errorf("cached UISR blobs differ from cold at hop %d: %w", hop, err)
		}
		if cold[hop].report != warm[hop].report {
			return fmt.Errorf("cached report differs from cold at hop %d:\n%s\nvs\n%s",
				hop, cold[hop].report, warm[hop].report)
		}
	}
	return nil
}

// diffBlobs compares two per-VM blob maps, attributing the first
// divergence to a VM and a UISR section.
func diffBlobs(a, b map[string][]byte) error {
	if len(a) != len(b) {
		return fmt.Errorf("vm count differs: %d vs %d", len(a), len(b))
	}
	names := make([]string, 0, len(a))
	for name := range a {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if _, ok := b[name]; !ok {
			return fmt.Errorf("vm %s missing", name)
		}
		if d := uisr.DiffBlobs(a[name], b[name]); d != "" {
			return fmt.Errorf("vm %s: %s", name, d)
		}
	}
	return nil
}

// ReproBundle renders a divergence's scenario as a replayable chaos
// trace bundle: the same tenant shape exercised through workload writes
// and repeated cached in-place upgrades. `chaoscheck -replay` runs it
// under the full invariant auditor.
func ReproBundle(p RoundTripParams) ([]byte, error) {
	cfg := chaos.Config{Seed: p.Seed, Hosts: 2, VMs: p.VMs, Cache: true}
	ops := make([]chaos.Op, 0, p.VMs+2*roundTripCycles)
	for i := 0; i < p.VMs; i++ {
		ops = append(ops, chaos.Op{Kind: chaos.OpWorkload, VM: chaosVM(i), Pages: 1 + p.Pages%64})
	}
	for i := 0; i < 2*roundTripCycles; i++ {
		ops = append(ops, chaos.Op{Kind: chaos.OpUpgrade, Host: chaosHost(0)})
	}
	return chaos.NewTraceBundle(cfg, ops).Marshal()
}
