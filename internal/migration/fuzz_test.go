package migration

import (
	"bytes"
	"testing"

	"hypertp/internal/fuzzseed"
	"hypertp/internal/uisr"
)

// fuzzStreamFramingSeeds is the shared seed list: f.Add'ed by the fuzz
// target and mirrored into testdata/fuzz/ by TestFuzzSeedCorpus.
func fuzzStreamFramingSeeds(tb testing.TB) [][]byte {
	tb.Helper()
	st := uisr.SyntheticVM("seed", 1, 2, 64<<20, 5)
	blob, err := uisr.Encode(st)
	if err != nil {
		tb.Fatal(err)
	}
	valid, err := marshalStreamFrame(&StreamFrame{VMName: "vm-0", Pages: 64, State: blob})
	if err != nil {
		tb.Fatal(err)
	}
	empty, err := marshalStreamFrame(&StreamFrame{})
	if err != nil {
		tb.Fatal(err)
	}
	mutated := append([]byte(nil), valid...)
	mutated[8] ^= 0xff // corrupt the name length
	return [][]byte{valid, {}, valid[:9], empty, mutated}
}

func TestFuzzSeedCorpus(t *testing.T) {
	fuzzseed.Check(t, "FuzzStreamFraming", fuzzStreamFramingSeeds(t)...)
}

// FuzzStreamFraming: the stop-and-copy control frame is parsed by the
// receiving proxy from network bytes, so the parser must never panic on
// arbitrary input and anything it accepts must re-marshal to the exact
// bytes it was parsed from.
func FuzzStreamFraming(f *testing.F) {
	for _, seed := range fuzzStreamFramingSeeds(f) {
		f.Add(seed)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		frame, err := parseStreamFrame(data)
		if err != nil {
			return
		}
		re, err := marshalStreamFrame(frame)
		if err != nil {
			t.Fatalf("accepted frame failed to marshal: %v", err)
		}
		if !bytes.Equal(re, data) {
			t.Fatal("parse/marshal round trip not byte-identical")
		}
	})
}
