package migration

import (
	"bytes"
	"testing"

	"hypertp/internal/uisr"
)

// FuzzStreamFraming: the stop-and-copy control frame is parsed by the
// receiving proxy from network bytes, so the parser must never panic on
// arbitrary input and anything it accepts must re-marshal to the exact
// bytes it was parsed from.
func FuzzStreamFraming(f *testing.F) {
	st := uisr.SyntheticVM("seed", 1, 2, 64<<20, 5)
	blob, err := uisr.Encode(st)
	if err != nil {
		f.Fatal(err)
	}
	valid, err := marshalStreamFrame(&StreamFrame{VMName: "vm-0", Pages: 64, State: blob})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add([]byte{})
	f.Add(valid[:9])
	empty, err := marshalStreamFrame(&StreamFrame{})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(empty)
	mutated := append([]byte(nil), valid...)
	mutated[8] ^= 0xff // corrupt the name length
	f.Add(mutated)

	f.Fuzz(func(t *testing.T, data []byte) {
		frame, err := parseStreamFrame(data)
		if err != nil {
			return
		}
		re, err := marshalStreamFrame(frame)
		if err != nil {
			t.Fatalf("accepted frame failed to marshal: %v", err)
		}
		if !bytes.Equal(re, data) {
			t.Fatal("parse/marshal round trip not byte-identical")
		}
	})
}
