package migration

import (
	"testing"
	"time"

	"hypertp/internal/workload"
)

// A live in-guest workload driver produces real dirty pages that the
// pre-copy loop must retransmit — no analytic rate parameter involved.
func TestDriverDirtyPagesForceExtraRounds(t *testing.T) {
	r := newRig(t)
	vm := r.createVM(t, "busy", 1, 1)
	// Write 3000 pages/s across a 64 Mi-page window: fast enough that
	// each ~8.6 s round accumulates a large dirty set.
	drv, err := workload.StartDriver(r.clock, vm.Guest, 3000, 0, 16384, 5)
	if err != nil {
		t.Fatal(err)
	}

	var report *Report
	var gotErr error
	Run(r.clock, Params{
		Link: r.link, Source: r.src,
		Dest: NewReceiver(r.clock, r.destK, 1), VMID: vm.ID,
		// No synthetic rate: all dirtying comes from the driver.
	}, func(rep *Report, err error) {
		report, gotErr = rep, err
		drv.Stop()
	})
	// The driver re-arms itself forever, so drive the clock by horizon
	// instead of draining the queue.
	r.clock.RunUntil(10 * time.Minute)
	if gotErr != nil {
		t.Fatal(gotErr)
	}
	if report == nil {
		t.Fatal("migration never completed")
	}
	if report.Rounds < 2 {
		t.Fatalf("rounds = %d, want > 1 with a live workload", report.Rounds)
	}
	onePass := int64(vm.Config.MemBytes)
	if report.BytesSent <= onePass {
		t.Fatalf("bytes sent %d ≤ one memory pass %d: no retransmission", report.BytesSent, onePass)
	}
	if drv.PagesWritten() == 0 {
		t.Fatal("driver wrote nothing")
	}
	// Every byte the guest wrote — including mid-migration writes that
	// landed before the final pause — is on the destination.
	if err := report.DestVM.Guest.Verify(); err != nil {
		t.Fatalf("guest state lost under live workload: %v", err)
	}
}
