package migration

import (
	"encoding/binary"
	"fmt"
)

// The stop-and-copy control frame. The data plane — the final dirty
// pages themselves — travels as raw 4 KiB pages counted arithmetically;
// the frame is the metadata that precedes them on the wire: which VM,
// how many pages to expect, and the serialized (UISR or native)
// platform state. Framing it for real, instead of estimating "a few
// KB", makes the traffic model track the actual UISR encoding size and
// gives the receiver a parse step worth fuzzing.
//
// Layout (little-endian):
//
//	u32  magic "HTPS"
//	u16  version (currently 1)
//	u16  reserved (must be zero)
//	u16  VM name length, then the name bytes
//	u32  page count of the data plane that follows
//	u32  state blob length, then the blob bytes
const (
	streamMagic   uint32 = 0x53505448 // "HTPS"
	streamVersion uint16 = 1
)

// maxStreamName bounds the VM-name field; maxStreamState bounds the
// platform-state blob (far above any real UISR encoding). Both exist so
// a corrupt length field fails parsing instead of a huge allocation.
const (
	maxStreamName  = 1 << 10
	maxStreamState = 64 << 20
)

// StreamFrame is the parsed control frame.
type StreamFrame struct {
	VMName string
	Pages  uint32 // 4 KiB data-plane pages that follow the frame
	State  []byte // serialized platform state (UISR blob or native)
}

// marshalStreamFrame renders the frame to wire bytes.
func marshalStreamFrame(f *StreamFrame) ([]byte, error) {
	if len(f.VMName) > maxStreamName {
		return nil, fmt.Errorf("migration: stream frame: VM name %d bytes exceeds %d", len(f.VMName), maxStreamName)
	}
	if len(f.State) > maxStreamState {
		return nil, fmt.Errorf("migration: stream frame: state blob %d bytes exceeds %d", len(f.State), maxStreamState)
	}
	out := make([]byte, 0, 18+len(f.VMName)+len(f.State))
	out = binary.LittleEndian.AppendUint32(out, streamMagic)
	out = binary.LittleEndian.AppendUint16(out, streamVersion)
	out = binary.LittleEndian.AppendUint16(out, 0)
	out = binary.LittleEndian.AppendUint16(out, uint16(len(f.VMName)))
	out = append(out, f.VMName...)
	out = binary.LittleEndian.AppendUint32(out, f.Pages)
	out = binary.LittleEndian.AppendUint32(out, uint32(len(f.State)))
	out = append(out, f.State...)
	return out, nil
}

// parseStreamFrame decodes wire bytes back into a frame, rejecting
// anything malformed: bad magic, unknown version, nonzero reserved
// bits, truncated or oversized length fields, or trailing garbage.
func parseStreamFrame(data []byte) (*StreamFrame, error) {
	if len(data) < 10 {
		return nil, fmt.Errorf("migration: stream frame: %d bytes, need at least 10", len(data))
	}
	if m := binary.LittleEndian.Uint32(data[0:]); m != streamMagic {
		return nil, fmt.Errorf("migration: stream frame: bad magic %#x", m)
	}
	if v := binary.LittleEndian.Uint16(data[4:]); v != streamVersion {
		return nil, fmt.Errorf("migration: stream frame: unsupported version %d", v)
	}
	if r := binary.LittleEndian.Uint16(data[6:]); r != 0 {
		return nil, fmt.Errorf("migration: stream frame: reserved bits %#x set", r)
	}
	nameLen := int(binary.LittleEndian.Uint16(data[8:]))
	if nameLen > maxStreamName {
		return nil, fmt.Errorf("migration: stream frame: VM name %d bytes exceeds %d", nameLen, maxStreamName)
	}
	off := 10
	if len(data) < off+nameLen+8 {
		return nil, fmt.Errorf("migration: stream frame: truncated at VM name")
	}
	name := string(data[off : off+nameLen])
	off += nameLen
	pages := binary.LittleEndian.Uint32(data[off:])
	stateLen := int(binary.LittleEndian.Uint32(data[off+4:]))
	if stateLen > maxStreamState {
		return nil, fmt.Errorf("migration: stream frame: state blob %d bytes exceeds %d", stateLen, maxStreamState)
	}
	off += 8
	if len(data) != off+stateLen {
		return nil, fmt.Errorf("migration: stream frame: %d bytes, header promises %d", len(data), off+stateLen)
	}
	st := make([]byte, stateLen)
	copy(st, data[off:])
	return &StreamFrame{VMName: name, Pages: pages, State: st}, nil
}
