package migration

import (
	"errors"
	"testing"
	"time"

	"hypertp/internal/fault"
	"hypertp/internal/hterr"
	"hypertp/internal/hv"
	"hypertp/internal/hv/kvm"
	"hypertp/internal/hv/xen"
	"hypertp/internal/hw"
	"hypertp/internal/report"
	"hypertp/internal/simnet"
	"hypertp/internal/simtime"
)

// rig is a two-machine migration testbed: Xen source, configurable
// destination, 1 Gbps link — the paper's M1 pair.
type rig struct {
	clock *simtime.Clock
	link  *simnet.Link
	src   *xen.Xen
	destX *xen.Xen
	destK *kvm.KVM
}

func newRig(t *testing.T) *rig {
	t.Helper()
	clock := simtime.NewClock()
	srcM := hw.NewMachine(clock, hw.M1())
	dstM1 := hw.NewMachine(clock, hw.M1())
	dstM2 := hw.NewMachine(clock, hw.M1())
	src, err := xen.Boot(srcM)
	if err != nil {
		t.Fatal(err)
	}
	dx, err := xen.Boot(dstM1)
	if err != nil {
		t.Fatal(err)
	}
	dk, err := kvm.Boot(dstM2)
	if err != nil {
		t.Fatal(err)
	}
	return &rig{
		clock: clock,
		link:  simnet.NewLink(clock, "m1-m1", simnet.Gbps1, 100*time.Microsecond),
		src:   src,
		destX: dx,
		destK: dk,
	}
}

func (r *rig) createVM(t *testing.T, name string, vcpus int, memGiB int) *hv.VM {
	t.Helper()
	vm, err := r.src.CreateVM(hv.Config{
		Name: name, VCPUs: vcpus, MemBytes: uint64(memGiB) << 30,
		HugePages: true, Seed: 42,
	})
	if err != nil {
		t.Fatal(err)
	}
	return vm
}

func migrate(t *testing.T, r *rig, dest *Receiver, vmid hv.VMID, dirtyRate float64) *Report {
	t.Helper()
	var report *Report
	var gotErr error
	Run(r.clock, Params{
		Link: r.link, Source: r.src, Dest: dest, VMID: vmid,
		DirtyRatePagesPerSec: dirtyRate,
	}, func(rep *Report, err error) { report, gotErr = rep, err })
	r.clock.Run()
	if gotErr != nil {
		t.Fatal(gotErr)
	}
	if report == nil {
		t.Fatal("migration never completed")
	}
	return report
}

// Table 4 anchor: a 1 vCPU / 1 GB idle VM takes ~9.5 s to migrate;
// Xen→Xen downtime is ~134 ms while MigrationTP (→kvmtool) is ~5 ms,
// roughly 27x lower.
func TestTable4Anchors(t *testing.T) {
	r := newRig(t)
	vmA := r.createVM(t, "idle-a", 1, 1)
	repXen := migrate(t, r, NewReceiver(r.clock, r.destX, 1), vmA.ID, 0)

	vmB := r.createVM(t, "idle-b", 1, 1)
	repTP := migrate(t, r, NewReceiver(r.clock, r.destK, 1), vmB.ID, 0)

	for _, rep := range []*Report{repXen, repTP} {
		if rep.TotalTime < 8*time.Second || rep.TotalTime > 11*time.Second {
			t.Fatalf("%s migration time = %v, want ~9.5s", rep.VMName, rep.TotalTime)
		}
	}
	if repXen.Downtime < 100*time.Millisecond || repXen.Downtime > 200*time.Millisecond {
		t.Fatalf("Xen→Xen downtime = %v, want ~134ms", repXen.Downtime)
	}
	if repTP.Downtime < 3*time.Millisecond || repTP.Downtime > 10*time.Millisecond {
		t.Fatalf("MigrationTP downtime = %v, want ~5ms", repTP.Downtime)
	}
	if ratio := float64(repXen.Downtime) / float64(repTP.Downtime); ratio < 10 {
		t.Fatalf("downtime ratio = %.1f, want ≫ 10 (paper: 27x)", ratio)
	}
	if repXen.Heterogeneous {
		t.Fatal("Xen→Xen flagged heterogeneous")
	}
	if !repTP.Heterogeneous {
		t.Fatal("Xen→KVM not flagged heterogeneous")
	}
}

func TestMigrationTimeScalesWithMemory(t *testing.T) {
	r := newRig(t)
	vm1 := r.createVM(t, "small", 1, 1)
	rep1 := migrate(t, r, NewReceiver(r.clock, r.destK, 1), vm1.ID, 0)
	vm4 := r.createVM(t, "big", 1, 4)
	rep4 := migrate(t, r, NewReceiver(r.clock, r.destK, 2), vm4.ID, 0)
	ratio := float64(rep4.TotalTime) / float64(rep1.TotalTime)
	if ratio < 3.5 || ratio > 4.5 {
		t.Fatalf("4 GB / 1 GB time ratio = %.2f, want ~4 (Fig. 9 linearity)", ratio)
	}
}

func TestVCPUCountDoesNotAffectMigrationTime(t *testing.T) {
	r := newRig(t)
	vm1 := r.createVM(t, "one", 1, 1)
	rep1 := migrate(t, r, NewReceiver(r.clock, r.destK, 1), vm1.ID, 0)
	vm8 := r.createVM(t, "eight", 8, 1)
	rep8 := migrate(t, r, NewReceiver(r.clock, r.destK, 2), vm8.ID, 0)
	diff := rep8.TotalTime - rep1.TotalTime
	if diff < 0 {
		diff = -diff
	}
	if diff > 500*time.Millisecond {
		t.Fatalf("migration time varies %v with vCPUs, want ~flat (Fig. 9)", diff)
	}
	// Downtime grows slightly with vCPUs (more state in the stop phase).
	if rep8.Downtime <= rep1.Downtime {
		t.Fatalf("downtime did not grow with vCPUs: %v vs %v", rep1.Downtime, rep8.Downtime)
	}
}

func TestDirtyWorkloadAddsRounds(t *testing.T) {
	r := newRig(t)
	idle := r.createVM(t, "idle", 1, 1)
	repIdle := migrate(t, r, NewReceiver(r.clock, r.destK, 1), idle.ID, 0)
	busy := r.createVM(t, "busy", 1, 1)
	repBusy := migrate(t, r, NewReceiver(r.clock, r.destK, 2), busy.ID, 4000)
	if repIdle.Rounds != 1 {
		t.Fatalf("idle VM rounds = %d, want 1", repIdle.Rounds)
	}
	if repBusy.Rounds <= repIdle.Rounds {
		t.Fatalf("busy VM rounds = %d, want > 1", repBusy.Rounds)
	}
	if repBusy.BytesSent <= repIdle.BytesSent {
		t.Fatal("busy VM sent no extra traffic")
	}
	if repBusy.TotalTime <= repIdle.TotalTime {
		t.Fatal("busy VM migration not longer")
	}
}

func TestGuestStatePreservedAcrossMigration(t *testing.T) {
	r := newRig(t)
	vm := r.createVM(t, "data", 2, 1)
	if err := vm.Guest.WriteWorkingSet(100, 200); err != nil {
		t.Fatal(err)
	}
	g := vm.Guest
	sumBefore, err := vm.Space.ChecksumAll()
	if err != nil {
		t.Fatal(err)
	}
	rep := migrate(t, r, NewReceiver(r.clock, r.destK, 1), vm.ID, 0)
	if err := g.Verify(); err != nil {
		t.Fatalf("guest state lost: %v", err)
	}
	sumAfter, err := rep.DestVM.Space.ChecksumAll()
	if err != nil {
		t.Fatal(err)
	}
	if sumBefore != sumAfter {
		t.Fatal("destination image differs from source")
	}
	// Source side is gone.
	if len(r.src.VMs()) != 0 {
		t.Fatal("source VM still present")
	}
	if rep.DestVM.Paused() {
		t.Fatal("destination VM not resumed")
	}
}

func TestConcurrentMigrationsShareLinkAndQueueOnXen(t *testing.T) {
	r := newRig(t)
	recv := NewReceiver(r.clock, r.destX, 7)
	const n = 4
	reports := make([]*Report, 0, n)
	for i := 0; i < n; i++ {
		vm := r.createVM(t, "vm", 1, 1)
		Run(r.clock, Params{Link: r.link, Source: r.src, Dest: recv, VMID: vm.ID},
			func(rep *Report, err error) {
				if err != nil {
					t.Error(err)
					return
				}
				reports = append(reports, rep)
			})
	}
	r.clock.Run()
	if len(reports) != n {
		t.Fatalf("%d migrations completed, want %d", len(reports), n)
	}
	// Total wall time ≈ n * solo time (bandwidth shared).
	if r.clock.Now() < 30*time.Second || r.clock.Now() > 50*time.Second {
		t.Fatalf("4 concurrent 1 GB migrations took %v, want ~38s", r.clock.Now())
	}
	// Xen's sequential receive spreads downtimes: max ≫ min.
	var min, max time.Duration
	for i, rep := range reports {
		if i == 0 || rep.Downtime < min {
			min = rep.Downtime
		}
		if rep.Downtime > max {
			max = rep.Downtime
		}
	}
	if max < 2*min {
		t.Fatalf("Xen receive downtime spread too small: min %v max %v", min, max)
	}
}

func TestKVMToolReceiverConstantDowntime(t *testing.T) {
	r := newRig(t)
	recv := NewReceiver(r.clock, r.destK, 7)
	const n = 4
	var downtimes []time.Duration
	for i := 0; i < n; i++ {
		vm := r.createVM(t, "vm", 1, 1)
		Run(r.clock, Params{Link: r.link, Source: r.src, Dest: recv, VMID: vm.ID},
			func(rep *Report, err error) {
				if err != nil {
					t.Error(err)
					return
				}
				downtimes = append(downtimes, rep.Downtime)
			})
	}
	r.clock.Run()
	for _, d := range downtimes {
		if d > 20*time.Millisecond {
			t.Fatalf("kvmtool downtime = %v, want constant ~5ms", d)
		}
	}
}

func TestRunErrors(t *testing.T) {
	r := newRig(t)
	gotErr := func(p Params) error {
		var err error
		Run(r.clock, p, func(_ *Report, e error) { err = e })
		r.clock.Run()
		return err
	}
	recv := NewReceiver(r.clock, r.destK, 1)
	if err := gotErr(Params{Link: r.link, Source: r.src, Dest: recv, VMID: 99}); err == nil {
		t.Fatal("unknown VM accepted")
	}
	vm := r.createVM(t, "paused", 1, 1)
	r.src.Pause(vm.ID)
	if err := gotErr(Params{Link: r.link, Source: r.src, Dest: recv, VMID: vm.ID}); err == nil {
		t.Fatal("paused VM accepted")
	}
}

func TestDriversSurviveMigration(t *testing.T) {
	r := newRig(t)
	vm := r.createVM(t, "drv", 1, 1)
	g := vm.Guest
	// Migration does not use the unplug protocol; drivers stay running.
	rep := migrate(t, r, NewReceiver(r.clock, r.destK, 1), vm.ID, 0)
	if !g.AllDriversRunning() {
		t.Fatal("drivers not running after migration")
	}
	if rep.DestVM.Guest != g {
		t.Fatal("guest not attached to destination VM")
	}
}

// §4.2.3: pass-through devices forbid live migration; only InPlaceTP can
// transplant such VMs.
func TestPassthroughVMRefusesMigration(t *testing.T) {
	r := newRig(t)
	vm, err := r.src.CreateVM(hv.Config{
		Name: "gpu-vm", VCPUs: 1, MemBytes: 1 << 30, HugePages: true,
		Seed: 3, PassthroughDevices: []string{"gpu0"},
	})
	if err != nil {
		t.Fatal(err)
	}
	var gotErr error
	Run(r.clock, Params{
		Link: r.link, Source: r.src,
		Dest: NewReceiver(r.clock, r.destK, 1), VMID: vm.ID,
	}, func(_ *Report, e error) { gotErr = e })
	r.clock.Run()
	if gotErr == nil {
		t.Fatal("migration of pass-through VM accepted")
	}
	// The VM is untouched: still present and running on the source.
	if got, ok := r.src.LookupVM(vm.ID); !ok || got.Paused() {
		t.Fatal("refused migration disturbed the VM")
	}
}

// A link failure mid-migration surfaces as an error and leaves the source
// VM intact (paused at worst, never destroyed).
func TestLinkAbortFailsMigrationCleanly(t *testing.T) {
	r := newRig(t)
	vm := r.createVM(t, "doomed", 1, 1)
	var gotErr error
	var report *Report
	Run(r.clock, Params{
		Link: r.link, Source: r.src,
		Dest: NewReceiver(r.clock, r.destK, 1), VMID: vm.ID,
	}, func(rep *Report, err error) { report, gotErr = rep, err })
	// Let the first round get underway, then cut the link by aborting
	// all of its in-flight transfers.
	r.clock.RunUntil(2 * time.Second)
	abortAllTransfers(t, r)
	r.clock.Run()
	if gotErr == nil {
		t.Fatal("aborted migration reported success")
	}
	if report != nil {
		t.Fatal("aborted migration produced a report")
	}
	// Source VM still exists.
	if _, ok := r.src.LookupVM(vm.ID); !ok {
		t.Fatal("source VM destroyed by failed migration")
	}
}

// abortAllTransfers models a link failure: every in-flight transfer is
// severed.
func abortAllTransfers(t *testing.T, r *rig) {
	t.Helper()
	if r.link.ActiveTransfers() == 0 {
		t.Fatal("no transfer to abort")
	}
	r.link.AbortAll()
}

// Auto-converge: a guest dirtying pages near the link rate would blow the
// downtime budget; throttling it shrinks the final stop-and-copy set.
func TestAutoConvergeShrinksDowntime(t *testing.T) {
	// ~30500 pages/s on a ~30500 pages/s link: barely divergent.
	const hotRate = 31000

	run := func(auto bool, seed uint64) *Report {
		r := newRig(t)
		vm := r.createVM(t, "hot", 1, 1)
		var report *Report
		var gotErr error
		Run(r.clock, Params{
			Link: r.link, Source: r.src,
			Dest:                 NewReceiver(r.clock, r.destK, seed),
			VMID:                 vm.ID,
			DirtyRatePagesPerSec: hotRate,
			AutoConverge:         auto,
		}, func(rep *Report, err error) { report, gotErr = rep, err })
		r.clock.Run()
		if gotErr != nil {
			t.Fatal(gotErr)
		}
		return report
	}

	plain := run(false, 1)
	throttled := run(true, 2)
	if throttled.ThrottleLevel == 0 {
		t.Fatal("auto-converge never escalated")
	}
	if plain.ThrottleLevel != 0 {
		t.Fatal("throttle applied without AutoConverge")
	}
	if throttled.Downtime >= plain.Downtime {
		t.Fatalf("auto-converge did not shrink downtime: %v vs %v",
			throttled.Downtime, plain.Downtime)
	}
	// The throttled migration pays with more rounds/time, not more
	// downtime.
	if throttled.Rounds <= plain.Rounds {
		t.Fatal("auto-converge did not buy extra rounds")
	}
}

// An injected link sever mid-stream must be absorbed by the retry layer:
// the attempt rolls back (source resumed, partial destination destroyed)
// and the restarted pre-copy completes with the guest image intact.
func TestRetryRecoversFromSeveredLink(t *testing.T) {
	r := newRig(t)
	vm := r.createVM(t, "flaky", 2, 1)
	sumBefore, err := vm.Space.ChecksumAll()
	if err != nil {
		t.Fatal(err)
	}
	r.link.SetFaults(fault.NewPlan(1, 0).ForceAt(fault.SiteLinkAbort, 1).SetClock(r.clock))
	recv := NewReceiver(r.clock, r.destK, 7)
	var rep *Report
	var gotErr error
	Run(r.clock, Params{
		Link: r.link, Source: r.src, Dest: recv, VMID: vm.ID,
		Retry: fault.DefaultRetryPolicy(),
	}, func(rr *Report, e error) { rep, gotErr = rr, e })
	r.clock.Run()
	if gotErr != nil {
		t.Fatal(gotErr)
	}
	if rep.Attempts != 2 || rep.Outcome != report.OutcomeRecovered {
		t.Fatalf("attempts=%d outcome=%q, want 2/recovered", rep.Attempts, rep.Outcome)
	}
	sumAfter, err := rep.DestVM.Space.ChecksumAll()
	if err != nil {
		t.Fatal(err)
	}
	if sumAfter != sumBefore {
		t.Fatal("guest image changed across fault + retry")
	}
	if _, ok := r.src.LookupVM(vm.ID); ok {
		t.Fatal("source VM still present after completed migration")
	}
	if s := rep.Summary(); s.Kind != "migration" || s.Attempts != 2 || s.Faults != 1 {
		t.Fatalf("summary = %+v", s)
	}
}

// When every attempt's stream is severed, the migration aborts to
// source: the error wraps ErrAborted, and the VM still runs on the
// source, unpaused, with its memory untouched.
func TestExhaustedRetriesAbortToSource(t *testing.T) {
	r := newRig(t)
	vm := r.createVM(t, "doomed", 2, 1)
	sumBefore, _ := vm.Space.ChecksumAll()
	plan := fault.NewPlan(1, 0).
		ForceAt(fault.SiteLinkAbort, 1).
		ForceAt(fault.SiteLinkAbort, 2).
		SetClock(r.clock)
	r.link.SetFaults(plan)
	recv := NewReceiver(r.clock, r.destK, 7)
	var gotErr error
	Run(r.clock, Params{
		Link: r.link, Source: r.src, Dest: recv, VMID: vm.ID,
		Retry: fault.RetryPolicy{MaxAttempts: 2, BaseBackoff: 10 * time.Millisecond, Multiplier: 2},
	}, func(_ *Report, e error) { gotErr = e })
	r.clock.Run()
	if !errors.Is(gotErr, hterr.ErrAborted) || !errors.Is(gotErr, hterr.ErrInjected) {
		t.Fatalf("err = %v, want aborted+injected", gotErr)
	}
	got, ok := r.src.LookupVM(vm.ID)
	if !ok || got.Paused() {
		t.Fatalf("source VM not running after abort (ok=%v)", ok)
	}
	sumAfter, _ := vm.Space.ChecksumAll()
	if sumAfter != sumBefore {
		t.Fatal("source memory changed by aborted migration")
	}
	if n := len(r.destK.VMs()); n != 0 {
		t.Fatalf("%d orphan VMs left on destination after abort", n)
	}
}

// Precondition failures are classified incompatible, not retryable.
func TestPassthroughClassifiedIncompatible(t *testing.T) {
	r := newRig(t)
	vm, err := r.src.CreateVM(hv.Config{
		Name: "pinned", VCPUs: 1, MemBytes: 1 << 30,
		HugePages: true, Seed: 42, PassthroughDevices: []string{"nic0"},
	})
	if err != nil {
		t.Fatal(err)
	}
	recv := NewReceiver(r.clock, r.destK, 7)
	var gotErr error
	Run(r.clock, Params{Link: r.link, Source: r.src, Dest: recv, VMID: vm.ID},
		func(_ *Report, e error) { gotErr = e })
	r.clock.Run()
	if !errors.Is(gotErr, hterr.ErrIncompatibleTarget) {
		t.Fatalf("err = %v, want ErrIncompatibleTarget", gotErr)
	}
	if hterr.IsRetryable(gotErr) {
		t.Fatal("incompatible target must not be retryable")
	}
}
