// Package migration implements pre-copy live VM migration (§3.3, §4.3):
// the Clark-style loop of iterative memory copies while the VM runs,
// followed by a stop-and-copy phase, over a bandwidth-shared network link.
//
// The same engine serves two roles in the reproduction:
//
//   - the homogeneous Xen→Xen baseline the paper compares against
//     (Table 4, Figs. 8-9), where the destination is another Xen whose
//     heavyweight, *sequential* restore path produces both the higher
//     downtime and the multi-VM downtime variance the paper observes; and
//   - MigrationTP (heterogeneous), where the source proxy translates
//     VM_i State to UISR, the destination proxy restores it into the
//     target hypervisor's format, and kvmtool's lightweight finalize
//     yields the 27x lower downtime of Table 4.
//
// Guest page *contents* are replayed onto the destination at stop time —
// equivalent to correct retransmission of every dirtied page — while the
// traffic volume on the simulated link reflects the actual rounds, so
// migration time and downtime come from the mechanism, not a table.
package migration

import (
	"fmt"
	"time"

	"hypertp/internal/fault"
	"hypertp/internal/guest"
	"hypertp/internal/hterr"
	"hypertp/internal/hv"
	"hypertp/internal/hw"
	"hypertp/internal/obs"
	"hypertp/internal/report"
	"hypertp/internal/simnet"
	"hypertp/internal/simtime"
	"hypertp/internal/uisr"
)

// Defaults for the pre-copy loop, matching Xen's migration defaults in
// spirit: iterate until the dirty set is small or we give up.
const (
	DefaultMaxRounds          = 5
	DefaultStopThresholdPages = 64
)

// Receiver wraps the destination hypervisor with its finalize behaviour.
// Xen's restore path processes incoming VMs one at a time (§5.2.2); the
// kvmtool path is parallel and light.
type Receiver struct {
	HV    hv.Hypervisor
	clock *simtime.Clock
	// sequential serializes finalize operations (Xen restore); it also
	// selects the heavyweight branch of CostModel.MigFinalize.
	sequential bool
	cost       hw.CostModel
	busyUntil  time.Duration
	rng        *simtime.Rand
	seqVar     float64
}

// NewReceiver builds a receiver for the destination hypervisor, deriving
// finalize behaviour from the destination kind and machine profile.
func NewReceiver(clock *simtime.Clock, dest hv.Hypervisor, seed uint64) *Receiver {
	r := &Receiver{
		HV:    dest,
		clock: clock,
		cost:  dest.Machine().Profile.Cost,
		rng:   simtime.NewRand(seed),
	}
	if dest.Kind() == hv.KindXen {
		r.sequential = true
		r.seqVar = r.cost.MigXenReceiveSeqVar
	}
	return r
}

// finalizeWindow reserves the receiver for one VM's restore and returns
// (start, duration). For a sequential receiver, restores queue: a VM whose
// stop-and-copy lands while another restore runs waits its turn, which is
// what spreads the downtime of concurrently migrated VMs (Fig. 8's box
// plots).
func (r *Receiver) finalizeWindow(vcpus int) (start time.Duration, dur time.Duration) {
	dur = r.cost.MigFinalize(r.sequential, vcpus)
	now := r.clock.Now()
	if !r.sequential {
		return now, dur
	}
	// Sequential path: jitter models the variance of Xen's restore.
	dur = time.Duration(r.rng.Jitter(float64(dur), r.seqVar*0.3))
	start = now
	if r.busyUntil > start {
		start = r.busyUntil
	}
	r.busyUntil = start + dur
	return start, dur
}

// Params configures one VM migration.
type Params struct {
	Link   *simnet.Link
	Source hv.Hypervisor
	Dest   *Receiver
	VMID   hv.VMID

	// DirtyRatePagesPerSec is the guest's write rate while running —
	// the workload-dependent input to the pre-copy loop. Idle VMs use 0.
	DirtyRatePagesPerSec float64

	// MaxRounds and StopThresholdPages bound the loop; zero values take
	// the defaults.
	MaxRounds          int
	StopThresholdPages int

	// AutoConverge enables progressive guest throttling when the dirty
	// set stops shrinking (the standard live-migration countermeasure
	// for write rates near the link rate): each escalation cuts the
	// guest's effective dirty rate by 30%, guaranteeing the stop-and-
	// copy set eventually fits the threshold.
	AutoConverge bool

	// Obs, when non-nil, records a span per migration with children for
	// each pre-copy round, the stop-and-copy phase and the destination
	// finalize window, plus round/byte/downtime metrics. Migration spans
	// are detached (callback-driven work cannot use the current-span
	// stack), so concurrent migrations each get their own subtree.
	Obs *obs.Recorder

	// Retry bounds recovery from retryable stream failures (an injected
	// link sever): a failed attempt is rolled back — destination VM
	// destroyed, source resumed — and the whole pre-copy restarts after
	// an exponential virtual-time backoff. The zero value keeps the old
	// single-attempt semantics. Non-retryable failures, and exhausted
	// budgets, abort to source: the final error wraps hterr.ErrAborted
	// and the VM keeps running where it started.
	Retry fault.RetryPolicy
}

// Report describes one completed migration.
type Report struct {
	VMName string
	// TotalTime is first-byte to VM-running-on-destination.
	TotalTime time.Duration
	// Downtime is the stop-and-copy window during which the VM runs
	// nowhere.
	Downtime time.Duration
	// Rounds is the number of pre-copy iterations (≥1).
	Rounds int
	// BytesSent is the total traffic, including retransmissions.
	BytesSent int64
	// ThrottleLevel is the number of auto-converge escalations applied
	// (0 when the loop converged unaided).
	ThrottleLevel int
	// DestVM is the VM handle on the destination hypervisor.
	DestVM *hv.VM
	// Heterogeneous records whether a UISR translation was involved
	// (MigrationTP) or the stream stayed in native format (Xen→Xen).
	Heterogeneous bool
	// Attempts is how many pre-copy attempts the retry layer ran (≥ 1).
	Attempts int
	// Faults is the number of injected stream faults the migration
	// absorbed on its way to completing.
	Faults int
	// Outcome is the terminal state: OutcomeCompleted on a clean first
	// attempt, OutcomeRecovered when retries rode through faults.
	Outcome report.Outcome
}

// Summary implements report.Report.
func (r *Report) Summary() report.Summary {
	out := r.Outcome
	if out == "" {
		out = report.OutcomeCompleted
	}
	attempts := r.Attempts
	if attempts < 1 {
		attempts = 1
	}
	return report.Summary{
		Kind:           "migration",
		Outcome:        out,
		Attempts:       attempts,
		Downtime:       r.Downtime,
		VirtualElapsed: r.TotalTime,
		Faults:         r.Faults,
	}
}

// Run migrates one VM and calls done with the report at the virtual time
// the migration completes. It returns immediately; the work happens on
// the clock's event queue so several migrations interleave realistically.
func Run(clock *simtime.Clock, p Params, done func(*Report, error)) {
	root := p.Obs.StartDetached("migration", obs.A("vm_id", int(p.VMID)))
	root.SetTrack("migration")
	inner := done
	done = func(r *Report, err error) {
		if err != nil {
			root.SetAttr("error", err.Error())
		} else if r != nil {
			root.SetAttr("rounds", r.Rounds)
			root.SetAttr("bytes_sent", r.BytesSent)
			root.SetAttr("downtime", r.Downtime)
			mets := p.Obs.Metrics()
			mets.Counter("migration.rounds", "rounds").Add(int64(r.Rounds))
			mets.Counter("migration.bytes_sent", "bytes").Add(r.BytesSent)
			mets.Histogram("migration.downtime_virtual_s", "s",
				obs.ExpBuckets(1e-3, 2, 16)).Observe(r.Downtime.Seconds())
		}
		root.End()
		inner(r, err)
	}
	fail := func(err error) { done(nil, err) }
	if p.MaxRounds <= 0 {
		p.MaxRounds = DefaultMaxRounds
	}
	if p.StopThresholdPages <= 0 {
		p.StopThresholdPages = DefaultStopThresholdPages
	}
	vm, ok := p.Source.LookupVM(p.VMID)
	if !ok {
		fail(hterr.Incompatible(fmt.Errorf("migration: no VM %d on source", p.VMID)))
		return
	}
	if vm.Paused() {
		fail(hterr.Incompatible(fmt.Errorf("migration: VM %q is paused", vm.Config.Name)))
		return
	}
	// Pass-through devices pin the VM to its hardware: live migration is
	// impossible (§4.2.3); only InPlaceTP can transplant such VMs.
	if g := vm.Guest; g != nil {
		for _, d := range g.Drivers() {
			if d.Class == guest.DevicePassthrough {
				fail(hterr.Incompatible(fmt.Errorf("migration: VM %q has pass-through device %q and cannot be live-migrated",
					vm.Config.Name, d.Name)))
				return
			}
		}
	}
	root.SetAttr("vm", vm.Config.Name)

	// The retry layer: each attempt is a complete pre-copy; a failed
	// attempt is rolled back by the migrator (source resumed, partial
	// destination VM destroyed) before the callback fires, so between
	// attempts — and after a final abort — the VM runs on the source.
	overallStart := clock.Now()
	attempt := 1
	var cumRounds int
	var cumBytes int64
	var runAttempt func()
	runAttempt = func() {
		aspan := root.Child("attempt", obs.A("attempt", attempt))
		if err := p.Source.EnableDirtyLog(p.VMID); err != nil {
			aspan.End()
			fail(err)
			return
		}
		m := &migrator{
			clock:  clock,
			p:      p,
			vm:     vm,
			span:   aspan,
			start:  overallStart,
			report: &Report{VMName: vm.Config.Name, Heterogeneous: p.Source.Kind() != p.Dest.HV.Kind()},
		}
		m.done = func(r *Report, err error) {
			if err != nil {
				aspan.SetAttr("error", err.Error())
			}
			aspan.End()
			if err == nil {
				r.Attempts = attempt
				r.Faults = attempt - 1
				r.Rounds += cumRounds
				r.BytesSent += cumBytes
				r.Outcome = report.OutcomeCompleted
				if attempt > 1 {
					r.Outcome = report.OutcomeRecovered
				}
				done(r, nil)
				return
			}
			cumRounds += m.report.Rounds
			cumBytes += m.report.BytesSent
			if hterr.IsRetryable(err) && attempt < p.Retry.Attempts() {
				if werr := p.Retry.Exceeded(attempt, clock.Now()-overallStart); werr != nil {
					// The watchdog turns a would-be endless retry loop
					// into a failure: the attempt was already rolled
					// back, so the VM still runs on the source.
					fail(hterr.Abort(fmt.Errorf("migration: %s: %w (last error: %v)",
						vm.Config.Name, werr, err)))
					return
				}
				backoff := p.Retry.Backoff(attempt)
				attempt++
				p.Obs.Event("migration.retry",
					fmt.Sprintf("%s: attempt %d in %v after: %v", vm.Config.Name, attempt, backoff, err))
				p.Obs.Metrics().Counter("migration.retries", "attempts").Add(1)
				clock.After(backoff, "mig-retry:"+vm.Config.Name, func(*simtime.Clock) { runAttempt() })
				return
			}
			if hterr.Class(err) == hterr.ErrVMLost {
				// Past migration's point of no return (source VM
				// already destroyed): calling this a clean abort
				// would be a lie.
				fail(err)
				return
			}
			fail(hterr.Abort(err))
		}
		m.round(int64(vm.Space.NumPages()))
	}
	runAttempt()
}

type migrator struct {
	clock      *simtime.Clock
	p          Params
	vm         *hv.VM
	span       *obs.Span
	roundSpan  *obs.Span
	scSpan     *obs.Span
	start      time.Duration
	roundStart time.Duration
	report     *Report
	done       func(*Report, error)
	prevDirty  int64

	// Rollback bookkeeping: what this attempt has to undo on failure.
	paused     bool   // source VM paused by stop-and-copy
	destVM     *hv.VM // partially-restored destination VM
	sourceGone bool   // source VM destroyed — the point of no return
}

// fail abandons the attempt. Before the point of no return it rolls the
// attempt back so the VM keeps running on the source — destroy any
// partially-restored destination VM, resume the source, stop dirty
// tracking — and reports the cause for the retry layer to route. Past
// it, nothing can be undone: the error is classified ErrVMLost.
func (m *migrator) fail(err error) {
	m.roundSpan.End()
	m.scSpan.End()
	if m.sourceGone {
		m.done(nil, hterr.VMLost(err))
		return
	}
	rb := m.span.Child("rollback")
	if m.destVM != nil {
		_ = m.p.Dest.HV.DestroyVM(m.destVM.ID)
		m.destVM = nil
	}
	if m.paused {
		_ = m.p.Source.Resume(m.p.VMID)
		m.paused = false
	}
	_ = m.p.Source.DisableDirtyLog(m.p.VMID)
	rb.End()
	m.p.Obs.Metrics().Counter("migration.rollbacks", "attempts").Add(1)
	m.done(nil, err)
}

// maxThrottleLevels caps auto-converge escalation (matching QEMU's
// default 99%-throttle ceiling in spirit).
const maxThrottleLevels = 5

// round transfers npages of guest memory, then inspects the dirty set.
func (m *migrator) round(npages int64) {
	m.report.Rounds++
	m.roundStart = m.clock.Now()
	bytes := npages * hw.PageSize4K
	m.report.BytesSent += bytes
	m.roundSpan = m.span.Child("precopy-round",
		obs.A("round", m.report.Rounds), obs.A("pages", npages))
	m.p.Link.Start(fmt.Sprintf("precopy:%s:r%d", m.vm.Config.Name, m.report.Rounds), bytes,
		func(err error) {
			if err != nil {
				m.fail(fmt.Errorf("migration: %s: %w", m.vm.Config.Name, err))
				return
			}
			m.afterRound()
		})
}

func (m *migrator) afterRound() {
	m.roundSpan.End()
	// Pages dirtied while this round ran: the modeled workload rate
	// plus anything the (simulated) guest actually wrote through the
	// dirty log.
	elapsed := (m.clock.Now() - m.roundStart).Seconds()
	logged, err := m.p.Source.FetchAndClearDirty(m.p.VMID)
	if err != nil {
		m.fail(err)
		return
	}
	// Auto-converge throttling scales the guest's effective write rate.
	rate := m.p.DirtyRatePagesPerSec
	for i := 0; i < m.report.ThrottleLevel; i++ {
		rate *= 0.7
	}
	dirty := int64(rate*elapsed) + int64(len(logged))
	if dirty > int64(m.vm.Space.NumPages()) {
		dirty = int64(m.vm.Space.NumPages())
	}
	if m.p.AutoConverge && m.prevDirty > 0 &&
		dirty >= m.prevDirty*9/10 && m.report.ThrottleLevel < maxThrottleLevels {
		// The dirty set is not shrinking: escalate the throttle. The
		// escalation buys extra rounds — a throttled guest is the
		// price of convergence, not a reason to give up.
		m.report.ThrottleLevel++
		m.p.MaxRounds++
	}
	m.prevDirty = dirty
	if dirty > int64(m.p.StopThresholdPages) && m.report.Rounds < m.p.MaxRounds {
		m.round(dirty)
		return
	}
	m.stopAndCopy(dirty)
}

// stopAndCopy pauses the VM, ships the final dirty set plus the (UISR or
// native) platform state, restores on the destination, and resumes.
func (m *migrator) stopAndCopy(dirtyPages int64) {
	pausedAt := m.clock.Now()
	sc := m.span.Child("stop-and-copy", obs.A("dirty_pages", dirtyPages))
	m.scSpan = sc
	if err := m.p.Source.Pause(m.p.VMID); err != nil {
		m.fail(err)
		return
	}
	m.paused = true
	// Final transfer: remaining dirty pages + the serialized platform
	// state (a few KB; see Fig. 14's UISR sizes).
	st, err := m.p.Source.SaveUISR(m.p.VMID)
	if err != nil {
		m.fail(err)
		return
	}
	// The control frame carries the actually-encoded platform state, so
	// its wire size tracks the real UISR blob (Fig. 14's sizes) rather
	// than an estimate; the dirty pages are the data plane behind it.
	blob, err := uisr.Encode(st)
	if err != nil {
		m.fail(err)
		return
	}
	frame, err := marshalStreamFrame(&StreamFrame{
		VMName: m.vm.Config.Name, Pages: uint32(dirtyPages), State: blob})
	if err != nil {
		m.fail(err)
		return
	}
	bytes := dirtyPages*hw.PageSize4K + int64(len(frame))
	m.report.BytesSent += bytes
	m.p.Link.Start("stopcopy:"+m.vm.Config.Name, bytes, func(err error) {
		if err != nil {
			m.fail(err)
			return
		}
		// Destination restore, possibly queued behind other VMs.
		start, dur := m.p.Dest.finalizeWindow(len(st.VCPUs))
		fin := m.span.ChildAt("finalize", start, obs.A("queued_for", start-m.clock.Now()))
		m.clock.Schedule(start+dur, "mig-finalize:"+m.vm.Config.Name, func(*simtime.Clock) {
			fin.EndAt(start + dur)
			sc.End()
			m.finish(pausedAt, st)
		})
	})
}

func (m *migrator) finish(pausedAt time.Duration, st *uisr.VMState) {
	// MemMap is deliberately absent (§4.3): guest pages were copied by
	// the stream and the destination re-places them.
	st.MemMap = nil
	destVM, err := m.p.Dest.HV.RestoreUISR(st, hv.RestoreOptions{
		Mode:              hv.RestoreAllocate,
		InPlaceCompatible: m.vm.Config.InPlaceCompatible,
	})
	if err != nil {
		m.fail(err)
		return
	}
	m.destVM = destVM
	// Replay the final guest image (the net effect of all pre-copy
	// rounds plus the stop-and-copy).
	if err := m.vm.Space.CopyContentsTo(destVM.Space); err != nil {
		m.fail(err)
		return
	}
	// Hand the guest software stack over and resume.
	g := m.vm.Guest
	if err := m.p.Source.DisableDirtyLog(m.p.VMID); err != nil {
		m.fail(err)
		return
	}
	if err := m.p.Source.DestroyVM(m.p.VMID); err != nil {
		m.fail(err)
		return
	}
	m.sourceGone = true
	m.paused = false
	if g != nil {
		if err := m.p.Dest.HV.AttachGuest(destVM.ID, g); err != nil {
			m.fail(err)
			return
		}
	}
	if err := m.p.Dest.HV.Resume(destVM.ID); err != nil {
		m.fail(err)
		return
	}
	m.report.DestVM = destVM
	m.report.Downtime = m.clock.Now() - pausedAt
	m.report.TotalTime = m.clock.Now() - m.start
	m.done(m.report, nil)
}
