package chaos

import (
	"fmt"

	"hypertp/internal/simtime"
)

// The operation vocabulary. Ops reference hosts and VMs by name; the
// executor resolves names against the current fleet state, so a
// generated op stays meaningful (or degrades to a recorded skip) when
// shrinking removes the ops before it.
const (
	// OpWorkload makes a guest write a working set and re-baselines its
	// memory checksum.
	OpWorkload = "workload"
	// OpMigrate live-migrates a VM to a target host.
	OpMigrate = "migrate"
	// OpUpgrade transplants a host in place to the other hypervisor
	// kind (Xen↔KVM, whichever direction applies at execution time).
	OpUpgrade = "upgrade"
	// OpRespond runs the fleet-wide CVE response for the CVE in Target.
	OpRespond = "respond-cve"
	// OpRespondFleet runs the same CVE response on the concurrent fleet
	// scheduler (internal/sched) under capacity limits, exercising the
	// DAG path against the same invariant audits as the serial one.
	OpRespondFleet = "respond-fleet"
	// OpQuarantine drains and fences a host; OpReturn brings it back.
	OpQuarantine = "quarantine"
	OpReturn     = "return"
	// OpLinkDown severs the fabric link; OpLinkUp restores it.
	OpLinkDown = "link-down"
	OpLinkUp   = "link-up"
	// OpSweep runs the clock-less rolling-upgrade planner (the cluster
	// package) as a self-contained consistency exercise.
	OpSweep = "cluster-sweep"
	// OpWarmPoolRefill tops up the transplant warm pool: pre-staged UISR
	// translations later transplants consume as warm starts. A recorded
	// skip when the run has caching disabled.
	OpWarmPoolRefill = "warm-pool-refill"
	// OpCrashHV fail-stops one host's hypervisor (or hangs it when
	// Target is "hang") and runs the emergency recovery; a host whose
	// salvage freezes stays downed and a later OpCrashHV retries it.
	// Generated only on crash-enabled runs (Config.Crash).
	OpCrashHV = "crash-hv"
	// OpCrashStorm crashes Count healthy hosts at once and sweeps the
	// whole downed set through the scheduled emergency recovery under
	// kexec limits.
	OpCrashStorm = "crash-storm"
	// OpCrashDuringTransplant upgrades a host with a fail-stop forced at
	// the worst point — after the pause phase, before translation — so
	// the driver's self-healing double-fault path runs.
	OpCrashDuringTransplant = "crash-during-tp"
)

// Op is one generated operation. The zero fields are omitted from
// bundles to keep them readable.
type Op struct {
	Kind   string `json:"kind"`
	Host   string `json:"host,omitempty"`
	VM     string `json:"vm,omitempty"`
	Target string `json:"target,omitempty"`
	Pages  int    `json:"pages,omitempty"`
	// Count sizes multi-host ops (how many hosts an OpCrashStorm downs).
	Count int `json:"count,omitempty"`
	// Fault seeds this op's fault plan (0 = no injection for this op).
	Fault uint64 `json:"fault,omitempty"`
}

// respondCVEs are the named critical vulnerabilities the generator draws
// from: one affecting both pool members (the VENOM refusal path), one
// Xen-only and two KVM-only (the upgrade paths in each direction).
var respondCVEs = []string{"CVE-2015-3456", "CVE-2016-6258", "CVE-2017-12188", "CVE-2013-0311"}

// KnownCVEs returns the generator's CVE vocabulary, so external trace
// producers (the differential fuzzer's derived traces) draw respond ops
// from the same set the vulndb knows.
func KnownCVEs() []string {
	return append([]string(nil), respondCVEs...)
}

// Generate derives cfg.Ops operations from cfg.Seed via SplitMix64 — the
// same stream every time, on every platform, at any worker count.
func Generate(cfg Config) []Op {
	cfg = cfg.withDefaults()
	rng := simtime.NewRand(cfg.Seed)
	host := func() string { return fmt.Sprintf("host-%02d", rng.Intn(cfg.Hosts)) }
	vm := func() string { return fmt.Sprintf("vm-%02d", rng.Intn(cfg.VMs)) }
	ops := make([]Op, 0, cfg.Ops)
	for i := 0; i < cfg.Ops; i++ {
		var op Op
		switch w := rng.Intn(100); {
		// The crash vocabulary is carved out of the low end of the weight
		// space only when Config.Crash is set; on crash-free runs these
		// guards never match and no extra rng draws occur, so every
		// pinned pre-crash op stream stays byte-identical.
		case cfg.Crash && w < 8:
			op = Op{Kind: OpCrashHV, Host: host()}
			if rng.Intn(4) == 0 {
				op.Target = "hang"
			}
		case cfg.Crash && w < 12:
			op = Op{Kind: OpCrashStorm, Count: 2 + rng.Intn(3)}
		case cfg.Crash && w < 15:
			op = Op{Kind: OpCrashDuringTransplant, Host: host()}
		case w < 30:
			op = Op{Kind: OpWorkload, VM: vm(), Pages: 1 + rng.Intn(64)}
		case w < 50:
			op = Op{Kind: OpMigrate, VM: vm(), Target: host()}
		case w < 68:
			op = Op{Kind: OpUpgrade, Host: host()}
		case w < 75:
			op = Op{Kind: OpQuarantine, Host: host()}
		case w < 82:
			op = Op{Kind: OpReturn, Host: host()}
		case w < 86:
			op = Op{Kind: OpLinkDown}
		case w < 90:
			op = Op{Kind: OpLinkUp}
		case w < 93:
			op = Op{Kind: OpRespond, Target: respondCVEs[rng.Intn(len(respondCVEs))]}
		case w < 96:
			op = Op{Kind: OpRespondFleet, Target: respondCVEs[rng.Intn(len(respondCVEs))]}
		case w < 98:
			op = Op{Kind: OpWarmPoolRefill}
		default:
			op = Op{Kind: OpSweep}
		}
		// Half the ops run under a fresh deterministic fault plan when
		// injection is enabled; the seed is drawn unconditionally so
		// the op stream does not depend on the fault rate.
		if seed := rng.Uint64() | 1; rng.Float64() < 0.5 && cfg.FaultRate > 0 {
			op.Fault = seed
		}
		ops = append(ops, op)
	}
	return ops
}
