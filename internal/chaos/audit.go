package chaos

import (
	"errors"
	"fmt"

	"hypertp/internal/hterr"
	"hypertp/internal/hv"
	"hypertp/internal/obs"
)

// audit re-checks every global invariant after op i has quiesced. It
// returns the first violation found (checks run in a fixed order, so
// the same broken state always reports the same failure), or nil.
func (h *harness) audit(i int, op Op) *Failure {
	sp := h.rec.Start("chaos.audit", obs.A("op", i))
	defer sp.End()
	mets := h.rec.Metrics()
	mets.Counter("chaos.audits", "audits").Add(1)
	fail := func(inv, detail string) *Failure {
		mets.Counter("chaos.violations", "violations").Add(1)
		return &Failure{OpIndex: i, Op: op, Invariant: inv, Detail: detail}
	}

	// Liveness: an op that charged more virtual time than the budget
	// livelocked — retry loops that never converge, transfers that
	// never complete. (An op that *failed* with a watchdog error is the
	// opposite: the stack's own watchdog working as designed.)
	if h.lastElapsed > h.cfg.OpBudget {
		return fail("watchdog", fmt.Sprintf("op charged %v of virtual time, budget %v",
			h.lastElapsed, h.cfg.OpBudget))
	}

	// Frame ownership on every live machine: no leaks, no frames owned
	// by dead VMs, no free frames with residue, no accounting drift.
	for _, name := range h.hosts {
		if h.dead[name] {
			continue
		}
		node, _ := h.nova.Node(name)
		hyp := node.Driver.Hypervisor()
		live := make(map[int]bool)
		for _, vm := range hyp.VMs() {
			live[int(vm.ID)] = true
		}
		if vs := hyp.Machine().Mem.AuditOwners(live); len(vs) > 0 {
			return fail("frame-ownership", fmt.Sprintf("%s: %v (%d violations)", name, vs[0], len(vs)))
		}
	}

	// Guest memory integrity: every tracked VM's checksum matches its
	// post-workload baseline — transplants and migrations must preserve
	// memory bit-for-bit — and every journaled guest write reads back.
	for _, name := range h.vms {
		vm := h.lookupVM(name)
		if vm == nil {
			return fail("bookkeeping", fmt.Sprintf("database row for %s points at a missing VM", name))
		}
		if vm.Guest != nil {
			if err := vm.Guest.Verify(); err != nil {
				return fail("memory-integrity", fmt.Sprintf("%s: journaled write lost: %v", name, err))
			}
		}
		sum, err := vm.Space.ChecksumAll()
		if err != nil {
			return fail("memory-integrity", fmt.Sprintf("%s: checksum failed: %v", name, err))
		}
		if base, ok := h.baseline[name]; ok && sum != base {
			return fail("memory-integrity", fmt.Sprintf("%s: checksum %#x, baseline %#x", name, sum, base))
		}
	}

	// Fleet bookkeeping: database placement, ids and kinds against
	// per-host hypervisor truth.
	for _, name := range h.hosts {
		if h.dead[name] {
			continue
		}
		if d := h.checkBookkeeping(name); d != "" {
			return fail("bookkeeping", d)
		}
	}
	// The planner sweep validates its own cluster; surfaced here so a
	// planner inconsistency is a violation, not just an op error.
	if h.lastErr != nil && errors.Is(h.lastErr, hterr.ErrInvariantViolated) {
		return fail("bookkeeping", h.lastErr.Error())
	}

	// Vulnerability state, checked exactly once after a successful
	// fleet response: no healthy host may still run an affected
	// hypervisor.
	if cve := h.lastRespond; cve != "" {
		h.lastRespond = ""
		if rec, ok := h.db.Lookup(cve); ok {
			for _, name := range h.hosts {
				// Downed hosts are frozen mid-recovery: their hypervisor
				// is fenced off the fleet, so like quarantined ones they
				// are degraded, not vulnerable exposure.
				if h.dead[name] || h.nova.Quarantined(name) || h.nova.HostDowned(name) {
					continue
				}
				node, _ := h.nova.Node(name)
				if kind := node.Driver.HypervisorKind(); rec.Affected(kind.String()) {
					return fail("vulndb", fmt.Sprintf("%s still runs %v after the response to %s", name, kind, cve))
				}
			}
		}
	}

	// Span-tree structure: the observability forest must stay
	// well-nested on the monotone virtual clock. Streaming runs retain
	// no forest — the same checks run over the flight-recorder snapshot
	// (pinned fault evidence plus the most recent ring of spans).
	if h.flight != nil {
		if vs := obs.AuditRecords(h.flight.Snapshot()); len(vs) > 0 {
			return fail("span-structure", fmt.Sprintf("%v (%d violations)", vs[0], len(vs)))
		}
	} else if vs := h.rec.AuditSpans(); len(vs) > 0 {
		return fail("span-structure", fmt.Sprintf("%v (%d violations)", vs[0], len(vs)))
	}
	return nil
}

// checkBookkeeping compares one host's database rows against its
// hypervisor's actual VM set. Empty string means consistent.
func (h *harness) checkBookkeeping(host string) string {
	node, ok := h.nova.Node(host)
	if !ok {
		return fmt.Sprintf("node %s vanished from the manager", host)
	}
	kind := node.Driver.HypervisorKind()
	onHost := make(map[string]hv.VMID)
	for _, vm := range node.Driver.VMs() {
		onHost[vm.Config.Name] = vm.ID
	}
	rows := 0
	for _, rec := range h.nova.Records() {
		if rec.Node != host {
			continue
		}
		rows++
		id, there := onHost[rec.Name]
		if !there {
			return fmt.Sprintf("%s: database places %s here but the hypervisor does not have it", host, rec.Name)
		}
		if id != rec.ID {
			return fmt.Sprintf("%s: %s runs as id %d, database says %d", host, rec.Name, id, rec.ID)
		}
		if rec.Kind != kind {
			return fmt.Sprintf("%s: runs %v, database says %s is on %v", host, kind, rec.Name, rec.Kind)
		}
	}
	if rows != len(onHost) {
		return fmt.Sprintf("%s: hypervisor hosts %d VMs, database places %d here", host, len(onHost), rows)
	}
	return ""
}
