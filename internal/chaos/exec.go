package chaos

import (
	"errors"
	"fmt"

	"hypertp/internal/cluster"
	"hypertp/internal/core"
	"hypertp/internal/fault"
	"hypertp/internal/hterr"
	"hypertp/internal/hv"
	"hypertp/internal/hw"
	"hypertp/internal/sched"
)

// deadVMID is the never-allocated VM id the "leak-frame" breaker tags
// its planted frame with.
const deadVMID = 1 << 20

// opts is the transplant configuration every op runs with: the paper's
// defaults, plus the shared cache on cached soaks.
func (h *harness) opts() core.Options {
	o := core.DefaultOptions()
	o.Cache = h.cache
	return o
}

// step runs one op to quiescence: arm the op's fault plan, apply, drain
// the event queue, detach the plan, reconcile losses, and apply the
// deliberate breaker (if armed). Returns the deterministic trace line.
func (h *harness) step(op *Op) string {
	start := h.clock.Now()
	mets := h.rec.Metrics()
	mets.Counter("chaos.ops", "ops").Add(1)
	preQ := make(map[string]bool)
	for _, name := range h.hosts {
		preQ[name] = h.nova.Quarantined(name)
	}
	if op.Fault != 0 && h.cfg.FaultRate > 0 {
		h.nova.SetFaults(fault.NewPlan(op.Fault, h.cfg.FaultRate))
	}
	line, err := h.apply(op)
	h.clock.Run()
	h.nova.SetFaults(nil)
	h.lastErr = err
	h.lastElapsed = h.clock.Now() - start
	if err != nil {
		mets.Counter("chaos.op_errors", "ops").Add(1)
		line = fmt.Sprintf("error[%s]: %v", hterr.Label(hterr.Class(err)), err)
		if errors.Is(err, hterr.ErrVMLost) {
			// A host died mid-transplant. Nova reconciles by fencing it
			// and purging its rows; any freshly fenced host whose
			// machine truth no longer matches the database is declared
			// dead so later audits skip the wreck. The loss itself is a
			// recorded outcome — Nova forgetting to reconcile is what
			// the bookkeeping audit would catch.
			for _, name := range h.hosts {
				if !h.dead[name] && !preQ[name] && h.nova.Quarantined(name) &&
					h.checkBookkeeping(name) != "" {
					h.dead[name] = true
					mets.Counter("chaos.hosts_lost", "hosts").Add(1)
				}
			}
		}
	}
	h.applyBreak(op, err)
	h.syncVMs()
	return line
}

// apply executes one op. A nil error with a "skip:" line means the op
// no longer applies to the current fleet state (its VM or host is
// gone) — a recorded outcome, deliberately not a failure, so shrinking
// can drop earlier ops without invalidating later ones.
func (h *harness) apply(op *Op) (string, error) {
	switch op.Kind {
	case OpWorkload:
		vm := h.lookupVM(op.VM)
		if vm == nil || vm.Guest == nil {
			return "skip: vm gone", nil
		}
		pages := op.Pages
		if pages <= 0 {
			pages = 8
		}
		if err := vm.Guest.WriteWorkingSet(hw.GFN(pages%64), pages); err != nil {
			return "", err
		}
		if err := h.refreshBaseline(op.VM); err != nil {
			return "", err
		}
		return fmt.Sprintf("%s wrote %d pages", op.VM, pages), nil

	case OpMigrate:
		rec, ok := h.nova.Record(op.VM)
		if !ok {
			return "skip: vm gone", nil
		}
		if h.dead[op.Target] {
			return "skip: target dead", nil
		}
		if rec.Node == op.Target {
			return "skip: already placed", nil
		}
		if _, err := h.nova.LiveMigrate(op.VM, op.Target); err != nil {
			return "", err
		}
		return fmt.Sprintf("%s %s→%s", op.VM, rec.Node, op.Target), nil

	case OpUpgrade:
		if h.dead[op.Host] {
			return "skip: host dead", nil
		}
		node, ok := h.nova.Node(op.Host)
		if !ok {
			return "", fmt.Errorf("chaos: unknown host %q", op.Host)
		}
		target := hv.KindKVM
		if node.Driver.HypervisorKind() == hv.KindKVM {
			target = hv.KindXen
		}
		up, err := h.nova.HostLiveUpgrade(op.Host, target, h.opts())
		if err != nil {
			return "", err
		}
		return fmt.Sprintf("%s → %v (evacuated %d)", op.Host, target, len(up.EvacuatedVMs)), nil

	case OpQuarantine:
		if h.dead[op.Host] {
			return "skip: host dead", nil
		}
		replanned, stranded, err := h.nova.Quarantine(op.Host)
		if err != nil {
			return "", err
		}
		return fmt.Sprintf("%s fenced (replanned %d, stranded %d)", op.Host, len(replanned), len(stranded)), nil

	case OpReturn:
		if h.dead[op.Host] {
			return "skip: host dead", nil
		}
		if err := h.nova.Return(op.Host); err != nil {
			return "", err
		}
		return op.Host + " returned", nil

	case OpLinkDown:
		h.fabric.SetDown(true)
		return "fabric severed", nil

	case OpLinkUp:
		h.fabric.SetDown(false)
		return "fabric restored", nil

	case OpRespond:
		resp, err := h.nova.RespondToCVE(h.db, op.Target, []string{"xen", "kvm"}, h.opts())
		if err != nil {
			return "", err
		}
		h.lastRespond = op.Target
		return fmt.Sprintf("%s: upgraded %d, skipped %d, quarantined %d",
			op.Target, len(resp.UpgradedNodes), len(resp.SkippedNodes), len(resp.QuarantinedNodes)), nil

	case OpRespondFleet:
		// The concurrent scheduler path: same response, DAG execution
		// under capacity limits. Limits are restored before returning so
		// later OpRespond ops keep exercising the serial path.
		limits := sched.Limits{MaxKexecs: 2, LinkStreams: 2}
		h.nova.SetFleetLimits(&limits)
		resp, err := h.nova.RespondToCVE(h.db, op.Target, []string{"xen", "kvm"}, h.opts())
		h.nova.SetFleetLimits(nil)
		if err != nil {
			return "", err
		}
		h.lastRespond = op.Target
		return fmt.Sprintf("fleet %s: upgraded %d, skipped %d, quarantined %d",
			op.Target, len(resp.UpgradedNodes), len(resp.SkippedNodes), len(resp.QuarantinedNodes)), nil

	case OpWarmPoolRefill:
		if h.cache == nil {
			return "skip: caching disabled", nil
		}
		staged, err := h.nova.WarmPoolRefill()
		if err != nil {
			return "", err
		}
		return fmt.Sprintf("warm pool +%d (%d staged)", staged, h.cache.WarmSlots()), nil

	case OpSweep:
		return h.sweep(op)

	case OpCrashHV:
		if h.dead[op.Host] {
			return "skip: host dead", nil
		}
		if h.nova.Quarantined(op.Host) {
			return "skip: host quarantined", nil
		}
		if h.nova.HostDowned(op.Host) {
			// A previous recovery froze mid-salvage and left the host
			// downed; this op is the retry, not a second crash.
			rec, err := h.nova.RecoverHost(op.Host, h.opts())
			if err != nil {
				return "", err
			}
			return fmt.Sprintf("%s re-recovered → %v", op.Host, rec.Target), nil
		}
		node, ok := h.nova.Node(op.Host)
		if !ok {
			return "", fmt.Errorf("chaos: unknown host %q", op.Host)
		}
		c, ok := node.Driver.Hypervisor().(hv.Crashable)
		if !ok {
			return "skip: not crashable", nil
		}
		if c.Crashed() || c.Hung() {
			// Crashed outside the ledger (a double-fault whose self-heal
			// froze); the next upgrade or response self-heals it.
			return "skip: already failed", nil
		}
		mode, failHost := "crashed", h.nova.CrashHost
		if op.Target == "hang" {
			mode, failHost = "hung", h.nova.HangHost
		}
		ev, err := failHost(op.Host, "chaos")
		if err != nil {
			return "", err
		}
		rec, err := h.nova.RecoverHost(op.Host, h.opts())
		if err != nil {
			// Frozen recovery: the host stays downed (retryable by a later
			// OpCrashHV); a lost host is reconciled by step's handler.
			return "", err
		}
		return fmt.Sprintf("%s %s, detected +%v, recovered → %v", op.Host, mode, ev.Latency(), rec.Target), nil

	case OpCrashStorm:
		count := op.Count
		if count <= 0 {
			count = 2
		}
		crashed := 0
		for _, name := range h.hosts {
			if crashed >= count {
				break
			}
			if h.dead[name] || h.nova.Quarantined(name) || h.nova.HostDowned(name) {
				continue
			}
			node, ok := h.nova.Node(name)
			if !ok {
				continue
			}
			c, ok := node.Driver.Hypervisor().(hv.Crashable)
			if !ok || c.Crashed() || c.Hung() {
				continue
			}
			if _, err := h.nova.CrashHost(name, "storm"); err != nil {
				return "", err
			}
			crashed++
		}
		// The scheduled fleet recovery sweeps everything downed — the
		// fresh crashes plus any leftover from earlier frozen recoveries.
		limits := sched.Limits{MaxKexecs: 2}
		h.nova.SetFleetLimits(&limits)
		resp, err := h.nova.RecoverFleet(h.opts())
		h.nova.SetFleetLimits(nil)
		if err != nil {
			return "", err
		}
		if len(resp.DownHosts) == 0 {
			return "skip: no healthy hosts to storm", nil
		}
		// RecoverFleet reconciles lost hosts itself (no VMLost error
		// escapes for step's handler to see), so the wrecks are declared
		// dead here for the audits to skip.
		for _, name := range resp.LostNodes {
			if !h.dead[name] {
				h.dead[name] = true
				h.rec.Metrics().Counter("chaos.hosts_lost", "hosts").Add(1)
			}
		}
		return fmt.Sprintf("storm downed %d: recovered %d, frozen %d, lost %d (%s)",
			len(resp.DownHosts), len(resp.RecoveredNodes), len(resp.FrozenNodes), len(resp.LostNodes), resp.Outcome), nil

	case OpCrashDuringTransplant:
		if h.dead[op.Host] {
			return "skip: host dead", nil
		}
		if h.nova.Quarantined(op.Host) {
			return "skip: host quarantined", nil
		}
		if h.nova.HostDowned(op.Host) {
			return "skip: host downed", nil
		}
		node, ok := h.nova.Node(op.Host)
		if !ok {
			return "", fmt.Errorf("chaos: unknown host %q", op.Host)
		}
		c, ok := node.Driver.Hypervisor().(hv.Crashable)
		if !ok {
			return "skip: not crashable", nil
		}
		if c.Crashed() || c.Hung() {
			return "skip: already failed", nil
		}
		target := hv.KindKVM
		if node.Driver.HypervisorKind() == hv.KindKVM {
			target = hv.KindXen
		}
		// Force the fail-stop at the worst point — guests paused, state
		// not yet translated — so the upgrade must ride the driver's
		// double-fault self-heal instead of completing normally.
		rate := 0.0
		if op.Fault != 0 && h.cfg.FaultRate > 0 {
			rate = h.cfg.FaultRate
		}
		h.nova.SetFaults(fault.NewPlan(op.Fault|1, rate).ForceAt(fault.SiteHVCrashDuringTP, 1))
		up, err := h.nova.HostLiveUpgrade(op.Host, target, h.opts())
		if err != nil {
			return "", err
		}
		emergency := up.Report != nil && up.Report.Emergency
		return fmt.Sprintf("%s crash mid-transplant → %v (emergency=%v)", op.Host, target, emergency), nil
	}
	return "", fmt.Errorf("chaos: unknown op kind %q", op.Kind)
}

// sweep runs the clock-less BtrPlace-style rolling-upgrade planner on a
// self-contained cluster and self-validates the result — the cluster
// package's consistency exercised under the same fault seeds.
func (h *harness) sweep(op *Op) (string, error) {
	c, err := cluster.New(cluster.Config{Hosts: 6, VMsPerHost: 4, StreamFrac: 0.3, CPUFrac: 0.3})
	if err != nil {
		return "", err
	}
	c.SetInPlaceCompatibleFraction(0.7, op.Fault)
	var plan *fault.Plan
	if op.Fault != 0 && h.cfg.FaultRate > 0 {
		plan = fault.NewPlan(op.Fault, h.cfg.FaultRate).Restrict(fault.SiteClusterHost)
	}
	_, res, err := c.ExecuteRollingUpgrade(2, cluster.DefaultExecutionModel(), nil, plan)
	if err != nil {
		return "", err
	}
	if err := c.Validate(); err != nil {
		return "", hterr.InvariantViolated(fmt.Errorf("chaos: planner sweep left the cluster invalid: %w", err))
	}
	return fmt.Sprintf("planned %d migrations (%s)", res.Migrations, res.Outcome), nil
}

// applyBreak is the deliberate invariant breaker behind Config.Break —
// the harness's own negative test, proving the auditor catches what it
// claims to.
func (h *harness) applyBreak(op *Op, opErr error) {
	if h.cfg.Break == "" || opErr != nil {
		return
	}
	switch h.cfg.Break {
	case "leak-frame":
		if op.Kind != OpUpgrade || h.dead[op.Host] {
			return
		}
		node, ok := h.nova.Node(op.Host)
		if !ok {
			return
		}
		// One VM_i State frame tagged to a VM id that never existed:
		// the residue of a forgotten teardown path.
		_, _ = node.Driver.Hypervisor().Machine().Mem.Alloc(1, hw.OwnerVMState, deadVMID)
	case "corrupt-memory":
		if op.Kind != OpWorkload {
			return
		}
		vm := h.lookupVM(op.VM)
		if vm == nil {
			return
		}
		exts := vm.Space.Extents()
		if len(exts) == 0 {
			return
		}
		rec, ok := h.nova.Record(op.VM)
		if !ok {
			return
		}
		node, ok := h.nova.Node(rec.Node)
		if !ok {
			return
		}
		// Flip a guest byte directly in physical memory, behind the
		// guest's write journal.
		_ = node.Driver.Hypervisor().Machine().Mem.Write(hw.MFN(exts[0].MFN), 13, []byte{0xAA})
	}
}
