package chaos

// Shrink reduces a failing op list to a locally minimal prefix that
// still violates the same invariant: first truncate everything after
// the failing op, then greedily drop single ops, re-running the
// deterministic harness on each candidate, until no single removal
// preserves the failure. Every candidate run is a fresh fleet, so the
// result is exact, not heuristic. Returns the minimal ops and the
// failure they reproduce.
func Shrink(cfg Config, ops []Op, fail *Failure) ([]Op, *Failure) {
	cfg = cfg.withDefaults()
	cur := append([]Op(nil), ops[:fail.OpIndex+1]...)
	curFail := fail
	for changed := true; changed; {
		changed = false
		for i := 0; i < len(cur); i++ {
			cand := make([]Op, 0, len(cur)-1)
			cand = append(cand, cur[:i]...)
			cand = append(cand, cur[i+1:]...)
			res, err := RunOps(cfg, cand)
			if err != nil || res.Failure == nil || res.Failure.Invariant != curFail.Invariant {
				continue
			}
			cur = cand[:res.Failure.OpIndex+1]
			curFail = res.Failure
			changed = true
			i--
		}
	}
	return cur, curFail
}
