// Package chaos is the randomized fleet soak harness: a seeded generator
// emits a sequence of fleet operations — in-place transplants in both
// directions, live migrations, CVE responses, guest workload writes,
// host quarantine/return, fabric sever/restore, rolling-upgrade planner
// sweeps — each optionally composed with a deterministic fault plan, and
// a global auditor re-checks the stack's invariants after every step:
//
//   - frame ownership: no physical frame leaked, tagged to a dead VM, or
//     out of sync with the allocator's accounting (hw.AuditOwners);
//   - guest memory integrity: every surviving VM's memory checksum
//     matches its post-workload baseline, and every byte the guest wrote
//     reads back exactly (transplants and migrations preserve memory);
//   - fleet bookkeeping: the Nova database agrees with per-host truth —
//     placement, VM ids, hypervisor kinds;
//   - vulnerability state: after a successful CVE response, no healthy
//     host runs an affected hypervisor;
//   - observability structure: the span forest stays well-nested on the
//     monotone virtual clock;
//   - liveness: every operation completes or rolls back within a
//     virtual-time budget — a livelock is a failure, not a hang.
//
// Everything is deterministic: same seed, same ops, same audit outcome,
// regardless of the worker-pool size. On a violation the failing run
// shrinks to a minimal reproducing op list and serializes to a replay
// bundle (see Shrink, Bundle, cmd/chaoscheck).
package chaos

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"hypertp/internal/fault"
	"hypertp/internal/hterr"
	"hypertp/internal/hv"
	"hypertp/internal/hw"
	"hypertp/internal/obs"
	"hypertp/internal/orchestrator"
	"hypertp/internal/reactive"
	"hypertp/internal/simnet"
	"hypertp/internal/simtime"
	"hypertp/internal/tpcache"
	"hypertp/internal/vulndb"
)

// Config parameterizes one soak run. The zero value is not runnable;
// withDefaults fills in the standard small fleet.
type Config struct {
	// Seed drives both the op generator and every per-op fault plan.
	Seed uint64 `json:"seed"`
	// Ops is the number of operations to generate and execute.
	Ops int `json:"ops"`
	// Hosts is the fleet size; hosts alternate Xen and KVM.
	Hosts int `json:"hosts"`
	// VMs is the tenant population booted before the first op.
	VMs int `json:"vms"`
	// FaultRate is the per-site fault probability for ops that carry a
	// fault plan. Zero disables injection entirely.
	FaultRate float64 `json:"fault_rate"`
	// OpBudget is the virtual-time watchdog budget per operation; an op
	// that charges more is flagged as a livelock. Zero takes a generous
	// default calibrated against the slowest fleet operation.
	OpBudget time.Duration `json:"op_budget,omitempty"`
	// Crash grows the op vocabulary with the reactive-recovery kinds:
	// single-host fail-stops and hangs (OpCrashHV), fleet-wide crash
	// storms swept through the scheduled emergency recovery
	// (OpCrashStorm), and fail-stops forced mid-transplant
	// (OpCrashDuringTransplant). Off by default so existing pinned
	// streams stay byte-identical; a failure detector is attached to
	// Nova only on crash-enabled runs.
	Crash bool `json:"crash,omitempty"`
	// Break arms a deliberate invariant breaker, used to prove the
	// auditor catches what it claims to: "leak-frame" allocates a frame
	// tagged to a dead VM after each transplant, "corrupt-memory"
	// flips a guest byte behind the write journal after each workload.
	Break string `json:"break,omitempty"`
	// Cache enables the transplant cache for the whole soak: every
	// transplant op runs with a shared tpcache.Cache, a warm pool is
	// attached to Nova, and OpWarmPoolRefill ops pre-stage translations.
	// Caching must be invisible to every invariant the auditor holds —
	// identical traces, checksums, and virtual time — which is exactly
	// what a cached soak proves.
	Cache bool `json:"cache,omitempty"`
	// Stream switches the run onto the bounded streaming observability
	// pipeline: ended span trees are flattened into a flight recorder of
	// FlightCap records instead of being retained, so soak memory stays
	// O(FlightCap) rather than O(ops), and the structural span audit
	// runs over the flight-recorder snapshot.
	Stream bool `json:"stream,omitempty"`
	// FlightCap is the flight-recorder capacity when Stream is set; zero
	// takes DefaultFlightCap.
	FlightCap int `json:"flight_cap,omitempty"`
}

// DefaultFlightCap is the streaming flight-recorder capacity: enough to
// hold the spans of the last handful of fleet operations next to a
// violation, small enough that a soak's resident span memory is
// trivially bounded.
const DefaultFlightCap = 512

// DefaultOpBudget bounds one fleet operation in virtual time: far above
// a full CVE response over the default fleet (a dozen multi-second
// boots plus evacuations), far below "hung".
const DefaultOpBudget = 30 * time.Minute

func (c Config) withDefaults() Config {
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Ops <= 0 {
		c.Ops = 100
	}
	if c.Hosts < 2 {
		c.Hosts = 4
	}
	if c.VMs <= 0 {
		c.VMs = 6
	}
	if c.OpBudget <= 0 {
		c.OpBudget = DefaultOpBudget
	}
	if c.Stream && c.FlightCap <= 0 {
		c.FlightCap = DefaultFlightCap
	}
	return c
}

// Failure pins one invariant violation to the op whose audit caught it.
type Failure struct {
	OpIndex int `json:"op_index"`
	Op      Op  `json:"op"`
	// Invariant is the broken invariant's kind: "frame-ownership",
	// "memory-integrity", "bookkeeping", "vulndb", "span-structure",
	// or "watchdog".
	Invariant string `json:"invariant"`
	Detail    string `json:"detail"`
}

// Err renders the failure as a classified error: watchdog flags carry
// hterr.ErrWatchdogExpired, everything else hterr.ErrInvariantViolated.
func (f *Failure) Err() error {
	base := fmt.Errorf("chaos: op %d (%s): %s invariant: %s", f.OpIndex, f.Op.Kind, f.Invariant, f.Detail)
	if f.Invariant == "watchdog" {
		return hterr.WatchdogExpired(base)
	}
	return hterr.InvariantViolated(base)
}

// Result is the outcome of one soak run.
type Result struct {
	Config   Config
	Ops      []Op
	Executed int
	OpErrors int
	Faulted  int // ops that carried a fault plan
	// VirtualElapsed is the fleet clock at the end of the run.
	VirtualElapsed time.Duration
	DeadHosts      []string
	Quarantined    []string
	SurvivingVMs   []string
	// Trace is one deterministic line per executed op.
	Trace []string
	// CacheStats is the shared transplant cache's final census on cached
	// runs (zero value otherwise). Informational: the counters are not
	// part of the determinism contract, the trace and audits are.
	CacheStats tpcache.Stats `json:"cache_stats,omitempty"`
	// Failure is the first violation, nil when every audit passed.
	Failure *Failure

	// Obs and Flight expose the run's recorder and, on streaming runs,
	// its flight recorder, so callers (cmd/chaoscheck) can dump metrics
	// and retained spans as artifacts on a violation. Never serialized
	// into replay bundles.
	Obs    *obs.Recorder       `json:"-"`
	Flight *obs.FlightRecorder `json:"-"`
}

// Summary renders the deterministic run summary — identical for
// identical (seed, ops) regardless of worker count.
func (r *Result) Summary() string {
	counts := map[string]int{}
	for _, op := range r.Ops[:r.Executed] {
		counts[op.Kind]++
	}
	kinds := make([]string, 0, len(counts))
	for k := range counts {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	s := fmt.Sprintf("seed=%d ops=%d executed=%d op-errors=%d faulted=%d virtual=%v\n",
		r.Config.Seed, len(r.Ops), r.Executed, r.OpErrors, r.Faulted, r.VirtualElapsed)
	for _, k := range kinds {
		s += fmt.Sprintf("  %-14s %d\n", k, counts[k])
	}
	s += fmt.Sprintf("  hosts: %d dead, %d quarantined; vms: %d surviving\n",
		len(r.DeadHosts), len(r.Quarantined), len(r.SurvivingVMs))
	if r.Failure != nil {
		s += fmt.Sprintf("  VIOLATION at op %d (%s): %s: %s\n",
			r.Failure.OpIndex, r.Failure.Op.Kind, r.Failure.Invariant, r.Failure.Detail)
	} else {
		s += "  all invariants held\n"
	}
	return s
}

// Run generates cfg.Ops operations from cfg.Seed and executes them with
// a full audit after every step, stopping at the first violation.
func Run(cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	return RunOps(cfg, Generate(cfg))
}

// RunOps executes an explicit op list (a replay, or a shrink candidate)
// under cfg's fleet. The returned error covers harness construction
// only; invariant violations land in Result.Failure.
func RunOps(cfg Config, ops []Op) (*Result, error) {
	cfg = cfg.withDefaults()
	h, err := newHarness(cfg)
	if err != nil {
		return nil, err
	}
	res := &Result{Config: cfg, Ops: ops, Obs: h.rec, Flight: h.flight}
	for i := range ops {
		line := h.step(&ops[i])
		res.Executed++
		if h.lastErr != nil {
			res.OpErrors++
		}
		if ops[i].Fault != 0 && cfg.FaultRate > 0 {
			res.Faulted++
		}
		res.Trace = append(res.Trace, fmt.Sprintf("%3d %-14s %s", i, ops[i].Kind, line))
		if fail := h.audit(i, ops[i]); fail != nil {
			res.Failure = fail
			break
		}
	}
	res.VirtualElapsed = h.clock.Now()
	for _, name := range h.hosts {
		if h.dead[name] {
			res.DeadHosts = append(res.DeadHosts, name)
		} else if h.nova.Quarantined(name) {
			res.Quarantined = append(res.Quarantined, name)
		}
	}
	res.SurvivingVMs = append([]string(nil), h.vms...)
	if h.cache != nil {
		res.CacheStats = h.cache.Stats()
	}
	return res, nil
}

// harness is the live fleet a run executes against.
type harness struct {
	cfg    Config
	clock  *simtime.Clock
	fabric *simnet.Link
	rec    *obs.Recorder
	flight *obs.FlightRecorder // non-nil on streaming runs
	nova   *orchestrator.Nova
	db     *vulndb.Database
	// cache is the shared transplant cache on cached soaks (nil
	// otherwise); opts() threads it into every transplant op.
	cache *tpcache.Cache

	hosts []string        // all node names, sorted
	dead  map[string]bool // hosts that lost VMs — machine state is toast
	vms   []string        // surviving tracked VMs, sorted

	baseline map[string]uint64 // VM name → memory checksum after last workload
	// lastRespond holds the CVE of an immediately preceding successful
	// fleet response, consumed by the vulndb audit.
	lastRespond string
	// lastElapsed is the virtual time the last op charged (watchdog input).
	lastErr     error
	lastElapsed time.Duration
}

func newHarness(cfg Config) (*harness, error) {
	clock := simtime.NewClock()
	fabric := simnet.NewLink(clock, "fabric", simnet.Gbps10, 100*time.Microsecond)
	rec := obs.NewRecorder(clock)
	var flight *obs.FlightRecorder
	if cfg.Stream {
		// Bounded-memory soak: ended span trees stream into a fixed ring
		// and are released from the forest. Fault and retry evidence is
		// pinned so it survives wraparound until the audit reads it.
		flight = obs.NewFlightRecorder(cfg.FlightCap)
		flight.SetPin(pinFaultEvidence)
		rec.AddSink(flight)
		rec.SetRetain(false)
	}
	nova := orchestrator.NewNova(clock, fabric)
	nova.SetRecorder(rec)
	// Every retry loop in the stack runs under a tight virtual-time
	// watchdog so a livelocked op fails inside the per-op budget.
	retry := fault.DefaultRetryPolicy()
	retry.MaxElapsed = 2 * time.Minute
	nova.SetRetry(retry)

	h := &harness{
		cfg: cfg, clock: clock, fabric: fabric, rec: rec, flight: flight, nova: nova,
		db:       vulndb.Load(),
		dead:     make(map[string]bool),
		baseline: make(map[string]uint64),
	}
	if cfg.Cache {
		h.cache = tpcache.New()
		// Pool sized for the whole tenant population; refills are
		// throttled by OpRespondFleet's SpareSlots when limits are live.
		nova.SetWarmPool(h.cache, cfg.VMs)
	}
	if cfg.Crash {
		// The heartbeat monitor shares the soak's seed, so every crash's
		// detection latency is a pure function of (seed, host name).
		nova.SetDetector(reactive.NewDetector(reactive.ProbeConfig{Seed: cfg.Seed}))
	}
	for i := 0; i < cfg.Hosts; i++ {
		kind := hv.KindXen
		if i%2 == 1 {
			kind = hv.KindKVM
		}
		name := fmt.Sprintf("host-%02d", i)
		// A slimmed M1: the paper's cost model with a small enough
		// PhysMem that a many-host fleet stays cheap to audit.
		prof := hw.M1()
		prof.Name = name
		prof.RAMBytes = 2 * hw.GiB
		driver, err := orchestrator.NewLibvirtDriver(clock, hw.NewMachine(clock, prof), kind)
		if err != nil {
			return nil, fmt.Errorf("chaos: boot %s: %w", name, err)
		}
		if err := nova.AddNode(name, driver); err != nil {
			return nil, err
		}
		h.hosts = append(h.hosts, name)
	}
	for i := 0; i < cfg.VMs; i++ {
		name := fmt.Sprintf("vm-%02d", i)
		_, err := nova.BootVM(hv.Config{
			Name: name, VCPUs: 1 + i%2, MemBytes: 64 << 20, HugePages: true,
			Seed: cfg.Seed + uint64(i), InPlaceCompatible: i%4 != 3,
		})
		if err != nil {
			return nil, fmt.Errorf("chaos: boot %s: %w", name, err)
		}
		h.vms = append(h.vms, name)
		// Pre-scenario workload fill; its checksum is the baseline every
		// later audit compares against.
		vm := h.lookupVM(name)
		if vm == nil || vm.Guest == nil {
			return nil, fmt.Errorf("chaos: %s has no guest after boot", name)
		}
		if err := vm.Guest.WriteWorkingSet(0, 32); err != nil {
			return nil, err
		}
		if err := h.refreshBaseline(name); err != nil {
			return nil, err
		}
	}
	return h, nil
}

// lookupVM resolves a tracked VM to its live handle via the Nova row.
func (h *harness) lookupVM(name string) *hv.VM {
	rec, ok := h.nova.Record(name)
	if !ok {
		return nil
	}
	node, ok := h.nova.Node(rec.Node)
	if !ok {
		return nil
	}
	vm, ok := node.Driver.Hypervisor().LookupVM(rec.ID)
	if !ok {
		return nil
	}
	return vm
}

func (h *harness) refreshBaseline(name string) error {
	vm := h.lookupVM(name)
	if vm == nil {
		return fmt.Errorf("chaos: baseline: %s not found", name)
	}
	sum, err := vm.Space.ChecksumAll()
	if err != nil {
		return err
	}
	h.baseline[name] = sum
	return nil
}

// pinFaultEvidence is the streaming flight recorder's pin predicate:
// spans that carry fault injections or retry storms stay resident
// across ring wraparound, because that is exactly the context an
// auditor wants next to a violation.
func pinFaultEvidence(rec obs.SpanRecord) bool {
	if strings.Contains(rec.Name, "fault") {
		return true
	}
	for _, ev := range rec.Events {
		if strings.HasPrefix(ev.Name, "fault.") || strings.HasSuffix(ev.Name, ".retry") {
			return true
		}
	}
	return false
}

// syncVMs drops tracked VMs whose database row vanished — a legitimate,
// reconciled loss (host death) rather than a bookkeeping bug.
func (h *harness) syncVMs() {
	kept := h.vms[:0]
	for _, name := range h.vms {
		if _, ok := h.nova.Record(name); ok {
			kept = append(kept, name)
		} else {
			delete(h.baseline, name)
		}
	}
	h.vms = kept
}
