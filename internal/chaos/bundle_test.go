package chaos

import (
	"bytes"
	"fmt"
	"reflect"
	"strings"
	"testing"
)

// TestBundleVersionMismatch: a bundle written by a future (or past)
// layout must be rejected with an error naming both versions, so the
// operator replaying a CI artifact knows it is a build skew, not a
// corrupt file.
func TestBundleVersionMismatch(t *testing.T) {
	res, err := Run(Config{Seed: 7, Ops: 5, FaultRate: 0})
	if err != nil {
		t.Fatal(err)
	}
	b := NewTraceBundle(Config{Seed: 7, Ops: 5}, res.Ops)
	for _, v := range []int{0, bundleVersion - 1, bundleVersion + 1, 99} {
		b.Version = v
		data, err := b.Marshal()
		if err != nil {
			t.Fatal(err)
		}
		_, err = ParseBundle(data)
		if err == nil {
			t.Fatalf("accepted bundle version %d", v)
		}
		if !strings.Contains(err.Error(), fmt.Sprintf("version %d", v)) ||
			!strings.Contains(err.Error(), fmt.Sprintf("want %d", bundleVersion)) {
			t.Fatalf("version-mismatch error %q does not name both versions", err)
		}
	}
}

// TestTraceBundleRoundTrip: a failure-less trace bundle — the corpus
// format the differential fuzzer records and mutates — marshals without
// failure fields, survives a parse round-trip, and replays cleanly.
func TestTraceBundleRoundTrip(t *testing.T) {
	cfg := Config{Seed: 42, Ops: 12, Hosts: 3, VMs: 4}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Failure != nil {
		t.Fatalf("fault-free recording run failed: %+v", res.Failure)
	}

	b := NewTraceBundle(cfg, res.Ops)
	if b.IsFailure() {
		t.Fatal("trace bundle claims to be a failure bundle")
	}
	data, err := b.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(data, []byte(`"invariant"`)) || bytes.Contains(data, []byte(`"detail"`)) {
		t.Fatalf("trace bundle serialized empty failure fields:\n%s", data)
	}

	parsed, err := ParseBundle(data)
	if err != nil {
		t.Fatal(err)
	}
	if parsed.IsFailure() {
		t.Fatal("parsed trace bundle claims to be a failure bundle")
	}
	if !reflect.DeepEqual(parsed.Ops, b.Ops) {
		t.Fatal("ops changed across marshal/parse round-trip")
	}
	replay, err := parsed.Replay()
	if err != nil {
		t.Fatal(err)
	}
	if replay.Failure != nil {
		t.Fatalf("replaying a clean trace bundle failed: %+v", replay.Failure)
	}

	// Failure bundles still carry (and serialize) the violation.
	fb := NewBundle(cfg, res.Ops, &Failure{Invariant: "frame-ownership", Detail: "x"}, nil)
	if !fb.IsFailure() {
		t.Fatal("failure bundle not flagged as one")
	}
	fdata, err := fb.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(fdata, []byte(`"invariant": "frame-ownership"`)) {
		t.Fatalf("failure bundle dropped its invariant:\n%s", fdata)
	}
}

// TestShrinkIdempotence: Shrink claims local minimality — no single op
// removal preserves the failure — so running it on its own output must
// be a fixed point: shrink(shrink(b)) == shrink(b).
func TestShrinkIdempotence(t *testing.T) {
	cfg := soakConfig()
	cfg.Ops = 40
	cfg.FaultRate = 0
	cfg.Break = "leak-frame"
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Failure == nil {
		t.Fatal("breaker not caught")
	}

	once, failOnce := Shrink(cfg, res.Ops, res.Failure)
	twice, failTwice := Shrink(cfg, once, failOnce)
	if !reflect.DeepEqual(once, twice) {
		t.Fatalf("shrink is not idempotent:\nonce:  %+v\ntwice: %+v", once, twice)
	}
	if failOnce.Invariant != failTwice.Invariant || failOnce.OpIndex != failTwice.OpIndex {
		t.Fatalf("re-shrinking moved the failure: %+v vs %+v", failOnce, failTwice)
	}
}
