package chaos

import (
	"encoding/json"
	"fmt"
)

// bundleVersion gates replay compatibility: a bundle written by one
// build replays only on builds that understand its layout.
const bundleVersion = 1

// Bundle is a self-contained, replayable record of a run: the exact
// config and op list, plus — for failure bundles — what broke.
// Serialized as indented JSON with struct-ordered fields, so identical
// runs produce byte-identical bundles.
//
// Two flavors share the format. A failure bundle (NewBundle) carries
// the violated invariant and its detail so a replay can confirm
// reproduction. A trace bundle (NewTraceBundle) records any run —
// passing or failing — as corpus material for record/replay fuzzing:
// the differential fuzzer mutates recorded op lists and replays them
// under the full invariant auditor. Both replay identically; only the
// failure fields distinguish them.
type Bundle struct {
	Version   int      `json:"version"`
	Config    Config   `json:"config"`
	Ops       []Op     `json:"ops"`
	Invariant string   `json:"invariant,omitempty"`
	Detail    string   `json:"detail,omitempty"`
	Trace     []string `json:"trace,omitempty"`
}

// NewBundle packages a failing run (typically after Shrink) for replay.
func NewBundle(cfg Config, ops []Op, fail *Failure, trace []string) *Bundle {
	b := NewTraceBundle(cfg, ops)
	b.Invariant = fail.Invariant
	b.Detail = fail.Detail
	b.Trace = append([]string(nil), trace...)
	return b
}

// NewTraceBundle packages a recorded op stream — no failure attached —
// as replayable corpus material. The config is normalized through
// withDefaults so the bundle replays on exactly the fleet that
// recorded it.
func NewTraceBundle(cfg Config, ops []Op) *Bundle {
	return &Bundle{
		Version: bundleVersion,
		Config:  cfg.withDefaults(),
		Ops:     append([]Op(nil), ops...),
	}
}

// IsFailure reports whether the bundle records an invariant violation
// (as opposed to a plain recorded trace).
func (b *Bundle) IsFailure() bool { return b.Invariant != "" }

// Marshal renders the bundle deterministically.
func (b *Bundle) Marshal() ([]byte, error) {
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// ParseBundle validates and decodes a replay bundle.
func ParseBundle(data []byte) (*Bundle, error) {
	var b Bundle
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("chaos: bad bundle: %w", err)
	}
	if b.Version != bundleVersion {
		return nil, fmt.Errorf("chaos: bundle version %d, want %d", b.Version, bundleVersion)
	}
	if len(b.Ops) == 0 {
		return nil, fmt.Errorf("chaos: bundle has no ops")
	}
	return &b, nil
}

// Replay re-executes the bundle's ops under its config on a fresh
// fleet. The caller inspects Result.Failure to confirm reproduction.
func (b *Bundle) Replay() (*Result, error) {
	return RunOps(b.Config, b.Ops)
}
