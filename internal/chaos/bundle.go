package chaos

import (
	"encoding/json"
	"fmt"
)

// bundleVersion gates replay compatibility: a bundle written by one
// build replays only on builds that understand its layout.
const bundleVersion = 1

// Bundle is a self-contained, replayable record of a failing run: the
// exact config, the (shrunk) op list, and what broke. Serialized as
// indented JSON with struct-ordered fields, so identical failures
// produce byte-identical bundles.
type Bundle struct {
	Version   int      `json:"version"`
	Config    Config   `json:"config"`
	Ops       []Op     `json:"ops"`
	Invariant string   `json:"invariant"`
	Detail    string   `json:"detail"`
	Trace     []string `json:"trace,omitempty"`
}

// NewBundle packages a failing run (typically after Shrink) for replay.
func NewBundle(cfg Config, ops []Op, fail *Failure, trace []string) *Bundle {
	return &Bundle{
		Version:   bundleVersion,
		Config:    cfg.withDefaults(),
		Ops:       append([]Op(nil), ops...),
		Invariant: fail.Invariant,
		Detail:    fail.Detail,
		Trace:     append([]string(nil), trace...),
	}
}

// Marshal renders the bundle deterministically.
func (b *Bundle) Marshal() ([]byte, error) {
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// ParseBundle validates and decodes a replay bundle.
func ParseBundle(data []byte) (*Bundle, error) {
	var b Bundle
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("chaos: bad bundle: %w", err)
	}
	if b.Version != bundleVersion {
		return nil, fmt.Errorf("chaos: bundle version %d, want %d", b.Version, bundleVersion)
	}
	if len(b.Ops) == 0 {
		return nil, fmt.Errorf("chaos: bundle has no ops")
	}
	return &b, nil
}

// Replay re-executes the bundle's ops under its config on a fresh
// fleet. The caller inspects Result.Failure to confirm reproduction.
func (b *Bundle) Replay() (*Result, error) {
	return RunOps(b.Config, b.Ops)
}
