package chaos

import (
	"bytes"
	"strings"
	"testing"

	"hypertp/internal/par"
)

// soakConfig is the shared short-soak shape: enough ops to hit every op
// kind and plenty of injected faults, small enough for tier-1.
func soakConfig() Config {
	return Config{Seed: 20210426, Ops: 110, Hosts: 4, VMs: 6, FaultRate: 0.15}
}

// TestChaosSoakShort is the tier-1 soak: a randomized scenario under
// fault injection must end with every invariant intact.
func TestChaosSoakShort(t *testing.T) {
	res, err := Run(soakConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Failure != nil {
		t.Fatalf("invariant violated:\n%s", res.Summary())
	}
	if res.Executed != res.Config.Ops {
		t.Fatalf("executed %d of %d ops", res.Executed, res.Config.Ops)
	}
	if res.OpErrors == 0 {
		t.Fatal("soak with fault injection recorded no op errors — injection is not reaching the stack")
	}
	if res.Faulted == 0 {
		t.Fatal("no op carried a fault plan")
	}
	kinds := map[string]bool{}
	for _, op := range res.Ops {
		kinds[op.Kind] = true
	}
	for _, k := range []string{OpWorkload, OpMigrate, OpUpgrade, OpRespond, OpRespondFleet, OpQuarantine, OpReturn, OpLinkDown, OpLinkUp, OpSweep, OpWarmPoolRefill} {
		if !kinds[k] {
			t.Errorf("generated stream never produced op kind %q", k)
		}
	}
}

// TestChaosSoakCached: the same soak with the transplant cache and warm
// pool enabled must hold every invariant — caching shares page-level
// state between transplants, so this is the auditor's check that shared
// cache entries never leak frames or corrupt guest memory — and stay
// deterministic across worker counts.
func TestChaosSoakCached(t *testing.T) {
	defer par.SetWorkers(0)
	cfg := soakConfig()
	cfg.Cache = true
	var traces [][]string
	var stats []string
	for _, w := range []int{1, 8} {
		par.SetWorkers(w)
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if res.Failure != nil {
			t.Fatalf("invariant violated with caching enabled:\n%s", res.Summary())
		}
		if res.Executed != cfg.Ops {
			t.Fatalf("executed %d of %d ops", res.Executed, cfg.Ops)
		}
		if res.CacheStats.Hits+res.CacheStats.Misses == 0 {
			t.Fatal("cached soak never consulted the cache")
		}
		traces = append(traces, res.Trace)
		stats = append(stats, res.CacheStats.String())
	}
	for j := range traces[0] {
		if traces[1][j] != traces[0][j] {
			t.Fatalf("cached trace line %d differs across worker counts:\n%s\nvs\n%s",
				j, traces[0][j], traces[1][j])
		}
	}
	t.Logf("cache stats: %s / %s", stats[0], stats[1])
}

// TestChaosCrashSoak is the reactive-recovery acceptance soak: 500 ops
// with the crash vocabulary enabled — fail-stops, hangs, fleet-wide
// crash storms and mid-transplant double faults — must end with every
// invariant intact (frame ownership, guest checksums, Nova bookkeeping
// survive every emergency recovery) and the whole run byte-identical
// at any worker count.
func TestChaosCrashSoak(t *testing.T) {
	defer par.SetWorkers(0)
	cfg := Config{Seed: 20210426, Ops: 500, Hosts: 6, VMs: 8, FaultRate: 0.15, Crash: true}
	workers := []int{1, 4, 8}
	if testing.Short() {
		workers = []int{8}
	}
	var summaries []string
	var traces [][]string
	for _, w := range workers {
		par.SetWorkers(w)
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if res.Failure != nil {
			t.Fatalf("invariant violated on crash soak:\n%s", res.Summary())
		}
		if res.Executed != cfg.Ops {
			t.Fatalf("executed %d of %d ops", res.Executed, cfg.Ops)
		}
		kinds := map[string]int{}
		for _, op := range res.Ops {
			kinds[op.Kind]++
		}
		for _, k := range []string{OpCrashHV, OpCrashStorm, OpCrashDuringTransplant} {
			if kinds[k] == 0 {
				t.Errorf("crash soak never produced op kind %q", k)
			}
		}
		recovered := 0
		for _, line := range res.Trace {
			if strings.Contains(line, "recovered") {
				recovered++
			}
		}
		if recovered == 0 {
			t.Fatal("no crash completed an emergency recovery")
		}
		summaries = append(summaries, res.Summary())
		traces = append(traces, res.Trace)
	}
	for i := 1; i < len(summaries); i++ {
		if summaries[i] != summaries[0] {
			t.Fatalf("crash-soak summary differs between workers=%d and workers=%d:\n%s\nvs\n%s",
				workers[0], workers[i], summaries[0], summaries[i])
		}
		for j := range traces[0] {
			if traces[i][j] != traces[0][j] {
				t.Fatalf("crash-soak trace line %d differs across worker counts:\n%s\nvs\n%s",
					j, traces[0][j], traces[i][j])
			}
		}
	}
}

// TestGenerateCrashGatedStream: with Crash unset the generator must emit
// the exact same stream it always has — the crash vocabulary is carved
// out without disturbing pinned seeds — and with Crash set the stream
// includes all three crash kinds.
func TestGenerateCrashGatedStream(t *testing.T) {
	base := soakConfig()
	withCrash := base
	withCrash.Crash = true
	plain, crash := Generate(base), Generate(withCrash)
	crashKinds := map[string]bool{OpCrashHV: true, OpCrashStorm: true, OpCrashDuringTransplant: true}
	for i := range plain {
		if crashKinds[plain[i].Kind] {
			t.Fatalf("op %d: crash kind %q generated with Config.Crash off", i, plain[i].Kind)
		}
		// Up to the first substituted crash op the two streams draw the
		// same randomness, so they must agree op for op. (Past it the
		// draws diverge by design.)
		if crashKinds[crash[i].Kind] {
			break
		}
		if crash[i] != plain[i] {
			t.Fatalf("op %d drifted before any crash op was generated: %+v vs %+v", i, plain[i], crash[i])
		}
	}
	seen := map[string]bool{}
	for _, op := range crash {
		seen[op.Kind] = true
	}
	for k := range crashKinds {
		if !seen[k] {
			t.Errorf("crash-enabled stream never produced %q", k)
		}
	}
}

// TestGenerateDeterministic: the op stream is a pure function of the
// seed — and independent of the fault rate, so a fault-free replay of a
// faulty run executes the same operations.
func TestGenerateDeterministic(t *testing.T) {
	cfg := soakConfig()
	a, b := Generate(cfg), Generate(cfg)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("op %d differs across identical generations: %+v vs %+v", i, a[i], b[i])
		}
	}
	noFaults := cfg
	noFaults.FaultRate = 0
	c := Generate(noFaults)
	for i := range a {
		ac := a[i]
		ac.Fault = 0
		if ac != c[i] {
			t.Fatalf("op %d depends on the fault rate: %+v vs %+v", i, a[i], c[i])
		}
		if c[i].Fault != 0 {
			t.Fatalf("op %d carries a fault seed at rate 0", i)
		}
	}
	other := Generate(Config{Seed: cfg.Seed + 1, Ops: cfg.Ops, Hosts: cfg.Hosts, VMs: cfg.VMs})
	same := 0
	for i := range a {
		if a[i].Kind == other[i].Kind {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("different seeds generated identical op streams")
	}
}

// TestRunDeterministicAcrossWorkers: the whole run — trace, summary,
// virtual time — must be identical at any worker-pool size.
func TestRunDeterministicAcrossWorkers(t *testing.T) {
	defer par.SetWorkers(0)
	var summaries []string
	var traces [][]string
	for _, w := range []int{1, 4, 8} {
		par.SetWorkers(w)
		res, err := Run(soakConfig())
		if err != nil {
			t.Fatal(err)
		}
		summaries = append(summaries, res.Summary())
		traces = append(traces, res.Trace)
	}
	for i := 1; i < len(summaries); i++ {
		if summaries[i] != summaries[0] {
			t.Fatalf("summary differs between workers=1 and workers=%d:\n%s\nvs\n%s",
				[]int{1, 4, 8}[i], summaries[0], summaries[i])
		}
		for j := range traces[0] {
			if traces[i][j] != traces[0][j] {
				t.Fatalf("trace line %d differs across worker counts:\n%s\nvs\n%s",
					j, traces[0][j], traces[i][j])
			}
		}
	}
}

// TestChaosStreamingBounded: a streaming soak must hold every invariant
// while keeping span memory bounded — the forest is released as roots
// end, and the flight recorder never holds more than pinned+ring
// records — and stay deterministic across worker counts.
func TestChaosStreamingBounded(t *testing.T) {
	defer par.SetWorkers(0)
	cfg := soakConfig()
	cfg.Stream = true
	cfg.FlightCap = 64
	var summaries []string
	for _, w := range []int{1, 8} {
		par.SetWorkers(w)
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if res.Failure != nil {
			t.Fatalf("invariant violated on streaming run:\n%s", res.Summary())
		}
		if res.Flight == nil {
			t.Fatal("streaming run carried no flight recorder")
		}
		if res.Flight.Total() <= uint64(res.Flight.Cap()) {
			t.Fatalf("soak streamed only %d records through a cap-%d ring — not exercising eviction",
				res.Flight.Total(), res.Flight.Cap())
		}
		if got, max := res.Flight.Len(), 2*res.Flight.Cap(); got > max {
			t.Fatalf("flight recorder holds %d records, bound is %d", got, max)
		}
		// The forest must not accumulate: ended roots are released, so
		// only spans still open at run end may remain.
		if n := len(res.Obs.Roots()); n > 8 {
			t.Fatalf("streaming run retained %d roots; forest is not being released", n)
		}
		summaries = append(summaries, res.Summary())
	}
	if summaries[1] != summaries[0] {
		t.Fatalf("streaming summary differs between workers=1 and workers=8:\n%s\nvs\n%s",
			summaries[0], summaries[1])
	}
}

// brokenRun runs a soak with the given deliberate breaker armed and
// returns the run; it fails the test if no violation is caught.
func brokenRun(t *testing.T, breaker, wantInvariant string) *Result {
	t.Helper()
	cfg := soakConfig()
	cfg.FaultRate = 0 // keep the breaker's trigger ops error-free
	cfg.Break = breaker
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Failure == nil {
		t.Fatalf("breaker %q not caught by any audit", breaker)
	}
	if res.Failure.Invariant != wantInvariant {
		t.Fatalf("breaker %q flagged as %q, want %q (%s)",
			breaker, res.Failure.Invariant, wantInvariant, res.Failure.Detail)
	}
	return res
}

// TestBreakerLeakFrameCaughtShrunkReplayed is the end-to-end negative
// path: a planted frame leak is caught, shrunk to a handful of ops, and
// the bundle replays to the same violation.
func TestBreakerLeakFrameCaughtShrunkReplayed(t *testing.T) {
	cfg := soakConfig()
	cfg.FaultRate = 0
	cfg.Break = "leak-frame"
	res := brokenRun(t, "leak-frame", "frame-ownership")

	ops, fail := Shrink(cfg, res.Ops, res.Failure)
	if len(ops) > 10 {
		t.Fatalf("shrunk reproduction has %d ops, want <= 10", len(ops))
	}
	if fail.Invariant != "frame-ownership" {
		t.Fatalf("shrinking drifted to invariant %q", fail.Invariant)
	}

	b := NewBundle(cfg, ops, fail, nil)
	data, err := b.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	parsed, err := ParseBundle(data)
	if err != nil {
		t.Fatal(err)
	}
	replay, err := parsed.Replay()
	if err != nil {
		t.Fatal(err)
	}
	if replay.Failure == nil || replay.Failure.Invariant != "frame-ownership" {
		t.Fatalf("replayed bundle did not reproduce the violation: %+v", replay.Failure)
	}
}

// TestBreakerCorruptMemoryCaught: a byte flipped behind the guest's
// write journal trips the memory-integrity audit.
func TestBreakerCorruptMemoryCaught(t *testing.T) {
	brokenRun(t, "corrupt-memory", "memory-integrity")
}

// TestShrinkerDeterministicAcrossWorkers: acceptance criterion — same
// seed and violation shrink to a byte-identical bundle at any
// worker-pool size.
func TestShrinkerDeterministicAcrossWorkers(t *testing.T) {
	defer par.SetWorkers(0)
	cfg := soakConfig()
	cfg.Ops = 40
	cfg.FaultRate = 0
	cfg.Break = "leak-frame"
	var bundles [][]byte
	for _, w := range []int{1, 4, 8} {
		par.SetWorkers(w)
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if res.Failure == nil {
			t.Fatal("breaker not caught")
		}
		ops, fail := Shrink(cfg, res.Ops, res.Failure)
		data, err := NewBundle(cfg, ops, fail, nil).Marshal()
		if err != nil {
			t.Fatal(err)
		}
		bundles = append(bundles, data)
	}
	for i := 1; i < len(bundles); i++ {
		if !bytes.Equal(bundles[i], bundles[0]) {
			t.Fatalf("bundle differs between workers=1 and workers=%d:\n%s\nvs\n%s",
				[]int{1, 4, 8}[i], bundles[0], bundles[i])
		}
	}
}

// TestWatchdogBudgetViolation: an op that charges more virtual time
// than the per-op budget is flagged as a livelock by the audit.
func TestWatchdogBudgetViolation(t *testing.T) {
	cfg := soakConfig()
	cfg.OpBudget = 1 // nanosecond budget: the first real op blows it
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Failure == nil || res.Failure.Invariant != "watchdog" {
		t.Fatalf("watchdog budget not enforced: %+v", res.Failure)
	}
	if err := res.Failure.Err(); err == nil {
		t.Fatal("watchdog failure renders a nil error")
	}
}

// TestBundleParseRejects covers the bundle validation paths.
func TestBundleParseRejects(t *testing.T) {
	if _, err := ParseBundle([]byte("not json")); err == nil {
		t.Fatal("accepted malformed JSON")
	}
	if _, err := ParseBundle([]byte(`{"version": 99, "ops": [{"kind":"workload"}]}`)); err == nil {
		t.Fatal("accepted unknown version")
	}
	if _, err := ParseBundle([]byte(`{"version": 1, "ops": []}`)); err == nil {
		t.Fatal("accepted empty op list")
	}
}
