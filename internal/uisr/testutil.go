package uisr

// SyntheticVM builds a fully populated VMState with deterministic
// pseudo-random register contents derived from seed. It is shared by the
// codec tests here and by higher layers that need a realistic UISR fixture
// (e.g. overhead accounting and fuzzing the converters).
func SyntheticVM(name string, vmid uint32, vcpus int, memBytes uint64, seed uint64) *VMState {
	st := splitmix(seed)
	s := &VMState{
		Name:             name,
		VMID:             vmid,
		MemBytes:         memBytes,
		HugePages:        true,
		SourceHypervisor: "synthetic",
		Weight:           DefaultWeight,
	}
	for i := 0; i < vcpus; i++ {
		s.VCPUs = append(s.VCPUs, SyntheticVCPU(uint32(i), st))
	}
	s.IOAPIC = IOAPIC{ID: 0, NumPins: XenIOAPICPins}
	for p := range s.IOAPIC.Redir {
		s.IOAPIC.Redir[p] = st.next()
	}
	s.HasPIT = true
	for c := range s.PIT.Channels {
		ch := &s.PIT.Channels[c]
		ch.Count = uint32(st.next())
		ch.Latched = uint32(st.next())
		ch.Mode = uint8(st.next() % 6)
		ch.Gate = uint8(st.next() % 2)
	}
	copy(s.RTC.CMOS[:], st.bytes(128))
	s.RTC.Index = uint8(st.next() % 128)
	s.HasHPET = true
	s.HPET = HPET{
		Capability: 0x8086a201, Config: 1,
		ISR: 0, Counter: st.next(),
	}
	for i := range s.HPET.Timers {
		s.HPET.Timers[i] = HPETTimer{Config: st.next() & 0x7f00, Comparator: st.next()}
	}
	s.HasPMTimer = true
	s.PMTimer = PMTimer{Value: uint32(st.next()), BaseNS: st.next()}
	s.Devices = []EmulatedDevice{
		{Kind: "virtio-blk", Model: "synthetic", State: st.bytes(96)},
		{Kind: "virtio-net", Model: "synthetic", UnplugOnTransplant: true},
		{Kind: "serial", Model: "synthetic", State: st.bytes(24)},
	}
	return s
}

// SyntheticVCPU builds one populated vCPU. The rng argument must come from
// splitmix (or Splitmix) so contents are deterministic.
func SyntheticVCPU(id uint32, st *sm) VCPU {
	v := VCPU{ID: id}
	v.Regs = Regs{
		RAX: st.next(), RBX: st.next(), RCX: st.next(), RDX: st.next(),
		RSI: st.next(), RDI: st.next(), RSP: st.next(), RBP: st.next(),
		R8: st.next(), R9: st.next(), R10: st.next(), R11: st.next(),
		R12: st.next(), R13: st.next(), R14: st.next(), R15: st.next(),
		RIP: st.next(), RFLAGS: st.next() | 0x2,
	}
	seg := func() Segment {
		return Segment{
			Selector: uint16(st.next()),
			// Bits 8-11 of the attribute word are reserved in the
			// architectural descriptor layout and carried by
			// neither hypervisor format.
			Attr:  uint16(st.next()) & 0xf0ff,
			Limit: uint32(st.next()),
			Base:  st.next(),
		}
	}
	v.SRegs = SRegs{
		ES: seg(), CS: seg(), SS: seg(), DS: seg(), FS: seg(), GS: seg(),
		TR: seg(), LDT: seg(),
		GDT: DTable{Base: st.next(), Limit: uint16(st.next())},
		IDT: DTable{Base: st.next(), Limit: uint16(st.next())},
		CR0: st.next() | 1, CR2: st.next(), CR3: st.next() &^ 0xfff,
		CR4: st.next(), CR8: st.next() & 0xf,
		EFER: st.next() | (1 << 10), APICBase: 0xfee00000 | (1 << 11),
	}
	for m := 0; m < NumSavedMSRs; m++ {
		v.MSRs = append(v.MSRs, MSR{Index: uint32(0xc0000000 + m), Value: st.next()})
	}
	copy(v.FPU.Data[:], st.bytes(512))
	v.XSave.XCR0 = 0x7
	copy(v.XSave.Header[:], st.bytes(64))
	copy(v.XSave.Extended[:], st.bytes(len(v.XSave.Extended)))
	v.LAPIC.Base = 0xfee00000 | (1 << 11)
	v.LAPIC.ID = id
	for r := range v.LAPIC.Regs {
		v.LAPIC.Regs[r] = uint32(st.next())
	}
	// The architectural ID register mirrors the ID field (the converters
	// keep the two coherent, so fixtures must too).
	v.LAPIC.Regs[2] = id << 24
	v.MTRR = MTRRState{
		DefType: 6, Cap: 0x508, Enabled: true, FixedEna: true,
	}
	for i := range v.MTRR.Fixed {
		v.MTRR.Fixed[i] = st.next()
	}
	for i := range v.MTRR.VarBase {
		v.MTRR.VarBase[i] = st.next() &^ 0xfff
		v.MTRR.VarMask[i] = st.next() | (1 << 11)
	}
	return v
}

// sm is a tiny splitmix64 used only for deterministic fixtures. It is
// duplicated from internal/simtime to keep this package dependency-free.
type sm struct{ s uint64 }

// Splitmix returns a deterministic fixture rng seeded with seed.
func Splitmix(seed uint64) *sm { return splitmix(seed) }

func splitmix(seed uint64) *sm { return &sm{s: seed} }

func (r *sm) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (r *sm) bytes(n int) []byte {
	out := make([]byte, n)
	for i := 0; i < n; i += 8 {
		v := r.next()
		for j := 0; j < 8 && i+j < n; j++ {
			out[i+j] = byte(v >> (8 * j))
		}
	}
	return out
}
