package uisr

import (
	"strings"
	"testing"
)

func TestDiffBlobs(t *testing.T) {
	st := SyntheticVM("diff-vm", 7, 2, 64<<20, 1234)
	a, err := Encode(st)
	if err != nil {
		t.Fatal(err)
	}

	if d := DiffBlobs(a, a); d != "" {
		t.Fatalf("identical blobs reported divergent: %s", d)
	}

	// A changed MSR value must be attributed to the owning vCPU's MSR
	// section, not just a byte offset.
	st2 := SyntheticVM("diff-vm", 7, 2, 64<<20, 1234)
	st2.VCPUs[1].MSRs[0].Value ^= 0xdead
	b, err := Encode(st2)
	if err != nil {
		t.Fatal(err)
	}
	d := DiffBlobs(a, b)
	if !strings.Contains(d, "msrs[1]") {
		t.Fatalf("MSR divergence not attributed to msrs[1]: %s", d)
	}

	// A structural change (extra device) is a section-header difference.
	st3 := SyntheticVM("diff-vm", 7, 2, 64<<20, 1234)
	st3.Devices = append(st3.Devices, EmulatedDevice{Kind: "extra", Model: "x", State: []byte{1}})
	c, err := Encode(st3)
	if err != nil {
		t.Fatal(err)
	}
	d = DiffBlobs(a, c)
	if d == "" {
		t.Fatal("extra device not detected")
	}

	// Truncation is reported as framing, not a panic.
	if d := DiffBlobs(a, a[:len(a)-3]); d == "" {
		t.Fatal("truncated blob reported equal")
	}

	if got := SectionName(SecHPET); got != "hpet" {
		t.Fatalf("SectionName(SecHPET) = %q", got)
	}
}
