package uisr

import (
	"encoding/binary"
	"fmt"
)

// Section type tags of the binary format. They correspond to the UISR
// column of the paper's Table 2, plus memory-map and device sections.
const (
	SecHeader    uint16 = 0x0000
	SecCPU       uint16 = 0x0001 // Regs (Table 2: "CPU")
	SecSRegs     uint16 = 0x0002
	SecMSRs      uint16 = 0x0003
	SecFPU       uint16 = 0x0004
	SecXSave     uint16 = 0x0005 // Table 2: "XSAVE"
	SecLAPIC     uint16 = 0x0006 // Table 2: "LAPIC"
	SecLAPICRegs uint16 = 0x0007 // Table 2: "LAPIC_REGS"
	SecMTRR      uint16 = 0x0008 // Table 2: "MTRR"
	SecIOAPIC    uint16 = 0x0009 // Table 2: "IOAPIC"
	SecPIT       uint16 = 0x000a // Table 2: "PIT"
	SecMemMap    uint16 = 0x000b
	SecDevice    uint16 = 0x000c
	SecRTC       uint16 = 0x000d
	SecHPET      uint16 = 0x000e
	SecPMTimer   uint16 = 0x000f
	SecEnd       uint16 = 0xffff
)

// sectionHeader precedes each TLV payload: type, instance (vCPU id or
// device ordinal), payload length.
type sectionHeader struct {
	Type     uint16
	Instance uint16
	Length   uint32
}

const sectionHeaderSize = 8

// Wire sizes of the fixed-layout sections, computed once. binary.Size on
// these types cannot fail (all fields are fixed-size).
var (
	sizeRegs    = binary.Size(Regs{})
	sizeSRegs   = binary.Size(SRegs{})
	sizeXSave   = binary.Size(XSave{})
	sizeMTRR    = binary.Size(MTRRState{})
	sizeIOAPIC  = binary.Size(IOAPIC{})
	sizePIT     = binary.Size(PIT{})
	sizeRTC     = binary.Size(RTC{})
	sizeHPET    = binary.Size(HPET{})
	sizePMTimer = binary.Size(PMTimer{})
)

const (
	topHeaderSize  = 12
	lapicBaseSize  = 12
	lapicRegsSize  = 4 * NumLAPICRegs
	fpuSize        = 512
	msrEntrySize   = 12
	extentWireSize = 17
)

// headerPayloadSize is the size of the SecHeader payload for s.
func headerPayloadSize(s *VMState) int {
	return 20 + 2 + len(s.Name) + 2 + len(s.SourceHypervisor)
}

// devicePayloadSize is the size of one SecDevice payload.
func devicePayloadSize(d *EmulatedDevice) int {
	return 2 + len(d.Kind) + 2 + len(d.Model) + 1 + 4 + len(d.State)
}

// encodedSize computes the exact byte length of Encode(s) arithmetically,
// without serializing anything. Encode relies on it to allocate the output
// in one shot; Fig. 14's memory-overhead sweep relies on it being cheap.
func encodedSize(s *VMState) int {
	n := topHeaderSize
	n += sectionHeaderSize + headerPayloadSize(s)
	for i := range s.VCPUs {
		n += sectionHeaderSize + sizeRegs
		n += sectionHeaderSize + sizeSRegs
		n += sectionHeaderSize + 4 + msrEntrySize*len(s.VCPUs[i].MSRs)
		n += sectionHeaderSize + fpuSize
		n += sectionHeaderSize + sizeXSave
		n += sectionHeaderSize + lapicBaseSize
		n += sectionHeaderSize + lapicRegsSize
		n += sectionHeaderSize + sizeMTRR
	}
	n += sectionHeaderSize + sizeIOAPIC
	if s.HasPIT {
		n += sectionHeaderSize + sizePIT
	}
	n += sectionHeaderSize + sizeRTC
	if s.HasHPET {
		n += sectionHeaderSize + sizeHPET
	}
	if s.HasPMTimer {
		n += sectionHeaderSize + sizePMTimer
	}
	if len(s.MemMap) > 0 {
		n += sectionHeaderSize + 4 + extentWireSize*len(s.MemMap)
	}
	for i := range s.Devices {
		n += sectionHeaderSize + devicePayloadSize(&s.Devices[i])
	}
	n += sectionHeaderSize // end section
	return n
}

// Encode serializes the VM state to the UISR wire/RAM format. It is the
// implementation behind the paper's struct uisr* to_uisr_xxx family: each
// state category becomes one typed section.
//
// The output size is precomputed and the blob written in place through a
// single []byte, so Encode performs exactly one allocation regardless of
// vCPU or device count — it runs once per VM inside the transplant
// blackout window, on the par worker pool.
func Encode(s *VMState) ([]byte, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	le := binary.LittleEndian
	out := make([]byte, encodedSize(s))

	le.PutUint32(out[0:], Magic)
	le.PutUint16(out[4:], Version)
	le.PutUint16(out[6:], 0) // flags
	off := topHeaderSize

	sections := 0
	// begin writes one section header and returns the payload window.
	begin := func(typ, instance uint16, length int) []byte {
		le.PutUint16(out[off:], typ)
		le.PutUint16(out[off+2:], instance)
		le.PutUint32(out[off+4:], uint32(length))
		payload := out[off+sectionHeaderSize : off+sectionHeaderSize+length]
		off += sectionHeaderSize + length
		sections++
		return payload
	}
	fixed := func(typ, instance uint16, v any, size int) {
		if _, err := binary.Encode(begin(typ, instance, size), le, v); err != nil {
			panic(fmt.Sprintf("uisr: encode %T: %v", v, err))
		}
	}

	encodeHeader(begin(SecHeader, 0, headerPayloadSize(s)), s)
	for i := range s.VCPUs {
		v := &s.VCPUs[i]
		inst := uint16(v.ID)
		fixed(SecCPU, inst, &v.Regs, sizeRegs)
		fixed(SecSRegs, inst, &v.SRegs, sizeSRegs)
		encodeMSRs(begin(SecMSRs, inst, 4+msrEntrySize*len(v.MSRs)), v.MSRs)
		copy(begin(SecFPU, inst, fpuSize), v.FPU.Data[:])
		fixed(SecXSave, inst, &v.XSave, sizeXSave)
		encodeLAPICBase(begin(SecLAPIC, inst, lapicBaseSize), &v.LAPIC)
		encodeLAPICRegs(begin(SecLAPICRegs, inst, lapicRegsSize), &v.LAPIC)
		fixed(SecMTRR, inst, &v.MTRR, sizeMTRR)
	}
	fixed(SecIOAPIC, 0, &s.IOAPIC, sizeIOAPIC)
	if s.HasPIT {
		fixed(SecPIT, 0, &s.PIT, sizePIT)
	}
	fixed(SecRTC, 0, &s.RTC, sizeRTC)
	if s.HasHPET {
		fixed(SecHPET, 0, &s.HPET, sizeHPET)
	}
	if s.HasPMTimer {
		fixed(SecPMTimer, 0, &s.PMTimer, sizePMTimer)
	}
	if len(s.MemMap) > 0 {
		encodeMemMap(begin(SecMemMap, 0, 4+extentWireSize*len(s.MemMap)), s.MemMap)
	}
	for i := range s.Devices {
		d := &s.Devices[i]
		encodeDevice(begin(SecDevice, uint16(i), devicePayloadSize(d)), d)
	}
	begin(SecEnd, 0, 0)

	if off != len(out) {
		panic(fmt.Sprintf("uisr: encoded %d bytes, sized %d", off, len(out)))
	}
	le.PutUint32(out[8:], uint32(sections))
	return out, nil
}

// Decode parses a UISR blob back into a VMState. It is strict: unknown
// sections, truncation, or a bad magic are errors, because a transplant
// must never silently restore partial state.
func Decode(data []byte) (*VMState, error) {
	le := binary.LittleEndian
	if len(data) < topHeaderSize {
		return nil, fmt.Errorf("uisr: blob too short (%d bytes)", len(data))
	}
	if le.Uint32(data[0:]) != Magic {
		return nil, fmt.Errorf("uisr: bad magic %#x", le.Uint32(data[0:]))
	}
	if v := le.Uint16(data[4:]); v != Version {
		return nil, fmt.Errorf("uisr: unsupported version %d", v)
	}
	wantSections := le.Uint32(data[8:])

	s := &VMState{}
	vcpus := map[uint16]*VCPU{}
	vcpu := func(inst uint16) *VCPU {
		v, ok := vcpus[inst]
		if !ok {
			v = &VCPU{ID: uint32(inst)}
			vcpus[inst] = v
		}
		return v
	}

	off := topHeaderSize
	var gotSections uint32
	sawEnd := false
	for off < len(data) {
		if sawEnd {
			return nil, fmt.Errorf("uisr: trailing data after end section")
		}
		if off+sectionHeaderSize > len(data) {
			return nil, fmt.Errorf("uisr: truncated section header at %d", off)
		}
		hdr := sectionHeader{
			Type:     le.Uint16(data[off:]),
			Instance: le.Uint16(data[off+2:]),
			Length:   le.Uint32(data[off+4:]),
		}
		off += sectionHeaderSize
		if off+int(hdr.Length) > len(data) {
			return nil, fmt.Errorf("uisr: truncated section %#x payload", hdr.Type)
		}
		payload := data[off : off+int(hdr.Length)]
		off += int(hdr.Length)
		gotSections++

		var err error
		switch hdr.Type {
		case SecHeader:
			err = decodeHeader(payload, s)
		case SecCPU:
			err = decodeFixed(payload, &vcpu(hdr.Instance).Regs)
		case SecSRegs:
			err = decodeFixed(payload, &vcpu(hdr.Instance).SRegs)
		case SecMSRs:
			vcpu(hdr.Instance).MSRs, err = decodeMSRs(payload)
		case SecFPU:
			if len(payload) != fpuSize {
				err = fmt.Errorf("FPU payload %d bytes, want %d", len(payload), fpuSize)
			} else {
				copy(vcpu(hdr.Instance).FPU.Data[:], payload)
			}
		case SecXSave:
			err = decodeFixed(payload, &vcpu(hdr.Instance).XSave)
		case SecLAPIC:
			err = decodeLAPICBase(payload, &vcpu(hdr.Instance).LAPIC)
		case SecLAPICRegs:
			err = decodeLAPICRegs(payload, &vcpu(hdr.Instance).LAPIC)
		case SecMTRR:
			err = decodeFixed(payload, &vcpu(hdr.Instance).MTRR)
		case SecIOAPIC:
			err = decodeFixed(payload, &s.IOAPIC)
		case SecPIT:
			s.HasPIT = true
			err = decodeFixed(payload, &s.PIT)
		case SecRTC:
			err = decodeFixed(payload, &s.RTC)
		case SecHPET:
			s.HasHPET = true
			err = decodeFixed(payload, &s.HPET)
		case SecPMTimer:
			s.HasPMTimer = true
			err = decodeFixed(payload, &s.PMTimer)
		case SecMemMap:
			s.MemMap, err = decodeMemMap(payload)
		case SecDevice:
			var d EmulatedDevice
			if err = decodeDevice(payload, &d); err == nil {
				s.Devices = append(s.Devices, d)
			}
		case SecEnd:
			sawEnd = true
		default:
			return nil, fmt.Errorf("uisr: unknown section type %#x", hdr.Type)
		}
		if err != nil {
			return nil, fmt.Errorf("uisr: section %#x: %w", hdr.Type, err)
		}
	}
	if !sawEnd {
		return nil, fmt.Errorf("uisr: missing end section")
	}
	if gotSections != wantSections {
		return nil, fmt.Errorf("uisr: section count %d, header says %d", gotSections, wantSections)
	}
	s.VCPUs = make([]VCPU, len(vcpus))
	for inst, v := range vcpus {
		if int(inst) >= len(s.VCPUs) {
			return nil, fmt.Errorf("uisr: vCPU id %d out of range (have %d vCPUs)", inst, len(vcpus))
		}
		s.VCPUs[inst] = *v
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return s, nil
}

// EncodedSize returns the size in bytes of the serialized UISR for the
// state, without building the blob. Used by the memory-overhead
// experiment (Fig. 14).
func EncodedSize(s *VMState) (int, error) {
	if err := s.Validate(); err != nil {
		return 0, err
	}
	return encodedSize(s), nil
}

// --- fixed-layout helpers -------------------------------------------------

func decodeFixed(payload []byte, v any) error {
	want := binary.Size(v)
	if len(payload) != want {
		return fmt.Errorf("payload %d bytes, want %d for %T", len(payload), want, v)
	}
	_, err := binary.Decode(payload, binary.LittleEndian, v)
	return err
}

// --- variable-layout sections ----------------------------------------------

func encodeHeader(out []byte, s *VMState) {
	le := binary.LittleEndian
	le.PutUint32(out[0:], s.VMID)
	le.PutUint64(out[4:], s.MemBytes)
	le.PutUint16(out[12:], uint16(len(s.VCPUs)))
	if s.HugePages {
		out[14] = 1
	}
	out[15] = 0
	le.PutUint16(out[16:], s.Weight)
	le.PutUint16(out[18:], 0) // reserved
	off := 20
	off = putString(out, off, s.Name)
	putString(out, off, s.SourceHypervisor)
}

func decodeHeader(p []byte, s *VMState) error {
	if len(p) < 20 {
		return fmt.Errorf("header too short")
	}
	le := binary.LittleEndian
	s.VMID = le.Uint32(p[0:])
	s.MemBytes = le.Uint64(p[4:])
	s.HugePages = p[14] == 1
	s.Weight = le.Uint16(p[16:])
	rest := p[20:]
	var err error
	s.Name, rest, err = readString(rest)
	if err != nil {
		return err
	}
	s.SourceHypervisor, rest, err = readString(rest)
	if err != nil {
		return err
	}
	if len(rest) != 0 {
		return fmt.Errorf("trailing header bytes")
	}
	return nil
}

func encodeMSRs(out []byte, msrs []MSR) {
	le := binary.LittleEndian
	le.PutUint32(out[0:], uint32(len(msrs)))
	for i, m := range msrs {
		le.PutUint32(out[4+msrEntrySize*i:], m.Index)
		le.PutUint64(out[8+msrEntrySize*i:], m.Value)
	}
}

func decodeMSRs(p []byte) ([]MSR, error) {
	if len(p) < 4 {
		return nil, fmt.Errorf("MSR section too short")
	}
	le := binary.LittleEndian
	n := int(le.Uint32(p[0:]))
	if len(p) != 4+msrEntrySize*n {
		return nil, fmt.Errorf("MSR section %d bytes, want %d for %d entries", len(p), 4+msrEntrySize*n, n)
	}
	out := make([]MSR, n)
	for i := range out {
		out[i].Index = le.Uint32(p[4+msrEntrySize*i:])
		out[i].Value = le.Uint64(p[8+msrEntrySize*i:])
	}
	return out, nil
}

func encodeLAPICBase(out []byte, l *LAPIC) {
	le := binary.LittleEndian
	le.PutUint64(out[0:], l.Base)
	le.PutUint32(out[8:], l.ID)
}

func decodeLAPICBase(p []byte, l *LAPIC) error {
	if len(p) != lapicBaseSize {
		return fmt.Errorf("LAPIC base payload %d bytes, want %d", len(p), lapicBaseSize)
	}
	le := binary.LittleEndian
	l.Base = le.Uint64(p[0:])
	l.ID = le.Uint32(p[8:])
	return nil
}

func encodeLAPICRegs(out []byte, l *LAPIC) {
	le := binary.LittleEndian
	for i, r := range l.Regs {
		le.PutUint32(out[4*i:], r)
	}
}

func decodeLAPICRegs(p []byte, l *LAPIC) error {
	if len(p) != lapicRegsSize {
		return fmt.Errorf("LAPIC regs payload %d bytes, want %d", len(p), lapicRegsSize)
	}
	le := binary.LittleEndian
	for i := range l.Regs {
		l.Regs[i] = le.Uint32(p[4*i:])
	}
	return nil
}

func encodeMemMap(out []byte, extents []PageExtent) {
	le := binary.LittleEndian
	le.PutUint32(out[0:], uint32(len(extents)))
	for i, e := range extents {
		base := 4 + extentWireSize*i
		le.PutUint64(out[base:], e.GFN)
		le.PutUint64(out[base+8:], e.MFN)
		out[base+16] = e.Order
	}
}

func decodeMemMap(p []byte) ([]PageExtent, error) {
	if len(p) < 4 {
		return nil, fmt.Errorf("memmap too short")
	}
	le := binary.LittleEndian
	n := int(le.Uint32(p[0:]))
	if len(p) != 4+extentWireSize*n {
		return nil, fmt.Errorf("memmap %d bytes, want %d for %d extents", len(p), 4+extentWireSize*n, n)
	}
	out := make([]PageExtent, n)
	for i := range out {
		base := 4 + extentWireSize*i
		out[i].GFN = le.Uint64(p[base:])
		out[i].MFN = le.Uint64(p[base+8:])
		out[i].Order = p[base+16]
	}
	return out, nil
}

func encodeDevice(out []byte, d *EmulatedDevice) {
	off := putString(out, 0, d.Kind)
	off = putString(out, off, d.Model)
	if d.UnplugOnTransplant {
		out[off] = 1
	}
	off++
	binary.LittleEndian.PutUint32(out[off:], uint32(len(d.State)))
	copy(out[off+4:], d.State)
}

func decodeDevice(p []byte, d *EmulatedDevice) error {
	var err error
	d.Kind, p, err = readString(p)
	if err != nil {
		return err
	}
	d.Model, p, err = readString(p)
	if err != nil {
		return err
	}
	if len(p) < 5 {
		return fmt.Errorf("device section truncated")
	}
	d.UnplugOnTransplant = p[0] == 1
	n := int(binary.LittleEndian.Uint32(p[1:]))
	p = p[5:]
	if len(p) != n {
		return fmt.Errorf("device state %d bytes, want %d", len(p), n)
	}
	if n > 0 {
		d.State = make([]byte, n)
		copy(d.State, p)
	}
	return nil
}

// putString writes a length-prefixed string at out[off:] and returns the
// offset just past it.
func putString(out []byte, off int, s string) int {
	binary.LittleEndian.PutUint16(out[off:], uint16(len(s)))
	copy(out[off+2:], s)
	return off + 2 + len(s)
}

func readString(p []byte) (string, []byte, error) {
	if len(p) < 2 {
		return "", nil, fmt.Errorf("truncated string length")
	}
	n := int(binary.LittleEndian.Uint16(p))
	p = p[2:]
	if len(p) < n {
		return "", nil, fmt.Errorf("truncated string body")
	}
	return string(p[:n]), p[n:], nil
}
