package uisr

import (
	"bytes"
	"encoding/binary"
	"fmt"
)

// Section type tags of the binary format. They correspond to the UISR
// column of the paper's Table 2, plus memory-map and device sections.
const (
	SecHeader    uint16 = 0x0000
	SecCPU       uint16 = 0x0001 // Regs (Table 2: "CPU")
	SecSRegs     uint16 = 0x0002
	SecMSRs      uint16 = 0x0003
	SecFPU       uint16 = 0x0004
	SecXSave     uint16 = 0x0005 // Table 2: "XSAVE"
	SecLAPIC     uint16 = 0x0006 // Table 2: "LAPIC"
	SecLAPICRegs uint16 = 0x0007 // Table 2: "LAPIC_REGS"
	SecMTRR      uint16 = 0x0008 // Table 2: "MTRR"
	SecIOAPIC    uint16 = 0x0009 // Table 2: "IOAPIC"
	SecPIT       uint16 = 0x000a // Table 2: "PIT"
	SecMemMap    uint16 = 0x000b
	SecDevice    uint16 = 0x000c
	SecRTC       uint16 = 0x000d
	SecHPET      uint16 = 0x000e
	SecPMTimer   uint16 = 0x000f
	SecEnd       uint16 = 0xffff
)

// sectionHeader precedes each TLV payload: type, instance (vCPU id or
// device ordinal), payload length.
type sectionHeader struct {
	Type     uint16
	Instance uint16
	Length   uint32
}

const sectionHeaderSize = 8

// Encode serializes the VM state to the UISR wire/RAM format. It is the
// implementation behind the paper's struct uisr* to_uisr_xxx family: each
// state category becomes one typed section.
func Encode(s *VMState) ([]byte, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	le := binary.LittleEndian

	var top [12]byte
	le.PutUint32(top[0:], Magic)
	le.PutUint16(top[4:], Version)
	le.PutUint16(top[6:], 0) // flags
	le.PutUint32(top[8:], 0) // patched with section count at the end
	buf.Write(top[:])

	sections := 0
	emit := func(typ, instance uint16, payload []byte) {
		var hdr [sectionHeaderSize]byte
		le.PutUint16(hdr[0:], typ)
		le.PutUint16(hdr[2:], instance)
		le.PutUint32(hdr[4:], uint32(len(payload)))
		buf.Write(hdr[:])
		buf.Write(payload)
		sections++
	}

	emit(SecHeader, 0, encodeHeader(s))
	for i := range s.VCPUs {
		v := &s.VCPUs[i]
		inst := uint16(v.ID)
		emit(SecCPU, inst, encodeFixed(&v.Regs))
		emit(SecSRegs, inst, encodeFixed(&v.SRegs))
		emit(SecMSRs, inst, encodeMSRs(v.MSRs))
		emit(SecFPU, inst, v.FPU.Data[:])
		emit(SecXSave, inst, encodeFixed(&v.XSave))
		emit(SecLAPIC, inst, encodeLAPICBase(&v.LAPIC))
		emit(SecLAPICRegs, inst, encodeLAPICRegs(&v.LAPIC))
		emit(SecMTRR, inst, encodeFixed(&v.MTRR))
	}
	emit(SecIOAPIC, 0, encodeFixed(&s.IOAPIC))
	if s.HasPIT {
		emit(SecPIT, 0, encodeFixed(&s.PIT))
	}
	emit(SecRTC, 0, encodeFixed(&s.RTC))
	if s.HasHPET {
		emit(SecHPET, 0, encodeFixed(&s.HPET))
	}
	if s.HasPMTimer {
		emit(SecPMTimer, 0, encodeFixed(&s.PMTimer))
	}
	if len(s.MemMap) > 0 {
		emit(SecMemMap, 0, encodeMemMap(s.MemMap))
	}
	for i, d := range s.Devices {
		emit(SecDevice, uint16(i), encodeDevice(&d))
	}
	emit(SecEnd, 0, nil)

	out := buf.Bytes()
	le.PutUint32(out[8:], uint32(sections))
	return out, nil
}

// Decode parses a UISR blob back into a VMState. It is strict: unknown
// sections, truncation, or a bad magic are errors, because a transplant
// must never silently restore partial state.
func Decode(data []byte) (*VMState, error) {
	le := binary.LittleEndian
	if len(data) < 12 {
		return nil, fmt.Errorf("uisr: blob too short (%d bytes)", len(data))
	}
	if le.Uint32(data[0:]) != Magic {
		return nil, fmt.Errorf("uisr: bad magic %#x", le.Uint32(data[0:]))
	}
	if v := le.Uint16(data[4:]); v != Version {
		return nil, fmt.Errorf("uisr: unsupported version %d", v)
	}
	wantSections := le.Uint32(data[8:])

	s := &VMState{}
	vcpus := map[uint16]*VCPU{}
	vcpu := func(inst uint16) *VCPU {
		v, ok := vcpus[inst]
		if !ok {
			v = &VCPU{ID: uint32(inst)}
			vcpus[inst] = v
		}
		return v
	}

	off := 12
	var gotSections uint32
	sawEnd := false
	for off < len(data) {
		if sawEnd {
			return nil, fmt.Errorf("uisr: trailing data after end section")
		}
		if off+sectionHeaderSize > len(data) {
			return nil, fmt.Errorf("uisr: truncated section header at %d", off)
		}
		hdr := sectionHeader{
			Type:     le.Uint16(data[off:]),
			Instance: le.Uint16(data[off+2:]),
			Length:   le.Uint32(data[off+4:]),
		}
		off += sectionHeaderSize
		if off+int(hdr.Length) > len(data) {
			return nil, fmt.Errorf("uisr: truncated section %#x payload", hdr.Type)
		}
		payload := data[off : off+int(hdr.Length)]
		off += int(hdr.Length)
		gotSections++

		var err error
		switch hdr.Type {
		case SecHeader:
			err = decodeHeader(payload, s)
		case SecCPU:
			err = decodeFixed(payload, &vcpu(hdr.Instance).Regs)
		case SecSRegs:
			err = decodeFixed(payload, &vcpu(hdr.Instance).SRegs)
		case SecMSRs:
			vcpu(hdr.Instance).MSRs, err = decodeMSRs(payload)
		case SecFPU:
			if len(payload) != 512 {
				err = fmt.Errorf("FPU payload %d bytes, want 512", len(payload))
			} else {
				copy(vcpu(hdr.Instance).FPU.Data[:], payload)
			}
		case SecXSave:
			err = decodeFixed(payload, &vcpu(hdr.Instance).XSave)
		case SecLAPIC:
			err = decodeLAPICBase(payload, &vcpu(hdr.Instance).LAPIC)
		case SecLAPICRegs:
			err = decodeLAPICRegs(payload, &vcpu(hdr.Instance).LAPIC)
		case SecMTRR:
			err = decodeFixed(payload, &vcpu(hdr.Instance).MTRR)
		case SecIOAPIC:
			err = decodeFixed(payload, &s.IOAPIC)
		case SecPIT:
			s.HasPIT = true
			err = decodeFixed(payload, &s.PIT)
		case SecRTC:
			err = decodeFixed(payload, &s.RTC)
		case SecHPET:
			s.HasHPET = true
			err = decodeFixed(payload, &s.HPET)
		case SecPMTimer:
			s.HasPMTimer = true
			err = decodeFixed(payload, &s.PMTimer)
		case SecMemMap:
			s.MemMap, err = decodeMemMap(payload)
		case SecDevice:
			var d EmulatedDevice
			if err = decodeDevice(payload, &d); err == nil {
				s.Devices = append(s.Devices, d)
			}
		case SecEnd:
			sawEnd = true
		default:
			return nil, fmt.Errorf("uisr: unknown section type %#x", hdr.Type)
		}
		if err != nil {
			return nil, fmt.Errorf("uisr: section %#x: %w", hdr.Type, err)
		}
	}
	if !sawEnd {
		return nil, fmt.Errorf("uisr: missing end section")
	}
	if gotSections != wantSections {
		return nil, fmt.Errorf("uisr: section count %d, header says %d", gotSections, wantSections)
	}
	s.VCPUs = make([]VCPU, len(vcpus))
	for inst, v := range vcpus {
		if int(inst) >= len(s.VCPUs) {
			return nil, fmt.Errorf("uisr: vCPU id %d out of range (have %d vCPUs)", inst, len(vcpus))
		}
		s.VCPUs[inst] = *v
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return s, nil
}

// EncodedSize returns the size in bytes of the serialized UISR for the
// state, without building the blob. Used by the memory-overhead
// experiment (Fig. 14).
func EncodedSize(s *VMState) (int, error) {
	b, err := Encode(s)
	if err != nil {
		return 0, err
	}
	return len(b), nil
}

// --- fixed-layout helpers -------------------------------------------------

// encodeFixed serializes a struct of fixed-size fields via encoding/binary.
func encodeFixed(v any) []byte {
	var buf bytes.Buffer
	if err := binary.Write(&buf, binary.LittleEndian, v); err != nil {
		panic(fmt.Sprintf("uisr: encodeFixed(%T): %v", v, err))
	}
	return buf.Bytes()
}

func decodeFixed(payload []byte, v any) error {
	want := binary.Size(v)
	if len(payload) != want {
		return fmt.Errorf("payload %d bytes, want %d for %T", len(payload), want, v)
	}
	return binary.Read(bytes.NewReader(payload), binary.LittleEndian, v)
}

// --- variable-layout sections ----------------------------------------------

func encodeHeader(s *VMState) []byte {
	var buf bytes.Buffer
	le := binary.LittleEndian
	var fixed [20]byte
	le.PutUint32(fixed[0:], s.VMID)
	le.PutUint64(fixed[4:], s.MemBytes)
	le.PutUint16(fixed[12:], uint16(len(s.VCPUs)))
	if s.HugePages {
		fixed[14] = 1
	}
	fixed[15] = 0
	le.PutUint16(fixed[16:], s.Weight)
	le.PutUint16(fixed[18:], 0) // reserved
	buf.Write(fixed[:])
	writeString(&buf, s.Name)
	writeString(&buf, s.SourceHypervisor)
	return buf.Bytes()
}

func decodeHeader(p []byte, s *VMState) error {
	if len(p) < 20 {
		return fmt.Errorf("header too short")
	}
	le := binary.LittleEndian
	s.VMID = le.Uint32(p[0:])
	s.MemBytes = le.Uint64(p[4:])
	s.HugePages = p[14] == 1
	s.Weight = le.Uint16(p[16:])
	rest := p[20:]
	var err error
	s.Name, rest, err = readString(rest)
	if err != nil {
		return err
	}
	s.SourceHypervisor, rest, err = readString(rest)
	if err != nil {
		return err
	}
	if len(rest) != 0 {
		return fmt.Errorf("trailing header bytes")
	}
	return nil
}

func encodeMSRs(msrs []MSR) []byte {
	out := make([]byte, 4+12*len(msrs))
	le := binary.LittleEndian
	le.PutUint32(out[0:], uint32(len(msrs)))
	for i, m := range msrs {
		le.PutUint32(out[4+12*i:], m.Index)
		le.PutUint64(out[8+12*i:], m.Value)
	}
	return out
}

func decodeMSRs(p []byte) ([]MSR, error) {
	if len(p) < 4 {
		return nil, fmt.Errorf("MSR section too short")
	}
	le := binary.LittleEndian
	n := int(le.Uint32(p[0:]))
	if len(p) != 4+12*n {
		return nil, fmt.Errorf("MSR section %d bytes, want %d for %d entries", len(p), 4+12*n, n)
	}
	out := make([]MSR, n)
	for i := range out {
		out[i].Index = le.Uint32(p[4+12*i:])
		out[i].Value = le.Uint64(p[8+12*i:])
	}
	return out, nil
}

func encodeLAPICBase(l *LAPIC) []byte {
	var out [12]byte
	le := binary.LittleEndian
	le.PutUint64(out[0:], l.Base)
	le.PutUint32(out[8:], l.ID)
	return out[:]
}

func decodeLAPICBase(p []byte, l *LAPIC) error {
	if len(p) != 12 {
		return fmt.Errorf("LAPIC base payload %d bytes, want 12", len(p))
	}
	le := binary.LittleEndian
	l.Base = le.Uint64(p[0:])
	l.ID = le.Uint32(p[8:])
	return nil
}

func encodeLAPICRegs(l *LAPIC) []byte {
	out := make([]byte, 4*NumLAPICRegs)
	le := binary.LittleEndian
	for i, r := range l.Regs {
		le.PutUint32(out[4*i:], r)
	}
	return out
}

func decodeLAPICRegs(p []byte, l *LAPIC) error {
	if len(p) != 4*NumLAPICRegs {
		return fmt.Errorf("LAPIC regs payload %d bytes, want %d", len(p), 4*NumLAPICRegs)
	}
	le := binary.LittleEndian
	for i := range l.Regs {
		l.Regs[i] = le.Uint32(p[4*i:])
	}
	return nil
}

func encodeMemMap(extents []PageExtent) []byte {
	out := make([]byte, 4+17*len(extents))
	le := binary.LittleEndian
	le.PutUint32(out[0:], uint32(len(extents)))
	for i, e := range extents {
		base := 4 + 17*i
		le.PutUint64(out[base:], e.GFN)
		le.PutUint64(out[base+8:], e.MFN)
		out[base+16] = e.Order
	}
	return out
}

func decodeMemMap(p []byte) ([]PageExtent, error) {
	if len(p) < 4 {
		return nil, fmt.Errorf("memmap too short")
	}
	le := binary.LittleEndian
	n := int(le.Uint32(p[0:]))
	if len(p) != 4+17*n {
		return nil, fmt.Errorf("memmap %d bytes, want %d for %d extents", len(p), 4+17*n, n)
	}
	out := make([]PageExtent, n)
	for i := range out {
		base := 4 + 17*i
		out[i].GFN = le.Uint64(p[base:])
		out[i].MFN = le.Uint64(p[base+8:])
		out[i].Order = p[base+16]
	}
	return out, nil
}

func encodeDevice(d *EmulatedDevice) []byte {
	var buf bytes.Buffer
	writeString(&buf, d.Kind)
	writeString(&buf, d.Model)
	if d.UnplugOnTransplant {
		buf.WriteByte(1)
	} else {
		buf.WriteByte(0)
	}
	var lenb [4]byte
	binary.LittleEndian.PutUint32(lenb[:], uint32(len(d.State)))
	buf.Write(lenb[:])
	buf.Write(d.State)
	return buf.Bytes()
}

func decodeDevice(p []byte, d *EmulatedDevice) error {
	var err error
	d.Kind, p, err = readString(p)
	if err != nil {
		return err
	}
	d.Model, p, err = readString(p)
	if err != nil {
		return err
	}
	if len(p) < 5 {
		return fmt.Errorf("device section truncated")
	}
	d.UnplugOnTransplant = p[0] == 1
	n := int(binary.LittleEndian.Uint32(p[1:]))
	p = p[5:]
	if len(p) != n {
		return fmt.Errorf("device state %d bytes, want %d", len(p), n)
	}
	if n > 0 {
		d.State = make([]byte, n)
		copy(d.State, p)
	}
	return nil
}

func writeString(buf *bytes.Buffer, s string) {
	var lenb [2]byte
	binary.LittleEndian.PutUint16(lenb[:], uint16(len(s)))
	buf.Write(lenb[:])
	buf.WriteString(s)
}

func readString(p []byte) (string, []byte, error) {
	if len(p) < 2 {
		return "", nil, fmt.Errorf("truncated string length")
	}
	n := int(binary.LittleEndian.Uint16(p))
	p = p[2:]
	if len(p) < n {
		return "", nil, fmt.Errorf("truncated string body")
	}
	return string(p[:n]), p[n:], nil
}
