package uisr

import (
	"bytes"
	"testing"
)

// FuzzDecode: the UISR decoder must never panic on arbitrary bytes, and
// anything it accepts must re-encode to a decodable blob (decode/encode
// stability). Run with `go test -fuzz=FuzzDecode ./internal/uisr`; in
// normal test runs the seed corpus executes.
func FuzzDecode(f *testing.F) {
	valid, err := Encode(SyntheticVM("seed", 1, 2, 1<<30, 7))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add([]byte{})
	f.Add(valid[:16])
	mutated := append([]byte(nil), valid...)
	mutated[20] ^= 0xff
	f.Add(mutated)

	f.Fuzz(func(t *testing.T, data []byte) {
		st, err := Decode(data)
		if err != nil {
			return // rejected, fine
		}
		re, err := Encode(st)
		if err != nil {
			t.Fatalf("accepted state does not re-encode: %v", err)
		}
		st2, err := Decode(re)
		if err != nil {
			t.Fatalf("re-encoded blob does not decode: %v", err)
		}
		re2, err := Encode(st2)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(re, re2) {
			t.Fatal("encode not stable after one round trip")
		}
	})
}
