package uisr

import (
	"bytes"
	"testing"

	"hypertp/internal/fuzzseed"
)

// fuzzDecodeSeeds is the shared seed list: f.Add'ed by the fuzz target
// and mirrored into testdata/fuzz/ by TestFuzzSeedCorpus.
func fuzzDecodeSeeds(tb testing.TB) [][]byte {
	tb.Helper()
	valid, err := Encode(SyntheticVM("seed", 1, 2, 1<<30, 7))
	if err != nil {
		tb.Fatal(err)
	}
	mutated := append([]byte(nil), valid...)
	mutated[20] ^= 0xff
	return [][]byte{valid, {}, valid[:16], mutated}
}

func TestFuzzSeedCorpus(t *testing.T) {
	fuzzseed.Check(t, "FuzzDecode", fuzzDecodeSeeds(t)...)
}

// FuzzDecode: the UISR decoder must never panic on arbitrary bytes, and
// anything it accepts must re-encode to a decodable blob (decode/encode
// stability). Run with `go test -fuzz=FuzzDecode ./internal/uisr`; in
// normal test runs the seed corpus executes.
func FuzzDecode(f *testing.F) {
	for _, seed := range fuzzDecodeSeeds(f) {
		f.Add(seed)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		st, err := Decode(data)
		if err != nil {
			return // rejected, fine
		}
		re, err := Encode(st)
		if err != nil {
			t.Fatalf("accepted state does not re-encode: %v", err)
		}
		st2, err := Decode(re)
		if err != nil {
			t.Fatalf("re-encoded blob does not decode: %v", err)
		}
		re2, err := Encode(st2)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(re, re2) {
			t.Fatal("encode not stable after one round trip")
		}
	})
}
