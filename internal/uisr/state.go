// Package uisr implements the Unified Intermediate State Representation of
// the paper (§3.1): a hypervisor-independent description of a VM's
// VM_i State — everything needed to restore the VM under any HyperTP
// compliant hypervisor. It plays the role XDR plays for network data:
// each hypervisor only has to understand this one format, not every other
// hypervisor's internals.
//
// The package defines the neutral in-memory structures, a versioned binary
// codec (TLV sections, little-endian), and size accounting used by the
// memory-overhead evaluation (Fig. 14). Converters from/to Xen and KVM
// internal formats live with the respective hypervisor models
// (internal/hv/xen, internal/hv/kvm), mirroring the paper's rule that
// save/restore functions are written by each hypervisor's experts.
package uisr

import "fmt"

// Format constants.
const (
	// Magic identifies a UISR blob ("UISR" little-endian).
	Magic = 0x52534955
	// Version is the current format version.
	Version = 1
)

// NumGPRegs is the number of general-purpose register slots saved per
// vCPU (16 GPRs + RIP + RFLAGS).
const NumGPRegs = 18

// NumSavedMSRs is the number of model-specific registers captured per
// vCPU. The set covers the union of what Xen's HVM context and KVM's
// KVM_GET_MSRS exchange for a transplantable guest.
const NumSavedMSRs = 160

// NumLAPICRegs is the number of 32-bit architectural LAPIC registers
// captured per vCPU (one per 16-byte stride of the 4 KiB APIC page that is
// architecturally defined).
const NumLAPICRegs = 64

// MaxIOAPICPins is the neutral redirection-table size. Xen implements a
// 48-pin virtual IOAPIC; KVM implements 24 pins. UISR carries up to 48 and
// the KVM restore path applies the paper's §4.2.1 compatibility fix
// (disconnecting pins ≥ 24).
const (
	MaxIOAPICPins = 48
	XenIOAPICPins = 48
	KVMIOAPICPins = 24
)

// Regs is the general-purpose register file of one vCPU.
type Regs struct {
	RAX, RBX, RCX, RDX uint64
	RSI, RDI, RSP, RBP uint64
	R8, R9, R10, R11   uint64
	R12, R13, R14, R15 uint64
	RIP, RFLAGS        uint64
}

// Segment is one segment register in its descriptor-cache form.
type Segment struct {
	Selector uint16
	Attr     uint16
	Limit    uint32
	Base     uint64
}

// DTable is a descriptor-table register (GDTR/IDTR).
type DTable struct {
	Base  uint64
	Limit uint16
}

// SRegs is the system-register state of one vCPU.
type SRegs struct {
	ES, CS, SS, DS, FS, GS, TR, LDT Segment
	GDT, IDT                        DTable
	CR0, CR2, CR3, CR4, CR8         uint64
	EFER, APICBase                  uint64
}

// MSR is one model-specific register entry.
type MSR struct {
	Index uint32
	Value uint64
}

// FPU is the legacy FXSAVE region of one vCPU.
type FPU struct {
	// Data is the 512-byte FXSAVE image.
	Data [512]byte
}

// XSave is the extended state of one vCPU beyond the FXSAVE region.
type XSave struct {
	// XCR0 is extended control register 0 (enabled feature bits).
	XCR0 uint64
	// Header is the 64-byte XSAVE header.
	Header [64]byte
	// Extended is the saved extended region (AVX state in this model).
	Extended [504]byte
}

// LAPIC is one vCPU's local APIC state in the neutral form. Xen stores the
// APIC base and version inside MSR-like records while KVM exposes the full
// register page; UISR carries both views explicitly (Table 2's LAPIC and
// LAPIC_REGS rows).
type LAPIC struct {
	// Base is the IA32_APIC_BASE MSR (holds enable bit and base
	// address).
	Base uint64
	// ID is the APIC id.
	ID uint32
	// Regs are the architectural registers (TPR, LDR, DFR, SVR, ISR,
	// TMR, IRR, LVT entries, timer registers, ...), one 32-bit value per
	// 16-byte stride.
	Regs [NumLAPICRegs]uint32
}

// MTRRState is one vCPU's memory-type-range-register state.
type MTRRState struct {
	DefType  uint64
	Fixed    [11]uint64
	VarBase  [8]uint64
	VarMask  [8]uint64
	Cap      uint64
	Enabled  bool
	FixedEna bool
}

// VCPU is the complete neutral state of one virtual CPU.
type VCPU struct {
	ID    uint32
	Regs  Regs
	SRegs SRegs
	MSRs  []MSR
	FPU   FPU
	XSave XSave
	LAPIC LAPIC
	MTRR  MTRRState
}

// IOAPIC is the VM-wide IO-APIC state.
type IOAPIC struct {
	ID      uint32
	NumPins uint32
	// Redir holds the redirection table entries; only the first NumPins
	// are meaningful.
	Redir [MaxIOAPICPins]uint64
}

// PITChannel is one channel of the 8254 timer.
type PITChannel struct {
	Count     uint32
	Latched   uint32
	Mode      uint8
	BCD       uint8
	Gate      uint8
	OutHigh   uint8
	CountLoad uint64 // virtual time the count was loaded, ns
}

// PIT is the VM-wide programmable interval timer state.
type PIT struct {
	Channels [3]PITChannel
	Speaker  uint8
}

// RTC is the MC146818 real-time clock state (CMOS image plus the index
// port latch). Both hypervisors emulate it, in different layouts.
type RTC struct {
	CMOS  [128]byte
	Index uint8
}

// HPETTimer is one HPET comparator.
type HPETTimer struct {
	Config     uint64
	Comparator uint64
	FSBRoute   uint64
}

// HPET is the high-precision event timer state. Xen's HVM platform
// emulates an HPET; kvmtool does not, so transplanting Xen→KVM drops it
// after notifying the guest (a §4.2.1-style device compatibility fix) and
// KVM→Xen synthesizes a disabled one.
type HPET struct {
	Capability uint64
	Config     uint64
	ISR        uint64
	Counter    uint64
	Timers     [3]HPETTimer
}

// PMTimer is the ACPI power-management timer. Present on Xen's platform,
// absent from kvmtool; handled like HPET.
type PMTimer struct {
	Value  uint32
	BaseNS uint64
}

// PageExtent describes one run of guest-physical memory backed by one
// machine-physical run: the payload of a PRAM page entry (Fig. 4). Order
// is the power-of-two size in base pages (0 → 4 KiB, 9 → 2 MiB), matching
// the paper's "size (in power-of-2 number of pages)".
type PageExtent struct {
	GFN   uint64
	MFN   uint64
	Order uint8
}

// Pages returns the number of 4 KiB pages the extent covers.
func (e PageExtent) Pages() uint64 { return 1 << e.Order }

// EmulatedDevice is the neutral emulation state of one emulated platform
// device (§4.2.3): the VMM on the target side reconstructs its device
// model from this.
type EmulatedDevice struct {
	Kind  string // e.g. "virtio-net", "virtio-blk", "serial"
	Model string // emulation backend that produced the state
	State []byte // opaque device-model snapshot
	// UnplugOnTransplant marks devices (typically NICs) handled by the
	// unplug-and-rescan strategy instead of state translation.
	UnplugOnTransplant bool
}

// VMState is the complete UISR image of one VM's VM_i State, plus the
// memory map needed to re-adopt its Guest State. Guest memory contents are
// NOT part of UISR (they are hypervisor-independent and stay in place or
// are copied by the migration stream).
type VMState struct {
	Name     string
	VMID     uint32
	MemBytes uint64
	// HugePages records whether the guest is backed by 2 MiB pages.
	HugePages bool
	VCPUs     []VCPU
	IOAPIC    IOAPIC
	// HasPIT marks whether the source emulates the 8254 timer. Xen and
	// KVM both do; microhypervisors with paravirtual time may not.
	HasPIT bool
	PIT    PIT
	RTC    RTC
	// HasHPET / HasPMTimer mark platform timers the source hypervisor
	// actually emulates; a target without them applies a documented
	// compatibility drop.
	HasHPET    bool
	HPET       HPET
	HasPMTimer bool
	PMTimer    PMTimer
	// MemMap is the guest-physical → machine-physical map at save time.
	// For InPlaceTP it mirrors the PRAM file contents; for MigrationTP
	// it is omitted from the wire format (pages are re-placed on the
	// destination).
	MemMap []PageExtent
	// Devices holds emulated device snapshots.
	Devices []EmulatedDevice
	// SourceHypervisor records the producing side, for diagnostics.
	SourceHypervisor string
	// Weight is the VM's neutral scheduling weight (256 = default). It
	// is VM_i State from which each hypervisor *rebuilds* its own
	// management structures (Xen credit weight, host-Linux shares, NOVA
	// scheduling-context priority) — the Fig. 2 rule that VM Management
	// State is reconstructed, never translated.
	Weight uint16
}

// DefaultWeight is the neutral scheduling weight of an unconfigured VM
// (matching Xen's credit-scheduler default).
const DefaultWeight = 256

// Validate performs structural sanity checks that both producers
// (to_uisr_*) and consumers (from_uisr_*) rely on.
func (s *VMState) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("uisr: VM has no name")
	}
	if len(s.VCPUs) == 0 {
		return fmt.Errorf("uisr: VM %q has no vCPUs", s.Name)
	}
	if s.MemBytes == 0 {
		return fmt.Errorf("uisr: VM %q has zero memory", s.Name)
	}
	for i, v := range s.VCPUs {
		if v.ID != uint32(i) {
			return fmt.Errorf("uisr: VM %q vCPU %d has id %d", s.Name, i, v.ID)
		}
	}
	if s.IOAPIC.NumPins > MaxIOAPICPins {
		return fmt.Errorf("uisr: VM %q IOAPIC has %d pins > max %d",
			s.Name, s.IOAPIC.NumPins, MaxIOAPICPins)
	}
	var covered uint64
	for _, e := range s.MemMap {
		covered += e.Pages() * 4096
	}
	if len(s.MemMap) > 0 && covered != s.MemBytes {
		return fmt.Errorf("uisr: VM %q memmap covers %d bytes, MemBytes is %d",
			s.Name, covered, s.MemBytes)
	}
	return nil
}
