package uisr

import (
	"bytes"
	"reflect"
	"testing"
	"testing/quick"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	orig := SyntheticVM("vm0", 7, 2, 1<<30, 42)
	orig.MemMap = []PageExtent{
		{GFN: 0, MFN: 0x100, Order: 9},
		{GFN: 512, MFN: 0x900, Order: 9},
	}
	orig.MemBytes = 2 * (2 << 20)
	blob, err := Encode(orig)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(blob)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(orig, got) {
		t.Fatal("decoded state differs from original")
	}
}

func TestRoundTripManyVCPUs(t *testing.T) {
	for _, n := range []int{1, 4, 10} {
		orig := SyntheticVM("vm", 1, n, 1<<30, uint64(n))
		blob, err := Encode(orig)
		if err != nil {
			t.Fatalf("%d vCPUs: %v", n, err)
		}
		got, err := Decode(blob)
		if err != nil {
			t.Fatalf("%d vCPUs: %v", n, err)
		}
		if len(got.VCPUs) != n {
			t.Fatalf("decoded %d vCPUs, want %d", len(got.VCPUs), n)
		}
		if !reflect.DeepEqual(orig, got) {
			t.Fatalf("%d vCPUs: round trip differs", n)
		}
	}
}

// Property: round trip is the identity for any synthetic seed/shape.
func TestPropertyRoundTrip(t *testing.T) {
	f := func(seed uint64, vcpusRaw, memRaw uint8) bool {
		vcpus := int(vcpusRaw%10) + 1
		mem := (uint64(memRaw%12) + 1) << 30
		orig := SyntheticVM("p", 3, vcpus, mem, seed)
		blob, err := Encode(orig)
		if err != nil {
			return false
		}
		got, err := Decode(blob)
		if err != nil {
			return false
		}
		return reflect.DeepEqual(orig, got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeRejectsBadMagic(t *testing.T) {
	blob, _ := Encode(SyntheticVM("vm", 1, 1, 1<<30, 1))
	blob[0] ^= 0xff
	if _, err := Decode(blob); err == nil {
		t.Fatal("bad magic accepted")
	}
}

func TestDecodeRejectsBadVersion(t *testing.T) {
	blob, _ := Encode(SyntheticVM("vm", 1, 1, 1<<30, 1))
	blob[4] = 0xff
	if _, err := Decode(blob); err == nil {
		t.Fatal("bad version accepted")
	}
}

func TestDecodeRejectsTruncation(t *testing.T) {
	blob, _ := Encode(SyntheticVM("vm", 1, 1, 1<<30, 1))
	for _, cut := range []int{5, 13, len(blob) / 2, len(blob) - 1} {
		if _, err := Decode(blob[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}

func TestDecodeRejectsTrailingGarbage(t *testing.T) {
	blob, _ := Encode(SyntheticVM("vm", 1, 1, 1<<30, 1))
	if _, err := Decode(append(blob, 0xAA, 0xBB)); err == nil {
		t.Fatal("trailing garbage accepted")
	}
}

func TestDecodeRejectsUnknownSection(t *testing.T) {
	blob, _ := Encode(SyntheticVM("vm", 1, 1, 1<<30, 1))
	// Overwrite the first section's type tag (offset 12) with junk.
	blob[12] = 0x77
	blob[13] = 0x77
	if _, err := Decode(blob); err == nil {
		t.Fatal("unknown section accepted")
	}
}

func TestDecodeRejectsCorruptSectionCount(t *testing.T) {
	blob, _ := Encode(SyntheticVM("vm", 1, 1, 1<<30, 1))
	blob[8]++
	if _, err := Decode(blob); err == nil {
		t.Fatal("corrupt section count accepted")
	}
}

func TestValidate(t *testing.T) {
	base := func() *VMState { return SyntheticVM("vm", 1, 2, 1<<30, 5) }

	s := base()
	s.Name = ""
	if err := s.Validate(); err == nil {
		t.Fatal("empty name accepted")
	}

	s = base()
	s.VCPUs = nil
	if err := s.Validate(); err == nil {
		t.Fatal("zero vCPUs accepted")
	}

	s = base()
	s.MemBytes = 0
	if err := s.Validate(); err == nil {
		t.Fatal("zero memory accepted")
	}

	s = base()
	s.VCPUs[1].ID = 5
	if err := s.Validate(); err == nil {
		t.Fatal("non-sequential vCPU ids accepted")
	}

	s = base()
	s.IOAPIC.NumPins = MaxIOAPICPins + 1
	if err := s.Validate(); err == nil {
		t.Fatal("oversized IOAPIC accepted")
	}

	s = base()
	s.MemMap = []PageExtent{{GFN: 0, MFN: 1, Order: 0}} // 4 KiB vs 1 GiB
	if err := s.Validate(); err == nil {
		t.Fatal("inconsistent memmap accepted")
	}

	if err := base().Validate(); err != nil {
		t.Fatalf("valid state rejected: %v", err)
	}
}

func TestEncodeRejectsInvalid(t *testing.T) {
	s := SyntheticVM("vm", 1, 1, 1<<30, 1)
	s.Name = ""
	if _, err := Encode(s); err == nil {
		t.Fatal("Encode accepted invalid state")
	}
}

func TestPageExtentPages(t *testing.T) {
	if (PageExtent{Order: 0}).Pages() != 1 {
		t.Fatal("order 0 != 1 page")
	}
	if (PageExtent{Order: 9}).Pages() != 512 {
		t.Fatal("order 9 != 512 pages")
	}
}

// Fig. 14 anchor: the serialized UISR platform state is ~5 KB for one vCPU
// and ~38 KB for ten, growing ~3.7 KB per vCPU.
func TestEncodedSizeMatchesFig14(t *testing.T) {
	size := func(vcpus int) int {
		s := SyntheticVM("vm", 1, vcpus, 1<<30, 9)
		s.Devices = nil // Fig. 14 measures platform state
		n, err := EncodedSize(s)
		if err != nil {
			t.Fatal(err)
		}
		return n
	}
	one := size(1)
	ten := size(10)
	if one < 4000 || one > 6200 {
		t.Fatalf("1-vCPU UISR = %d bytes, want ~5 KB", one)
	}
	if ten < 33000 || ten > 42000 {
		t.Fatalf("10-vCPU UISR = %d bytes, want ~38 KB", ten)
	}
	perVCPU := (ten - one) / 9
	if perVCPU < 3200 || perVCPU > 4200 {
		t.Fatalf("per-vCPU increment = %d bytes, want ~3.7 KB", perVCPU)
	}
}

func TestDeviceStateRoundTrip(t *testing.T) {
	s := SyntheticVM("vm", 1, 1, 1<<30, 3)
	s.Devices = []EmulatedDevice{
		{Kind: "virtio-net", Model: "xen-qemu", State: []byte{1, 2, 3}, UnplugOnTransplant: true},
		{Kind: "empty-state", Model: "m"},
	}
	blob, err := Encode(s)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(blob)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s.Devices, got.Devices) {
		t.Fatalf("devices differ: %+v vs %+v", s.Devices, got.Devices)
	}
}

func TestSyntheticDeterminism(t *testing.T) {
	a := SyntheticVM("vm", 1, 2, 1<<30, 77)
	b := SyntheticVM("vm", 1, 2, 1<<30, 77)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different synthetic VMs")
	}
	c := SyntheticVM("vm", 1, 2, 1<<30, 78)
	ab, _ := Encode(a)
	cb, _ := Encode(c)
	if bytes.Equal(ab, cb) {
		t.Fatal("different seeds produced identical blobs")
	}
}

func TestMemMapOmittedWhenEmpty(t *testing.T) {
	s := SyntheticVM("vm", 1, 1, 1<<30, 1)
	blob, err := Encode(s)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(blob)
	if err != nil {
		t.Fatal(err)
	}
	if got.MemMap != nil {
		t.Fatal("empty memmap did not stay empty")
	}
}

func TestOptionalTimerSections(t *testing.T) {
	s := SyntheticVM("vm", 1, 1, 1<<30, 21)
	if !s.HasHPET || !s.HasPMTimer {
		t.Fatal("synthetic VM missing platform timers")
	}
	// Present: round trips.
	blob, err := Encode(s)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(blob)
	if err != nil {
		t.Fatal(err)
	}
	if !got.HasHPET || got.HPET != s.HPET {
		t.Fatal("HPET lost in round trip")
	}
	if !got.HasPMTimer || got.PMTimer != s.PMTimer {
		t.Fatal("PM timer lost in round trip")
	}
	if got.RTC != s.RTC {
		t.Fatal("RTC lost in round trip")
	}
	// Absent: sections omitted, flags stay false.
	s.HasHPET, s.HasPMTimer = false, false
	blob2, err := Encode(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(blob2) >= len(blob) {
		t.Fatal("omitting timers did not shrink the blob")
	}
	got2, err := Decode(blob2)
	if err != nil {
		t.Fatal(err)
	}
	if got2.HasHPET || got2.HasPMTimer {
		t.Fatal("absent timers decoded as present")
	}
}

func TestEncodedSizeMatchesEncode(t *testing.T) {
	for _, vcpus := range []int{1, 4, 16} {
		s := SyntheticVM("sz", 7, vcpus, 4<<30, uint64(vcpus)*13)
		blob, err := Encode(s)
		if err != nil {
			t.Fatal(err)
		}
		n, err := EncodedSize(s)
		if err != nil {
			t.Fatal(err)
		}
		if n != len(blob) {
			t.Errorf("vcpus=%d: EncodedSize %d, Encode produced %d bytes", vcpus, n, len(blob))
		}
	}
}
