package uisr

import (
	"bytes"
	"encoding/binary"
	"fmt"
)

// sectionNames maps section type tags to the Table 2 names for
// diagnostics. Unknown tags render as hex.
var sectionNames = map[uint16]string{
	SecHeader:    "header",
	SecCPU:       "cpu",
	SecSRegs:     "sregs",
	SecMSRs:      "msrs",
	SecFPU:       "fpu",
	SecXSave:     "xsave",
	SecLAPIC:     "lapic",
	SecLAPICRegs: "lapic-regs",
	SecMTRR:      "mtrr",
	SecIOAPIC:    "ioapic",
	SecPIT:       "pit",
	SecMemMap:    "memmap",
	SecDevice:    "device",
	SecRTC:       "rtc",
	SecHPET:      "hpet",
	SecPMTimer:   "pmtimer",
	SecEnd:       "end",
}

// SectionName returns the human-readable name of a section type tag.
func SectionName(typ uint16) string {
	if n, ok := sectionNames[typ]; ok {
		return n
	}
	return fmt.Sprintf("%#04x", typ)
}

// nextSection reads one TLV section at off, returning its header, its
// payload, and the offset past it. It validates only the framing — the
// payload is returned raw so DiffBlobs can compare malformed-but-framed
// blobs byte-for-byte.
func nextSection(data []byte, off int) (sectionHeader, []byte, int, error) {
	le := binary.LittleEndian
	if off+sectionHeaderSize > len(data) {
		return sectionHeader{}, nil, 0, fmt.Errorf("truncated section header at offset %d", off)
	}
	hdr := sectionHeader{
		Type:     le.Uint16(data[off:]),
		Instance: le.Uint16(data[off+2:]),
		Length:   le.Uint32(data[off+4:]),
	}
	off += sectionHeaderSize
	if off+int(hdr.Length) > len(data) {
		return sectionHeader{}, nil, 0, fmt.Errorf("truncated %s payload at offset %d", SectionName(hdr.Type), off)
	}
	return hdr, data[off : off+int(hdr.Length)], off + int(hdr.Length), nil
}

// DiffBlobs compares two encoded UISR blobs section by section and
// returns a human-readable description of the first divergence, or ""
// when the blobs are byte-identical. Where a raw byte compare only says
// "offset 1234 differs", DiffBlobs says which vCPU's MSR block (or
// which device section) diverged — the diagnostic the differential
// fuzzer attaches to a round-trip failure repro.
func DiffBlobs(a, b []byte) string {
	if bytes.Equal(a, b) {
		return ""
	}
	if len(a) < topHeaderSize || len(b) < topHeaderSize {
		return fmt.Sprintf("blob shorter than top header: %d vs %d bytes", len(a), len(b))
	}
	if !bytes.Equal(a[:topHeaderSize], b[:topHeaderSize]) {
		return fmt.Sprintf("top header differs: %x vs %x", a[:topHeaderSize], b[:topHeaderSize])
	}
	offA, offB := topHeaderSize, topHeaderSize
	for i := 0; ; i++ {
		doneA, doneB := offA >= len(a), offB >= len(b)
		if doneA || doneB {
			if doneA && doneB {
				// Same framing, same payloads, yet not bytes.Equal —
				// unreachable for well-formed input, but never report
				// "no difference" for unequal blobs.
				return "blobs differ but sections compare equal"
			}
			return fmt.Sprintf("section count differs: one blob ends after %d sections", i)
		}
		ha, pa, na, errA := nextSection(a, offA)
		hb, pb, nb, errB := nextSection(b, offB)
		if errA != nil || errB != nil {
			return fmt.Sprintf("framing differs at section %d: %v vs %v", i, errA, errB)
		}
		if ha != hb {
			return fmt.Sprintf("section %d header differs: %s[%d] len %d vs %s[%d] len %d",
				i, SectionName(ha.Type), ha.Instance, ha.Length,
				SectionName(hb.Type), hb.Instance, hb.Length)
		}
		if !bytes.Equal(pa, pb) {
			j := 0
			for j < len(pa) && pa[j] == pb[j] {
				j++
			}
			return fmt.Sprintf("%s[%d] payload differs at byte %d of %d (%#02x vs %#02x)",
				SectionName(ha.Type), ha.Instance, j, len(pa), pa[j], pb[j])
		}
		offA, offB = na, nb
	}
}
