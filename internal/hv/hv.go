// Package hv defines the hypervisor abstraction HyperTP is built against:
// the Hypervisor interface that both the Xen-flavoured (internal/hv/xen)
// and KVM-flavoured (internal/hv/kvm) models implement, VM handles, and
// the shared guest address-space machinery (GFN→MFN extents, dirty page
// tracking) that both hypervisors use internally.
//
// Heterogeneity lives where it matters for the paper: each hypervisor
// keeps its platform state in its own internal format (Xen: an HVM
// context blob of typed save records; KVM: ioctl-shaped state sections),
// and only the UISR converters understand both.
package hv

import (
	"fmt"

	"hypertp/internal/guest"
	"hypertp/internal/hterr"
	"hypertp/internal/hw"
	"hypertp/internal/uisr"
)

// Kind identifies a hypervisor family.
type Kind uint8

const (
	// KindXen is the type-I hypervisor model.
	KindXen Kind = iota + 1
	// KindKVM is the type-II hypervisor model.
	KindKVM
	// KindNOVA is the microhypervisor model — the third pool member
	// that gives the transplant policy an escape when a flaw (like
	// VENOM's shared QEMU) hits both mainstream hypervisors at once.
	KindNOVA
)

func (k Kind) String() string {
	switch k {
	case KindXen:
		return "xen"
	case KindKVM:
		return "kvm"
	case KindNOVA:
		return "nova"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// VMID identifies a VM within one hypervisor instance (a domid in Xen
// terms, a VM fd in KVM terms).
type VMID int

// Config describes a VM to create.
type Config struct {
	Name     string
	VCPUs    int
	MemBytes uint64
	// HugePages backs the guest with 2 MiB pages (the paper's default).
	HugePages bool
	// Seed makes the VM's synthetic platform state and guest contents
	// deterministic.
	Seed uint64
	// InPlaceCompatible marks the VM as able to undergo InPlaceTP
	// (the §5.4 cluster experiments vary this fraction).
	InPlaceCompatible bool
	// PassthroughDevices lists hardware devices assigned directly to
	// the VM (§4.2.3). Passthrough keeps near-native performance but
	// forbids live migration; InPlaceTP handles it by pausing the
	// device in place (the hardware does not change across the
	// micro-reboot).
	PassthroughDevices []string
	// Weight is the scheduling weight (0 means the 256 default). It is
	// carried through UISR so every hypervisor can rebuild its own
	// scheduler structures from it after a transplant.
	Weight int
}

// Validate checks a Config for structural errors.
func (c *Config) Validate() error {
	if c.Name == "" {
		return fmt.Errorf("hv: VM config has no name")
	}
	if c.VCPUs < 1 {
		return fmt.Errorf("hv: VM %q: VCPUs = %d", c.Name, c.VCPUs)
	}
	if c.MemBytes == 0 || c.MemBytes%hw.PageSize4K != 0 {
		return fmt.Errorf("hv: VM %q: MemBytes = %d not page aligned", c.Name, c.MemBytes)
	}
	if c.HugePages && c.MemBytes%hw.PageSize2M != 0 {
		return fmt.Errorf("hv: VM %q: MemBytes = %d not 2M aligned with huge pages", c.Name, c.MemBytes)
	}
	return nil
}

// VM is the hypervisor-independent view of one running virtual machine.
type VM struct {
	ID     VMID
	Config Config
	Guest  *guest.Guest
	Space  *AddressSpace

	paused bool
}

// Paused reports whether the VM's vCPUs are stopped.
func (v *VM) Paused() bool { return v.paused }

// SetPaused flips the vCPU run state. It is exported for the hypervisor
// implementations; everything else goes through Hypervisor.Pause/Resume.
func (v *VM) SetPaused(paused bool) { v.paused = paused }

// Footprint is the memory-separation census of one VM (Fig. 2): how many
// bytes of each category its presence accounts for.
type Footprint struct {
	GuestBytes   uint64 // Guest State (stays in place)
	VMStateBytes uint64 // VM_i State (translated via UISR)
	MgmtBytes    uint64 // VM Management State (rebuilt)
}

// RestoreMode selects how a VM's guest memory is attached on the restore
// side of a transplant.
type RestoreMode uint8

const (
	// RestoreAdopt re-adopts guest frames in place using the saved
	// memory map (InPlaceTP via PRAM).
	RestoreAdopt RestoreMode = iota + 1
	// RestoreAllocate allocates fresh frames; contents arrive via the
	// migration stream (MigrationTP).
	RestoreAllocate
)

// RestoreOptions parameterizes Hypervisor.RestoreUISR.
type RestoreOptions struct {
	Mode RestoreMode
	// InPlaceCompatible is carried over from the source VM config.
	InPlaceCompatible bool
}

// Hypervisor is a HyperTP-compliant hypervisor: normal VM lifecycle plus
// the UISR save/restore hooks of §3.1 (the to_uisr_xxx / from_uisr_xxx
// families) and the memory-map export PRAM construction needs.
type Hypervisor interface {
	Kind() Kind
	// Name is the full version label, e.g. "xen-4.12.1".
	Name() string
	Machine() *hw.Machine

	CreateVM(cfg Config) (*VM, error)
	DestroyVM(id VMID) error
	LookupVM(id VMID) (*VM, bool)
	VMs() []*VM

	Pause(id VMID) error
	Resume(id VMID) error

	// SaveUISR translates the VM's VM_i State from the hypervisor's
	// internal format into UISR (without the memory map; see
	// MemExtents).
	SaveUISR(id VMID) (*uisr.VMState, error)
	// RestoreUISR translates a UISR image into the hypervisor's
	// internal format and instantiates the VM. In RestoreAdopt mode the
	// state's MemMap extents identify the in-place frames to adopt; in
	// RestoreAllocate mode fresh frames are allocated.
	RestoreUISR(st *uisr.VMState, opts RestoreOptions) (*VM, error)

	// MemExtents exports the VM's GFN→MFN map in PRAM extent form.
	MemExtents(id VMID) ([]uisr.PageExtent, error)

	// Footprint reports the VM's memory-separation census.
	Footprint(id VMID) (Footprint, error)

	// Dirty logging, used by the migration pre-copy loop.
	EnableDirtyLog(id VMID) error
	DisableDirtyLog(id VMID) error
	FetchAndClearDirty(id VMID) ([]hw.GFN, error)

	// MgmtStateBytes reports the size of the hypervisor's VM Management
	// State (scheduler queues etc.), which is rebuilt, never translated.
	MgmtStateBytes() uint64

	// AttachGuest binds a guest software stack to a restored VM and
	// rebinds the guest's memory accessor (Fig. 3 ❻).
	AttachGuest(id VMID, g *guest.Guest) error
}

// Crashable is implemented by hypervisors that model fail-stop crashes
// and control-plane hangs (the ReHype failure model the reactive
// recovery path is built on). Crash and Hang freeze every vCPU; the
// guests' memory and the hypervisor's VM_i State structures stay intact
// in place, which is exactly what the emergency transplant salvages.
type Crashable interface {
	// Crash fail-stops the hypervisor. Reports whether this call was the
	// failing one (false when already down: first crash wins).
	Crash(reason string) bool
	// Hang wedges the control plane without fail-stopping: vCPUs freeze
	// but the failure is only observable as missed heartbeats. Recovery
	// must Fence before salvaging.
	Hang(reason string) bool
	// Fence forces a hung hypervisor into the fail-stopped state so its
	// structures can be salvaged. A no-op when already crashed.
	Fence(reason string)
	// Crashed reports whether the hypervisor has fail-stopped.
	Crashed() bool
	// Hung reports whether the hypervisor is wedged but not fenced.
	Hung() bool
	// CrashReason returns the recorded failure cause, "" while healthy.
	CrashReason() string
}

// CrashState is the embeddable Crashable bookkeeping shared by the
// hypervisor models. The embedding implementation provides Crash/Hang
// (it owns the vCPU freeze) on top of MarkCrashed/MarkHung.
type CrashState struct {
	crashed bool
	hung    bool
	reason  string
}

// MarkCrashed records the fail-stop. Reports whether this call is the
// first failure (a fence of a hung hypervisor reports false).
func (c *CrashState) MarkCrashed(reason string) bool {
	if c.crashed {
		return false
	}
	first := !c.hung
	c.crashed = true
	c.hung = false
	if first {
		c.reason = reason
	}
	return first
}

// MarkHung records the wedge. Reports whether this call is the first
// failure.
func (c *CrashState) MarkHung(reason string) bool {
	if c.crashed || c.hung {
		return false
	}
	c.hung = true
	c.reason = reason
	return true
}

// Crashed reports whether the hypervisor has fail-stopped.
func (c *CrashState) Crashed() bool { return c.crashed }

// Hung reports whether the hypervisor is wedged but not yet fenced.
func (c *CrashState) Hung() bool { return c.hung }

// CrashReason returns the recorded failure cause, "" while healthy.
func (c *CrashState) CrashReason() string { return c.reason }

// Barrier guards a control-plane operation: it fails with an
// ErrHypervisorCrashed-classified error while the hypervisor is down.
// Salvage operations (SaveUISR, MemExtents, VM lookup) do not call it —
// reading the frozen structures is exactly what emergency recovery does.
func (c *CrashState) Barrier(name, op string) error {
	if c.crashed {
		return hterr.HypervisorCrashed(fmt.Errorf("%s: %s: hypervisor crashed: %s", name, op, c.reason))
	}
	if c.hung {
		return hterr.HypervisorCrashed(fmt.Errorf("%s: %s: hypervisor hung: %s", name, op, c.reason))
	}
	return nil
}
