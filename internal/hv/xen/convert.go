package xen

import (
	"encoding/binary"
	"fmt"

	"hypertp/internal/uisr"
)

// This file implements the paper's to_uisr_xxx / from_uisr_xxx family for
// Xen (§3.1): translation between the HVM context blob and the neutral
// UISR representation, following the Table 2 mapping. The UISR is "a
// slight modification of Xen's virtual resource state representation"
// (§4.2), which shows here as mostly structural re-grouping — the genuine
// format work happens on the KVM side.

// toUISR translates a parsed domain context into UISR platform state.
func toUISR(ctx *domainContext) (*uisr.VMState, error) {
	s := &uisr.VMState{SourceHypervisor: "xen"}
	for i := range ctx.cpus {
		v := uisr.VCPU{ID: uint32(i)}
		cpuToUISR(&ctx.cpus[i], &v)
		lapicToUISR(&ctx.lapics[i], &ctx.lapicRegs[i], &v.LAPIC)
		// Xen keeps the APIC base in its LAPIC record; the neutral
		// SRegs view mirrors it (Table 2: LAPIC → MSRS on KVM).
		v.SRegs.APICBase = v.LAPIC.Base
		mtrrToUISR(&ctx.mtrrs[i], &v.MTRR)
		xsaveToUISR(&ctx.xsaves[i], &v.XSave)
		for _, e := range ctx.msrs[i] {
			v.MSRs = append(v.MSRs, uisr.MSR{Index: e.Index, Value: e.Value})
		}
		s.VCPUs = append(s.VCPUs, v)
	}
	ioapicToUISR(&ctx.ioapic, &s.IOAPIC)
	s.HasPIT = true // Xen's HVM platform always emulates the 8254
	pitToUISR(&ctx.pit, &s.PIT)
	s.RTC = uisr.RTC{CMOS: ctx.rtc.CMOS, Index: ctx.rtc.Index}
	// Xen's HVM platform always emulates HPET and the ACPI PM timer.
	s.HasHPET = true
	s.HPET = uisr.HPET{
		Capability: ctx.hpet.Capability, Config: ctx.hpet.Config,
		ISR: ctx.hpet.ISR, Counter: ctx.hpet.Counter,
	}
	for i := range ctx.hpet.Timers {
		s.HPET.Timers[i] = uisr.HPETTimer{
			Config:     ctx.hpet.Timers[i].Config,
			Comparator: ctx.hpet.Timers[i].Comparator,
			FSBRoute:   ctx.hpet.Timers[i].FSB,
		}
	}
	s.HasPMTimer = true
	s.PMTimer = uisr.PMTimer{Value: ctx.pmtimer.Value, BaseNS: ctx.pmtimer.BaseNS}
	return s, nil
}

// fromUISR translates UISR platform state into a fresh domain context.
// It applies the KVM→Xen compatibility fixes of §4.2.1: a narrower
// source IOAPIC is widened to Xen's 48 pins with the extra pins masked.
func fromUISR(s *uisr.VMState) (*domainContext, error) {
	ctx := &domainContext{
		header: hvmHeader{Magic: hvmMagic, Version: 2, Changes: 0x41251},
	}
	for i := range s.VCPUs {
		v := &s.VCPUs[i]
		var cpu hvmCPU
		cpuFromUISR(v, &cpu)
		ctx.cpus = append(ctx.cpus, cpu)

		var lapic hvmLAPIC
		var lregs hvmLAPICRegs
		lapicFromUISR(&v.LAPIC, &lapic, &lregs)
		ctx.lapics = append(ctx.lapics, lapic)
		ctx.lapicRegs = append(ctx.lapicRegs, lregs)

		var mtrr hvmMTRR
		mtrrFromUISR(&v.MTRR, &mtrr)
		ctx.mtrrs = append(ctx.mtrrs, mtrr)

		var xs hvmXSave
		xsaveFromUISR(&v.XSave, &xs)
		ctx.xsaves = append(ctx.xsaves, xs)

		entries := make([]hvmMSREntry, 0, len(v.MSRs))
		for _, m := range v.MSRs {
			entries = append(entries, hvmMSREntry{Index: m.Index, Value: m.Value})
		}
		ctx.msrs = append(ctx.msrs, entries)
	}
	if err := ioapicFromUISR(&s.IOAPIC, &ctx.ioapic); err != nil {
		return nil, err
	}
	if s.HasPIT {
		pitFromUISR(&s.PIT, &ctx.pit)
	} else {
		// Source without an 8254 (microhypervisor with paravirtual
		// time): synthesize the power-on default — channel 0 in mode 3
		// with the full 65536 count, as the BIOS programs it.
		ctx.pit.Channels[0].Mode = 3
		ctx.pit.Channels[0].Count = 0 // 0 encodes 65536
		ctx.pit.Channels[0].Gate = 1
	}
	ctx.rtc = hvmRTC{CMOS: s.RTC.CMOS, Index: s.RTC.Index}
	if s.HasHPET {
		ctx.hpet = hvmHPET{
			Capability: s.HPET.Capability, Config: s.HPET.Config,
			ISR: s.HPET.ISR, Counter: s.HPET.Counter,
		}
		for i := range s.HPET.Timers {
			ctx.hpet.Timers[i].Config = s.HPET.Timers[i].Config
			ctx.hpet.Timers[i].Comparator = s.HPET.Timers[i].Comparator
			ctx.hpet.Timers[i].FSB = s.HPET.Timers[i].FSBRoute
		}
	} else {
		// KVM→Xen compatibility: the source had no HPET (kvmtool), so
		// Xen's comes up disabled with its legacy default capability.
		ctx.hpet = hvmHPET{Capability: 0x8086a201}
	}
	if s.HasPMTimer {
		ctx.pmtimer = hvmPMTimer{Value: s.PMTimer.Value, BaseNS: s.PMTimer.BaseNS}
	}
	return ctx, nil
}

func cpuToUISR(c *hvmCPU, v *uisr.VCPU) {
	v.Regs = uisr.Regs{
		RAX: c.RAX, RBX: c.RBX, RCX: c.RCX, RDX: c.RDX,
		RSI: c.RSI, RDI: c.RDI, RSP: c.RSP, RBP: c.RBP,
		R8: c.R8, R9: c.R9, R10: c.R10, R11: c.R11,
		R12: c.R12, R13: c.R13, R14: c.R14, R15: c.R15,
		RIP: c.RIP, RFLAGS: c.RFlags,
	}
	seg := func(base uint64, limit, ar uint32, sel uint16) uisr.Segment {
		return uisr.Segment{Selector: sel, Attr: uint16(ar), Limit: limit, Base: base}
	}
	v.SRegs = uisr.SRegs{
		CS:  seg(c.CSBase, c.CSLimit, c.CSAr, c.CSSel),
		DS:  seg(c.DSBase, c.DSLimit, c.DSAr, c.DSSel),
		ES:  seg(c.ESBase, c.ESLimit, c.ESAr, c.ESSel),
		FS:  seg(c.FSBase, c.FSLimit, c.FSAr, c.FSSel),
		GS:  seg(c.GSBase, c.GSLimit, c.GSAr, c.GSSel),
		SS:  seg(c.SSBase, c.SSLimit, c.SSAr, c.SSSel),
		TR:  seg(c.TRBase, c.TRLimit, c.TRAr, c.TRSel),
		LDT: seg(c.LDTRBase, c.LDTRLimit, c.LDTRAr, c.LDTRSel),
		GDT: uisr.DTable{Base: c.GDTBase, Limit: uint16(c.GDTLimit)},
		IDT: uisr.DTable{Base: c.IDTBase, Limit: uint16(c.IDTLimit)},
		CR0: c.CR0, CR2: c.CR2, CR3: c.CR3, CR4: c.CR4, CR8: c.CR8,
		EFER: c.EFER,
	}
	copy(v.FPU.Data[:], c.FPU[:])
}

func cpuFromUISR(v *uisr.VCPU, c *hvmCPU) {
	r := &v.Regs
	c.RAX, c.RBX, c.RCX, c.RDX = r.RAX, r.RBX, r.RCX, r.RDX
	c.RBP, c.RSI, c.RDI, c.RSP = r.RBP, r.RSI, r.RDI, r.RSP
	c.R8, c.R9, c.R10, c.R11 = r.R8, r.R9, r.R10, r.R11
	c.R12, c.R13, c.R14, c.R15 = r.R12, r.R13, r.R14, r.R15
	c.RIP, c.RFlags = r.RIP, r.RFLAGS

	s := &v.SRegs
	c.CR0, c.CR2, c.CR3, c.CR4, c.CR8 = s.CR0, s.CR2, s.CR3, s.CR4, s.CR8
	c.EFER = s.EFER
	c.CSBase, c.CSLimit, c.CSAr, c.CSSel = s.CS.Base, s.CS.Limit, uint32(s.CS.Attr), s.CS.Selector
	c.DSBase, c.DSLimit, c.DSAr, c.DSSel = s.DS.Base, s.DS.Limit, uint32(s.DS.Attr), s.DS.Selector
	c.ESBase, c.ESLimit, c.ESAr, c.ESSel = s.ES.Base, s.ES.Limit, uint32(s.ES.Attr), s.ES.Selector
	c.FSBase, c.FSLimit, c.FSAr, c.FSSel = s.FS.Base, s.FS.Limit, uint32(s.FS.Attr), s.FS.Selector
	c.GSBase, c.GSLimit, c.GSAr, c.GSSel = s.GS.Base, s.GS.Limit, uint32(s.GS.Attr), s.GS.Selector
	c.SSBase, c.SSLimit, c.SSAr, c.SSSel = s.SS.Base, s.SS.Limit, uint32(s.SS.Attr), s.SS.Selector
	c.TRBase, c.TRLimit, c.TRAr, c.TRSel = s.TR.Base, s.TR.Limit, uint32(s.TR.Attr), s.TR.Selector
	c.LDTRBase, c.LDTRLimit, c.LDTRAr, c.LDTRSel = s.LDT.Base, s.LDT.Limit, uint32(s.LDT.Attr), s.LDT.Selector
	c.GDTBase, c.GDTLimit = s.GDT.Base, uint32(s.GDT.Limit)
	c.IDTBase, c.IDTLimit = s.IDT.Base, uint32(s.IDT.Limit)
	copy(c.FPU[:], v.FPU.Data[:])
}

func lapicToUISR(l *hvmLAPIC, regs *hvmLAPICRegs, out *uisr.LAPIC) {
	out.Base = l.APICBaseMSR
	for i := 0; i < uisr.NumLAPICRegs; i++ {
		out.Regs[i] = binary.LittleEndian.Uint32(regs.Data[i*16:])
	}
	// APIC ID lives in the register page at stride 2 (offset 0x20),
	// bits 24-31.
	out.ID = out.Regs[2] >> 24
}

func lapicFromUISR(in *uisr.LAPIC, l *hvmLAPIC, regs *hvmLAPICRegs) {
	l.APICBaseMSR = in.Base
	if in.Base&(1<<11) == 0 {
		l.Disabled = 1
	}
	l.TimerDivisor = 16
	for i := 0; i < uisr.NumLAPICRegs; i++ {
		binary.LittleEndian.PutUint32(regs.Data[i*16:], in.Regs[i])
	}
	// Ensure the ID register matches the neutral ID field.
	binary.LittleEndian.PutUint32(regs.Data[2*16:], in.ID<<24)
}

func mtrrToUISR(m *hvmMTRR, out *uisr.MTRRState) {
	out.Cap = m.Cap
	out.DefType = m.DefType
	out.Fixed = m.Fixed
	for i := 0; i < 8; i++ {
		out.VarBase[i] = m.VarPairs[2*i]
		out.VarMask[i] = m.VarPairs[2*i+1]
	}
	out.Enabled = m.Flags&1 != 0
	out.FixedEna = m.Flags&2 != 0
}

func mtrrFromUISR(in *uisr.MTRRState, m *hvmMTRR) {
	m.Cap = in.Cap
	m.DefType = in.DefType
	m.Fixed = in.Fixed
	for i := 0; i < 8; i++ {
		m.VarPairs[2*i] = in.VarBase[i]
		m.VarPairs[2*i+1] = in.VarMask[i]
	}
	m.Flags = 0
	if in.Enabled {
		m.Flags |= 1
	}
	if in.FixedEna {
		m.Flags |= 2
	}
	m.PATCr = 0x0007040600070406 // power-on PAT
}

func xsaveToUISR(x *hvmXSave, out *uisr.XSave) {
	out.XCR0 = x.XCR0
	out.Header = x.Header
	out.Extended = x.YMM
}

func xsaveFromUISR(in *uisr.XSave, x *hvmXSave) {
	x.XCR0 = in.XCR0
	x.XCR0Accum = in.XCR0
	x.Header = in.Header
	x.YMM = in.Extended
}

func ioapicToUISR(io *hvmIOAPIC, out *uisr.IOAPIC) {
	out.ID = io.ID
	out.NumPins = uisr.XenIOAPICPins
	copy(out.Redir[:], io.Redir[:])
}

// ioapicFromUISR widens the neutral IOAPIC to Xen's 48 pins. Pins beyond
// the source's count are installed masked (bit 16 set), the §4.2.1
// compatibility treatment in the Xen direction.
func ioapicFromUISR(in *uisr.IOAPIC, io *hvmIOAPIC) error {
	if in.NumPins > uisr.XenIOAPICPins {
		return fmt.Errorf("xen: source IOAPIC has %d pins, more than Xen's %d",
			in.NumPins, uisr.XenIOAPICPins)
	}
	io.ID = in.ID
	for p := 0; p < int(in.NumPins); p++ {
		io.Redir[p] = in.Redir[p]
	}
	const maskBit = 1 << 16
	for p := int(in.NumPins); p < uisr.XenIOAPICPins; p++ {
		io.Redir[p] = maskBit
	}
	return nil
}

func pitToUISR(p *hvmPIT, out *uisr.PIT) {
	for i := range out.Channels {
		out.Channels[i] = uisr.PITChannel{
			Count:     p.Channels[i].Count,
			Latched:   p.Channels[i].LatchedCount,
			Mode:      p.Channels[i].Mode,
			BCD:       p.Channels[i].BCD,
			Gate:      p.Channels[i].Gate,
			OutHigh:   p.Channels[i].OutHigh,
			CountLoad: p.CountLoad[i],
		}
	}
	out.Speaker = p.Speaker
}

func pitFromUISR(in *uisr.PIT, p *hvmPIT) {
	for i := range in.Channels {
		p.Channels[i].Count = in.Channels[i].Count
		p.Channels[i].LatchedCount = in.Channels[i].Latched
		p.Channels[i].Mode = in.Channels[i].Mode
		p.Channels[i].BCD = in.Channels[i].BCD
		p.Channels[i].Gate = in.Channels[i].Gate
		p.Channels[i].OutHigh = in.Channels[i].OutHigh
		p.CountLoad[i] = in.Channels[i].CountLoad
	}
	p.Speaker = in.Speaker
}
