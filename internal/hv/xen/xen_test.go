package xen

import (
	"bytes"
	"reflect"
	"testing"
	"testing/quick"

	"hypertp/internal/hv"
	"hypertp/internal/hw"
	"hypertp/internal/simtime"
	"hypertp/internal/uisr"
)

func bootXen(t *testing.T) *Xen {
	t.Helper()
	m := hw.NewMachine(simtime.NewClock(), hw.M1())
	x, err := Boot(m)
	if err != nil {
		t.Fatal(err)
	}
	return x
}

func testConfig(name string) hv.Config {
	return hv.Config{Name: name, VCPUs: 2, MemBytes: 64 << 20, HugePages: true, Seed: 7}
}

func TestBootReservesHVState(t *testing.T) {
	x := bootXen(t)
	counts := x.Machine().Mem.CountByOwner()
	if counts[hw.OwnerHV] != HVResidentBytes/hw.PageSize4K {
		t.Fatalf("HV frames = %d, want %d", counts[hw.OwnerHV], HVResidentBytes/hw.PageSize4K)
	}
	if x.Kind() != hv.KindXen || x.Name() != Version {
		t.Fatal("identity wrong")
	}
}

func TestCreateVM(t *testing.T) {
	x := bootXen(t)
	vm, err := x.CreateVM(testConfig("web"))
	if err != nil {
		t.Fatal(err)
	}
	if vm.ID != 1 {
		t.Fatalf("first domid = %d, want 1", vm.ID)
	}
	if vm.Guest == nil {
		t.Fatal("no guest attached")
	}
	if vm.Paused() {
		t.Fatal("fresh VM paused")
	}
	counts := x.Machine().Mem.CountByOwner()
	if counts[hw.OwnerGuest] != (64<<20)/hw.PageSize4K {
		t.Fatalf("guest frames = %d", counts[hw.OwnerGuest])
	}
	if counts[hw.OwnerVMState] == 0 {
		t.Fatal("no VM_i State frames allocated")
	}
}

func TestCreateVMValidation(t *testing.T) {
	x := bootXen(t)
	if _, err := x.CreateVM(hv.Config{}); err == nil {
		t.Fatal("empty config accepted")
	}
}

func TestVMListAndLookup(t *testing.T) {
	x := bootXen(t)
	a, _ := x.CreateVM(testConfig("a"))
	b, _ := x.CreateVM(testConfig("b"))
	vms := x.VMs()
	if len(vms) != 2 || vms[0].ID != a.ID || vms[1].ID != b.ID {
		t.Fatalf("VMs() wrong: %v", vms)
	}
	if got, ok := x.LookupVM(a.ID); !ok || got != a {
		t.Fatal("lookup failed")
	}
	if _, ok := x.LookupVM(99); ok {
		t.Fatal("phantom VM found")
	}
}

func TestPauseResume(t *testing.T) {
	x := bootXen(t)
	vm, _ := x.CreateVM(testConfig("p"))
	if err := x.Pause(vm.ID); err != nil {
		t.Fatal(err)
	}
	if !vm.Paused() {
		t.Fatal("not paused")
	}
	if err := x.Pause(vm.ID); err == nil {
		t.Fatal("double pause accepted")
	}
	if err := x.Resume(vm.ID); err != nil {
		t.Fatal(err)
	}
	if vm.Paused() {
		t.Fatal("still paused")
	}
	if err := x.Pause(99); err == nil {
		t.Fatal("pause of unknown domain accepted")
	}
}

func TestSaveUISRRequiresPause(t *testing.T) {
	x := bootXen(t)
	vm, _ := x.CreateVM(testConfig("s"))
	if _, err := x.SaveUISR(vm.ID); err == nil {
		t.Fatal("SaveUISR on running domain accepted")
	}
	x.Pause(vm.ID)
	st, err := x.SaveUISR(vm.ID)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Validate(); err != nil {
		t.Fatal(err)
	}
	if st.SourceHypervisor != "xen" {
		t.Fatalf("source = %q", st.SourceHypervisor)
	}
	if len(st.VCPUs) != 2 {
		t.Fatalf("vCPUs = %d", len(st.VCPUs))
	}
	if st.IOAPIC.NumPins != uisr.XenIOAPICPins {
		t.Fatalf("IOAPIC pins = %d, want 48", st.IOAPIC.NumPins)
	}
}

// The core identity: save → restore within Xen preserves the full UISR
// state (the Xen→UISR→Xen lossless round trip from DESIGN.md).
func TestXenUISRRoundTripLossless(t *testing.T) {
	x := bootXen(t)
	vm, _ := x.CreateVM(testConfig("rt"))
	x.Pause(vm.ID)
	st1, err := x.SaveUISR(vm.ID)
	if err != nil {
		t.Fatal(err)
	}
	restored, err := x.RestoreUISR(st1, hv.RestoreOptions{Mode: hv.RestoreAllocate})
	if err != nil {
		t.Fatal(err)
	}
	if !restored.Paused() {
		t.Fatal("restored VM not paused")
	}
	st2, err := x.SaveUISR(restored.ID)
	if err != nil {
		t.Fatal(err)
	}
	// Ignore identity fields that legitimately change.
	st2.VMID = st1.VMID
	if !reflect.DeepEqual(st1, st2) {
		t.Fatal("Xen→UISR→Xen round trip is lossy")
	}
}

func TestContextBlobIsXenFormat(t *testing.T) {
	x := bootXen(t)
	vm, _ := x.CreateVM(testConfig("fmt"))
	blob, err := x.ContextBlob(vm.ID)
	if err != nil {
		t.Fatal(err)
	}
	ctx, err := parseContext(blob)
	if err != nil {
		t.Fatal(err)
	}
	if ctx.header.Magic != hvmMagic {
		t.Fatal("wrong magic")
	}
	if len(ctx.cpus) != 2 {
		t.Fatalf("cpus = %d", len(ctx.cpus))
	}
	// Re-marshaling must be deterministic.
	if !bytes.Equal(marshalContext(ctx), blob) {
		t.Fatal("context marshal not canonical")
	}
}

func TestParseContextRejectsCorruption(t *testing.T) {
	x := bootXen(t)
	vm, _ := x.CreateVM(testConfig("c"))
	blob, _ := x.ContextBlob(vm.ID)

	if _, err := parseContext(blob[:len(blob)-4]); err == nil {
		t.Fatal("truncated blob accepted")
	}
	bad := append([]byte(nil), blob...)
	bad[0] = 0xEE // unknown record type
	if _, err := parseContext(bad); err == nil {
		t.Fatal("unknown record type accepted")
	}
	if _, err := parseContext(nil); err == nil {
		t.Fatal("empty blob accepted")
	}
	// Records after the end marker.
	withTrailer := append(append([]byte(nil), blob...), 2, 0, 0, 0, 0, 0, 0, 0)
	if _, err := parseContext(withTrailer); err == nil {
		t.Fatal("records after end marker accepted")
	}
}

func TestIOAPICWideningFix(t *testing.T) {
	// A KVM-sourced UISR has 24 pins; restoring on Xen must widen to 48
	// with the upper pins masked (§4.2.1, KVM→Xen direction).
	st := uisr.SyntheticVM("narrow", 1, 1, 64<<20, 3)
	st.IOAPIC.NumPins = uisr.KVMIOAPICPins
	var io hvmIOAPIC
	if err := ioapicFromUISR(&st.IOAPIC, &io); err != nil {
		t.Fatal(err)
	}
	for p := 0; p < uisr.KVMIOAPICPins; p++ {
		if io.Redir[p] != st.IOAPIC.Redir[p] {
			t.Fatalf("pin %d changed", p)
		}
	}
	const maskBit = 1 << 16
	for p := uisr.KVMIOAPICPins; p < uisr.XenIOAPICPins; p++ {
		if io.Redir[p] != maskBit {
			t.Fatalf("widened pin %d not masked: %#x", p, io.Redir[p])
		}
	}
}

func TestIOAPICTooWideRejected(t *testing.T) {
	in := uisr.IOAPIC{NumPins: uisr.XenIOAPICPins + 1}
	var io hvmIOAPIC
	if err := ioapicFromUISR(&in, &io); err == nil {
		t.Fatal("oversized IOAPIC accepted")
	}
}

func TestRestoreAdoptInPlace(t *testing.T) {
	x := bootXen(t)
	vm, _ := x.CreateVM(testConfig("adopt"))
	vm.Guest.WriteWorkingSet(0, 32)
	x.Pause(vm.ID)
	st, _ := x.SaveUISR(vm.ID)
	st.MemMap, _ = x.MemExtents(vm.ID)
	g := vm.Guest

	// Drop the old domain's VM_i State but keep guest memory, then
	// adopt it back — the InPlaceTP memory path in miniature.
	if err := x.ReleaseVMState(vm.ID); err != nil {
		t.Fatal(err)
	}
	restored, err := x.RestoreUISR(st, hv.RestoreOptions{Mode: hv.RestoreAdopt})
	if err != nil {
		t.Fatal(err)
	}
	if err := x.AttachGuest(restored.ID, g); err != nil {
		t.Fatal(err)
	}
	if err := g.Verify(); err != nil {
		t.Fatalf("guest state lost: %v", err)
	}
}

func TestRestoreAdoptWithoutMapFails(t *testing.T) {
	x := bootXen(t)
	st := uisr.SyntheticVM("nomap", 1, 1, 64<<20, 1)
	if _, err := x.RestoreUISR(st, hv.RestoreOptions{Mode: hv.RestoreAdopt}); err == nil {
		t.Fatal("adopt without map accepted")
	}
}

func TestDestroyVMReleasesMemory(t *testing.T) {
	x := bootXen(t)
	before := x.Machine().Mem.AllocatedFrames()
	vm, _ := x.CreateVM(testConfig("d"))
	if err := x.DestroyVM(vm.ID); err != nil {
		t.Fatal(err)
	}
	if got := x.Machine().Mem.AllocatedFrames(); got != before {
		t.Fatalf("leak: %d frames, want %d", got, before)
	}
	if err := x.DestroyVM(vm.ID); err == nil {
		t.Fatal("double destroy accepted")
	}
}

func TestEventChannelsAndRunQueue(t *testing.T) {
	x := bootXen(t)
	vm, _ := x.CreateVM(testConfig("e"))
	ports, err := x.EventChannels(vm.ID)
	if err != nil {
		t.Fatal(err)
	}
	// console + xenstore + one virq per vCPU.
	if len(ports) != 2+vm.Config.VCPUs {
		t.Fatalf("ports = %d", len(ports))
	}
	if q := x.RunQueue(); len(q) != 1 || q[0] != vm.ID {
		t.Fatalf("runq = %v", q)
	}
	x.CreateVM(testConfig("e2"))
	if q := x.RunQueue(); len(q) != 2 {
		t.Fatalf("runq after second VM = %v", q)
	}
}

func TestFootprint(t *testing.T) {
	x := bootXen(t)
	vm, _ := x.CreateVM(testConfig("f"))
	fp, err := x.Footprint(vm.ID)
	if err != nil {
		t.Fatal(err)
	}
	if fp.GuestBytes != 64<<20 {
		t.Fatalf("GuestBytes = %d", fp.GuestBytes)
	}
	if fp.VMStateBytes == 0 || fp.MgmtBytes == 0 {
		t.Fatalf("footprint has zero components: %+v", fp)
	}
	if x.MgmtStateBytes() == 0 {
		t.Fatal("MgmtStateBytes zero with a domain present")
	}
}

func TestDirtyLogging(t *testing.T) {
	x := bootXen(t)
	vm, _ := x.CreateVM(testConfig("dl"))
	if err := x.EnableDirtyLog(vm.ID); err != nil {
		t.Fatal(err)
	}
	vm.Guest.Write(3, 0, []byte{1})
	dirty, err := x.FetchAndClearDirty(vm.ID)
	if err != nil || len(dirty) != 1 || dirty[0] != 3 {
		t.Fatalf("dirty = %v, %v", dirty, err)
	}
	if err := x.DisableDirtyLog(vm.ID); err != nil {
		t.Fatal(err)
	}
}

// Property: UISR → Xen context → UISR is the identity on platform state
// for arbitrary synthetic seeds.
func TestPropertyConvertRoundTrip(t *testing.T) {
	f := func(seed uint64, vcpusRaw uint8) bool {
		vcpus := int(vcpusRaw%8) + 1
		st := uisr.SyntheticVM("prop", 1, vcpus, 1<<30, seed)
		st.IOAPIC.NumPins = uisr.XenIOAPICPins
		ctx, err := fromUISR(st)
		if err != nil {
			return false
		}
		// Serialize through the blob format too.
		ctx2, err := parseContext(marshalContext(ctx))
		if err != nil {
			return false
		}
		back, err := toUISR(ctx2)
		if err != nil {
			return false
		}
		// Identity, devices and scheduling weight travel at the
		// hypervisor level (SaveUISR), not through the platform blob.
		back.Name, back.VMID = st.Name, st.VMID
		back.MemBytes, back.HugePages = st.MemBytes, st.HugePages
		back.SourceHypervisor = st.SourceHypervisor
		back.Devices = st.Devices
		back.Weight = st.Weight
		return reflect.DeepEqual(st, back)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// KVM-sourced state has no HPET/PM timer; Xen's restore path must come up
// with a disabled HPET rather than fail (the reverse compatibility fix).
func TestTimersSynthesizedFromKVMSource(t *testing.T) {
	st := uisr.SyntheticVM("kvm-born", 1, 1, 64<<20, 33)
	st.IOAPIC.NumPins = uisr.KVMIOAPICPins
	st.HasHPET, st.HasPMTimer = false, false
	ctx, err := fromUISR(st)
	if err != nil {
		t.Fatal(err)
	}
	if ctx.hpet.Config != 0 || ctx.hpet.Counter != 0 {
		t.Fatal("synthesized HPET not disabled")
	}
	if ctx.hpet.Capability == 0 {
		t.Fatal("synthesized HPET has no capability id")
	}
	if ctx.pmtimer != (hvmPMTimer{}) {
		t.Fatal("synthesized PM timer not zeroed")
	}
	// And the synthesized state reports as present on the next save —
	// Xen emulates them from now on.
	back, err := toUISR(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !back.HasHPET || !back.HasPMTimer {
		t.Fatal("Xen does not report its own platform timers")
	}
	if back.RTC != st.RTC {
		t.Fatal("RTC state lost crossing formats")
	}
}
