package xen

import (
	"testing"

	"hypertp/internal/hv"
	"hypertp/internal/hw"
	"hypertp/internal/simtime"
	"hypertp/internal/uisr"
)

// TestRestoreFailureLeaksNoFrames is the regression for the chaos
// finding: a restore that fails after guest memory was allocated (here:
// VM_i State frames do not fit) must release everything it took, or
// every failed restore retry leaks a VM's worth of frames.
func TestRestoreFailureLeaksNoFrames(t *testing.T) {
	prof := hw.M1()
	prof.RAMBytes = 512 << 20
	m := hw.NewMachine(simtime.NewClock(), prof)
	x, err := Boot(m)
	if err != nil {
		t.Fatal(err)
	}
	freeBefore := m.Mem.FreeFrames()
	// The guest image exactly fills free memory: the address space
	// allocates, the context frames afterwards cannot.
	st := uisr.SyntheticVM("too-big", 1, 2, freeBefore*hw.PageSize4K, 11)
	if _, err := x.RestoreUISR(st, hv.RestoreOptions{Mode: hv.RestoreAllocate}); err == nil {
		t.Fatal("restore with no room for VM state succeeded")
	}
	if free := m.Mem.FreeFrames(); free != freeBefore {
		t.Fatalf("failed restore leaked %d frames", freeBefore-free)
	}
	if vs := m.Mem.AuditOwners(map[int]bool{}); vs != nil {
		t.Fatalf("failed restore left violations: %v", vs)
	}
	// The host is still usable: a reasonable VM restores fine.
	ok := uisr.SyntheticVM("fits", 2, 1, 64<<20, 12)
	if _, err := x.RestoreUISR(ok, hv.RestoreOptions{Mode: hv.RestoreAllocate}); err != nil {
		t.Fatal(err)
	}
}
