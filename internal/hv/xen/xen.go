package xen

import (
	"fmt"
	"sort"

	"hypertp/internal/guest"
	"hypertp/internal/hv"
	"hypertp/internal/hw"
	"hypertp/internal/uisr"
)

// HVResidentBytes is the memory the Xen hypervisor plus dom0 pin at boot
// (Xen heap, dom0 kernel and userspace). It is HV State in the Fig. 2
// taxonomy: wiped and rebuilt by every micro-reboot.
const HVResidentBytes = 192 << 20

// domain is Xen's per-VM bookkeeping: the VM_i State in Fig. 2 terms.
type domain struct {
	vm *hv.VM
	// ctxBlob is the domain's platform state in Xen's HVM context
	// format. This — not any neutral struct — is Xen's source of truth.
	ctxBlob []byte
	// p2m is the superpage-aware physical-map metadata (extent form).
	p2m []uisr.PageExtent
	// p2mFrames hold the p2m structures themselves (OwnerVMState).
	p2mFrames []hw.MFN
	// ctxFrames hold the context blob (OwnerVMState).
	ctxFrames []hw.MFN
	// eventChannels is the domain's event channel port table.
	eventChannels []evtchn
	// devices are the emulation-state snapshots of the domain's
	// device models (QEMU/demu side).
	devices []uisr.EmulatedDevice
	// weight is the credit-scheduler weight (VM Management State).
	weight int
}

type evtchn struct {
	Port   int
	Kind   string // "virq", "interdomain"
	Target int
}

// Xen is the type-I hypervisor model.
type Xen struct {
	hv.CrashState
	machine  *hw.Machine
	domains  map[hv.VMID]*domain
	nextID   hv.VMID
	hvRanges []hw.FrameRange
	// runq is the credit scheduler's run queue: VM Management State,
	// rebuilt from VM_i State after transplant, never translated.
	runq []hv.VMID
	gen  int
}

// Version is the modeled Xen release (the paper's testbed).
const Version = "xen-4.12.1"

var (
	_ hv.Hypervisor = (*Xen)(nil)
	_ hv.Crashable  = (*Xen)(nil)
)

// Boot instantiates Xen on the machine, reserving its HV State resident
// set. It must be called on a machine whose previous hypervisor state was
// wiped (fresh boot or post-kexec).
func Boot(m *hw.Machine) (*Xen, error) {
	ranges, err := m.Mem.AllocRanges(HVResidentBytes/hw.PageSize4K, hw.OwnerHV, -1)
	if err != nil {
		return nil, fmt.Errorf("xen: boot reservation: %w", err)
	}
	return &Xen{
		machine:  m,
		domains:  make(map[hv.VMID]*domain),
		nextID:   1, // dom0 is the host; guests start at domid 1
		hvRanges: ranges,
		gen:      m.Generation(),
	}, nil
}

// Kind implements hv.Hypervisor.
func (x *Xen) Kind() hv.Kind { return hv.KindXen }

// Name implements hv.Hypervisor.
func (x *Xen) Name() string { return Version }

// Machine implements hv.Hypervisor.
func (x *Xen) Machine() *hw.Machine { return x.machine }

// freezeVCPUs stops every domain's vCPUs in place — the fail-stop and
// hang models both leave the guests exactly where the scheduler dropped
// them, which is what makes pause-less salvage capture possible.
func (x *Xen) freezeVCPUs() {
	for _, dom := range x.domains {
		dom.vm.SetPaused(true)
	}
}

// Crash implements hv.Crashable: Xen fail-stops and every domain's
// vCPUs freeze with guest memory and VM_i State intact.
func (x *Xen) Crash(reason string) bool {
	first := x.MarkCrashed(reason)
	x.freezeVCPUs()
	return first
}

// Hang implements hv.Crashable: the toolstack wedges; vCPUs freeze but
// only missed heartbeats reveal it.
func (x *Xen) Hang(reason string) bool {
	first := x.MarkHung(reason)
	x.freezeVCPUs()
	return first
}

// Fence implements hv.Crashable.
func (x *Xen) Fence(reason string) {
	x.MarkCrashed(reason)
	x.freezeVCPUs()
}

// CreateVM implements hv.Hypervisor: it builds a new HVM domain with
// synthetic-but-deterministic platform state (standing in for a booted
// guest), allocates its guest memory, and installs its VM_i State.
func (x *Xen) CreateVM(cfg hv.Config) (*hv.VM, error) {
	if err := x.Barrier(Version, "create"); err != nil {
		return nil, err
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	id := x.nextID
	x.nextID++

	// Synthesize the running guest's platform state in neutral form,
	// then convert it into Xen's own format — CreateVM exercises the
	// from_uisr path, transplant exercises to_uisr.
	st := uisr.SyntheticVM(cfg.Name, uint32(id), cfg.VCPUs, cfg.MemBytes, cfg.Seed)
	st.IOAPIC.NumPins = uisr.XenIOAPICPins
	if cfg.Weight > 0 {
		st.Weight = uint16(cfg.Weight)
	}
	return x.instantiate(id, cfg, st, hv.RestoreOptions{Mode: hv.RestoreAllocate,
		InPlaceCompatible: cfg.InPlaceCompatible}, nil, true)
}

// RestoreUISR implements hv.Hypervisor (the InPlaceTP / MigrationTP
// restore side).
func (x *Xen) RestoreUISR(st *uisr.VMState, opts hv.RestoreOptions) (*hv.VM, error) {
	if err := x.Barrier(Version, "restore"); err != nil {
		return nil, err
	}
	if err := st.Validate(); err != nil {
		return nil, err
	}
	id := x.nextID
	x.nextID++
	cfg := hv.Config{
		Name:              st.Name,
		VCPUs:             len(st.VCPUs),
		MemBytes:          st.MemBytes,
		HugePages:         st.HugePages,
		InPlaceCompatible: opts.InPlaceCompatible,
		Weight:            int(st.Weight),
	}
	vm, err := x.instantiate(id, cfg, st, opts, st.MemMap, false)
	if err != nil {
		return nil, err
	}
	// Restored VMs come back paused; the engine resumes them at the
	// end of the workflow (Fig. 3 step 7).
	vm.SetPaused(true)
	return vm, nil
}

// instantiate is the shared create/restore path. fresh marks a brand-new
// VM (CreateVM) that gets its own guest software stack attached.
func (x *Xen) instantiate(id hv.VMID, cfg hv.Config, st *uisr.VMState,
	opts hv.RestoreOptions, adopt []uisr.PageExtent, fresh bool) (*hv.VM, error) {

	// 1. Guest memory: adopt in place or allocate fresh.
	var space *hv.AddressSpace
	var err error
	switch opts.Mode {
	case hv.RestoreAdopt:
		if len(adopt) == 0 {
			return nil, fmt.Errorf("xen: adopt restore without memory map for %q", cfg.Name)
		}
		space, err = hv.NewAddressSpace(x.machine.Mem, adopt)
		if err == nil {
			err = space.Retag(hw.OwnerGuest, int(id))
		}
	case hv.RestoreAllocate:
		space, err = hv.AllocAddressSpace(x.machine.Mem, int(id), cfg.MemBytes, cfg.HugePages)
	default:
		err = fmt.Errorf("xen: unknown restore mode %d", opts.Mode)
	}
	if err != nil {
		return nil, err
	}
	// From here on the space (and any VM_i State frames already
	// allocated) must not leak on failure. Freshly allocated guest
	// memory is released; adopted memory keeps its PRAM-preserved
	// contents and guest tag so the engine's restore retry can adopt
	// it again.
	undoSpace := func() {
		if opts.Mode == hv.RestoreAllocate {
			_ = space.Release()
		}
	}

	// 2. Platform state: UISR → Xen HVM context blob (from_uisr path),
	// with the §4.2.1 IOAPIC widening fix applied as needed.
	ctx, err := fromUISR(st)
	if err != nil {
		undoSpace()
		return nil, err
	}
	blob := marshalContext(ctx)

	weight := int(st.Weight)
	if weight == 0 {
		weight = uisr.DefaultWeight
	}
	dom := &domain{
		p2m:     space.Extents(),
		ctxBlob: blob,
		devices: append([]uisr.EmulatedDevice(nil), st.Devices...),
		// The credit-scheduler weight: VM Management State rebuilt from
		// the neutral value.
		weight: weight,
	}
	// 3. VM_i State frames: the context blob and the p2m structures
	// live in hypervisor memory tagged OwnerVMState, so the memory
	// census (Fig. 2) and PRAM wipe semantics are real.
	dom.ctxFrames, err = x.writeToFrames(blob, int(id))
	if err != nil {
		undoSpace()
		return nil, err
	}
	p2mBytes := len(dom.p2m) * 8 // one 8-byte entry per extent in Xen's table
	dom.p2mFrames, err = x.machine.Mem.Alloc(framesFor(p2mBytes), hw.OwnerVMState, int(id))
	if err != nil {
		for _, f := range dom.ctxFrames {
			_ = x.machine.Mem.Free(f)
		}
		undoSpace()
		return nil, err
	}
	// 4. Event channels: store ports for console, xenstore and one
	// per-vCPU timer (re-created, Xen-specific).
	dom.eventChannels = []evtchn{{Port: 1, Kind: "interdomain", Target: 0}, {Port: 2, Kind: "interdomain", Target: 0}}
	for i := 0; i < cfg.VCPUs; i++ {
		dom.eventChannels = append(dom.eventChannels, evtchn{Port: 3 + i, Kind: "virq", Target: i})
	}

	vm := &hv.VM{ID: id, Config: cfg, Space: space}
	vm.Config.Name = cfg.Name
	dom.vm = vm
	x.domains[id] = dom
	x.rebuildRunq()

	if fresh {
		drivers := guest.DefaultDrivers()
		for _, name := range cfg.PassthroughDevices {
			drivers = append(drivers, &guest.Driver{Name: name, Class: guest.DevicePassthrough})
		}
		vm.Guest = guest.New(cfg.Name, space, drivers...)
	}
	return vm, nil
}

// writeToFrames stores blob into freshly allocated VM_i State frames.
func (x *Xen) writeToFrames(blob []byte, vmid int) ([]hw.MFN, error) {
	frames, err := x.machine.Mem.Alloc(framesFor(len(blob)), hw.OwnerVMState, vmid)
	if err != nil {
		return nil, err
	}
	for i := 0; i < len(blob); i += hw.PageSize4K {
		end := i + hw.PageSize4K
		if end > len(blob) {
			end = len(blob)
		}
		if err := x.machine.Mem.Write(frames[i/hw.PageSize4K], 0, blob[i:end]); err != nil {
			for _, f := range frames {
				_ = x.machine.Mem.Free(f)
			}
			return nil, err
		}
	}
	return frames, nil
}

func framesFor(n int) int {
	if n == 0 {
		return 1
	}
	return (n + hw.PageSize4K - 1) / hw.PageSize4K
}

// rebuildRunq reconstructs the credit scheduler queue from the domain set
// — the paper's point that VM Management State is rebuilt from VM_i
// State, never translated.
func (x *Xen) rebuildRunq() {
	x.runq = x.runq[:0]
	for id := range x.domains {
		x.runq = append(x.runq, id)
	}
	sort.Slice(x.runq, func(i, j int) bool { return x.runq[i] < x.runq[j] })
}

// DestroyVM implements hv.Hypervisor.
func (x *Xen) DestroyVM(id hv.VMID) error {
	if err := x.Barrier(Version, "destroy"); err != nil {
		return err
	}
	dom, ok := x.domains[id]
	if !ok {
		return fmt.Errorf("xen: no domain %d", id)
	}
	if err := dom.vm.Space.Release(); err != nil {
		return err
	}
	for _, m := range append(dom.ctxFrames, dom.p2mFrames...) {
		if err := x.machine.Mem.Free(m); err != nil {
			return err
		}
	}
	delete(x.domains, id)
	x.rebuildRunq()
	return nil
}

// ReleaseVMState frees only the VM_i State frames of a domain, leaving
// guest memory in place — the InPlaceTP source-side teardown before
// micro-reboot.
func (x *Xen) ReleaseVMState(id hv.VMID) error {
	dom, ok := x.domains[id]
	if !ok {
		return fmt.Errorf("xen: no domain %d", id)
	}
	for _, m := range append(dom.ctxFrames, dom.p2mFrames...) {
		if err := x.machine.Mem.Free(m); err != nil {
			return err
		}
	}
	dom.ctxFrames, dom.p2mFrames = nil, nil
	delete(x.domains, id)
	x.rebuildRunq()
	return nil
}

// LookupVM implements hv.Hypervisor.
func (x *Xen) LookupVM(id hv.VMID) (*hv.VM, bool) {
	dom, ok := x.domains[id]
	if !ok {
		return nil, false
	}
	return dom.vm, true
}

// VMs implements hv.Hypervisor, ordered by id.
func (x *Xen) VMs() []*hv.VM {
	out := make([]*hv.VM, 0, len(x.domains))
	for _, id := range x.runq {
		out = append(out, x.domains[id].vm)
	}
	return out
}

// Pause implements hv.Hypervisor.
func (x *Xen) Pause(id hv.VMID) error { return x.setPaused(id, true) }

// Resume implements hv.Hypervisor.
func (x *Xen) Resume(id hv.VMID) error { return x.setPaused(id, false) }

func (x *Xen) setPaused(id hv.VMID, paused bool) error {
	if err := x.Barrier(Version, "pause-control"); err != nil {
		return err
	}
	dom, ok := x.domains[id]
	if !ok {
		return fmt.Errorf("xen: no domain %d", id)
	}
	if dom.vm.Paused() == paused {
		return fmt.Errorf("xen: domain %d already paused=%v", id, paused)
	}
	dom.vm.SetPaused(paused)
	return nil
}

// SaveUISR implements hv.Hypervisor: the to_uisr path, reading the
// domain's context blob (as xc_domain_hvm_getcontext would) and
// translating it to UISR.
func (x *Xen) SaveUISR(id hv.VMID) (*uisr.VMState, error) {
	dom, ok := x.domains[id]
	if !ok {
		return nil, fmt.Errorf("xen: no domain %d", id)
	}
	if !dom.vm.Paused() {
		return nil, fmt.Errorf("xen: domain %d must be paused before state save", id)
	}
	ctx, err := parseContext(dom.ctxBlob)
	if err != nil {
		return nil, fmt.Errorf("xen: domain %d context: %w", id, err)
	}
	st, err := toUISR(ctx)
	if err != nil {
		return nil, err
	}
	st.Name = dom.vm.Config.Name
	st.VMID = uint32(id)
	st.MemBytes = dom.vm.Config.MemBytes
	st.HugePages = dom.vm.Config.HugePages
	st.Devices = append([]uisr.EmulatedDevice(nil), dom.devices...)
	st.Weight = uint16(dom.weight)
	return st, nil
}

// MemExtents implements hv.Hypervisor.
func (x *Xen) MemExtents(id hv.VMID) ([]uisr.PageExtent, error) {
	dom, ok := x.domains[id]
	if !ok {
		return nil, fmt.Errorf("xen: no domain %d", id)
	}
	return dom.p2m, nil
}

// Footprint implements hv.Hypervisor.
func (x *Xen) Footprint(id hv.VMID) (hv.Footprint, error) {
	dom, ok := x.domains[id]
	if !ok {
		return hv.Footprint{}, fmt.Errorf("xen: no domain %d", id)
	}
	return hv.Footprint{
		GuestBytes:   dom.vm.Space.Bytes(),
		VMStateBytes: uint64(len(dom.ctxFrames)+len(dom.p2mFrames)) * hw.PageSize4K,
		MgmtBytes:    uint64(len(dom.eventChannels)*32 + 64), // runq entry + evtchn table
	}, nil
}

// EnableDirtyLog implements hv.Hypervisor (logdirty mode).
func (x *Xen) EnableDirtyLog(id hv.VMID) error {
	if err := x.Barrier(Version, "dirty-log"); err != nil {
		return err
	}
	dom, ok := x.domains[id]
	if !ok {
		return fmt.Errorf("xen: no domain %d", id)
	}
	dom.vm.Space.EnableDirtyLog()
	return nil
}

// DisableDirtyLog implements hv.Hypervisor.
func (x *Xen) DisableDirtyLog(id hv.VMID) error {
	dom, ok := x.domains[id]
	if !ok {
		return fmt.Errorf("xen: no domain %d", id)
	}
	dom.vm.Space.DisableDirtyLog()
	return nil
}

// FetchAndClearDirty implements hv.Hypervisor.
func (x *Xen) FetchAndClearDirty(id hv.VMID) ([]hw.GFN, error) {
	dom, ok := x.domains[id]
	if !ok {
		return nil, fmt.Errorf("xen: no domain %d", id)
	}
	return dom.vm.Space.FetchAndClearDirty(), nil
}

// MgmtStateBytes implements hv.Hypervisor.
func (x *Xen) MgmtStateBytes() uint64 {
	var total uint64
	for _, dom := range x.domains {
		total += uint64(len(dom.eventChannels)*32 + 64)
	}
	return total
}

// EventChannels returns the port table of a domain (Xen-specific API,
// used in tests to check the rebuilt management state).
func (x *Xen) EventChannels(id hv.VMID) ([]int, error) {
	dom, ok := x.domains[id]
	if !ok {
		return nil, fmt.Errorf("xen: no domain %d", id)
	}
	ports := make([]int, len(dom.eventChannels))
	for i, e := range dom.eventChannels {
		ports[i] = e.Port
	}
	return ports, nil
}

// ContextBlob returns a copy of the domain's raw HVM context (the
// Xen-internal format), for format-level tests.
func (x *Xen) ContextBlob(id hv.VMID) ([]byte, error) {
	dom, ok := x.domains[id]
	if !ok {
		return nil, fmt.Errorf("xen: no domain %d", id)
	}
	return append([]byte(nil), dom.ctxBlob...), nil
}

// CreditWeight returns a domain's credit-scheduler weight (Xen's own
// management-state representation of the neutral UISR weight).
func (x *Xen) CreditWeight(id hv.VMID) (int, error) {
	dom, ok := x.domains[id]
	if !ok {
		return 0, fmt.Errorf("xen: no domain %d", id)
	}
	return dom.weight, nil
}

// RunQueue returns the credit scheduler's queue (VM Management State).
func (x *Xen) RunQueue() []hv.VMID { return append([]hv.VMID(nil), x.runq...) }

// AttachGuest binds a guest stack to a restored VM and rebinds its memory.
func (x *Xen) AttachGuest(id hv.VMID, g *guest.Guest) error {
	if err := x.Barrier(Version, "attach-guest"); err != nil {
		return err
	}
	dom, ok := x.domains[id]
	if !ok {
		return fmt.Errorf("xen: no domain %d", id)
	}
	dom.vm.Guest = g
	g.Rebind(dom.vm.Space)
	return nil
}
