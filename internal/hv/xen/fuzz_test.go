package xen

import (
	"bytes"
	"testing"

	"hypertp/internal/fuzzseed"
	"hypertp/internal/uisr"
)

// fuzzParseContextSeeds is the shared seed list: f.Add'ed by the fuzz
// target and mirrored into testdata/fuzz/ by TestFuzzSeedCorpus.
func fuzzParseContextSeeds(tb testing.TB) [][]byte {
	tb.Helper()
	st := uisr.SyntheticVM("seed", 1, 2, 64<<20, 5)
	st.IOAPIC.NumPins = uisr.XenIOAPICPins
	ctx, err := fromUISR(st)
	if err != nil {
		tb.Fatal(err)
	}
	valid := marshalContext(ctx)
	mutated := append([]byte(nil), valid...)
	mutated[4] ^= 0x80 // corrupt the first record's length
	return [][]byte{valid, {}, valid[:9], mutated}
}

func TestFuzzSeedCorpus(t *testing.T) {
	fuzzseed.Check(t, "FuzzParseContext", fuzzParseContextSeeds(t)...)
}

// FuzzParseContext: the HVM context blob parser (the path that consumes
// state written by another hypervisor's toolstack) must never panic on
// arbitrary bytes, and anything it accepts must re-marshal stably.
func FuzzParseContext(f *testing.F) {
	for _, seed := range fuzzParseContextSeeds(f) {
		f.Add(seed)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		parsed, err := parseContext(data)
		if err != nil {
			return
		}
		re := marshalContext(parsed)
		parsed2, err := parseContext(re)
		if err != nil {
			t.Fatalf("re-marshaled context rejected: %v", err)
		}
		if !bytes.Equal(re, marshalContext(parsed2)) {
			t.Fatal("marshal not stable")
		}
	})
}
