package xen

import (
	"bytes"
	"testing"

	"hypertp/internal/uisr"
)

// FuzzParseContext: the HVM context blob parser (the path that consumes
// state written by another hypervisor's toolstack) must never panic on
// arbitrary bytes, and anything it accepts must re-marshal stably.
func FuzzParseContext(f *testing.F) {
	st := uisr.SyntheticVM("seed", 1, 2, 64<<20, 5)
	st.IOAPIC.NumPins = uisr.XenIOAPICPins
	ctx, err := fromUISR(st)
	if err != nil {
		f.Fatal(err)
	}
	valid := marshalContext(ctx)
	f.Add(valid)
	f.Add([]byte{})
	f.Add(valid[:9])
	mutated := append([]byte(nil), valid...)
	mutated[4] ^= 0x80 // corrupt the first record's length
	f.Add(mutated)

	f.Fuzz(func(t *testing.T, data []byte) {
		parsed, err := parseContext(data)
		if err != nil {
			return
		}
		re := marshalContext(parsed)
		parsed2, err := parseContext(re)
		if err != nil {
			t.Fatalf("re-marshaled context rejected: %v", err)
		}
		if !bytes.Equal(re, marshalContext(parsed2)) {
			t.Fatal("marshal not stable")
		}
	})
}
