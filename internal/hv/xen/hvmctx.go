// Package xen models a Xen-4.12-flavoured type-I hypervisor re-engineered
// for HyperTP compliance. Its defining trait for the reproduction is its
// *internal state format*: platform state lives in an HVM context blob of
// typed save records (the format xc_domain_hvm_get/setcontext exchanges,
// §4.2.1), the guest memory map lives in a superpage-aware p2m, and VM
// management state lives in credit-scheduler run queues. None of this is
// understood by the KVM model — only the UISR converters bridge them.
package xen

import (
	"bytes"
	"encoding/binary"
	"fmt"

	"hypertp/internal/uisr"
)

// HVM save record type codes (matching Xen's public/arch-x86/hvm/save.h
// numbering where applicable).
const (
	recEnd       uint16 = 0
	recHeader    uint16 = 1
	recCPU       uint16 = 2
	recIOAPIC    uint16 = 4
	recLAPIC     uint16 = 5
	recLAPICRegs uint16 = 6
	recPIT       uint16 = 10
	recRTC       uint16 = 11
	recHPET      uint16 = 12
	recPMTimer   uint16 = 13
	recMTRR      uint16 = 14
	recXSave     uint16 = 16
	recMSR       uint16 = 20
)

// hvmHeader is the blob header record.
type hvmHeader struct {
	Magic   uint32 // "XnSv"
	Version uint32
	Changes uint64 // changeset id, informational
	CPUID   uint64
}

const hvmMagic = 0x766e5358 // "XSnv" little-endian bytes

// hvmCPU is Xen's per-vCPU architectural state record. Field order and
// grouping deliberately differ from both the UISR and the KVM layouts:
// segments are stored as packed (base, limit, arbytes, sel) quadruples and
// control registers live beside the GP file.
type hvmCPU struct {
	// GP register file, Xen's ordering.
	RAX, RBX, RCX, RDX, RBP, RSI, RDI, RSP uint64
	R8, R9, R10, R11, R12, R13, R14, R15   uint64
	RIP, RFlags                            uint64

	CR0, CR2, CR3, CR4 uint64

	// Segments: base, limit, arbytes, selector per register, in Xen's
	// cs/ds/es/fs/gs/ss/tr/ldtr order.
	CSBase, DSBase, ESBase, FSBase, GSBase, SSBase, TRBase, LDTRBase         uint64
	CSLimit, DSLimit, ESLimit, FSLimit, GSLimit, SSLimit, TRLimit, LDTRLimit uint32
	CSAr, DSAr, ESAr, FSAr, GSAr, SSAr, TRAr, LDTRAr                         uint32
	CSSel, DSSel, ESSel, FSSel, GSSel, SSSel, TRSel, LDTRSel                 uint16

	GDTBase, IDTBase   uint64
	GDTLimit, IDTLimit uint32

	// MSR-backed architectural state Xen keeps inline in the CPU record.
	EFER, CR8 uint64

	// FXSAVE image.
	FPU [512]byte
}

// hvmLAPIC is Xen's LAPIC summary record.
type hvmLAPIC struct {
	APICBaseMSR  uint64
	Disabled     uint32
	TimerDivisor uint32
}

// hvmLAPICRegs is Xen's LAPIC register page record: the full 1 KiB of
// architectural registers, one 32-bit register per 16-byte stride.
type hvmLAPICRegs struct {
	Data [1024]byte
}

// hvmIOAPIC is Xen's 48-pin virtual IOAPIC record.
type hvmIOAPIC struct {
	ID       uint32
	IORegSel uint32
	Redir    [uisr.XenIOAPICPins]uint64
}

// hvmPIT is Xen's i8254 record.
type hvmPIT struct {
	Channels [3]struct {
		Count        uint32
		LatchedCount uint32
		Mode         uint8
		BCD          uint8
		Gate         uint8
		OutHigh      uint8
		Pad          uint32
	}
	Speaker   uint8
	Pad       [7]byte
	CountLoad [3]uint64
}

// hvmRTC is Xen's MC146818 record: the CMOS image with the index latch
// appended (Xen's hvm_hw_rtc layout).
type hvmRTC struct {
	CMOS  [128]byte
	Index uint8
	Pad   [7]byte
}

// hvmHPET is Xen's HPET record.
type hvmHPET struct {
	Capability uint64
	Config     uint64
	ISR        uint64
	Counter    uint64
	Timers     [3]struct {
		Config     uint64
		Comparator uint64
		FSB        uint64
	}
}

// hvmPMTimer is Xen's ACPI PM timer record.
type hvmPMTimer struct {
	Value  uint32
	Pad    uint32
	BaseNS uint64
}

// hvmMTRR is Xen's per-vCPU MTRR record.
type hvmMTRR struct {
	PATCr    uint64
	Cap      uint64
	DefType  uint64
	Fixed    [11]uint64
	VarPairs [16]uint64 // base/mask interleaved
	Flags    uint32     // bit0: enabled, bit1: fixed enabled
	Pad      uint32
}

// hvmXSave is Xen's extended-state record.
type hvmXSave struct {
	XCR0      uint64
	XCR0Accum uint64
	Header    [64]byte
	YMM       [504]byte
}

// hvmMSR is Xen's generic MSR list record payload header; entries follow.
type hvmMSREntry struct {
	Index    uint32
	Reserved uint32
	Value    uint64
}

// marshalRecord appends one save record (descriptor + payload) to buf.
func marshalRecord(buf *bytes.Buffer, typecode uint16, instance uint16, payload []byte) {
	var desc [8]byte
	le := binary.LittleEndian
	le.PutUint16(desc[0:], typecode)
	le.PutUint16(desc[2:], instance)
	le.PutUint32(desc[4:], uint32(len(payload)))
	buf.Write(desc[:])
	buf.Write(payload)
}

func marshalStruct(v any) []byte {
	var buf bytes.Buffer
	if err := binary.Write(&buf, binary.LittleEndian, v); err != nil {
		panic(fmt.Sprintf("xen: marshalStruct(%T): %v", v, err))
	}
	return buf.Bytes()
}

func unmarshalStruct(p []byte, v any) error {
	if want := binary.Size(v); len(p) != want {
		return fmt.Errorf("xen: record payload %d bytes, want %d for %T", len(p), want, v)
	}
	return binary.Read(bytes.NewReader(p), binary.LittleEndian, v)
}

// domainContext is the parsed in-memory form of one domain's HVM context.
type domainContext struct {
	header    hvmHeader
	cpus      []hvmCPU
	lapics    []hvmLAPIC
	lapicRegs []hvmLAPICRegs
	mtrrs     []hvmMTRR
	xsaves    []hvmXSave
	msrs      [][]hvmMSREntry
	ioapic    hvmIOAPIC
	pit       hvmPIT
	rtc       hvmRTC
	hpet      hvmHPET
	pmtimer   hvmPMTimer
}

// marshalContext serializes a domain context into the HVM blob format.
func marshalContext(ctx *domainContext) []byte {
	var buf bytes.Buffer
	marshalRecord(&buf, recHeader, 0, marshalStruct(&ctx.header))
	for i := range ctx.cpus {
		inst := uint16(i)
		marshalRecord(&buf, recCPU, inst, marshalStruct(&ctx.cpus[i]))
		marshalRecord(&buf, recLAPIC, inst, marshalStruct(&ctx.lapics[i]))
		marshalRecord(&buf, recLAPICRegs, inst, marshalStruct(&ctx.lapicRegs[i]))
		marshalRecord(&buf, recMTRR, inst, marshalStruct(&ctx.mtrrs[i]))
		marshalRecord(&buf, recXSave, inst, marshalStruct(&ctx.xsaves[i]))
		var msrbuf bytes.Buffer
		var count [8]byte
		binary.LittleEndian.PutUint64(count[:], uint64(len(ctx.msrs[i])))
		msrbuf.Write(count[:])
		for _, e := range ctx.msrs[i] {
			msrbuf.Write(marshalStruct(&e))
		}
		marshalRecord(&buf, recMSR, inst, msrbuf.Bytes())
	}
	marshalRecord(&buf, recIOAPIC, 0, marshalStruct(&ctx.ioapic))
	marshalRecord(&buf, recPIT, 0, marshalStruct(&ctx.pit))
	marshalRecord(&buf, recRTC, 0, marshalStruct(&ctx.rtc))
	marshalRecord(&buf, recHPET, 0, marshalStruct(&ctx.hpet))
	marshalRecord(&buf, recPMTimer, 0, marshalStruct(&ctx.pmtimer))
	marshalRecord(&buf, recEnd, 0, nil)
	return buf.Bytes()
}

// parseContext parses an HVM blob back into a domain context. It is
// strict about framing, mirroring Xen's hvm_load checks.
func parseContext(blob []byte) (*domainContext, error) {
	ctx := &domainContext{}
	le := binary.LittleEndian
	off := 0
	sawHeader, sawEnd := false, false
	grow := func(inst uint16) error {
		for len(ctx.cpus) <= int(inst) {
			ctx.cpus = append(ctx.cpus, hvmCPU{})
			ctx.lapics = append(ctx.lapics, hvmLAPIC{})
			ctx.lapicRegs = append(ctx.lapicRegs, hvmLAPICRegs{})
			ctx.mtrrs = append(ctx.mtrrs, hvmMTRR{})
			ctx.xsaves = append(ctx.xsaves, hvmXSave{})
			ctx.msrs = append(ctx.msrs, nil)
		}
		return nil
	}
	for off < len(blob) {
		if sawEnd {
			return nil, fmt.Errorf("xen: records after end marker")
		}
		if off+8 > len(blob) {
			return nil, fmt.Errorf("xen: truncated record descriptor at %d", off)
		}
		typecode := le.Uint16(blob[off:])
		instance := le.Uint16(blob[off+2:])
		length := int(le.Uint32(blob[off+4:]))
		off += 8
		if off+length > len(blob) {
			return nil, fmt.Errorf("xen: truncated record %d payload", typecode)
		}
		payload := blob[off : off+length]
		off += length

		var err error
		switch typecode {
		case recHeader:
			err = unmarshalStruct(payload, &ctx.header)
			if err == nil && ctx.header.Magic != hvmMagic {
				err = fmt.Errorf("bad context magic %#x", ctx.header.Magic)
			}
			sawHeader = true
		case recCPU:
			if err = grow(instance); err == nil {
				err = unmarshalStruct(payload, &ctx.cpus[instance])
			}
		case recLAPIC:
			if err = grow(instance); err == nil {
				err = unmarshalStruct(payload, &ctx.lapics[instance])
			}
		case recLAPICRegs:
			if err = grow(instance); err == nil {
				err = unmarshalStruct(payload, &ctx.lapicRegs[instance])
			}
		case recMTRR:
			if err = grow(instance); err == nil {
				err = unmarshalStruct(payload, &ctx.mtrrs[instance])
			}
		case recXSave:
			if err = grow(instance); err == nil {
				err = unmarshalStruct(payload, &ctx.xsaves[instance])
			}
		case recMSR:
			if err = grow(instance); err != nil {
				break
			}
			if len(payload) < 8 {
				err = fmt.Errorf("MSR record too short")
				break
			}
			n := int(le.Uint64(payload[0:]))
			if len(payload) != 8+16*n {
				err = fmt.Errorf("MSR record %d bytes, want %d", len(payload), 8+16*n)
				break
			}
			entries := make([]hvmMSREntry, n)
			for j := range entries {
				base := 8 + 16*j
				entries[j].Index = le.Uint32(payload[base:])
				entries[j].Value = le.Uint64(payload[base+8:])
			}
			ctx.msrs[instance] = entries
		case recIOAPIC:
			err = unmarshalStruct(payload, &ctx.ioapic)
		case recPIT:
			err = unmarshalStruct(payload, &ctx.pit)
		case recRTC:
			err = unmarshalStruct(payload, &ctx.rtc)
		case recHPET:
			err = unmarshalStruct(payload, &ctx.hpet)
		case recPMTimer:
			err = unmarshalStruct(payload, &ctx.pmtimer)
		case recEnd:
			sawEnd = true
		default:
			return nil, fmt.Errorf("xen: unknown record type %d", typecode)
		}
		if err != nil {
			return nil, fmt.Errorf("xen: record type %d: %w", typecode, err)
		}
	}
	if !sawHeader {
		return nil, fmt.Errorf("xen: context blob has no header record")
	}
	if !sawEnd {
		return nil, fmt.Errorf("xen: context blob has no end record")
	}
	return ctx, nil
}
