package hv

import (
	"fmt"
	"sort"
	"sync"

	"hypertp/internal/hw"
	"hypertp/internal/par"
	"hypertp/internal/uisr"
)

// AddressSpace is a guest-physical address space: an ordered set of
// GFN→MFN extents over the machine's physical memory, with optional
// dirty-page logging. Both hypervisor models use it as their mechanical
// memory plumbing while keeping their own NPT *format* (Xen p2m vs KVM
// memslots) as separate metadata.
//
// AddressSpace implements guest.Memory.
type AddressSpace struct {
	mem      *hw.PhysMem
	extents  []uisr.PageExtent // sorted by GFN, non-overlapping
	numPages uint64

	dirtyLog bool
	dirtyMu  sync.Mutex // guards dirty; WritePage runs on par worker pools
	dirty    map[hw.GFN]struct{}
}

// NewAddressSpace builds an address space from extents. Extents must be
// non-overlapping in GFN space and aligned to their order; they are sorted
// here.
func NewAddressSpace(mem *hw.PhysMem, extents []uisr.PageExtent) (*AddressSpace, error) {
	sorted := make([]uisr.PageExtent, len(extents))
	copy(sorted, extents)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].GFN < sorted[j].GFN })
	var pages uint64
	for i, e := range sorted {
		if e.GFN%e.Pages() != 0 || e.MFN%e.Pages() != 0 {
			return nil, fmt.Errorf("hv: extent %d (gfn %d mfn %d order %d) misaligned",
				i, e.GFN, e.MFN, e.Order)
		}
		if i > 0 {
			prev := sorted[i-1]
			if prev.GFN+prev.Pages() > e.GFN {
				return nil, fmt.Errorf("hv: extents %d and %d overlap", i-1, i)
			}
		}
		pages += e.Pages()
	}
	return &AddressSpace{mem: mem, extents: sorted, numPages: pages}, nil
}

// AllocAddressSpace allocates memBytes of fresh guest memory for vm on
// mem, using 2 MiB pages when huge is set, and returns the resulting
// address space. Guest frames are tagged hw.OwnerGuest.
func AllocAddressSpace(mem *hw.PhysMem, vm int, memBytes uint64, huge bool) (*AddressSpace, error) {
	var extents []uisr.PageExtent
	if huge {
		n := memBytes / hw.PageSize2M
		for i := uint64(0); i < n; i++ {
			base, err := mem.Alloc2M(hw.OwnerGuest, vm)
			if err != nil {
				return nil, fmt.Errorf("hv: guest alloc: %w", err)
			}
			extents = append(extents, uisr.PageExtent{
				GFN: i * hw.FramesPer2M, MFN: uint64(base), Order: 9,
			})
		}
	} else {
		n := memBytes / hw.PageSize4K
		mfns, err := mem.Alloc(int(n), hw.OwnerGuest, vm)
		if err != nil {
			return nil, fmt.Errorf("hv: guest alloc: %w", err)
		}
		for i, m := range mfns {
			extents = append(extents, uisr.PageExtent{GFN: uint64(i), MFN: uint64(m), Order: 0})
		}
	}
	return NewAddressSpace(mem, extents)
}

// Extents returns the address space's extent list (sorted by GFN). The
// returned slice must not be modified.
func (as *AddressSpace) Extents() []uisr.PageExtent { return as.extents }

// NumPages implements guest.Memory.
func (as *AddressSpace) NumPages() uint64 { return as.numPages }

// Bytes returns the guest-physical size in bytes.
func (as *AddressSpace) Bytes() uint64 { return as.numPages * hw.PageSize4K }

// Translate resolves a guest frame number to its machine frame.
func (as *AddressSpace) Translate(gfn hw.GFN) (hw.MFN, error) {
	i := sort.Search(len(as.extents), func(i int) bool {
		e := as.extents[i]
		return uint64(gfn) < e.GFN+e.Pages()
	})
	if i == len(as.extents) || uint64(gfn) < as.extents[i].GFN {
		return 0, fmt.Errorf("hv: gfn %d not mapped", gfn)
	}
	e := as.extents[i]
	return hw.MFN(e.MFN + (uint64(gfn) - e.GFN)), nil
}

// WritePage implements guest.Memory, recording dirty pages when logging
// is enabled.
func (as *AddressSpace) WritePage(gfn hw.GFN, off int, data []byte) error {
	mfn, err := as.Translate(gfn)
	if err != nil {
		return err
	}
	if err := as.mem.Write(mfn, off, data); err != nil {
		return err
	}
	if as.dirtyLog {
		as.dirtyMu.Lock()
		as.dirty[gfn] = struct{}{}
		as.dirtyMu.Unlock()
	}
	return nil
}

// ReadPage implements guest.Memory.
func (as *AddressSpace) ReadPage(gfn hw.GFN, off, n int) ([]byte, error) {
	mfn, err := as.Translate(gfn)
	if err != nil {
		return nil, err
	}
	return as.mem.Read(mfn, off, n)
}

// EnableDirtyLog starts dirty-page tracking (all pages considered clean).
func (as *AddressSpace) EnableDirtyLog() {
	as.dirtyMu.Lock()
	defer as.dirtyMu.Unlock()
	as.dirtyLog = true
	as.dirty = make(map[hw.GFN]struct{})
}

// DisableDirtyLog stops tracking.
func (as *AddressSpace) DisableDirtyLog() {
	as.dirtyMu.Lock()
	defer as.dirtyMu.Unlock()
	as.dirtyLog = false
	as.dirty = nil
}

// DirtyLogEnabled reports whether logging is active.
func (as *AddressSpace) DirtyLogEnabled() bool { return as.dirtyLog }

// FetchAndClearDirty returns the sorted set of pages written since the
// last call and resets the log.
func (as *AddressSpace) FetchAndClearDirty() []hw.GFN {
	as.dirtyMu.Lock()
	defer as.dirtyMu.Unlock()
	if !as.dirtyLog {
		return nil
	}
	out := make([]hw.GFN, 0, len(as.dirty))
	for g := range as.dirty {
		out = append(out, g)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	as.dirty = make(map[hw.GFN]struct{})
	return out
}

// ChecksumAll returns a combined checksum over all guest pages that have
// ever been written (untouched pages are zero and excluded by contract:
// two spaces with identical written content match even if their frame
// placement differs).
func (as *AddressSpace) ChecksumAll() (uint64, error) {
	// The combined sum is commutative (wrapping uint64 addition keyed by
	// GFN), so per-extent partial sums merge to the same value in any
	// execution order — checksumming parallelizes freely.
	partial, err := par.Map(as.extents, func(_ int, e uisr.PageExtent) (uint64, error) {
		var sum uint64
		for p := uint64(0); p < e.Pages(); p++ {
			c, err := as.mem.Checksum(hw.MFN(e.MFN + p))
			if err != nil {
				return 0, err
			}
			// Order-independent mix keyed by GFN.
			gfn := e.GFN + p
			sum += c * (gfn*2654435761 + 97)
		}
		return sum, nil
	})
	if err != nil {
		return 0, err
	}
	var sum uint64
	for _, s := range partial {
		sum += s
	}
	return sum, nil
}

// FrameRanges returns the address space's machine frames as sorted,
// disjoint runs — the shape kexec wants for its preserve set.
func (as *AddressSpace) FrameRanges() []hw.FrameRange {
	ranges := make([]hw.FrameRange, 0, len(as.extents))
	for _, e := range as.extents {
		ranges = append(ranges, hw.FrameRange{Start: hw.MFN(e.MFN), Count: e.Pages()})
	}
	sort.Slice(ranges, func(i, j int) bool { return ranges[i].Start < ranges[j].Start })
	// Merge adjacent runs.
	out := ranges[:0]
	for _, r := range ranges {
		if n := len(out); n > 0 && out[n-1].Start+hw.MFN(out[n-1].Count) == r.Start {
			out[n-1].Count += r.Count
			continue
		}
		out = append(out, r)
	}
	return out
}

// CopyContentsTo replays every touched page of this space into dst, which
// must have the same guest-physical size. It is the content side of a
// migration stream: after it returns, dst's guest image equals the
// source's.
func (as *AddressSpace) CopyContentsTo(dst *AddressSpace) error {
	if dst.NumPages() != as.NumPages() {
		return fmt.Errorf("hv: copy between spaces of %d and %d pages", as.NumPages(), dst.NumPages())
	}
	// Extents are disjoint in GFN space, so each worker replays a disjoint
	// set of destination pages; the dirty log (if enabled on dst) is the
	// only shared structure and WritePage guards it.
	return par.ForEach(len(as.extents), func(i int) error {
		e := as.extents[i]
		for p := uint64(0); p < e.Pages(); p++ {
			mfn := hw.MFN(e.MFN + p)
			if !as.mem.Touched(mfn) {
				continue
			}
			data, err := as.mem.Read(mfn, 0, hw.PageSize4K)
			if err != nil {
				return err
			}
			if err := dst.WritePage(hw.GFN(e.GFN+p), 0, data); err != nil {
				return err
			}
		}
		return nil
	})
}

// Release frees every frame of the address space back to the machine.
func (as *AddressSpace) Release() error {
	for _, e := range as.extents {
		if err := as.mem.FreeRange(hw.MFN(e.MFN), e.Pages()); err != nil {
			return err
		}
	}
	as.extents = nil
	as.numPages = 0
	return nil
}

// Retag re-tags all frames of the space with the given owner/vm — used
// when a freshly booted hypervisor adopts preserved guest memory.
func (as *AddressSpace) Retag(owner hw.Owner, vm int) error {
	for _, e := range as.extents {
		if err := as.mem.SetOwnerRange(hw.MFN(e.MFN), e.Pages(), owner, vm); err != nil {
			return err
		}
	}
	return nil
}
