package nova

import (
	"reflect"
	"testing"
	"testing/quick"

	"hypertp/internal/hv"
	"hypertp/internal/hw"
	"hypertp/internal/simtime"
	"hypertp/internal/uisr"
)

func bootNOVA(t *testing.T) *NOVA {
	t.Helper()
	m := hw.NewMachine(simtime.NewClock(), hw.M1())
	n, err := Boot(m)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func testConfig(name string) hv.Config {
	return hv.Config{Name: name, VCPUs: 2, MemBytes: 64 << 20, HugePages: true, Seed: 13}
}

func TestBootSmallResidentSet(t *testing.T) {
	n := bootNOVA(t)
	counts := n.Machine().Mem.CountByOwner()
	if counts[hw.OwnerHV] != HVResidentBytes/hw.PageSize4K {
		t.Fatalf("HV frames = %d", counts[hw.OwnerHV])
	}
	if n.Kind() != hv.KindNOVA || n.Name() != Version {
		t.Fatal("identity wrong")
	}
	// The microhypervisor's point: its resident set is a fraction of
	// the monolithic stacks'.
	if HVResidentBytes >= 192<<20 {
		t.Fatal("microhypervisor not smaller than Xen+dom0")
	}
}

func TestLifecycle(t *testing.T) {
	n := bootNOVA(t)
	vm, err := n.CreateVM(testConfig("pd"))
	if err != nil {
		t.Fatal(err)
	}
	if vm.Guest == nil || vm.Paused() {
		t.Fatal("fresh VM state wrong")
	}
	if got, ok := n.LookupVM(vm.ID); !ok || got != vm {
		t.Fatal("lookup failed")
	}
	if len(n.VMs()) != 1 {
		t.Fatal("VMs() wrong")
	}
	if err := n.Pause(vm.ID); err != nil {
		t.Fatal(err)
	}
	if err := n.Pause(vm.ID); err == nil {
		t.Fatal("double pause accepted")
	}
	if err := n.Resume(vm.ID); err != nil {
		t.Fatal(err)
	}
	if err := n.DestroyVM(vm.ID); err != nil {
		t.Fatal(err)
	}
	if err := n.DestroyVM(vm.ID); err == nil {
		t.Fatal("double destroy accepted")
	}
}

func TestNOVAUISRRoundTripLossless(t *testing.T) {
	n := bootNOVA(t)
	vm, _ := n.CreateVM(testConfig("rt"))
	n.Pause(vm.ID)
	st1, err := n.SaveUISR(vm.ID)
	if err != nil {
		t.Fatal(err)
	}
	if st1.SourceHypervisor != "nova" {
		t.Fatalf("source = %q", st1.SourceHypervisor)
	}
	if st1.HasPIT || st1.HasHPET || st1.HasPMTimer {
		t.Fatal("microhypervisor reported legacy timers")
	}
	restored, err := n.RestoreUISR(st1, hv.RestoreOptions{Mode: hv.RestoreAllocate})
	if err != nil {
		t.Fatal(err)
	}
	st2, err := n.SaveUISR(restored.ID)
	if err != nil {
		t.Fatal(err)
	}
	st2.VMID = st1.VMID
	if !reflect.DeepEqual(st1, st2) {
		t.Fatal("NOVA→UISR→NOVA round trip is lossy")
	}
}

func TestSaveRequiresPause(t *testing.T) {
	n := bootNOVA(t)
	vm, _ := n.CreateVM(testConfig("p"))
	if _, err := n.SaveUISR(vm.ID); err == nil {
		t.Fatal("save of running VM accepted")
	}
}

// Restoring Xen-sourced state: the PIT, HPET and PM timer are all dropped
// (recorded), the 48-pin IOAPIC narrows to 24, and everything else is
// preserved.
func TestXenSourcedRestoreDrops(t *testing.T) {
	n := bootNOVA(t)
	st := uisr.SyntheticVM("xen-born", 1, 1, 64<<20, 17)
	st.IOAPIC.NumPins = uisr.XenIOAPICPins
	vm, err := n.RestoreUISR(st, hv.RestoreOptions{Mode: hv.RestoreAllocate})
	if err != nil {
		t.Fatal(err)
	}
	pit, hpet, pmt, err := n.PlatformDrops(vm.ID)
	if err != nil || !pit || !hpet || !pmt {
		t.Fatalf("drops = %v/%v/%v, %v", pit, hpet, pmt, err)
	}
	back, err := n.SaveUISR(vm.ID)
	if err != nil {
		t.Fatal(err)
	}
	if back.HasPIT || back.HasHPET || back.HasPMTimer {
		t.Fatal("NOVA fabricated legacy timers")
	}
	if back.IOAPIC.NumPins != uisr.KVMIOAPICPins {
		t.Fatalf("pins = %d", back.IOAPIC.NumPins)
	}
	if back.RTC != st.RTC {
		t.Fatal("RTC lost")
	}
	// vCPU architectural state intact despite the UTCB re-layout.
	if !reflect.DeepEqual(back.VCPUs[0].Regs, st.VCPUs[0].Regs) {
		t.Fatal("GP registers changed crossing the UTCB format")
	}
	if !reflect.DeepEqual(back.VCPUs[0].SRegs, st.VCPUs[0].SRegs) {
		t.Fatal("system registers changed")
	}
	if !reflect.DeepEqual(back.VCPUs[0].MSRs, st.VCPUs[0].MSRs) {
		t.Fatal("MSR list changed")
	}
	if _, _, _, err := n.PlatformDrops(99); err == nil {
		t.Fatal("unknown VM accepted")
	}
}

// Property: UTCB conversion is lossless on the neutral vCPU state.
func TestPropertyUTCBRoundTrip(t *testing.T) {
	f := func(seed uint64) bool {
		st := uisr.SyntheticVM("p", 1, 1, 64<<20, seed)
		orig := st.VCPUs[0]
		back, err := utcbToUISR(0, utcbFromUISR(&orig))
		if err != nil {
			return false
		}
		return reflect.DeepEqual(orig, back)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestUTCBIncompleteMtdRejected(t *testing.T) {
	st := uisr.SyntheticVM("p", 1, 1, 64<<20, 1)
	u := utcbFromUISR(&st.VCPUs[0])
	u.Mtd &^= mtdMSRs
	if _, err := utcbToUISR(0, u); err == nil {
		t.Fatal("incomplete UTCB accepted")
	}
}

func TestAdoptRestorePreservesGuest(t *testing.T) {
	n := bootNOVA(t)
	vm, _ := n.CreateVM(testConfig("adopt"))
	vm.Guest.WriteWorkingSet(0, 48)
	g := vm.Guest
	n.Pause(vm.ID)
	st, err := n.SaveUISR(vm.ID)
	if err != nil {
		t.Fatal(err)
	}
	st.MemMap, _ = n.MemExtents(vm.ID)
	if err := n.ReleaseVMState(vm.ID); err != nil {
		t.Fatal(err)
	}
	restored, err := n.RestoreUISR(st, hv.RestoreOptions{Mode: hv.RestoreAdopt})
	if err != nil {
		t.Fatal(err)
	}
	if err := n.AttachGuest(restored.ID, g); err != nil {
		t.Fatal(err)
	}
	if err := g.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestFootprintAndDirtyLog(t *testing.T) {
	n := bootNOVA(t)
	vm, _ := n.CreateVM(testConfig("f"))
	fp, err := n.Footprint(vm.ID)
	if err != nil {
		t.Fatal(err)
	}
	if fp.GuestBytes != 64<<20 || fp.VMStateBytes == 0 || fp.MgmtBytes == 0 {
		t.Fatalf("footprint = %+v", fp)
	}
	if n.MgmtStateBytes() == 0 {
		t.Fatal("MgmtStateBytes zero")
	}
	if err := n.EnableDirtyLog(vm.ID); err != nil {
		t.Fatal(err)
	}
	vm.Guest.Write(4, 0, []byte{1})
	dirty, err := n.FetchAndClearDirty(vm.ID)
	if err != nil || len(dirty) != 1 {
		t.Fatalf("dirty = %v, %v", dirty, err)
	}
	if err := n.DisableDirtyLog(vm.ID); err != nil {
		t.Fatal(err)
	}
	if err := n.EnableDirtyLog(99); err == nil {
		t.Fatal("unknown VM accepted")
	}
}

func TestMemExtentsMatchDPT(t *testing.T) {
	n := bootNOVA(t)
	vm, _ := n.CreateVM(testConfig("dpt"))
	extents, err := n.MemExtents(vm.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(extents, vm.Space.Extents()) {
		t.Fatal("DPT does not match the address space")
	}
}
