// Package nova models a NOVA-style microhypervisor re-engineered for
// HyperTP compliance — the third member of the datacenter's hypervisor
// pool (§3.1: "operators can have several hypervisors in their
// repertoire"). Microhypervisors are the paper's §6 *preventive*
// approach (tiny TCB); combining one with HyperTP gives the policy an
// escape even when a flaw like VENOM's shared QEMU hits both mainstream
// hypervisors at once.
//
// Its internal state format is distinct from both the Xen and KVM models:
//
//   - per-vCPU state lives in fixed 1 KiB UTCB snapshots (the NOVA
//     user-thread-control-block layout: an Mtd field-presence bitmap, a
//     selector-ordered segment array, then registers);
//   - MSRs are kept in an index-sorted array (NOVA's canonical order);
//   - guest memory is tracked by a delegation page table (DPT) of typed
//     capability ranges rather than a p2m or memslots;
//   - the platform is minimal: 24-pin IOAPIC, an RTC passthrough shadow,
//     and *no* 8254 PIT, HPET or ACPI PM timer (paravirtual time), so
//     transplants into NOVA drop those with the documented §4.2.1-style
//     compatibility events and transplants out re-synthesize defaults.
package nova

import (
	"fmt"
	"sort"

	"hypertp/internal/guest"
	"hypertp/internal/hv"
	"hypertp/internal/hw"
	"hypertp/internal/uisr"
)

// HVResidentBytes is the microhypervisor plus its root task: an order of
// magnitude below the monolithic stacks, per its design goal.
const HVResidentBytes = 96 << 20

// Version is the modeled release label.
const Version = "nova-mh-1.0"

// utcb is one vCPU's state snapshot in NOVA's layout. Field groups are
// guarded by the Mtd (message transfer descriptor) bitmap, as in NOVA's
// IPC state transfer.
type utcb struct {
	Mtd uint64 // which field groups are valid

	// Segment array in NOVA's selector order:
	// ES, CS, SS, DS, FS, GS, LDTR, TR — each (sel, ar, limit, base).
	Segs [8]novaSeg

	GPR  [16]uint64 // rax..r15 in architectural encoding order
	RIP  uint64
	RFL  uint64
	CR   [5]uint64 // cr0, cr2, cr3, cr4, cr8
	EFER uint64
	GDTR uisr.DTable
	IDTR uisr.DTable

	FPU   [512]byte
	XCR0  uint64
	XHead [64]byte
	XExt  [504]byte

	APICBase uint64
	LAPIC    [uisr.NumLAPICRegs]uint32

	MTRR uisr.MTRRState

	// MSR array, index-sorted (NOVA's canonical order).
	MSRs []uisr.MSR
}

type novaSeg struct {
	Sel   uint16
	Ar    uint16
	Limit uint32
	Base  uint64
}

// mtd bits for the field groups this model transfers.
const (
	mtdGPR uint64 = 1 << iota
	mtdSegs
	mtdCR
	mtdDT
	mtdFPU
	mtdXSave
	mtdAPIC
	mtdMTRR
	mtdMSRs

	mtdAll = mtdGPR | mtdSegs | mtdCR | mtdDT | mtdFPU | mtdXSave | mtdAPIC | mtdMTRR | mtdMSRs
)

// dptRange is one delegation-page-table entry: a typed capability over a
// guest-physical range.
type dptRange struct {
	GFNBase uint64
	MFNBase uint64
	Order   uint8
	Rights  uint8 // rwx bits; always 7 for guest RAM here
}

// protectionDomain is NOVA's per-VM container.
type protectionDomain struct {
	vm         *hv.VM
	utcbs      []*utcb
	dpt        []dptRange
	ioapic     [uisr.KVMIOAPICPins]uint64 // 24 pins, like KVM
	scPriority int
	rtc        uisr.RTC
	// drops records platform devices detached on the way in.
	drops struct {
		PIT, HPET, PMTimer bool
	}
	ioapicPinsDropped int
	stateFrames       []hw.MFN
	devices           []uisr.EmulatedDevice
}

// NOVA is the microhypervisor model.
type NOVA struct {
	hv.CrashState
	machine  *hw.Machine
	pds      map[hv.VMID]*protectionDomain
	nextID   hv.VMID
	hvRanges []hw.FrameRange
	order    []hv.VMID
}

var (
	_ hv.Hypervisor = (*NOVA)(nil)
	_ hv.Crashable  = (*NOVA)(nil)
)

// freezeVCPUs stops every protection domain's vCPUs in place for the
// fail-stop and hang models.
func (n *NOVA) freezeVCPUs() {
	for _, pd := range n.pds {
		pd.vm.SetPaused(true)
	}
}

// Crash implements hv.Crashable.
func (n *NOVA) Crash(reason string) bool {
	first := n.MarkCrashed(reason)
	n.freezeVCPUs()
	return first
}

// Hang implements hv.Crashable.
func (n *NOVA) Hang(reason string) bool {
	first := n.MarkHung(reason)
	n.freezeVCPUs()
	return first
}

// Fence implements hv.Crashable.
func (n *NOVA) Fence(reason string) {
	n.MarkCrashed(reason)
	n.freezeVCPUs()
}

// Boot instantiates the microhypervisor on the machine.
func Boot(m *hw.Machine) (*NOVA, error) {
	ranges, err := m.Mem.AllocRanges(HVResidentBytes/hw.PageSize4K, hw.OwnerHV, -1)
	if err != nil {
		return nil, fmt.Errorf("nova: boot reservation: %w", err)
	}
	return &NOVA{
		machine:  m,
		pds:      make(map[hv.VMID]*protectionDomain),
		nextID:   1,
		hvRanges: ranges,
	}, nil
}

// Kind implements hv.Hypervisor.
func (n *NOVA) Kind() hv.Kind { return hv.KindNOVA }

// Name implements hv.Hypervisor.
func (n *NOVA) Name() string { return Version }

// Machine implements hv.Hypervisor.
func (n *NOVA) Machine() *hw.Machine { return n.machine }

// CreateVM implements hv.Hypervisor.
func (n *NOVA) CreateVM(cfg hv.Config) (*hv.VM, error) {
	if err := n.Barrier(Version, "create"); err != nil {
		return nil, err
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	id := n.nextID
	n.nextID++
	st := uisr.SyntheticVM(cfg.Name, uint32(id), cfg.VCPUs, cfg.MemBytes, cfg.Seed)
	if cfg.Weight > 0 {
		st.Weight = uint16(cfg.Weight)
	}
	// A NOVA-born guest has NOVA's platform: 24 pins, no legacy timers.
	st.IOAPIC.NumPins = uisr.KVMIOAPICPins
	st.HasPIT, st.HasHPET, st.HasPMTimer = false, false, false
	return n.instantiate(id, cfg, st, hv.RestoreOptions{Mode: hv.RestoreAllocate,
		InPlaceCompatible: cfg.InPlaceCompatible}, nil, true)
}

// RestoreUISR implements hv.Hypervisor.
func (n *NOVA) RestoreUISR(st *uisr.VMState, opts hv.RestoreOptions) (*hv.VM, error) {
	if err := n.Barrier(Version, "restore"); err != nil {
		return nil, err
	}
	if err := st.Validate(); err != nil {
		return nil, err
	}
	id := n.nextID
	n.nextID++
	cfg := hv.Config{
		Name:              st.Name,
		VCPUs:             len(st.VCPUs),
		MemBytes:          st.MemBytes,
		HugePages:         st.HugePages,
		InPlaceCompatible: opts.InPlaceCompatible,
		Weight:            int(st.Weight),
	}
	vm, err := n.instantiate(id, cfg, st, opts, st.MemMap, false)
	if err != nil {
		return nil, err
	}
	vm.SetPaused(true)
	return vm, nil
}

func (n *NOVA) instantiate(id hv.VMID, cfg hv.Config, st *uisr.VMState,
	opts hv.RestoreOptions, adopt []uisr.PageExtent, fresh bool) (*hv.VM, error) {

	var space *hv.AddressSpace
	var err error
	switch opts.Mode {
	case hv.RestoreAdopt:
		if len(adopt) == 0 {
			return nil, fmt.Errorf("nova: adopt restore without memory map for %q", cfg.Name)
		}
		space, err = hv.NewAddressSpace(n.machine.Mem, adopt)
		if err == nil {
			err = space.Retag(hw.OwnerGuest, int(id))
		}
	case hv.RestoreAllocate:
		space, err = hv.AllocAddressSpace(n.machine.Mem, int(id), cfg.MemBytes, cfg.HugePages)
	default:
		err = fmt.Errorf("nova: unknown restore mode %d", opts.Mode)
	}
	if err != nil {
		return nil, err
	}

	weight := int(st.Weight)
	if weight == 0 {
		weight = uisr.DefaultWeight
	}
	pd := &protectionDomain{devices: append([]uisr.EmulatedDevice(nil), st.Devices...)}
	// Scheduling-context priority, rebuilt from the neutral weight.
	pd.scPriority = weight
	for i := range st.VCPUs {
		pd.utcbs = append(pd.utcbs, utcbFromUISR(&st.VCPUs[i]))
	}
	// IOAPIC: narrow to 24 pins (same fix as the KVM direction).
	pins := int(st.IOAPIC.NumPins)
	if pins > uisr.KVMIOAPICPins {
		pd.ioapicPinsDropped = pins - uisr.KVMIOAPICPins
		pins = uisr.KVMIOAPICPins
	}
	copy(pd.ioapic[:], st.IOAPIC.Redir[:pins])
	pd.rtc = st.RTC
	// NOVA has no legacy timers at all: record every drop.
	pd.drops.PIT = st.HasPIT
	pd.drops.HPET = st.HasHPET
	pd.drops.PMTimer = st.HasPMTimer

	// DPT from the address space extents.
	for _, e := range space.Extents() {
		pd.dpt = append(pd.dpt, dptRange{GFNBase: e.GFN, MFNBase: e.MFN, Order: e.Order, Rights: 7})
	}

	// VM_i State frames: one UTCB page per vCPU + DPT pages.
	stateBytes := len(pd.utcbs)*1024 + len(pd.dpt)*16
	frames := (stateBytes + hw.PageSize4K - 1) / hw.PageSize4K
	if frames == 0 {
		frames = 1
	}
	pd.stateFrames, err = n.machine.Mem.Alloc(frames, hw.OwnerVMState, int(id))
	if err != nil {
		// Don't leak the guest space: free fresh allocations, leave
		// adopted PRAM memory intact for the restore retry.
		if opts.Mode == hv.RestoreAllocate {
			_ = space.Release()
		}
		return nil, err
	}

	vm := &hv.VM{ID: id, Config: cfg, Space: space}
	pd.vm = vm
	n.pds[id] = pd
	n.rebuildOrder()

	if fresh {
		drivers := guest.DefaultDrivers()
		for _, name := range cfg.PassthroughDevices {
			drivers = append(drivers, &guest.Driver{Name: name, Class: guest.DevicePassthrough})
		}
		vm.Guest = guest.New(cfg.Name, space, drivers...)
	}
	return vm, nil
}

func (n *NOVA) rebuildOrder() {
	n.order = n.order[:0]
	for id := range n.pds {
		n.order = append(n.order, id)
	}
	sort.Slice(n.order, func(i, j int) bool { return n.order[i] < n.order[j] })
}

// DestroyVM implements hv.Hypervisor.
func (n *NOVA) DestroyVM(id hv.VMID) error {
	if err := n.Barrier(Version, "destroy"); err != nil {
		return err
	}
	pd, ok := n.pds[id]
	if !ok {
		return fmt.Errorf("nova: no protection domain %d", id)
	}
	if err := pd.vm.Space.Release(); err != nil {
		return err
	}
	for _, m := range pd.stateFrames {
		if err := n.machine.Mem.Free(m); err != nil {
			return err
		}
	}
	delete(n.pds, id)
	n.rebuildOrder()
	return nil
}

// ReleaseVMState frees VM_i State, leaving guest memory in place.
func (n *NOVA) ReleaseVMState(id hv.VMID) error {
	pd, ok := n.pds[id]
	if !ok {
		return fmt.Errorf("nova: no protection domain %d", id)
	}
	for _, m := range pd.stateFrames {
		if err := n.machine.Mem.Free(m); err != nil {
			return err
		}
	}
	pd.stateFrames = nil
	delete(n.pds, id)
	n.rebuildOrder()
	return nil
}

// LookupVM implements hv.Hypervisor.
func (n *NOVA) LookupVM(id hv.VMID) (*hv.VM, bool) {
	pd, ok := n.pds[id]
	if !ok {
		return nil, false
	}
	return pd.vm, true
}

// VMs implements hv.Hypervisor.
func (n *NOVA) VMs() []*hv.VM {
	out := make([]*hv.VM, 0, len(n.pds))
	for _, id := range n.order {
		out = append(out, n.pds[id].vm)
	}
	return out
}

// Pause implements hv.Hypervisor.
func (n *NOVA) Pause(id hv.VMID) error { return n.setPaused(id, true) }

// Resume implements hv.Hypervisor.
func (n *NOVA) Resume(id hv.VMID) error { return n.setPaused(id, false) }

func (n *NOVA) setPaused(id hv.VMID, paused bool) error {
	if err := n.Barrier(Version, "pause-control"); err != nil {
		return err
	}
	pd, ok := n.pds[id]
	if !ok {
		return fmt.Errorf("nova: no protection domain %d", id)
	}
	if pd.vm.Paused() == paused {
		return fmt.Errorf("nova: domain %d already paused=%v", id, paused)
	}
	pd.vm.SetPaused(paused)
	return nil
}

// SaveUISR implements hv.Hypervisor.
func (n *NOVA) SaveUISR(id hv.VMID) (*uisr.VMState, error) {
	pd, ok := n.pds[id]
	if !ok {
		return nil, fmt.Errorf("nova: no protection domain %d", id)
	}
	if !pd.vm.Paused() {
		return nil, fmt.Errorf("nova: domain %d must be paused before state save", id)
	}
	st := &uisr.VMState{
		Name:             pd.vm.Config.Name,
		VMID:             uint32(id),
		MemBytes:         pd.vm.Config.MemBytes,
		HugePages:        pd.vm.Config.HugePages,
		SourceHypervisor: "nova",
		Devices:          append([]uisr.EmulatedDevice(nil), pd.devices...),
	}
	for i, u := range pd.utcbs {
		v, err := utcbToUISR(uint32(i), u)
		if err != nil {
			return nil, fmt.Errorf("nova: vCPU %d: %w", i, err)
		}
		st.VCPUs = append(st.VCPUs, v)
	}
	st.Weight = uint16(pd.scPriority)
	st.IOAPIC.NumPins = uisr.KVMIOAPICPins
	copy(st.IOAPIC.Redir[:uisr.KVMIOAPICPins], pd.ioapic[:])
	st.RTC = pd.rtc
	// HasPIT/HasHPET/HasPMTimer stay false: NOVA emulates none of them.
	return st, nil
}

// MemExtents implements hv.Hypervisor (DPT in extent form).
func (n *NOVA) MemExtents(id hv.VMID) ([]uisr.PageExtent, error) {
	pd, ok := n.pds[id]
	if !ok {
		return nil, fmt.Errorf("nova: no protection domain %d", id)
	}
	out := make([]uisr.PageExtent, len(pd.dpt))
	for i, r := range pd.dpt {
		out[i] = uisr.PageExtent{GFN: r.GFNBase, MFN: r.MFNBase, Order: r.Order}
	}
	return out, nil
}

// Footprint implements hv.Hypervisor.
func (n *NOVA) Footprint(id hv.VMID) (hv.Footprint, error) {
	pd, ok := n.pds[id]
	if !ok {
		return hv.Footprint{}, fmt.Errorf("nova: no protection domain %d", id)
	}
	return hv.Footprint{
		GuestBytes:   pd.vm.Space.Bytes(),
		VMStateBytes: uint64(len(pd.stateFrames)) * hw.PageSize4K,
		MgmtBytes:    uint64(len(pd.utcbs)*64 + 96), // scheduling contexts + pd entry
	}, nil
}

// EnableDirtyLog implements hv.Hypervisor.
func (n *NOVA) EnableDirtyLog(id hv.VMID) error {
	if err := n.Barrier(Version, "dirty-log"); err != nil {
		return err
	}
	pd, ok := n.pds[id]
	if !ok {
		return fmt.Errorf("nova: no protection domain %d", id)
	}
	pd.vm.Space.EnableDirtyLog()
	return nil
}

// DisableDirtyLog implements hv.Hypervisor.
func (n *NOVA) DisableDirtyLog(id hv.VMID) error {
	pd, ok := n.pds[id]
	if !ok {
		return fmt.Errorf("nova: no protection domain %d", id)
	}
	pd.vm.Space.DisableDirtyLog()
	return nil
}

// FetchAndClearDirty implements hv.Hypervisor.
func (n *NOVA) FetchAndClearDirty(id hv.VMID) ([]hw.GFN, error) {
	pd, ok := n.pds[id]
	if !ok {
		return nil, fmt.Errorf("nova: no protection domain %d", id)
	}
	return pd.vm.Space.FetchAndClearDirty(), nil
}

// MgmtStateBytes implements hv.Hypervisor.
func (n *NOVA) MgmtStateBytes() uint64 {
	var total uint64
	for _, pd := range n.pds {
		total += uint64(len(pd.utcbs)*64 + 96)
	}
	return total
}

// AttachGuest implements hv.Hypervisor.
func (n *NOVA) AttachGuest(id hv.VMID, g *guest.Guest) error {
	if err := n.Barrier(Version, "attach-guest"); err != nil {
		return err
	}
	pd, ok := n.pds[id]
	if !ok {
		return fmt.Errorf("nova: no protection domain %d", id)
	}
	pd.vm.Guest = g
	g.Rebind(pd.vm.Space)
	return nil
}

// SCPriority returns a protection domain's scheduling-context priority
// (NOVA's management-state representation of the neutral UISR weight).
func (n *NOVA) SCPriority(id hv.VMID) (int, error) {
	pd, ok := n.pds[id]
	if !ok {
		return 0, fmt.Errorf("nova: no protection domain %d", id)
	}
	return pd.scPriority, nil
}

// PlatformDrops reports the legacy devices detached when this VM was
// restored onto the microhypervisor.
func (n *NOVA) PlatformDrops(id hv.VMID) (pit, hpet, pmtimer bool, err error) {
	pd, ok := n.pds[id]
	if !ok {
		return false, false, false, fmt.Errorf("nova: no protection domain %d", id)
	}
	return pd.drops.PIT, pd.drops.HPET, pd.drops.PMTimer, nil
}

// --- UISR converters ---------------------------------------------------------

func utcbFromUISR(v *uisr.VCPU) *utcb {
	u := &utcb{Mtd: mtdAll}
	// NOVA's selector order: ES, CS, SS, DS, FS, GS, LDTR, TR.
	segs := []uisr.Segment{v.SRegs.ES, v.SRegs.CS, v.SRegs.SS, v.SRegs.DS,
		v.SRegs.FS, v.SRegs.GS, v.SRegs.LDT, v.SRegs.TR}
	for i, s := range segs {
		u.Segs[i] = novaSeg{Sel: s.Selector, Ar: s.Attr, Limit: s.Limit, Base: s.Base}
	}
	u.GPR = [16]uint64{
		v.Regs.RAX, v.Regs.RCX, v.Regs.RDX, v.Regs.RBX,
		v.Regs.RSP, v.Regs.RBP, v.Regs.RSI, v.Regs.RDI,
		v.Regs.R8, v.Regs.R9, v.Regs.R10, v.Regs.R11,
		v.Regs.R12, v.Regs.R13, v.Regs.R14, v.Regs.R15,
	}
	u.RIP, u.RFL = v.Regs.RIP, v.Regs.RFLAGS
	u.CR = [5]uint64{v.SRegs.CR0, v.SRegs.CR2, v.SRegs.CR3, v.SRegs.CR4, v.SRegs.CR8}
	u.EFER = v.SRegs.EFER
	u.GDTR, u.IDTR = v.SRegs.GDT, v.SRegs.IDT
	u.FPU = v.FPU.Data
	u.XCR0, u.XHead, u.XExt = v.XSave.XCR0, v.XSave.Header, v.XSave.Extended
	u.APICBase = v.LAPIC.Base
	u.LAPIC = v.LAPIC.Regs
	u.MTRR = v.MTRR
	u.MSRs = append([]uisr.MSR(nil), v.MSRs...)
	sort.Slice(u.MSRs, func(i, j int) bool { return u.MSRs[i].Index < u.MSRs[j].Index })
	return u
}

func utcbToUISR(id uint32, u *utcb) (uisr.VCPU, error) {
	if u.Mtd != mtdAll {
		return uisr.VCPU{}, fmt.Errorf("utcb mtd %#x incomplete (want %#x)", u.Mtd, mtdAll)
	}
	v := uisr.VCPU{ID: id}
	seg := func(i int) uisr.Segment {
		s := u.Segs[i]
		return uisr.Segment{Selector: s.Sel, Attr: s.Ar, Limit: s.Limit, Base: s.Base}
	}
	v.SRegs.ES, v.SRegs.CS, v.SRegs.SS, v.SRegs.DS = seg(0), seg(1), seg(2), seg(3)
	v.SRegs.FS, v.SRegs.GS, v.SRegs.LDT, v.SRegs.TR = seg(4), seg(5), seg(6), seg(7)
	v.Regs = uisr.Regs{
		RAX: u.GPR[0], RCX: u.GPR[1], RDX: u.GPR[2], RBX: u.GPR[3],
		RSP: u.GPR[4], RBP: u.GPR[5], RSI: u.GPR[6], RDI: u.GPR[7],
		R8: u.GPR[8], R9: u.GPR[9], R10: u.GPR[10], R11: u.GPR[11],
		R12: u.GPR[12], R13: u.GPR[13], R14: u.GPR[14], R15: u.GPR[15],
		RIP: u.RIP, RFLAGS: u.RFL,
	}
	v.SRegs.CR0, v.SRegs.CR2, v.SRegs.CR3, v.SRegs.CR4, v.SRegs.CR8 =
		u.CR[0], u.CR[1], u.CR[2], u.CR[3], u.CR[4]
	v.SRegs.EFER = u.EFER
	v.SRegs.GDT, v.SRegs.IDT = u.GDTR, u.IDTR
	v.SRegs.APICBase = u.APICBase
	v.FPU.Data = u.FPU
	v.XSave.XCR0, v.XSave.Header, v.XSave.Extended = u.XCR0, u.XHead, u.XExt
	v.LAPIC.Base = u.APICBase
	v.LAPIC.Regs = u.LAPIC
	v.LAPIC.ID = u.LAPIC[2] >> 24
	v.MTRR = u.MTRR
	v.MSRs = append([]uisr.MSR(nil), u.MSRs...)
	return v, nil
}
