package hv

import (
	"testing"
	"testing/quick"

	"hypertp/internal/hw"
	"hypertp/internal/uisr"
)

func newMem() *hw.PhysMem { return hw.NewPhysMem(256 << 20) }

func TestConfigValidate(t *testing.T) {
	good := Config{Name: "vm", VCPUs: 1, MemBytes: 1 << 30, HugePages: true}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Config{
		{Name: "", VCPUs: 1, MemBytes: 1 << 30},
		{Name: "vm", VCPUs: 0, MemBytes: 1 << 30},
		{Name: "vm", VCPUs: 1, MemBytes: 0},
		{Name: "vm", VCPUs: 1, MemBytes: 4097},
		{Name: "vm", VCPUs: 1, MemBytes: 4096 * 3, HugePages: true},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Fatalf("bad config %d accepted", i)
		}
	}
}

func TestKindString(t *testing.T) {
	if KindXen.String() != "xen" || KindKVM.String() != "kvm" {
		t.Fatal("kind strings wrong")
	}
	if Kind(9).String() == "" {
		t.Fatal("unknown kind empty string")
	}
}

func TestAllocAddressSpace4K(t *testing.T) {
	mem := newMem()
	as, err := AllocAddressSpace(mem, 1, 64*hw.PageSize4K, false)
	if err != nil {
		t.Fatal(err)
	}
	if as.NumPages() != 64 {
		t.Fatalf("NumPages = %d", as.NumPages())
	}
	if as.Bytes() != 64*hw.PageSize4K {
		t.Fatalf("Bytes = %d", as.Bytes())
	}
	for gfn := hw.GFN(0); gfn < 64; gfn++ {
		mfn, err := as.Translate(gfn)
		if err != nil {
			t.Fatal(err)
		}
		if owner, vm := mem.OwnerOf(mfn); owner != hw.OwnerGuest || vm != 1 {
			t.Fatalf("frame %d owner %v/%d", mfn, owner, vm)
		}
	}
}

func TestAllocAddressSpaceHuge(t *testing.T) {
	mem := newMem()
	as, err := AllocAddressSpace(mem, 2, 8*hw.PageSize2M, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(as.Extents()) != 8 {
		t.Fatalf("extents = %d, want 8", len(as.Extents()))
	}
	for _, e := range as.Extents() {
		if e.Order != 9 {
			t.Fatalf("extent order %d, want 9", e.Order)
		}
	}
	if as.NumPages() != 8*hw.FramesPer2M {
		t.Fatalf("NumPages = %d", as.NumPages())
	}
}

func TestTranslateUnmapped(t *testing.T) {
	mem := newMem()
	as, _ := AllocAddressSpace(mem, 1, 16*hw.PageSize4K, false)
	if _, err := as.Translate(16); err == nil {
		t.Fatal("translate past end succeeded")
	}
}

func TestNewAddressSpaceRejectsOverlap(t *testing.T) {
	mem := newMem()
	extents := []uisr.PageExtent{
		{GFN: 0, MFN: 0, Order: 9},
		{GFN: 256, MFN: 1024, Order: 9}, // overlaps the first (0..511)
	}
	if _, err := NewAddressSpace(mem, extents); err == nil {
		t.Fatal("overlapping extents accepted")
	}
}

func TestNewAddressSpaceRejectsMisaligned(t *testing.T) {
	mem := newMem()
	if _, err := NewAddressSpace(mem, []uisr.PageExtent{{GFN: 1, MFN: 512, Order: 9}}); err == nil {
		t.Fatal("misaligned extent accepted")
	}
}

func TestReadWriteThroughSpace(t *testing.T) {
	mem := newMem()
	as, _ := AllocAddressSpace(mem, 1, 4*hw.PageSize2M, true)
	if err := as.WritePage(700, 8, []byte("deadbeef")); err != nil {
		t.Fatal(err)
	}
	got, err := as.ReadPage(700, 8, 8)
	if err != nil || string(got) != "deadbeef" {
		t.Fatalf("read %q, %v", got, err)
	}
}

func TestDirtyLog(t *testing.T) {
	mem := newMem()
	as, _ := AllocAddressSpace(mem, 1, 64*hw.PageSize4K, false)
	// Writes before enabling are not tracked.
	as.WritePage(1, 0, []byte{1})
	as.EnableDirtyLog()
	if !as.DirtyLogEnabled() {
		t.Fatal("dirty log not enabled")
	}
	as.WritePage(5, 0, []byte{1})
	as.WritePage(9, 0, []byte{1})
	as.WritePage(5, 8, []byte{1})
	dirty := as.FetchAndClearDirty()
	if len(dirty) != 2 || dirty[0] != 5 || dirty[1] != 9 {
		t.Fatalf("dirty = %v, want [5 9]", dirty)
	}
	if got := as.FetchAndClearDirty(); len(got) != 0 {
		t.Fatalf("second fetch = %v, want empty", got)
	}
	as.DisableDirtyLog()
	as.WritePage(3, 0, []byte{1})
	if got := as.FetchAndClearDirty(); got != nil {
		t.Fatalf("fetch after disable = %v", got)
	}
}

func TestChecksumAllDetectsChange(t *testing.T) {
	mem := newMem()
	as, _ := AllocAddressSpace(mem, 1, 16*hw.PageSize4K, false)
	c0, err := as.ChecksumAll()
	if err != nil {
		t.Fatal(err)
	}
	as.WritePage(3, 100, []byte{0xAB})
	c1, err := as.ChecksumAll()
	if err != nil {
		t.Fatal(err)
	}
	if c0 == c1 {
		t.Fatal("checksum unchanged after write")
	}
}

func TestChecksumPlacementIndependent(t *testing.T) {
	// Two spaces with the same guest contents but different frame
	// placement must checksum identically — this is what lets tests
	// compare pre/post MigrationTP images.
	memA, memB := newMem(), newMem()
	memB.Alloc(17, hw.OwnerHV, -1) // skew placement on B
	a, _ := AllocAddressSpace(memA, 1, 32*hw.PageSize4K, false)
	b, _ := AllocAddressSpace(memB, 1, 32*hw.PageSize4K, false)
	for gfn := hw.GFN(0); gfn < 32; gfn += 3 {
		payload := []byte{byte(gfn), 0x55}
		a.WritePage(gfn, int(gfn)*7, payload)
		b.WritePage(gfn, int(gfn)*7, payload)
	}
	ca, _ := a.ChecksumAll()
	cb, _ := b.ChecksumAll()
	if ca != cb {
		t.Fatal("same contents, different checksums")
	}
}

func TestFrameRangesMerged(t *testing.T) {
	mem := newMem()
	as, _ := AllocAddressSpace(mem, 1, 4*hw.PageSize2M, true)
	ranges := as.FrameRanges()
	var total uint64
	for i, r := range ranges {
		total += r.Count
		if i > 0 && ranges[i-1].Start+hw.MFN(ranges[i-1].Count) >= r.Start+1 {
			if ranges[i-1].Start+hw.MFN(ranges[i-1].Count) == r.Start {
				t.Fatal("adjacent ranges not merged")
			}
		}
	}
	if total != as.NumPages() {
		t.Fatalf("ranges cover %d frames, want %d", total, as.NumPages())
	}
}

func TestRelease(t *testing.T) {
	mem := newMem()
	before := mem.AllocatedFrames()
	as, _ := AllocAddressSpace(mem, 1, 2*hw.PageSize2M, true)
	if err := as.Release(); err != nil {
		t.Fatal(err)
	}
	if mem.AllocatedFrames() != before {
		t.Fatalf("leak: %d frames allocated after release", mem.AllocatedFrames())
	}
}

func TestRetag(t *testing.T) {
	mem := newMem()
	as, _ := AllocAddressSpace(mem, 1, hw.PageSize2M, true)
	if err := as.Retag(hw.OwnerGuest, 42); err != nil {
		t.Fatal(err)
	}
	mfn, _ := as.Translate(0)
	if _, vm := mem.OwnerOf(mfn); vm != 42 {
		t.Fatalf("vm tag = %d, want 42", vm)
	}
}

func TestVMPausedFlag(t *testing.T) {
	vm := &VM{}
	if vm.Paused() {
		t.Fatal("new VM paused")
	}
	vm.SetPaused(true)
	if !vm.Paused() {
		t.Fatal("SetPaused(true) ignored")
	}
}

// Property: translate is consistent with the extent list for random
// huge/4K mixes.
func TestPropertyTranslate(t *testing.T) {
	f := func(seed uint8) bool {
		mem := newMem()
		nHuge := int(seed%3) + 1
		as, err := AllocAddressSpace(mem, 1, uint64(nHuge)*hw.PageSize2M, true)
		if err != nil {
			return false
		}
		for _, e := range as.Extents() {
			for p := uint64(0); p < e.Pages(); p += 37 {
				mfn, err := as.Translate(hw.GFN(e.GFN + p))
				if err != nil || uint64(mfn) != e.MFN+p {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
