package kvm

import (
	"bytes"
	"testing"

	"hypertp/internal/fuzzseed"
	"hypertp/internal/uisr"
)

// fuzzMSRBlockSeeds is the shared seed list: f.Add'ed by the fuzz
// target and mirrored into testdata/fuzz/ by TestFuzzSeedCorpus.
func fuzzMSRBlockSeeds(tb testing.TB) [][]byte {
	tb.Helper()
	st := uisr.SyntheticVM("seed", 1, 2, 64<<20, 5)
	vs, err := vcpuFromUISR(&st.VCPUs[0])
	if err != nil {
		tb.Fatal(err)
	}
	valid := marshalMsrs(vs.msrs)
	mutated := append([]byte(nil), valid...)
	mutated[0] ^= 0x80 // corrupt the count
	return [][]byte{valid, {}, valid[:7], marshalMsrs(nil), mutated}
}

func TestFuzzSeedCorpus(t *testing.T) {
	fuzzseed.Check(t, "FuzzMSRBlock", fuzzMSRBlockSeeds(t)...)
}

// FuzzMSRBlock: the KVM_SET_MSRS wire parser consumes bytes produced by
// another host's toolstack (the MigrationTP stream), so it must never
// panic on arbitrary input, anything it accepts must re-marshal stably,
// and the MTRR/APIC-base split must be idempotent on canonical blocks.
func FuzzMSRBlock(f *testing.F) {
	for _, seed := range fuzzMSRBlockSeeds(f) {
		f.Add(seed)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		entries, err := parseMsrs(data)
		if err != nil {
			return
		}
		re := marshalMsrs(entries)
		entries2, err := parseMsrs(re)
		if err != nil {
			t.Fatalf("re-marshaled MSR block rejected: %v", err)
		}
		if !bytes.Equal(re, marshalMsrs(entries2)) {
			t.Fatal("marshal not stable")
		}
		// A block carrying MTRRdefType splits into neutral state; the
		// canonical re-encoding of that state must split identically.
		mtrr, generic, apicBase, err := msrsToUISR(entries)
		if err != nil {
			return
		}
		canon := mtrrToMSRs(&mtrr)
		canon = append(canon, kvmMsrEntry{Index: msrAPICBase, Value: apicBase})
		for _, m := range generic {
			canon = append(canon, kvmMsrEntry{Index: m.Index, Value: m.Value})
		}
		mtrr2, generic2, apicBase2, err := msrsToUISR(canon)
		if err != nil {
			t.Fatalf("canonical MSR block rejected: %v", err)
		}
		if mtrr2 != mtrr || apicBase2 != apicBase || len(generic2) != len(generic) {
			t.Fatalf("MTRR/APIC-base split not idempotent: %+v vs %+v", mtrr, mtrr2)
		}
	})
}
