package kvm

import (
	"encoding/binary"
	"fmt"
)

// The KVM_GET_MSRS/KVM_SET_MSRS wire image: struct kvm_msrs — a u32
// count, u32 pad, then 16-byte kvm_msr_entry records (u32 index, u32
// reserved, u64 value). MigrationTP ships this block inside the UISR
// state; the parser below is the boundary that consumes bytes produced
// by another host's toolstack, so it rejects rather than trusts.

// maxMsrEntries bounds the count field (KVM's own KVM_MAX_MSR_ENTRIES
// ceiling), so a corrupt header fails parsing instead of allocating.
const maxMsrEntries = 4096

// marshalMsrs renders an MSR array to its ioctl wire image.
func marshalMsrs(entries []kvmMsrEntry) []byte {
	out := make([]byte, 0, 8+16*len(entries))
	out = binary.LittleEndian.AppendUint32(out, uint32(len(entries)))
	out = binary.LittleEndian.AppendUint32(out, 0)
	for _, e := range entries {
		out = binary.LittleEndian.AppendUint32(out, e.Index)
		out = binary.LittleEndian.AppendUint32(out, 0)
		out = binary.LittleEndian.AppendUint64(out, e.Value)
	}
	return out
}

// parseMsrs decodes an ioctl wire image back to the entry array,
// rejecting truncation, trailing bytes, oversized counts, and nonzero
// reserved fields.
func parseMsrs(data []byte) ([]kvmMsrEntry, error) {
	if len(data) < 8 {
		return nil, fmt.Errorf("kvm: MSR block: %d bytes, need at least 8", len(data))
	}
	n := binary.LittleEndian.Uint32(data)
	if pad := binary.LittleEndian.Uint32(data[4:]); pad != 0 {
		return nil, fmt.Errorf("kvm: MSR block: header pad %#x nonzero", pad)
	}
	if n > maxMsrEntries {
		return nil, fmt.Errorf("kvm: MSR block: %d entries exceeds cap %d", n, maxMsrEntries)
	}
	if want := 8 + 16*int(n); len(data) != want {
		return nil, fmt.Errorf("kvm: MSR block: %d bytes, header promises %d", len(data), want)
	}
	entries := make([]kvmMsrEntry, n)
	for i := range entries {
		off := 8 + 16*i
		entries[i].Index = binary.LittleEndian.Uint32(data[off:])
		if pad := binary.LittleEndian.Uint32(data[off+4:]); pad != 0 {
			return nil, fmt.Errorf("kvm: MSR block: entry %d pad %#x nonzero", i, pad)
		}
		entries[i].Value = binary.LittleEndian.Uint64(data[off+8:])
	}
	return entries, nil
}
