package kvm

import (
	"reflect"
	"testing"
	"testing/quick"

	"hypertp/internal/hv"
	"hypertp/internal/hw"
	"hypertp/internal/simtime"
	"hypertp/internal/uisr"
)

func bootKVM(t *testing.T) *KVM {
	t.Helper()
	m := hw.NewMachine(simtime.NewClock(), hw.M1())
	k, err := Boot(m)
	if err != nil {
		t.Fatal(err)
	}
	return k
}

func testConfig(name string) hv.Config {
	return hv.Config{Name: name, VCPUs: 2, MemBytes: 64 << 20, HugePages: true, Seed: 11}
}

func TestBootReservesHVState(t *testing.T) {
	k := bootKVM(t)
	counts := k.Machine().Mem.CountByOwner()
	if counts[hw.OwnerHV] != HVResidentBytes/hw.PageSize4K {
		t.Fatalf("HV frames = %d", counts[hw.OwnerHV])
	}
	if k.Kind() != hv.KindKVM || k.Name() != Version {
		t.Fatal("identity wrong")
	}
}

func TestCreateAndLifecycle(t *testing.T) {
	k := bootKVM(t)
	vm, err := k.CreateVM(testConfig("web"))
	if err != nil {
		t.Fatal(err)
	}
	if vm.Guest == nil || vm.Paused() {
		t.Fatal("fresh VM state wrong")
	}
	if got, ok := k.LookupVM(vm.ID); !ok || got != vm {
		t.Fatal("lookup failed")
	}
	if err := k.Pause(vm.ID); err != nil {
		t.Fatal(err)
	}
	if err := k.Resume(vm.ID); err != nil {
		t.Fatal(err)
	}
	if err := k.DestroyVM(vm.ID); err != nil {
		t.Fatal(err)
	}
	if len(k.VMs()) != 0 {
		t.Fatal("VM still listed after destroy")
	}
}

func TestCreateVMValidation(t *testing.T) {
	k := bootKVM(t)
	if _, err := k.CreateVM(hv.Config{}); err == nil {
		t.Fatal("empty config accepted")
	}
}

func TestMemslotsCoalesced(t *testing.T) {
	k := bootKVM(t)
	vm, _ := k.CreateVM(testConfig("slots"))
	n, err := k.Memslots(vm.ID)
	if err != nil {
		t.Fatal(err)
	}
	// A fresh huge-page guest on an empty machine is physically
	// contiguous: one slot.
	if n != 1 {
		t.Fatalf("memslots = %d, want 1 for contiguous fresh guest", n)
	}
}

func TestKVMUISRRoundTripLossless(t *testing.T) {
	k := bootKVM(t)
	vm, _ := k.CreateVM(testConfig("rt"))
	k.Pause(vm.ID)
	st1, err := k.SaveUISR(vm.ID)
	if err != nil {
		t.Fatal(err)
	}
	if st1.SourceHypervisor != "kvm" {
		t.Fatalf("source = %q", st1.SourceHypervisor)
	}
	if st1.IOAPIC.NumPins != uisr.KVMIOAPICPins {
		t.Fatalf("pins = %d, want 24", st1.IOAPIC.NumPins)
	}
	restored, err := k.RestoreUISR(st1, hv.RestoreOptions{Mode: hv.RestoreAllocate})
	if err != nil {
		t.Fatal(err)
	}
	st2, err := k.SaveUISR(restored.ID)
	if err != nil {
		t.Fatal(err)
	}
	st2.VMID = st1.VMID
	if !reflect.DeepEqual(st1, st2) {
		t.Fatal("KVM→UISR→KVM round trip is lossy")
	}
}

func TestSaveUISRRequiresPause(t *testing.T) {
	k := bootKVM(t)
	vm, _ := k.CreateVM(testConfig("p"))
	if _, err := k.SaveUISR(vm.ID); err == nil {
		t.Fatal("save of running VM accepted")
	}
}

func TestIOAPICNarrowingFix(t *testing.T) {
	// Xen-sourced UISR: 48 pins. KVM restore must disconnect the top 24
	// (§4.2.1, Xen→KVM direction).
	st := uisr.SyntheticVM("wide", 1, 1, 64<<20, 5)
	st.IOAPIC.NumPins = uisr.XenIOAPICPins
	var io kvmIOAPIC
	dropped := ioapicFromUISR(&st.IOAPIC, &io)
	if dropped != uisr.XenIOAPICPins-uisr.KVMIOAPICPins {
		t.Fatalf("dropped = %d, want 24", dropped)
	}
	for p := 0; p < uisr.KVMIOAPICPins; p++ {
		if io.Redir[p] != st.IOAPIC.Redir[p] {
			t.Fatalf("pin %d changed", p)
		}
	}
}

func TestIOAPICPinsDroppedRecorded(t *testing.T) {
	k := bootKVM(t)
	st := uisr.SyntheticVM("wide", 1, 1, 64<<20, 5)
	st.IOAPIC.NumPins = uisr.XenIOAPICPins
	vm, err := k.RestoreUISR(st, hv.RestoreOptions{Mode: hv.RestoreAllocate})
	if err != nil {
		t.Fatal(err)
	}
	n, err := k.IOAPICPinsDropped(vm.ID)
	if err != nil || n != 24 {
		t.Fatalf("pins dropped = %d, %v", n, err)
	}
}

func TestMTRRLivesInMSRArray(t *testing.T) {
	// The Table 2 mapping: UISR MTRR state must be encoded as
	// architectural MSRs inside KVM's MSR array.
	st := uisr.SyntheticVM("m", 1, 1, 64<<20, 9)
	vs, err := vcpuFromUISR(&st.VCPUs[0])
	if err != nil {
		t.Fatal(err)
	}
	found := map[uint32]uint64{}
	for _, e := range vs.msrs {
		found[e.Index] = e.Value
	}
	if _, ok := found[msrMTRRCap]; !ok {
		t.Fatal("MTRRcap not in MSR array")
	}
	if _, ok := found[msrMTRRDefType]; !ok {
		t.Fatal("MTRRdefType not in MSR array")
	}
	if _, ok := found[msrAPICBase]; !ok {
		t.Fatal("APIC base not in MSR array")
	}
	if found[msrMTRRPhysBase0] != st.VCPUs[0].MTRR.VarBase[0] {
		t.Fatal("variable MTRR base mismatch")
	}
	// And the count: generic + APIC base + 29 MTRR MSRs
	// (cap, defType, 11 fixed, 16 variable).
	want := len(st.VCPUs[0].MSRs) + 1 + 29
	if len(vs.msrs) != want {
		t.Fatalf("MSR array len = %d, want %d", len(vs.msrs), want)
	}
}

func TestMSRsToUISRRejectsForeignState(t *testing.T) {
	// An MSR array without MTRRdefType cannot have been produced by
	// from_uisr; the decoder must refuse rather than fabricate state.
	if _, _, _, err := msrsToUISR([]kvmMsrEntry{{Index: 0x10, Value: 1}}); err == nil {
		t.Fatal("foreign MSR array accepted")
	}
}

// Property: vCPU state converts UISR→KVM→UISR losslessly.
func TestPropertyVCPURoundTrip(t *testing.T) {
	f := func(seed uint64) bool {
		st := uisr.SyntheticVM("p", 1, 1, 64<<20, seed)
		orig := st.VCPUs[0]
		vs, err := vcpuFromUISR(&orig)
		if err != nil {
			return false
		}
		back, err := vcpuToUISR(0, vs)
		if err != nil {
			return false
		}
		return reflect.DeepEqual(orig, back)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: segment attribute decomposition is invertible for all valid
// attribute words.
func TestPropertySegmentAttr(t *testing.T) {
	f := func(attrRaw uint16, sel uint16, limit uint32, base uint64) bool {
		s := uisr.Segment{Selector: sel, Attr: attrRaw & 0xf0ff, Limit: limit, Base: base}
		return segToUISR(segFromUISR(s)) == s
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: MTRR ↔ MSR encoding is invertible.
func TestPropertyMTRRRoundTrip(t *testing.T) {
	f := func(seed uint64) bool {
		st := uisr.SyntheticVM("p", 1, 1, 64<<20, seed)
		m := st.VCPUs[0].MTRR
		entries := mtrrToMSRs(&m)
		entries = append(entries, kvmMsrEntry{Index: msrAPICBase, Value: 0xfee00800})
		back, generic, _, err := msrsToUISR(entries)
		if err != nil || len(generic) != 0 {
			return false
		}
		return reflect.DeepEqual(m, back)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestRestoreAdoptInPlace(t *testing.T) {
	k := bootKVM(t)
	vm, _ := k.CreateVM(testConfig("adopt"))
	vm.Guest.WriteWorkingSet(0, 32)
	g := vm.Guest
	k.Pause(vm.ID)
	st, err := k.SaveUISR(vm.ID)
	if err != nil {
		t.Fatal(err)
	}
	st.MemMap, _ = k.MemExtents(vm.ID)
	if err := k.ReleaseVMState(vm.ID); err != nil {
		t.Fatal(err)
	}
	restored, err := k.RestoreUISR(st, hv.RestoreOptions{Mode: hv.RestoreAdopt})
	if err != nil {
		t.Fatal(err)
	}
	if err := k.AttachGuest(restored.ID, g); err != nil {
		t.Fatal(err)
	}
	if err := g.Verify(); err != nil {
		t.Fatalf("guest state lost: %v", err)
	}
}

func TestFootprintAndMgmt(t *testing.T) {
	k := bootKVM(t)
	vm, _ := k.CreateVM(testConfig("f"))
	fp, err := k.Footprint(vm.ID)
	if err != nil {
		t.Fatal(err)
	}
	if fp.GuestBytes != 64<<20 || fp.VMStateBytes == 0 || fp.MgmtBytes == 0 {
		t.Fatalf("footprint wrong: %+v", fp)
	}
	if k.MgmtStateBytes() == 0 {
		t.Fatal("MgmtStateBytes zero")
	}
}

func TestDirtyLogging(t *testing.T) {
	k := bootKVM(t)
	vm, _ := k.CreateVM(testConfig("dl"))
	if err := k.EnableDirtyLog(vm.ID); err != nil {
		t.Fatal(err)
	}
	vm.Guest.Write(7, 0, []byte{1})
	dirty, err := k.FetchAndClearDirty(vm.ID)
	if err != nil || len(dirty) != 1 || dirty[0] != 7 {
		t.Fatalf("dirty = %v, %v", dirty, err)
	}
	if err := k.DisableDirtyLog(vm.ID); err != nil {
		t.Fatal(err)
	}
}

func TestErrorsOnUnknownVM(t *testing.T) {
	k := bootKVM(t)
	if _, err := k.SaveUISR(42); err == nil {
		t.Fatal("SaveUISR(42) accepted")
	}
	if err := k.DestroyVM(42); err == nil {
		t.Fatal("DestroyVM(42) accepted")
	}
	if err := k.EnableDirtyLog(42); err == nil {
		t.Fatal("EnableDirtyLog(42) accepted")
	}
	if _, err := k.MemExtents(42); err == nil {
		t.Fatal("MemExtents(42) accepted")
	}
	if _, err := k.Footprint(42); err == nil {
		t.Fatal("Footprint(42) accepted")
	}
}

// Xen-sourced state carries HPET and PM-timer records; kvmtool emulates
// neither, so the restore path must drop them (recording the event) and
// never invent them back on save.
func TestPlatformTimerDrops(t *testing.T) {
	k := bootKVM(t)
	st := uisr.SyntheticVM("xen-born", 1, 1, 64<<20, 31)
	st.IOAPIC.NumPins = uisr.XenIOAPICPins
	if !st.HasHPET || !st.HasPMTimer {
		t.Fatal("fixture missing timers")
	}
	vm, err := k.RestoreUISR(st, hv.RestoreOptions{Mode: hv.RestoreAllocate})
	if err != nil {
		t.Fatal(err)
	}
	hpet, pmt, err := k.PlatformTimersDropped(vm.ID)
	if err != nil || !hpet || !pmt {
		t.Fatalf("drops = %v/%v, %v; want true/true", hpet, pmt, err)
	}
	back, err := k.SaveUISR(vm.ID)
	if err != nil {
		t.Fatal(err)
	}
	if back.HasHPET || back.HasPMTimer {
		t.Fatal("kvmtool fabricated platform timers")
	}
	// The RTC, which kvmtool does emulate, survives with its content.
	if back.RTC != st.RTC {
		t.Fatal("RTC state lost")
	}
	if _, _, err := k.PlatformTimersDropped(99); err == nil {
		t.Fatal("unknown VM accepted")
	}
}
