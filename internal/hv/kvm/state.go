// Package kvm models a Linux-5.3/KVM-flavoured type-II hypervisor with a
// kvmtool userspace VMM, re-engineered for HyperTP compliance. Its
// internal state format is deliberately different from the Xen model's:
// platform state is held in ioctl-shaped sections (KVM_GET/SET_REGS,
// _SREGS, _MSRS, _FPU, _XSAVE, _XCRS, _LAPIC, _IRQCHIP, _PIT2), segment
// descriptors are stored bit-decomposed rather than packed, the LAPIC is
// a raw 1 KiB register page, MTRR and APIC-base state live inside the MSR
// array, and the IOAPIC has 24 pins. The UISR converters in this package
// implement the from/to translations and the §4.2.1 compatibility fixes.
package kvm

import (
	"encoding/binary"
	"fmt"

	"hypertp/internal/uisr"
)

// Architectural MSR indices used by the KVM-side encoding of state that
// Xen keeps in dedicated records (Table 2: LAPIC→MSRS, MTRR→MSRS).
const (
	msrAPICBase      = 0x0000001b
	msrMTRRCap       = 0x000000fe
	msrMTRRDefType   = 0x000002ff
	msrMTRRFix0      = 0x00000250 // 64K_00000
	msrMTRRFix1      = 0x00000258 // 16K_80000
	msrMTRRFix2      = 0x00000259 // 16K_A0000
	msrMTRRFixBase   = 0x00000268 // 4K_C0000 .. 4K_F8000 (8 registers)
	msrMTRRPhysBase0 = 0x00000200
)

// kvmRegs mirrors struct kvm_regs: note the field order differs from
// Xen's hvmCPU.
type kvmRegs struct {
	RAX, RBX, RCX, RDX uint64
	RSI, RDI, RSP, RBP uint64
	R8, R9, R10, R11   uint64
	R12, R13, R14, R15 uint64
	RIP, RFLAGS        uint64
}

// kvmSegment mirrors struct kvm_segment: the descriptor attributes are
// bit-decomposed instead of packed into an attr word.
type kvmSegment struct {
	Base     uint64
	Limit    uint32
	Selector uint16
	Type     uint8
	Present  uint8
	DPL      uint8
	DB       uint8
	S        uint8
	L        uint8
	G        uint8
	AVL      uint8
}

// kvmDtable mirrors struct kvm_dtable.
type kvmDtable struct {
	Base  uint64
	Limit uint16
}

// kvmSregs mirrors struct kvm_sregs.
type kvmSregs struct {
	CS, DS, ES, FS, GS, SS, TR, LDT kvmSegment
	GDT, IDT                        kvmDtable
	CR0, CR2, CR3, CR4, CR8         uint64
	EFER                            uint64
	APICBase                        uint64
	InterruptBitmap                 [4]uint64
}

// kvmMsrEntry mirrors struct kvm_msr_entry.
type kvmMsrEntry struct {
	Index uint32
	Pad   uint32
	Value uint64
}

// kvmFpu mirrors struct kvm_fpu (FXSAVE image).
type kvmFpu struct {
	Data [512]byte
}

// kvmXsave mirrors the XSAVE region beyond FXSAVE: header then extended
// area.
type kvmXsave struct {
	Region [568]byte // 64-byte header + 504-byte extended area
}

// kvmXcrs mirrors struct kvm_xcrs (only XCR0 in this model).
type kvmXcrs struct {
	XCR0 uint64
}

// kvmLapicState mirrors struct kvm_lapic_state: the raw 1 KiB APIC
// register page, one 32-bit register per 16-byte stride.
type kvmLapicState struct {
	Regs [1024]byte
}

// kvmIOAPIC is the IOAPIC half of struct kvm_irqchip: 24 pins.
type kvmIOAPIC struct {
	ID    uint32
	Redir [uisr.KVMIOAPICPins]uint64
}

// kvmPitChannel mirrors struct kvm_pit_channel_state.
type kvmPitChannel struct {
	Count         uint32
	LatchedCount  uint32
	Mode          uint8
	BCD           uint8
	Gate          uint8
	OutHigh       uint8
	CountLoadTime uint64
}

// kvmPit2 mirrors struct kvm_pit_state2.
type kvmPit2 struct {
	Channels [3]kvmPitChannel
	Flags    uint32 // bit0: speaker data on
}

// kvmtoolRTC is kvmtool's MC146818 device model: it keeps the index
// register first and the CMOS bank after it — a different layout from
// Xen's record, bridged by the converters.
type kvmtoolRTC struct {
	Index uint8
	CMOS  [128]byte
}

// platformDrops records the Xen→KVM device compatibility fixes applied
// at restore time (§4.2.1 / §4.2.3): platform timers kvmtool does not
// emulate are detached after notifying the guest.
type platformDrops struct {
	HPET    bool
	PMTimer bool
}

// vcpuState is the full per-vCPU ioctl state set kvmtool holds for one
// vCPU fd.
type vcpuState struct {
	regs  kvmRegs
	sregs kvmSregs
	msrs  []kvmMsrEntry
	fpu   kvmFpu
	xsave kvmXsave
	xcrs  kvmXcrs
	lapic kvmLapicState
}

// --- from_uisr_* family -----------------------------------------------------

// vcpuFromUISR translates one neutral vCPU into KVM ioctl state. MTRR and
// APIC-base state is folded into the MSR array (Table 2).
func vcpuFromUISR(v *uisr.VCPU) (*vcpuState, error) {
	st := &vcpuState{}
	st.regs = kvmRegs{
		RAX: v.Regs.RAX, RBX: v.Regs.RBX, RCX: v.Regs.RCX, RDX: v.Regs.RDX,
		RSI: v.Regs.RSI, RDI: v.Regs.RDI, RSP: v.Regs.RSP, RBP: v.Regs.RBP,
		R8: v.Regs.R8, R9: v.Regs.R9, R10: v.Regs.R10, R11: v.Regs.R11,
		R12: v.Regs.R12, R13: v.Regs.R13, R14: v.Regs.R14, R15: v.Regs.R15,
		RIP: v.Regs.RIP, RFLAGS: v.Regs.RFLAGS,
	}
	st.sregs = kvmSregs{
		CS: segFromUISR(v.SRegs.CS), DS: segFromUISR(v.SRegs.DS),
		ES: segFromUISR(v.SRegs.ES), FS: segFromUISR(v.SRegs.FS),
		GS: segFromUISR(v.SRegs.GS), SS: segFromUISR(v.SRegs.SS),
		TR: segFromUISR(v.SRegs.TR), LDT: segFromUISR(v.SRegs.LDT),
		GDT: kvmDtable{Base: v.SRegs.GDT.Base, Limit: v.SRegs.GDT.Limit},
		IDT: kvmDtable{Base: v.SRegs.IDT.Base, Limit: v.SRegs.IDT.Limit},
		CR0: v.SRegs.CR0, CR2: v.SRegs.CR2, CR3: v.SRegs.CR3,
		CR4: v.SRegs.CR4, CR8: v.SRegs.CR8,
		EFER: v.SRegs.EFER, APICBase: v.LAPIC.Base,
	}
	// Generic MSRs first, then the KVM-side encodings of LAPIC base and
	// MTRR state.
	st.msrs = make([]kvmMsrEntry, 0, len(v.MSRs)+28)
	for _, m := range v.MSRs {
		st.msrs = append(st.msrs, kvmMsrEntry{Index: m.Index, Value: m.Value})
	}
	st.msrs = append(st.msrs, kvmMsrEntry{Index: msrAPICBase, Value: v.LAPIC.Base})
	st.msrs = append(st.msrs, mtrrToMSRs(&v.MTRR)...)

	st.fpu.Data = v.FPU.Data
	copy(st.xsave.Region[:64], v.XSave.Header[:])
	copy(st.xsave.Region[64:], v.XSave.Extended[:])
	st.xcrs.XCR0 = v.XSave.XCR0
	for i := 0; i < uisr.NumLAPICRegs; i++ {
		binary.LittleEndian.PutUint32(st.lapic.Regs[i*16:], v.LAPIC.Regs[i])
	}
	binary.LittleEndian.PutUint32(st.lapic.Regs[2*16:], v.LAPIC.ID<<24)
	return st, nil
}

// vcpuToUISR translates KVM ioctl state back to the neutral form, pulling
// LAPIC base and MTRR state back out of the MSR array.
func vcpuToUISR(id uint32, st *vcpuState) (uisr.VCPU, error) {
	v := uisr.VCPU{ID: id}
	v.Regs = uisr.Regs{
		RAX: st.regs.RAX, RBX: st.regs.RBX, RCX: st.regs.RCX, RDX: st.regs.RDX,
		RSI: st.regs.RSI, RDI: st.regs.RDI, RSP: st.regs.RSP, RBP: st.regs.RBP,
		R8: st.regs.R8, R9: st.regs.R9, R10: st.regs.R10, R11: st.regs.R11,
		R12: st.regs.R12, R13: st.regs.R13, R14: st.regs.R14, R15: st.regs.R15,
		RIP: st.regs.RIP, RFLAGS: st.regs.RFLAGS,
	}
	v.SRegs = uisr.SRegs{
		CS: segToUISR(st.sregs.CS), DS: segToUISR(st.sregs.DS),
		ES: segToUISR(st.sregs.ES), FS: segToUISR(st.sregs.FS),
		GS: segToUISR(st.sregs.GS), SS: segToUISR(st.sregs.SS),
		TR: segToUISR(st.sregs.TR), LDT: segToUISR(st.sregs.LDT),
		GDT: uisr.DTable{Base: st.sregs.GDT.Base, Limit: st.sregs.GDT.Limit},
		IDT: uisr.DTable{Base: st.sregs.IDT.Base, Limit: st.sregs.IDT.Limit},
		CR0: st.sregs.CR0, CR2: st.sregs.CR2, CR3: st.sregs.CR3,
		CR4: st.sregs.CR4, CR8: st.sregs.CR8,
		EFER: st.sregs.EFER, APICBase: st.sregs.APICBase,
	}
	mtrr, generic, apicBase, err := msrsToUISR(st.msrs)
	if err != nil {
		return v, err
	}
	v.MTRR = mtrr
	v.MSRs = generic
	v.FPU.Data = st.fpu.Data
	copy(v.XSave.Header[:], st.xsave.Region[:64])
	copy(v.XSave.Extended[:], st.xsave.Region[64:])
	v.XSave.XCR0 = st.xcrs.XCR0
	v.LAPIC.Base = apicBase
	for i := 0; i < uisr.NumLAPICRegs; i++ {
		v.LAPIC.Regs[i] = binary.LittleEndian.Uint32(st.lapic.Regs[i*16:])
	}
	v.LAPIC.ID = v.LAPIC.Regs[2] >> 24
	return v, nil
}

func segFromUISR(s uisr.Segment) kvmSegment {
	a := s.Attr
	return kvmSegment{
		Base:     s.Base,
		Limit:    s.Limit,
		Selector: s.Selector,
		Type:     uint8(a & 0xf),
		S:        uint8(a >> 4 & 1),
		DPL:      uint8(a >> 5 & 3),
		Present:  uint8(a >> 7 & 1),
		AVL:      uint8(a >> 12 & 1),
		L:        uint8(a >> 13 & 1),
		DB:       uint8(a >> 14 & 1),
		G:        uint8(a >> 15 & 1),
	}
}

func segToUISR(s kvmSegment) uisr.Segment {
	a := uint16(s.Type&0xf) |
		uint16(s.S&1)<<4 |
		uint16(s.DPL&3)<<5 |
		uint16(s.Present&1)<<7 |
		uint16(s.AVL&1)<<12 |
		uint16(s.L&1)<<13 |
		uint16(s.DB&1)<<14 |
		uint16(s.G&1)<<15
	return uisr.Segment{Selector: s.Selector, Attr: a, Limit: s.Limit, Base: s.Base}
}

// mtrrToMSRs encodes neutral MTRR state as the architectural MSR entries
// KVM exchanges via KVM_SET_MSRS.
func mtrrToMSRs(m *uisr.MTRRState) []kvmMsrEntry {
	out := make([]kvmMsrEntry, 0, 27)
	out = append(out, kvmMsrEntry{Index: msrMTRRCap, Value: m.Cap})
	def := m.DefType & 0xff
	if m.Enabled {
		def |= 1 << 11
	}
	if m.FixedEna {
		def |= 1 << 10
	}
	out = append(out, kvmMsrEntry{Index: msrMTRRDefType, Value: def})
	out = append(out, kvmMsrEntry{Index: msrMTRRFix0, Value: m.Fixed[0]})
	out = append(out, kvmMsrEntry{Index: msrMTRRFix1, Value: m.Fixed[1]})
	out = append(out, kvmMsrEntry{Index: msrMTRRFix2, Value: m.Fixed[2]})
	for i := 0; i < 8; i++ {
		out = append(out, kvmMsrEntry{Index: uint32(msrMTRRFixBase + i), Value: m.Fixed[3+i]})
	}
	for i := 0; i < 8; i++ {
		out = append(out, kvmMsrEntry{Index: uint32(msrMTRRPhysBase0 + 2*i), Value: m.VarBase[i]})
		out = append(out, kvmMsrEntry{Index: uint32(msrMTRRPhysBase0 + 2*i + 1), Value: m.VarMask[i]})
	}
	return out
}

// msrsToUISR splits a KVM MSR array into neutral MTRR state, the APIC
// base, and the remaining generic MSR list.
func msrsToUISR(entries []kvmMsrEntry) (uisr.MTRRState, []uisr.MSR, uint64, error) {
	var m uisr.MTRRState
	var generic []uisr.MSR
	var apicBase uint64
	sawDefType := false
	for _, e := range entries {
		switch {
		case e.Index == msrAPICBase:
			apicBase = e.Value
		case e.Index == msrMTRRCap:
			m.Cap = e.Value
		case e.Index == msrMTRRDefType:
			m.DefType = e.Value & 0xff
			m.Enabled = e.Value&(1<<11) != 0
			m.FixedEna = e.Value&(1<<10) != 0
			sawDefType = true
		case e.Index == msrMTRRFix0:
			m.Fixed[0] = e.Value
		case e.Index == msrMTRRFix1:
			m.Fixed[1] = e.Value
		case e.Index == msrMTRRFix2:
			m.Fixed[2] = e.Value
		case e.Index >= msrMTRRFixBase && e.Index < msrMTRRFixBase+8:
			m.Fixed[3+e.Index-msrMTRRFixBase] = e.Value
		case e.Index >= msrMTRRPhysBase0 && e.Index < msrMTRRPhysBase0+16:
			i := e.Index - msrMTRRPhysBase0
			if i%2 == 0 {
				m.VarBase[i/2] = e.Value
			} else {
				m.VarMask[i/2] = e.Value
			}
		default:
			generic = append(generic, uisr.MSR{Index: e.Index, Value: e.Value})
		}
	}
	if !sawDefType {
		return m, nil, 0, fmt.Errorf("kvm: MSR array missing MTRRdefType — state not produced by from_uisr")
	}
	return m, generic, apicBase, nil
}

// ioapicFromUISR narrows the neutral (up to 48-pin) IOAPIC to KVM's 24
// pins. Pins ≥ 24 are disconnected — the paper's §4.2.1 experimental
// compatibility fix. It returns the number of pins dropped so callers can
// surface the event.
func ioapicFromUISR(in *uisr.IOAPIC, io *kvmIOAPIC) (dropped int) {
	io.ID = in.ID
	n := int(in.NumPins)
	if n > uisr.KVMIOAPICPins {
		dropped = n - uisr.KVMIOAPICPins
		n = uisr.KVMIOAPICPins
	}
	for p := 0; p < n; p++ {
		io.Redir[p] = in.Redir[p]
	}
	return dropped
}

func ioapicToUISR(io *kvmIOAPIC, out *uisr.IOAPIC) {
	out.ID = io.ID
	out.NumPins = uisr.KVMIOAPICPins
	out.Redir = [uisr.MaxIOAPICPins]uint64{}
	copy(out.Redir[:uisr.KVMIOAPICPins], io.Redir[:])
}

func pitFromUISR(in *uisr.PIT, p *kvmPit2) {
	for i := range in.Channels {
		p.Channels[i] = kvmPitChannel{
			Count:         in.Channels[i].Count,
			LatchedCount:  in.Channels[i].Latched,
			Mode:          in.Channels[i].Mode,
			BCD:           in.Channels[i].BCD,
			Gate:          in.Channels[i].Gate,
			OutHigh:       in.Channels[i].OutHigh,
			CountLoadTime: in.Channels[i].CountLoad,
		}
	}
	p.Flags = uint32(in.Speaker & 1)
}

func pitToUISR(p *kvmPit2, out *uisr.PIT) {
	for i := range p.Channels {
		out.Channels[i] = uisr.PITChannel{
			Count:     p.Channels[i].Count,
			Latched:   p.Channels[i].LatchedCount,
			Mode:      p.Channels[i].Mode,
			BCD:       p.Channels[i].BCD,
			Gate:      p.Channels[i].Gate,
			OutHigh:   p.Channels[i].OutHigh,
			CountLoad: p.Channels[i].CountLoadTime,
		}
	}
	out.Speaker = uint8(p.Flags & 1)
}
