package kvm

import (
	"fmt"
	"sort"

	"hypertp/internal/guest"
	"hypertp/internal/hv"
	"hypertp/internal/hw"
	"hypertp/internal/uisr"
)

// HVResidentBytes is the host Linux + KVM module resident set pinned at
// boot: HV State in the Fig. 2 taxonomy.
const HVResidentBytes = 256 << 20

// Version is the modeled software stack (the paper's testbed).
const Version = "linux-5.3.1/kvm+kvmtool"

// memslot mirrors struct kvm_userspace_memory_region: KVM's own NPT-side
// metadata, distinct in shape from Xen's p2m.
type memslot struct {
	Slot     uint32
	BaseGFN  uint64
	NPages   uint64
	UserAddr uint64 // modeled host virtual address of the mapping
}

// vmProc is one kvmtool VMM process: the userspace side holding the vCPU
// fds and device models. It is what makes KVM's stop-and-copy path light
// compared to Xen's (Table 4).
type vmProc struct {
	vm        *hv.VM
	vcpus     []*vcpuState
	memslots  []memslot
	ioapic    kvmIOAPIC
	pit       kvmPit2
	rtc       kvmtoolRTC
	drops     platformDrops
	cpuShares int
	devices   []uisr.EmulatedDevice
	// stateFrames hold the vCPU state sections and slot tables
	// (OwnerVMState).
	stateFrames []hw.MFN
	// ioapicPinsDropped records the §4.2.1 compatibility event for
	// diagnostics.
	ioapicPinsDropped int
}

// KVM is the type-II hypervisor model.
type KVM struct {
	hv.CrashState
	machine  *hw.Machine
	procs    map[hv.VMID]*vmProc
	nextID   hv.VMID
	hvRanges []hw.FrameRange
	// runnable is the host scheduler's view of vCPU tasks: VM
	// Management State, rebuilt after transplant.
	runnable []hv.VMID
}

var (
	_ hv.Hypervisor = (*KVM)(nil)
	_ hv.Crashable  = (*KVM)(nil)
)

// freezeVCPUs stops every VM's vCPUs in place for the fail-stop and
// hang models: guest memory and VM_i State stay intact for salvage.
func (k *KVM) freezeVCPUs() {
	for _, proc := range k.procs {
		proc.vm.SetPaused(true)
	}
}

// Crash implements hv.Crashable: a host-kernel panic fail-stops every
// kvmtool process with its guests frozen in place.
func (k *KVM) Crash(reason string) bool {
	first := k.MarkCrashed(reason)
	k.freezeVCPUs()
	return first
}

// Hang implements hv.Crashable: the host wedges (scheduler stall);
// only missed heartbeats reveal it.
func (k *KVM) Hang(reason string) bool {
	first := k.MarkHung(reason)
	k.freezeVCPUs()
	return first
}

// Fence implements hv.Crashable.
func (k *KVM) Fence(reason string) {
	k.MarkCrashed(reason)
	k.freezeVCPUs()
}

// Boot instantiates the host Linux + KVM stack on the machine.
func Boot(m *hw.Machine) (*KVM, error) {
	ranges, err := m.Mem.AllocRanges(HVResidentBytes/hw.PageSize4K, hw.OwnerHV, -1)
	if err != nil {
		return nil, fmt.Errorf("kvm: boot reservation: %w", err)
	}
	return &KVM{
		machine:  m,
		procs:    make(map[hv.VMID]*vmProc),
		nextID:   1,
		hvRanges: ranges,
	}, nil
}

// Kind implements hv.Hypervisor.
func (k *KVM) Kind() hv.Kind { return hv.KindKVM }

// Name implements hv.Hypervisor.
func (k *KVM) Name() string { return Version }

// Machine implements hv.Hypervisor.
func (k *KVM) Machine() *hw.Machine { return k.machine }

// CreateVM implements hv.Hypervisor.
func (k *KVM) CreateVM(cfg hv.Config) (*hv.VM, error) {
	if err := k.Barrier(Version, "create"); err != nil {
		return nil, err
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	id := k.nextID
	k.nextID++
	st := uisr.SyntheticVM(cfg.Name, uint32(id), cfg.VCPUs, cfg.MemBytes, cfg.Seed)
	st.IOAPIC.NumPins = uisr.KVMIOAPICPins
	if cfg.Weight > 0 {
		st.Weight = uint16(cfg.Weight)
	}
	return k.instantiate(id, cfg, st, hv.RestoreOptions{Mode: hv.RestoreAllocate,
		InPlaceCompatible: cfg.InPlaceCompatible}, nil, true)
}

// RestoreUISR implements hv.Hypervisor.
func (k *KVM) RestoreUISR(st *uisr.VMState, opts hv.RestoreOptions) (*hv.VM, error) {
	if err := k.Barrier(Version, "restore"); err != nil {
		return nil, err
	}
	if err := st.Validate(); err != nil {
		return nil, err
	}
	id := k.nextID
	k.nextID++
	cfg := hv.Config{
		Name:              st.Name,
		VCPUs:             len(st.VCPUs),
		MemBytes:          st.MemBytes,
		HugePages:         st.HugePages,
		InPlaceCompatible: opts.InPlaceCompatible,
		Weight:            int(st.Weight),
	}
	vm, err := k.instantiate(id, cfg, st, opts, st.MemMap, false)
	if err != nil {
		return nil, err
	}
	vm.SetPaused(true)
	return vm, nil
}

func (k *KVM) instantiate(id hv.VMID, cfg hv.Config, st *uisr.VMState,
	opts hv.RestoreOptions, adopt []uisr.PageExtent, fresh bool) (*hv.VM, error) {

	var space *hv.AddressSpace
	var err error
	switch opts.Mode {
	case hv.RestoreAdopt:
		if len(adopt) == 0 {
			return nil, fmt.Errorf("kvm: adopt restore without memory map for %q", cfg.Name)
		}
		// InPlaceTP restore path: kvmtool mmaps the preserved PRAM
		// file and hands the addresses to KVM as guest memory
		// (§4.2.2).
		space, err = hv.NewAddressSpace(k.machine.Mem, adopt)
		if err == nil {
			err = space.Retag(hw.OwnerGuest, int(id))
		}
	case hv.RestoreAllocate:
		space, err = hv.AllocAddressSpace(k.machine.Mem, int(id), cfg.MemBytes, cfg.HugePages)
	default:
		err = fmt.Errorf("kvm: unknown restore mode %d", opts.Mode)
	}
	if err != nil {
		return nil, err
	}
	// Nothing below may leak the space on failure: freshly allocated
	// guest memory is released, adopted PRAM memory is left intact
	// (still guest-tagged) for the restore retry to adopt again.
	undoSpace := func() {
		if opts.Mode == hv.RestoreAllocate {
			_ = space.Release()
		}
	}

	weight := int(st.Weight)
	if weight == 0 {
		weight = uisr.DefaultWeight
	}
	proc := &vmProc{devices: append([]uisr.EmulatedDevice(nil), st.Devices...)}
	// The host scheduler's representation: cgroup cpu.shares, rebuilt
	// at 4x the neutral scale (1024 = default).
	proc.cpuShares = weight * 4
	// Platform state: UISR → ioctl sections per vCPU (from_uisr path).
	for i := range st.VCPUs {
		vs, err := vcpuFromUISR(&st.VCPUs[i])
		if err != nil {
			undoSpace()
			return nil, fmt.Errorf("kvm: vCPU %d: %w", i, err)
		}
		proc.vcpus = append(proc.vcpus, vs)
	}
	proc.ioapicPinsDropped = ioapicFromUISR(&st.IOAPIC, &proc.ioapic)
	if st.HasPIT {
		pitFromUISR(&st.PIT, &proc.pit)
	} else {
		// PIT-less source: KVM_CREATE_PIT2 defaults (mode 3, max count).
		proc.pit.Channels[0].Mode = 3
		proc.pit.Channels[0].Gate = 1
	}
	proc.rtc = kvmtoolRTC{Index: st.RTC.Index, CMOS: st.RTC.CMOS}
	// kvmtool emulates neither an HPET nor the ACPI PM timer: drop the
	// state after the guest has been notified (§4.2.3's unplug
	// strategy applied to platform timers).
	proc.drops = platformDrops{HPET: st.HasHPET, PMTimer: st.HasPMTimer}

	// Memslots: one slot per contiguous GFN run. With 2 MiB backing the
	// whole guest is typically one slot — KVM's representation is
	// coarser than Xen's per-extent p2m, underlining the format split.
	proc.memslots = slotsFromExtents(space.Extents())

	// VM_i State frames: vCPU sections + slot table.
	stateBytes := len(proc.vcpus)*(16*18+8*24+len(proc.vcpus[0].msrs)*16+512+568+8+1024) +
		len(proc.memslots)*32 + 1024 // irqchip + pit
	proc.stateFrames, err = k.machine.Mem.Alloc(framesFor(stateBytes), hw.OwnerVMState, int(id))
	if err != nil {
		undoSpace()
		return nil, err
	}

	vm := &hv.VM{ID: id, Config: cfg, Space: space}
	proc.vm = vm
	k.procs[id] = proc
	k.rebuildRunnable()

	if fresh {
		drivers := guest.DefaultDrivers()
		for _, name := range cfg.PassthroughDevices {
			drivers = append(drivers, &guest.Driver{Name: name, Class: guest.DevicePassthrough})
		}
		vm.Guest = guest.New(cfg.Name, space, drivers...)
	}
	return vm, nil
}

// slotsFromExtents coalesces GFN-contiguous extents into memslots.
func slotsFromExtents(extents []uisr.PageExtent) []memslot {
	var out []memslot
	for _, e := range extents {
		if n := len(out); n > 0 &&
			out[n-1].BaseGFN+out[n-1].NPages == e.GFN &&
			out[n-1].UserAddr+out[n-1].NPages*hw.PageSize4K == e.MFN*hw.PageSize4K {
			out[n-1].NPages += e.Pages()
			continue
		}
		out = append(out, memslot{
			Slot:     uint32(len(out)),
			BaseGFN:  e.GFN,
			NPages:   e.Pages(),
			UserAddr: e.MFN * hw.PageSize4K,
		})
	}
	return out
}

func framesFor(n int) int {
	if n == 0 {
		return 1
	}
	return (n + hw.PageSize4K - 1) / hw.PageSize4K
}

func (k *KVM) rebuildRunnable() {
	k.runnable = k.runnable[:0]
	for id := range k.procs {
		k.runnable = append(k.runnable, id)
	}
	sort.Slice(k.runnable, func(i, j int) bool { return k.runnable[i] < k.runnable[j] })
}

// DestroyVM implements hv.Hypervisor.
func (k *KVM) DestroyVM(id hv.VMID) error {
	if err := k.Barrier(Version, "destroy"); err != nil {
		return err
	}
	proc, ok := k.procs[id]
	if !ok {
		return fmt.Errorf("kvm: no VM %d", id)
	}
	if err := proc.vm.Space.Release(); err != nil {
		return err
	}
	for _, m := range proc.stateFrames {
		if err := k.machine.Mem.Free(m); err != nil {
			return err
		}
	}
	delete(k.procs, id)
	k.rebuildRunnable()
	return nil
}

// ReleaseVMState frees the VM_i State but leaves guest memory in place —
// the InPlaceTP source-side teardown.
func (k *KVM) ReleaseVMState(id hv.VMID) error {
	proc, ok := k.procs[id]
	if !ok {
		return fmt.Errorf("kvm: no VM %d", id)
	}
	for _, m := range proc.stateFrames {
		if err := k.machine.Mem.Free(m); err != nil {
			return err
		}
	}
	proc.stateFrames = nil
	delete(k.procs, id)
	k.rebuildRunnable()
	return nil
}

// LookupVM implements hv.Hypervisor.
func (k *KVM) LookupVM(id hv.VMID) (*hv.VM, bool) {
	proc, ok := k.procs[id]
	if !ok {
		return nil, false
	}
	return proc.vm, true
}

// VMs implements hv.Hypervisor.
func (k *KVM) VMs() []*hv.VM {
	out := make([]*hv.VM, 0, len(k.procs))
	for _, id := range k.runnable {
		out = append(out, k.procs[id].vm)
	}
	return out
}

// Pause implements hv.Hypervisor.
func (k *KVM) Pause(id hv.VMID) error { return k.setPaused(id, true) }

// Resume implements hv.Hypervisor.
func (k *KVM) Resume(id hv.VMID) error { return k.setPaused(id, false) }

func (k *KVM) setPaused(id hv.VMID, paused bool) error {
	if err := k.Barrier(Version, "pause-control"); err != nil {
		return err
	}
	proc, ok := k.procs[id]
	if !ok {
		return fmt.Errorf("kvm: no VM %d", id)
	}
	if proc.vm.Paused() == paused {
		return fmt.Errorf("kvm: VM %d already paused=%v", id, paused)
	}
	proc.vm.SetPaused(paused)
	return nil
}

// SaveUISR implements hv.Hypervisor: kvmtool reads each vCPU's ioctl
// sections and translates them to UISR (the to_uisr path).
func (k *KVM) SaveUISR(id hv.VMID) (*uisr.VMState, error) {
	proc, ok := k.procs[id]
	if !ok {
		return nil, fmt.Errorf("kvm: no VM %d", id)
	}
	if !proc.vm.Paused() {
		return nil, fmt.Errorf("kvm: VM %d must be paused before state save", id)
	}
	st := &uisr.VMState{
		Name:             proc.vm.Config.Name,
		VMID:             uint32(id),
		MemBytes:         proc.vm.Config.MemBytes,
		HugePages:        proc.vm.Config.HugePages,
		SourceHypervisor: "kvm",
		Devices:          append([]uisr.EmulatedDevice(nil), proc.devices...),
	}
	for i, vs := range proc.vcpus {
		v, err := vcpuToUISR(uint32(i), vs)
		if err != nil {
			return nil, fmt.Errorf("kvm: vCPU %d: %w", i, err)
		}
		st.VCPUs = append(st.VCPUs, v)
	}
	st.Weight = uint16(proc.cpuShares / 4)
	ioapicToUISR(&proc.ioapic, &st.IOAPIC)
	st.HasPIT = true // the in-kernel PIT is always present on this stack
	pitToUISR(&proc.pit, &st.PIT)
	st.RTC = uisr.RTC{CMOS: proc.rtc.CMOS, Index: proc.rtc.Index}
	// HasHPET / HasPMTimer stay false: kvmtool has neither.
	return st, nil
}

// PlatformTimersDropped reports whether the §4.2.1 compatibility path
// detached an HPET and/or PM timer when this VM was restored on kvmtool.
func (k *KVM) PlatformTimersDropped(id hv.VMID) (hpet, pmtimer bool, err error) {
	proc, ok := k.procs[id]
	if !ok {
		return false, false, fmt.Errorf("kvm: no VM %d", id)
	}
	return proc.drops.HPET, proc.drops.PMTimer, nil
}

// MemExtents implements hv.Hypervisor.
func (k *KVM) MemExtents(id hv.VMID) ([]uisr.PageExtent, error) {
	proc, ok := k.procs[id]
	if !ok {
		return nil, fmt.Errorf("kvm: no VM %d", id)
	}
	return proc.vm.Space.Extents(), nil
}

// Footprint implements hv.Hypervisor.
func (k *KVM) Footprint(id hv.VMID) (hv.Footprint, error) {
	proc, ok := k.procs[id]
	if !ok {
		return hv.Footprint{}, fmt.Errorf("kvm: no VM %d", id)
	}
	return hv.Footprint{
		GuestBytes:   proc.vm.Space.Bytes(),
		VMStateBytes: uint64(len(proc.stateFrames)) * hw.PageSize4K,
		MgmtBytes:    uint64(len(proc.vcpus)*48 + 128), // task structs + vm list entry
	}, nil
}

// EnableDirtyLog implements hv.Hypervisor (KVM_MEM_LOG_DIRTY_PAGES).
func (k *KVM) EnableDirtyLog(id hv.VMID) error {
	if err := k.Barrier(Version, "dirty-log"); err != nil {
		return err
	}
	proc, ok := k.procs[id]
	if !ok {
		return fmt.Errorf("kvm: no VM %d", id)
	}
	proc.vm.Space.EnableDirtyLog()
	return nil
}

// DisableDirtyLog implements hv.Hypervisor.
func (k *KVM) DisableDirtyLog(id hv.VMID) error {
	proc, ok := k.procs[id]
	if !ok {
		return fmt.Errorf("kvm: no VM %d", id)
	}
	proc.vm.Space.DisableDirtyLog()
	return nil
}

// FetchAndClearDirty implements hv.Hypervisor.
func (k *KVM) FetchAndClearDirty(id hv.VMID) ([]hw.GFN, error) {
	proc, ok := k.procs[id]
	if !ok {
		return nil, fmt.Errorf("kvm: no VM %d", id)
	}
	return proc.vm.Space.FetchAndClearDirty(), nil
}

// MgmtStateBytes implements hv.Hypervisor.
func (k *KVM) MgmtStateBytes() uint64 {
	var total uint64
	for _, proc := range k.procs {
		total += uint64(len(proc.vcpus)*48 + 128)
	}
	return total
}

// CPUShares returns the kvmtool process's cgroup cpu.shares (KVM's own
// management-state representation of the neutral UISR weight).
func (k *KVM) CPUShares(id hv.VMID) (int, error) {
	proc, ok := k.procs[id]
	if !ok {
		return 0, fmt.Errorf("kvm: no VM %d", id)
	}
	return proc.cpuShares, nil
}

// Memslots returns the VM's slot table (KVM-specific API for tests).
func (k *KVM) Memslots(id hv.VMID) (int, error) {
	proc, ok := k.procs[id]
	if !ok {
		return 0, fmt.Errorf("kvm: no VM %d", id)
	}
	return len(proc.memslots), nil
}

// IOAPICPinsDropped reports how many IOAPIC pins the §4.2.1 compatibility
// fix disconnected when this VM's state was restored.
func (k *KVM) IOAPICPinsDropped(id hv.VMID) (int, error) {
	proc, ok := k.procs[id]
	if !ok {
		return 0, fmt.Errorf("kvm: no VM %d", id)
	}
	return proc.ioapicPinsDropped, nil
}

// AttachGuest binds a guest stack to a restored VM and rebinds its memory.
func (k *KVM) AttachGuest(id hv.VMID, g *guest.Guest) error {
	if err := k.Barrier(Version, "attach-guest"); err != nil {
		return err
	}
	proc, ok := k.procs[id]
	if !ok {
		return fmt.Errorf("kvm: no VM %d", id)
	}
	proc.vm.Guest = g
	g.Rebind(proc.vm.Space)
	return nil
}
