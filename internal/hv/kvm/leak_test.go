package kvm

import (
	"testing"

	"hypertp/internal/hv"
	"hypertp/internal/hw"
	"hypertp/internal/simtime"
	"hypertp/internal/uisr"
)

// TestRestoreFailureLeaksNoFrames mirrors the xen regression: a restore
// that allocates guest memory and then fails (no room for the per-vCPU
// state frames) must release the address space on the way out.
func TestRestoreFailureLeaksNoFrames(t *testing.T) {
	prof := hw.M1()
	prof.RAMBytes = 512 << 20
	m := hw.NewMachine(simtime.NewClock(), prof)
	k, err := Boot(m)
	if err != nil {
		t.Fatal(err)
	}
	freeBefore := m.Mem.FreeFrames()
	st := uisr.SyntheticVM("too-big", 1, 2, freeBefore*hw.PageSize4K, 11)
	if _, err := k.RestoreUISR(st, hv.RestoreOptions{Mode: hv.RestoreAllocate}); err == nil {
		t.Fatal("restore with no room for VM state succeeded")
	}
	if free := m.Mem.FreeFrames(); free != freeBefore {
		t.Fatalf("failed restore leaked %d frames", freeBefore-free)
	}
	if vs := m.Mem.AuditOwners(map[int]bool{}); vs != nil {
		t.Fatalf("failed restore left violations: %v", vs)
	}
	ok := uisr.SyntheticVM("fits", 2, 1, 64<<20, 12)
	if _, err := k.RestoreUISR(ok, hv.RestoreOptions{Mode: hv.RestoreAllocate}); err != nil {
		t.Fatal(err)
	}
}
