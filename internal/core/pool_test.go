package core

import (
	"testing"
	"time"

	"hypertp/internal/hv"
	"hypertp/internal/hv/kvm"
	"hypertp/internal/hv/nova"
	"hypertp/internal/hv/xen"
	"hypertp/internal/hw"
	"hypertp/internal/vulndb"
)

// The VENOM scenario end to end: the flaw hits Xen and KVM at once (both
// embed QEMU), so the two-member pool has no safe target — but the
// microhypervisor, which embeds no QEMU, does. Transplant to it, verify
// guests, and come back once patched.
func TestVENOMEscapeToMicrohypervisor(t *testing.T) {
	db := vulndb.Load()
	const venom = "CVE-2015-3456"

	// The two-member pool fails, the three-member pool succeeds.
	if _, err := db.SelectTarget("xen", []string{venom}, []string{"xen", "kvm"}); err == nil {
		t.Fatal("two-member pool found a VENOM target")
	}
	target, err := db.SelectTarget("xen", []string{venom}, []string{"xen", "kvm", "nova"})
	if err != nil || target != "nova" {
		t.Fatalf("target = %q, %v", target, err)
	}

	// Execute the escape.
	b := newBench(t, hw.M1())
	src := b.bootWithVMs(t, hv.KindXen, 2, 1, 1)
	guests := map[string]interface{ Verify() error }{}
	for _, vm := range src.VMs() {
		vm.Guest.WriteWorkingSet(hw.GFN(int(vm.ID)*7), 128)
		guests[vm.Config.Name] = vm.Guest
	}
	onNova, rep, err := b.engine.InPlace(src, hv.KindNOVA, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if onNova.Kind() != hv.KindNOVA {
		t.Fatal("not on the microhypervisor")
	}
	for name, g := range guests {
		if err := g.Verify(); err != nil {
			t.Fatalf("guest %s: %v", name, err)
		}
	}
	// The microhypervisor boots fast: Xen→NOVA downtime must undercut
	// Xen→KVM (0.62 s boot vs 1.52 s).
	if rep.Downtime >= 1500*time.Millisecond {
		t.Fatalf("Xen→NOVA downtime = %v, want < Xen→KVM's ~1.7s", rep.Downtime)
	}

	// QEMU is patched; transplant back to Xen.
	backOnXen, _, err := b.engine.InPlace(onNova, hv.KindXen, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if backOnXen.Kind() != hv.KindXen {
		t.Fatal("not back on Xen")
	}
	for name, g := range guests {
		if err := g.Verify(); err != nil {
			t.Fatalf("guest %s after return: %v", name, err)
		}
	}
}

// All six transplant directions among the three pool members preserve
// guest state.
func TestAllSixTransplantDirections(t *testing.T) {
	kinds := []hv.Kind{hv.KindXen, hv.KindKVM, hv.KindNOVA}
	for _, from := range kinds {
		for _, to := range kinds {
			if from == to {
				continue
			}
			b := newBench(t, hw.M1())
			src := b.bootWithVMs(t, from, 1, 1, 1)
			vm := src.VMs()[0]
			vm.Guest.WriteWorkingSet(3, 80)
			g := vm.Guest
			dst, rep, err := b.engine.InPlace(src, to, DefaultOptions())
			if err != nil {
				t.Fatalf("%v→%v: %v", from, to, err)
			}
			if err := g.Verify(); err != nil {
				t.Fatalf("%v→%v: guest state lost: %v", from, to, err)
			}
			if !g.AllDriversRunning() {
				t.Fatalf("%v→%v: drivers not running", from, to)
			}
			if len(dst.VMs()) != 1 {
				t.Fatalf("%v→%v: VM lost", from, to)
			}
			if rep.Downtime <= 0 || rep.Downtime > 30*time.Second {
				t.Fatalf("%v→%v: downtime %v", from, to, rep.Downtime)
			}
		}
	}
}

// NOVA-bound VMs migrate too (MigrationTP with a microhypervisor
// destination is covered by the light finalize path).
func TestBootNOVAFromEngine(t *testing.T) {
	b := newBench(t, hw.M1())
	h, err := b.engine.BootHypervisor(hv.KindNOVA)
	if err != nil {
		t.Fatal(err)
	}
	if h.Kind() != hv.KindNOVA {
		t.Fatal("kind wrong")
	}
}

// The scheduling weight is VM_i State: each hypervisor rebuilds its own
// management representation from it (Xen credit weight, host cpu.shares,
// NOVA SC priority), and the neutral value survives every hop.
func TestSchedulingWeightSurvivesTransplants(t *testing.T) {
	const weight = 512
	b := newBench(t, hw.M1())
	src, err := b.engine.BootHypervisor(hv.KindXen)
	if err != nil {
		t.Fatal(err)
	}
	vm, err := src.CreateVM(hv.Config{
		Name: "weighted", VCPUs: 1, MemBytes: 1 << 30, HugePages: true,
		Seed: 3, InPlaceCompatible: true, Weight: weight,
	})
	if err != nil {
		t.Fatal(err)
	}
	if w, _ := src.(*xen.Xen).CreditWeight(vm.ID); w != weight {
		t.Fatalf("Xen credit weight = %d, want %d", w, weight)
	}

	onKVM, _, err := b.engine.InPlace(src, hv.KindKVM, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	kvmVM := onKVM.VMs()[0]
	if kvmVM.Config.Weight != weight {
		t.Fatalf("config weight on KVM = %d", kvmVM.Config.Weight)
	}
	// KVM's own representation: cgroup shares at 4x scale.
	if s, _ := onKVM.(*kvm.KVM).CPUShares(kvmVM.ID); s != weight*4 {
		t.Fatalf("cpu.shares = %d, want %d", s, weight*4)
	}

	onNova, _, err := b.engine.InPlace(onKVM, hv.KindNOVA, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	novaVM := onNova.VMs()[0]
	if p, _ := onNova.(*nova.NOVA).SCPriority(novaVM.ID); p != weight {
		t.Fatalf("SC priority = %d, want %d", p, weight)
	}

	backOnXen, _, err := b.engine.InPlace(onNova, hv.KindXen, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	xenVM := backOnXen.VMs()[0]
	if w, _ := backOnXen.(*xen.Xen).CreditWeight(xenVM.ID); w != weight {
		t.Fatalf("credit weight after full journey = %d, want %d", w, weight)
	}
}
