// Package core implements HyperTP itself: the transplant engine that
// combines in-place micro-reboot-based transplant (InPlaceTP, §3.2/Fig. 3)
// and live-migration-based transplant (MigrationTP, §3.3) behind one
// interface, built on the UISR and memory-separation principles of §3.1.
//
// The engine performs the real state mechanics — UISR save, PRAM build,
// kexec, adopt-restore, guest rebinding — against the simulated machine,
// and charges calibrated virtual time for each phase so the Fig. 6-10
// breakdowns are measurable outputs.
package core

import (
	"fmt"
	"time"

	"hypertp/internal/fault"
	"hypertp/internal/guest"
	"hypertp/internal/hterr"
	"hypertp/internal/hv"
	"hypertp/internal/hv/kvm"
	"hypertp/internal/hv/nova"
	"hypertp/internal/hv/xen"
	"hypertp/internal/hw"
	"hypertp/internal/kexec"
	"hypertp/internal/obs"
	"hypertp/internal/par"
	"hypertp/internal/pram"
	rpt "hypertp/internal/report"
	"hypertp/internal/simtime"
	"hypertp/internal/tpcache"
	"hypertp/internal/trace"
	"hypertp/internal/uisr"
)

// Options toggles the §4.2.5 optimizations. The zero value is the fully
// de-optimized configuration; use DefaultOptions for the paper's setup.
type Options struct {
	// PrepareBeforePause performs PRAM construction before pausing VMs
	// (the pre-copy-like preparation), keeping it out of the downtime.
	PrepareBeforePause bool
	// Parallel translates/restores VMs on all worker threads instead of
	// sequentially.
	Parallel bool
	// HugePages records 2 MiB PRAM entries instead of splitting into
	// 4 KiB entries (smaller metadata, faster build and boot-time
	// parse).
	HugePages bool
	// EarlyRestoration starts VM restoration as soon as KVM/Xen
	// services are up rather than after full service settle.
	EarlyRestoration bool
	// Cache, when non-nil, memoizes repeat-transplant work: encoded
	// UISR translation blobs (keyed by VM state fingerprint) and built
	// PRAM metadata images. Caching only skips wall-clock compute — the
	// virtual-time costs, reports, and every preserved byte are
	// identical with or without it. The cache may be shared across
	// engines (the fleet warm pool does).
	Cache *tpcache.Cache
}

// DefaultOptions is the paper's optimized configuration.
func DefaultOptions() Options {
	return Options{PrepareBeforePause: true, Parallel: true, HugePages: true, EarlyRestoration: true}
}

// VMResult records one VM's journey through a transplant.
type VMResult struct {
	Name  string
	OldID hv.VMID
	NewID hv.VMID
	VCPUs int
	Bytes uint64
	// UISRBytes is the serialized platform-state size (Fig. 14).
	UISRBytes uint64
}

// InPlaceReport is the Fig. 6 phase breakdown of one InPlaceTP operation.
type InPlaceReport struct {
	Source, Target string

	// Phase durations. PRAM runs before the pause when
	// PrepareBeforePause is set; the others are inside the downtime.
	PRAM        time.Duration
	Translation time.Duration
	Reboot      time.Duration
	Restoration time.Duration
	// Network is the NIC reinitialization time, overlapping
	// restoration; only network-dependent applications observe it.
	Network time.Duration

	// Downtime = Translation + Reboot + Restoration (+ PRAM when built
	// inside the pause window).
	Downtime time.Duration
	// NetworkDowntime is the service interruption seen by
	// network-dependent applications: Downtime + Network.
	NetworkDowntime time.Duration
	// Total is PRAM + Downtime (the full transplantation time).
	Total time.Duration

	// PRAMMetadataBytes and UISRBytes are the Fig. 14 overheads.
	PRAMMetadataBytes uint64
	UISRBytes         uint64
	WipedFrames       int

	VMs []VMResult

	// Outcome is the terminal state: completed (clean run), recovered
	// (at least one injected fault was absorbed by crash recovery), or
	// rolled-back (a pre-kexec failure undid the transplant and every
	// VM still runs on the source).
	Outcome rpt.Outcome
	// Attempts counts runs of the failing stage (boot/parse/restore
	// retries included); 1 on a clean pass.
	Attempts int
	// Faults is the number of injected faults absorbed.
	Faults int
	// CacheHits, CacheMisses, and CacheWarmStarts count the transplant
	// cache lookups this operation made (all zero when caching is
	// disabled). They describe the cache, not the transplant: every
	// other field is byte-identical with caching on or off.
	CacheHits, CacheMisses, CacheWarmStarts uint64

	// Emergency marks a report produced by the reactive recovery path
	// (Engine.Emergency) rather than a planned transplant. Emergency
	// reports measure from salvage start: detection latency is the
	// detector's to account, and the pause phase does not exist — the
	// crash already stopped every vCPU.
	Emergency bool
}

// Summary implements report.Report.
func (r *InPlaceReport) Summary() rpt.Summary {
	out := r.Outcome
	if out == "" {
		out = rpt.OutcomeCompleted
	}
	attempts := r.Attempts
	if attempts < 1 {
		attempts = 1
	}
	kind := "inplace"
	if r.Emergency {
		kind = "emergency"
	}
	return rpt.Summary{
		Kind:            kind,
		Outcome:         out,
		Attempts:        attempts,
		Downtime:        r.Downtime,
		VirtualElapsed:  r.Total,
		Faults:          r.Faults,
		CacheHits:       r.CacheHits,
		CacheMisses:     r.CacheMisses,
		CacheWarmStarts: r.CacheWarmStarts,
	}
}

// Engine drives transplants on one machine.
type Engine struct {
	Clock   *simtime.Clock
	Machine *hw.Machine
	// Trace, when non-nil, receives one event per workflow step
	// (Fig. 3 audit log). A nil Trace is valid and free.
	Trace *trace.Log
	// Obs, when non-nil, records a hierarchical span per Fig. 3 phase
	// plus page/byte/latency metrics. A nil Obs is valid and free (the
	// no-op fast path), so uninstrumented runs pay nothing.
	Obs *obs.Recorder
	// Fault, when non-nil, is consulted at every registered injection
	// site of the InPlaceTP workflow (kexec.load, pram.build,
	// uisr.translate, kexec.handover, hv.boot, pram.parse,
	// uisr.restore). A nil Fault is valid and free.
	Fault *fault.Plan
	// Retry bounds the post-kexec crash-recovery loops (hypervisor
	// boot, PRAM re-parse, per-VM restore). Crash recovery is the
	// paper's semantic, so the zero value takes DefaultRetryPolicy.
	Retry fault.RetryPolicy
}

// NewEngine creates an engine for the given machine.
func NewEngine(clock *simtime.Clock, m *hw.Machine) *Engine {
	return &Engine{Clock: clock, Machine: m}
}

// SwapClock points the engine and its machine at a private clock and
// returns a restore function. The fleet scheduler uses this to run one
// host's transplant on a per-task timeline (advanced to the node's
// virtual start) while other hosts execute concurrently: the engine only
// ever calls Advance/Now, so an isolated clock is a faithful stand-in
// for the shared one. Restore must be called from sequential code.
func (e *Engine) SwapClock(c *simtime.Clock) (restore func()) {
	oldE, oldM := e.Clock, e.Machine.Clock
	e.Clock = c
	e.Machine.Clock = c
	return func() {
		e.Clock = oldE
		e.Machine.Clock = oldM
	}
}

// BootHypervisor boots a hypervisor of the requested kind on the
// engine's machine.
func (e *Engine) BootHypervisor(kind hv.Kind) (hv.Hypervisor, error) {
	switch kind {
	case hv.KindXen:
		return xen.Boot(e.Machine)
	case hv.KindKVM:
		return kvm.Boot(e.Machine)
	case hv.KindNOVA:
		return nova.Boot(e.Machine)
	default:
		return nil, hterr.Incompatible(fmt.Errorf("core: unknown hypervisor kind %v", kind))
	}
}

// InPlace performs an in-place hypervisor transplant of every VM on src
// to a freshly booted hypervisor of the target kind, following the Fig. 3
// workflow. On success the returned hypervisor replaces src, which must
// not be used afterwards.
func (e *Engine) InPlace(src hv.Hypervisor, target hv.Kind, opts Options) (hv.Hypervisor, *InPlaceReport, error) {
	if src.Machine() != e.Machine {
		return nil, nil, hterr.Incompatible(fmt.Errorf("core: source hypervisor is not on this machine"))
	}
	if src.Kind() == target {
		return nil, nil, hterr.Incompatible(fmt.Errorf("core: transplant to the same hypervisor kind %v", target))
	}
	vms := src.VMs()
	if len(vms) == 0 {
		return nil, nil, hterr.Incompatible(fmt.Errorf("core: no VMs to transplant"))
	}
	for _, vm := range vms {
		if vm.Paused() {
			return nil, nil, hterr.Incompatible(fmt.Errorf("core: VM %q already paused", vm.Config.Name))
		}
	}
	cost := e.Machine.Profile.Cost
	report := &InPlaceReport{Source: src.Name(), Target: target.String()}
	start := e.Clock.Now()
	// The root span owns the whole Fig. 3 workflow; the deferred End is
	// the error-path cleanup — it closes any phase span left open.
	root := e.Obs.Start("inplace-tp",
		obs.A("source", src.Name()), obs.A("target", target.String()),
		obs.A("vms", len(vms)))
	defer root.End()
	mets := e.Obs.Metrics()
	mets.Counter("tp.vms_transplanted", "vms").Add(int64(len(vms)))
	report.Attempts = 1
	retry := e.Retry
	if retry.MaxAttempts == 0 {
		retry = fault.DefaultRetryPolicy()
	}

	// Rollback bookkeeping: everything the pre-kexec phases ❶-❸ touch is
	// recorded here so that any failure before the point of no return
	// (VM_i State release) can be fully undone — blobs freed, PRAM
	// released, the staged image unloaded, VMs resumed with the device
	// protocol completed — leaving the source exactly as it was.
	var (
		img            *kexec.Image
		ps             *pram.Structure
		guests         map[string]*guest.Guest
		blobFrames     [][]hw.MFN
		pausedVMs      []*hv.VM
		preparedGuests []*guest.Guest
		err            error
	)
	rollback := func(cause error) (hv.Hypervisor, *InPlaceReport, error) {
		rb := e.Obs.Start("rollback", obs.A("cause", cause.Error()))
		for _, frames := range blobFrames {
			for _, f := range frames {
				_ = e.Machine.Mem.Free(f)
			}
		}
		if ps != nil {
			_ = ps.Release(e.Machine.Mem)
			ps = nil
		}
		if img != nil {
			_ = img.Unload(e.Machine)
			img = nil
		}
		for i := len(pausedVMs) - 1; i >= 0; i-- {
			_ = src.Resume(pausedVMs[i].ID)
		}
		for i := len(preparedGuests) - 1; i >= 0; i-- {
			_ = preparedGuests[i].CompleteTransplant()
		}
		rb.End()
		e.Trace.Emit(trace.StepCleanup, "transplant aborted; rolled back to %s", src.Name())
		mets.Counter("tp.rollbacks", "transplants").Add(1)
		report.Outcome = rpt.OutcomeRolledBack
		report.Total = e.Clock.Now() - start
		root.SetAttr("outcome", string(rpt.OutcomeRolledBack))
		return nil, report, hterr.Abort(cause)
	}
	// crashAbandon models a double fault: the source hypervisor itself
	// fail-stops while the transplant is in flight. Rollback is
	// impossible — resuming a VM takes a live hypervisor — and the VMs
	// are not lost either: the crash froze their vCPUs with guest memory
	// and VM_i State intact in place. Staging allocations are freed (the
	// emergency path rebuilds its own) and the host is handed back
	// crashed, for the reactive recovery path to salvage.
	crashAbandon := func(cause error) (hv.Hypervisor, *InPlaceReport, error) {
		ca := e.Obs.Start("crash-abandon", obs.A("cause", cause.Error()))
		for _, frames := range blobFrames {
			for _, f := range frames {
				_ = e.Machine.Mem.Free(f)
			}
		}
		if ps != nil {
			_ = ps.Release(e.Machine.Mem)
			ps = nil
		}
		if img != nil {
			_ = img.Unload(e.Machine)
			img = nil
		}
		if c, ok := src.(hv.Crashable); ok {
			c.Crash("double fault during transplant")
		}
		ca.End()
		e.Trace.Emit(trace.StepCleanup, "source crashed mid-transplant; %d VMs frozen awaiting emergency recovery", len(vms))
		mets.Counter("tp.crash_abandons", "transplants").Add(1)
		report.Outcome = rpt.OutcomeCrashed
		report.Total = e.Clock.Now() - start
		root.SetAttr("outcome", string(rpt.OutcomeCrashed))
		return nil, report, hterr.HypervisorCrashed(cause)
	}
	// lost marks a failure past the point of no return that forward
	// recovery could not absorb. The recovery matrix forbids any
	// registered injection site from ever reaching it.
	lost := func(cause error) (hv.Hypervisor, *InPlaceReport, error) {
		mets.Counter("tp.vms_lost", "vms").Add(int64(len(vms)))
		root.SetAttr("outcome", "lost")
		return nil, nil, hterr.VMLost(cause)
	}
	// recovered charges one recovery pass: the crash is absorbed, the
	// named stage re-runs, and the report records the extra attempt.
	recovered := func(site fault.Site, extra time.Duration) {
		rec := e.Obs.Start("recovery:"+string(site), obs.A("charge", extra))
		report.Faults++
		report.Attempts++
		report.Reboot += extra
		e.Clock.Advance(extra)
		rec.End()
		mets.Counter("tp.recoveries", "recoveries").Add(1)
		e.Trace.Emit(trace.StepKexec, "crash at %s absorbed; stage re-run (+%v)", site, extra)
	}

	// ❶ Load the target hypervisor image ahead of time.
	sp := e.Obs.Start(trace.StepLoadImage)
	if ferr := e.Fault.Fire(fault.SiteKexecLoad); ferr != nil {
		report.Faults++
		sp.End()
		return rollback(ferr)
	}
	img, err = kexec.Load(e.Machine, target)
	if err != nil {
		sp.End()
		return rollback(err)
	}
	e.Trace.Emit(trace.StepLoadImage, "%s image staged (%d MiB)", target, img.Bytes>>20)
	sp.End()

	// PRAM construction (runs before the pause with the optimization,
	// inside the downtime without it). The structure itself is built
	// for real either way; only the accounting moves.
	buildPRAM := func() (*pram.Structure, map[string]*guest.Guest, error) {
		sp := e.Obs.Start(trace.StepPRAMBuild)
		defer sp.End()
		if ferr := e.Fault.Fire(fault.SitePRAMBuild); ferr != nil {
			report.Faults++
			return nil, nil, ferr
		}
		files := make([]pram.File, 0, len(vms))
		guests := make(map[string]*guest.Guest, len(vms))
		costs := make([]time.Duration, 0, len(vms))
		var pages uint64
		for _, vm := range vms {
			extents, err := src.MemExtents(vm.ID)
			if err != nil {
				return nil, nil, err
			}
			for _, ex := range extents {
				pages += ex.Pages()
			}
			files = append(files, pram.File{
				Name: vm.Config.Name, VMID: uint32(vm.ID),
				Extents: extents,
			})
			guests[vm.Config.Name] = vm.Guest
			costs = append(costs, cost.PRAMBuild(vm.Config.MemBytes, opts.HugePages))
		}
		ps, err := pram.Build(e.Machine.Mem, files, e.pramBuildOptions(opts))
		if err != nil {
			return nil, nil, err
		}
		report.PRAM = e.elapsed(costs, opts.Parallel)
		e.Clock.Advance(report.PRAM)
		e.Trace.Emit(trace.StepPRAMBuild, "%d files, %d B metadata", len(files), ps.MetadataBytes())
		mets.Counter("pram.pages_preserved", "pages").Add(int64(pages))
		sp.SetAttr("files", len(files))
		sp.SetAttr("pages", pages)
		sp.SetAttr("metadata_bytes", ps.MetadataBytes())
		return ps, guests, nil
	}

	if opts.PrepareBeforePause {
		if ps, guests, err = buildPRAM(); err != nil {
			return rollback(err)
		}
	}

	// ❷ Pause all VMs and run the guest-side device protocol (§4.2.3).
	pauseAt := e.Clock.Now()
	sp = e.Obs.Start(trace.StepPause)
	e.Trace.Emit(trace.StepPause, "%d VMs paused, device protocol run", len(vms))
	for _, vm := range vms {
		if vm.Guest != nil {
			if err := vm.Guest.PrepareTransplant(); err != nil {
				return rollback(err)
			}
			preparedGuests = append(preparedGuests, vm.Guest)
		}
		if err := src.Pause(vm.ID); err != nil {
			return rollback(err)
		}
		pausedVMs = append(pausedVMs, vm)
	}
	sp.End()
	if !opts.PrepareBeforePause {
		if ps, guests, err = buildPRAM(); err != nil {
			return rollback(err)
		}
	}

	// Double-fault window: the source hypervisor can fail-stop right
	// here, with every VM paused and the device protocol already run —
	// the worst point, because neither rollback (no hypervisor to resume
	// on) nor normal completion is reachable.
	if ferr := e.Fault.Fire(fault.SiteHVCrashDuringTP); ferr != nil {
		report.Faults++
		return crashAbandon(ferr)
	}

	// ❸ Translate VM_i State to UISR and stash the blobs in preserved
	// RAM: each blob becomes an extra PRAM file so the target kernel
	// can find it after the micro-reboot.
	//
	// The phase is staged so the wall-clock parallel part is pure compute:
	// SaveUISR runs sequentially (it walks hypervisor structures), the
	// per-VM Encode fans out on the par pool, and blob frames are
	// allocated and written sequentially so MFN assignment — and therefore
	// every preserved byte — is identical for any worker count.
	type savedVM struct {
		res    VMResult
		inPl   bool
		frames []hw.MFN
		bytes  int
	}
	sp = e.Obs.Start(trace.StepTranslate)
	// Wall-clock encode latency is profiling-only (Volatile); the
	// virtual per-VM translation costs below are the deterministic
	// latency record.
	encodeWall := mets.Histogram("uisr.encode_wall_ns", "ns", obs.ExpBuckets(1e3, 4, 12)).Volatile()
	translateVirtual := mets.Histogram("tp.translate_virtual_s", "s", obs.ExpBuckets(1e-3, 2, 16))
	// The cache (when configured) short-circuits SaveUISR+Encode for VMs
	// whose state fingerprint maps to a cached blob. Virtual costs are
	// charged identically either way; only the wall-clock compute is
	// skipped, so the preserved bytes match the cold path exactly.
	gen := e.Machine.Generation()
	states := make([]*uisr.VMState, 0, len(vms))
	missIdx := make([]int, 0, len(vms))
	allBlobs := make([][]byte, len(vms))
	blobHashes := make([]uint64, len(vms))
	costs := make([]time.Duration, 0, len(vms))
	for i, vm := range vms {
		if ferr := e.Fault.Fire(fault.SiteUISRTranslate); ferr != nil {
			report.Faults++
			return rollback(ferr)
		}
		c := cost.Translate(vm.Config.VCPUs, vm.Config.MemBytes)
		costs = append(costs, c)
		translateVirtual.Observe(c.Seconds())
		if opts.Cache != nil {
			if b, h, warm, ok := opts.Cache.LookupTranslation(src.Kind(), e.Machine, gen, vm.ID); ok {
				if ferr := e.Fault.Fire(fault.SiteCacheStale); ferr != nil {
					// Poisoned entry: discard it and fall back to the
					// cold translate path. The fault is absorbed — a
					// stale cache can cost time, never correctness.
					opts.Cache.Invalidate(src.Kind(), e.Machine, gen, vm.ID)
					report.Faults++
					mets.Counter("tpcache.stale", "entries").Add(1)
				} else {
					allBlobs[i] = b
					blobHashes[i] = h
					report.CacheHits++
					if warm {
						report.CacheWarmStarts++
						mets.Counter("tpcache.warm_starts", "vms").Add(1)
					}
					continue
				}
			}
		}
		st, err := src.SaveUISR(vm.ID)
		if err != nil {
			return rollback(err)
		}
		// The memory map travels via the PRAM "mem" file, not the UISR
		// blob — Fig. 14 accounts the two overheads separately.
		st.MemMap = nil
		states = append(states, st)
		missIdx = append(missIdx, i)
	}
	encoded, err := par.Map(states, func(_ int, st *uisr.VMState) ([]byte, error) {
		t0 := time.Now()
		blob, err := uisr.Encode(st)
		encodeWall.Observe(float64(time.Since(t0).Nanoseconds()))
		return blob, err
	})
	if err != nil {
		return rollback(err)
	}
	for k, i := range missIdx {
		allBlobs[i] = encoded[k]
		if opts.Cache != nil {
			blobHashes[i] = opts.Cache.StoreTranslation(src.Kind(), e.Machine, gen, vms[i].ID, encoded[k], false)
		}
	}
	if opts.Cache != nil {
		report.CacheMisses += uint64(len(missIdx))
		mets.Counter("tpcache.hits", "lookups").Add(int64(len(vms) - len(missIdx)))
		mets.Counter("tpcache.misses", "lookups").Add(int64(len(missIdx)))
	}
	saved := make([]savedVM, 0, len(vms))
	blobFiles := make([]pram.File, 0, len(vms))
	for i, vm := range vms {
		blob := allBlobs[i]
		// Re-land a cached blob at the frames it occupied last time, so
		// the PRAM fileset — which embeds the blob extents — is
		// byte-stable across repeat transplants and the snapshot replay
		// can fire. Falls back to cursor allocation when the old frames
		// are taken.
		var frames []hw.MFN
		if opts.Cache != nil {
			frames = writeBlobAt(e.Machine.Mem, blob, opts.Cache.BlobFrames(e.Machine, blobHashes[i]))
		}
		if frames == nil {
			var err error
			frames, err = writeBlob(e.Machine.Mem, blob)
			if err != nil {
				return rollback(err)
			}
			if opts.Cache != nil {
				opts.Cache.SetBlobFrames(e.Machine, blobHashes[i], frames)
			}
		}
		blobFrames = append(blobFrames, frames)
		saved = append(saved, savedVM{
			res: VMResult{
				Name: vm.Config.Name, OldID: vm.ID,
				VCPUs: vm.Config.VCPUs, Bytes: vm.Config.MemBytes,
				UISRBytes: uint64(len(blob)),
			},
			inPl:   vm.Config.InPlaceCompatible,
			frames: frames,
			bytes:  len(blob),
		})
		report.UISRBytes += uint64(len(blob))
		blobFiles = append(blobFiles, blobFile(vm.Config.Name, frames))
	}
	// Record the blob locations in a second PRAM structure chained to
	// nothing — we rebuild one structure holding both memory maps and
	// blobs for the handover.
	allFiles := append(append([]pram.File(nil), ps.Files...), blobFiles...)
	relErr := ps.Release(e.Machine.Mem)
	ps = nil
	if relErr != nil {
		return rollback(relErr)
	}
	ps, err = pram.Build(e.Machine.Mem, allFiles, e.pramBuildOptions(opts))
	if err != nil {
		return rollback(err)
	}
	report.Translation = e.elapsed(costs, opts.Parallel)
	e.Clock.Advance(report.Translation)
	report.PRAMMetadataBytes = ps.MetadataBytes()
	e.Trace.Emit(trace.StepTranslate, "%d VM_i states to UISR (%d B)", len(vms), report.UISRBytes)
	mets.Counter("tp.uisr_bytes", "bytes").Add(int64(report.UISRBytes))
	mets.Counter("tp.pram_metadata_bytes", "bytes").Add(int64(report.PRAMMetadataBytes))
	sp.SetAttr("uisr_bytes", report.UISRBytes)
	sp.End()

	// Source-side teardown: release VM_i State (guest memory stays).
	// This is the point of no return — past it, the UISR blobs in
	// preserved RAM are the only copy of the VMs' platform state, so
	// recovery can only go forward.
	for _, vm := range vms {
		if err := releaseVMState(src, vm.ID); err != nil {
			return lost(err)
		}
	}

	// ❹ Micro-reboot into the target hypervisor. The preserve set comes
	// entirely from PRAM: guest memory, metadata pages, and the UISR
	// blob frames (recorded as "uisr:" files above).
	sp = e.Obs.Start(trace.StepKexec)
	res, err := kexec.Exec(e.Machine, img, ps.Pointer, ps.FrameRanges())
	if err != nil {
		return lost(err)
	}
	report.WipedFrames = res.WipedFrames
	var totalMem uint64
	for _, vm := range vms {
		totalMem += vm.Config.MemBytes
	}
	bootBase := cost.BootLinuxKVM
	switch target {
	case hv.KindXen:
		bootBase = cost.BootXenDom0
	case hv.KindNOVA:
		bootBase = cost.BootNOVA
	}
	e.Trace.Emit(trace.StepKexec, "wiped %d frames, preserved %d", res.WipedFrames, res.PreservedFrames)
	mets.Counter("tp.wiped_frames", "frames").Add(int64(res.WipedFrames))
	report.Reboot = bootBase + cost.PRAMParse(totalMem, len(vms), opts.HugePages)
	e.Clock.Advance(report.Reboot)
	if ferr := e.Fault.Fire(fault.SiteKexecHandover); ferr != nil {
		// The micro-reboot crashed during the handover, after the wipe:
		// the machine comes back up with nothing but PRAM. The watchdog
		// reboot charges a second boot; preserved RAM — and with it
		// every guest page and UISR blob — is untouched, so the
		// workflow continues forward.
		recovered(fault.SiteKexecHandover, bootBase)
	}
	sp.SetAttr("wiped_frames", res.WipedFrames)
	sp.SetAttr("preserved_frames", res.PreservedFrames)
	sp.End()

	// ❺ Boot the target hypervisor and re-parse PRAM from the command
	// line pointer — the real handover.
	sp = e.Obs.Start(trace.StepBoot)
	var dst hv.Hypervisor
	bootStart := e.Clock.Now()
	for attempt := 1; ; attempt++ {
		if ferr := e.Fault.Fire(fault.SiteHVBoot); ferr != nil {
			if attempt >= retry.Attempts() {
				return lost(fmt.Errorf("core: target hypervisor failed to boot %d times: %w", attempt, ferr))
			}
			if werr := retry.Exceeded(attempt, e.Clock.Now()-bootStart); werr != nil {
				return lost(fmt.Errorf("core: target hypervisor boot: %w", werr))
			}
			// The target hypervisor crashed during boot; PRAM survives
			// and the watchdog reboot retries, charging a full boot.
			recovered(fault.SiteHVBoot, bootBase)
			continue
		}
		if dst, err = e.BootHypervisor(target); err != nil {
			return lost(err)
		}
		break
	}
	e.Trace.Emit(trace.StepBoot, "%s up (generation %d)", dst.Name(), e.Machine.Generation())
	sp.End()
	sp = e.Obs.Start(trace.StepPRAMParse)
	ptr, err := kexec.ParseCmdline(e.Machine.Cmdline)
	if err != nil {
		return lost(err)
	}
	reparseCost := cost.PRAMParse(totalMem, len(vms), opts.HugePages)
	var parsed *pram.Structure
	parseStart := e.Clock.Now()
	for attempt := 1; ; attempt++ {
		if ferr := e.Fault.Fire(fault.SitePRAMParse); ferr != nil {
			if attempt >= retry.Attempts() {
				return lost(fmt.Errorf("core: PRAM parse failed %d times: %w", attempt, ferr))
			}
			if werr := retry.Exceeded(attempt, e.Clock.Now()-parseStart); werr != nil {
				return lost(fmt.Errorf("core: PRAM parse: %w", werr))
			}
			// The boot-time parse crashed partway. The structure in
			// preserved RAM is read-only during parsing, so recovery
			// simply walks it again.
			recovered(fault.SitePRAMParse, reparseCost)
			continue
		}
		if parsed, err = pram.Parse(e.Machine.Mem, ptr); err != nil {
			return lost(fmt.Errorf("core: PRAM lost across reboot: %w", err))
		}
		break
	}
	e.Trace.Emit(trace.StepPRAMParse, "%d files recovered from cmdline pointer", len(parsed.Files))
	sp.SetAttr("files", len(parsed.Files))
	sp.End()

	// ❻ Restore each VM from its UISR blob, adopting its memory map.
	sp = e.Obs.Start(trace.StepRestore)
	if !opts.EarlyRestoration {
		report.Restoration += cost.RestoreServiceWait
		e.Clock.Advance(cost.RestoreServiceWait)
	}
	memFiles := map[string]pram.File{}
	blobFileMap := map[string]pram.File{}
	for _, f := range parsed.Files {
		if name, ok := blobFileName(f.Name); ok {
			blobFileMap[name] = f
		} else {
			memFiles[f.Name] = f
		}
	}
	// Restoration mirrors translation's staging: blob reads and UISR
	// decodes are pure compute and fan out on the par pool; RestoreUISR
	// and guest attachment mutate the target hypervisor and run
	// sequentially in VM order.
	decodeWall := mets.Histogram("uisr.decode_wall_ns", "ns", obs.ExpBuckets(1e3, 4, 12)).Volatile()
	restored, err := par.Map(saved, func(_ int, s savedVM) (*uisr.VMState, error) {
		bf, ok := blobFileMap[s.res.Name]
		if !ok {
			return nil, fmt.Errorf("core: UISR blob for %q missing after reboot", s.res.Name)
		}
		blob, err := readBlob(e.Machine.Mem, bf)
		if err != nil {
			return nil, err
		}
		t0 := time.Now()
		st, err := uisr.Decode(blob)
		decodeWall.Observe(float64(time.Since(t0).Nanoseconds()))
		if err != nil {
			return nil, fmt.Errorf("core: UISR blob for %q corrupt: %w", s.res.Name, err)
		}
		return st, nil
	})
	if err != nil {
		return lost(err)
	}
	costs = costs[:0]
	for i := range saved {
		s := &saved[i]
		mf, ok := memFiles[s.res.Name]
		if !ok {
			return lost(fmt.Errorf("core: memory map for %q missing after reboot", s.res.Name))
		}
		st := restored[i]
		st.MemMap = mf.Extents
		var newVM *hv.VM
		restoreStart := e.Clock.Now()
		for attempt := 1; ; attempt++ {
			if ferr := e.Fault.Fire(fault.SiteUISRRestore); ferr != nil {
				if attempt >= retry.Attempts() {
					return lost(fmt.Errorf("core: restore of %q failed %d times: %w", s.res.Name, attempt, ferr))
				}
				if werr := retry.Exceeded(attempt, e.Clock.Now()-restoreStart); werr != nil {
					return lost(fmt.Errorf("core: restore of %q: %w", s.res.Name, werr))
				}
				// Crash mid-restoration (§3.2: failure after the kexec
				// point): the target re-parses the intact PRAM
				// metadata and completes the restore where it stopped.
				// Already-restored VMs keep their adopted memory.
				recovered(fault.SiteUISRRestore, reparseCost)
				continue
			}
			if newVM, err = dst.RestoreUISR(st, hv.RestoreOptions{
				Mode:              hv.RestoreAdopt,
				InPlaceCompatible: s.inPl,
			}); err != nil {
				return lost(err)
			}
			break
		}
		s.res.NewID = newVM.ID
		if opts.Cache != nil {
			// Chain the fingerprint: the restored VM's platform state IS
			// this blob, so its next save is predictable from it.
			opts.Cache.RecordRestore(target, e.Machine, e.Machine.Generation(), newVM.ID, blobHashes[i])
		}
		e.Trace.Emit(trace.StepRestore, "%s restored as id %d", s.res.Name, newVM.ID)
		if g := guests[s.res.Name]; g != nil {
			if err := dst.AttachGuest(newVM.ID, g); err != nil {
				return lost(err)
			}
			e.Trace.Emit(trace.StepAttachGuest, "%s guest rebound", s.res.Name)
		}
		costs = append(costs, cost.Restore(s.res.VCPUs))
	}
	restoreVirtual := mets.Histogram("tp.restore_virtual_s", "s", obs.ExpBuckets(1e-3, 2, 16))
	for _, c := range costs {
		restoreVirtual.Observe(c.Seconds())
	}
	restore := e.elapsed(costs, opts.Parallel)
	report.Restoration += restore
	e.Clock.Advance(restore)
	sp.End()

	// ❼ Resume guests, run the device-completion protocol, free the
	// ephemeral PRAM metadata and UISR blobs.
	sp = e.Obs.Start(trace.StepResume)
	for i := range saved {
		s := &saved[i]
		if err := dst.Resume(s.res.NewID); err != nil {
			return lost(err)
		}
		if g := guests[s.res.Name]; g != nil {
			if err := g.CompleteTransplant(); err != nil {
				return lost(err)
			}
		}
		for _, f := range s.frames {
			if err := e.Machine.Mem.Free(f); err != nil {
				return lost(err)
			}
		}
		report.VMs = append(report.VMs, s.res)
	}
	e.Trace.Emit(trace.StepResume, "%d VMs running on %s", len(saved), dst.Name())
	sp.End()
	sp = e.Obs.Start(trace.StepCleanup)
	if err := releaseParsedMetadata(e.Machine.Mem, parsed); err != nil {
		return lost(err)
	}
	e.Trace.Emit(trace.StepCleanup, "ephemeral PRAM metadata and UISR blobs freed")
	sp.End()

	report.Downtime = e.Clock.Now() - pauseAt
	report.Total = e.Clock.Now() - start
	report.Network = cost.NICReinit
	report.NetworkDowntime = report.Downtime + cost.NICReinit
	report.Outcome = rpt.OutcomeCompleted
	if report.Faults > 0 {
		report.Outcome = rpt.OutcomeRecovered
	}
	root.SetAttr("downtime", report.Downtime)
	root.SetAttr("total", report.Total)
	root.SetAttr("outcome", string(report.Outcome))
	return dst, report, nil
}

// pramBuildOptions lowers engine options to PRAM build options, wiring
// the machine's snapshot in when a transplant cache is configured.
func (e *Engine) pramBuildOptions(opts Options) pram.BuildOptions {
	bopts := pram.BuildOptions{SplitHugePages: !opts.HugePages}
	if opts.Cache != nil {
		bopts.Snapshot = opts.Cache.PRAMSnapshot(e.Machine)
	}
	return bopts
}

// elapsed aggregates per-VM phase costs according to the parallelization
// option.
func (e *Engine) elapsed(costs []time.Duration, parallel bool) time.Duration {
	if parallel {
		return e.Machine.ParallelElapsedVaried(costs)
	}
	var sum time.Duration
	for _, c := range costs {
		sum += c
	}
	return sum
}

// releaseVMState invokes the hypervisor-specific VM_i State teardown.
func releaseVMState(h hv.Hypervisor, id hv.VMID) error {
	switch impl := h.(type) {
	case *xen.Xen:
		return impl.ReleaseVMState(id)
	case *kvm.KVM:
		return impl.ReleaseVMState(id)
	case *nova.NOVA:
		return impl.ReleaseVMState(id)
	default:
		return fmt.Errorf("core: hypervisor %T cannot release VM state in place", h)
	}
}

// --- UISR blob storage in preserved RAM -------------------------------------

const blobPrefix = "uisr:"

func blobFile(vmName string, frames []hw.MFN) pram.File {
	extents := make([]uisr.PageExtent, len(frames))
	for i, f := range frames {
		extents[i] = uisr.PageExtent{GFN: uint64(i), MFN: uint64(f), Order: 0}
	}
	return pram.File{Name: blobPrefix + vmName, Extents: extents}
}

func blobFileName(fileName string) (string, bool) {
	if len(fileName) > len(blobPrefix) && fileName[:len(blobPrefix)] == blobPrefix {
		return fileName[len(blobPrefix):], true
	}
	return "", false
}

// writeBlob stores a length-prefixed blob into freshly allocated frames.
// writeBlobAt re-materializes a blob at the exact frames it occupied on
// a previous transplant, claiming them if they are all still free.
// Returns nil when the placement is unknown, the wrong size, or any
// frame is taken — the caller falls back to cursor allocation.
func writeBlobAt(mem *hw.PhysMem, blob []byte, frames []hw.MFN) []hw.MFN {
	total := 8 + len(blob)
	if len(frames) != (total+hw.PageSize4K-1)/hw.PageSize4K {
		return nil
	}
	var runs []hw.FrameRange
	for _, f := range frames {
		if n := len(runs); n > 0 && runs[n-1].Start+hw.MFN(runs[n-1].Count) == f {
			runs[n-1].Count++
			continue
		}
		runs = append(runs, hw.FrameRange{Start: f, Count: 1})
	}
	for i, r := range runs {
		if err := mem.ClaimRange(r.Start, r.Count, hw.OwnerPRAM, -1); err != nil {
			for _, u := range runs[:i] {
				_ = mem.FreeRange(u.Start, u.Count)
			}
			return nil
		}
	}
	buf := make([]byte, total)
	for i := 0; i < 8; i++ {
		buf[i] = byte(uint64(len(blob)) >> (8 * i))
	}
	copy(buf[8:], blob)
	for i := 0; i < len(buf); i += hw.PageSize4K {
		end := i + hw.PageSize4K
		if end > len(buf) {
			end = len(buf)
		}
		if err := mem.Write(frames[i/hw.PageSize4K], 0, buf[i:end]); err != nil {
			for _, u := range runs {
				_ = mem.FreeRange(u.Start, u.Count)
			}
			return nil
		}
	}
	return frames
}

func writeBlob(mem *hw.PhysMem, blob []byte) ([]hw.MFN, error) {
	total := 8 + len(blob)
	n := (total + hw.PageSize4K - 1) / hw.PageSize4K
	frames, err := mem.Alloc(n, hw.OwnerPRAM, -1)
	if err != nil {
		return nil, err
	}
	buf := make([]byte, total)
	for i := 0; i < 8; i++ {
		buf[i] = byte(uint64(len(blob)) >> (8 * i))
	}
	copy(buf[8:], blob)
	for i := 0; i < len(buf); i += hw.PageSize4K {
		end := i + hw.PageSize4K
		if end > len(buf) {
			end = len(buf)
		}
		if err := mem.Write(frames[i/hw.PageSize4K], 0, buf[i:end]); err != nil {
			return nil, err
		}
	}
	return frames, nil
}

// readBlob loads a length-prefixed blob from the frames a PRAM file
// records. The page count is known up front, so the whole blob is read
// into a single allocation.
func readBlob(mem *hw.PhysMem, f pram.File) ([]byte, error) {
	var pages uint64
	for _, e := range f.Extents {
		pages += e.Pages()
	}
	raw := make([]byte, pages*hw.PageSize4K)
	off := 0
	for _, e := range f.Extents {
		for p := uint64(0); p < e.Pages(); p++ {
			if err := mem.ReadInto(hw.MFN(e.MFN+p), 0, raw[off:off+hw.PageSize4K]); err != nil {
				return nil, err
			}
			off += hw.PageSize4K
		}
	}
	if len(raw) < 8 {
		return nil, fmt.Errorf("core: blob file %q too short", f.Name)
	}
	var n uint64
	for i := 7; i >= 0; i-- {
		n = n<<8 | uint64(raw[i])
	}
	if n > uint64(len(raw)-8) {
		return nil, fmt.Errorf("core: blob file %q claims %d bytes, have %d", f.Name, n, len(raw)-8)
	}
	return raw[8 : 8+n], nil
}

// releaseParsedMetadata frees the metadata pages of a parsed PRAM
// structure (step ❼ cleanup).
func releaseParsedMetadata(mem *hw.PhysMem, s *pram.Structure) error {
	return s.Release(mem)
}
