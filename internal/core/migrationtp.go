package core

import (
	"hypertp/internal/fault"
	"hypertp/internal/hv"
	"hypertp/internal/migration"
	"hypertp/internal/obs"
	"hypertp/internal/simnet"
	"hypertp/internal/simtime"
)

// MigrationTPParams configures a migration-based transplant of one VM to
// a (possibly heterogeneous) destination hypervisor on another machine.
type MigrationTPParams struct {
	Link   *simnet.Link
	Source hv.Hypervisor
	Dest   *migration.Receiver
	VMID   hv.VMID
	// DirtyRatePagesPerSec models the guest's write activity during
	// pre-copy.
	DirtyRatePagesPerSec float64
	// Obs, when non-nil, records the migration's span tree (pre-copy
	// rounds, stop-and-copy, finalize) and byte/round metrics.
	Obs *obs.Recorder
	// Fault, when non-nil, is attached to the link for the duration of
	// the call: the per-transfer link.abort and link.loss injection
	// sites become live.
	Fault *fault.Plan
	// Retry bounds recovery from severed streams; the zero value keeps
	// single-attempt semantics (see migration.Params.Retry).
	Retry fault.RetryPolicy
}

// MigrationTP performs one migration-based transplant and blocks (in
// virtual time) until it completes. For concurrent migrations drive
// migration.Run directly.
func MigrationTP(clock *simtime.Clock, p MigrationTPParams) (*migration.Report, error) {
	var report *migration.Report
	var err error
	root := p.Obs.Start("migration-tp")
	if p.Fault != nil {
		p.Link.SetFaults(p.Fault)
		defer p.Link.SetFaults(nil)
	}
	migration.Run(clock, migration.Params{
		Link:                 p.Link,
		Source:               p.Source,
		Dest:                 p.Dest,
		VMID:                 p.VMID,
		DirtyRatePagesPerSec: p.DirtyRatePagesPerSec,
		Obs:                  p.Obs,
		Retry:                p.Retry,
	}, func(r *migration.Report, e error) { report, err = r, e })
	clock.Run()
	root.End()
	if err != nil {
		return nil, err
	}
	return report, nil
}
